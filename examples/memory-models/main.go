// Memory-models: reproduce §3.3 of the paper interactively — the cost of a
// variable access under each interpreter's memory model, and Perl's
// precompilation advantage over Tcl's name-keyed symbol table.
package main

import (
	"fmt"
	"log"

	"interplab/internal/core"
	"interplab/internal/perl"
	"interplab/internal/tcl"
)

const perlScalars = `
for ($i = 0; $i < 500; $i++) { $sum = $sum + $i; }
print "$sum\n";
`

const perlHashes = `
for ($i = 0; $i < 500; $i++) { $h{"k$i"} = $i; $sum = $sum + $h{"k$i"}; }
print "$sum\n";
`

const tclScalars = `
set sum 0
for {set i 0} {$i < 500} {incr i} { set sum [expr $sum + $i] }
puts $sum
`

func measurePerl(name, src string) core.Result {
	res, err := core.Measure(core.Program{
		System: core.SysPerl, Name: name,
		Run: func(ctx *core.Ctx) error {
			ip, err := perl.New(src, ctx.OS, ctx.Image, ctx.Probe)
			if err != nil {
				return err
			}
			return ip.Run()
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	scal := measurePerl("scalars", perlScalars)
	hash := measurePerl("hashes", perlHashes)

	fmt.Println("Perl memory model (§3.3):")
	mmS, _ := scal.Stats.Region("memmodel")
	mmH, _ := hash.Stats.Region("memmodel")
	fmt.Printf("  scalar loop: %d hash translations (precompiled to slots)\n", mmS.Accesses)
	fmt.Printf("  hash loop:   %d hash translations, %.0f instructions each (%.1f%% of run)\n",
		mmH.Accesses, mmH.PerAccess(),
		100*float64(mmH.Instructions)/float64(hash.NativeInstructions()))

	res, err := core.Measure(core.Program{
		System: core.SysTcl, Name: "scalars",
		Run: func(ctx *core.Ctx) error {
			i := tcl.New(ctx.OS, ctx.Image, ctx.Probe)
			_, err := i.Eval(tclScalars)
			return err
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	mmT, _ := res.Stats.Region("memmodel")
	fmt.Println("\nTcl memory model (§3.3):")
	fmt.Printf("  every access is a symbol-table lookup: %d lookups, %.0f instructions each (%.1f%% of run)\n",
		mmT.Accesses, mmT.PerAccess(),
		100*float64(mmT.Instructions)/float64(res.NativeInstructions()))

	fmt.Println("\nThe paper's conclusion: preprocessing the program, as Perl does,")
	fmt.Println("compiles away most memory-model overhead; direct interpretation")
	fmt.Println("pays the translation cost on every access.")
}
