// Tk-app: build a small Tk interface on the framebuffer toolkit, interact
// with it, and dump the rendering as ASCII art — the Tk substrate of the
// paper's demos/ical/xf workloads, driven through the public API.
package main

import (
	"fmt"
	"log"

	"interplab/internal/gfx"
	"interplab/internal/tcl"
	"interplab/internal/tk"
	"interplab/internal/vfs"
)

const app = `
wm title . "counter"
label .title -text "Clicks:" -height 20
label .count -text "0" -height 20
button .more -text "+1" -command {
    set n [.count cget -text]
    .count configure -text [expr $n + 1]
}
pack .title
pack .count
pack .more
update
.more invoke
.more invoke
.more invoke
update
puts "count is [.count cget -text]"
canvas .art -width 120 -height 60
pack .art
for {set i 0} {$i < 6} {incr i} {
    .art create line 0 [expr $i * 10] 119 [expr 59 - $i * 10] -fill [expr $i + 2]
}
update
`

func main() {
	osys := vfs.New()
	i := tcl.New(osys, nil, nil)
	d := gfx.New(nil, nil, 96, 140)
	toolkit := tk.Attach(i, d)
	if _, err := i.Eval(app); err != nil {
		log.Fatal(err)
	}
	fmt.Print(osys.Stdout.String())
	fmt.Printf("display checksum: %#x, %d redraws\n\n", d.Checksum(), toolkit.Updates)

	// ASCII rendering (downsampled 2x vertically).
	shades := []byte(" .:-=+*#%@")
	for y := 0; y < d.H; y += 4 {
		line := make([]byte, d.W/2)
		for x := range line {
			px := d.Pix[y*d.W+x*2]
			line[x] = shades[int(px)%len(shades)]
		}
		fmt.Println(string(line))
	}
}
