// Quickstart: run the same DES benchmark in all five systems (compiled C,
// MIPSI, Java, Perl, Tcl), verify every implementation computes the same
// checksum, and print the Table 2 software metrics for each.
package main

import (
	"fmt"
	"log"
	"strings"

	"interplab/internal/core"
	"interplab/internal/workloads"
)

func main() {
	const blocks = 40
	want := fmt.Sprint(workloads.DESChecksum(blocks))
	progs := []core.Program{
		workloads.DESNative(blocks),
		workloads.DESMIPSI(blocks),
		workloads.DESJava(blocks),
		workloads.DESPerl(blocks),
		workloads.DESTcl(blocks),
	}
	fmt.Printf("des with %d blocks (expected checksum %s)\n\n", blocks, want)
	fmt.Printf("%-7s %10s %14s %8s %8s %10s\n",
		"System", "VCmds", "NativeInstr", "FD/cmd", "Ex/cmd", "Checksum")
	for _, p := range progs {
		res, err := core.Measure(p)
		if err != nil {
			log.Fatal(err)
		}
		got := strings.TrimSpace(res.Stdout)
		fd, ex := res.PerCommand()
		status := got
		if got != want {
			status = got + " (MISMATCH!)"
		}
		fmt.Printf("%-7s %10d %14d %8.0f %8.1f %10s\n",
			p.System, res.Commands(), res.NativeInstructions(), fd, ex, status)
	}
	fmt.Println("\nEvery interpreter ran the same cipher; the per-command costs differ")
	fmt.Println("by orders of magnitude with the level of each virtual machine.")
}
