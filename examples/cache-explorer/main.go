// Cache-explorer: measure the instruction-cache behavior of your own
// script across cache geometries, the way Figure 4 of the paper sweeps
// sizes and associativities.
//
// The same Tcl source is also run through the full pipeline model to show
// where its issue slots go.
package main

import (
	"fmt"
	"log"

	"interplab/internal/alphasim"
	"interplab/internal/core"
	"interplab/internal/tcl"
)

const script = `
proc fib {n} {
    if {$n < 2} { return $n }
    return [expr [fib [expr $n - 1]] + [fib [expr $n - 2]]]
}
set total 0
for {set i 1} {$i <= 14} {incr i} {
    set total [expr $total + [fib $i]]
}
puts "sum of fibs: $total"
`

func main() {
	prog := core.Program{
		System: core.SysTcl, Name: "fib-script",
		Run: func(ctx *core.Ctx) error {
			i := tcl.New(ctx.OS, ctx.Image, ctx.Probe)
			_, err := i.Eval(script)
			return err
		},
	}

	// One pass, every cache geometry at once.
	sweep := alphasim.DefaultICacheSweep()
	res, err := core.MeasureWithSweep(prog, sweep)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("script output: %s\n", res.Stdout)
	fmt.Println("instruction-cache misses per 100 instructions:")
	fmt.Printf("%8s %10s %10s %10s\n", "size", "direct", "2-way", "4-way")
	for _, kb := range []int{8, 16, 32, 64} {
		fmt.Printf("%6dKB", kb)
		for _, assoc := range []int{1, 2, 4} {
			pt, _ := sweep.Point(kb, assoc)
			fmt.Printf(" %10.2f", pt.MissPer100())
		}
		fmt.Println()
	}

	// Full pipeline run on the Table 3 machine.
	res, err = core.MeasureWithPipeline(prog, alphasim.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	st := res.Pipe
	fmt.Printf("\npipeline: %d instructions in %d cycles (CPI %.2f)\n",
		st.Instructions, st.Cycles, st.CPI())
	fmt.Printf("issue slots: %.0f%% busy, %.1f%% lost to i-cache, %.1f%% to d-cache\n",
		100*st.BusyFrac(2),
		100*st.StallFrac(alphasim.CauseIMiss, 2),
		100*st.StallFrac(alphasim.CauseDMiss, 2))
}
