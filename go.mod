module interplab

go 1.22
