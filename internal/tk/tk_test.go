package tk

import (
	"strings"
	"testing"

	"interplab/internal/atom"
	"interplab/internal/gfx"
	"interplab/internal/tcl"
	"interplab/internal/trace"
	"interplab/internal/vfs"
)

func newTk(t *testing.T) (*tcl.Interp, *Toolkit, *vfs.OS) {
	t.Helper()
	osys := vfs.New()
	i := tcl.New(osys, nil, nil)
	d := gfx.New(nil, nil, 320, 240)
	tk := Attach(i, d)
	return i, tk, osys
}

func TestCreateAndPack(t *testing.T) {
	i, tk, _ := newTk(t)
	_, err := i.Eval(`
frame .f -height 60
label .f.l -text "hello tk"
button .f.b -text "go" -command {set pressed 1}
pack .f
pack .f.l
pack .f.b -side left
update
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tk.Widget(".f.l"); !ok {
		t.Error("label missing from tree")
	}
	w, _ := tk.Widget(".f.b")
	if w.Side != "left" || !w.Packed {
		t.Errorf("button pack state wrong: %+v", w)
	}
	if tk.Updates != 1 {
		t.Errorf("updates = %d", tk.Updates)
	}
	// Rendering must have produced pixels.
	sum := 0
	for _, px := range tk.Display.Pix {
		sum += int(px)
	}
	if sum == 0 {
		t.Error("update drew nothing")
	}
}

func TestButtonInvoke(t *testing.T) {
	i, _, _ := newTk(t)
	_, err := i.Eval(`
set pressed 0
button .b -text x -command {incr pressed}
pack .b
.b invoke
.b invoke
`)
	if err != nil {
		t.Fatal(err)
	}
	v, err := i.GetVar("pressed")
	if err != nil || v != "2" {
		t.Errorf("pressed = %q, %v", v, err)
	}
}

func TestCanvasItems(t *testing.T) {
	i, tk, _ := newTk(t)
	_, err := i.Eval(`
canvas .c -width 100 -height 100
pack .c
.c create line 0 0 50 50
.c create rectangle 10 10 30 30 -fill 5
.c create text 5 60 -text "label"
update
`)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := tk.Widget(".c")
	if n, _ := i.Eval(`.c itemcount`); n != "3" {
		t.Errorf("itemcount = %s", n)
	}
	_ = w
	before := tk.Display.Checksum()
	if _, err := i.Eval(`.c delete all; update`); err != nil {
		t.Fatal(err)
	}
	if tk.Display.Checksum() == before {
		t.Error("deleting items should change the rendering")
	}
}

func TestConfigureAndCget(t *testing.T) {
	i, _, _ := newTk(t)
	out, err := i.Eval(`
label .l -text before
.l configure -text after -width 120
.l cget -text
`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "after" {
		t.Errorf("cget = %q", out)
	}
	if w, err := i.Eval(`.l cget -width`); err != nil || w != "120" {
		t.Errorf("width = %q, %v", w, err)
	}
}

func TestDestroyAndWinfo(t *testing.T) {
	i, tk, _ := newTk(t)
	_, err := i.Eval(`
frame .f
label .f.a -text a
pack .f
pack .f.a
destroy .f.a
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tk.Widget(".f.a"); ok {
		t.Error("destroyed widget still present")
	}
	kids, err := i.Eval(`winfo children .f`)
	if err != nil || kids != "" {
		t.Errorf("children = %q, %v", kids, err)
	}
}

func TestLayoutSides(t *testing.T) {
	i, tk, _ := newTk(t)
	_, err := i.Eval(`
frame .top -height 50
frame .bottom -height 50
pack .top
pack .bottom
update
`)
	if err != nil {
		t.Fatal(err)
	}
	top, _ := tk.Widget(".top")
	bottom, _ := tk.Widget(".bottom")
	if top.Y >= bottom.Y {
		t.Errorf("vertical pack order wrong: top.Y=%d bottom.Y=%d", top.Y, bottom.Y)
	}
}

func TestErrors(t *testing.T) {
	i, _, _ := newTk(t)
	for _, script := range []string{
		`label noleadingdot`,
		`label .x; label .x`,
		`pack .nosuch`,
		`label .l; .l invoke`,
		`label .l2; .l2 create line 0 0 1 1`,
		`canvas .c; .c create line 0 0`,
		`label .l3 -width abc`,
	} {
		if _, err := i.Eval(script); err == nil {
			t.Errorf("script %q should fail", script)
		}
	}
}

func TestInstrumentedRenderingIsNative(t *testing.T) {
	// Tk drawing must land in the "native" region, like the paper's
	// graphics-heavy workloads.
	osys := vfs.New()
	img := atom.NewImage()
	p := atom.NewProbe(img, trace.Discard)
	osys.Instrument(img, p)
	i := tcl.New(osys, img, p)
	d := gfx.New(img, p, 320, 240)
	tk := Attach(i, d)
	_, err := i.Eval(`
canvas .c -width 300 -height 200
pack .c
for {set k 0} {$k < 20} {incr k} {
    .c create line 0 0 [expr $k * 15] 199
}
update
`)
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	nat, ok := st.Region("native")
	if !ok || nat.Instructions == 0 {
		t.Fatal("native region not charged")
	}
	frac := float64(nat.Instructions) / float64(st.Instructions)
	if frac < 0.02 {
		t.Errorf("native fraction = %.3f, want visible share", frac)
	}
	_ = tk
	_ = strings.TrimSpace
}

func TestWinfoGeometryAfterUpdate(t *testing.T) {
	i, tk, _ := newTk(t)
	if _, err := i.Eval(`
frame .f -height 50
pack .f
update
`); err != nil {
		t.Fatal(err)
	}
	w, err := i.Eval(`winfo width .f`)
	if err != nil {
		t.Fatal(err)
	}
	h, err := i.Eval(`winfo height .f`)
	if err != nil {
		t.Fatal(err)
	}
	// Packed children keep their requested size (80 is the frame default
	// width), clipped to the available area.
	if w != "80" || h != "50" {
		t.Errorf("geometry = %sx%s, want 80x50", w, h)
	}
	_ = tk
}

func TestRootWidgetExists(t *testing.T) {
	_, tk, _ := newTk(t)
	root, ok := tk.Widget(".")
	if !ok || root.Kind != KindFrame {
		t.Fatalf("root widget missing: %+v", root)
	}
}
