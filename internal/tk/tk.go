// Package tk is the laboratory's Tk: a widget toolkit that extends the Tcl
// interpreter with compiled application-specific commands, rendering
// through the native graphics library (internal/gfx).
//
// This is the structure the paper describes: "one popular extension to Tcl
// is the Tk toolkit, which provides a simple window system interface" —
// and, like the AWT for Java, time spent inside Tk and the rasterizer is
// precompiled native time, not interpreted time.
package tk

import (
	"fmt"
	"strconv"
	"strings"

	"interplab/internal/gfx"
	"interplab/internal/tcl"
)

// Widget kinds.
const (
	KindFrame  = "frame"
	KindButton = "button"
	KindLabel  = "label"
	KindCanvas = "canvas"
)

type canvasItem struct {
	kind   string // line, rectangle, text, oval
	coords []int
	text   string
	color  byte
}

// Widget is one node of the widget tree.
type Widget struct {
	Path    string
	Kind    string
	Text    string
	Command string
	Wd, Ht  int
	Bg, Fg  byte
	Side    string // pack side: top or left
	Packed  bool

	children []*Widget
	items    []canvasItem

	// Layout results from the last update.
	X, Y, LW, LH int
}

// Toolkit owns the widget tree and display.
type Toolkit struct {
	Display *gfx.Display
	widgets map[string]*Widget
	root    *Widget

	// Updates counts full redraw passes.
	Updates uint64
}

// Attach creates a toolkit rendering into d and registers the Tk commands
// on the interpreter.
func Attach(i *tcl.Interp, d *gfx.Display) *Toolkit {
	tk := &Toolkit{
		Display: d,
		widgets: make(map[string]*Widget),
	}
	tk.root = &Widget{Path: ".", Kind: KindFrame, Wd: d.W, Ht: d.H, Bg: 1}
	tk.widgets["."] = tk.root
	registerCommands(i, tk)
	return tk
}

// Widget returns the widget at path.
func (tk *Toolkit) Widget(path string) (*Widget, bool) {
	w, ok := tk.widgets[path]
	return w, ok
}

// parent returns the parent path of a widget path (".a.b" -> ".a").
func parentPath(path string) string {
	idx := strings.LastIndexByte(path, '.')
	if idx <= 0 {
		return "."
	}
	return path[:idx]
}

// create makes a widget and registers its instance command.
func (tk *Toolkit) create(i *tcl.Interp, kind, path string, opts []string) (*Widget, error) {
	if !strings.HasPrefix(path, ".") {
		return nil, fmt.Errorf("bad window path name %q", path)
	}
	if _, dup := tk.widgets[path]; dup {
		return nil, fmt.Errorf("window name %q already exists", path)
	}
	w := &Widget{Path: path, Kind: kind, Bg: 2, Fg: 15, Wd: 80, Ht: 24, Side: "top"}
	switch kind {
	case KindFrame:
		w.Ht = 40
	case KindCanvas:
		w.Wd, w.Ht = 200, 150
	}
	if err := w.configure(opts); err != nil {
		return nil, err
	}
	tk.widgets[path] = w
	i.Register(path, func(i *tcl.Interp, args []string) (string, error) {
		return tk.widgetCmd(i, w, args)
	})
	return w, nil
}

// configure applies -option value pairs.
func (w *Widget) configure(opts []string) error {
	for k := 0; k+1 < len(opts); k += 2 {
		val := opts[k+1]
		switch opts[k] {
		case "-text":
			w.Text = val
		case "-command":
			w.Command = val
		case "-width":
			n, err := strconv.Atoi(val)
			if err != nil {
				return fmt.Errorf("bad width %q", val)
			}
			w.Wd = n
		case "-height":
			n, err := strconv.Atoi(val)
			if err != nil {
				return fmt.Errorf("bad height %q", val)
			}
			w.Ht = n
		case "-bg", "-background":
			n, _ := strconv.Atoi(val)
			w.Bg = byte(n)
		case "-fg", "-foreground":
			n, _ := strconv.Atoi(val)
			w.Fg = byte(n)
		case "-side":
			w.Side = val
		default:
			return fmt.Errorf("unknown option %q", opts[k])
		}
	}
	return nil
}

// widgetCmd handles `.path subcommand ...`.
func (tk *Toolkit) widgetCmd(i *tcl.Interp, w *Widget, args []string) (string, error) {
	if len(args) == 0 {
		return "", fmt.Errorf("wrong # args: should be \"%s option ?arg ...?\"", w.Path)
	}
	switch args[0] {
	case "configure":
		return "", w.configure(args[1:])
	case "cget":
		if len(args) != 2 {
			return "", fmt.Errorf("wrong # args: should be \"%s cget option\"", w.Path)
		}
		switch args[1] {
		case "-text":
			return w.Text, nil
		case "-width":
			return strconv.Itoa(w.Wd), nil
		case "-height":
			return strconv.Itoa(w.Ht), nil
		}
		return "", fmt.Errorf("unknown option %q", args[1])
	case "invoke":
		if w.Kind != KindButton {
			return "", fmt.Errorf("%s is not a button", w.Path)
		}
		if w.Command == "" {
			return "", nil
		}
		return i.Eval(w.Command)
	case "create":
		if w.Kind != KindCanvas {
			return "", fmt.Errorf("%s is not a canvas", w.Path)
		}
		return tk.canvasCreate(w, args[1:])
	case "delete":
		if w.Kind != KindCanvas {
			return "", fmt.Errorf("%s is not a canvas", w.Path)
		}
		w.items = nil
		return "", nil
	case "itemcount":
		return strconv.Itoa(len(w.items)), nil
	}
	return "", fmt.Errorf("bad option %q", args[0])
}

// canvasCreate parses `create kind coords... ?-text t? ?-fill c?`.
func (tk *Toolkit) canvasCreate(w *Widget, args []string) (string, error) {
	if len(args) < 1 {
		return "", fmt.Errorf("wrong # args for canvas create")
	}
	item := canvasItem{kind: args[0], color: 15}
	k := 1
	for k < len(args) && !strings.HasPrefix(args[k], "-") {
		n, err := strconv.Atoi(args[k])
		if err != nil {
			break
		}
		item.coords = append(item.coords, n)
		k++
	}
	for ; k+1 < len(args); k += 2 {
		switch args[k] {
		case "-text":
			item.text = args[k+1]
		case "-fill":
			n, _ := strconv.Atoi(args[k+1])
			item.color = byte(n)
		}
	}
	need := 4
	if item.kind == "text" {
		need = 2
	}
	if len(item.coords) < need {
		return "", fmt.Errorf("wrong # coordinates for %s", item.kind)
	}
	w.items = append(w.items, item)
	return strconv.Itoa(len(w.items)), nil
}

// pack attaches a widget under its path parent.
func (tk *Toolkit) pack(path string, opts []string) error {
	w, ok := tk.widgets[path]
	if !ok {
		return fmt.Errorf("bad window path name %q", path)
	}
	if err := w.configure(opts); err != nil {
		return err
	}
	parent, ok := tk.widgets[parentPath(path)]
	if !ok {
		return fmt.Errorf("no parent for %q", path)
	}
	if !w.Packed {
		parent.children = append(parent.children, w)
		w.Packed = true
	}
	return nil
}

// Update lays out and redraws the whole tree — the X-server round trip of
// a real Tk, here a real rasterization pass.
func (tk *Toolkit) Update() {
	tk.Updates++
	d := tk.Display
	d.Clear(tk.root.Bg)
	tk.layout(tk.root, 0, 0, d.W, d.H)
	tk.draw(tk.root)
}

func (tk *Toolkit) layout(w *Widget, x, y, availW, availH int) {
	w.X, w.Y, w.LW, w.LH = x, y, availW, availH
	cx, cy := x, y
	for _, c := range w.children {
		cw, ch := c.Wd, c.Ht
		if c.Side == "left" {
			if cw > availW {
				cw = availW
			}
			tk.layout(c, cx, cy, cw, min(ch, availH))
			cx += cw
			availW -= cw
		} else {
			if ch > availH {
				ch = availH
			}
			tk.layout(c, cx, cy, min(cw, availW), ch)
			cy += ch
			availH -= ch
		}
	}
}

func (tk *Toolkit) draw(w *Widget) {
	d := tk.Display
	d.FillRect(w.X, w.Y, w.LW, w.LH, w.Bg)
	switch w.Kind {
	case KindButton:
		d.FillRect(w.X+1, w.Y+1, w.LW-2, w.LH-2, w.Bg+1)
		d.Text(w.X+4, w.Y+4, w.Text, w.Fg)
	case KindLabel:
		d.Text(w.X+2, w.Y+4, w.Text, w.Fg)
	case KindCanvas:
		for _, it := range w.items {
			tk.drawItem(w, it)
		}
	}
	for _, c := range w.children {
		tk.draw(c)
	}
}

func (tk *Toolkit) drawItem(w *Widget, it canvasItem) {
	d := tk.Display
	c := it.coords
	switch it.kind {
	case "line":
		d.Line(w.X+c[0], w.Y+c[1], w.X+c[2], w.Y+c[3], it.color)
	case "rectangle", "oval":
		d.FillRect(w.X+c[0], w.Y+c[1], c[2]-c[0], c[3]-c[1], it.color)
	case "text":
		d.Text(w.X+c[0], w.Y+c[1], it.text, it.color)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// registerCommands installs the Tk command set.
func registerCommands(i *tcl.Interp, tk *Toolkit) {
	mk := func(kind string) tcl.CmdFunc {
		return func(i *tcl.Interp, args []string) (string, error) {
			if len(args) < 1 {
				return "", fmt.Errorf("wrong # args: should be \"%s pathName ?options?\"", kind)
			}
			w, err := tk.create(i, kind, args[0], args[1:])
			if err != nil {
				return "", err
			}
			return w.Path, nil
		}
	}
	i.Register("frame", mk(KindFrame))
	i.Register("button", mk(KindButton))
	i.Register("label", mk(KindLabel))
	i.Register("canvas", mk(KindCanvas))

	i.Register("pack", func(i *tcl.Interp, args []string) (string, error) {
		if len(args) < 1 {
			return "", fmt.Errorf("wrong # args: should be \"pack window ?options?\"")
		}
		return "", tk.pack(args[0], args[1:])
	})

	i.Register("update", func(i *tcl.Interp, args []string) (string, error) {
		tk.Update()
		return "", nil
	})

	i.Register("destroy", func(i *tcl.Interp, args []string) (string, error) {
		for _, path := range args {
			w, ok := tk.widgets[path]
			if !ok {
				continue
			}
			delete(tk.widgets, path)
			parent := tk.widgets[parentPath(path)]
			if parent != nil {
				for k, c := range parent.children {
					if c == w {
						parent.children = append(parent.children[:k], parent.children[k+1:]...)
						break
					}
				}
			}
		}
		return "", nil
	})

	i.Register("wm", func(i *tcl.Interp, args []string) (string, error) {
		// wm title . "..." — accepted for compatibility.
		return "", nil
	})

	i.Register("winfo", func(i *tcl.Interp, args []string) (string, error) {
		if len(args) != 2 {
			return "", fmt.Errorf("wrong # args: should be \"winfo option window\"")
		}
		w, ok := tk.widgets[args[1]]
		if !ok {
			return "", fmt.Errorf("bad window path name %q", args[1])
		}
		switch args[0] {
		case "width":
			return strconv.Itoa(w.LW), nil
		case "height":
			return strconv.Itoa(w.LH), nil
		case "exists":
			return "1", nil
		case "children":
			var out []string
			for _, c := range w.children {
				out = append(out, c.Path)
			}
			return tcl.JoinList(out), nil
		}
		return "", fmt.Errorf("unknown winfo option %q", args[0])
	})
}
