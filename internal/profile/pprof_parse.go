package profile

import (
	"compress/gzip"
	"fmt"
	"io"
)

// ParsedProfile is the decoded view of a pprof file — just enough structure
// to validate a round trip: sample types by name, and every sample's frame
// stack (root-first, mirroring Profile.Samples) with its values.
type ParsedProfile struct {
	SampleTypes []ValueType
	Samples     []Sample
	// DefaultSampleType is the name pprof selects by default.
	DefaultSampleType string
}

// ParsePprof gunzips and decodes a pprof protobuf produced by WritePprof
// (or any conforming writer using the same subset).  It understands both
// packed and unpacked repeated scalars.
func ParsePprof(r io.Reader) (*ParsedProfile, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("profile: pprof is not gzip: %w", err)
	}
	raw, err := io.ReadAll(gz)
	if err != nil {
		return nil, fmt.Errorf("profile: gunzip pprof: %w", err)
	}
	if err := gz.Close(); err != nil {
		return nil, err
	}

	var (
		strTab  []string
		types   [][2]uint64 // (type idx, unit idx)
		samples []struct{ locs, vals []uint64 }
		locFn   = map[uint64]uint64{} // location id -> function id
		fnName  = map[uint64]uint64{} // function id -> name string idx
		defType uint64
		haveDef bool
	)

	err = walkFields(raw, func(field int, wire int, varint uint64, body []byte) error {
		switch field {
		case 1: // sample_type
			vt, err := parsePair(body, 1, 2)
			if err != nil {
				return err
			}
			types = append(types, vt)
		case 2: // sample
			var s struct{ locs, vals []uint64 }
			err := walkFields(body, func(f, w int, v uint64, b []byte) error {
				switch f {
				case 1:
					s.locs = appendScalars(s.locs, w, v, b)
				case 2:
					s.vals = appendScalars(s.vals, w, v, b)
				}
				return nil
			})
			if err != nil {
				return err
			}
			samples = append(samples, s)
		case 4: // location
			var id, fn uint64
			err := walkFields(body, func(f, w int, v uint64, b []byte) error {
				switch f {
				case 1:
					id = v
				case 4: // line
					return walkFields(b, func(lf, lw int, lv uint64, lb []byte) error {
						if lf == 1 {
							fn = lv
						}
						return nil
					})
				}
				return nil
			})
			if err != nil {
				return err
			}
			locFn[id] = fn
		case 5: // function
			var id, name uint64
			err := walkFields(body, func(f, w int, v uint64, b []byte) error {
				switch f {
				case 1:
					id = v
				case 2:
					name = v
				}
				return nil
			})
			if err != nil {
				return err
			}
			fnName[id] = name
		case 6: // string_table
			strTab = append(strTab, string(body))
		case 14:
			defType, haveDef = varint, true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	str := func(i uint64) (string, error) {
		if i >= uint64(len(strTab)) {
			return "", fmt.Errorf("profile: string index %d out of range (table has %d)", i, len(strTab))
		}
		return strTab[i], nil
	}
	if len(strTab) == 0 || strTab[0] != "" {
		return nil, fmt.Errorf("profile: pprof string_table[0] must be empty")
	}

	out := &ParsedProfile{}
	for _, t := range types {
		ty, err := str(t[0])
		if err != nil {
			return nil, err
		}
		un, err := str(t[1])
		if err != nil {
			return nil, err
		}
		out.SampleTypes = append(out.SampleTypes, ValueType{Type: ty, Unit: un})
	}
	if haveDef {
		name, err := str(defType)
		if err != nil {
			return nil, err
		}
		out.DefaultSampleType = name
	}
	for _, s := range samples {
		if len(s.vals) != len(types) {
			return nil, fmt.Errorf("profile: sample has %d values for %d sample types", len(s.vals), len(types))
		}
		smp := Sample{Stack: make([]string, len(s.locs))}
		for k, loc := range s.locs {
			fn, ok := locFn[loc]
			if !ok {
				return nil, fmt.Errorf("profile: sample references unknown location %d", loc)
			}
			name, err := str(fnName[fn])
			if err != nil {
				return nil, err
			}
			// Locations are leaf-first; Stack is root-first.
			smp.Stack[len(s.locs)-1-k] = name
		}
		for vi, v := range s.vals {
			if vi < NumSampleTypes {
				smp.Values[vi] = int64(v)
			}
		}
		out.Samples = append(out.Samples, smp)
	}
	return out, nil
}

// walkFields iterates a protobuf message's fields.  For varint fields the
// value is passed; for length-delimited fields the body.
func walkFields(b []byte, visit func(field, wire int, varint uint64, body []byte) error) error {
	for len(b) > 0 {
		key, n := uvarint(b)
		if n <= 0 {
			return fmt.Errorf("profile: bad field key")
		}
		b = b[n:]
		field, wire := int(key>>3), int(key&7)
		switch wire {
		case 0:
			v, n := uvarint(b)
			if n <= 0 {
				return fmt.Errorf("profile: bad varint in field %d", field)
			}
			b = b[n:]
			if err := visit(field, wire, v, nil); err != nil {
				return err
			}
		case 2:
			l, n := uvarint(b)
			if n <= 0 || uint64(len(b)-n) < l {
				return fmt.Errorf("profile: truncated length-delimited field %d", field)
			}
			body := b[n : n+int(l)]
			b = b[n+int(l):]
			if err := visit(field, wire, 0, body); err != nil {
				return err
			}
		case 1: // 64-bit
			if len(b) < 8 {
				return fmt.Errorf("profile: truncated fixed64 field %d", field)
			}
			b = b[8:]
		case 5: // 32-bit
			if len(b) < 4 {
				return fmt.Errorf("profile: truncated fixed32 field %d", field)
			}
			b = b[4:]
		default:
			return fmt.Errorf("profile: unsupported wire type %d (field %d)", wire, field)
		}
	}
	return nil
}

// appendScalars collects a repeated scalar field delivered either unpacked
// (wire 0, one varint) or packed (wire 2, a run of varints).
func appendScalars(dst []uint64, wire int, v uint64, body []byte) []uint64 {
	if wire == 0 {
		return append(dst, v)
	}
	for len(body) > 0 {
		x, n := uvarint(body)
		if n <= 0 {
			break
		}
		dst = append(dst, x)
		body = body[n:]
	}
	return dst
}

// parsePair decodes a two-varint-field message (ValueType).
func parsePair(b []byte, f1, f2 int) ([2]uint64, error) {
	var out [2]uint64
	err := walkFields(b, func(f, w int, v uint64, body []byte) error {
		switch f {
		case f1:
			out[0] = v
		case f2:
			out[1] = v
		}
		return nil
	})
	return out, err
}

// uvarint decodes one varint, returning the value and bytes consumed
// (0 on truncation).
func uvarint(b []byte) (uint64, int) {
	var v uint64
	var shift uint
	for i := 0; i < len(b); i++ {
		c := b[i]
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, i + 1
		}
		shift += 7
		if shift >= 64 {
			return 0, 0
		}
	}
	return 0, 0
}
