package profile

import "encoding/json"

// profileJSON is the serialized form of a Profile.  The unexported addrs
// map (routine frame → synthetic code address) must survive a round trip,
// or pprof exports rebuilt from a deserialized profile would lose their
// location addresses; samples are stored in the deterministic stack-sorted
// order writers rely on.
type profileJSON struct {
	Program string            `json:"program"`
	Samples []sampleJSON      `json:"samples"`
	Addrs   map[string]uint64 `json:"addrs,omitempty"`
}

type sampleJSON struct {
	Stack  []string              `json:"stack"`
	Values [NumSampleTypes]int64 `json:"values"`
}

// MarshalJSON serializes the profile, including the frame address table.
func (p *Profile) MarshalJSON() ([]byte, error) {
	pj := profileJSON{Program: p.Program, Addrs: p.addrs}
	pj.Samples = make([]sampleJSON, len(p.Samples))
	for i, s := range p.Samples {
		pj.Samples[i] = sampleJSON{Stack: s.Stack, Values: s.Values}
	}
	return json.Marshal(pj)
}

// UnmarshalJSON restores a profile serialized by MarshalJSON.  Samples are
// re-sorted into the canonical stack order, so a profile assembled from a
// hand-edited document still renders deterministically.
func (p *Profile) UnmarshalJSON(data []byte) error {
	var pj profileJSON
	if err := json.Unmarshal(data, &pj); err != nil {
		return err
	}
	p.Program = pj.Program
	p.addrs = pj.Addrs
	if p.addrs == nil {
		p.addrs = make(map[string]uint64)
	}
	p.Samples = make([]Sample, len(pj.Samples))
	for i, s := range pj.Samples {
		p.Samples[i] = Sample{Stack: s.Stack, Values: s.Values}
	}
	sortSamples(p.Samples)
	return nil
}
