package profile

import (
	"sort"

	"interplab/internal/atom"
	"interplab/internal/trace"
)

// Frame-name vocabulary.  Op frames are "op:" + the interned virtual-command
// name; phase frames are "phase:" + atom.Phase.String(); FrameDispatch roots
// instructions issued between commands (the dispatch loop) and FrameStartup
// roots one-time precompilation.
const (
	FrameDispatch = "dispatch"
	FrameStartup  = "startup"
	OpPrefix      = "op:"
	PhasePrefix   = "phase:"
)

// PhaseFrame returns the stack frame name for a phase.
func PhaseFrame(ph atom.Phase) string { return PhasePrefix + ph.String() }

// node is one vertex of the collector's stack trie; its values are the
// *self* counts of the exact stack it terminates.
type node struct {
	frame    string
	parent   *node
	children map[string]*node
	values   [NumSampleTypes]int64
}

func (n *node) child(frame string) *node {
	c, ok := n.children[frame]
	if !ok {
		c = &node{frame: frame, parent: n}
		if n.children == nil {
			n.children = make(map[string]*node)
		}
		n.children[frame] = c
	}
	return c
}

// Collector folds a native-instruction stream into attribution samples.  It
// implements trace.Sink (put it on the probe's fan-out *before* any
// simulating sink) and alphasim.MissObserver (register it on the pipeline
// to join cache misses back to the issuing routine and opcode).
//
// Per-event cost is one version check plus a handful of increments; the
// stack is re-resolved only when the probe reports an attribution change
// (command begin/end, phase switch, call/return, routine switch), and even
// then a memo on the probe's compact attribution state usually turns the
// resolve into an array load — interpreters cycle through the same few
// (op, phase, routine) states millions of times, so the common bump is an
// index into the dense op×phase node table cached for the current
// (frames, routine) context.
type Collector struct {
	probe *atom.Probe
	root  node

	lastVersion uint64
	lastNode    *node
	stackBuf    []*atom.Routine
	addrs       map[string]uint64

	// Resolved-node memo, two-level: the (frames, routine) context changes
	// only on call/return/routine switch, so cur caches its dense
	// (op+1)×phase node table and the far more frequent op/phase bumps
	// reduce to an array index.
	ctxFrames uint64
	ctxCur    *atom.Routine
	ctxTab    []*node
	ctxs      map[ctxKey][]*node
}

// ctxKey is the slow-changing half of the probe's attribution state: the
// identity of the pushed frames plus the executing routine.  Together with
// the open command and phase it fully determines the sample stack resolve
// builds.
type ctxKey struct {
	frames uint64
	cur    *atom.Routine
}

// NewCollector returns a collector; Bind attaches it to the probe whose
// stream it will observe.
func NewCollector() *Collector {
	return &Collector{
		addrs: make(map[string]uint64),
		ctxs:  make(map[ctxKey][]*node),
	}
}

// Bind attaches the probe whose attribution state keys the samples.  Must
// be called before the first event arrives.  Binding registers the
// collector's boundary callback: at every attribution change the probe
// records the outgoing state's sample node as a segment mark in its
// buffered block, so blocks stay full and EmitBlock resolves each segment
// from its tag.  Runs that join cache misses back to the collector must
// additionally call Probe.RequireAttrSync, which overrides marking with a
// flush per transition (see EmitBlock).
func (c *Collector) Bind(p *atom.Probe) {
	c.probe = p
	c.lastNode = nil
	p.MarkAttrBoundaries(c.boundaryTag)
}

// boundaryTag is the probe's attribution-boundary callback: the sample
// node for the outgoing state, recorded as the closing segment's tag.
func (c *Collector) boundaryTag() any { return c.cur() }

// resolve walks the trie to the node for the probe's current attribution
// state.
func (c *Collector) resolve() *node {
	n := &c.root
	if op, ok := c.probe.CurrentOp(); ok {
		n = n.child(OpPrefix + op)
	} else if c.probe.CurrentPhase() == atom.PhaseStartup {
		n = n.child(FrameStartup)
	} else {
		n = n.child(FrameDispatch)
	}
	n = n.child(PhaseFrame(c.probe.CurrentPhase()))
	c.stackBuf = c.probe.CallStack(c.stackBuf[:0])
	for _, r := range c.stackBuf {
		n = n.child(r.Name)
		if _, ok := c.addrs[r.Name]; !ok {
			c.addrs[r.Name] = uint64(r.Base)
		}
	}
	return n
}

// cur returns the sample node for the probe's current state, re-resolving
// only when the probe's attribution version moved, and then only on the
// first visit to a given attribution state — repeats hit the memo.
func (c *Collector) cur() *node {
	if c.probe == nil {
		return &c.root
	}
	if v := c.probe.AttrVersion(); c.lastNode == nil || v != c.lastVersion {
		c.lastVersion = v
		frames, curR := c.probe.FramesID(), c.probe.CurrentRoutine()
		if frames != c.ctxFrames || curR != c.ctxCur || c.ctxTab == nil {
			k := ctxKey{frames: frames, cur: curR}
			c.ctxFrames, c.ctxCur, c.ctxTab = frames, curR, c.ctxs[k]
		}
		// CurrentOpID is -1 between commands, hence the +1 bias.
		idx := (int(c.probe.CurrentOpID())+1)*atom.NumPhases + int(c.probe.CurrentPhase())
		var n *node
		if idx < len(c.ctxTab) {
			n = c.ctxTab[idx]
		}
		if n == nil {
			n = c.resolve()
			if idx >= len(c.ctxTab) {
				tab := make([]*node, idx+1)
				copy(tab, c.ctxTab)
				c.ctxTab = tab
				c.ctxs[ctxKey{frames: frames, cur: curR}] = tab
			}
			c.ctxTab[idx] = n
		}
		c.lastNode = n
	}
	return c.lastNode
}

// Emit attributes one native instruction.
func (c *Collector) Emit(e trace.Event) {
	n := c.cur()
	n.values[SampleInstructions]++
	switch e.Kind {
	case trace.Load:
		n.values[SampleLoads]++
	case trace.Store:
		n.values[SampleStores]++
	case trace.Branch:
		n.values[SampleBranches]++
	}
}

// EmitBlock attributes a whole batch.  In the marking mode Bind sets up,
// the block carries one tagged boundary per attribution change and each
// tag IS the segment's resolved sample node, so attribution costs one
// pointer read per segment plus a Kind-column scan.  In attr-sync mode
// (miss-joining runs, Probe.RequireAttrSync) blocks carry no marks and the
// whole block belongs to the probe's still-current state; the tail
// accounting below covers it.
func (c *Collector) EmitBlock(b *trace.Block) {
	lo := 0
	for _, m := range b.Marks {
		n, ok := m.Tag.(*node)
		if !ok {
			n = c.cur()
		}
		c.accountSeg(n, b, lo, m.End)
		lo = m.End
	}
	c.accountSeg(c.cur(), b, lo, b.N)
}

// accountSeg charges one attribution-uniform event range of b to n.  The
// kind tally goes through a dense count table rather than a per-event
// switch: Kind values are small, and the table walk is branch-free.
func (c *Collector) accountSeg(n *node, b *trace.Block, lo, hi int) {
	if hi <= lo {
		return
	}
	n.values[SampleInstructions] += int64(hi - lo)
	var cnt [trace.NumKinds]int64
	for _, k := range b.Kind[lo:hi] {
		cnt[k]++
	}
	n.values[SampleLoads] += cnt[trace.Load]
	n.values[SampleStores] += cnt[trace.Store]
	n.values[SampleBranches] += cnt[trace.Branch]
}

// IMiss attributes one instruction-cache miss (alphasim.MissObserver).  The
// pipeline calls it synchronously while processing the event the collector
// just attributed, so the cached node is the right account — provided the
// run flushes per attribution transition (Probe.RequireAttrSync, which
// core.run engages whenever it registers this observer).
func (c *Collector) IMiss(e trace.Event, level int) {
	c.cur().values[SampleIMiss]++
}

// DMiss attributes one data-cache miss (alphasim.MissObserver).
func (c *Collector) DMiss(e trace.Event, level int) {
	c.cur().values[SampleDMiss]++
}

// Profile snapshots the collected samples into a finished profile labeled
// with the program id.  The collector can keep accumulating afterwards.
func (c *Collector) Profile(program string) *Profile {
	p := &Profile{Program: program, addrs: make(map[string]uint64, len(c.addrs))}
	for f, a := range c.addrs {
		p.addrs[f] = a
	}
	var stack []string
	var walk func(n *node)
	walk = func(n *node) {
		if n.frame != "" {
			stack = append(stack, n.frame)
		}
		var zero [NumSampleTypes]int64
		if n.values != zero && len(stack) > 0 {
			p.Samples = append(p.Samples, Sample{
				Stack:  append([]string(nil), stack...),
				Values: n.values,
			})
		}
		keys := make([]string, 0, len(n.children))
		for k := range n.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			walk(n.children[k])
		}
		if n.frame != "" {
			stack = stack[:len(stack)-1]
		}
	}
	walk(&c.root)
	sortSamples(p.Samples)
	return p
}
