package profile

import (
	"sort"

	"interplab/internal/atom"
	"interplab/internal/trace"
)

// Frame-name vocabulary.  Op frames are "op:" + the interned virtual-command
// name; phase frames are "phase:" + atom.Phase.String(); FrameDispatch roots
// instructions issued between commands (the dispatch loop) and FrameStartup
// roots one-time precompilation.
const (
	FrameDispatch = "dispatch"
	FrameStartup  = "startup"
	OpPrefix      = "op:"
	PhasePrefix   = "phase:"
)

// PhaseFrame returns the stack frame name for a phase.
func PhaseFrame(ph atom.Phase) string { return PhasePrefix + ph.String() }

// node is one vertex of the collector's stack trie; its values are the
// *self* counts of the exact stack it terminates.
type node struct {
	frame    string
	parent   *node
	children map[string]*node
	values   [NumSampleTypes]int64
}

func (n *node) child(frame string) *node {
	c, ok := n.children[frame]
	if !ok {
		c = &node{frame: frame, parent: n}
		if n.children == nil {
			n.children = make(map[string]*node)
		}
		n.children[frame] = c
	}
	return c
}

// Collector folds a native-instruction stream into attribution samples.  It
// implements trace.Sink (put it on the probe's fan-out *before* any
// simulating sink) and alphasim.MissObserver (register it on the pipeline
// to join cache misses back to the issuing routine and opcode).
//
// Per-event cost is one version check plus a handful of increments; the
// stack is re-resolved only when the probe reports an attribution change
// (command begin/end, phase switch, call/return, routine switch).
type Collector struct {
	probe *atom.Probe
	root  node

	lastVersion uint64
	lastNode    *node
	stackBuf    []*atom.Routine
	addrs       map[string]uint64
}

// NewCollector returns a collector; Bind attaches it to the probe whose
// stream it will observe.
func NewCollector() *Collector {
	return &Collector{addrs: make(map[string]uint64)}
}

// Bind attaches the probe whose attribution state keys the samples.  Must
// be called before the first event arrives.
func (c *Collector) Bind(p *atom.Probe) {
	c.probe = p
	c.lastNode = nil
}

// resolve walks the trie to the node for the probe's current attribution
// state.
func (c *Collector) resolve() *node {
	n := &c.root
	if op, ok := c.probe.CurrentOp(); ok {
		n = n.child(OpPrefix + op)
	} else if c.probe.CurrentPhase() == atom.PhaseStartup {
		n = n.child(FrameStartup)
	} else {
		n = n.child(FrameDispatch)
	}
	n = n.child(PhaseFrame(c.probe.CurrentPhase()))
	c.stackBuf = c.probe.CallStack(c.stackBuf[:0])
	for _, r := range c.stackBuf {
		n = n.child(r.Name)
		if _, ok := c.addrs[r.Name]; !ok {
			c.addrs[r.Name] = uint64(r.Base)
		}
	}
	return n
}

// cur returns the sample node for the probe's current state, re-resolving
// only when the probe's attribution version moved.
func (c *Collector) cur() *node {
	if c.probe == nil {
		return &c.root
	}
	if v := c.probe.AttrVersion(); c.lastNode == nil || v != c.lastVersion {
		c.lastVersion = v
		c.lastNode = c.resolve()
	}
	return c.lastNode
}

// Emit attributes one native instruction.
func (c *Collector) Emit(e trace.Event) {
	n := c.cur()
	n.values[SampleInstructions]++
	switch e.Kind {
	case trace.Load:
		n.values[SampleLoads]++
	case trace.Store:
		n.values[SampleStores]++
	case trace.Branch:
		n.values[SampleBranches]++
	}
}

// IMiss attributes one instruction-cache miss (alphasim.MissObserver).  The
// pipeline calls it synchronously while processing the event the collector
// just attributed, so the cached node is the right account.
func (c *Collector) IMiss(e trace.Event, level int) {
	c.cur().values[SampleIMiss]++
}

// DMiss attributes one data-cache miss (alphasim.MissObserver).
func (c *Collector) DMiss(e trace.Event, level int) {
	c.cur().values[SampleDMiss]++
}

// Profile snapshots the collected samples into a finished profile labeled
// with the program id.  The collector can keep accumulating afterwards.
func (c *Collector) Profile(program string) *Profile {
	p := &Profile{Program: program, addrs: make(map[string]uint64, len(c.addrs))}
	for f, a := range c.addrs {
		p.addrs[f] = a
	}
	var stack []string
	var walk func(n *node)
	walk = func(n *node) {
		if n.frame != "" {
			stack = append(stack, n.frame)
		}
		var zero [NumSampleTypes]int64
		if n.values != zero && len(stack) > 0 {
			p.Samples = append(p.Samples, Sample{
				Stack:  append([]string(nil), stack...),
				Values: n.values,
			})
		}
		keys := make([]string, 0, len(n.children))
		for k := range n.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			walk(n.children[k])
		}
		if n.frame != "" {
			stack = stack[:len(stack)-1]
		}
	}
	walk(&c.root)
	sortSamples(p.Samples)
	return p
}
