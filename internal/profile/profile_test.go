package profile_test

import (
	"bytes"
	"strings"
	"testing"

	"interplab/internal/alphasim"
	"interplab/internal/atom"
	"interplab/internal/core"
	"interplab/internal/profile"
	"interplab/internal/trace"
	"interplab/internal/workloads"
)

// desSuite returns the shared DES workload under each of the four
// interpreters — the paper's common reference point.
func desSuite() []core.Program {
	return []core.Program{
		workloads.DESMIPSI(4),
		workloads.DESJava(4),
		workloads.DESPerl(4),
		workloads.DESTcl(4),
	}
}

// TestProfileAgreesWithStats is the acceptance gate: for every interpreter,
// the profile's fetch/decode-vs-execute split must equal atom.Stats' phase
// totals for the same run, event totals must match the stream counter, and
// cache-miss attribution must account for every simulated L1 miss.
func TestProfileAgreesWithStats(t *testing.T) {
	for _, p := range desSuite() {
		p := p
		t.Run(p.ID(), func(t *testing.T) {
			res, err := core.MeasureWithPipeline(p, alphasim.DefaultConfig(), core.WithProfiling())
			if err != nil {
				t.Fatal(err)
			}
			prof := res.Profile
			if prof == nil || len(prof.Samples) == 0 {
				t.Fatal("no profile collected")
			}
			if got, want := prof.Total(profile.SampleInstructions), int64(res.Counter.Total); got != want {
				t.Errorf("instruction total %d != stream total %d", got, want)
			}
			phases := map[atom.Phase]uint64{
				atom.PhaseFetchDecode: res.Stats.FetchDecode,
				atom.PhaseExecute:     res.Stats.Execute,
				atom.PhaseStartup:     res.Stats.Startup,
			}
			for ph, want := range phases {
				got := prof.FrameTotal(profile.PhaseFrame(ph), profile.SampleInstructions)
				if got != int64(want) {
					t.Errorf("phase %s: profile %d != stats %d", ph, got, want)
				}
			}
			if got, want := prof.Total(profile.SampleLoads), int64(res.Stats.Loads); got != want {
				t.Errorf("loads %d != stats %d", got, want)
			}
			if got, want := prof.Total(profile.SampleStores), int64(res.Stats.Stores); got != want {
				t.Errorf("stores %d != stats %d", got, want)
			}
			if got, want := prof.Total(profile.SampleBranches), int64(res.Counter.Branches()); got != want {
				t.Errorf("branches %d != counter %d", got, want)
			}
			if got, want := prof.Total(profile.SampleIMiss), int64(res.Pipe.IMisses1); got != want {
				t.Errorf("imiss %d != pipeline %d", got, want)
			}
			if got, want := prof.Total(profile.SampleDMiss), int64(res.Pipe.DMisses1); got != want {
				t.Errorf("dmiss %d != pipeline %d", got, want)
			}
			// Per-routine attribution exists: some sample reaches past the
			// op and phase frames into a named interpreter routine.
			deep := 0
			for _, s := range prof.Samples {
				if len(s.Stack) > 2 {
					deep++
				}
			}
			if deep == 0 {
				t.Error("no routine-level samples (stacks never exceed op/phase frames)")
			}
			// Per-opcode attribution exists.
			hasOp := false
			for _, s := range prof.Samples {
				if strings.HasPrefix(s.Stack[0], profile.OpPrefix) {
					hasOp = true
					break
				}
			}
			if !hasOp {
				t.Error("no op-rooted samples")
			}
		})
	}
}

// TestPprofRoundTrip pins the hand-rolled encoder against the hand-rolled
// decoder: gunzip + parse must reproduce every sample exactly.
func TestPprofRoundTrip(t *testing.T) {
	res, err := core.MeasureWithPipeline(workloads.DESTcl(3), alphasim.DefaultConfig(), core.WithProfiling())
	if err != nil {
		t.Fatal(err)
	}
	prof := res.Profile
	var buf bytes.Buffer
	if err := prof.WritePprof(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := profile.ParsePprof(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("round-trip parse: %v", err)
	}
	if len(parsed.SampleTypes) != profile.NumSampleTypes {
		t.Fatalf("got %d sample types, want %d", len(parsed.SampleTypes), profile.NumSampleTypes)
	}
	for i, vt := range profile.SampleTypes {
		if parsed.SampleTypes[i] != vt {
			t.Errorf("sample type %d: %v != %v", i, parsed.SampleTypes[i], vt)
		}
	}
	if parsed.DefaultSampleType != "instructions" {
		t.Errorf("default sample type %q, want instructions", parsed.DefaultSampleType)
	}
	if len(parsed.Samples) != len(prof.Samples) {
		t.Fatalf("got %d samples, want %d", len(parsed.Samples), len(prof.Samples))
	}
	for i := range prof.Samples {
		want, got := prof.Samples[i], parsed.Samples[i]
		if len(want.Stack) != len(got.Stack) {
			t.Fatalf("sample %d: stack depth %d != %d", i, len(got.Stack), len(want.Stack))
		}
		for k := range want.Stack {
			if want.Stack[k] != got.Stack[k] {
				t.Errorf("sample %d frame %d: %q != %q", i, k, got.Stack[k], want.Stack[k])
			}
		}
		if want.Values != got.Values {
			t.Errorf("sample %d values: %v != %v", i, got.Values, want.Values)
		}
	}
}

// TestCollectorStacks drives a probe by hand and checks the exact frames
// the collector records.
func TestCollectorStacks(t *testing.T) {
	img := atom.NewImage()
	dispatch := img.Routine("interp.dispatch", 32)
	work := img.Routine("interp.add", 16)
	helper := img.Routine("interp.helper", 8)

	col := profile.NewCollector()
	probe := atom.NewProbe(img, col)
	col.Bind(probe)

	set := probe.OpName("add")
	probe.BeginCommand(set)
	probe.Exec(dispatch, 5) // fetch/decode in the dispatch routine
	probe.BeginExecute()
	probe.Exec(work, 7)
	probe.Call(helper) // jump + 2 frame stores
	probe.Exec(helper, 3)
	probe.Ret() // 2 loads + return
	probe.EndCommand()
	probe.Exec(dispatch, 2) // between commands: dispatch loop
	probe.FlushEvents()

	prof := col.Profile("test/hand")
	find := func(stack ...string) *profile.Sample {
		for i := range prof.Samples {
			s := &prof.Samples[i]
			if len(s.Stack) != len(stack) {
				continue
			}
			ok := true
			for k := range stack {
				if s.Stack[k] != stack[k] {
					ok = false
				}
			}
			if ok {
				return s
			}
		}
		return nil
	}

	fd := find("op:add", "phase:fetch_decode", "interp.dispatch")
	if fd == nil || fd.Values[profile.SampleInstructions] != 5 {
		t.Errorf("fetch/decode sample wrong: %+v", fd)
	}
	ex := find("op:add", "phase:execute", "interp.add")
	// 7 Exec + Call jump accounted in caller... the jump emits before the
	// frame push, so it lands here; Ret's return event lands in the callee.
	if ex == nil || ex.Values[profile.SampleInstructions] < 7 {
		t.Errorf("execute sample wrong: %+v", ex)
	}
	nested := find("op:add", "phase:execute", "interp.add", "interp.helper")
	if nested == nil || nested.Values[profile.SampleInstructions] < 3 {
		t.Errorf("nested call sample wrong: %+v", nested)
	}
	loop := find("dispatch", "phase:fetch_decode", "interp.dispatch")
	if loop == nil || loop.Values[profile.SampleInstructions] != 2 {
		t.Errorf("dispatch-loop sample wrong: %+v", loop)
	}
	if got, want := prof.Total(profile.SampleInstructions), int64(probe.Total()); got != want {
		t.Errorf("profile total %d != probe total %d", got, want)
	}
}

// TestWriteTopAndFolded sanity-checks the text renderings.
func TestWriteTopAndFolded(t *testing.T) {
	res, err := core.Measure(workloads.DESPerl(3), core.WithProfiling())
	if err != nil {
		t.Fatal(err)
	}
	var top bytes.Buffer
	if err := res.Profile.WriteTop(&top, 10, profile.SampleInstructions); err != nil {
		t.Fatal(err)
	}
	out := top.String()
	if !strings.Contains(out, "flat") || !strings.Contains(out, "perl.") {
		t.Errorf("top table missing expected content:\n%s", out)
	}
	var split bytes.Buffer
	if err := res.Profile.WritePhaseSplit(&split); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(split.String(), "op:") || !strings.Contains(split.String(), "dispatch") {
		t.Errorf("phase split missing op/dispatch rows:\n%s", split.String())
	}
	var folded bytes.Buffer
	if err := res.Profile.WriteFolded(&folded, profile.SampleInstructions); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimRight(folded.String(), "\n"), "\n") {
		if line == "" || !strings.Contains(line, " ") || !strings.Contains(line, ";") {
			t.Fatalf("malformed folded line %q", line)
		}
	}
}

// TestSetMerged pins the merged-profile shape: program ids become root
// frames and totals are preserved.
func TestSetMerged(t *testing.T) {
	set := profile.NewSet()
	var want int64
	for _, p := range []core.Program{workloads.DESTcl(2), workloads.DESPerl(2)} {
		res, err := core.Measure(p, core.WithProfiling())
		if err != nil {
			t.Fatal(err)
		}
		set.Add(res.Profile)
		want += res.Profile.Total(profile.SampleInstructions)
	}
	m := set.Merged()
	if got := m.Total(profile.SampleInstructions); got != want {
		t.Errorf("merged total %d != %d", got, want)
	}
	if got := m.FrameTotal("Tcl/des", profile.SampleInstructions); got == 0 {
		t.Error("merged profile lost the Tcl/des root frame")
	}
	// var unused to ensure collector respects trace API
	var _ trace.Sink = profile.NewCollector()
	var _ alphasim.MissObserver = profile.NewCollector()
}

// driveScenario pushes a fixed attribution-rich stream through a bound
// probe: startup work, many small command cycles across several opcodes
// and handler routines, nested calls, memory traffic, and one segment
// long enough to span a block-fill boundary.
func driveScenario(probe *atom.Probe, img *atom.Image) {
	dispatch := img.Routine("interp.dispatch", 48)
	handlers := []*atom.Routine{
		img.Routine("interp.add", 16),
		img.Routine("interp.load", 24),
		img.Routine("interp.call", 32),
	}
	helper := img.Routine("interp.helper", 8)
	ops := []atom.OpID{probe.OpName("add"), probe.OpName("load"), probe.OpName("call")}

	probe.SetStartup(true)
	probe.Exec(dispatch, 50)
	probe.SetStartup(false)

	for i := 0; i < 400; i++ {
		op := i % len(ops)
		probe.BeginCommand(ops[op])
		probe.Exec(dispatch, 3+op)
		probe.BeginExecute()
		h := handlers[op]
		probe.Exec(h, 5+i%7)
		switch op {
		case 1:
			probe.Load(0x1000 + uint32(i)*8)
			probe.Store(0x2000 + uint32(i)*8)
		case 2:
			probe.Call(helper)
			probe.Exec(helper, 4)
			probe.Ret()
		}
		probe.EndCommand()
		probe.Exec(dispatch, 2)
	}

	// One attribution segment larger than a block: the fill flush lands
	// mid-segment and the tail must still be attributed to the same node.
	probe.BeginCommand(ops[0])
	probe.BeginExecute()
	probe.Exec(handlers[0], trace.BlockCap+500)
	probe.EndCommand()
	probe.FlushEvents()
}

// TestCollectorSegmentedMatchesPerEvent pins the segment-marked batching
// path to the per-event path: the same scripted stream must fold into
// byte-identical profiles either way.
func TestCollectorSegmentedMatchesPerEvent(t *testing.T) {
	fold := func(perEvent bool) string {
		img := atom.NewImage()
		col := profile.NewCollector()
		probe := atom.NewProbe(img, col)
		if perEvent {
			probe.SetBatching(false)
		}
		col.Bind(probe)
		driveScenario(probe, img)
		var buf bytes.Buffer
		for _, typ := range []int{
			profile.SampleInstructions, profile.SampleLoads,
			profile.SampleStores, profile.SampleBranches,
		} {
			if err := col.Profile("test/seg").WriteFolded(&buf, typ); err != nil {
				t.Fatal(err)
			}
		}
		return buf.String()
	}
	batched, perEvent := fold(false), fold(true)
	if batched != perEvent {
		t.Errorf("segment-marked profile differs from per-event profile:\n-- batched --\n%s\n-- per-event --\n%s", batched, perEvent)
	}
	if !strings.Contains(batched, "interp.helper") || !strings.Contains(batched, "op:load") {
		t.Fatalf("scenario profile missing expected frames:\n%s", batched)
	}
}
