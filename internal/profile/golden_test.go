package profile_test

import (
	"bytes"
	"io"
	"testing"

	"interplab/internal/harness"
	"interplab/internal/profile"
)

// foldedForRun executes one experiment with profiling and returns the
// merged folded-stack bytes.
func foldedForRun(t *testing.T, id string, scale float64) []byte {
	t.Helper()
	set := profile.NewSet()
	if err := harness.Run(id, harness.Options{Scale: scale, Out: io.Discard, Profile: set}); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	var buf bytes.Buffer
	if err := set.Merged().WriteFolded(&buf, profile.SampleInstructions); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatalf("%s: empty folded profile", id)
	}
	return buf.Bytes()
}

// TestFoldedOutputIsDeterministic is the profile-determinism golden test
// (the suite-level sibling of workloads' determinism tests): the same
// experiment at the same scale must produce byte-identical folded-stack
// output, so profiles can be diffed across commits like any other golden
// artifact.
func TestFoldedOutputIsDeterministic(t *testing.T) {
	const id, scale = "table2", 0.05
	a := foldedForRun(t, id, scale)
	b := foldedForRun(t, id, scale)
	if !bytes.Equal(a, b) {
		t.Errorf("folded output differs between identical runs of %s (len %d vs %d)", id, len(a), len(b))
	}
	// And the deliverable itself: one profiled run of the shared suite
	// yields per-routine stacks for every interpreter.
	for _, sys := range []string{"MIPSI/", "Java/", "Perl/", "Tcl/"} {
		if !bytes.Contains(a, []byte(sys)) {
			t.Errorf("folded output has no %s stacks", sys)
		}
	}
}
