package profile

import (
	"fmt"
	"io"

	"interplab/internal/atom"
)

// WriteHotPairs renders the hottest consecutively-dispatched command pairs
// of one run — the selection evidence behind the superinstruction tables
// in internal/jvm and internal/mipsi.  pairs comes from atom.Stats.Pairs
// (collected with Probe.CountPairs); n bounds the rows printed.  Shares
// are of the pairs shown, not of all dispatches: the atom layer caps the
// table it snapshots, so the denominator an uncapped table would give is
// not recoverable here.
func WriteHotPairs(w io.Writer, program string, pairs []atom.PairStats, n int) error {
	if n > len(pairs) {
		n = len(pairs)
	}
	var total uint64
	for _, pr := range pairs {
		total += pr.Count
	}
	fmt.Fprintf(w, "%s: hot command pairs (top %d of %d tracked)\n", program, n, len(pairs))
	if total == 0 {
		fmt.Fprintf(w, "  (no pairs recorded — was Probe.CountPairs on?)\n")
		return nil
	}
	for _, pr := range pairs[:n] {
		fmt.Fprintf(w, "  %-24s %10d  %5.1f%%\n",
			pr.First+" + "+pr.Second, pr.Count, 100*float64(pr.Count)/float64(total))
	}
	return nil
}
