package profile

import (
	"compress/gzip"
	"io"
)

// This file hand-rolls the pprof profile.proto encoding — the laboratory
// stays zero-dependency, and the subset of protobuf pprof needs (varints,
// length-delimited messages, packed repeated scalars) is small.  Field
// numbers follow github.com/google/pprof/proto/profile.proto.

// protoBuf is a minimal protobuf wire-format writer.
type protoBuf struct{ b []byte }

func (p *protoBuf) uvarint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

// tag writes a field key: (field number << 3) | wire type.
func (p *protoBuf) tag(field, wire int) { p.uvarint(uint64(field)<<3 | uint64(wire)) }

// varintField writes a varint-typed field (int64/uint64/bool).
func (p *protoBuf) varintField(field int, v uint64) {
	if v == 0 {
		return // proto3 default, omitted
	}
	p.tag(field, 0)
	p.uvarint(v)
}

// bytesField writes a length-delimited field.
func (p *protoBuf) bytesField(field int, data []byte) {
	p.tag(field, 2)
	p.uvarint(uint64(len(data)))
	p.b = append(p.b, data...)
}

func (p *protoBuf) stringField(field int, s string) {
	p.tag(field, 2)
	p.uvarint(uint64(len(s)))
	p.b = append(p.b, s...)
}

// packedField writes a repeated scalar field in packed encoding.
func (p *protoBuf) packedField(field int, vals []uint64) {
	if len(vals) == 0 {
		return
	}
	var inner protoBuf
	for _, v := range vals {
		inner.uvarint(v)
	}
	p.bytesField(field, inner.b)
}

// stringTable interns strings for the pprof string_table; index 0 is
// required to be "".
type stringTable struct {
	idx  map[string]int64
	list []string
}

func newStringTable() *stringTable {
	return &stringTable{idx: map[string]int64{"": 0}, list: []string{""}}
}

func (t *stringTable) id(s string) int64 {
	if i, ok := t.idx[s]; ok {
		return i
	}
	i := int64(len(t.list))
	t.idx[s] = i
	t.list = append(t.list, s)
	return i
}

// WritePprof serializes the profile as a gzip-compressed pprof protobuf,
// the format `go tool pprof` reads.  Each distinct frame becomes a
// Function/Location pair (routine frames carry their synthetic code
// address); sample location lists are leaf-first per the format.  Output is
// deterministic.
func (p *Profile) WritePprof(w io.Writer) error {
	strs := newStringTable()
	var out protoBuf

	// sample_type (field 1), in Sample* index order.
	for _, vt := range SampleTypes {
		var m protoBuf
		m.varintField(1, uint64(strs.id(vt.Type)))
		m.varintField(2, uint64(strs.id(vt.Unit)))
		out.bytesField(1, m.b)
	}

	// Locations: one per unique frame, ids assigned in first-encounter
	// order over the (already sorted) samples.
	locID := make(map[string]uint64)
	var locOrder []string
	for i := range p.Samples {
		for _, f := range p.Samples[i].Stack {
			if _, ok := locID[f]; !ok {
				locID[f] = uint64(len(locOrder) + 1)
				locOrder = append(locOrder, f)
			}
		}
	}

	// sample (field 2): location ids leaf-first, then the packed values.
	for i := range p.Samples {
		s := &p.Samples[i]
		var m protoBuf
		ids := make([]uint64, len(s.Stack))
		for k, f := range s.Stack {
			ids[len(s.Stack)-1-k] = locID[f]
		}
		m.packedField(1, ids)
		vals := make([]uint64, NumSampleTypes)
		for vi, v := range s.Values {
			vals[vi] = uint64(v)
		}
		m.packedField(2, vals)
		out.bytesField(2, m.b)
	}

	// mapping (field 3): one synthetic text segment covering the lab's
	// address space, so tools that group by mapping have a home for every
	// location.
	{
		var m protoBuf
		m.varintField(1, 1)                                // id
		m.varintField(2, 0x0040_0000)                      // memory_start (atom.CodeBase)
		m.varintField(3, 0x8000_0000)                      // memory_limit
		m.varintField(5, uint64(strs.id(p.mappingName()))) // filename
		m.varintField(7, 1)                                // has_functions
		out.bytesField(3, m.b)
	}

	// location (field 4) and function (field 5), one pair per frame.
	for k, f := range locOrder {
		id := uint64(k + 1)
		var line protoBuf
		line.varintField(1, id) // function_id (same numbering)
		var loc protoBuf
		loc.varintField(1, id)
		loc.varintField(2, 1) // mapping_id
		if addr, ok := p.addrs[f]; ok {
			loc.varintField(3, addr)
		}
		loc.bytesField(4, line.b)
		out.bytesField(4, loc.b)

		var fn protoBuf
		fn.varintField(1, id)
		fn.varintField(2, uint64(strs.id(f))) // name
		fn.varintField(3, uint64(strs.id(f))) // system_name
		fn.varintField(4, uint64(strs.id(p.mappingName())))
		out.bytesField(5, fn.b)
	}

	// default_sample_type (field 14) before the string table is emitted so
	// the name is interned; field order in the wire format is free.
	defType := uint64(strs.id(SampleTypes[SampleInstructions].Type))

	// period_type (field 11) + period (field 12): one sample per unit.
	{
		var m protoBuf
		m.varintField(1, int64Bits(strs.id(SampleTypes[SampleInstructions].Type)))
		m.varintField(2, int64Bits(strs.id("count")))
		out.bytesField(11, m.b)
		out.varintField(12, 1)
	}
	out.varintField(14, defType)

	// string_table (field 6), after every id() call.
	for _, s := range strs.list {
		out.stringField(6, s)
	}

	gz := gzip.NewWriter(w)
	if _, err := gz.Write(out.b); err != nil {
		gz.Close()
		return err
	}
	return gz.Close()
}

// mappingName labels the synthetic mapping/filename for this profile.
func (p *Profile) mappingName() string { return "interp-lab://" + p.Program }

func int64Bits(v int64) uint64 { return uint64(v) }
