package profile

import (
	"bytes"
	"compress/gzip"
	"testing"
)

// fuzzSeedProfile builds a small but representative profile whose WritePprof
// bytes seed the corpus: multi-frame stacks, several value dimensions, and
// routine addresses, so mutations start from a structurally valid file.
func fuzzSeedProfile() *Profile {
	p := &Profile{
		Program: "Tcl/des",
		Samples: []Sample{
			{Stack: []string{"op:set", "phase:execute", "Tcl_SetVar"}, Values: [NumSampleTypes]int64{100, 20, 5, 10, 1, 2}},
			{Stack: []string{"dispatch", "phase:fetch_decode", "Tcl_Eval"}, Values: [NumSampleTypes]int64{400, 40, 8, 60, 3, 4}},
			{Stack: []string{"startup"}, Values: [NumSampleTypes]int64{7, 0, 0, 0, 0, 0}},
		},
		addrs: map[string]uint64{"Tcl_SetVar": 0x401000, "Tcl_Eval": 0x402000},
	}
	sortSamples(p.Samples)
	return p
}

// FuzzPprofParse throws arbitrary bytes at the pprof reader: any input —
// truncated gzip, corrupt protobuf framing, hostile varints, giant length
// prefixes — must come back as an error or a parsed profile, never a panic
// or an out-of-range slice access.
func FuzzPprofParse(f *testing.F) {
	var valid bytes.Buffer
	if err := fuzzSeedProfile().WritePprof(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	// Truncated at an arbitrary interior point: gzip stream cut mid-member.
	f.Add(valid.Bytes()[:valid.Len()/2])
	// Valid gzip wrapping garbage protobuf bytes.
	var junk bytes.Buffer
	zw := gzip.NewWriter(&junk)
	zw.Write([]byte{0xff, 0xff, 0xff, 0xff, 0x01, 0x02, 0x7f, 0x80, 0x80, 0x80})
	zw.Close()
	f.Add(junk.Bytes())
	// Not gzip at all.
	f.Add([]byte("not a pprof file"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParsePprof(bytes.NewReader(data))
		if err == nil && p == nil {
			t.Fatal("nil profile with nil error")
		}
	})
}

// TestPprofRoundTripThroughParser anchors the fuzz seed: the writer's own
// output must parse back with the same sample types and stacks.
func TestPprofRoundTripThroughParser(t *testing.T) {
	want := fuzzSeedProfile()
	var buf bytes.Buffer
	if err := want.WritePprof(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParsePprof(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.SampleTypes) != NumSampleTypes {
		t.Fatalf("got %d sample types, want %d", len(got.SampleTypes), NumSampleTypes)
	}
	if len(got.Samples) != len(want.Samples) {
		t.Fatalf("got %d samples, want %d", len(got.Samples), len(want.Samples))
	}
}
