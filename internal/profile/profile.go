// Package profile is the attribution-profile layer of the laboratory: it
// folds the native-instruction stream of internal/atom into call-stack
// samples keyed by the probe's routine frames, the interpretation phase
// (fetch/decode vs. execute vs. startup), and the open virtual command.
//
// This is the hierarchical view behind the paper's Table 2 and §4: not just
// "how many instructions per command" but *which interpreter routine, under
// which virtual opcode, in which phase* every native instruction — and,
// when a simulated pipeline is attached, every instruction- and data-cache
// miss — belongs to.  Profiles export three ways:
//
//   - flat/cumulative text tables (WriteTop), the Table-2-style split;
//   - folded-stack text (WriteFolded) for flamegraph tooling;
//   - gzip-compressed pprof protobuf (WritePprof), hand-rolled with no
//     dependencies, loadable directly in `go tool pprof`.
//
// Sample stacks are rooted at the virtual-command frame ("op:<name>", or
// "dispatch" between commands, or "startup" during precompilation), then
// the phase frame ("phase:fetch_decode", ...), then the native call chain
// of interpreter routines, leaf last.
package profile

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Sample value indices.  Every sample carries all NumSampleTypes values;
// miss counts stay zero unless the run attached a simulated pipeline.
const (
	SampleInstructions = iota
	SampleLoads
	SampleStores
	SampleBranches
	SampleIMiss
	SampleDMiss

	NumSampleTypes
)

// ValueType names one sample dimension, pprof-style.
type ValueType struct {
	Type string `json:"type"`
	Unit string `json:"unit"`
}

// SampleTypes lists the profile's value dimensions, indexed by the Sample*
// constants.
var SampleTypes = [NumSampleTypes]ValueType{
	{Type: "instructions", Unit: "count"},
	{Type: "loads", Unit: "count"},
	{Type: "stores", Unit: "count"},
	{Type: "branches", Unit: "count"},
	{Type: "imiss", Unit: "count"},
	{Type: "dmiss", Unit: "count"},
}

// SampleTypeIndex resolves a sample-type name to its value index.
func SampleTypeIndex(name string) (int, bool) {
	for i, vt := range SampleTypes {
		if vt.Type == name {
			return i, true
		}
	}
	return 0, false
}

// Sample is one distinct attribution stack with its accumulated values.
type Sample struct {
	// Stack is root-first: op frame, phase frame, then routines, leaf last.
	Stack  []string
	Values [NumSampleTypes]int64
}

// Profile is the finished attribution profile of one measured run (or a
// merge of several).  Samples are in deterministic (stack-sorted) order.
type Profile struct {
	// Program is the measured program's id ("system/name"), or a merge
	// label.
	Program string
	Samples []Sample

	// addrs maps routine frame names to their synthetic code address, for
	// pprof location addresses.  Frames without an entry (op/phase/dispatch
	// frames) get address 0.
	addrs map[string]uint64
}

// Total returns the sum of one value over all samples.
func (p *Profile) Total(vi int) int64 {
	var t int64
	for i := range p.Samples {
		t += p.Samples[i].Values[vi]
	}
	return t
}

// FrameTotal returns the cumulative value attributed to samples whose stack
// contains frame — pprof's "cum" for that frame.
func (p *Profile) FrameTotal(frame string, vi int) int64 {
	var t int64
	for i := range p.Samples {
		for _, f := range p.Samples[i].Stack {
			if f == frame {
				t += p.Samples[i].Values[vi]
				break
			}
		}
	}
	return t
}

// FrameFlat returns the self value attributed to samples whose leaf is
// frame — pprof's "flat".
func (p *Profile) FrameFlat(frame string, vi int) int64 {
	var t int64
	for i := range p.Samples {
		st := p.Samples[i].Stack
		if len(st) > 0 && st[len(st)-1] == frame {
			t += p.Samples[i].Values[vi]
		}
	}
	return t
}

// sortSamples orders samples by their joined stack, the deterministic order
// every writer relies on.
func sortSamples(samples []Sample) {
	sort.Slice(samples, func(i, j int) bool {
		return stackLess(samples[i].Stack, samples[j].Stack)
	})
}

func stackLess(a, b []string) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// WriteFolded writes the profile in folded-stack format — one line per
// stack, "frame;frame;... value" — the input format of flamegraph tooling
// (inferno, speedscope, flamegraph.pl).  Only the chosen value is written;
// zero-valued stacks are skipped.  Output is deterministic: byte-identical
// for identical runs.
func (p *Profile) WriteFolded(w io.Writer, vi int) error {
	for i := range p.Samples {
		s := &p.Samples[i]
		if s.Values[vi] == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", strings.Join(s.Stack, ";"), s.Values[vi]); err != nil {
			return err
		}
	}
	return nil
}

// topRow is one line of the WriteTop table.
type topRow struct {
	frame     string
	flat, cum int64
}

// WriteTop renders the flat/cumulative attribution table for one value — the
// `go tool pprof -top` view, computed directly.  Frames are ranked by flat
// value (ties by cumulative, then name); the top n are printed.  n <= 0
// prints every frame.
func (p *Profile) WriteTop(w io.Writer, n, vi int) error {
	flat := make(map[string]int64)
	cum := make(map[string]int64)
	for i := range p.Samples {
		s := &p.Samples[i]
		v := s.Values[vi]
		if v == 0 {
			continue
		}
		seen := make(map[string]bool, len(s.Stack))
		for k, f := range s.Stack {
			if k == len(s.Stack)-1 {
				flat[f] += v
			}
			if !seen[f] {
				cum[f] += v
				seen[f] = true
			}
		}
	}
	rows := make([]topRow, 0, len(cum))
	for f, c := range cum {
		rows = append(rows, topRow{frame: f, flat: flat[f], cum: c})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].flat != rows[j].flat {
			return rows[i].flat > rows[j].flat
		}
		if rows[i].cum != rows[j].cum {
			return rows[i].cum > rows[j].cum
		}
		return rows[i].frame < rows[j].frame
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	total := p.Total(vi)
	if _, err := fmt.Fprintf(w, "%s: %s, total %d\n", p.Program, SampleTypes[vi].Type, total); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%12s %7s %12s %7s  %s\n", "flat", "flat%", "cum", "cum%", "frame"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%12d %6.2f%% %12d %6.2f%%  %s\n",
			r.flat, pct(r.flat, total), r.cum, pct(r.cum, total), r.frame); err != nil {
			return err
		}
	}
	return nil
}

// WritePhaseSplit renders the Table-2-style per-opcode view: for every
// virtual command (plus the dispatch loop and startup), the instructions
// attributed to fetch/decode vs. execute, ranked by total.  Values come
// straight from the profile's op-rooted samples, so the table agrees with
// the folded/pprof exports by construction.
func (p *Profile) WritePhaseSplit(w io.Writer) error {
	type split struct {
		root   string
		fd, ex int64
		total  int64
	}
	agg := make(map[string]*split)
	for i := range p.Samples {
		s := &p.Samples[i]
		if len(s.Stack) == 0 {
			continue
		}
		v := s.Values[SampleInstructions]
		if v == 0 {
			continue
		}
		sp, ok := agg[s.Stack[0]]
		if !ok {
			sp = &split{root: s.Stack[0]}
			agg[s.Stack[0]] = sp
		}
		sp.total += v
		if len(s.Stack) > 1 {
			switch s.Stack[1] {
			case "phase:fetch_decode":
				sp.fd += v
			case "phase:execute":
				sp.ex += v
			}
		}
	}
	rows := make([]*split, 0, len(agg))
	for _, sp := range agg {
		rows = append(rows, sp)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].total != rows[j].total {
			return rows[i].total > rows[j].total
		}
		return rows[i].root < rows[j].root
	})
	total := p.Total(SampleInstructions)
	if _, err := fmt.Fprintf(w, "%s: fetch/decode vs execute by virtual command\n", p.Program); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-24s %12s %12s %12s %7s\n", "command", "fetch/decode", "execute", "total", "share"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-24s %12d %12d %12d %6.2f%%\n",
			r.root, r.fd, r.ex, r.total, pct(r.total, total)); err != nil {
			return err
		}
	}
	return nil
}

func pct(v, total int64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(v) / float64(total)
}

// Set accumulates the per-program profiles of a harness run.  A nil Set is
// a valid no-op receiver, so recording code need not branch.  Adds from
// concurrent measurement workers are safe; the harness's ordered collect
// still adds in submission order, so the merge stays deterministic.
type Set struct {
	mu    sync.Mutex
	m     map[string]*Profile
	order []string
}

// NewSet returns an empty profile set.
func NewSet() *Set { return &Set{m: make(map[string]*Profile)} }

// Add merges p into the set under its program id.  Re-measuring a program
// adds its values (deterministic runs merge deterministically).  Nil set or
// nil profile no-op.
func (s *Set) Add(p *Profile) {
	if s == nil || p == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	have, ok := s.m[p.Program]
	if !ok {
		s.m[p.Program] = p
		s.order = append(s.order, p.Program)
		return
	}
	have.merge(p, nil)
}

// Profiles returns the set's profiles in first-added order.
func (s *Set) Profiles() []*Profile {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Profile, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.m[id])
	}
	return out
}

// Merged flattens the set into one profile whose stacks are prefixed with
// the program id, so a single pprof/flamegraph file covers every measured
// interpreter side by side.  Programs appear in sorted order.
func (s *Set) Merged() *Profile {
	out := &Profile{Program: "all", addrs: make(map[string]uint64)}
	if s == nil {
		return out
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := append([]string(nil), s.order...)
	sort.Strings(ids)
	for _, id := range ids {
		out.merge(s.m[id], []string{id})
	}
	return out
}

// merge folds other's samples into p, optionally prefixing their stacks.
func (p *Profile) merge(other *Profile, prefix []string) {
	if other == nil {
		return
	}
	byKey := make(map[string]int, len(p.Samples))
	for i := range p.Samples {
		byKey[strings.Join(p.Samples[i].Stack, ";")] = i
	}
	for i := range other.Samples {
		os := &other.Samples[i]
		stack := os.Stack
		if len(prefix) > 0 {
			stack = append(append([]string(nil), prefix...), os.Stack...)
		}
		key := strings.Join(stack, ";")
		if j, ok := byKey[key]; ok {
			for vi := range p.Samples[j].Values {
				p.Samples[j].Values[vi] += os.Values[vi]
			}
			continue
		}
		byKey[key] = len(p.Samples)
		p.Samples = append(p.Samples, Sample{Stack: stack, Values: os.Values})
	}
	if p.addrs == nil {
		p.addrs = make(map[string]uint64)
	}
	for f, a := range other.addrs {
		p.addrs[f] = a
	}
	sortSamples(p.Samples)
}
