//go:build race

package harness

// Under the race detector every measurement runs roughly an order of
// magnitude slower; shrink the determinism golden test's workloads so the
// package stays inside the test timeout while still exercising all nine
// experiments on both scheduler paths.
func init() { detScale = 0.02 }
