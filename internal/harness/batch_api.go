package harness

import (
	"fmt"
	"time"

	"interplab/internal/alphasim"
	"interplab/internal/core"
	"interplab/internal/labstats"
	"interplab/internal/rescache"
)

// This file is the scheduler's exported face for callers outside the
// experiment set — today the measurement server (internal/labserver),
// which coalesces HTTP requests into batches and fans them out over the
// same worker pool the experiments use.
//
// The exported Batch differs from the experiments' internal batches in its
// error contract: experiments stop at the first failure in submission
// order (one broken measurement invalidates the table being rendered),
// while a server batch carries unrelated requests, so every job runs to
// completion, failures are reported per job, and a panicking measurement
// is isolated to its own job instead of crashing the process.

// BatchJob describes one measurement submitted to an exported Batch.
type BatchJob struct {
	// Kind selects the measurement: "measure" (software metrics only),
	// "pipeline" (through the simulated processor, using Config), or
	// "sweep" (through the instruction-cache sweep, which must be private
	// to this job — jobs run concurrently).
	Kind    string
	Program core.Program
	Config  alphasim.Config
	Sweep   *alphasim.ICacheSweep

	// Scope overrides the batch Options' cache scope for this job, so
	// requests aimed at different experiments/scales can share a batch and
	// still hit the entries a CLI run of that experiment wrote.  nil
	// inherits the batch scope.
	Scope *rescache.Scope

	// Profiling attaches the attribution profiler to this job alone
	// (Options.Profile attaches it to every job of a batch).
	Profiling bool
}

// Batch is an exported measurement batch: submit jobs, run them on
// Options.Parallelism workers, then read each job's result and error.
type Batch struct {
	b *batch
}

// NewBatch starts an exported batch running under opt (Parallelism,
// Telemetry, Tracer, Cache; Out and Manifest are unused — callers render
// results themselves).
func NewBatch(opt Options) *Batch {
	b := opt.newBatch()
	b.keepGoing = true
	return &Batch{b: b}
}

// Submit enqueues one job, validating its kind.  The returned Job is
// readable after Run returns.
func (b *Batch) Submit(bj BatchJob) (*Job, error) {
	switch bj.Kind {
	case "measure", "pipeline":
	case "sweep":
		if bj.Sweep == nil {
			return nil, fmt.Errorf("harness: sweep job for %s needs a sweep", bj.Program.ID())
		}
	default:
		return nil, fmt.Errorf("harness: unknown job kind %q (measure, pipeline, sweep)", bj.Kind)
	}
	// addJob decomposes parallel-batch sweeps into per-point jobs; the
	// caller's sweep gets its points restored at assembly, so Job.Sweep
	// reads the same either way.
	j := b.b.addJob(&job{
		kind:      bj.Kind,
		prog:      bj.Program,
		cfg:       bj.Config,
		sweep:     bj.Sweep,
		scope:     bj.Scope,
		profiling: bj.Profiling,
	})
	return &Job{j: j}, nil
}

// Run executes every submitted job.  Unlike the experiments' batches it
// never stops early: each job runs (or fails) independently, and the
// returned error reports only batch-level problems, never an individual
// job's — read those from Job.Err.
func (b *Batch) Run() error {
	return b.b.run()
}

// Sched returns the drained batch's speedup ledger (nil before Run, or
// for an empty batch).
func (b *Batch) Sched() *labstats.SchedStats { return b.b.lastSched }

// Job is one submitted measurement's handle.
type Job struct {
	j *job
}

// Ran reports whether the job executed (to success or error).
func (j *Job) Ran() bool { return j.j.ran }

// Err returns the job's measurement error, if any.
func (j *Job) Err() error { return j.j.err }

// Result returns the job's measured result (zero until Run completes).
func (j *Job) Result() core.Result { return j.j.res }

// Duration returns the job's execution wall time.
func (j *Job) Duration() time.Duration { return j.j.dur }

// Sweep returns the sweep the job was submitted with (nil for non-sweep
// jobs), for reading its per-geometry points after Run.
func (j *Job) Sweep() *alphasim.ICacheSweep { return j.j.sweep }
