// Package harness drives the paper's experiments: each exported function
// regenerates one table or figure from the measured systems and renders it
// as text.  EXPERIMENTS.md records a captured run against the paper's
// numbers.
//
// Measurements within an experiment are mutually independent, so each
// experiment enumerates its jobs into a batch (sched.go) that fans them out
// over Options.Parallelism workers and collects results in submission
// order — rendered text, manifests and profiles are byte-identical to a
// serial run.
package harness

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"interplab/internal/alphasim"
	"interplab/internal/atom"
	"interplab/internal/core"
	"interplab/internal/profile"
	"interplab/internal/rescache"
	"interplab/internal/telemetry"
	"interplab/internal/trace"
	"interplab/internal/workloads"
)

// Options configures an experiment run.
type Options struct {
	// Scale multiplies workload sizes (1 = default; 0 means "default",
	// negative is rejected by Run).
	Scale float64
	// Out receives the rendered table/figure.  nil means os.Stdout, so
	// library callers can leave it unset without nil-dereferencing.
	Out io.Writer

	// Parallelism is the number of measurement jobs run concurrently.
	// 0 means GOMAXPROCS; 1 forces the serial path; negative values are
	// rejected by Run.  The rendered output is byte-identical either way —
	// only wall time and the span layout in Chrome traces differ.
	Parallelism int

	// Telemetry, when non-nil, receives run metrics (counters, histograms)
	// and enables the sampling observer on every measured stream.
	Telemetry *telemetry.Registry
	// Tracer, when non-nil, records the span hierarchy
	// experiment → measure → workload/collect for Chrome trace export.
	Tracer *telemetry.Tracer
	// Manifest, when non-nil, captures each experiment's rendered text and
	// structured measurements for the machine-readable run record.
	Manifest *telemetry.Manifest

	// Profile, when non-nil, collects a per-program attribution profile
	// for every measurement (routine/opcode/phase stacks, plus cache-miss
	// attribution on pipeline runs).  With a Manifest as well, each
	// experiment records its profiles as manifest artifacts.
	Profile *profile.Set

	// PerEvent disables the batched event pipeline for every measurement:
	// producers emit events to the sinks one at a time.  Rendered output,
	// manifests, and profiles are byte-identical to the batched default
	// (the differential test pins this); the switch exists to measure the
	// batching win and to bisect suspected batching discrepancies.
	PerEvent bool

	// Cache, when non-nil, memoizes every measurement on disk: jobs whose
	// key (experiment, scale, program, kind, machine config, profiling
	// mode, lab build fingerprint) matches a stored entry are restored
	// instead of executed, and fresh measurements are stored for the next
	// run.  Rendered output is byte-identical either way; manifests mark
	// restored measurements with cache_hit.
	Cache *rescache.Cache

	// MonolithicSweeps disables per-geometry-point decomposition of sweep
	// measurements on parallel batches: each Fig4-style sweep runs as one
	// job simulating every geometry in a single pass, the pre-decomposition
	// behavior.  Rendered output is byte-identical either way (the
	// equivalence tests pin this); the switch exists to measure the
	// decomposition win and to bisect suspected decomposition
	// discrepancies.  Note the measurement cache keys on sweep geometry,
	// so decomposed and monolithic runs populate different entries —
	// keep the flag consistent between the cold and warm run of a pair.
	MonolithicSweeps bool

	// SchedContention arms the scheduler ledger's optional mutex-/block-
	// profile bracket: each batch raises the runtime's contention
	// sampling rates while it runs and records how many contended stacks
	// appeared (manifest sched block, `contention` field).  Off by
	// default — the bracket perturbs the runtime's profiling rates
	// process-wide, so it is opt-in diagnostics, not steady-state
	// telemetry.
	SchedContention bool

	// rec is the manifest entry of the experiment currently dispatched by
	// Run; the measure helpers record into it.
	rec *telemetry.RunEntry
	// experiment is the id Run is currently dispatching; it scopes cache
	// keys.
	experiment string
}

func (o Options) scale() float64 {
	if o.Scale <= 0 {
		return 1
	}
	return o.Scale
}

// out returns the destination writer, defaulting to os.Stdout.
func (o Options) out() io.Writer {
	if o.Out == nil {
		return os.Stdout
	}
	return o.Out
}

// parallelism returns the effective measurement worker count.
func (o Options) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// decomposeSweeps reports whether sweep measurements split into
// per-geometry-point jobs.  The decision depends only on the run's flags
// (not the batch's job count), so every batch of a run — and the cache
// entries it writes — decomposes consistently.
func (o Options) decomposeSweeps() bool {
	return !o.MonolithicSweeps && o.parallelism() > 1
}

// Experiments lists the runnable experiment ids, in presentation order.
var Experiments = []string{
	"table1", "table2", "table3", "fig1", "fig2", "fig3", "fig4", "memmodel", "ablation", "opt-matrix",
}

// experimentFns dispatches experiment ids; Known and Run share it, so an
// id is runnable exactly when it is known.
var experimentFns = map[string]func(Options) error{
	"table1":     Table1,
	"table2":     Table2,
	"table3":     Table3,
	"fig1":       Fig1,
	"fig2":       Fig2,
	"fig3":       Fig3,
	"fig4":       Fig4,
	"memmodel":   MemModel,
	"ablation":   Ablation,
	"opt-matrix": OptMatrix,
}

// Known reports whether id names an experiment.
func Known(id string) bool {
	_, ok := experimentFns[id]
	return ok
}

// Run dispatches an experiment by id.
func Run(id string, opt Options) error {
	if opt.Scale < 0 {
		return fmt.Errorf("harness: scale must be positive (got %g)", opt.Scale)
	}
	if opt.Parallelism < 0 {
		return fmt.Errorf("harness: parallelism must be >= 1 (got %d; 0 means GOMAXPROCS)", opt.Parallelism)
	}
	fn, ok := experimentFns[id]
	if !ok {
		return fmt.Errorf("harness: unknown experiment %q (have %s)", id, strings.Join(Experiments, ", "))
	}
	opt.experiment = id
	span := opt.Tracer.Start("experiment "+id, "id", id, "scale", opt.scale())
	defer span.End()
	start := time.Now()
	var buf *bytes.Buffer
	if opt.Manifest != nil {
		opt.rec = opt.Manifest.StartRun(id)
		buf = &bytes.Buffer{}
		opt.Out = io.MultiWriter(opt.out(), buf)
	}
	err := fn(opt)
	if opt.rec != nil {
		// DurationUS is recorded even for failed runs, so they are
		// visible in the manifest; Text only reflects a complete run.
		opt.rec.DurationUS = float64(time.Since(start)) / float64(time.Microsecond)
		if err == nil {
			opt.rec.Text = buf.String()
		} else {
			opt.rec.Error = err.Error()
		}
	}
	opt.Telemetry.Counter("harness.experiments").Inc()
	opt.Telemetry.Histogram("harness.experiment_us").Observe(uint64(time.Since(start) / time.Microsecond))
	return err
}

// measureOpts threads the harness's telemetry and measurement cache into
// core measurements.  reg is the registry the measurement should update —
// the shared one on the serial path, a worker's private shard on the
// parallel path (sched.go merges shards after the batch drains).  j can
// override the batch-wide profiling and cache-scope settings: the
// measurement server mixes requests with different scopes and profiling
// modes in one batch, while experiments leave both fields zero.
func (o Options) measureOpts(reg *telemetry.Registry, j *job) []core.MeasureOption {
	opts := []core.MeasureOption{core.WithTracer(o.Tracer), core.WithTelemetry(reg)}
	if (o.Profile != nil || j.profiling) && !j.noProfile {
		opts = append(opts, core.WithProfiling())
	}
	if o.PerEvent {
		opts = append(opts, core.WithPerEventEmission())
	}
	if o.Cache != nil {
		scope := rescache.Scope{Experiment: o.experiment, Scale: o.scale()}
		if j.scope != nil {
			scope = *j.scope
		}
		opts = append(opts, core.WithCache(o.Cache, scope))
	}
	return opts
}

// record adds one structured measurement to the current experiment's
// manifest entry and profile set.  The batch calls it at collect time, in
// submission order, so records are deterministic regardless of
// parallelism.
func (o Options) record(kind string, res core.Result, dur time.Duration, sweep *alphasim.ICacheSweep) {
	o.Profile.Add(res.Profile)
	if o.rec == nil {
		return
	}
	if res.Profile != nil {
		o.rec.AddProfile(profileArtifact(res.Profile))
	}
	o.rec.Add(NewMeasurement(kind, res, dur, sweep))
}

// NewMeasurement builds the manifest record for one measured result — the
// exact structure the run manifest stores, shared with the measurement
// server so served measurements are byte-identical to a CLI run's manifest
// entries.  sweep, when non-nil, contributes its per-geometry points.
func NewMeasurement(kind string, res core.Result, dur time.Duration, sweep *alphasim.ICacheSweep) telemetry.Measurement {
	stats := res.Stats
	mm := telemetry.Measurement{
		Program:    res.Program.ID(),
		System:     string(res.Program.System),
		Name:       res.Program.Name,
		Variant:    res.Program.Variant,
		SizeBytes:  res.SizeBytes,
		Events:     res.Counter.Total,
		Kind:       kind,
		DurationUS: float64(dur) / float64(time.Microsecond),
		CacheHit:   res.FromCache,
		Stats:      &stats,
		Pipe:       res.Pipe,
	}
	if res.Batch != (trace.BatchStats{}) {
		bs := res.Batch
		mm.Batch = &bs
	}
	if sweep != nil {
		mm.Sweep = sweep.Points()
	}
	return mm
}

// ProfileRecord summarizes one profile as a manifest artifact — the same
// record Options.Profile runs attach to run manifests, exported for the
// measurement server's profile responses.
func ProfileRecord(p *profile.Profile) telemetry.ProfileArtifact { return profileArtifact(p) }

// profileArtifact summarizes one program's profile for the run manifest:
// totals, the fetch/decode-vs-execute split, and the folded-stack text.
func profileArtifact(p *profile.Profile) telemetry.ProfileArtifact {
	pa := telemetry.ProfileArtifact{
		Program:      p.Program,
		Samples:      len(p.Samples),
		Instructions: p.Total(profile.SampleInstructions),
		PhaseTotals:  make(map[string]int64, atom.NumPhases),
	}
	for _, vt := range profile.SampleTypes {
		pa.SampleTypes = append(pa.SampleTypes, vt.Type)
	}
	for ph := atom.Phase(0); int(ph) < atom.NumPhases; ph++ {
		if v := p.FrameTotal(profile.PhaseFrame(ph), profile.SampleInstructions); v != 0 {
			pa.PhaseTotals[ph.String()] = v
		}
	}
	var folded strings.Builder
	if err := p.WriteFolded(&folded, profile.SampleInstructions); err == nil {
		pa.Folded = folded.String()
	}
	return pa
}

// systems is the presentation order.
var systems = []core.System{core.SysMIPSI, core.SysJava, core.SysPerl, core.SysTcl}

// Table1 regenerates the microbenchmark slowdown table.  Slowdowns are
// ratios of simulated machine cycles against the compiled-C run of the
// same operation count.
func Table1(opt Options) error {
	type t1row struct {
		base *job
		sys  []*job
	}
	var (
		micros []workloads.Micro
		rows   []t1row
	)
	b := opt.newBatch()
	b.addSetup("table1", func() error {
		micros = workloads.Micros(opt.scale())
		return nil
	})
	b.plan(func() error {
		rows = make([]t1row, 0, len(micros))
		for _, m := range micros {
			r := t1row{base: b.measurePipeline(m.Progs[core.SysC], alphasim.DefaultConfig())}
			for _, sys := range systems {
				r.sys = append(r.sys, b.measurePipeline(m.Progs[sys], alphasim.DefaultConfig()))
			}
			rows = append(rows, r)
		}
		return nil
	})
	b.addRender("table1", func(w io.Writer) error {
		fmt.Fprintf(w, "Table 1: microbenchmark slowdowns relative to C (simulated cycles)\n\n")
		fmt.Fprintf(w, "%-14s %-50s %9s %9s %9s %9s\n", "Benchmark", "Description", "MIPSI", "Java", "Perl", "Tcl")
		for i, m := range micros {
			cCycles := float64(rows[i].base.res.Pipe.Cycles)
			fmt.Fprintf(w, "%-14s %-50s", m.Name, m.Desc)
			for _, j := range rows[i].sys {
				slow := float64(j.res.Pipe.Cycles) / cCycles
				fmt.Fprintf(w, " %9s", fmtSlowdown(slow))
			}
			fmt.Fprintln(w)
		}
		return nil
	})
	return b.run()
}

func fmtSlowdown(s float64) string {
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0f", s)
	case s >= 10:
		return fmt.Sprintf("%.0f", s)
	default:
		return fmt.Sprintf("%.1f", s)
	}
}

// Table2 regenerates the baseline performance table: commands, native
// instructions, fetch/decode and execute averages, and simulated cycles.
func Table2(opt Options) error {
	var (
		progs []core.Program
		jobs  []*job
	)
	b := opt.newBatch()
	b.addSetup("table2", func() error {
		progs = table2Order(opt.scale())
		return nil
	})
	b.plan(func() error {
		for _, p := range progs {
			jobs = append(jobs, b.measurePipeline(p, alphasim.DefaultConfig()))
		}
		return nil
	})
	b.addRender("table2", func(w io.Writer) error {
		fmt.Fprintf(w, "Table 2: baseline interpreter performance\n\n")
		fmt.Fprintf(w, "%-6s %-10s %8s %10s %14s %10s %8s %8s %12s\n",
			"Lang", "Benchmark", "Size(KB)", "VCmds(K)", "NativeI(K)", "(startup)", "FD/cmd", "Ex/cmd", "Cycles(K)")
		for _, j := range jobs {
			res := j.res
			fd, ex := res.PerCommand()
			startup := ""
			if res.StartupInstructions() > 0 && res.Program.System == core.SysPerl {
				startup = fmt.Sprintf("(%s)", fmtK(res.StartupInstructions()))
			}
			fmt.Fprintf(w, "%-6s %-10s %8.1f %10s %14s %10s %8.0f %8.1f %12s\n",
				res.Program.System, res.Program.Name,
				float64(res.SizeBytes)/1024,
				fmtK(res.Commands()), fmtK(res.NativeInstructions()), startup,
				fd, ex, fmtK(res.Pipe.Cycles))
		}
		return nil
	})
	return b.run()
}

// table2Order interleaves C des first, then per-language groups, as the
// paper's table does.
func table2Order(scale float64) []core.Program {
	all := workloads.Suite(scale)
	var out []core.Program
	pick := func(sys core.System) {
		for _, p := range all {
			if p.System == sys {
				out = append(out, p)
			}
		}
	}
	pick(core.SysC)
	pick(core.SysMIPSI)
	pick(core.SysJava)
	pick(core.SysPerl)
	pick(core.SysTcl)
	return out
}

func fmtK(v uint64) string {
	switch {
	case v >= 10_000_000:
		return fmt.Sprintf("%d,%03dK", v/1_000_000, v%1_000_000/1000)
	case v >= 1000:
		return fmt.Sprintf("%dK", v/1000)
	default:
		return fmt.Sprintf("%d", v)
	}
}

// Table3 prints the simulated machine description.  It measures nothing,
// but still runs as a batch so the description renders as a render-stage
// job like every other experiment's output.
func Table3(opt Options) error {
	b := opt.newBatch()
	b.addRender("table3", table3Render)
	return b.run()
}

func table3Render(w io.Writer) error {
	cfg := alphasim.DefaultConfig()
	fmt.Fprintf(w, "Table 3: simulated processor (2-issue, 21064-like)\n\n")
	fmt.Fprintf(w, "%-12s %-10s %s\n", "Cause", "Latency", "Description")
	rows := []struct{ c, l, d string }{
		{"other", "variable", "control hazards, long-latency multiply results"},
		{"short int", fmt.Sprint(cfg.ShortIntDelay + 1), "integer shift and byte instructions"},
		{"load delay", fmt.Sprint(cfg.LoadDelay + 1), "pipeline delay with first-level cache hit"},
		{"mispredict", fmt.Sprint(cfg.Mispredict), "branch misprediction"},
		{"dtlb", fmt.Sprint(cfg.TLBMiss), fmt.Sprintf("miss in the %d-entry data tlb", cfg.DTLBEntries)},
		{"itlb", fmt.Sprint(cfg.TLBMiss), fmt.Sprintf("miss in the %d-entry instruction tlb", cfg.ITLBEntries)},
		{"dmiss", fmt.Sprintf("%d or %d", cfg.L1Miss, cfg.L1Miss+cfg.L2Miss), "miss in L1 data cache / L2"},
		{"imiss", fmt.Sprintf("%d or %d", cfg.L1Miss, cfg.L1Miss+cfg.L2Miss), "miss in L1 instruction cache / L2"},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-10s %s\n", r.c, r.l, r.d)
	}
	fmt.Fprintf(w, "\ncaches: %dKB/%dKB direct-mapped L1 I/D, %dKB L2; %d-byte lines; %dKB pages\n",
		cfg.ICache.Size>>10, cfg.DCache.Size>>10, cfg.L2.Size>>10, cfg.ICache.LineSize, cfg.PageSize>>10)
	fmt.Fprintf(w, "branch logic: %d-entry 1-bit BHT, %d-entry return stack, %d-entry BTC\n",
		cfg.BHTEntries, cfg.ReturnStack, cfg.BTCEntries)
	return nil
}

// interpretedSuite returns the Table 2 suite minus the compiled-C rows —
// the programs Fig1, Fig2 and MemModel iterate.
func interpretedSuite(scale float64) []core.Program {
	var out []core.Program
	for _, p := range workloads.Suite(scale) {
		if p.System == core.SysC {
			continue
		}
		out = append(out, p)
	}
	return out
}

// Fig1 regenerates the cumulative execute-instruction distributions: the
// share of execute instructions covered by the top-x virtual commands.
func Fig1(opt Options) error {
	var (
		progs []core.Program
		jobs  []*job
	)
	b := opt.newBatch()
	b.addSetup("fig1", func() error {
		progs = interpretedSuite(opt.scale())
		return nil
	})
	b.plan(func() error {
		jobs = make([]*job, len(progs))
		for i, p := range progs {
			jobs[i] = b.measure(p)
		}
		return nil
	})
	b.addRender("fig1", func(w io.Writer) error {
		fig1Render(w, progs, jobs)
		return nil
	})
	return b.run()
}

func fig1Render(w io.Writer, progs []core.Program, jobs []*job) {
	fmt.Fprintf(w, "Figure 1: cumulative native instruction count distributions\n")
	fmt.Fprintf(w, "(execute instructions covered by the top-x virtual commands)\n\n")
	fmt.Fprintf(w, "%-18s %6s %6s %6s %6s %6s\n", "Benchmark", "top1", "top2", "top3", "top5", "top10")
	for i, p := range progs {
		res := jobs[i].res
		ops := res.Stats.Ops
		sort.Slice(ops, func(a, b int) bool { return ops[a].Execute > ops[b].Execute })
		var cum [5]float64
		idx := map[int]int{1: 0, 2: 1, 3: 2, 5: 3, 10: 4}
		total := float64(res.Stats.Execute)
		running := 0.0
		for k, op := range ops {
			running += float64(op.Execute)
			if slot, ok := idx[k+1]; ok {
				cum[slot] = 100 * running / total
			}
		}
		// Fill trailing slots when there are fewer commands than the cut.
		last := 0.0
		for k := range cum {
			if cum[k] == 0 {
				cum[k] = max(last, 100*running/total)
			}
			last = cum[k]
		}
		fmt.Fprintf(w, "%-18s %5.0f%% %5.0f%% %5.0f%% %5.0f%% %5.0f%%\n",
			p.ID(), cum[0], cum[1], cum[2], cum[3], cum[4])
	}
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Fig2 regenerates the per-command histograms: for each benchmark, the
// top virtual commands with their share of commands and of execute
// instructions.
func Fig2(opt Options) error {
	var (
		progs []core.Program
		jobs  []*job
	)
	b := opt.newBatch()
	b.addSetup("fig2", func() error {
		progs = interpretedSuite(opt.scale())
		return nil
	})
	b.plan(func() error {
		jobs = make([]*job, len(progs))
		for i, p := range progs {
			jobs[i] = b.measure(p)
		}
		return nil
	})
	b.addRender("fig2", func(w io.Writer) error {
		fmt.Fprintf(w, "Figure 2: virtual command and execute-instruction distributions\n\n")
		for i, p := range progs {
			res := jobs[i].res
			fmt.Fprintf(w, "%s:\n", p.ID())
			ops := res.Stats.Ops
			if p.System == core.SysJava {
				ops = groupJavaOps(ops)
			}
			sort.Slice(ops, func(a, b int) bool { return ops[a].Execute > ops[b].Execute })
			n := len(ops)
			if n > 6 {
				n = 6
			}
			for _, op := range ops[:n] {
				cmdShare := 100 * float64(op.Count) / float64(res.Stats.Commands)
				exShare := 100 * float64(op.Execute) / float64(res.Stats.Execute)
				fmt.Fprintf(w, "  %-14s %5.1f%% of commands  %5.1f%% of execute  %s\n",
					op.Name, cmdShare, exShare, bar(exShare))
			}
		}
		return nil
	})
	return b.run()
}

func bar(pct float64) string {
	n := int(pct / 2.5)
	if n > 40 {
		n = 40
	}
	return strings.Repeat("#", n)
}

// MemModel regenerates the §3.3 memory-model measurements.
func MemModel(opt Options) error {
	var (
		progs []core.Program
		jobs  []*job
	)
	b := opt.newBatch()
	b.addSetup("memmodel", func() error {
		progs = interpretedSuite(opt.scale())
		return nil
	})
	b.plan(func() error {
		jobs = make([]*job, len(progs))
		for i, p := range progs {
			jobs[i] = b.measure(p)
		}
		return nil
	})
	b.addRender("memmodel", func(w io.Writer) error {
		fmt.Fprintf(w, "Section 3.3: memory model costs\n\n")
		fmt.Fprintf(w, "%-18s %-12s %10s %12s %8s\n", "Benchmark", "Region", "Accesses", "Instr/access", "%total")
		for i, p := range progs {
			res := jobs[i].res
			total := float64(res.NativeInstructions())
			for _, region := range res.Stats.Regions {
				if region.Accesses == 0 {
					continue
				}
				switch region.Name {
				case "memmodel", "java.stack", "java.field":
					fmt.Fprintf(w, "%-18s %-12s %10d %12.0f %7.1f%%\n",
						p.ID(), region.Name, region.Accesses, region.PerAccess(),
						100*float64(region.Instructions)/total)
				}
			}
		}
		return nil
	})
	return b.run()
}

// Fig3 regenerates the issue-slot stall distributions for the interpreted
// suite and the native baselines.
func Fig3(opt Options) error {
	var (
		progs []core.Program
		jobs  []*job
	)
	b := opt.newBatch()
	b.addSetup("fig3", func() error {
		progs = append(workloads.NativeSuite(opt.scale()), workloads.Suite(opt.scale())...)
		return nil
	})
	b.plan(func() error {
		jobs = make([]*job, len(progs))
		for i, p := range progs {
			jobs[i] = b.measurePipeline(p, alphasim.DefaultConfig())
		}
		return nil
	})
	b.addRender("fig3", func(w io.Writer) error {
		fmt.Fprintf(w, "Figure 3: overall execution behavior (%% of issue slots)\n\n")
		fmt.Fprintf(w, "%-18s %5s %6s %6s %6s %6s %6s %6s %6s %6s\n",
			"Benchmark", "busy", "other", "shint", "load", "mispr", "dtlb", "itlb", "dmiss", "imiss")
		for i, p := range progs {
			fig3Row(w, p, jobs[i].res)
		}
		return nil
	})
	return b.run()
}

func fig3Row(w io.Writer, p core.Program, res core.Result) {
	st := res.Pipe
	width := 2
	fmt.Fprintf(w, "%-18s %4.0f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%%\n",
		p.ID(),
		100*st.BusyFrac(width),
		100*st.OtherFrac(width),
		100*st.StallFrac(alphasim.CauseShortInt, width),
		100*st.StallFrac(alphasim.CauseLoadDelay, width),
		100*st.StallFrac(alphasim.CauseMispredict, width),
		100*st.StallFrac(alphasim.CauseDTLB, width),
		100*st.StallFrac(alphasim.CauseITLB, width),
		100*st.StallFrac(alphasim.CauseDMiss, width),
		100*st.StallFrac(alphasim.CauseIMiss, width))
}

// Fig4 regenerates the instruction-cache sweeps: miss rate per 100
// instructions across sizes and associativities for the Java, Perl and
// Tcl suites (plus MIPSI des for contrast).
func Fig4(opt Options) error {
	var (
		progs  []core.Program
		sweeps []*alphasim.ICacheSweep
	)
	b := opt.newBatch()
	b.addSetup("fig4", func() error {
		for _, p := range workloads.Suite(opt.scale()) {
			switch p.System {
			case core.SysC:
				continue
			case core.SysMIPSI:
				if p.Name != "des" {
					continue
				}
			}
			progs = append(progs, p)
		}
		return nil
	})
	b.plan(func() error {
		sweeps = make([]*alphasim.ICacheSweep, len(progs))
		for i, p := range progs {
			// Each job gets a private sweep; jobs run concurrently (and on
			// a parallel batch decompose into one job per geometry point).
			sweeps[i] = alphasim.DefaultICacheSweep()
			b.measureSweep(p, sweeps[i])
		}
		return nil
	})
	b.addRender("fig4", func(w io.Writer) error {
		fmt.Fprintf(w, "Figure 4: instruction cache behavior (misses per 100 instructions)\n\n")
		fmt.Fprintf(w, "%-18s", "Benchmark")
		for _, pt := range alphasim.DefaultICacheSweep().Points() {
			fmt.Fprintf(w, " %9s", pt.Label())
		}
		fmt.Fprintln(w)
		for i, p := range progs {
			fmt.Fprintf(w, "%-18s", p.ID())
			for _, pt := range sweeps[i].Points() {
				fmt.Fprintf(w, " %9.2f", pt.MissPer100())
			}
			fmt.Fprintln(w)
		}
		return nil
	})
	return b.run()
}

// groupJavaOps folds raw bytecodes into the primary categories Figure 2
// uses for Java (st_load, st_store, alu, branch, call, field, native).
func groupJavaOps(ops []atom.OpStats) []atom.OpStats {
	cat := func(name string) string {
		switch {
		case name == "iload" || name == "iconst" || name == "ldc":
			return "st_load"
		case name == "istore" || name == "iinc":
			return "st_store"
		case name == "invokenative":
			return "native"
		case strings.HasPrefix(name, "get") || strings.HasPrefix(name, "put"):
			return "field"
		case strings.HasPrefix(name, "if") || name == "goto":
			return "branch"
		case name == "invokestatic" || name == "return" || name == "ireturn":
			return "call"
		case strings.Contains(name, "array") || strings.Contains(name, "aload") ||
			strings.Contains(name, "astore") || name == "new":
			return "array"
		}
		return "alu"
	}
	grouped := make(map[string]*atom.OpStats)
	var order []string
	for _, op := range ops {
		c := cat(op.Name)
		g, ok := grouped[c]
		if !ok {
			g = &atom.OpStats{Name: c}
			grouped[c] = g
			order = append(order, c)
		}
		g.Count += op.Count
		g.FetchDecode += op.FetchDecode
		g.Execute += op.Execute
	}
	out := make([]atom.OpStats, 0, len(order))
	for _, c := range order {
		out = append(out, *grouped[c])
	}
	return out
}
