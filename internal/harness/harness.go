// Package harness drives the paper's experiments: each exported function
// regenerates one table or figure from the measured systems and renders it
// as text.  EXPERIMENTS.md records a captured run against the paper's
// numbers.
package harness

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"interplab/internal/alphasim"
	"interplab/internal/atom"
	"interplab/internal/core"
	"interplab/internal/profile"
	"interplab/internal/telemetry"
	"interplab/internal/workloads"
)

// Options configures an experiment run.
type Options struct {
	// Scale multiplies workload sizes (1 = default; 0 means "default",
	// negative is rejected by Run).
	Scale float64
	// Out receives the rendered table/figure.  nil means os.Stdout, so
	// library callers can leave it unset without nil-dereferencing.
	Out io.Writer

	// Telemetry, when non-nil, receives run metrics (counters, histograms)
	// and enables the sampling observer on every measured stream.
	Telemetry *telemetry.Registry
	// Tracer, when non-nil, records the span hierarchy
	// experiment → measure → workload/collect for Chrome trace export.
	Tracer *telemetry.Tracer
	// Manifest, when non-nil, captures each experiment's rendered text and
	// structured measurements for the machine-readable run record.
	Manifest *telemetry.Manifest

	// Profile, when non-nil, collects a per-program attribution profile
	// for every measurement (routine/opcode/phase stacks, plus cache-miss
	// attribution on pipeline runs).  With a Manifest as well, each
	// experiment records its profiles as manifest artifacts.
	Profile *profile.Set

	// rec is the manifest entry of the experiment currently dispatched by
	// Run; the measure helpers record into it.
	rec *telemetry.RunEntry
}

func (o Options) scale() float64 {
	if o.Scale <= 0 {
		return 1
	}
	return o.Scale
}

// out returns the destination writer, defaulting to os.Stdout.
func (o Options) out() io.Writer {
	if o.Out == nil {
		return os.Stdout
	}
	return o.Out
}

// Experiments lists the runnable experiment ids.
var Experiments = []string{
	"table1", "table2", "table3", "fig1", "fig2", "fig3", "fig4", "memmodel", "ablation",
}

// Known reports whether id names an experiment.
func Known(id string) bool {
	for _, e := range Experiments {
		if e == id {
			return true
		}
	}
	return false
}

// Run dispatches an experiment by id.
func Run(id string, opt Options) error {
	if opt.Scale < 0 {
		return fmt.Errorf("harness: scale must be positive (got %g)", opt.Scale)
	}
	if !Known(id) {
		return fmt.Errorf("harness: unknown experiment %q (have %s)", id, strings.Join(Experiments, ", "))
	}
	span := opt.Tracer.Start("experiment "+id, "id", id, "scale", opt.scale())
	defer span.End()
	start := time.Now()
	var buf *bytes.Buffer
	if opt.Manifest != nil {
		opt.rec = opt.Manifest.StartRun(id)
		buf = &bytes.Buffer{}
		opt.Out = io.MultiWriter(opt.out(), buf)
	}
	err := dispatch(id, opt)
	if opt.rec != nil && err == nil {
		opt.rec.Text = buf.String()
		opt.rec.DurationUS = float64(time.Since(start)) / float64(time.Microsecond)
	}
	opt.Telemetry.Counter("harness.experiments").Inc()
	opt.Telemetry.Histogram("harness.experiment_us").Observe(uint64(time.Since(start) / time.Microsecond))
	return err
}

func dispatch(id string, opt Options) error {
	switch id {
	case "table1":
		return Table1(opt)
	case "table2":
		return Table2(opt)
	case "table3":
		return Table3(opt)
	case "fig1":
		return Fig1(opt)
	case "fig2":
		return Fig2(opt)
	case "fig3":
		return Fig3(opt)
	case "fig4":
		return Fig4(opt)
	case "memmodel":
		return MemModel(opt)
	case "ablation":
		return Ablation(opt)
	}
	return fmt.Errorf("harness: unknown experiment %q (have %s)", id, strings.Join(Experiments, ", "))
}

// measureOpts threads the harness's telemetry into core measurements.
func (o Options) measureOpts() []core.MeasureOption {
	opts := []core.MeasureOption{core.WithTracer(o.Tracer), core.WithTelemetry(o.Telemetry)}
	if o.Profile != nil {
		opts = append(opts, core.WithProfiling())
	}
	return opts
}

// record adds one structured measurement to the current experiment's
// manifest entry (no-op without a manifest).
func (o Options) record(kind string, res core.Result, start time.Time, sweep *alphasim.ICacheSweep) {
	o.Profile.Add(res.Profile)
	if o.rec == nil {
		return
	}
	if res.Profile != nil {
		o.rec.AddProfile(profileArtifact(res.Profile))
	}
	stats := res.Stats
	mm := telemetry.Measurement{
		Program:    res.Program.ID(),
		System:     string(res.Program.System),
		Name:       res.Program.Name,
		SizeBytes:  res.SizeBytes,
		Events:     res.Counter.Total,
		Kind:       kind,
		DurationUS: float64(time.Since(start)) / float64(time.Microsecond),
		Stats:      &stats,
		Pipe:       res.Pipe,
	}
	if sweep != nil {
		mm.Sweep = sweep.Points()
	}
	o.rec.Add(mm)
}

// profileArtifact summarizes one program's profile for the run manifest:
// totals, the fetch/decode-vs-execute split, and the folded-stack text.
func profileArtifact(p *profile.Profile) telemetry.ProfileArtifact {
	pa := telemetry.ProfileArtifact{
		Program:      p.Program,
		Samples:      len(p.Samples),
		Instructions: p.Total(profile.SampleInstructions),
		PhaseTotals:  make(map[string]int64, atom.NumPhases),
	}
	for _, vt := range profile.SampleTypes {
		pa.SampleTypes = append(pa.SampleTypes, vt.Type)
	}
	for ph := atom.Phase(0); int(ph) < atom.NumPhases; ph++ {
		if v := p.FrameTotal(profile.PhaseFrame(ph), profile.SampleInstructions); v != 0 {
			pa.PhaseTotals[ph.String()] = v
		}
	}
	var folded strings.Builder
	if err := p.WriteFolded(&folded, profile.SampleInstructions); err == nil {
		pa.Folded = folded.String()
	}
	return pa
}

// measure is core.Measure with the harness's spans, metrics and manifest.
func (o Options) measure(p core.Program) (core.Result, error) {
	span := o.Tracer.Start("measure "+p.ID(), "program", p.ID())
	defer span.End()
	start := time.Now()
	res, err := core.Measure(p, o.measureOpts()...)
	if err != nil {
		return res, err
	}
	o.record("measure", res, start, nil)
	return res, nil
}

// measurePipeline is core.MeasureWithPipeline with spans/metrics/manifest.
func (o Options) measurePipeline(p core.Program, cfg alphasim.Config) (core.Result, error) {
	span := o.Tracer.Start("measure "+p.ID(), "program", p.ID(), "sink", "pipeline")
	defer span.End()
	start := time.Now()
	res, err := core.MeasureWithPipeline(p, cfg, o.measureOpts()...)
	if err != nil {
		return res, err
	}
	o.record("pipeline", res, start, nil)
	return res, nil
}

// measureSweep is core.MeasureWithSweep with spans/metrics/manifest.
func (o Options) measureSweep(p core.Program, sweep *alphasim.ICacheSweep) (core.Result, error) {
	span := o.Tracer.Start("measure "+p.ID(), "program", p.ID(), "sink", "icache-sweep")
	defer span.End()
	start := time.Now()
	res, err := core.MeasureWithSweep(p, sweep, o.measureOpts()...)
	if err != nil {
		return res, err
	}
	o.record("sweep", res, start, sweep)
	return res, nil
}

// systems is the presentation order.
var systems = []core.System{core.SysMIPSI, core.SysJava, core.SysPerl, core.SysTcl}

// Table1 regenerates the microbenchmark slowdown table.  Slowdowns are
// ratios of simulated machine cycles against the compiled-C run of the
// same operation count.
func Table1(opt Options) error {
	w := opt.out()
	fmt.Fprintf(w, "Table 1: microbenchmark slowdowns relative to C (simulated cycles)\n\n")
	fmt.Fprintf(w, "%-14s %-50s %9s %9s %9s %9s\n", "Benchmark", "Description", "MIPSI", "Java", "Perl", "Tcl")
	for _, m := range workloads.Micros(opt.scale()) {
		base, err := opt.measurePipeline(m.Progs[core.SysC], alphasim.DefaultConfig())
		if err != nil {
			return err
		}
		cCycles := float64(base.Pipe.Cycles)
		fmt.Fprintf(w, "%-14s %-50s", m.Name, m.Desc)
		for _, sys := range systems {
			res, err := opt.measurePipeline(m.Progs[sys], alphasim.DefaultConfig())
			if err != nil {
				return err
			}
			slow := float64(res.Pipe.Cycles) / cCycles
			fmt.Fprintf(w, " %9s", fmtSlowdown(slow))
		}
		fmt.Fprintln(w)
	}
	return nil
}

func fmtSlowdown(s float64) string {
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0f", s)
	case s >= 10:
		return fmt.Sprintf("%.0f", s)
	default:
		return fmt.Sprintf("%.1f", s)
	}
}

// Table2 regenerates the baseline performance table: commands, native
// instructions, fetch/decode and execute averages, and simulated cycles.
func Table2(opt Options) error {
	w := opt.out()
	fmt.Fprintf(w, "Table 2: baseline interpreter performance\n\n")
	fmt.Fprintf(w, "%-6s %-10s %8s %10s %14s %10s %8s %8s %12s\n",
		"Lang", "Benchmark", "Size(KB)", "VCmds(K)", "NativeI(K)", "(startup)", "FD/cmd", "Ex/cmd", "Cycles(K)")
	for _, p := range table2Order(opt.scale()) {
		res, err := opt.measurePipeline(p, alphasim.DefaultConfig())
		if err != nil {
			return err
		}
		fd, ex := res.PerCommand()
		startup := ""
		if res.StartupInstructions() > 0 && res.Program.System == core.SysPerl {
			startup = fmt.Sprintf("(%s)", fmtK(res.StartupInstructions()))
		}
		fmt.Fprintf(w, "%-6s %-10s %8.1f %10s %14s %10s %8.0f %8.1f %12s\n",
			res.Program.System, res.Program.Name,
			float64(res.SizeBytes)/1024,
			fmtK(res.Commands()), fmtK(res.NativeInstructions()), startup,
			fd, ex, fmtK(res.Pipe.Cycles))
	}
	return nil
}

// table2Order interleaves C des first, then per-language groups, as the
// paper's table does.
func table2Order(scale float64) []core.Program {
	all := workloads.Suite(scale)
	var out []core.Program
	pick := func(sys core.System) {
		for _, p := range all {
			if p.System == sys {
				out = append(out, p)
			}
		}
	}
	pick(core.SysC)
	pick(core.SysMIPSI)
	pick(core.SysJava)
	pick(core.SysPerl)
	pick(core.SysTcl)
	return out
}

func fmtK(v uint64) string {
	switch {
	case v >= 10_000_000:
		return fmt.Sprintf("%d,%03dK", v/1_000_000, v%1_000_000/1000)
	case v >= 1000:
		return fmt.Sprintf("%dK", v/1000)
	default:
		return fmt.Sprintf("%d", v)
	}
}

// Table3 prints the simulated machine description.
func Table3(opt Options) error {
	w := opt.out()
	cfg := alphasim.DefaultConfig()
	fmt.Fprintf(w, "Table 3: simulated processor (2-issue, 21064-like)\n\n")
	fmt.Fprintf(w, "%-12s %-10s %s\n", "Cause", "Latency", "Description")
	rows := []struct{ c, l, d string }{
		{"other", "variable", "control hazards, long-latency multiply results"},
		{"short int", fmt.Sprint(cfg.ShortIntDelay + 1), "integer shift and byte instructions"},
		{"load delay", fmt.Sprint(cfg.LoadDelay + 1), "pipeline delay with first-level cache hit"},
		{"mispredict", fmt.Sprint(cfg.Mispredict), "branch misprediction"},
		{"dtlb", fmt.Sprint(cfg.TLBMiss), fmt.Sprintf("miss in the %d-entry data tlb", cfg.DTLBEntries)},
		{"itlb", fmt.Sprint(cfg.TLBMiss), fmt.Sprintf("miss in the %d-entry instruction tlb", cfg.ITLBEntries)},
		{"dmiss", fmt.Sprintf("%d or %d", cfg.L1Miss, cfg.L1Miss+cfg.L2Miss), "miss in L1 data cache / L2"},
		{"imiss", fmt.Sprintf("%d or %d", cfg.L1Miss, cfg.L1Miss+cfg.L2Miss), "miss in L1 instruction cache / L2"},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-10s %s\n", r.c, r.l, r.d)
	}
	fmt.Fprintf(w, "\ncaches: %dKB/%dKB direct-mapped L1 I/D, %dKB L2; %d-byte lines; %dKB pages\n",
		cfg.ICache.Size>>10, cfg.DCache.Size>>10, cfg.L2.Size>>10, cfg.ICache.LineSize, cfg.PageSize>>10)
	fmt.Fprintf(w, "branch logic: %d-entry 1-bit BHT, %d-entry return stack, %d-entry BTC\n",
		cfg.BHTEntries, cfg.ReturnStack, cfg.BTCEntries)
	return nil
}

// Fig1 regenerates the cumulative execute-instruction distributions: the
// share of execute instructions covered by the top-x virtual commands.
func Fig1(opt Options) error {
	w := opt.out()
	fmt.Fprintf(w, "Figure 1: cumulative native instruction count distributions\n")
	fmt.Fprintf(w, "(execute instructions covered by the top-x virtual commands)\n\n")
	fmt.Fprintf(w, "%-18s %6s %6s %6s %6s %6s\n", "Benchmark", "top1", "top2", "top3", "top5", "top10")
	for _, p := range workloads.Suite(opt.scale()) {
		if p.System == core.SysC {
			continue
		}
		res, err := opt.measure(p)
		if err != nil {
			return err
		}
		ops := res.Stats.Ops
		sort.Slice(ops, func(a, b int) bool { return ops[a].Execute > ops[b].Execute })
		var cum [5]float64
		idx := map[int]int{1: 0, 2: 1, 3: 2, 5: 3, 10: 4}
		total := float64(res.Stats.Execute)
		running := 0.0
		for k, op := range ops {
			running += float64(op.Execute)
			if slot, ok := idx[k+1]; ok {
				cum[slot] = 100 * running / total
			}
		}
		// Fill trailing slots when there are fewer commands than the cut.
		last := 0.0
		for k := range cum {
			if cum[k] == 0 {
				cum[k] = max(last, 100*running/total)
			}
			last = cum[k]
		}
		fmt.Fprintf(w, "%-18s %5.0f%% %5.0f%% %5.0f%% %5.0f%% %5.0f%%\n",
			p.ID(), cum[0], cum[1], cum[2], cum[3], cum[4])
	}
	return nil
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Fig2 regenerates the per-command histograms: for each benchmark, the
// top virtual commands with their share of commands and of execute
// instructions.
func Fig2(opt Options) error {
	w := opt.out()
	fmt.Fprintf(w, "Figure 2: virtual command and execute-instruction distributions\n\n")
	for _, p := range workloads.Suite(opt.scale()) {
		if p.System == core.SysC {
			continue
		}
		res, err := opt.measure(p)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s:\n", p.ID())
		ops := res.Stats.Ops
		if p.System == core.SysJava {
			ops = groupJavaOps(ops)
		}
		sort.Slice(ops, func(a, b int) bool { return ops[a].Execute > ops[b].Execute })
		n := len(ops)
		if n > 6 {
			n = 6
		}
		for _, op := range ops[:n] {
			cmdShare := 100 * float64(op.Count) / float64(res.Stats.Commands)
			exShare := 100 * float64(op.Execute) / float64(res.Stats.Execute)
			fmt.Fprintf(w, "  %-14s %5.1f%% of commands  %5.1f%% of execute  %s\n",
				op.Name, cmdShare, exShare, bar(exShare))
		}
	}
	return nil
}

func bar(pct float64) string {
	n := int(pct / 2.5)
	if n > 40 {
		n = 40
	}
	return strings.Repeat("#", n)
}

// MemModel regenerates the §3.3 memory-model measurements.
func MemModel(opt Options) error {
	w := opt.out()
	fmt.Fprintf(w, "Section 3.3: memory model costs\n\n")
	fmt.Fprintf(w, "%-18s %-12s %10s %12s %8s\n", "Benchmark", "Region", "Accesses", "Instr/access", "%total")
	for _, p := range workloads.Suite(opt.scale()) {
		if p.System == core.SysC {
			continue
		}
		res, err := opt.measure(p)
		if err != nil {
			return err
		}
		total := float64(res.NativeInstructions())
		for _, region := range res.Stats.Regions {
			if region.Accesses == 0 {
				continue
			}
			switch region.Name {
			case "memmodel", "java.stack", "java.field":
				fmt.Fprintf(w, "%-18s %-12s %10d %12.0f %7.1f%%\n",
					p.ID(), region.Name, region.Accesses, region.PerAccess(),
					100*float64(region.Instructions)/total)
			}
		}
	}
	return nil
}

// Fig3 regenerates the issue-slot stall distributions for the interpreted
// suite and the native baselines.
func Fig3(opt Options) error {
	w := opt.out()
	fmt.Fprintf(w, "Figure 3: overall execution behavior (%% of issue slots)\n\n")
	fmt.Fprintf(w, "%-18s %5s %6s %6s %6s %6s %6s %6s %6s %6s\n",
		"Benchmark", "busy", "other", "shint", "load", "mispr", "dtlb", "itlb", "dmiss", "imiss")
	progs := append(workloads.NativeSuite(opt.scale()), workloads.Suite(opt.scale())...)
	for _, p := range progs {
		if err := fig3Row(opt, p); err != nil {
			return err
		}
	}
	return nil
}

func fig3Row(opt Options, p core.Program) error {
	w := opt.out()
	res, err := opt.measurePipeline(p, alphasim.DefaultConfig())
	if err != nil {
		return err
	}
	st := res.Pipe
	width := 2
	fmt.Fprintf(w, "%-18s %4.0f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%%\n",
		p.ID(),
		100*st.BusyFrac(width),
		100*st.OtherFrac(width),
		100*st.StallFrac(alphasim.CauseShortInt, width),
		100*st.StallFrac(alphasim.CauseLoadDelay, width),
		100*st.StallFrac(alphasim.CauseMispredict, width),
		100*st.StallFrac(alphasim.CauseDTLB, width),
		100*st.StallFrac(alphasim.CauseITLB, width),
		100*st.StallFrac(alphasim.CauseDMiss, width),
		100*st.StallFrac(alphasim.CauseIMiss, width))
	return nil
}

// Fig4 regenerates the instruction-cache sweeps: miss rate per 100
// instructions across sizes and associativities for the Java, Perl and
// Tcl suites (plus MIPSI des for contrast).
func Fig4(opt Options) error {
	w := opt.out()
	fmt.Fprintf(w, "Figure 4: instruction cache behavior (misses per 100 instructions)\n\n")
	fmt.Fprintf(w, "%-18s", "Benchmark")
	sweepCfg := alphasim.DefaultICacheSweep()
	for _, pt := range sweepCfg.Points() {
		fmt.Fprintf(w, " %9s", pt.Label())
	}
	fmt.Fprintln(w)
	for _, p := range workloads.Suite(opt.scale()) {
		switch p.System {
		case core.SysC:
			continue
		case core.SysMIPSI:
			if p.Name != "des" {
				continue
			}
		}
		sweep := alphasim.DefaultICacheSweep()
		if _, err := opt.measureSweep(p, sweep); err != nil {
			return err
		}
		fmt.Fprintf(w, "%-18s", p.ID())
		for _, pt := range sweep.Points() {
			fmt.Fprintf(w, " %9.2f", pt.MissPer100())
		}
		fmt.Fprintln(w)
	}
	return nil
}

// groupJavaOps folds raw bytecodes into the primary categories Figure 2
// uses for Java (st_load, st_store, alu, branch, call, field, native).
func groupJavaOps(ops []atom.OpStats) []atom.OpStats {
	cat := func(name string) string {
		switch {
		case name == "iload" || name == "iconst" || name == "ldc":
			return "st_load"
		case name == "istore" || name == "iinc":
			return "st_store"
		case name == "invokenative":
			return "native"
		case strings.HasPrefix(name, "get") || strings.HasPrefix(name, "put"):
			return "field"
		case strings.HasPrefix(name, "if") || name == "goto":
			return "branch"
		case name == "invokestatic" || name == "return" || name == "ireturn":
			return "call"
		case strings.Contains(name, "array") || strings.Contains(name, "aload") ||
			strings.Contains(name, "astore") || name == "new":
			return "array"
		}
		return "alu"
	}
	grouped := make(map[string]*atom.OpStats)
	var order []string
	for _, op := range ops {
		c := cat(op.Name)
		g, ok := grouped[c]
		if !ok {
			g = &atom.OpStats{Name: c}
			grouped[c] = g
			order = append(order, c)
		}
		g.Count += op.Count
		g.FetchDecode += op.FetchDecode
		g.Execute += op.Execute
	}
	out := make([]atom.OpStats, 0, len(order))
	for _, c := range order {
		out = append(out, *grouped[c])
	}
	return out
}
