package harness

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
	"testing"
	"time"

	"interplab/internal/core"
	"interplab/internal/labstats"
	"interplab/internal/telemetry"
)

// TestStopAtFirstErrorLedgerBalance pins the scheduler's stop-at-first-
// error contract under parallelism > 1, now with the ledger watching: the
// returned error is the first in submission order, nothing after it is
// recorded in the manifest, every unrecorded job is either unrun
// (abandoned/unclaimed in ledger terms) or ran-but-uncollected, and the
// ledger balances exactly — enqueued = claimed + unclaimed and claimed =
// finished + abandoned — even though the batch died mid-flight.
func TestStopAtFirstErrorLedgerBalance(t *testing.T) {
	const n = 32
	const failAt = 5
	man := telemetry.NewManifest(1)
	opt := Options{Parallelism: 4, Out: io.Discard}
	opt.rec = man.StartRun("synthetic")
	b := opt.newBatch()
	for i := 0; i < n; i++ {
		i := i
		b.measure(core.Program{
			System: "X", Name: fmt.Sprintf("j%02d", i),
			Run: func(ctx *core.Ctx) error {
				time.Sleep(time.Millisecond)
				switch i {
				case failAt:
					return errors.New("boom at 5")
				case 20:
					return errors.New("boom at 20")
				}
				return nil
			},
		})
	}
	err := b.run()
	if err == nil || !strings.Contains(err.Error(), "boom at 5") {
		t.Fatalf("run() = %v, want the submission-order-first error (boom at 5)", err)
	}

	// The serial semantics: exactly the prefix before the first error is
	// recorded, in order.
	if got := len(opt.rec.Measurements); got != failAt {
		t.Errorf("recorded %d measurements, want the %d before the first error", got, failAt)
	}
	for i, mm := range opt.rec.Measurements {
		if want := fmt.Sprintf("X/j%02d", i); mm.Program != want {
			t.Errorf("measurement %d = %q, want %q", i, mm.Program, want)
		}
	}

	if len(opt.rec.Sched) != 1 {
		t.Fatalf("got %d sched blocks, want 1", len(opt.rec.Sched))
	}
	s := opt.rec.Sched[0]
	if s.Jobs.Enqueued != n {
		t.Errorf("enqueued = %d, want %d", s.Jobs.Enqueued, n)
	}
	if s.Jobs.Enqueued != s.Jobs.Claimed+s.Jobs.Unclaimed {
		t.Errorf("ledger does not balance: enqueued %d != claimed %d + unclaimed %d",
			s.Jobs.Enqueued, s.Jobs.Claimed, s.Jobs.Unclaimed)
	}
	if s.Jobs.Claimed != s.Jobs.Finished+s.Jobs.Abandoned {
		t.Errorf("ledger does not balance: claimed %d != finished %d + abandoned %d",
			s.Jobs.Claimed, s.Jobs.Finished, s.Jobs.Abandoned)
	}
	if s.Jobs.Errors < 1 {
		t.Errorf("errors = %d, want >= 1", s.Jobs.Errors)
	}
	// The prefix through the failing job was claimed in cursor order and
	// fully executed before collect.
	if s.Jobs.Finished <= failAt {
		t.Errorf("finished = %d, want > %d (the prefix plus the failing job)", s.Jobs.Finished, failAt)
	}

	// Cross-check the ledger against the jobs themselves: every job after
	// the first error is either unrecorded (not in the manifest, checked
	// above) or unrun, and every unrun job is abandoned or unclaimed.
	outcomes := make(map[int]string, n)
	for _, jr := range s.Ledger {
		outcomes[jr.Index] = jr.Outcome
	}
	for i, j := range b.jobs {
		if j.ran {
			if out := outcomes[j.lidx]; out != labstats.OutcomeOK && out != labstats.OutcomeError {
				t.Errorf("job %d ran but ledger says %q", i, out)
			}
			continue
		}
		if out := outcomes[j.lidx]; out != labstats.OutcomeAbandoned && out != labstats.OutcomeUnclaimed {
			t.Errorf("job %d never ran but ledger says %q", i, out)
		}
	}
}

// TestSchedBlockOnParallelRun is the tentpole's acceptance check at the
// harness level: a parallelism-4 table1 run records one sched block whose
// per-worker busy+idle sums to the batch wall time, whose utilization is
// positive for every worker, and whose headline ratios are sane.  The
// same numbers must reach the telemetry registry as sched.* instruments.
func TestSchedBlockOnParallelRun(t *testing.T) {
	man := telemetry.NewManifest(0.1)
	reg := telemetry.NewRegistry()
	opt := Options{Scale: 0.1, Out: io.Discard, Parallelism: 4, Manifest: man, Telemetry: reg}
	if err := Run("table1", opt); err != nil {
		t.Fatal(err)
	}
	if len(man.Runs) != 1 || len(man.Runs[0].Sched) != 1 {
		t.Fatalf("want 1 run with 1 sched block, got %+v", man.Runs)
	}
	s := man.Runs[0].Sched[0]
	if s.WorkersRequested != 4 || s.WorkersEffective != 4 {
		t.Errorf("workers = %d requested / %d effective, want 4/4", s.WorkersRequested, s.WorkersEffective)
	}
	// Finished units = recorded measurements plus table1's one setup and
	// one render job; the phase decomposition must agree line by line.
	if s.Jobs.Finished != len(man.Runs[0].Measurements)+2 {
		t.Errorf("finished %d != %d recorded measurements + setup + render",
			s.Jobs.Finished, len(man.Runs[0].Measurements))
	}
	if len(s.Phases) != 3 {
		t.Fatalf("got %d phases, want setup/measure/render: %+v", len(s.Phases), s.Phases)
	}
	for i, want := range []string{"setup", "measure", "render"} {
		if s.Phases[i].Phase != want {
			t.Errorf("phase %d = %q, want %q", i, s.Phases[i].Phase, want)
		}
		if s.Phases[i].Jobs == 0 || s.Phases[i].BusyUS <= 0 {
			t.Errorf("phase %q recorded no work: %+v", want, s.Phases[i])
		}
	}
	if s.Phases[1].Jobs != len(man.Runs[0].Measurements) {
		t.Errorf("measure phase ran %d jobs, want %d", s.Phases[1].Jobs, len(man.Runs[0].Measurements))
	}
	if s.ClaimPolicy != labstats.PolicyLJF {
		t.Errorf("claim policy = %q, want %q on a parallel run", s.ClaimPolicy, labstats.PolicyLJF)
	}
	if s.CPUs <= 0 || s.GOMAXPROCS <= 0 {
		t.Errorf("cpu accounting missing: cpus=%d gomaxprocs=%d", s.CPUs, s.GOMAXPROCS)
	}
	for _, jr := range s.Ledger {
		if jr.EstUS <= 0 || jr.EstSource == "" {
			t.Errorf("job %d (%s %s) has no cost estimate: est=%v source=%q",
				jr.Index, jr.Kind, jr.Program, jr.EstUS, jr.EstSource)
		}
	}
	if len(s.Workers) != 4 {
		t.Fatalf("got %d worker rows, want 4", len(s.Workers))
	}
	for _, w := range s.Workers {
		if sum := w.BusyUS + w.IdleUS; math.Abs(sum-s.WallUS) > 0.01*s.WallUS {
			t.Errorf("worker %d busy+idle = %v, want wall %v (±1%%)", w.Worker, sum, s.WallUS)
		}
		if w.Utilization <= 0 || w.Utilization > 1 {
			t.Errorf("worker %d utilization = %v, want (0, 1]", w.Worker, w.Utilization)
		}
		if w.Jobs == 0 {
			t.Errorf("worker %d claimed no jobs", w.Worker)
		}
	}
	if s.SerialFraction < 0 || s.SerialFraction > 1 {
		t.Errorf("serial fraction = %v", s.SerialFraction)
	}
	if s.MeasuredSpeedupX <= 0 || s.PredictedSpeedupX < 1 {
		t.Errorf("speedups: measured %v, predicted %v", s.MeasuredSpeedupX, s.PredictedSpeedupX)
	}
	if s.CriticalPathUS <= 0 || s.CriticalPathUS > s.WallUS {
		t.Errorf("critical path = %v with wall %v", s.CriticalPathUS, s.WallUS)
	}
	if s.Runtime == nil || s.Runtime.AllocBytes == 0 {
		t.Error("runtime snapshot delta missing or empty")
	}
	if len(s.Ledger) != s.Jobs.Enqueued {
		t.Errorf("ledger has %d records for %d jobs", len(s.Ledger), s.Jobs.Enqueued)
	}

	// Registry surface: per-worker utilization gauges and batch counters.
	if got := reg.Counter("sched.batches").Value(); got != 1 {
		t.Errorf("sched.batches = %d, want 1", got)
	}
	if got := reg.Counter("sched.jobs").Value(); got != uint64(s.Jobs.Finished) {
		t.Errorf("sched.jobs = %d, want %d", got, s.Jobs.Finished)
	}
	for w := 0; w < 4; w++ {
		if u := reg.Gauge(fmt.Sprintf("sched.worker.%d.utilization", w)).Value(); u <= 0 {
			t.Errorf("sched.worker.%d.utilization = %v, want > 0", w, u)
		}
	}
}

// TestSchedBlockOnSerialRun: the serial path keeps the same books — one
// worker, utilization positive, serial fraction exactly 1 (no overlap is
// possible).
func TestSchedBlockOnSerialRun(t *testing.T) {
	man := telemetry.NewManifest(0.1)
	opt := Options{Scale: 0.1, Out: io.Discard, Parallelism: 1, Manifest: man}
	if err := Run("fig1", opt); err != nil {
		t.Fatal(err)
	}
	s := man.Runs[0].Sched[0]
	if s.WorkersEffective != 1 || len(s.Workers) != 1 {
		t.Fatalf("serial run should report one worker: %+v", s)
	}
	if s.SerialFraction != 1 {
		t.Errorf("serial fraction = %v, want exactly 1", s.SerialFraction)
	}
	if s.ClaimPolicy != labstats.PolicyFIFO {
		t.Errorf("claim policy = %q, want %q on a serial run", s.ClaimPolicy, labstats.PolicyFIFO)
	}
	if s.Workers[0].Utilization <= 0 {
		t.Errorf("utilization = %v, want > 0", s.Workers[0].Utilization)
	}
	if s.Jobs.Abandoned != 0 || s.Jobs.Unclaimed != 0 || s.Jobs.Errors != 0 {
		t.Errorf("clean serial run should have no abandoned/unclaimed/errors: %+v", s.Jobs)
	}
}

// TestSchedContentionBracket: Options.SchedContention arms the optional
// mutex-/block-profile capture and the bracket's record lands in the
// sched block.
func TestSchedContentionBracket(t *testing.T) {
	man := telemetry.NewManifest(0.1)
	opt := Options{Scale: 0.1, Out: io.Discard, Parallelism: 2, Manifest: man, SchedContention: true}
	if err := Run("fig1", opt); err != nil {
		t.Fatal(err)
	}
	s := man.Runs[0].Sched[0]
	if s.Contention == nil {
		t.Fatal("SchedContention set but no contention record in the sched block")
	}
	if s.Contention.MutexProfileFraction <= 0 {
		t.Errorf("contention bracket rates not recorded: %+v", s.Contention)
	}
}

// TestClaimInstantsOnWorkerLanes: a traced parallel run marks each job
// claim as an instant event on the claiming worker's lane.
func TestClaimInstantsOnWorkerLanes(t *testing.T) {
	tr := telemetry.NewTracer()
	opt := Options{Scale: 0.1, Out: io.Discard, Parallelism: 4, Tracer: tr}
	if err := Run("fig1", opt); err != nil {
		t.Fatal(err)
	}
	claims := 0
	for _, ev := range tr.Events() {
		if ev.Ph == "i" && strings.HasPrefix(ev.Name, "claim ") {
			claims++
			if ev.Tid < 2 {
				t.Errorf("claim instant on lane %d, want a worker lane (>= 2)", ev.Tid)
			}
		}
	}
	if claims == 0 {
		t.Error("no claim instants recorded on a traced parallel run")
	}
}
