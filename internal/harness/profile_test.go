package harness

import (
	"io"
	"testing"

	"interplab/internal/profile"
	"interplab/internal/telemetry"
)

// TestProfileOptionRecordsArtifacts pins the Options.Profile wiring: every
// measurement of a profiled experiment yields a per-program profile in the
// set and a matching artifact in the run manifest, and the artifact's
// totals are internally consistent.
func TestProfileOptionRecordsArtifacts(t *testing.T) {
	set := profile.NewSet()
	man := telemetry.NewManifest(0.1)
	if err := Run("table1", Options{Scale: 0.1, Out: io.Discard, Profile: set, Manifest: man}); err != nil {
		t.Fatal(err)
	}
	profs := set.Profiles()
	if len(profs) == 0 {
		t.Fatal("no profiles collected")
	}
	for _, p := range profs {
		if p.Total(profile.SampleInstructions) == 0 {
			t.Errorf("%s: empty profile", p.Program)
		}
	}
	if len(man.Runs) != 1 {
		t.Fatalf("got %d manifest runs", len(man.Runs))
	}
	rec := man.Runs[0]
	if len(rec.Profiles) == 0 {
		t.Fatal("manifest has no profile artifacts")
	}
	if len(rec.Profiles) != len(rec.Measurements) {
		t.Errorf("artifacts (%d) != measurements (%d)", len(rec.Profiles), len(rec.Measurements))
	}
	for i, pa := range rec.Profiles {
		mm := rec.Measurements[i]
		if pa.Program != mm.Program {
			t.Errorf("artifact %d is %s, measurement is %s", i, pa.Program, mm.Program)
		}
		if pa.Instructions != int64(mm.Events) {
			t.Errorf("%s: artifact instructions %d != measured events %d", pa.Program, pa.Instructions, mm.Events)
		}
		var phaseSum int64
		for _, v := range pa.PhaseTotals {
			phaseSum += v
		}
		if phaseSum != pa.Instructions {
			t.Errorf("%s: phase totals sum to %d, want %d", pa.Program, phaseSum, pa.Instructions)
		}
		if pa.Folded == "" {
			t.Errorf("%s: artifact has no folded stacks", pa.Program)
		}
		if pa.Samples == 0 {
			t.Errorf("%s: artifact reports zero samples", pa.Program)
		}
	}
}
