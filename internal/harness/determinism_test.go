package harness

import (
	"bytes"
	"encoding/json"
	"testing"

	"interplab/internal/profile"
	"interplab/internal/rescache"
	"interplab/internal/telemetry"
)

// detScale is the workload scale of the determinism golden test.  The
// race-detector build (race_scale_test.go) shrinks it: the instrumented
// runs are an order of magnitude slower and would blow the package's test
// timeout, and the byte-identity property does not depend on scale.
var detScale = 0.1

// detRun executes one experiment with a manifest and profile set attached
// and returns everything the parallel scheduler and the measurement cache
// promise to keep byte-identical: the rendered text, the manifest run
// entries (wall times zeroed — they vary even between two serial runs —
// and cache_hit zeroed, the one field that legitimately flips between a
// cold and a warm run), the merged folded profile, and its pprof
// encoding.  tweaks adjust the Options before the run (e.g. forcing
// monolithic sweeps).
func detRun(t *testing.T, id string, parallelism int, cache *rescache.Cache, tweaks ...func(*Options)) (text string, runs []byte, folded string, pprof []byte, measured int) {
	t.Helper()
	var buf bytes.Buffer
	man := telemetry.NewManifest(detScale)
	set := profile.NewSet()
	opt := Options{Scale: detScale, Out: &buf, Parallelism: parallelism, Manifest: man, Profile: set, Cache: cache}
	for _, tweak := range tweaks {
		tweak(&opt)
	}
	if err := Run(id, opt); err != nil {
		t.Fatalf("%s (parallelism %d): %v", id, parallelism, err)
	}
	for _, r := range man.Runs {
		r.DurationUS = 0
		// The sched block records scheduling itself — timestamps, worker
		// assignment, runtime churn — so it legitimately differs between
		// serial and parallel runs; null it like the wall times.
		r.Sched = nil
		for i := range r.Measurements {
			r.Measurements[i].DurationUS = 0
			r.Measurements[i].CacheHit = false
		}
		measured += len(r.Measurements)
	}
	rb, err := json.Marshal(man.Runs)
	if err != nil {
		t.Fatal(err)
	}
	merged := set.Merged()
	var fb, pb bytes.Buffer
	if err := merged.WriteFolded(&fb, profile.SampleInstructions); err != nil {
		t.Fatal(err)
	}
	if err := merged.WritePprof(&pb); err != nil {
		t.Fatal(err)
	}
	return buf.String(), rb, fb.String(), pb.Bytes(), measured
}

// TestParallelOutputIsByteIdentical is the scheduler's acceptance test:
// for every experiment, a run on 8 workers must produce byte-identical
// rendered text, manifest entries, and folded profiles to a serial run.
// Ordered collection in the batch makes this hold by construction; this
// test pins it against regressions (including any nondeterminism in the
// measured systems themselves, which would show up here first).
func TestParallelOutputIsByteIdentical(t *testing.T) {
	for _, id := range Experiments {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			sText, sRuns, sFolded, sPprof, _ := detRun(t, id, 1, nil)
			pText, pRuns, pFolded, pPprof, _ := detRun(t, id, 8, nil)
			if sText != pText {
				t.Errorf("rendered text differs between serial and parallel:\n--- serial ---\n%s\n--- parallel ---\n%s", sText, pText)
			}
			if !bytes.Equal(sRuns, pRuns) {
				t.Errorf("manifest entries differ between serial and parallel:\n--- serial ---\n%s\n--- parallel ---\n%s", sRuns, pRuns)
			}
			if sFolded != pFolded {
				t.Errorf("folded profiles differ between serial and parallel:\n--- serial ---\n%s\n--- parallel ---\n%s", sFolded, pFolded)
			}
			if !bytes.Equal(sPprof, pPprof) {
				t.Error("pprof encodings differ between serial and parallel")
			}
		})
	}
}

// TestWarmCacheOutputIsByteIdentical is the measurement cache's acceptance
// test: for every experiment, a cold run through an empty cache and a warm
// run (all results restored from disk) must both produce byte-identical
// rendered text, manifest entries, and folded profiles to an uncached run.
// The uncached baseline matters: a key collision inside one experiment
// (two same-ID program variants sharing an entry) corrupts cold and warm
// runs identically, so only the comparison against ground truth exposes
// it — exactly the bug the Program.Variant key field guards against.
func TestWarmCacheOutputIsByteIdentical(t *testing.T) {
	for _, id := range Experiments {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			cache, err := rescache.Open(t.TempDir(), false)
			if err != nil {
				t.Fatal(err)
			}
			bText, bRuns, bFolded, _, measured := detRun(t, id, 1, nil)
			cText, cRuns, cFolded, _, _ := detRun(t, id, 1, cache)
			wText, wRuns, wFolded, _, _ := detRun(t, id, 1, cache)
			hits, misses, puts, _ := cache.Counts()
			// Config-only experiments (table3) measure nothing, so the
			// cache legitimately stays idle; every measuring experiment
			// must store each cold result and restore each warm one.
			if measured > 0 && (hits == 0 || puts == 0) {
				t.Fatalf("cache never engaged: hits=%d misses=%d puts=%d", hits, misses, puts)
			}
			if misses != puts {
				t.Errorf("warm run missed: %d misses for %d cold puts", misses, puts)
			}
			for _, cmp := range []struct {
				arm          string
				text, folded string
				runs         []byte
			}{
				{"cold", cText, cFolded, cRuns},
				{"warm", wText, wFolded, wRuns},
			} {
				if cmp.text != bText {
					t.Errorf("rendered text differs between uncached and %s:\n--- uncached ---\n%s\n--- %s ---\n%s", cmp.arm, bText, cmp.arm, cmp.text)
				}
				if !bytes.Equal(cmp.runs, bRuns) {
					t.Errorf("manifest entries differ between uncached and %s:\n--- uncached ---\n%s\n--- %s ---\n%s", cmp.arm, bRuns, cmp.arm, cmp.runs)
				}
				if cmp.folded != bFolded {
					t.Errorf("folded profiles differ between uncached and %s:\n--- uncached ---\n%s\n--- %s ---\n%s", cmp.arm, bFolded, cmp.arm, cmp.folded)
				}
			}
		})
	}
}

// TestSweepDecompositionIsByteIdentical pins the per-point sweep
// decomposition against its monolithic baseline: a parallel fig4 run with
// every sweep split into one job per cache geometry must produce
// byte-identical rendered text, manifest entries, folded profiles, and
// pprof encodings to the same run forced monolithic.  The simulated
// caches never interact, so re-running the workload per single-point
// sweep accumulates exactly the monolithic counts; this test is the wall
// that keeps that equivalence from regressing.
func TestSweepDecompositionIsByteIdentical(t *testing.T) {
	mText, mRuns, mFolded, mPprof, measured := detRun(t, "fig4", 8, nil,
		func(o *Options) { o.MonolithicSweeps = true })
	dText, dRuns, dFolded, dPprof, dMeasured := detRun(t, "fig4", 8, nil)
	if measured == 0 || dMeasured != measured {
		t.Fatalf("measured %d monolithic vs %d decomposed manifest records", measured, dMeasured)
	}
	if mText != dText {
		t.Errorf("rendered text differs between monolithic and per-point sweeps:\n--- monolithic ---\n%s\n--- per-point ---\n%s", mText, dText)
	}
	if !bytes.Equal(mRuns, dRuns) {
		t.Errorf("manifest entries differ between monolithic and per-point sweeps:\n--- monolithic ---\n%s\n--- per-point ---\n%s", mRuns, dRuns)
	}
	if mFolded != dFolded {
		t.Errorf("folded profiles differ between monolithic and per-point sweeps:\n--- monolithic ---\n%s\n--- per-point ---\n%s", mFolded, dFolded)
	}
	if !bytes.Equal(mPprof, dPprof) {
		t.Error("pprof encodings differ between monolithic and per-point sweeps")
	}
}

// TestNegativeParallelismRejected pins the Options contract: 0 means
// GOMAXPROCS, but a negative worker count is a caller bug and must be
// rejected up front, not silently coerced.
func TestNegativeParallelismRejected(t *testing.T) {
	err := Run("table3", Options{Scale: 0.1, Out: &bytes.Buffer{}, Parallelism: -4})
	if err == nil {
		t.Fatal("Parallelism -4 must be rejected")
	}
	if got := err.Error(); !bytes.Contains([]byte(got), []byte("-4")) {
		t.Errorf("error should name the bad value: %q", got)
	}
}
