package harness

import (
	"bytes"
	"encoding/json"
	"testing"

	"interplab/internal/profile"
	"interplab/internal/telemetry"
)

// detScale is the workload scale of the determinism golden test.  The
// race-detector build (race_scale_test.go) shrinks it: the instrumented
// runs are an order of magnitude slower and would blow the package's test
// timeout, and the byte-identity property does not depend on scale.
var detScale = 0.1

// detRun executes one experiment with a manifest and profile set attached
// and returns everything the parallel scheduler promises to keep
// byte-identical: the rendered text, the manifest run entries (wall times
// zeroed — they vary even between two serial runs), and the merged folded
// profile.
func detRun(t *testing.T, id string, parallelism int) (text string, runs []byte, folded string) {
	t.Helper()
	var buf bytes.Buffer
	man := telemetry.NewManifest(detScale)
	set := profile.NewSet()
	opt := Options{Scale: detScale, Out: &buf, Parallelism: parallelism, Manifest: man, Profile: set}
	if err := Run(id, opt); err != nil {
		t.Fatalf("%s (parallelism %d): %v", id, parallelism, err)
	}
	for _, r := range man.Runs {
		r.DurationUS = 0
		for i := range r.Measurements {
			r.Measurements[i].DurationUS = 0
		}
	}
	rb, err := json.Marshal(man.Runs)
	if err != nil {
		t.Fatal(err)
	}
	var fb bytes.Buffer
	if err := set.Merged().WriteFolded(&fb, profile.SampleInstructions); err != nil {
		t.Fatal(err)
	}
	return buf.String(), rb, fb.String()
}

// TestParallelOutputIsByteIdentical is the scheduler's acceptance test:
// for every experiment, a run on 8 workers must produce byte-identical
// rendered text, manifest entries, and folded profiles to a serial run.
// Ordered collection in the batch makes this hold by construction; this
// test pins it against regressions (including any nondeterminism in the
// measured systems themselves, which would show up here first).
func TestParallelOutputIsByteIdentical(t *testing.T) {
	for _, id := range Experiments {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			sText, sRuns, sFolded := detRun(t, id, 1)
			pText, pRuns, pFolded := detRun(t, id, 8)
			if sText != pText {
				t.Errorf("rendered text differs between serial and parallel:\n--- serial ---\n%s\n--- parallel ---\n%s", sText, pText)
			}
			if !bytes.Equal(sRuns, pRuns) {
				t.Errorf("manifest entries differ between serial and parallel:\n--- serial ---\n%s\n--- parallel ---\n%s", sRuns, pRuns)
			}
			if sFolded != pFolded {
				t.Errorf("folded profiles differ between serial and parallel:\n--- serial ---\n%s\n--- parallel ---\n%s", sFolded, pFolded)
			}
		})
	}
}
