package harness

import (
	"fmt"
	"io"

	"interplab/internal/alphasim"
	"interplab/internal/core"
	"interplab/internal/profile"
	"interplab/internal/workloads"
)

// OptMatrix measures the §5 optimization ladder as an interpreter × tier
// matrix on the des workload: quickening (operand specialization at first
// execution) and superinstructions (fused hot opcode pairs), separately
// and combined, each cell a full pipeline measurement plus an
// instruction-cache sweep.  A hot-pair profiling pass on the two fusing
// interpreters shows the dispatch-pair evidence the fusion tables were
// selected from.
//
// The rendered matrix is the headline artifact: per interpreter, how the
// dispatched-command count, the fetch/decode share, and the cache-miss
// signature move as tiers are enabled — the measured answer to the
// paper's closing question of how much dispatch optimization can recover.
func OptMatrix(opt Options) error {
	scale := opt.scale()
	b := opt.newBatch()

	type cell struct {
		tier  workloads.Tier
		pipe  *job
		sweep *job
		sw    *alphasim.ICacheSweep
	}
	matrixSystems := []core.System{core.SysMIPSI, core.SysJava, core.SysPerl, core.SysTcl}
	pairSystems := []core.System{core.SysMIPSI, core.SysJava}
	var (
		rows     [][]cell
		pairJobs []*job
	)

	b.plan(func() error {
		for _, sys := range matrixSystems {
			var row []cell
			for _, t := range workloads.Tiers(sys) {
				p := workloads.DESTiered(sys, scale, t)
				sw := alphasim.DefaultICacheSweep()
				row = append(row, cell{
					tier:  t,
					pipe:  b.measurePipeline(p, alphasim.DefaultConfig()),
					sweep: b.measureSweep(p, sw),
					sw:    sw,
				})
			}
			rows = append(rows, row)
		}
		for _, sys := range pairSystems {
			pairJobs = append(pairJobs, b.measure(workloads.DESHotPairs(sys, scale)))
		}
		return nil
	})

	b.addRender("opt-matrix-pairs", func(w io.Writer) error {
		fmt.Fprintf(w, "Optimization-tier matrix (des workload)\n\n")
		fmt.Fprintf(w, "Superinstruction selection evidence — consecutive-dispatch pair counts:\n\n")
		for i, sys := range pairSystems {
			res := pairJobs[i].res
			if err := profile.WriteHotPairs(w, string(sys)+"/des", res.Stats.Pairs, 8); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		return nil
	})

	b.addRender("opt-matrix-table", func(w io.Writer) error {
		fmt.Fprintf(w, "Dispatch and execution by tier:\n\n")
		fmt.Fprintf(w, "%-6s %-14s %10s %12s %12s %8s %8s %12s\n",
			"Lang", "Tier", "VCmds(K)", "FD(K)", "NativeI(K)", "FD/cmd", "Ex/cmd", "Cycles(K)")
		for i, sys := range matrixSystems {
			for _, c := range rows[i] {
				res := c.pipe.res
				fd, ex := res.PerCommand()
				fmt.Fprintf(w, "%-6s %-14s %10s %12s %12s %8.0f %8.1f %12s\n",
					sys, c.tier.Key,
					fmtK(res.Commands()), fmtK(res.Stats.FetchDecode),
					fmtK(res.NativeInstructions()), fd, ex, fmtK(res.Pipe.Cycles))
			}
		}
		fmt.Fprintf(w, "\nDispatch recovered per tier (fetch/decode instructions vs baseline):\n")
		for i, sys := range matrixSystems {
			base := rows[i][0].pipe.res
			for _, c := range rows[i][1:] {
				res := c.pipe.res
				saved := 100 * (1 - float64(res.Stats.FetchDecode)/float64(base.Stats.FetchDecode))
				cyc := 100 * (1 - float64(res.Pipe.Cycles)/float64(base.Pipe.Cycles))
				fmt.Fprintf(w, "  %-6s %-14s fetch/decode %+5.1f%%, cycles %+5.1f%%\n",
					sys, c.tier.Key, -saved, -cyc)
			}
		}
		return nil
	})

	b.addRender("opt-matrix-icache", func(w io.Writer) error {
		fmt.Fprintf(w, "\nInstruction-cache signature by tier (misses per 100 instructions):\n\n")
		fmt.Fprintf(w, "%-6s %-14s", "Lang", "Tier")
		for _, pt := range alphasim.DefaultICacheSweep().Points() {
			fmt.Fprintf(w, " %9s", pt.Label())
		}
		fmt.Fprintln(w)
		for i, sys := range matrixSystems {
			for _, c := range rows[i] {
				fmt.Fprintf(w, "%-6s %-14s", sys, c.tier.Key)
				for _, pt := range c.sw.Points() {
					fmt.Fprintf(w, " %9.2f", pt.MissPer100())
				}
				fmt.Fprintln(w)
			}
		}
		return nil
	})

	return b.run()
}
