package harness

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"interplab/internal/telemetry"
)

// TestManifestRoundTripMatchesDirectRun is the acceptance check for the
// run-manifest writer: a table1 run recorded into a manifest, serialized,
// re-read, and re-rendered must produce byte-identical text to a direct
// run at the same scale.
func TestManifestRoundTripMatchesDirectRun(t *testing.T) {
	var direct bytes.Buffer
	if err := Run("table1", Options{Scale: 0.1, Out: &direct}); err != nil {
		t.Fatal(err)
	}

	man := telemetry.NewManifest(0.1)
	reg := telemetry.NewRegistry()
	var live bytes.Buffer
	if err := Run("table1", Options{Scale: 0.1, Out: &live, Manifest: man, Telemetry: reg}); err != nil {
		t.Fatal(err)
	}
	if live.String() != direct.String() {
		t.Fatal("manifest capture must not alter the live output")
	}
	man.AttachMetrics(reg)

	var ser bytes.Buffer
	if err := man.Write(&ser); err != nil {
		t.Fatal(err)
	}
	got, err := telemetry.ReadManifest(&ser)
	if err != nil {
		t.Fatal(err)
	}
	var rendered bytes.Buffer
	if err := got.RenderText(&rendered); err != nil {
		t.Fatal(err)
	}
	if rendered.String() != direct.String() {
		t.Errorf("report rendering diverged from the direct run:\n--- direct ---\n%s\n--- report ---\n%s",
			direct.String(), rendered.String())
	}

	// The manifest must carry structured measurements behind the text:
	// table1 measures 5 systems x 6 microbenchmarks through the pipeline.
	if len(got.Runs) != 1 || got.Runs[0].ID != "table1" {
		t.Fatalf("runs wrong: %+v", got.Runs)
	}
	mms := got.Runs[0].Measurements
	if len(mms) != 30 {
		t.Errorf("got %d measurements, want 30", len(mms))
	}
	for _, mm := range mms {
		if mm.Kind != "pipeline" || mm.Pipe == nil || mm.Pipe.Cycles == 0 {
			t.Fatalf("measurement missing pipeline stats: %+v", mm)
		}
		if mm.Events == 0 {
			t.Fatalf("measurement missing event count: %+v", mm)
		}
	}
	// And the registry snapshot must have counted those measures.
	var measures float64
	for _, m := range got.Metrics {
		if m.Name == "core.measures" {
			measures = m.Value
		}
	}
	if measures != 30 {
		t.Errorf("core.measures = %g, want 30", measures)
	}
}

// TestRunTraceExport drives an experiment with a tracer and validates the
// exported file against the Chrome trace-event JSON Object Format
// (chrome://tracing / Perfetto): traceEvents array, name/ph/ts/pid/tid on
// every record, dur on complete events, and the experiment span enclosing
// its measure spans.
func TestRunTraceExport(t *testing.T) {
	tr := telemetry.NewTracer()
	if err := Run("fig1", Options{Scale: 0.1, Out: &bytes.Buffer{}, Tracer: tr}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events recorded")
	}
	var expTs, expEnd float64
	var measures int
	for _, ev := range doc.TraceEvents {
		name, _ := ev["name"].(string)
		ph, _ := ev["ph"].(string)
		ts, tsOK := ev["ts"].(float64)
		if name == "" || ph == "" || !tsOK || ts < 0 {
			t.Fatalf("malformed trace event: %v", ev)
		}
		if _, ok := ev["pid"].(float64); !ok {
			t.Fatalf("event missing pid: %v", ev)
		}
		if _, ok := ev["tid"].(float64); !ok {
			t.Fatalf("event missing tid: %v", ev)
		}
		dur, durOK := ev["dur"].(float64)
		if ph == "X" && (!durOK || dur < 0) {
			t.Fatalf("complete event missing dur: %v", ev)
		}
		if strings.HasPrefix(name, "experiment ") {
			expTs, expEnd = ts, ts+dur
		}
		if strings.HasPrefix(name, "measure ") {
			measures++
		}
	}
	if expEnd == 0 {
		t.Fatal("no experiment span recorded")
	}
	if measures == 0 {
		t.Fatal("no measure spans recorded")
	}
	// Every span must fall inside the experiment span.
	for _, ev := range doc.TraceEvents {
		if ev["ph"] != "X" {
			continue
		}
		ts := ev["ts"].(float64)
		end := ts + ev["dur"].(float64)
		if ts < expTs-1 || end > expEnd+1 {
			t.Errorf("span %v [%g,%g] escapes experiment span [%g,%g]",
				ev["name"], ts, end, expTs, expEnd)
		}
	}
}

// TestOptionsOutDefaultsToStdout pins the satellite fix: a nil Out must
// not nil-deref — it falls back to os.Stdout.
func TestOptionsOutDefaultsToStdout(t *testing.T) {
	if got := (Options{}).out(); got != os.Stdout {
		t.Errorf("out() = %v, want os.Stdout", got)
	}
	var buf bytes.Buffer
	if got := (Options{Out: &buf}).out(); got != &buf {
		t.Error("explicit Out must win")
	}
}

// TestRunRejectsNegativeScale pins the satellite fix: negative scale is a
// clear error, not a silent clamp.
func TestRunRejectsNegativeScale(t *testing.T) {
	err := Run("table3", Options{Scale: -1, Out: &bytes.Buffer{}})
	if err == nil || !strings.Contains(err.Error(), "scale") {
		t.Fatalf("want scale error, got %v", err)
	}
}

func TestKnown(t *testing.T) {
	if !Known("table1") || Known("nope") {
		t.Error("Known misclassifies")
	}
}

// TestTelemetryMetricsPopulated checks that a telemetry-enabled run feeds
// the registry: run counts, event counts, and observer gauges.
func TestTelemetryMetricsPopulated(t *testing.T) {
	reg := telemetry.NewRegistry()
	if err := Run("table3", Options{Scale: 0.1, Out: &bytes.Buffer{}, Telemetry: reg}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("harness.experiments").Value(); got != 1 {
		t.Errorf("harness.experiments = %d, want 1", got)
	}
	// table3 only prints config (no measures); a measuring experiment must
	// also count events.
	if err := Run("fig1", Options{Scale: 0.1, Out: &bytes.Buffer{}, Telemetry: reg}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("core.measures").Value(); got == 0 {
		t.Error("core.measures not counted")
	}
	if got := reg.Counter("core.events").Value(); got == 0 {
		t.Error("core.events not counted")
	}
	if got := reg.Gauge("observer.events").Value(); got == 0 {
		t.Error("observer gauges not fed")
	}
}
