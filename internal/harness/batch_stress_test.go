package harness

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"interplab/internal/alphasim"
	"interplab/internal/core"
	"interplab/internal/labstats"
)

// stressEmits is the synthetic workload size: each program walks a 256-word
// routine 50×64 instructions, so every sweep point must count exactly this
// many instruction fetches.
const stressEmits = 50 * 64

// stressProgram builds a cheap deterministic workload that emits real
// instruction events (so sweeps accumulate counts), optionally failing or
// panicking instead.
func stressProgram(name string, fail error, panics bool) core.Program {
	return core.Program{
		System: "X", Name: name,
		Run: func(ctx *core.Ctx) error {
			if panics {
				panic("synthetic panic in " + name)
			}
			if fail != nil {
				return fail
			}
			r := ctx.Image.Routine("loop", 256)
			for k := 0; k < 50; k++ {
				ctx.Probe.Exec(r, 64)
			}
			return nil
		},
	}
}

// stressSweep returns a private 4-point sweep (8/16KB × 1/2-way, 32B
// lines); on a parallel batch it decomposes into 4 sweep-point jobs.
func stressSweep() *alphasim.ICacheSweep {
	return alphasim.NewICacheSweep([]int{8, 16}, []int{1, 2}, 32)
}

// TestBatchKeepGoingStress hammers the exported Batch's keep-going
// contract at parallelism 8 with a mixed load: plain measurements, ones
// that error, ones that panic, and sweep jobs (healthy, erroring, and
// panicking) that each decompose into per-point children.  Every job must
// run to completion, failures must stay isolated to their own job, sweeps
// must reassemble to exact deterministic counts, and the batch ledger
// must balance with the decomposed sweep-point rows on the books.  Run
// under -race this is also the scheduler's data-race stress.
func TestBatchKeepGoingStress(t *testing.T) {
	const nMeasure = 40
	b := NewBatch(Options{Parallelism: 8})

	errBoom := errors.New("synthetic failure")
	var measures []*Job
	wantErrs := 0
	for i := 0; i < nMeasure; i++ {
		fail := error(nil)
		panics := false
		switch i % 10 {
		case 3:
			fail = errBoom
			wantErrs++
		case 7:
			panics = true
			wantErrs++
		}
		j, err := b.Submit(BatchJob{
			Kind:    "measure",
			Program: stressProgram(fmt.Sprintf("m%02d", i), fail, panics),
		})
		if err != nil {
			t.Fatal(err)
		}
		measures = append(measures, j)
	}

	// Two healthy sweeps over identical geometry (their reassembled points
	// must agree bit for bit), one erroring, one panicking.
	good1, err := b.Submit(BatchJob{Kind: "sweep", Program: stressProgram("s-good-a", nil, false), Sweep: stressSweep()})
	if err != nil {
		t.Fatal(err)
	}
	good2, err := b.Submit(BatchJob{Kind: "sweep", Program: stressProgram("s-good-b", nil, false), Sweep: stressSweep()})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := b.Submit(BatchJob{Kind: "sweep", Program: stressProgram("s-bad", errBoom, false), Sweep: stressSweep()})
	if err != nil {
		t.Fatal(err)
	}
	panicky, err := b.Submit(BatchJob{Kind: "sweep", Program: stressProgram("s-panic", nil, true), Sweep: stressSweep()})
	if err != nil {
		t.Fatal(err)
	}
	const nSweepPoints = 4 * 4 // 4 sweep jobs × 4 geometry points

	// Keep-going: individual failures never fail the batch.
	if err := b.Run(); err != nil {
		t.Fatalf("keep-going batch returned %v", err)
	}

	// Isolation: every measurement ran; the planted failures surface on
	// their own jobs and nowhere else.
	for i, j := range measures {
		if !j.Ran() {
			t.Fatalf("measure %d never ran in keep-going mode", i)
		}
		switch i % 10 {
		case 3:
			if !errors.Is(j.Err(), errBoom) {
				t.Errorf("measure %d error = %v, want the planted failure", i, j.Err())
			}
		case 7:
			if j.Err() == nil || !strings.Contains(j.Err().Error(), "panicked") {
				t.Errorf("measure %d error = %v, want a recovered panic", i, j.Err())
			}
		default:
			if j.Err() != nil {
				t.Errorf("healthy measure %d failed: %v", i, j.Err())
			}
			if j.Duration() <= 0 {
				t.Errorf("healthy measure %d has no duration", i)
			}
		}
	}

	// Sweeps reassembled: exact instruction counts per point, identical
	// points across the two healthy sweeps, failures confined.
	for _, g := range []*Job{good1, good2} {
		if !g.Ran() || g.Err() != nil {
			t.Fatalf("healthy sweep: ran=%v err=%v", g.Ran(), g.Err())
		}
		pts := g.Sweep().Points()
		if len(pts) != 4 {
			t.Fatalf("sweep reassembled %d points, want 4", len(pts))
		}
		for _, pt := range pts {
			if pt.Instructions != stressEmits {
				t.Errorf("point %s counted %d instructions, want %d", pt.Label(), pt.Instructions, stressEmits)
			}
		}
	}
	for i, pt := range good1.Sweep().Points() {
		if other := good2.Sweep().Points()[i]; pt != other {
			t.Errorf("identical sweeps diverged at point %d: %+v vs %+v", i, pt, other)
		}
	}
	if !errors.Is(bad.Err(), errBoom) {
		t.Errorf("erroring sweep error = %v, want the planted failure", bad.Err())
	}
	if panicky.Err() == nil || !strings.Contains(panicky.Err().Error(), "panicked") {
		t.Errorf("panicking sweep error = %v, want a recovered panic", panicky.Err())
	}

	// The ledger balances with the decomposition on the books: sweep
	// parents never enter it, their per-point children do.
	s := b.Sched()
	if s == nil {
		t.Fatal("no sched stats after Run")
	}
	if s.ClaimPolicy != labstats.PolicyLJF {
		t.Errorf("claim policy = %q, want %q", s.ClaimPolicy, labstats.PolicyLJF)
	}
	wantUnits := nMeasure + nSweepPoints
	if s.Jobs.Enqueued != wantUnits {
		t.Errorf("ledger enqueued %d units, want %d (sweeps decomposed per point)", s.Jobs.Enqueued, wantUnits)
	}
	if s.Jobs.Finished != wantUnits || s.Jobs.Abandoned != 0 || s.Jobs.Unclaimed != 0 {
		t.Errorf("keep-going must finish every unit: %+v", s.Jobs)
	}
	// Errors: the planted measure failures plus every child of the two
	// broken sweeps (the failure repeats per point — each child re-runs
	// the workload).
	if wantLedgerErrs := wantErrs + 2*4; s.Jobs.Errors != wantLedgerErrs {
		t.Errorf("ledger errors = %d, want %d", s.Jobs.Errors, wantLedgerErrs)
	}
	points := 0
	for _, jr := range s.Ledger {
		if jr.Kind == "sweep-point" {
			points++
		}
		if jr.Kind == "sweep" {
			t.Errorf("monolithic sweep row %q in a parallel batch's ledger", jr.Program)
		}
		if jr.EstUS <= 0 || jr.EstSource == "" {
			t.Errorf("unit %d (%s %s) has no cost estimate", jr.Index, jr.Kind, jr.Program)
		}
	}
	if points != nSweepPoints {
		t.Errorf("ledger shows %d sweep-point rows, want %d", points, nSweepPoints)
	}
	if s.WorkersEffective != 8 {
		t.Errorf("workers effective = %d, want 8", s.WorkersEffective)
	}
	claimed := 0
	for _, w := range s.Workers {
		if w.Jobs > 0 {
			claimed++
		}
	}
	if claimed < 2 {
		// On a single hardware thread one goroutine can legitimately
		// drain the whole queue before another is ever scheduled, so the
		// overlap assertion only means something with real parallelism.
		if runtime.GOMAXPROCS(0) < 2 {
			t.Skipf("only %d workers claimed jobs on a GOMAXPROCS=1 machine; overlap needs >= 2 CPUs", claimed)
		}
		t.Errorf("only %d workers claimed jobs; the stress needs real overlap", claimed)
	}
}
