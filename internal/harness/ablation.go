package harness

import (
	"fmt"
	"io"

	"interplab/internal/alphasim"
	"interplab/internal/core"
	"interplab/internal/jvm"
	"interplab/internal/minicc"
	"interplab/internal/mipsi"
	"interplab/internal/tcl"
	"interplab/internal/workloads"
)

// Ablation quantifies the design choices DESIGN.md calls out:
//
//  1. iTLB size 8 vs 32 — the paper's footnote: a 32-entry iTLB
//     effectively eliminates iTLB stalls.
//  2. MIPSI's simulated page tables vs a flat guest memory — the §3.3
//     share attributable to the memory model.
//  3. Dispatch implementation — threaded interpretation for the
//     low-level VMs and parse caching (the Tcl 8 direction) for Tcl,
//     the §5 software optimizations, implemented as knobs.
//  4. Dispatch (fetch/decode) share per interpreter — the bound on what
//     those optimizations can ever save.
//
// All four sections' measurements are enumerated into one batch, so a
// parallel run overlaps them freely; rendering happens afterwards in
// section order.
func Ablation(opt Options) error {
	scale := opt.scale()
	b := opt.newBatch()

	var (
		tkdiff   core.Program
		itlbJobs []*job
		flatJobs []*job
		da       *dispatchAblationJobs
		fdProgs  []core.Program
		fdJobs   []*job
	)
	itlbSizes := []int{8, 32}
	flatModes := []bool{false, true}
	blocks := int(150 * scale)
	if blocks < 8 {
		blocks = 8
	}

	b.addSetup("ablation", func() error {
		for _, p := range workloads.TclSuite(scale) {
			if p.Name == "tkdiff" {
				tkdiff = p
			}
		}
		fdProgs = []core.Program{
			workloads.DESMIPSI(blocks),
			workloads.DESJava(int(260 * scale)),
			workloads.DESPerl(int(18 * scale)),
			workloads.DESTcl(int(6 * scale)),
		}
		return nil
	})

	b.plan(func() error {
		// Section 1: iTLB size sweep on Tcl/Tk tkdiff.
		itlbJobs = make([]*job, len(itlbSizes))
		for i, entries := range itlbSizes {
			cfg := alphasim.DefaultConfig()
			cfg.ITLBEntries = entries
			itlbJobs[i] = b.measurePipeline(tkdiff, cfg)
		}

		// Section 2: MIPSI page tables vs flat memory.
		flatJobs = make([]*job, len(flatModes))
		for i, flat := range flatModes {
			flat := flat
			flatJobs[i] = b.measure(core.Program{
				System: core.SysMIPSI, Name: "des",
				Variant: map[bool]string{false: "page-tables", true: "flat-memory"}[flat],
				Run: func(ctx *core.Ctx) error {
					prog, err := minicc.CompileMIPS("des", minicc.WithStdlib(desSourceForAblation(blocks)))
					if err != nil {
						return err
					}
					ip, err := mipsi.New(prog, ctx.OS, ctx.Image, ctx.Probe)
					if err != nil {
						return err
					}
					ip.FlatMemory = flat
					return ip.Run(0)
				},
			})
		}

		// Section 3: dispatch implementations (§5).
		da = enqueueDispatchAblation(b, blocks, scale)

		// Section 4: fetch/decode share per interpreter.
		fdJobs = make([]*job, len(fdProgs))
		for i, p := range fdProgs {
			fdJobs[i] = b.measure(p)
		}
		return nil
	})

	// Each section renders as its own job; the buffers flush in
	// registration order, so the sections appear in order regardless of
	// which render job finishes first.
	b.addRender("ablation-1", func(w io.Writer) error {
		fmt.Fprintf(w, "Ablation 1: iTLB size (Tcl/Tk tkdiff through the pipeline)\n")
		for i, entries := range itlbSizes {
			res := itlbJobs[i].res
			fmt.Fprintf(w, "  iTLB %2d entries: itlb stalls %.2f%% of issue slots, CPI %.2f\n",
				entries, 100*res.Pipe.StallFrac(alphasim.CauseITLB, 2), res.Pipe.CPI())
		}
		return nil
	})
	b.addRender("ablation-2", func(w io.Writer) error {
		fmt.Fprintf(w, "\nAblation 2: MIPSI simulated page tables vs flat memory (des)\n")
		for i, flat := range flatModes {
			res := flatJobs[i].res
			fd, ex := res.PerCommand()
			mm, _ := res.Stats.Region("memmodel")
			label := "page tables"
			if flat {
				label = "flat memory"
			}
			fmt.Fprintf(w, "  %-12s: %8s native instr, fd/cmd %.0f, ex/cmd %.1f, memmodel %4.1f%%\n",
				label, fmtK(res.NativeInstructions()), fd, ex,
				100*float64(mm.Instructions)/float64(res.NativeInstructions()))
		}
		return nil
	})
	b.addRender("ablation-3", func(w io.Writer) error {
		fmt.Fprintf(w, "\nAblation 3: dispatch implementation (§5: threaded code, bytecode caching)\n")
		da.render(w)
		return nil
	})
	b.addRender("ablation-4", func(w io.Writer) error {
		fmt.Fprintf(w, "\nAblation 4: fetch/decode share (the dispatch-optimization bound, §5)\n")
		for i := range fdProgs {
			res := fdJobs[i].res
			fdShare := float64(res.Stats.FetchDecode) / float64(res.NativeInstructions())
			fmt.Fprintf(w, "  %-10s fetch/decode is %4.1f%% of native instructions\n",
				res.Program.System, 100*fdShare)
		}
		return nil
	})

	return b.run()
}

// desSourceForAblation re-exposes the shared des source (kept in the
// workloads package) for the flat-memory run.
func desSourceForAblation(blocks int) string {
	return workloads.DESMiniCSource(blocks)
}

// dispatchAblationJobs holds Section 3's enqueued measurements: the §5
// software optimizations as implemented knobs — threaded dispatch for the
// low-level VMs, and parse caching (the Tcl 8 direction) for Tcl.
type dispatchAblationJobs struct {
	mipsi, java, tcl [2]*job // index 0 = baseline, 1 = optimized
}

// enqueueDispatchAblation adds Section 3's six measurements to the batch.
func enqueueDispatchAblation(b *batch, blocks int, scale float64) *dispatchAblationJobs {
	da := &dispatchAblationJobs{}
	// MIPSI: switch vs. threaded dispatch.
	for i, threaded := range []bool{false, true} {
		threaded := threaded
		da.mipsi[i] = b.measure(core.Program{
			System: core.SysMIPSI, Name: "des",
			Variant: map[bool]string{false: "switch-dispatch", true: "threaded-dispatch"}[threaded],
			Run: func(ctx *core.Ctx) error {
				prog, err := minicc.CompileMIPS("des", minicc.WithStdlib(desSourceForAblation(blocks)))
				if err != nil {
					return err
				}
				ip, err := mipsi.New(prog, ctx.OS, ctx.Image, ctx.Probe)
				if err != nil {
					return err
				}
				ip.Threaded = threaded
				return ip.Run(0)
			},
		})
	}

	// Java: switch vs. threaded dispatch.
	jblocks := int(260 * scale)
	if jblocks < 16 {
		jblocks = 16
	}
	for i, threaded := range []bool{false, true} {
		threaded := threaded
		da.java[i] = b.measure(core.Program{
			System: core.SysJava, Name: "des",
			Variant: map[bool]string{false: "switch-dispatch", true: "threaded-dispatch"}[threaded],
			Run: func(ctx *core.Ctx) error {
				mod, err := minicc.CompileJVM("des", minicc.WithStdlibJVM(desSourceForAblation(jblocks)))
				if err != nil {
					return err
				}
				if err := mod.Bind(jvm.OSNatives(ctx.OS)); err != nil {
					return err
				}
				vm, err := jvm.New(mod, ctx.Image, ctx.Probe)
				if err != nil {
					return err
				}
				vm.Threaded = threaded
				_, err = vm.Run("main", 0)
				return err
			},
		})
	}

	// Tcl: direct string interpretation vs. cached parse (Tcl 8 model).
	tblocks := int(6 * scale)
	if tblocks < 2 {
		tblocks = 2
	}
	for i, cached := range []bool{false, true} {
		cached := cached
		da.tcl[i] = b.measure(core.Program{
			System: core.SysTcl, Name: "des",
			Variant: map[bool]string{false: "re-parse", true: "cached-parse"}[cached],
			Run: func(ctx *core.Ctx) error {
				i := tcl.New(ctx.OS, ctx.Image, ctx.Probe)
				i.CachedParse = cached
				_, err := i.Eval(workloads.DESTclSource(tblocks))
				return err
			},
		})
	}
	return da
}

// render prints Section 3 from the collected results.
func (da *dispatchAblationJobs) render(w io.Writer) {
	for i, threaded := range []bool{false, true} {
		res := da.mipsi[i].res
		fd, _ := res.PerCommand()
		label := "switch  "
		if threaded {
			label = "threaded"
		}
		fmt.Fprintf(w, "  MIPSI %s dispatch: fd/cmd %5.1f, total %s native instr\n",
			label, fd, fmtK(res.NativeInstructions()))
	}
	for i, threaded := range []bool{false, true} {
		res := da.java[i].res
		fd, _ := res.PerCommand()
		label := "switch  "
		if threaded {
			label = "threaded"
		}
		fmt.Fprintf(w, "  Java  %s dispatch: fd/cmd %5.1f, total %s native instr\n",
			label, fd, fmtK(res.NativeInstructions()))
	}
	for i, cached := range []bool{false, true} {
		res := da.tcl[i].res
		fd, _ := res.PerCommand()
		label := "re-parse"
		if cached {
			label = "cached  "
		}
		fmt.Fprintf(w, "  Tcl   %s bodies:   fd/cmd %5.0f, total %s native instr\n",
			label, fd, fmtK(res.NativeInstructions()))
	}
}
