package harness

import (
	"fmt"

	"interplab/internal/alphasim"
	"interplab/internal/core"
	"interplab/internal/jvm"
	"interplab/internal/minicc"
	"interplab/internal/mipsi"
	"interplab/internal/tcl"
	"interplab/internal/workloads"
)

// Ablation quantifies the design choices DESIGN.md calls out:
//
//  1. iTLB size 8 vs 32 — the paper's footnote: a 32-entry iTLB
//     effectively eliminates iTLB stalls.
//  2. MIPSI's simulated page tables vs a flat guest memory — the §3.3
//     share attributable to the memory model.
//  3. Dispatch implementation — threaded interpretation for the
//     low-level VMs and parse caching (the Tcl 8 direction) for Tcl,
//     the §5 software optimizations, implemented as knobs.
//  4. Dispatch (fetch/decode) share per interpreter — the bound on what
//     those optimizations can ever save.
func Ablation(opt Options) error {
	w := opt.out()
	scale := opt.scale()

	fmt.Fprintf(w, "Ablation 1: iTLB size (Tcl/Tk tkdiff through the pipeline)\n")
	var tkdiff core.Program
	for _, p := range workloads.TclSuite(scale) {
		if p.Name == "tkdiff" {
			tkdiff = p
		}
	}
	for _, entries := range []int{8, 32} {
		cfg := alphasim.DefaultConfig()
		cfg.ITLBEntries = entries
		res, err := opt.measurePipeline(tkdiff, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  iTLB %2d entries: itlb stalls %.2f%% of issue slots, CPI %.2f\n",
			entries, 100*res.Pipe.StallFrac(alphasim.CauseITLB, 2), res.Pipe.CPI())
	}

	fmt.Fprintf(w, "\nAblation 2: MIPSI simulated page tables vs flat memory (des)\n")
	blocks := int(150 * scale)
	if blocks < 8 {
		blocks = 8
	}
	for _, flat := range []bool{false, true} {
		flat := flat
		p := core.Program{
			System: core.SysMIPSI, Name: "des",
			Run: func(ctx *core.Ctx) error {
				prog, err := minicc.CompileMIPS("des", minicc.WithStdlib(desSourceForAblation(blocks)))
				if err != nil {
					return err
				}
				ip, err := mipsi.New(prog, ctx.OS, ctx.Image, ctx.Probe)
				if err != nil {
					return err
				}
				ip.FlatMemory = flat
				return ip.Run(0)
			},
		}
		res, err := opt.measure(p)
		if err != nil {
			return err
		}
		fd, ex := res.PerCommand()
		mm, _ := res.Stats.Region("memmodel")
		label := "page tables"
		if flat {
			label = "flat memory"
		}
		fmt.Fprintf(w, "  %-12s: %8s native instr, fd/cmd %.0f, ex/cmd %.1f, memmodel %4.1f%%\n",
			label, fmtK(res.NativeInstructions()), fd, ex,
			100*float64(mm.Instructions)/float64(res.NativeInstructions()))
	}

	fmt.Fprintf(w, "\nAblation 3: dispatch implementation (§5: threaded code, bytecode caching)\n")
	if err := dispatchAblation(opt, blocks, scale); err != nil {
		return err
	}

	fmt.Fprintf(w, "\nAblation 4: fetch/decode share (the dispatch-optimization bound, §5)\n")
	for _, p := range []core.Program{
		workloads.DESMIPSI(blocks),
		workloads.DESJava(int(260 * scale)),
		workloads.DESPerl(int(18 * scale)),
		workloads.DESTcl(int(6 * scale)),
	} {
		res, err := opt.measure(p)
		if err != nil {
			return err
		}
		fdShare := float64(res.Stats.FetchDecode) / float64(res.NativeInstructions())
		fmt.Fprintf(w, "  %-10s fetch/decode is %4.1f%% of native instructions\n",
			res.Program.System, 100*fdShare)
	}
	return nil
}

// desSourceForAblation re-exposes the shared des source (kept in the
// workloads package) for the flat-memory run.
func desSourceForAblation(blocks int) string {
	return workloads.DESMiniCSource(blocks)
}

// dispatchAblation measures the §5 software optimizations as implemented
// knobs: threaded dispatch for the low-level VMs, and parse caching (the
// Tcl 8 direction) for Tcl.
func dispatchAblation(opt Options, blocks int, scale float64) error {
	w := opt.out()
	// MIPSI: switch vs. threaded dispatch.
	for _, threaded := range []bool{false, true} {
		threaded := threaded
		p := core.Program{
			System: core.SysMIPSI, Name: "des",
			Run: func(ctx *core.Ctx) error {
				prog, err := minicc.CompileMIPS("des", minicc.WithStdlib(desSourceForAblation(blocks)))
				if err != nil {
					return err
				}
				ip, err := mipsi.New(prog, ctx.OS, ctx.Image, ctx.Probe)
				if err != nil {
					return err
				}
				ip.Threaded = threaded
				return ip.Run(0)
			},
		}
		res, err := opt.measure(p)
		if err != nil {
			return err
		}
		fd, _ := res.PerCommand()
		label := "switch  "
		if threaded {
			label = "threaded"
		}
		fmt.Fprintf(w, "  MIPSI %s dispatch: fd/cmd %5.1f, total %s native instr\n",
			label, fd, fmtK(res.NativeInstructions()))
	}

	// Java: switch vs. threaded dispatch.
	jblocks := int(260 * scale)
	if jblocks < 16 {
		jblocks = 16
	}
	for _, threaded := range []bool{false, true} {
		threaded := threaded
		p := core.Program{
			System: core.SysJava, Name: "des",
			Run: func(ctx *core.Ctx) error {
				mod, err := minicc.CompileJVM("des", minicc.WithStdlibJVM(desSourceForAblation(jblocks)))
				if err != nil {
					return err
				}
				if err := mod.Bind(jvm.OSNatives(ctx.OS)); err != nil {
					return err
				}
				vm, err := jvm.New(mod, ctx.Image, ctx.Probe)
				if err != nil {
					return err
				}
				vm.Threaded = threaded
				_, err = vm.Run("main", 0)
				return err
			},
		}
		res, err := opt.measure(p)
		if err != nil {
			return err
		}
		fd, _ := res.PerCommand()
		label := "switch  "
		if threaded {
			label = "threaded"
		}
		fmt.Fprintf(w, "  Java  %s dispatch: fd/cmd %5.1f, total %s native instr\n",
			label, fd, fmtK(res.NativeInstructions()))
	}

	// Tcl: direct string interpretation vs. cached parse (Tcl 8 model).
	tblocks := int(6 * scale)
	if tblocks < 2 {
		tblocks = 2
	}
	for _, cached := range []bool{false, true} {
		cached := cached
		p := core.Program{
			System: core.SysTcl, Name: "des",
			Run: func(ctx *core.Ctx) error {
				i := tcl.New(ctx.OS, ctx.Image, ctx.Probe)
				i.CachedParse = cached
				_, err := i.Eval(workloads.DESTclSource(tblocks))
				return err
			},
		}
		res, err := opt.measure(p)
		if err != nil {
			return err
		}
		fd, _ := res.PerCommand()
		label := "re-parse"
		if cached {
			label = "cached  "
		}
		fmt.Fprintf(w, "  Tcl   %s bodies:   fd/cmd %5.0f, total %s native instr\n",
			label, fd, fmtK(res.NativeInstructions()))
	}
	return nil
}
