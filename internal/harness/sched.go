package harness

import (
	"sync"
	"sync/atomic"
	"time"

	"interplab/internal/alphasim"
	"interplab/internal/core"
	"interplab/internal/telemetry"
)

// This file is the parallel measurement scheduler.  The experiments'
// measurements are mutually independent — every core.Measure* call runs
// against a fresh image/probe/OS — so each experiment enumerates its jobs
// (program × config) into a batch, the batch fans them out over
// Options.Parallelism workers, and results are collected in submission
// order.  Because rendering and manifest/profile recording happen only at
// collect time, in submission order, the rendered tables, manifest
// entries, and merged profiles are byte-identical to a serial run; the
// only observable differences are wall time and the lanes concurrent
// spans land on in the Chrome trace.
//
// On failure the first error in submission order is returned and nothing
// after it is recorded, matching the serial path's stop-at-first-error
// semantics (workers stop claiming jobs once any job has failed, so later
// jobs may simply never run).

// job is one enqueued measurement: what to measure, and — after the batch
// ran — its result.
type job struct {
	kind  string // "measure", "pipeline", "sweep"
	prog  core.Program
	cfg   alphasim.Config       // pipeline jobs
	sweep *alphasim.ICacheSweep // sweep jobs

	res core.Result
	err error
	dur time.Duration
	ran bool
}

// batch accumulates an experiment's measurement jobs and runs them.
type batch struct {
	opt  Options
	jobs []*job
}

// newBatch starts an empty batch carrying the experiment's options.
func (o Options) newBatch() *batch { return &batch{opt: o} }

// measure enqueues a software-metrics measurement of p.
func (b *batch) measure(p core.Program) *job {
	j := &job{kind: "measure", prog: p}
	b.jobs = append(b.jobs, j)
	return j
}

// measurePipeline enqueues a measurement of p through the simulated
// processor.
func (b *batch) measurePipeline(p core.Program, cfg alphasim.Config) *job {
	j := &job{kind: "pipeline", prog: p, cfg: cfg}
	b.jobs = append(b.jobs, j)
	return j
}

// measureSweep enqueues a measurement of p through the instruction-cache
// sweep.  The sweep must be private to this job: workers run concurrently.
func (b *batch) measureSweep(p core.Program, sweep *alphasim.ICacheSweep) *job {
	j := &job{kind: "sweep", prog: p, sweep: sweep}
	b.jobs = append(b.jobs, j)
	return j
}

// run executes every enqueued job on the configured number of workers,
// then records results into the manifest and profile set in submission
// order.  It returns the first (submission-order) error, recording only
// the measurements before it.
func (b *batch) run() error {
	workers := b.opt.parallelism()
	if workers > len(b.jobs) {
		workers = len(b.jobs)
	}
	if workers <= 1 {
		// Serial path: execute in submission order on the main trace
		// lane, exactly the pre-scheduler behavior.
		for _, j := range b.jobs {
			b.exec(j, 0, b.opt.Telemetry)
			if j.err != nil {
				break
			}
		}
	} else {
		// Jobs are claimed in submission order via an atomic cursor; once
		// any job fails, workers stop claiming.  Every job with a smaller
		// index than a claimed one has itself been claimed, so after
		// wg.Wait the prefix up to the first error is fully measured.
		//
		// Each worker updates a private registry shard, keeping the batch
		// off the shared registry's mutex and counter cache lines; shards
		// are folded back in worker order once the batch drains, so the
		// merged totals are deterministic.
		var (
			cursor atomic.Int64
			failed atomic.Bool
			wg     sync.WaitGroup
		)
		shards := make([]*telemetry.Registry, workers)
		for w := 0; w < workers; w++ {
			shards[w] = b.opt.Telemetry.Shard()
			wg.Add(1)
			// Lane 1 is the experiment's main line; workers get 2..n+1.
			go func(w, lane int) {
				defer wg.Done()
				for !failed.Load() {
					i := int(cursor.Add(1)) - 1
					if i >= len(b.jobs) {
						return
					}
					b.exec(b.jobs[i], lane, shards[w])
					if b.jobs[i].err != nil {
						failed.Store(true)
						return
					}
				}
			}(w, w+2)
		}
		wg.Wait()
		for _, s := range shards {
			b.opt.Telemetry.Merge(s)
		}
	}
	for _, j := range b.jobs {
		if j.err != nil {
			return j.err
		}
		if !j.ran {
			// Only reachable when a later-indexed job failed; stop
			// recording where the serial path would have stopped.
			continue
		}
		b.opt.record(j.kind, j.res, j.dur, j.sweep)
	}
	return nil
}

// exec performs one job on the given trace lane (0 = main lane), updating
// the given telemetry registry (the shared one, or a worker's shard).
func (b *batch) exec(j *job, lane int, reg *telemetry.Registry) {
	o := b.opt
	args := []any{"program", j.prog.ID()}
	switch j.kind {
	case "pipeline":
		args = append(args, "sink", "pipeline")
	case "sweep":
		args = append(args, "sink", "icache-sweep")
	}
	span := o.Tracer.StartOn(lane, "measure "+j.prog.ID(), args...)
	defer span.End()
	opts := o.measureOpts(reg)
	if lane > 0 {
		opts = append(opts, core.WithTraceLane(lane))
	}
	start := time.Now()
	switch j.kind {
	case "measure":
		j.res, j.err = core.Measure(j.prog, opts...)
	case "pipeline":
		j.res, j.err = core.MeasureWithPipeline(j.prog, j.cfg, opts...)
	case "sweep":
		j.res, j.err = core.MeasureWithSweep(j.prog, j.sweep, opts...)
	}
	j.dur = time.Since(start)
	j.ran = true
}
