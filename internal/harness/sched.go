package harness

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"interplab/internal/alphasim"
	"interplab/internal/core"
	"interplab/internal/labstats"
	"interplab/internal/rescache"
	"interplab/internal/telemetry"
)

// This file is the parallel measurement scheduler.  The experiments'
// measurements are mutually independent — every core.Measure* call runs
// against a fresh image/probe/OS — so each experiment enumerates its jobs
// (program × config) into a batch, the batch fans them out over
// Options.Parallelism workers, and results are collected in submission
// order.  Because rendering and manifest/profile recording happen only at
// collect time, in submission order, the rendered tables, manifest
// entries, and merged profiles are byte-identical to a serial run; the
// only observable differences are wall time and the lanes concurrent
// spans land on in the Chrome trace.
//
// On failure the first error in submission order is returned and nothing
// after it is recorded, matching the serial path's stop-at-first-error
// semantics (workers stop claiming jobs once any job has failed, so later
// jobs may simply never run).

// job is one enqueued measurement: what to measure, and — after the batch
// ran — its result.
type job struct {
	kind  string // "measure", "pipeline", "sweep"
	prog  core.Program
	cfg   alphasim.Config       // pipeline jobs
	sweep *alphasim.ICacheSweep // sweep jobs
	lidx  int                   // this job's index in the batch ledger

	// scope and profiling override the batch-wide cache scope and
	// profiling mode for this one job (exported-Batch callers only;
	// experiment jobs leave them zero and inherit from Options).
	scope     *rescache.Scope
	profiling bool

	res core.Result
	err error
	dur time.Duration
	ran bool
}

// batch accumulates an experiment's measurement jobs and runs them.
type batch struct {
	opt  Options
	jobs []*job
	// led is the batch's scheduling ledger: per-job
	// enqueue/claim/start/finish timestamps, worker assignment, and
	// bracketing runtime snapshots, folded into the manifest's sched
	// block and the sched.* registry instruments after the batch drains.
	led *labstats.Ledger
	// keepGoing switches the batch from the experiments'
	// stop-at-first-error contract to the server's
	// every-job-runs-to-completion contract: a failing job neither stops
	// other workers nor fails the batch (callers read per-job errors), and
	// a panicking job is converted to that job's error instead of taking
	// the process down.
	keepGoing bool
	// lastSched retains the drained batch's speedup ledger for exported
	// callers (Batch.Sched); recordSched fills it.
	lastSched *labstats.SchedStats
}

// newBatch starts an empty batch carrying the experiment's options.
func (o Options) newBatch() *batch { return &batch{opt: o, led: labstats.NewLedger()} }

// enqueue appends one job and registers it in the ledger.
func (b *batch) enqueue(j *job) *job {
	j.lidx = b.led.Enqueue(j.kind, j.prog.ID())
	b.jobs = append(b.jobs, j)
	return j
}

// measure enqueues a software-metrics measurement of p.
func (b *batch) measure(p core.Program) *job {
	return b.enqueue(&job{kind: "measure", prog: p})
}

// measurePipeline enqueues a measurement of p through the simulated
// processor.
func (b *batch) measurePipeline(p core.Program, cfg alphasim.Config) *job {
	return b.enqueue(&job{kind: "pipeline", prog: p, cfg: cfg})
}

// measureSweep enqueues a measurement of p through the instruction-cache
// sweep.  The sweep must be private to this job: workers run concurrently.
func (b *batch) measureSweep(p core.Program, sweep *alphasim.ICacheSweep) *job {
	return b.enqueue(&job{kind: "sweep", prog: p, sweep: sweep})
}

// run executes every enqueued job on the configured number of workers,
// then records results into the manifest and profile set in submission
// order.  It returns the first (submission-order) error, recording only
// the measurements before it.
func (b *batch) run() error {
	requested := b.opt.parallelism()
	workers := requested
	if workers > len(b.jobs) {
		workers = len(b.jobs)
	}
	effective := workers
	if effective < 1 {
		effective = 1
	}
	if b.opt.SchedContention {
		b.led.CaptureContention()
	}
	b.led.Begin(requested, effective)
	if workers <= 1 {
		// Serial path: execute in submission order on the main trace
		// lane, exactly the pre-scheduler behavior.
		for _, j := range b.jobs {
			b.led.Claim(j.lidx, 0)
			b.exec(j, 0, b.opt.Telemetry)
			if j.err != nil && !b.keepGoing {
				break
			}
		}
	} else {
		// Jobs are claimed in submission order via an atomic cursor; once
		// any job fails, workers stop executing — each live worker
		// abandons at most the one job it claims after the failure, and
		// everything beyond stays unclaimed.  Every job with a smaller
		// index than an executed one has itself been claimed, so after
		// wg.Wait the prefix up to the first error is fully measured.
		//
		// Each worker updates a private registry shard, keeping the batch
		// off the shared registry's mutex and counter cache lines; shards
		// are folded back in worker order once the batch drains, so the
		// merged totals are deterministic.
		var (
			cursor atomic.Int64
			failed atomic.Bool
			wg     sync.WaitGroup
		)
		shards := make([]*telemetry.Registry, workers)
		for w := 0; w < workers; w++ {
			shards[w] = b.opt.Telemetry.Shard()
			wg.Add(1)
			// Lane 1 is the experiment's main line; workers get 2..n+1.
			go func(w, lane int) {
				defer wg.Done()
				var lastFinish time.Time
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(b.jobs) {
						return
					}
					j := b.jobs[i]
					if !b.keepGoing && failed.Load() {
						b.led.Abandon(j.lidx, w)
						return
					}
					b.led.Claim(j.lidx, w)
					b.opt.Tracer.InstantOn(lane, "claim "+j.prog.ID(), "job", i, "worker", w)
					if !lastFinish.IsZero() {
						if gap := time.Since(lastFinish); gap > 0 {
							b.opt.Tracer.InstantOn(lane, "idle", "worker", w,
								"gap_us", float64(gap)/float64(time.Microsecond))
						}
					}
					b.exec(j, lane, shards[w])
					lastFinish = time.Now()
					if j.err != nil && !b.keepGoing {
						failed.Store(true)
						return
					}
				}
			}(w, w+2)
		}
		wg.Wait()
		for _, s := range shards {
			b.opt.Telemetry.Merge(s)
		}
	}
	b.led.End()
	b.recordSched()
	if b.keepGoing {
		// Exported-batch callers read per-job results and errors
		// themselves and keep no manifest, so nothing is recorded here and
		// individual failures do not fail the batch.
		return nil
	}
	for _, j := range b.jobs {
		if j.err != nil {
			return j.err
		}
		if !j.ran {
			// Only reachable when a later-indexed job failed; stop
			// recording where the serial path would have stopped.
			continue
		}
		b.opt.record(j.kind, j.res, j.dur, j.sweep)
	}
	return nil
}

// exec performs one job on the given trace lane (0 = main lane), updating
// the given telemetry registry (the shared one, or a worker's shard).
func (b *batch) exec(j *job, lane int, reg *telemetry.Registry) {
	o := b.opt
	args := []any{"program", j.prog.ID()}
	switch j.kind {
	case "pipeline":
		args = append(args, "sink", "pipeline")
	case "sweep":
		args = append(args, "sink", "icache-sweep")
	}
	span := o.Tracer.StartOn(lane, "measure "+j.prog.ID(), args...)
	defer span.End()
	opts := o.measureOpts(reg, j)
	if lane > 0 {
		opts = append(opts, core.WithTraceLane(lane))
	}
	start := time.Now()
	b.led.Start(j.lidx)
	func() {
		if b.keepGoing {
			// A panicking workload must not take the server down with it:
			// isolate it to this job's error.  Experiment runs keep the
			// crash — a panic there is a lab bug that should be loud.
			defer func() {
				if r := recover(); r != nil {
					j.err = fmt.Errorf("%s: measurement panicked: %v", j.prog.ID(), r)
				}
			}()
		}
		switch j.kind {
		case "measure":
			j.res, j.err = core.Measure(j.prog, opts...)
		case "pipeline":
			j.res, j.err = core.MeasureWithPipeline(j.prog, j.cfg, opts...)
		case "sweep":
			j.res, j.err = core.MeasureWithSweep(j.prog, j.sweep, opts...)
		}
	}()
	b.led.Finish(j.lidx, j.err != nil)
	j.dur = time.Since(start)
	j.ran = true
}

// recordSched folds the drained batch's ledger into the run record: the
// manifest entry's sched block (even for failed batches — the ledger must
// balance exactly when something went wrong) and the sched.* registry
// instruments, including a per-worker utilization gauge and busy/job
// counters.
func (b *batch) recordSched() {
	s := b.led.Stats()
	if s == nil {
		return
	}
	b.lastSched = s
	b.opt.rec.AddSched(s)
	reg := b.opt.Telemetry
	if reg == nil {
		return
	}
	reg.Counter("sched.batches").Inc()
	reg.Counter("sched.jobs").Add(uint64(s.Jobs.Finished))
	reg.Counter("sched.errors").Add(uint64(s.Jobs.Errors))
	reg.Counter("sched.abandoned").Add(uint64(s.Jobs.Abandoned))
	reg.Counter("sched.unclaimed").Add(uint64(s.Jobs.Unclaimed))
	reg.Histogram("sched.batch_wall_us").Observe(uint64(s.WallUS))
	reg.Gauge("sched.workers_effective").Set(float64(s.WorkersEffective))
	reg.Gauge("sched.serial_fraction").Set(s.SerialFraction)
	reg.Gauge("sched.imbalance_pct").Set(s.ImbalancePct)
	reg.Gauge("sched.measured_speedup_x").Set(s.MeasuredSpeedupX)
	reg.Gauge("sched.contention_wait_us").Set(s.ContentionWaitUS)
	for _, w := range s.Workers {
		reg.Gauge(fmt.Sprintf("sched.worker.%d.utilization", w.Worker)).Set(w.Utilization)
		reg.Counter(fmt.Sprintf("sched.worker.%d.jobs", w.Worker)).Add(uint64(w.Jobs))
		reg.Counter(fmt.Sprintf("sched.worker.%d.busy_us", w.Worker)).Add(uint64(w.BusyUS))
	}
}
