package harness

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"interplab/internal/alphasim"
	"interplab/internal/core"
	"interplab/internal/labstats"
	"interplab/internal/rescache"
	"interplab/internal/telemetry"
)

// This file is the parallel measurement scheduler.  The experiments'
// measurements are mutually independent — every core.Measure* call runs
// against a fresh image/probe/OS — so each experiment enumerates its work
// into a batch, the batch fans it out over Options.Parallelism workers,
// and results are collected in submission order.  Because rendering goes
// to per-job buffers flushed in submission order and manifest/profile
// recording also happens in submission order, the rendered tables,
// manifest entries, and merged profiles are byte-identical to a serial
// run; the only observable differences are wall time and the lanes
// concurrent spans land on in the Chrome trace.
//
// The unit of scheduling is deliberately small and uniform.  A batch runs
// in sequential stages:
//
//	setup jobs  →  plan callbacks  →  measurement jobs  →  render jobs
//
// Setup jobs compute per-experiment inputs (workload enumeration), plan
// callbacks turn those inputs into measurement jobs, and render jobs
// format the collected results into private buffers.  Moving setup and
// render inside the batch means the speedup ledger's wall covers the
// whole experiment, and the ledger decomposes it per phase.  Sweep
// measurements additionally decompose into one job per cache geometry
// (see measureSweep), so a single large experiment can saturate every
// worker.
//
// Within a parallel stage, workers claim jobs longest-job-first: jobs are
// ordered by a cost estimate (static kind weights, refined by the
// process-global labstats cost model as batches drain), so critical-path
// jobs start first and the stage's tail stays short.  With uniform
// estimates the order degenerates to submission order — exactly the old
// FIFO cursor.
//
// On failure the first error in submission order is returned, nothing
// after it is recorded, and the render stage is skipped, matching the
// pre-staged path's stop-at-first-error semantics (workers stop claiming
// jobs once any job has failed, so later jobs may simply never run).

// job is one schedulable unit: a measurement, a setup closure, or a
// render closure — plus, for decomposed sweeps, a composite parent that
// never executes itself but reassembles its per-point children.
type job struct {
	kind  string // "measure", "pipeline", "sweep", "sweep-point", "setup", "render"
	name  string // setup/render jobs: display name (measure jobs use prog.ID())
	prog  core.Program
	cfg   alphasim.Config       // pipeline jobs
	sweep *alphasim.ICacheSweep // sweep and sweep-point jobs
	lidx  int                   // this job's index in the batch ledger; -1 for composite parents

	fn       func() error          // setup jobs
	renderFn func(io.Writer) error // render jobs
	buf      *bytes.Buffer         // render jobs: private output, flushed in submission order

	// parts, when non-nil, makes this a composite sweep parent: the
	// children are the schedulable units, and assemble() folds their
	// per-geometry points back into this job's sweep and result.
	parts []*job
	// noProfile suppresses profiling for sweep-point children after the
	// first: the attribution profile is a property of the event stream,
	// identical across geometry points, so one profiled child reproduces
	// the monolithic sweep's profile exactly.
	noProfile bool

	// scope and profiling override the batch-wide cache scope and
	// profiling mode for this one job (exported-Batch callers only;
	// experiment jobs leave them zero and inherit from Options).
	scope     *rescache.Scope
	profiling bool

	res core.Result
	err error
	dur time.Duration
	ran bool
}

// label returns the job's ledger/estimate identity.
func (j *job) label() string {
	if j.name != "" {
		return j.name
	}
	return j.prog.ID()
}

// batch accumulates an experiment's staged work and runs it.
type batch struct {
	opt    Options
	setups []*job
	plans  []func() error
	// jobs holds the measurement jobs in submission (= record) order;
	// composite sweep parents appear here while their children are the
	// units the workers actually execute.
	jobs    []*job
	renders []*job
	// led is the batch's scheduling ledger: per-job
	// enqueue/claim/start/finish timestamps, cost estimates, worker
	// assignment, and bracketing runtime snapshots, folded into the
	// manifest's sched block and the sched.* registry instruments after
	// the batch drains.
	led *labstats.Ledger
	// keepGoing switches the batch from the experiments'
	// stop-at-first-error contract to the server's
	// every-job-runs-to-completion contract: a failing job neither stops
	// other workers nor fails the batch (callers read per-job errors), and
	// a panicking job is converted to that job's error instead of taking
	// the process down.
	keepGoing bool
	// lastSched retains the drained batch's speedup ledger for exported
	// callers (Batch.Sched); recordSched fills it.
	lastSched *labstats.SchedStats
}

// newBatch starts an empty batch carrying the experiment's options.
func (o Options) newBatch() *batch { return &batch{opt: o, led: labstats.NewLedger()} }

// addSetup registers a setup-stage job: fn runs (possibly concurrently
// with other setup jobs) before any plan callback or measurement.
func (b *batch) addSetup(name string, fn func() error) *job {
	j := &job{kind: "setup", name: name, fn: fn}
	j.lidx = b.led.Enqueue(j.kind, name)
	b.setups = append(b.setups, j)
	return j
}

// plan registers a callback that runs on the coordinating goroutine after
// the setup stage drains, to enqueue measurement jobs from setup results.
// Callbacks run in registration order.
func (b *batch) plan(fn func() error) { b.plans = append(b.plans, fn) }

// addRender registers a render-stage job: fn runs after every measurement
// has been collected, writing into a private buffer that run() flushes to
// Options.Out in submission order — so parallel rendering keeps serial
// bytes.
func (b *batch) addRender(name string, fn func(io.Writer) error) *job {
	j := &job{kind: "render", name: name, renderFn: fn}
	j.lidx = b.led.Enqueue(j.kind, name)
	b.renders = append(b.renders, j)
	return j
}

// addJob appends one measurement job in submission order, decomposing
// sweeps into per-point children when the batch runs parallel.
func (b *batch) addJob(j *job) *job {
	if j.kind == "sweep" && b.opt.decomposeSweeps() {
		for k, part := range j.sweep.Split() {
			child := &job{
				kind:      "sweep-point",
				prog:      j.prog,
				sweep:     part,
				scope:     j.scope,
				profiling: j.profiling && k == 0,
				noProfile: k > 0,
			}
			child.lidx = b.led.Enqueue(child.kind, child.prog.ID())
			j.parts = append(j.parts, child)
		}
		j.lidx = -1
		b.jobs = append(b.jobs, j)
		return j
	}
	j.lidx = b.led.Enqueue(j.kind, j.label())
	b.jobs = append(b.jobs, j)
	return j
}

// measure enqueues a software-metrics measurement of p.
func (b *batch) measure(p core.Program) *job {
	return b.addJob(&job{kind: "measure", prog: p})
}

// measurePipeline enqueues a measurement of p through the simulated
// processor.
func (b *batch) measurePipeline(p core.Program, cfg alphasim.Config) *job {
	return b.addJob(&job{kind: "pipeline", prog: p, cfg: cfg})
}

// measureSweep enqueues a measurement of p through the instruction-cache
// sweep.  The sweep must be private to this job: workers run concurrently.
// On a parallel batch the sweep decomposes into one job per geometry
// point — the simulated caches never interact, so re-running the workload
// once per single-point sweep accumulates exactly the counts a monolithic
// pass would, and assemble() restores them into the submitted sweep in
// point order.
func (b *batch) measureSweep(p core.Program, sweep *alphasim.ICacheSweep) *job {
	return b.addJob(&job{kind: "sweep", prog: p, sweep: sweep})
}

// units returns the executable measurement units in submission order:
// composite sweep parents are replaced by their per-point children.
func (b *batch) units() []*job {
	out := make([]*job, 0, len(b.jobs))
	for _, j := range b.jobs {
		if j.parts != nil {
			out = append(out, j.parts...)
			continue
		}
		out = append(out, j)
	}
	return out
}

// capWorkers bounds the worker count by the stage width, min 1.
func capWorkers(requested, width int) int {
	w := requested
	if w > width {
		w = width
	}
	if w < 1 {
		w = 1
	}
	return w
}

// run executes the staged batch, then records results into the manifest
// and profile set and flushes rendered text, all in submission order.  It
// returns the first (stage-order, then submission-order) error, recording
// only the measurements before it.
func (b *batch) run() error {
	requested := b.opt.parallelism()
	if b.opt.SchedContention {
		b.led.CaptureContention()
	}
	if requested > 1 {
		b.led.SetPolicy(labstats.PolicyLJF)
	} else {
		b.led.SetPolicy(labstats.PolicyFIFO)
	}
	// The effective worker count is the widest stage's; planning can
	// still widen the measure stage, so it is finalized after the plan
	// callbacks run.
	b.led.Begin(requested, capWorkers(requested, len(b.setups)))

	setupFailed := b.runStage(b.setups, requested)

	var planErr error
	if !setupFailed {
		for _, plan := range b.plans {
			if planErr = plan(); planErr != nil {
				break
			}
		}
	}
	units := b.units()
	width := len(b.setups)
	for _, n := range []int{len(units), len(b.renders)} {
		if n > width {
			width = n
		}
	}
	b.led.SetEffective(capWorkers(requested, width))

	measureFailed := false
	if !setupFailed && planErr == nil {
		measureFailed = b.runStage(units, requested)
	}
	b.assemble()

	if !setupFailed && planErr == nil && !measureFailed {
		b.runStage(b.renders, requested)
	}

	b.led.End()
	b.recordSched()
	if b.keepGoing {
		// Exported-batch callers read per-job results and errors
		// themselves and keep no manifest, so nothing is recorded here and
		// individual failures do not fail the batch.
		return nil
	}
	for _, j := range b.setups {
		if j.err != nil {
			return j.err
		}
	}
	if planErr != nil {
		return planErr
	}
	for _, j := range b.jobs {
		if j.err != nil {
			return j.err
		}
		if !j.ran {
			// Only reachable when another job failed; stop recording where
			// the serial path would have stopped.
			continue
		}
		b.opt.record(j.kind, j.res, j.dur, j.sweep)
	}
	for _, j := range b.renders {
		if j.err != nil {
			return j.err
		}
		if j.ran && j.buf != nil {
			if _, err := j.buf.WriteTo(b.opt.out()); err != nil {
				return err
			}
		}
	}
	return nil
}

// runStage executes one stage's units on up to `requested` workers and
// reports whether any unit failed.  Parallel stages claim longest-job-
// first over the cost-model estimates; the serial path executes in
// submission order on the main trace lane, exactly the pre-scheduler
// behavior.
func (b *batch) runStage(units []*job, requested int) (failed bool) {
	if len(units) == 0 {
		return false
	}
	scale := b.opt.scale()
	cost := labstats.GlobalCostModel()
	ests := make([]float64, len(units))
	for i, j := range units {
		est, src := cost.Estimate(j.kind, j.label(), scale)
		ests[i] = est
		b.led.SetEstimate(j.lidx, est, src)
	}

	workers := capWorkers(requested, len(units))
	if workers <= 1 {
		for _, j := range units {
			b.led.Claim(j.lidx, 0)
			b.exec(j, 0, b.opt.Telemetry)
			if j.err != nil && !b.keepGoing {
				return true
			}
		}
		return false
	}

	// Jobs are claimed longest-first via an atomic cursor over the LJF
	// permutation; once any job fails, workers stop executing — each live
	// worker abandons at most the one job it claims after the failure,
	// and everything beyond stays unclaimed.
	//
	// Each worker updates a private registry shard, keeping the stage off
	// the shared registry's mutex and counter cache lines; shards are
	// folded back in worker order once the stage drains, so the merged
	// totals are deterministic.
	order := labstats.LJFOrder(ests)
	var (
		cursor     atomic.Int64
		failedFlag atomic.Bool
		wg         sync.WaitGroup
	)
	shards := make([]*telemetry.Registry, workers)
	for w := 0; w < workers; w++ {
		shards[w] = b.opt.Telemetry.Shard()
		wg.Add(1)
		// Lane 1 is the experiment's main line; workers get 2..n+1.
		go func(w, lane int) {
			defer wg.Done()
			var lastFinish time.Time
			for {
				n := int(cursor.Add(1)) - 1
				if n >= len(order) {
					return
				}
				j := units[order[n]]
				if !b.keepGoing && failedFlag.Load() {
					b.led.Abandon(j.lidx, w)
					return
				}
				b.led.Claim(j.lidx, w)
				b.opt.Tracer.InstantOn(lane, "claim "+j.label(), "job", order[n], "worker", w)
				if !lastFinish.IsZero() {
					if gap := time.Since(lastFinish); gap > 0 {
						b.opt.Tracer.InstantOn(lane, "idle", "worker", w,
							"gap_us", float64(gap)/float64(time.Microsecond))
					}
				}
				b.exec(j, lane, shards[w])
				lastFinish = time.Now()
				if j.err != nil && !b.keepGoing {
					failedFlag.Store(true)
					return
				}
			}
		}(w, w+2)
	}
	wg.Wait()
	for _, s := range shards {
		b.opt.Telemetry.Merge(s)
	}
	return failedFlag.Load()
}

// assemble folds each composite sweep parent's children back together:
// the parent's result is the first child's (the event-stream metrics and
// profile are geometry-independent), its sweep gets the children's
// per-geometry points restored in submission order, and its error is the
// first child error.  The parent counts as ran only when every child ran.
func (b *batch) assemble() {
	for _, p := range b.jobs {
		if p.parts == nil {
			continue
		}
		ran := true
		fromCache := true
		var dur time.Duration
		pts := make([]alphasim.SweepPoint, 0, len(p.parts))
		for _, c := range p.parts {
			if !c.ran {
				ran = false
			}
			if c.err != nil && p.err == nil {
				p.err = c.err
			}
			dur += c.dur
			if c.ran && c.err == nil {
				pts = append(pts, c.sweep.Points()...)
				if !c.res.FromCache {
					fromCache = false
				}
			}
		}
		p.ran = ran
		p.dur = dur
		if ran && p.err == nil {
			p.res = p.parts[0].res
			p.res.FromCache = fromCache
			p.sweep.RestorePoints(pts)
		}
	}
}

// exec performs one job on the given trace lane (0 = main lane), updating
// the given telemetry registry (the shared one, or a worker's shard).
func (b *batch) exec(j *job, lane int, reg *telemetry.Registry) {
	o := b.opt
	args := []any{"program", j.label()}
	switch j.kind {
	case "pipeline":
		args = append(args, "sink", "pipeline")
	case "sweep", "sweep-point":
		args = append(args, "sink", "icache-sweep")
	}
	spanName := "measure " + j.label()
	if j.kind == "setup" || j.kind == "render" {
		spanName = j.kind + " " + j.label()
	}
	span := o.Tracer.StartOn(lane, spanName, args...)
	defer span.End()
	var opts []core.MeasureOption
	if j.fn == nil && j.renderFn == nil {
		opts = o.measureOpts(reg, j)
		if lane > 0 {
			opts = append(opts, core.WithTraceLane(lane))
		}
	}
	start := time.Now()
	b.led.Start(j.lidx)
	func() {
		if b.keepGoing {
			// A panicking workload must not take the server down with it:
			// isolate it to this job's error.  Experiment runs keep the
			// crash — a panic there is a lab bug that should be loud.
			defer func() {
				if r := recover(); r != nil {
					j.err = fmt.Errorf("%s: measurement panicked: %v", j.label(), r)
				}
			}()
		}
		switch j.kind {
		case "measure":
			j.res, j.err = core.Measure(j.prog, opts...)
		case "pipeline":
			j.res, j.err = core.MeasureWithPipeline(j.prog, j.cfg, opts...)
		case "sweep", "sweep-point":
			j.res, j.err = core.MeasureWithSweep(j.prog, j.sweep, opts...)
		case "setup":
			j.err = j.fn()
		case "render":
			j.buf = &bytes.Buffer{}
			j.err = j.renderFn(j.buf)
		}
	}()
	b.led.Finish(j.lidx, j.err != nil)
	j.dur = time.Since(start)
	j.ran = true
	if j.err == nil {
		labstats.GlobalCostModel().Observe(
			j.kind, j.label(), b.opt.scale(), float64(j.dur)/float64(time.Microsecond))
	}
}

// recordSched folds the drained batch's ledger into the run record: the
// manifest entry's sched block (even for failed batches — the ledger must
// balance exactly when something went wrong) and the sched.* registry
// instruments, including a per-worker utilization gauge and busy/job
// counters.
func (b *batch) recordSched() {
	s := b.led.Stats()
	if s == nil {
		return
	}
	b.lastSched = s
	b.opt.rec.AddSched(s)
	reg := b.opt.Telemetry
	if reg == nil {
		return
	}
	reg.Counter("sched.batches").Inc()
	reg.Counter("sched.jobs").Add(uint64(s.Jobs.Finished))
	reg.Counter("sched.errors").Add(uint64(s.Jobs.Errors))
	reg.Counter("sched.abandoned").Add(uint64(s.Jobs.Abandoned))
	reg.Counter("sched.unclaimed").Add(uint64(s.Jobs.Unclaimed))
	reg.Histogram("sched.batch_wall_us").Observe(uint64(s.WallUS))
	reg.Gauge("sched.workers_effective").Set(float64(s.WorkersEffective))
	reg.Gauge("sched.serial_fraction").Set(s.SerialFraction)
	reg.Gauge("sched.imbalance_pct").Set(s.ImbalancePct)
	reg.Gauge("sched.measured_speedup_x").Set(s.MeasuredSpeedupX)
	reg.Gauge("sched.contention_wait_us").Set(s.ContentionWaitUS)
	reg.Gauge("sched.dilation_x").Set(s.DilationX)
	for _, w := range s.Workers {
		reg.Gauge(fmt.Sprintf("sched.worker.%d.utilization", w.Worker)).Set(w.Utilization)
		reg.Counter(fmt.Sprintf("sched.worker.%d.jobs", w.Worker)).Add(uint64(w.Jobs))
		reg.Counter(fmt.Sprintf("sched.worker.%d.busy_us", w.Worker)).Add(uint64(w.BusyUS))
	}
}
