package harness

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// runExp captures one experiment's output at test scale.
func runExp(t *testing.T, id string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Run(id, Options{Scale: 0.1, Out: &buf}); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return buf.String()
}

func TestUnknownExperiment(t *testing.T) {
	if err := Run("nope", Options{Out: &bytes.Buffer{}}); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}

func TestTable1Shape(t *testing.T) {
	out := runExp(t, "table1")
	if !strings.Contains(out, "a=b+c") || !strings.Contains(out, "read") {
		t.Fatalf("missing benchmarks:\n%s", out)
	}
	// Shape claims: scalar ops are 10x+ slower everywhere; Tcl worst on
	// a=b+c; Perl and Tcl beat MIPSI and Java on string ops.
	rows := parseRows(t, out)
	assign := rows["a=b+c"]
	if assign[0] < 10 || assign[3] < 10 {
		t.Errorf("scalar slowdown too small: %v", assign)
	}
	if assign[3] < assign[0] || assign[3] < assign[1] {
		t.Errorf("Tcl should be worst on a=b+c: %v", assign)
	}
	concat := rows["string-concat"]
	if concat[2] > concat[0] || concat[3] > concat[0] {
		t.Errorf("Perl/Tcl should beat MIPSI on string-concat: %v", concat)
	}
	read := rows["read"]
	for i, v := range read {
		if v > assign[i] {
			t.Errorf("read should be slowed less than a=b+c (col %d): read=%v assign=%v", i, read, assign)
		}
	}
}

// parseRows extracts the four slowdown columns per benchmark row.
func parseRows(t *testing.T, out string) map[string][4]float64 {
	t.Helper()
	rows := make(map[string][4]float64)
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 5 {
			continue
		}
		name := fields[0]
		switch name {
		case "a=b+c", "if", "null-proc", "string-concat", "string-split", "read":
		default:
			continue
		}
		var vals [4]float64
		ok := true
		for i := 0; i < 4; i++ {
			v, err := strconv.ParseFloat(fields[len(fields)-4+i], 64)
			if err != nil {
				ok = false
				break
			}
			vals[i] = v
		}
		if ok {
			rows[name] = vals
		}
	}
	if len(rows) != 6 {
		t.Fatalf("parsed %d rows from:\n%s", len(rows), out)
	}
	return rows
}

func TestTable2Shape(t *testing.T) {
	out := runExp(t, "table2")
	for _, want := range []string{"MIPSI", "Java", "Perl", "Tcl", "des", "compress", "weblint", "xf"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 missing %q", want)
		}
	}
	// Fetch/decode ordering: MIPSI tens, Java ~teens, Perl hundreds, Tcl
	// thousands — checked via the des rows.
	fd := desFDColumn(t, out)
	if !(fd["Java"] < fd["MIPSI"] && fd["MIPSI"] < fd["Perl"] && fd["Perl"] < fd["Tcl"]) {
		t.Errorf("fetch/decode ordering wrong: %v", fd)
	}
	if fd["Tcl"] < 800 {
		t.Errorf("Tcl fd/cmd = %v, want thousands", fd["Tcl"])
	}
	if !strings.Contains(out, "(") {
		t.Error("Perl precompilation column missing")
	}
}

func desFDColumn(t *testing.T, out string) map[string]float64 {
	t.Helper()
	fd := make(map[string]float64)
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 8 || fields[1] != "des" {
			continue
		}
		// Columns: Lang des size vcmds native [startup] fd ex cycles.
		v, err := strconv.ParseFloat(fields[len(fields)-3], 64)
		if err == nil {
			fd[fields[0]] = v
		}
	}
	if len(fd) < 4 {
		t.Fatalf("found %d des rows:\n%s", len(fd), out)
	}
	return fd
}

func TestTable3Config(t *testing.T) {
	out := runExp(t, "table3")
	for _, want := range []string{"dtlb", "itlb", "dmiss", "imiss", "512KB", "1-bit BHT"} {
		if !strings.Contains(out, want) {
			t.Errorf("table3 missing %q", want)
		}
	}
}

func TestFig1Concentration(t *testing.T) {
	out := runExp(t, "fig1")
	// Tcl/des: a couple of commands must dominate execute instructions.
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "Tcl/des") {
			continue
		}
		fields := strings.Fields(line)
		top3 := strings.TrimSuffix(fields[3], "%")
		v, err := strconv.ParseFloat(top3, 64)
		if err != nil {
			t.Fatalf("bad fig1 row: %s", line)
		}
		if v < 50 {
			t.Errorf("Tcl/des top-3 share = %v%%, want concentrated", v)
		}
		return
	}
	t.Fatalf("no Tcl/des row:\n%s", out)
}

func TestFig2HasNativeForGraphics(t *testing.T) {
	out := runExp(t, "fig2")
	// The graphics-heavy Java benchmarks must show the native category.
	idx := strings.Index(out, "Java/hanoi")
	if idx < 0 {
		t.Fatalf("missing Java/hanoi:\n%s", out)
	}
	section := out[idx:]
	if end := strings.Index(section[1:], "\nJava/"); end > 0 {
		section = section[:end+1]
	}
	if !strings.Contains(section, "native") {
		t.Errorf("Java/hanoi should spend execute time in native:\n%s", section)
	}
}

func TestMemModelBands(t *testing.T) {
	out := runExp(t, "memmodel")
	if !strings.Contains(out, "memmodel") || !strings.Contains(out, "java.stack") {
		t.Fatalf("missing regions:\n%s", out)
	}
}

func TestFig3UniformityAndContrast(t *testing.T) {
	out := runExp(t, "fig3")
	busy := make(map[string]float64)
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) != 10 || !strings.Contains(fields[0], "/") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(fields[1], "%"), 64)
		if err == nil {
			busy[fields[0]] = v
		}
	}
	// MIPSI rows must be near-uniform.
	var mipsi []float64
	for id, v := range busy {
		if strings.HasPrefix(id, "MIPSI/") {
			mipsi = append(mipsi, v)
		}
	}
	if len(mipsi) < 4 {
		t.Fatalf("too few MIPSI rows: %v", busy)
	}
	lo, hi := mipsi[0], mipsi[0]
	for _, v := range mipsi {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi-lo > 12 {
		t.Errorf("MIPSI busy%% should be uniform across benchmarks: spread %v..%v", lo, hi)
	}
}

func TestFig4WorkingSets(t *testing.T) {
	out := runExp(t, "fig4")
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) != 13 {
			continue
		}
		id := fields[0]
		first, _ := strconv.ParseFloat(fields[1], 64)
		last, _ := strconv.ParseFloat(fields[12], 64)
		switch {
		case strings.HasPrefix(id, "MIPSI/") || id == "Java/des":
			if first > 0.5 {
				t.Errorf("%s: low-level VM should fit 8KB (%.2f misses/100)", id, first)
			}
		case strings.HasPrefix(id, "Tcl/") || strings.HasPrefix(id, "Perl/"):
			if first < last {
				t.Errorf("%s: bigger caches must not miss more (%.2f -> %.2f)", id, first, last)
			}
		}
	}
}

func TestAblationRuns(t *testing.T) {
	out := runExp(t, "ablation")
	for _, want := range []string{"iTLB", "flat memory", "fetch/decode"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation missing %q:\n%s", want, out)
		}
	}
}
