package harness

import (
	"bytes"
	"encoding/json"
	"testing"

	"interplab/internal/profile"
	"interplab/internal/telemetry"
)

// diffRun executes one experiment serially with the batched event pipeline
// on or off and returns everything the two emission modes promise to keep
// byte-identical: the rendered text, the manifest run entries (wall times
// and cache flags zeroed as in detRun, plus batch stats nulled — batch
// accounting is the one field that legitimately differs, absent per-event
// and populated batched), the merged folded profile, and its pprof
// encoding.
func diffRun(t *testing.T, id string, perEvent bool) (text string, runs []byte, folded string, pprof []byte) {
	t.Helper()
	var buf bytes.Buffer
	man := telemetry.NewManifest(detScale)
	set := profile.NewSet()
	opt := Options{Scale: detScale, Out: &buf, Parallelism: 1, Manifest: man, Profile: set, PerEvent: perEvent}
	if err := Run(id, opt); err != nil {
		t.Fatalf("%s (perEvent=%v): %v", id, perEvent, err)
	}
	for _, r := range man.Runs {
		r.DurationUS = 0
		r.Sched = nil
		for i := range r.Measurements {
			r.Measurements[i].DurationUS = 0
			r.Measurements[i].CacheHit = false
			r.Measurements[i].Batch = nil
		}
	}
	rb, err := json.Marshal(man.Runs)
	if err != nil {
		t.Fatal(err)
	}
	merged := set.Merged()
	var fb, pb bytes.Buffer
	if err := merged.WriteFolded(&fb, profile.SampleInstructions); err != nil {
		t.Fatal(err)
	}
	if err := merged.WritePprof(&pb); err != nil {
		t.Fatal(err)
	}
	return buf.String(), rb, fb.String(), pb.Bytes()
}

// TestBatchedMatchesPerEvent is the batched event pipeline's acceptance
// test: for every experiment, the batched (default) path and the per-event
// path must produce byte-identical rendered text, manifest entries, folded
// profiles, and pprof encodings.  Batching only changes how events travel
// from probe to sinks — blocks instead of interface calls — so any
// divergence here is a batching bug (an event dropped at a flush boundary,
// or a block attributed under the wrong routine stack).
func TestBatchedMatchesPerEvent(t *testing.T) {
	for _, id := range Experiments {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			bText, bRuns, bFolded, bPprof := diffRun(t, id, false)
			pText, pRuns, pFolded, pPprof := diffRun(t, id, true)
			if bText != pText {
				t.Errorf("rendered text differs between batched and per-event:\n--- batched ---\n%s\n--- per-event ---\n%s", bText, pText)
			}
			if !bytes.Equal(bRuns, pRuns) {
				t.Errorf("manifest entries differ between batched and per-event:\n--- batched ---\n%s\n--- per-event ---\n%s", bRuns, pRuns)
			}
			if bFolded != pFolded {
				t.Errorf("folded profiles differ between batched and per-event:\n--- batched ---\n%s\n--- per-event ---\n%s", bFolded, pFolded)
			}
			if !bytes.Equal(bPprof, pPprof) {
				t.Error("pprof encodings differ between batched and per-event")
			}
		})
	}
}
