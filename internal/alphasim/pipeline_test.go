package alphasim

import (
	"math"
	"testing"
	"testing/quick"

	"interplab/internal/trace"
)

func TestCauseString(t *testing.T) {
	want := map[Cause]string{
		CauseOther: "other", CauseShortInt: "short int", CauseLoadDelay: "load delay",
		CauseMispredict: "mispredict", CauseDTLB: "dtlb", CauseITLB: "itlb",
		CauseDMiss: "dmiss", CauseIMiss: "imiss",
	}
	for c, w := range want {
		if c.String() != w {
			t.Errorf("Cause(%d) = %q, want %q", c, c.String(), w)
		}
	}
	if Cause(99).String() != "invalid" {
		t.Error("out-of-range cause must stringify as invalid")
	}
}

func TestPipelineTightLoop(t *testing.T) {
	// A tiny loop of plain integer instructions: after warmup everything
	// hits, so CPI approaches 1/width = 0.5.
	p := New(DefaultConfig())
	for i := 0; i < 100000; i++ {
		p.Emit(trace.Event{PC: uint32(i%16) * 4, Kind: trace.Int})
	}
	st := p.Stats()
	if st.Instructions != 100000 {
		t.Fatalf("instructions = %d", st.Instructions)
	}
	if cpi := st.CPI(); cpi > 0.52 {
		t.Errorf("tight loop CPI = %.3f, want ~0.5", cpi)
	}
	if busy := st.BusyFrac(2); busy < 0.95 {
		t.Errorf("tight loop busy = %.3f, want ~1", busy)
	}
}

func TestPipelineICacheStalls(t *testing.T) {
	// A code footprint far beyond 8 KB, walked repeatedly: heavy imiss.
	p := New(DefaultConfig())
	span := uint32(64 << 10) // 64 KB of code
	for pass := 0; pass < 8; pass++ {
		for pc := uint32(0); pc < span; pc += 4 {
			p.Emit(trace.Event{PC: pc, Kind: trace.Int})
		}
	}
	st := p.Stats()
	if st.IMisses1 == 0 {
		t.Fatal("expected L1I misses")
	}
	if st.StallFrac(CauseIMiss, 2) < 0.05 {
		t.Errorf("imiss stall fraction = %.3f, want noticeable", st.StallFrac(CauseIMiss, 2))
	}
	// Every line missing every pass (span >> cache): miss rate ~ 1/8 per
	// instruction (8 instructions per 32-byte line).
	per100 := st.IMissPer100()
	if per100 < 10 || per100 > 13 {
		t.Errorf("imiss per 100 = %.1f, want ~12.5", per100)
	}
}

func TestPipelineDCacheStalls(t *testing.T) {
	p := New(DefaultConfig())
	// Loads striding over 1 MB: misses in L1 and beyond L2 reach.
	for i := 0; i < 100000; i++ {
		addr := uint32(i*64) % (1 << 20)
		p.Emit(trace.Event{PC: 0x1000, Kind: trace.Load, Addr: addr})
	}
	st := p.Stats()
	if st.DMisses1 == 0 {
		t.Fatal("expected data cache misses")
	}
	if st.StallFrac(CauseDMiss, 2) <= 0 {
		t.Error("expected dmiss stalls")
	}
	if st.DTLBMisses == 0 {
		t.Error("1 MB stride should overflow a 32-entry dTLB")
	}
}

func TestPipelineLoadDelayRequiresDep(t *testing.T) {
	cfg := DefaultConfig()
	indep := New(cfg)
	dep := New(cfg)
	for i := 0; i < 1000; i++ {
		addr := uint32(i%8) * 4
		indep.Emit(trace.Event{PC: 0, Kind: trace.Load, Addr: addr})
		indep.Emit(trace.Event{PC: 4, Kind: trace.Int})
		dep.Emit(trace.Event{PC: 0, Kind: trace.Load, Addr: addr})
		dep.Emit(trace.Event{PC: 4, Kind: trace.Int, Flags: trace.FlagDep})
	}
	if got := indep.Stats().Stalls[CauseLoadDelay]; got != 0 {
		t.Errorf("independent loads must not stall: %d", got)
	}
	if got := dep.Stats().Stalls[CauseLoadDelay]; got == 0 {
		t.Error("dependent loads must stall")
	}
}

func TestPipelineShortIntStall(t *testing.T) {
	p := New(DefaultConfig())
	for i := 0; i < 100; i++ {
		p.Emit(trace.Event{PC: 0, Kind: trace.ShortInt})
		p.Emit(trace.Event{PC: 4, Kind: trace.Int, Flags: trace.FlagDep})
	}
	if p.Stats().Stalls[CauseShortInt] != 100 {
		t.Errorf("short-int stalls = %d, want 100", p.Stats().Stalls[CauseShortInt])
	}
}

func TestPipelineMispredictStall(t *testing.T) {
	p := New(DefaultConfig())
	// Alternating branch at one PC: 1-bit predictor always wrong.
	for i := 0; i < 100; i++ {
		fl := trace.Flags(0)
		if i%2 == 0 {
			fl = trace.FlagTaken
		}
		p.Emit(trace.Event{PC: 0x100, Addr: 0x80, Kind: trace.Branch, Flags: fl})
	}
	st := p.Stats()
	if st.Mispredicts < 99 {
		t.Errorf("mispredicts = %d, want >=99", st.Mispredicts)
	}
	if st.Stalls[CauseMispredict] == 0 {
		t.Error("expected mispredict stalls")
	}
}

func TestPipelineITLBSensitivity(t *testing.T) {
	// The paper: growing the iTLB from 8 to 32 entries effectively
	// eliminates iTLB stalls for code spanning a dozen pages.
	gen := func(sink trace.Sink) {
		for pass := 0; pass < 2000; pass++ {
			for pg := 0; pg < 12; pg++ {
				for i := 0; i < 16; i++ {
					sink.Emit(trace.Event{PC: uint32(pg)<<13 + uint32(i*4), Kind: trace.Int})
				}
			}
		}
	}
	small := DefaultConfig()
	big := DefaultConfig()
	big.ITLBEntries = 32
	s1 := Run(small, gen)
	s2 := Run(big, gen)
	if s1.ITLBMisses <= s2.ITLBMisses {
		t.Errorf("8-entry iTLB misses (%d) should exceed 32-entry (%d)", s1.ITLBMisses, s2.ITLBMisses)
	}
	if s2.StallFrac(CauseITLB, 2) > 0.01 {
		t.Errorf("32-entry iTLB stall frac = %.4f, want ~0", s2.StallFrac(CauseITLB, 2))
	}
}

func TestStatsFractionsSumToOne(t *testing.T) {
	// Property: busy + all stall fractions (with Other as residual)
	// accounts for every issue slot.
	f := func(seed uint8, n uint16) bool {
		p := New(DefaultConfig())
		rng := uint32(seed) + 1
		for i := 0; i < int(n)+10; i++ {
			rng ^= rng << 13
			rng ^= rng >> 17
			rng ^= rng << 5
			k := trace.Kind(rng % 9)
			e := trace.Event{PC: (rng % 65536) &^ 3, Addr: (rng >> 3) % (1 << 20), Kind: k}
			if rng&16 != 0 {
				e.Flags |= trace.FlagTaken
			}
			if rng&32 != 0 {
				e.Flags |= trace.FlagDep
			}
			p.Emit(e)
		}
		st := p.Stats()
		sum := st.BusyFrac(2) + st.OtherFrac(2)
		for c := 0; c < NumCauses; c++ {
			if Cause(c) != CauseOther {
				sum += st.StallFrac(Cause(c), 2)
			}
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestICacheSweepOrdering(t *testing.T) {
	// Property of caches: for the same stream, a bigger or more
	// associative cache never misses more (LRU inclusion holds per
	// geometry family here because we use the same line size).
	sweep := NewICacheSweep([]int{8, 16, 32, 64}, []int{1, 2, 4}, 32)
	rng := uint32(12345)
	for i := 0; i < 200000; i++ {
		rng ^= rng << 13
		rng ^= rng >> 17
		rng ^= rng << 5
		// 48 KB working set with loop structure.
		pc := (rng % (48 << 10)) &^ 3
		sweep.Emit(trace.Event{PC: pc, Kind: trace.Int})
	}
	for _, assoc := range []int{1, 2, 4} {
		var prev float64 = math.Inf(1)
		for _, kb := range []int{8, 16, 32, 64} {
			pt, ok := sweep.Point(kb, assoc)
			if !ok {
				t.Fatalf("missing point %d/%d", kb, assoc)
			}
			if pt.MissPer100() > prev+0.5 {
				t.Errorf("%s: miss rate %.2f worse than smaller cache %.2f", pt.Label(), pt.MissPer100(), prev)
			}
			prev = pt.MissPer100()
		}
	}
	if len(sweep.Points()) != 12 {
		t.Errorf("points = %d, want 12", len(sweep.Points()))
	}
	if _, ok := sweep.Point(128, 1); ok {
		t.Error("unknown geometry must not resolve")
	}
}

func TestDefaultConfigMatchesTable3(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.ICache.Size != 8<<10 || cfg.ICache.Assoc != 1 {
		t.Error("L1I must be 8KB direct-mapped")
	}
	if cfg.DCache.Size != 8<<10 || cfg.DCache.Assoc != 1 {
		t.Error("L1D must be 8KB direct-mapped")
	}
	if cfg.L2.Size != 512<<10 {
		t.Error("L2 must be 512KB")
	}
	if cfg.ITLBEntries != 8 || cfg.DTLBEntries != 32 {
		t.Error("TLBs must be 8/32 entries")
	}
	if cfg.BHTEntries != 256 || cfg.ReturnStack != 12 || cfg.BTCEntries != 32 {
		t.Error("branch logic must match Table 3")
	}
	if cfg.TLBMiss != 40 || cfg.Mispredict != 4 {
		t.Error("penalties must match Table 3")
	}
	if cfg.L1Miss+cfg.L2Miss != 30 {
		t.Error("memory latency must be 30 cycles as in Table 3")
	}
}
