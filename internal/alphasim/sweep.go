package alphasim

import (
	"fmt"
	"strings"

	"interplab/internal/trace"
)

// SweepPoint is one (size, associativity) instruction-cache configuration in
// a Figure 4 sweep.
type SweepPoint struct {
	SizeKB int `json:"size_kb"`
	Assoc  int `json:"assoc"`

	Instructions uint64 `json:"instructions"`
	Misses       uint64 `json:"misses"`
}

// MissPer100 returns misses per 100 instructions, Figure 4's y-axis.
func (pt SweepPoint) MissPer100() float64 {
	if pt.Instructions == 0 {
		return 0
	}
	return 100 * float64(pt.Misses) / float64(pt.Instructions)
}

// Label returns a short identifier such as "16KB/2way".
func (pt SweepPoint) Label() string { return fmt.Sprintf("%dKB/%dway", pt.SizeKB, pt.Assoc) }

// ICacheSweep simulates many instruction-cache geometries simultaneously
// over a single event stream, so Figure 4 needs only one pass per workload.
// It implements trace.Sink.
type ICacheSweep struct {
	points   []SweepPoint
	caches   []*Cache
	lineSize int
}

// NewICacheSweep builds a sweep over the cross product of sizes (in KB) and
// associativities, with the given line size in bytes.
func NewICacheSweep(sizesKB, assocs []int, lineSize int) *ICacheSweep {
	s := &ICacheSweep{lineSize: lineSize}
	for _, kb := range sizesKB {
		for _, a := range assocs {
			s.points = append(s.points, SweepPoint{SizeKB: kb, Assoc: a})
			s.caches = append(s.caches, NewCache(CacheConfig{
				Name:     fmt.Sprintf("i%dk%dw", kb, a),
				Size:     kb << 10,
				LineSize: lineSize,
				Assoc:    a,
			}))
		}
	}
	return s
}

// DefaultICacheSweep returns the paper's Figure 4 grid: 8/16/32/64 KB ×
// direct-mapped/2-way/4-way, 32-byte lines.
func DefaultICacheSweep() *ICacheSweep {
	return NewICacheSweep([]int{8, 16, 32, 64}, []int{1, 2, 4}, 32)
}

// Emit probes every configured cache with the instruction's fetch address.
func (s *ICacheSweep) Emit(e trace.Event) {
	for i, c := range s.caches {
		s.points[i].Instructions++
		if !c.Access(e.PC) {
			s.points[i].Misses++
		}
	}
}

// EmitBlock probes every configured cache with a whole batch, transposed:
// the outer loop walks the geometries and the inner loop streams the
// block's PC column through one cache at a time, so each cache's tag state
// stays hot while the PCs arrive as a sequential array scan.  The per-point
// counters are updated once per block instead of once per event.
func (s *ICacheSweep) EmitBlock(b *trace.Block) {
	for i, c := range s.caches {
		misses := uint64(0)
		for k := 0; k < b.N; k++ {
			if !c.Access(b.PC[k]) {
				misses++
			}
		}
		s.points[i].Instructions += uint64(b.N)
		s.points[i].Misses += misses
	}
}

// Points returns the accumulated sweep results.
func (s *ICacheSweep) Points() []SweepPoint { return s.points }

// LineSize returns the sweep's cache line size in bytes.
func (s *ICacheSweep) LineSize() int { return s.lineSize }

// Split decomposes the sweep into one single-point sweep per geometry, in
// point order.  Each returned sweep is independent (fresh cache state), so
// the parts can be measured concurrently; a full re-run of the workload
// through part k accumulates exactly the counts point k of a monolithic
// run would have, because the simulated caches never interact.  Reassemble
// with RestorePoints over the parts' points, in the same order.
func (s *ICacheSweep) Split() []*ICacheSweep {
	parts := make([]*ICacheSweep, len(s.points))
	for i, pt := range s.points {
		parts[i] = NewICacheSweep([]int{pt.SizeKB}, []int{pt.Assoc}, s.lineSize)
	}
	return parts
}

// Geometry returns a canonical description of the sweep's configuration
// grid — "8KB/1way,8KB/2way,...@32B" — independent of any accumulated
// counts.  The measurement cache uses it as the sweep part of its key: two
// sweeps with equal geometry over the same program accumulate identical
// points.
func (s *ICacheSweep) Geometry() string {
	var b strings.Builder
	for i, pt := range s.points {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(pt.Label())
	}
	fmt.Fprintf(&b, "@%dB", s.lineSize)
	return b.String()
}

// RestorePoints overwrites the sweep's accumulated counts with pts, e.g.
// from a cached measurement.  It reports whether pts matches the sweep's
// geometry point for point; on a mismatch the sweep is left untouched.
func (s *ICacheSweep) RestorePoints(pts []SweepPoint) bool {
	if len(pts) != len(s.points) {
		return false
	}
	for i, pt := range pts {
		if pt.SizeKB != s.points[i].SizeKB || pt.Assoc != s.points[i].Assoc {
			return false
		}
	}
	copy(s.points, pts)
	return true
}

// Point returns the result for one geometry.
func (s *ICacheSweep) Point(sizeKB, assoc int) (SweepPoint, bool) {
	for _, pt := range s.points {
		if pt.SizeKB == sizeKB && pt.Assoc == assoc {
			return pt, true
		}
	}
	return SweepPoint{}, false
}
