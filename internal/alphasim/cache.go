// Package alphasim is the trace-driven processor simulator of the
// laboratory: a model of a 2-issue in-order microprocessor in the style of
// the DEC Alpha 21064, matching the machine of Table 3 in the paper —
// 8 KB direct-mapped first-level instruction and data caches, a unified
// direct-mapped 512 KB second-level cache, 8 KB pages, an 8-entry
// instruction TLB and a 32-entry data TLB, a 256-entry 1-bit branch history
// table, a 12-entry return stack and a 32-entry branch target cache.
//
// The simulator consumes the native-instruction stream produced by
// internal/atom and accounts every unfilled issue slot to one of the
// paper's stall causes (Figure 3).  It also provides a parametric
// instruction-cache sweep used to regenerate Figure 4.
package alphasim

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name     string
	Size     int // bytes
	LineSize int // bytes
	Assoc    int // ways; 1 = direct-mapped
}

// Sets returns the number of sets implied by the geometry.
func (c CacheConfig) Sets() int {
	s := c.Size / (c.LineSize * c.Assoc)
	if s < 1 {
		s = 1
	}
	return s
}

// Cache is a set-associative cache with true-LRU replacement.
type Cache struct {
	cfg       CacheConfig
	lineShift uint
	setMask   uint32
	assoc     int
	tags      []uint32 // sets*assoc; tag 0 means empty (tag stored +1)
	age       []uint64
	clock     uint64

	Accesses uint64
	Misses   uint64
}

// NewCache builds a cache from its geometry.  LineSize and the set count
// must be powers of two.
func NewCache(cfg CacheConfig) *Cache {
	sets := cfg.Sets()
	c := &Cache{
		cfg:   cfg,
		assoc: cfg.Assoc,
		tags:  make([]uint32, sets*cfg.Assoc),
		age:   make([]uint64, sets*cfg.Assoc),
	}
	for c.lineShift = 0; 1<<c.lineShift < cfg.LineSize; c.lineShift++ {
	}
	c.setMask = uint32(sets - 1)
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Access looks addr up, fills on miss, and reports whether it hit.
func (c *Cache) Access(addr uint32) bool {
	c.Accesses++
	c.clock++
	line := addr >> c.lineShift
	set := int(line&c.setMask) * c.assoc
	tag := line + 1 // +1 so that 0 means "empty"
	var victim, oldest = set, c.age[set]
	for w := 0; w < c.assoc; w++ {
		i := set + w
		if c.tags[i] == tag {
			c.age[i] = c.clock
			return true
		}
		if c.age[i] < oldest {
			oldest = c.age[i]
			victim = i
		}
	}
	c.Misses++
	c.tags[victim] = tag
	c.age[victim] = c.clock
	return false
}

// MissRate returns misses per access (0 when idle).
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.age[i] = 0
	}
	c.clock = 0
	c.Accesses = 0
	c.Misses = 0
}

// TLB is a fully associative translation buffer with LRU replacement.
type TLB struct {
	pageShift uint
	pages     []uint32
	age       []uint64
	clock     uint64

	Accesses uint64
	Misses   uint64
}

// NewTLB builds a TLB with the given number of entries and page size.
func NewTLB(entries int, pageSize uint32) *TLB {
	t := &TLB{
		pages: make([]uint32, entries),
		age:   make([]uint64, entries),
	}
	for t.pageShift = 0; 1<<t.pageShift < pageSize; t.pageShift++ {
	}
	return t
}

// Access translates addr, fills on miss, and reports whether it hit.
func (t *TLB) Access(addr uint32) bool {
	t.Accesses++
	t.clock++
	page := (addr >> t.pageShift) + 1
	victim, oldest := 0, t.age[0]
	for i := range t.pages {
		if t.pages[i] == page {
			t.age[i] = t.clock
			return true
		}
		if t.age[i] < oldest {
			oldest = t.age[i]
			victim = i
		}
	}
	t.Misses++
	t.pages[victim] = page
	t.age[victim] = t.clock
	return false
}

// MissRate returns misses per access (0 when idle).
func (t *TLB) MissRate() float64 {
	if t.Accesses == 0 {
		return 0
	}
	return float64(t.Misses) / float64(t.Accesses)
}
