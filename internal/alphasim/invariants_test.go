package alphasim

import (
	"testing"
	"testing/quick"

	"interplab/internal/trace"
)

// TestCyclesLowerBound: cycles can never beat the issue width.
func TestCyclesLowerBound(t *testing.T) {
	f := func(n uint16) bool {
		p := New(DefaultConfig())
		for i := 0; i < int(n)+1; i++ {
			p.Emit(trace.Event{PC: uint32(i%32) * 4, Kind: trace.Int})
		}
		st := p.Stats()
		return st.Cycles*2 >= st.Instructions && st.Cycles >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestStallAccountingConservation: total cycles equal base issue cycles
// plus the recorded stall cycles.
func TestStallAccountingConservation(t *testing.T) {
	f := func(seed uint32, n uint16) bool {
		p := New(DefaultConfig())
		rng := seed | 1
		events := int(n) + 1
		for i := 0; i < events; i++ {
			rng ^= rng << 13
			rng ^= rng >> 17
			rng ^= rng << 5
			e := trace.Event{
				PC:   (rng % (64 << 10)) &^ 3,
				Addr: rng >> 2 % (2 << 20),
				Kind: trace.Kind(rng % 9),
			}
			if rng&512 != 0 {
				e.Flags |= trace.FlagTaken
			}
			if rng&1024 != 0 {
				e.Flags |= trace.FlagDep
			}
			p.Emit(e)
		}
		st := p.Stats()
		var stalls uint64
		for c := 0; c < NumCauses; c++ {
			stalls += st.Stalls[c]
		}
		base := (st.Instructions + 1) / 2
		return st.Cycles == base+stalls
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestRunHelper drives the replay-style entry point.
func TestRunHelper(t *testing.T) {
	st := Run(DefaultConfig(), func(sink trace.Sink) {
		for i := 0; i < 1000; i++ {
			sink.Emit(trace.Event{PC: uint32(i%8) * 4, Kind: trace.Int})
		}
	})
	if st.Instructions != 1000 {
		t.Errorf("instructions = %d", st.Instructions)
	}
}

// TestTLBMissesAreCounted ties stall cycles to the miss counters.
func TestTLBMissesAreCounted(t *testing.T) {
	p := New(DefaultConfig())
	for i := 0; i < 100; i++ {
		// 100 distinct instruction pages.
		p.Emit(trace.Event{PC: uint32(i) << 13, Kind: trace.Int})
	}
	st := p.Stats()
	if st.ITLBMisses != 100 {
		t.Errorf("itlb misses = %d, want 100 (all distinct pages)", st.ITLBMisses)
	}
	if st.Stalls[CauseITLB] != 100*uint64(DefaultConfig().TLBMiss) {
		t.Errorf("itlb stall cycles = %d", st.Stalls[CauseITLB])
	}
}
