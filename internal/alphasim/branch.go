package alphasim

// Predictor models the 21064-style branch logic of Table 3: a 256-entry
// 1-bit branch history table, a 12-entry return stack, and a 32-entry
// branch target cache.
type Predictor struct {
	bht []bool // last-direction per entry

	retStack []uint32
	retTop   int
	retDepth int

	btcTags    []uint32
	btcTargets []uint32

	Branches    uint64
	Mispredicts uint64
	BTCMisses   uint64
	RetMiss     uint64
}

// NewPredictor builds a predictor with the given table sizes.
func NewPredictor(bhtEntries, returnStack, btcEntries int) *Predictor {
	return &Predictor{
		bht:        make([]bool, bhtEntries),
		retStack:   make([]uint32, returnStack),
		btcTags:    make([]uint32, btcEntries),
		btcTargets: make([]uint32, btcEntries),
	}
}

func (p *Predictor) bhtIndex(pc uint32) int { return int(pc>>2) % len(p.bht) }
func (p *Predictor) btcIndex(pc uint32) int { return int(pc>>2) % len(p.btcTags) }

// Cond records a conditional branch outcome and reports (mispredicted,
// targetMissed).  A 1-bit predictor predicts the branch's previous
// direction; a taken branch whose target is absent from the BTC costs a
// fetch bubble even when the direction was right.
func (p *Predictor) Cond(pc, target uint32, taken bool) (mispredict, btcMiss bool) {
	p.Branches++
	i := p.bhtIndex(pc)
	predicted := p.bht[i]
	p.bht[i] = taken
	if predicted != taken {
		p.Mispredicts++
		mispredict = true
	}
	if taken {
		j := p.btcIndex(pc)
		if p.btcTags[j] != pc+1 || p.btcTargets[j] != target {
			p.BTCMisses++
			btcMiss = true
		}
		p.btcTags[j] = pc + 1
		p.btcTargets[j] = target
	}
	return mispredict, btcMiss
}

// Call pushes a return address (the instruction after the call).
func (p *Predictor) Call(returnPC uint32) {
	p.retStack[p.retTop] = returnPC
	p.retTop = (p.retTop + 1) % len(p.retStack)
	if p.retDepth < len(p.retStack) {
		p.retDepth++
	}
}

// Ret pops the return stack and reports whether the prediction missed.
func (p *Predictor) Ret(target uint32) bool {
	if p.retDepth == 0 {
		p.RetMiss++
		return true
	}
	p.retTop = (p.retTop - 1 + len(p.retStack)) % len(p.retStack)
	p.retDepth--
	// The stored address is the caller's next PC.  Exact matching is too
	// strict for the synthetic streams (the caller may advance a few
	// instructions); a same-page prediction would still steer fetch
	// correctly, so require only page agreement.
	if p.retStack[p.retTop]>>13 != target>>13 {
		p.RetMiss++
		return true
	}
	return false
}

// MispredictRate returns direction mispredictions per conditional branch.
func (p *Predictor) MispredictRate() float64 {
	if p.Branches == 0 {
		return 0
	}
	return float64(p.Mispredicts) / float64(p.Branches)
}
