package alphasim

import (
	"testing"
	"testing/quick"
)

func TestCacheDirectMappedBasics(t *testing.T) {
	c := NewCache(CacheConfig{Size: 1 << 10, LineSize: 32, Assoc: 1})
	if c.Access(0) {
		t.Error("cold access must miss")
	}
	if !c.Access(0) {
		t.Error("repeat access must hit")
	}
	if !c.Access(31) {
		t.Error("same-line access must hit")
	}
	if c.Access(32) {
		t.Error("next-line access must miss")
	}
	// 1 KB direct-mapped: address 0 and 1024 conflict.
	if c.Access(1024) {
		t.Error("aliasing access must miss")
	}
	if c.Access(0) {
		t.Error("evicted line must miss")
	}
}

func TestCacheAssociativityRemovesConflicts(t *testing.T) {
	dm := NewCache(CacheConfig{Size: 1 << 10, LineSize: 32, Assoc: 1})
	tw := NewCache(CacheConfig{Size: 1 << 10, LineSize: 32, Assoc: 2})
	// Two conflicting lines, accessed alternately.
	for i := 0; i < 100; i++ {
		dm.Access(0)
		dm.Access(1024)
		tw.Access(0)
		tw.Access(1024)
	}
	if dm.Misses < 190 {
		t.Errorf("direct-mapped should thrash: misses = %d", dm.Misses)
	}
	if tw.Misses != 2 {
		t.Errorf("2-way should keep both lines: misses = %d", tw.Misses)
	}
}

func TestCacheLRU(t *testing.T) {
	// 2-way, one set: lines A, B, C mapping to the same set.
	c := NewCache(CacheConfig{Size: 64, LineSize: 32, Assoc: 2})
	a, b, x := uint32(0), uint32(64), uint32(128)
	c.Access(a)
	c.Access(b)
	c.Access(a) // A most recent; B is LRU
	c.Access(x) // evicts B
	if !c.Access(a) {
		t.Error("A should survive (was MRU)")
	}
	if c.Access(b) {
		t.Error("B should have been evicted (was LRU)")
	}
}

func TestCacheWorkingSetFits(t *testing.T) {
	// Property: any working set smaller than the cache, accessed
	// repeatedly, incurs only compulsory misses.
	f := func(seed uint8) bool {
		c := NewCache(CacheConfig{Size: 8 << 10, LineSize: 32, Assoc: 1})
		base := uint32(seed) * 8192
		lines := 100
		for pass := 0; pass < 5; pass++ {
			for i := 0; i < lines; i++ {
				c.Access(base + uint32(i)*32)
			}
		}
		return c.Misses == uint64(lines)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCacheMissRate(t *testing.T) {
	c := NewCache(CacheConfig{Size: 8 << 10, LineSize: 32, Assoc: 1})
	if c.MissRate() != 0 {
		t.Error("idle cache must report 0 miss rate")
	}
	c.Access(0)
	c.Access(0)
	if got := c.MissRate(); got != 0.5 {
		t.Errorf("miss rate = %v, want 0.5", got)
	}
	c.Reset()
	if c.Accesses != 0 || c.Misses != 0 {
		t.Error("reset must clear counters")
	}
	if !c.Access(0) == false {
		t.Error("reset must clear contents")
	}
}

func TestCacheSetsGeometry(t *testing.T) {
	cfg := CacheConfig{Size: 8 << 10, LineSize: 32, Assoc: 2}
	if cfg.Sets() != 128 {
		t.Errorf("sets = %d, want 128", cfg.Sets())
	}
}

func TestTLB(t *testing.T) {
	tlb := NewTLB(2, 8<<10)
	if tlb.Access(0) {
		t.Error("cold TLB access must miss")
	}
	if !tlb.Access(100) {
		t.Error("same-page access must hit")
	}
	tlb.Access(8192)  // second page
	tlb.Access(16384) // third page evicts LRU (page 0)
	if tlb.Access(0) {
		t.Error("evicted page must miss")
	}
	if !tlb.Access(16384 + 4) {
		t.Error("recent page must hit")
	}
	if tlb.MissRate() <= 0 || tlb.MissRate() > 1 {
		t.Errorf("miss rate %v out of range", tlb.MissRate())
	}
}

func TestTLBCapacity(t *testing.T) {
	// An 8-entry iTLB thrashes on a 9-page round-robin; a 32-entry one
	// holds it — the paper's footnote about the 21064's tiny iTLB.
	small := NewTLB(8, 8<<10)
	big := NewTLB(32, 8<<10)
	for pass := 0; pass < 10; pass++ {
		for pg := uint32(0); pg < 9; pg++ {
			small.Access(pg * 8192)
			big.Access(pg * 8192)
		}
	}
	if small.Misses != small.Accesses {
		t.Errorf("8-entry TLB should thrash on 9 pages in LRU order: %d/%d", small.Misses, small.Accesses)
	}
	if big.Misses != 9 {
		t.Errorf("32-entry TLB should hold 9 pages: misses = %d", big.Misses)
	}
}

func TestPredictorDirection(t *testing.T) {
	p := NewPredictor(256, 12, 32)
	pc, target := uint32(0x1000), uint32(0x0f00)
	// Always-taken branch: after the first trip, a 1-bit predictor is
	// always right.
	for i := 0; i < 100; i++ {
		p.Cond(pc, target, true)
	}
	if p.Mispredicts != 1 {
		t.Errorf("always-taken mispredicts = %d, want 1", p.Mispredicts)
	}
	// Alternating branch: a 1-bit predictor is always wrong.
	p2 := NewPredictor(256, 12, 32)
	for i := 0; i < 100; i++ {
		p2.Cond(pc, target, i%2 == 0)
	}
	if p2.Mispredicts < 99 {
		t.Errorf("alternating mispredicts = %d, want >= 99", p2.Mispredicts)
	}
}

func TestPredictorReturnStack(t *testing.T) {
	p := NewPredictor(256, 12, 32)
	p.Call(0x2000)
	if p.Ret(0x2000) {
		t.Error("matched return must predict correctly")
	}
	if !p.Ret(0x2000) {
		t.Error("empty-stack return must mispredict")
	}
	p.Call(0x3000)
	if !p.Ret(0x9000_0000) {
		t.Error("cross-page mismatch must mispredict")
	}
}

func TestPredictorReturnStackOverflow(t *testing.T) {
	p := NewPredictor(256, 4, 32)
	// Deeper than the stack: the oldest entries are lost.
	for i := 0; i < 8; i++ {
		p.Call(uint32(0x1000 * (i + 1)))
	}
	misses := 0
	for i := 7; i >= 0; i-- {
		if p.Ret(uint32(0x1000 * (i + 1))) {
			misses++
		}
	}
	if misses == 0 {
		t.Error("overflowed return stack should miss for the lost frames")
	}
	if misses > 4 {
		t.Errorf("at most the lost frames should miss, got %d", misses)
	}
}

func TestPredictorMispredictRate(t *testing.T) {
	p := NewPredictor(16, 4, 8)
	if p.MispredictRate() != 0 {
		t.Error("idle predictor must report 0")
	}
	p.Cond(0, 4, true)
	if p.MispredictRate() != 1 {
		t.Errorf("rate = %v, want 1", p.MispredictRate())
	}
}
