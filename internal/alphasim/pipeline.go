package alphasim

import (
	"interplab/internal/trace"
)

// Cause identifies a source of unfilled issue slots — the rows of Table 3.
type Cause int

const (
	// CauseOther covers control hazards, bank conflicts, and long-latency
	// multiply/float results.
	CauseOther Cause = iota
	// CauseShortInt is the 2-cycle latency of shift/byte instructions.
	CauseShortInt
	// CauseLoadDelay is the 3-cycle load-use delay on a first-level hit.
	CauseLoadDelay
	// CauseMispredict is branch misprediction (4 cycles).
	CauseMispredict
	// CauseDTLB is a data TLB miss (40 cycles).
	CauseDTLB
	// CauseITLB is an instruction TLB miss (40 cycles).
	CauseITLB
	// CauseDMiss is a first- or second-level data cache miss (6 or 30).
	CauseDMiss
	// CauseIMiss is a first- or second-level instruction cache miss.
	CauseIMiss

	// NumCauses counts the stall categories.
	NumCauses = int(CauseIMiss) + 1
)

var causeNames = [NumCauses]string{
	"other", "short int", "load delay", "mispredict", "dtlb", "itlb", "dmiss", "imiss",
}

// String returns the Table 3 row label.
func (c Cause) String() string {
	if int(c) < NumCauses {
		return causeNames[c]
	}
	return "invalid"
}

// Config describes the simulated machine.  Defaults mirror Table 3.
type Config struct {
	Width int // issue width

	ICache CacheConfig
	DCache CacheConfig
	L2     CacheConfig

	PageSize    uint32
	ITLBEntries int
	DTLBEntries int

	BHTEntries  int
	ReturnStack int
	BTCEntries  int

	// Penalties in cycles.
	LoadDelay     int // extra cycles on a dependent use of a load that hit L1
	ShortIntDelay int // extra cycle on a dependent use of a shift/byte op
	LongOpDelay   int // dependent use of a multiply/float result
	Mispredict    int
	TLBMiss       int
	L1Miss        int // L1 miss, L2 hit
	L2Miss        int // additional cycles when L2 also misses
	BTCBubble     int // taken branch with a branch-target-cache miss
}

// DefaultConfig returns the Table 3 machine.
func DefaultConfig() Config {
	return Config{
		Width:  2,
		ICache: CacheConfig{Name: "L1I", Size: 8 << 10, LineSize: 32, Assoc: 1},
		DCache: CacheConfig{Name: "L1D", Size: 8 << 10, LineSize: 32, Assoc: 1},
		L2:     CacheConfig{Name: "L2", Size: 512 << 10, LineSize: 32, Assoc: 1},

		PageSize:    8 << 10,
		ITLBEntries: 8,
		DTLBEntries: 32,

		BHTEntries:  256,
		ReturnStack: 12,
		BTCEntries:  32,

		LoadDelay:     2, // 3-cycle latency = 2 stall cycles on a dependent use
		ShortIntDelay: 1, // 2-cycle latency
		LongOpDelay:   8,
		Mispredict:    4,
		TLBMiss:       40,
		L1Miss:        6,
		L2Miss:        24, // 6 + 24 = 30 cycles to memory, as in Table 3
		BTCBubble:     1,
	}
}

// Stats is the outcome of a simulated run, in the paper's issue-slot terms.
// The JSON tags are the manifest schema (docs/OBSERVABILITY.md); Stalls
// serializes as an array indexed by Cause (see causeNames for the order).
type Stats struct {
	Instructions uint64            `json:"instructions"`
	Cycles       uint64            `json:"cycles"`
	Stalls       [NumCauses]uint64 `json:"stalls"` // stall cycles per cause

	IFetches    uint64 `json:"ifetches"`
	IMisses1    uint64 `json:"imisses1"`
	IMisses2    uint64 `json:"imisses2"`
	DAccesses   uint64 `json:"daccesses"`
	DMisses1    uint64 `json:"dmisses1"`
	DMisses2    uint64 `json:"dmisses2"`
	ITLBMisses  uint64 `json:"itlb_misses"`
	DTLBMisses  uint64 `json:"dtlb_misses"`
	Branches    uint64 `json:"branches"`
	Mispredicts uint64 `json:"mispredicts"`
}

// IssueSlots returns the total issue slots offered (width × cycles).
func (s Stats) IssueSlots(width int) uint64 { return uint64(width) * s.Cycles }

// BusyFrac returns the fraction of issue slots filled ("processor busy").
func (s Stats) BusyFrac(width int) float64 {
	slots := s.IssueSlots(width)
	if slots == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(slots)
}

// StallFrac returns the fraction of issue slots lost to one cause.
func (s Stats) StallFrac(c Cause, width int) float64 {
	slots := s.IssueSlots(width)
	if slots == 0 {
		return 0
	}
	return float64(uint64(width)*s.Stalls[c]) / float64(slots)
}

// OtherFrac returns the unfilled-slot fraction not covered by the named
// causes: CauseOther stalls plus dual-issue slack.  It is the residual, so
// busy + named stall fractions + OtherFrac account for every issue slot.
func (s Stats) OtherFrac(width int) float64 {
	f := 1 - s.BusyFrac(width)
	for c := 0; c < NumCauses; c++ {
		if Cause(c) != CauseOther {
			f -= s.StallFrac(Cause(c), width)
		}
	}
	if f < 0 {
		f = 0
	}
	return f
}

// CPI returns cycles per instruction.
func (s Stats) CPI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Instructions)
}

// IMissPer100 returns instruction-cache misses per 100 instructions, the
// metric of Figure 4.
func (s Stats) IMissPer100() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return 100 * float64(s.IMisses1) / float64(s.Instructions)
}

// MissObserver receives cache-miss notifications from the pipeline, carrying
// the event that issued the access so the miss can be attributed back to the
// interpreter routine and virtual command that caused it (the profiling
// layer's join).  Level 1 is an L1 miss that hit L2; level 2 also missed L2.
// Calls arrive synchronously inside Emit, while the issuing probe's
// attribution state is still current for the event.
type MissObserver interface {
	IMiss(e trace.Event, level int)
	DMiss(e trace.Event, level int)
}

// Pipeline simulates the configured machine over an event stream.  It
// implements trace.Sink.
type Pipeline struct {
	cfg    Config
	icache *Cache
	dcache *Cache
	l2     *Cache
	itlb   *TLB
	dtlb   *TLB
	pred   *Predictor

	stats    Stats
	prevKind trace.Kind
	prevHit  bool // previous load hit L1
	pending  uint64

	missObs MissObserver
}

// SetMissObserver registers o to receive cache-miss notifications; nil
// disables them (the default).
func (p *Pipeline) SetMissObserver(o MissObserver) { p.missObs = o }

// New builds a pipeline for cfg.
func New(cfg Config) *Pipeline {
	return &Pipeline{
		cfg:    cfg,
		icache: NewCache(cfg.ICache),
		dcache: NewCache(cfg.DCache),
		l2:     NewCache(cfg.L2),
		itlb:   NewTLB(cfg.ITLBEntries, cfg.PageSize),
		dtlb:   NewTLB(cfg.DTLBEntries, cfg.PageSize),
		pred:   NewPredictor(cfg.BHTEntries, cfg.ReturnStack, cfg.BTCEntries),
	}
}

// Config returns the simulated machine description.
func (p *Pipeline) Config() Config { return p.cfg }

func (p *Pipeline) stall(c Cause, cycles int) {
	p.stats.Stalls[c] += uint64(cycles)
	p.stats.Cycles += uint64(cycles)
}

// Emit processes one native instruction.
func (p *Pipeline) Emit(e trace.Event) { p.step(e) }

// EmitBlock processes a whole event batch in one tight loop: the machine
// model is inherently per-instruction (every event advances caches, TLBs
// and the predictor), so the win over per-event Emit is purely the removed
// interface dispatch — which, at interp-lab's event volumes, is most of
// the instrumentation bill.
func (p *Pipeline) EmitBlock(b *trace.Block) {
	for i := 0; i < b.N; i++ {
		p.step(trace.Event{PC: b.PC[i], Addr: b.Addr[i], Kind: b.Kind[i], Flags: b.Flags[i]})
	}
}

// step simulates one native instruction.
func (p *Pipeline) step(e trace.Event) {
	st := &p.stats
	st.Instructions++
	// Base issue: `Width` instructions retire per cycle when nothing
	// stalls.  The cycle is charged to the first instruction of each
	// group so a trailing partial group still owns a cycle.
	p.pending++
	if p.pending == 1 {
		st.Cycles++
	}
	if p.pending >= uint64(p.cfg.Width) {
		p.pending = 0
	}

	// Instruction fetch: every instruction consults the iTLB and L1I; the
	// line-grain locality is captured by the caches themselves.
	st.IFetches++
	if !p.itlb.Access(e.PC) {
		st.ITLBMisses++
		p.stall(CauseITLB, p.cfg.TLBMiss)
	}
	if !p.icache.Access(e.PC) {
		st.IMisses1++
		p.stall(CauseIMiss, p.cfg.L1Miss)
		level := 1
		if !p.l2.Access(e.PC) {
			st.IMisses2++
			p.stall(CauseIMiss, p.cfg.L2Miss)
			level = 2
		}
		if p.missObs != nil {
			p.missObs.IMiss(e, level)
		}
	}

	// Result-latency stalls: charged when this instruction consumes the
	// previous instruction's result.
	if e.Dep() {
		switch p.prevKind {
		case trace.Load:
			if p.prevHit {
				p.stall(CauseLoadDelay, p.cfg.LoadDelay)
			}
		case trace.ShortInt:
			p.stall(CauseShortInt, p.cfg.ShortIntDelay)
		case trace.Mul, trace.Float:
			p.stall(CauseOther, p.cfg.LongOpDelay)
		}
	}

	switch e.Kind {
	case trace.Load, trace.Store:
		st.DAccesses++
		if !p.dtlb.Access(e.Addr) {
			st.DTLBMisses++
			p.stall(CauseDTLB, p.cfg.TLBMiss)
		}
		hit := p.dcache.Access(e.Addr)
		p.prevHit = hit
		if !hit {
			st.DMisses1++
			p.stall(CauseDMiss, p.cfg.L1Miss)
			level := 1
			if !p.l2.Access(e.Addr) {
				st.DMisses2++
				p.stall(CauseDMiss, p.cfg.L2Miss)
				level = 2
			}
			if p.missObs != nil {
				p.missObs.DMiss(e, level)
			}
		}
	case trace.Branch:
		st.Branches++
		mis, btcMiss := p.pred.Cond(e.PC, e.Addr, e.Taken())
		if mis {
			st.Mispredicts++
			p.stall(CauseMispredict, p.cfg.Mispredict)
		} else if btcMiss {
			p.stall(CauseOther, p.cfg.BTCBubble)
		}
	case trace.Jump:
		if e.Call() {
			p.pred.Call(e.PC + 4)
		}
		p.stall(CauseOther, p.cfg.BTCBubble)
	case trace.Return:
		if p.pred.Ret(e.Addr) {
			st.Mispredicts++
			p.stall(CauseMispredict, p.cfg.Mispredict)
		}
	}
	p.prevKind = e.Kind
}

// Stats returns the accumulated statistics.
func (p *Pipeline) Stats() Stats { return p.stats }

// Run drains events from a replayable generator into a fresh pipeline and
// returns its stats.
func Run(cfg Config, generate func(sink trace.Sink)) Stats {
	p := New(cfg)
	generate(p)
	return p.Stats()
}
