package labstats

import (
	"fmt"
	"testing"
	"time"
)

// slot is one job's simulated schedule: when it ran and on which worker.
type slot struct {
	start, finish time.Duration
	worker        int
}

// listSchedule simulates greedy list scheduling: jobs are claimed in the
// given order, each by whichever worker frees up first (ties to the lower
// id).  This is exactly what the harness's atomic-cursor claiming does
// when job durations are deterministic, so the resulting timeline is the
// one a real batch would produce — without running anything.
func listSchedule(durs []time.Duration, order []int, workers int) []slot {
	free := make([]time.Duration, workers)
	slots := make([]slot, len(durs))
	for _, j := range order {
		w := 0
		for k := 1; k < workers; k++ {
			if free[k] < free[w] {
				w = k
			}
		}
		slots[j] = slot{start: free[w], finish: free[w] + durs[j], worker: w}
		free[w] = slots[j].finish
	}
	return slots
}

// replayTimeline drives a real Ledger through a simulated schedule on a
// fake clock and folds it into stats.  Claim and start coincide (the
// simulator has no claim-to-start gap), and End lands at the makespan.
func replayTimeline(durs []time.Duration, order []int, workers int) *SchedStats {
	clk := newFakeClock()
	epoch := clk.at
	l := NewLedger()
	l.SetClock(clk.now)
	l.SetPolicy(PolicyLJF)
	for i := range durs {
		l.Enqueue("measure", fmt.Sprintf("sim/j%d", i))
	}
	l.Begin(workers, workers)
	slots := listSchedule(durs, order, workers)
	var makespan time.Duration
	for i, s := range slots {
		clk.at = epoch.Add(s.start)
		l.Claim(i, s.worker)
		l.Start(i)
		clk.at = epoch.Add(s.finish)
		l.Finish(i, false)
		if s.finish > makespan {
			makespan = s.finish
		}
	}
	clk.at = epoch.Add(makespan)
	l.End()
	return l.Stats()
}

// fifoOrder is the identity permutation — submission-order claiming.
func fifoOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}

// estimates converts simulated durations to perfect cost estimates in
// microseconds, the input LJFOrder ranks by.
func estimates(durs []time.Duration) []float64 {
	ests := make([]float64, len(durs))
	for i, d := range durs {
		ests[i] = float64(d) / float64(time.Microsecond)
	}
	return ests
}

// TestLJFBeatsFIFOOnImbalance is the claim-policy's existence proof: with
// one long job submitted last, FIFO claiming strands it on a worker after
// the short jobs have already balanced out, while LJF starts it first and
// packs the short jobs around it.  The ledgers — real Ledger arithmetic
// over both simulated timelines — must show LJF with a strictly shorter
// wall and zero imbalance where FIFO pays 33%.
func TestLJFBeatsFIFOOnImbalance(t *testing.T) {
	ms := time.Millisecond
	durs := []time.Duration{3 * ms, 3 * ms, 3 * ms, 9 * ms}

	fifo := replayTimeline(durs, fifoOrder(len(durs)), 2)
	ljf := replayTimeline(durs, LJFOrder(estimates(durs)), 2)

	eq(t, "fifo wall", fifo.WallUS, 12000) // 3+9 chained on one worker
	eq(t, "ljf wall", ljf.WallUS, 9000)    // the 9ms job alone; 3+3+3 beside it
	if ljf.WallUS >= fifo.WallUS {
		t.Errorf("LJF wall %v did not beat FIFO wall %v", ljf.WallUS, fifo.WallUS)
	}
	eq(t, "fifo imbalance pct", fifo.ImbalancePct, 100*(12.0-9.0)/9.0)
	eq(t, "ljf imbalance pct", ljf.ImbalancePct, 0)
	eq(t, "fifo speedup", fifo.MeasuredSpeedupX, 18.0/12.0)
	eq(t, "ljf speedup", ljf.MeasuredSpeedupX, 2)

	// The mechanism, visible in the ledger: LJF claims the longest job
	// first (at t=0), FIFO only after a round of short ones.
	long := 3 // index of the 9ms job
	eq(t, "ljf long-job claim", ljf.Ledger[long].ClaimUS, 0)
	eq(t, "fifo long-job claim", fifo.Ledger[long].ClaimUS, 3000)
}

// TestLJFAchievesCriticalPath: when the longest job is the critical path,
// LJF's wall time equals it exactly — no schedule of independent jobs can
// do better — while FIFO leaves the giant for last and pays its full
// length on top of an already-balanced prefix.
func TestLJFAchievesCriticalPath(t *testing.T) {
	ms := time.Millisecond
	durs := []time.Duration{2 * ms, 2 * ms, 2 * ms, 2 * ms, 8 * ms}

	fifo := replayTimeline(durs, fifoOrder(len(durs)), 2)
	ljf := replayTimeline(durs, LJFOrder(estimates(durs)), 2)

	eq(t, "critical path", ljf.CriticalPathUS, 8000)
	eq(t, "ljf wall == critical path", ljf.WallUS, ljf.CriticalPathUS)
	eq(t, "fifo wall", fifo.WallUS, 12000) // 2+2 prefix, then the 8ms job alone
	eq(t, "ljf speedup", ljf.MeasuredSpeedupX, 2)
	eq(t, "fifo speedup", fifo.MeasuredSpeedupX, 16.0/12.0)
}

// TestLJFOrderPermutation pins the sort itself: descending by estimate,
// ties stable in submission order, and uniform estimates degenerating to
// the identity — the property stop-at-first-error prefix semantics lean
// on for uniform batches.
func TestLJFOrderPermutation(t *testing.T) {
	got := LJFOrder([]float64{1, 5, 3, 5, 2})
	want := []int{1, 3, 2, 4, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LJFOrder = %v, want %v", got, want)
		}
	}
	uniform := LJFOrder([]float64{7, 7, 7, 7})
	for i, j := range uniform {
		if i != j {
			t.Fatalf("uniform estimates must claim FIFO, got %v", uniform)
		}
	}
	if empty := LJFOrder(nil); len(empty) != 0 {
		t.Fatalf("LJFOrder(nil) = %v", empty)
	}
}

// TestLedgerPolicyEstimateAndAbandonAccounting exercises the new ledger
// fields end to end on a synthetic timeline: claim policy and effective-
// worker updates pass through to the stats, per-job estimates land in the
// ledger records, dilation is measured-over-estimated across prior-backed
// jobs only, phase lines follow the job kinds, and the balance equations
// hold with an abandoned and an unclaimed job in the books.
func TestLedgerPolicyEstimateAndAbandonAccounting(t *testing.T) {
	ms := time.Millisecond
	clk := newFakeClock()
	epoch := clk.at
	l := NewLedger()
	l.SetClock(clk.now)
	l.SetPolicy(PolicyLJF)

	l.Enqueue("setup", "exp/setup")   // 0
	l.Enqueue("measure", "sim/a")     // 1
	l.Enqueue("measure", "sim/b")     // 2
	l.Enqueue("render", "exp/render") // 3
	l.Enqueue("measure", "sim/c")     // 4: abandoned mid-batch
	l.Enqueue("measure", "sim/d")     // 5: never claimed
	l.SetEstimate(0, 10, EstStatic)
	l.SetEstimate(1, 1000, EstPrior)
	l.SetEstimate(2, 500, EstPrior)

	// Begin caps at 1 before planning; SetEffective raises it once the
	// widest stage is known — the staged scheduler's calling sequence.
	l.Begin(2, 1)
	l.SetEffective(2)
	l.SetEffective(0) // guard: invalid counts are ignored

	run := func(i, worker int, start, finish time.Duration) {
		clk.at = epoch.Add(start)
		l.Claim(i, worker)
		l.Start(i)
		clk.at = epoch.Add(finish)
		l.Finish(i, false)
	}
	run(0, 0, 0, 1*ms)    // setup
	run(1, 0, 1*ms, 3*ms) // measure a: 2000us against a 1000us prior
	run(2, 1, 1*ms, 2*ms) // measure b: 1000us against a 500us prior
	clk.at = epoch.Add(3 * ms)
	l.Abandon(4, 1)
	run(3, 0, 3*ms, 4*ms) // render
	clk.at = epoch.Add(4 * ms)
	l.End()

	s := l.Stats()
	if s.ClaimPolicy != PolicyLJF {
		t.Errorf("claim policy = %q, want %q", s.ClaimPolicy, PolicyLJF)
	}
	if s.WorkersEffective != 2 {
		t.Errorf("workers effective = %d, want 2 after SetEffective", s.WorkersEffective)
	}
	if s.CPUs <= 0 || s.GOMAXPROCS <= 0 {
		t.Errorf("cpu accounting missing: cpus=%d gomaxprocs=%d", s.CPUs, s.GOMAXPROCS)
	}

	// Balance with an abandoned and an unclaimed job in the books.
	if s.Jobs.Enqueued != 6 || s.Jobs.Claimed != 5 || s.Jobs.Finished != 4 ||
		s.Jobs.Abandoned != 1 || s.Jobs.Unclaimed != 1 {
		t.Errorf("job counts = %+v", s.Jobs)
	}
	if s.Jobs.Enqueued != s.Jobs.Claimed+s.Jobs.Unclaimed ||
		s.Jobs.Claimed != s.Jobs.Finished+s.Jobs.Abandoned {
		t.Errorf("ledger does not balance: %+v", s.Jobs)
	}

	// Dilation counts only the prior-backed finished jobs: (2000 + 1000)
	// measured over (1000 + 500) estimated.  The static setup estimate and
	// the abandoned job must not contaminate it.
	eq(t, "dilation", s.DilationX, 2)

	// Estimates pass through to the ledger records verbatim.
	if r := s.Ledger[1]; r.EstUS != 1000 || r.EstSource != EstPrior {
		t.Errorf("job 1 estimate = %v/%q, want 1000/%q", r.EstUS, r.EstSource, EstPrior)
	}
	if r := s.Ledger[0]; r.EstUS != 10 || r.EstSource != EstStatic {
		t.Errorf("job 0 estimate = %v/%q, want 10/%q", r.EstUS, r.EstSource, EstStatic)
	}
	if r := s.Ledger[4]; r.Outcome != OutcomeAbandoned || r.Worker != 1 {
		t.Errorf("abandoned job record = %+v", r)
	}
	if r := s.Ledger[5]; r.Outcome != OutcomeUnclaimed {
		t.Errorf("unclaimed job record = %+v", r)
	}

	// Phase lines in setup/measure/render order, abandoned and unclaimed
	// jobs excluded; each phase's wall is its claim-to-finish extent.
	if len(s.Phases) != 3 {
		t.Fatalf("phases = %+v, want setup/measure/render", s.Phases)
	}
	wantPhases := []PhaseStats{
		{Phase: "setup", Jobs: 1, WallUS: 1000, BusyUS: 1000},
		{Phase: "measure", Jobs: 2, WallUS: 2000, BusyUS: 3000},
		{Phase: "render", Jobs: 1, WallUS: 1000, BusyUS: 1000},
	}
	for i, want := range wantPhases {
		got := s.Phases[i]
		if got.Phase != want.Phase || got.Jobs != want.Jobs {
			t.Errorf("phase %d = %+v, want %+v", i, got, want)
		}
		eq(t, fmt.Sprintf("phase %s wall", want.Phase), got.WallUS, want.WallUS)
		eq(t, fmt.Sprintf("phase %s busy", want.Phase), got.BusyUS, want.BusyUS)
	}
}

// TestPhaseOf pins the kind-to-phase mapping the profile folds by.
func TestPhaseOf(t *testing.T) {
	for kind, want := range map[string]string{
		"setup":       "setup",
		"render":      "render",
		"measure":     "measure",
		"pipeline":    "measure",
		"sweep":       "measure",
		"sweep-point": "measure",
	} {
		if got := PhaseOf(kind); got != want {
			t.Errorf("PhaseOf(%q) = %q, want %q", kind, got, want)
		}
	}
}

// TestCostModelProvenanceAndConvergence covers the estimate lifecycle: a
// cold model orders kinds by static weight, one observation flips the
// exact (kind, program, scale) key to a prior, further observations track
// the EWMA, and unseen shapes scale their static weight by the observed
// global mean.
func TestCostModelProvenanceAndConvergence(t *testing.T) {
	m := NewCostModel()

	// Cold: static estimates, ordered sweep > pipeline > sweep-point >
	// measure > setup, and linear in scale.
	kinds := []string{"sweep", "pipeline", "sweep-point", "measure", "setup"}
	var prev float64
	for i, kind := range kinds {
		est, src := m.Estimate(kind, "p", 1)
		if src != EstStatic {
			t.Errorf("cold %s estimate source = %q, want %q", kind, src, EstStatic)
		}
		if i > 0 && est >= prev {
			t.Errorf("cold ordering broken: %s (%v) >= %s (%v)", kind, est, kinds[i-1], prev)
		}
		prev = est
	}
	full, _ := m.Estimate("measure", "p", 1)
	half, _ := m.Estimate("measure", "p", 0.5)
	eq(t, "scale halves the static estimate", half, full/2)

	// One observation: the exact key becomes a prior at the observed value.
	m.Observe("measure", "p", 1, 2000)
	est, src := m.Estimate("measure", "p", 1)
	if src != EstPrior {
		t.Fatalf("post-observe source = %q, want %q", src, EstPrior)
	}
	eq(t, "first prior is the observation", est, 2000)

	// Second observation: EWMA with alpha 0.4.
	m.Observe("measure", "p", 1, 1000)
	est, _ = m.Estimate("measure", "p", 1)
	eq(t, "ewma after second observation", est, 2000+ewmaAlpha*(1000-2000))

	// An unseen program of the same kind stays static but is now scaled by
	// the observed global mean (2000, then EWMA'd to 1600 in weight-1
	// units), not the bare weight.
	other, src := m.Estimate("measure", "q", 1)
	if src != EstStatic {
		t.Errorf("unseen program source = %q, want %q", src, EstStatic)
	}
	eq(t, "static scaled by observed mean", other, 1600)
	pipe, _ := m.Estimate("pipeline", "q", 1)
	eq(t, "unseen kind keeps its weight ratio", pipe, 3*1600)

	// A different scale is a different key: still static.
	_, src = m.Estimate("measure", "p", 0.5)
	if src != EstStatic {
		t.Errorf("different scale should miss the prior, got %q", src)
	}

	// Nil model degrades to bare weights.
	var nilModel *CostModel
	est, src = nilModel.Estimate("sweep", "p", 1)
	if est != 12 || src != EstStatic {
		t.Errorf("nil model estimate = %v/%q, want 12/static", est, src)
	}
	nilModel.Observe("measure", "p", 1, 100) // must not panic
}

// TestCostModelEntryBound: the per-process model stops admitting new keys
// at its cap, but existing keys keep converging — a scale-churning caller
// can't grow it without bound, and can't freeze it either.
func TestCostModelEntryBound(t *testing.T) {
	m := NewCostModel()
	for i := 0; i < costModelMaxEntries+100; i++ {
		m.Observe("measure", fmt.Sprintf("p%d", i), 1, 100)
	}
	m.mu.Lock()
	n := len(m.ewma)
	m.mu.Unlock()
	if n != costModelMaxEntries {
		t.Errorf("model holds %d entries, want the %d cap", n, costModelMaxEntries)
	}
	// A key past the cap was never admitted.
	_, src := m.Estimate("measure", fmt.Sprintf("p%d", costModelMaxEntries+50), 1)
	if src != EstStatic {
		t.Errorf("overflow key source = %q, want %q", src, EstStatic)
	}
	// An admitted key still updates at the cap.
	m.Observe("measure", "p0", 1, 200)
	est, src := m.Estimate("measure", "p0", 1)
	if src != EstPrior {
		t.Fatalf("admitted key source = %q, want %q", src, EstPrior)
	}
	eq(t, "admitted key still converges", est, 100+ewmaAlpha*(200-100))
}
