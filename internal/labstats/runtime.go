package labstats

import (
	"runtime"
	"runtime/metrics"
	"runtime/pprof"
)

// mutexWaitMetric is the runtime's cumulative sync.Mutex/RWMutex wait
// clock (always on since Go 1.20) — the contention-wait estimate's source.
const mutexWaitMetric = "/sync/mutex/wait/total:seconds"

// RuntimeSnapshot is one reading of the Go runtime around a batch: the
// allocator's and collector's cumulative books plus the live goroutine
// count.  Two snapshots bracket a batch; DeltaTo attributes the difference
// to it.
type RuntimeSnapshot struct {
	AtUS            float64 `json:"at_us"`
	HeapAllocBytes  uint64  `json:"heap_alloc_bytes"`
	TotalAllocBytes uint64  `json:"total_alloc_bytes"`
	Mallocs         uint64  `json:"mallocs"`
	NumGC           uint32  `json:"num_gc"`
	GCPauseTotalNS  uint64  `json:"gc_pause_total_ns"`
	Goroutines      int     `json:"goroutines"`
	MutexWaitNS     uint64  `json:"mutex_wait_ns"`
}

// ReadRuntimeSnapshot captures the current runtime state.
func ReadRuntimeSnapshot() RuntimeSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := RuntimeSnapshot{
		HeapAllocBytes:  ms.HeapAlloc,
		TotalAllocBytes: ms.TotalAlloc,
		Mallocs:         ms.Mallocs,
		NumGC:           ms.NumGC,
		GCPauseTotalNS:  ms.PauseTotalNs,
		Goroutines:      runtime.NumGoroutine(),
	}
	sample := []metrics.Sample{{Name: mutexWaitMetric}}
	metrics.Read(sample)
	if sample[0].Value.Kind() == metrics.KindFloat64 {
		s.MutexWaitNS = uint64(sample[0].Value.Float64() * 1e9)
	}
	return s
}

// RuntimeDelta is what the runtime did across a batch: allocation and GC
// churn, mutex wait growth, and the goroutine count at each edge.
type RuntimeDelta struct {
	AllocBytes       uint64  `json:"alloc_bytes"`
	AllocBytesPerJob float64 `json:"alloc_bytes_per_job,omitempty"`
	Mallocs          uint64  `json:"mallocs"`
	GCCycles         uint32  `json:"gc_cycles"`
	GCPauseNS        uint64  `json:"gc_pause_ns"`
	MutexWaitNS      uint64  `json:"mutex_wait_ns"`
	GoroutinesBefore int     `json:"goroutines_before"`
	GoroutinesAfter  int     `json:"goroutines_after"`
}

// DeltaTo returns the runtime activity between s and after.
func (s RuntimeSnapshot) DeltaTo(after RuntimeSnapshot) RuntimeDelta {
	return RuntimeDelta{
		AllocBytes:       after.TotalAllocBytes - s.TotalAllocBytes,
		Mallocs:          after.Mallocs - s.Mallocs,
		GCCycles:         after.NumGC - s.NumGC,
		GCPauseNS:        after.GCPauseTotalNS - s.GCPauseTotalNS,
		MutexWaitNS:      after.MutexWaitNS - s.MutexWaitNS,
		GoroutinesBefore: s.Goroutines,
		GoroutinesAfter:  after.Goroutines,
	}
}

// Contention-bracket sampling rates: 1/contentionMutexFraction mutex
// contention events and every blocking event >= contentionBlockRateNS are
// sampled while a bracket is open.
const (
	contentionMutexFraction = 5
	contentionBlockRateNS   = 10_000
)

// ContentionStats records the optional mutex-/block-profile bracket around
// a batch: the sampling rates used and how many distinct contended call
// stacks each profile gained while the bracket was open.  The stacks
// themselves stay in the runtime's profiles (go test -mutexprofile /
// pprof.Lookup) — the ledger only wants "did contention appear, and
// roughly how much".
type ContentionStats struct {
	MutexProfileFraction int `json:"mutex_profile_fraction"`
	BlockProfileRateNS   int `json:"block_profile_rate_ns"`
	MutexStacks          int `json:"mutex_stacks"`
	BlockStacks          int `json:"block_stacks"`

	prevMutexFraction int
	mutexBefore       int
	blockBefore       int
}

// beginContention raises the runtime's contention sampling rates and
// records the profiles' current sizes.
func beginContention() *ContentionStats {
	c := &ContentionStats{
		MutexProfileFraction: contentionMutexFraction,
		BlockProfileRateNS:   contentionBlockRateNS,
	}
	c.prevMutexFraction = runtime.SetMutexProfileFraction(contentionMutexFraction)
	runtime.SetBlockProfileRate(contentionBlockRateNS)
	if p := pprof.Lookup("mutex"); p != nil {
		c.mutexBefore = p.Count()
	}
	if p := pprof.Lookup("block"); p != nil {
		c.blockBefore = p.Count()
	}
	return c
}

// endContention restores the runtime's sampling rates (block profiling has
// no previous-rate getter; it is returned to 0, the default) and records
// the profiles' growth.
func endContention(c *ContentionStats) {
	if p := pprof.Lookup("mutex"); p != nil {
		c.MutexStacks = p.Count() - c.mutexBefore
	}
	if p := pprof.Lookup("block"); p != nil {
		c.BlockStacks = p.Count() - c.blockBefore
	}
	runtime.SetMutexProfileFraction(c.prevMutexFraction)
	runtime.SetBlockProfileRate(0)
}
