package labstats

import (
	"math"
	"strings"
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock: the ledger arithmetic must depend
// only on recorded timestamps, never on the wall clock.
type fakeClock struct{ at time.Time }

func newFakeClock() *fakeClock { return &fakeClock{at: time.Unix(1000, 0)} }

func (c *fakeClock) now() time.Time          { return c.at }
func (c *fakeClock) advance(d time.Duration) { c.at = c.at.Add(d) }

// eq asserts exact-to-epsilon agreement: every number below is determined
// by the synthetic timeline, so tolerance is rounding only.
func eq(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("%s = %v, want %v", name, got, want)
	}
}

// TestLedgerArithmeticTwoWorkers scripts this timeline (ms) on 2 workers:
//
//	worker 0: j0 [0,100)               j2 [100,200)
//	worker 1: j1 [0,50)  j3 [50,250)
//
// Known answers: wall 250, work 450, serial window [200,250) (only j3 in
// flight) so serial fraction = 50/450 = 1/9, measured speedup 450/250 =
// 1.8, and Amdahl at 2 workers with f=1/9 predicts exactly 1.8 — a
// timeline whose imbalance is fully explained by its serial tail.
func TestLedgerArithmeticTwoWorkers(t *testing.T) {
	clk := newFakeClock()
	l := NewLedger()
	l.SetClock(clk.now)
	jobs := make([]int, 4)
	for i := range jobs {
		jobs[i] = l.Enqueue("measure", "Sys/prog")
	}
	l.Begin(2, 2)

	run := func(i, worker int, start, finish time.Duration) {
		clk.at = time.Unix(1000, 0).Add(start)
		l.Claim(jobs[i], worker)
		l.Start(jobs[i])
		clk.at = time.Unix(1000, 0).Add(finish)
		l.Finish(jobs[i], false)
	}
	run(0, 0, 0, 100*time.Millisecond)
	run(1, 1, 0, 50*time.Millisecond)
	run(2, 0, 100*time.Millisecond, 200*time.Millisecond)
	run(3, 1, 50*time.Millisecond, 250*time.Millisecond)
	clk.at = time.Unix(1000, 0).Add(250 * time.Millisecond)
	l.End()

	s := l.Stats()
	if s == nil {
		t.Fatal("Stats returned nil")
	}
	eq(t, "WallUS", s.WallUS, 250_000)
	eq(t, "TotalBusyUS", s.TotalBusyUS, 450_000)
	eq(t, "SerialUS", s.SerialUS, 50_000)
	eq(t, "SerialFraction", s.SerialFraction, 50.0/450.0)
	eq(t, "MeasuredSpeedupX", s.MeasuredSpeedupX, 1.8)
	eq(t, "PredictedSpeedupX", s.PredictedSpeedupX, 1.8)
	// Implied f from S=1.8 at p=2: (2/1.8 - 1)/(2-1) = 1/9.
	eq(t, "ImpliedSerialFraction", s.ImpliedSerialFraction, 1.0/9.0)
	eq(t, "CriticalPathUS", s.CriticalPathUS, 200_000)

	if len(s.Workers) != 2 {
		t.Fatalf("got %d workers, want 2", len(s.Workers))
	}
	eq(t, "w0.BusyUS", s.Workers[0].BusyUS, 200_000)
	eq(t, "w0.IdleUS", s.Workers[0].IdleUS, 50_000)
	eq(t, "w0.Utilization", s.Workers[0].Utilization, 0.8)
	eq(t, "w1.BusyUS", s.Workers[1].BusyUS, 250_000)
	eq(t, "w1.IdleUS", s.Workers[1].IdleUS, 0)
	eq(t, "w1.Utilization", s.Workers[1].Utilization, 1.0)
	// Busy + idle must sum to wall for every worker — the report's
	// acceptance identity, exact here.
	for _, w := range s.Workers {
		eq(t, "busy+idle", w.BusyUS+w.IdleUS, s.WallUS)
	}
	// Imbalance: busy {200,250}ms, mean 225 -> (250-225)/225.
	eq(t, "ImbalancePct", s.ImbalancePct, 100*25.0/225.0)

	if s.Jobs != (JobCounts{Enqueued: 4, Claimed: 4, Finished: 4}) {
		t.Errorf("job counts = %+v", s.Jobs)
	}
}

// TestLedgerArithmeticSerial pins the degenerate single-worker shape:
// serial fraction 1, speedup 1, predicted 1, zero imbalance.
func TestLedgerArithmeticSerial(t *testing.T) {
	clk := newFakeClock()
	l := NewLedger()
	l.SetClock(clk.now)
	a := l.Enqueue("measure", "A/a")
	b := l.Enqueue("pipeline", "B/b")
	l.Begin(1, 1)
	l.Claim(a, 0)
	l.Start(a)
	clk.advance(30 * time.Millisecond)
	l.Finish(a, false)
	l.Claim(b, 0)
	l.Start(b)
	clk.advance(70 * time.Millisecond)
	l.Finish(b, false)
	l.End()

	s := l.Stats()
	eq(t, "WallUS", s.WallUS, 100_000)
	eq(t, "TotalBusyUS", s.TotalBusyUS, 100_000)
	eq(t, "SerialFraction", s.SerialFraction, 1)
	eq(t, "MeasuredSpeedupX", s.MeasuredSpeedupX, 1)
	eq(t, "PredictedSpeedupX", s.PredictedSpeedupX, 1)
	eq(t, "ImpliedSerialFraction", s.ImpliedSerialFraction, 1)
	eq(t, "ImbalancePct", s.ImbalancePct, 0)
	eq(t, "w0.Utilization", s.Workers[0].Utilization, 1)
}

// TestLedgerBalanceWithAbandonment pins the ledger identity on the error
// path: enqueued = claimed + unclaimed and claimed = finished + abandoned,
// with the error counted among the finished.
func TestLedgerBalanceWithAbandonment(t *testing.T) {
	clk := newFakeClock()
	l := NewLedger()
	l.SetClock(clk.now)
	idx := make([]int, 6)
	for i := range idx {
		idx[i] = l.Enqueue("measure", "Sys/prog")
	}
	l.Begin(2, 2)
	// j0 succeeds, j1 fails, j2 is claimed-then-abandoned, j3..j5 never
	// claimed.
	l.Claim(idx[0], 0)
	l.Start(idx[0])
	clk.advance(10 * time.Millisecond)
	l.Finish(idx[0], false)
	l.Claim(idx[1], 1)
	l.Start(idx[1])
	clk.advance(5 * time.Millisecond)
	l.Finish(idx[1], true)
	l.Abandon(idx[2], 0)
	l.End()

	s := l.Stats()
	want := JobCounts{Enqueued: 6, Claimed: 3, Finished: 2, Errors: 1, Abandoned: 1, Unclaimed: 3}
	if s.Jobs != want {
		t.Errorf("job counts = %+v, want %+v", s.Jobs, want)
	}
	if s.Jobs.Enqueued != s.Jobs.Claimed+s.Jobs.Unclaimed {
		t.Error("enqueued != claimed + unclaimed")
	}
	if s.Jobs.Claimed != s.Jobs.Finished+s.Jobs.Abandoned {
		t.Error("claimed != finished + abandoned")
	}
}

// TestConcurrencyProfileHandoff: a back-to-back handoff (one job finishing
// at the same instant another starts) is serial, not overlap.
func TestConcurrencyProfileHandoff(t *testing.T) {
	jobs := []JobRecord{
		{StartUS: 0, FinishUS: 100, DurUS: 100, Outcome: OutcomeOK, Worker: 0},
		{StartUS: 100, FinishUS: 200, DurUS: 100, Outcome: OutcomeOK, Worker: 1},
	}
	s := Compute(jobs, 2, 2, 0, 200)
	eq(t, "SerialFraction", s.SerialFraction, 1)
	eq(t, "SerialUS", s.SerialUS, 200)
	eq(t, "MeasuredSpeedupX", s.MeasuredSpeedupX, 1)
}

// TestNilLedgerIsDisabled: the nil ledger is the disabled path, as
// everywhere in this lab.
func TestNilLedgerIsDisabled(t *testing.T) {
	var l *Ledger
	if i := l.Enqueue("measure", "x"); i != -1 {
		t.Errorf("nil Enqueue = %d, want -1", i)
	}
	l.Begin(2, 2)
	l.Claim(0, 0)
	l.Start(0)
	l.Finish(0, false)
	l.Abandon(0, 0)
	l.End()
	if l.Stats() != nil {
		t.Error("nil ledger Stats should be nil")
	}
}

// TestRuntimeSnapshotDelta: snapshots move monotonically and the delta
// attributes allocation to the interval.
func TestRuntimeSnapshotDelta(t *testing.T) {
	before := ReadRuntimeSnapshot()
	waste := make([][]byte, 0, 1024)
	for i := 0; i < 1024; i++ {
		waste = append(waste, make([]byte, 4096))
	}
	_ = waste
	after := ReadRuntimeSnapshot()
	d := before.DeltaTo(after)
	if d.AllocBytes < 1<<20 {
		t.Errorf("AllocBytes = %d, want >= 4MB-ish of tracked allocation", d.AllocBytes)
	}
	if d.GoroutinesBefore <= 0 || d.GoroutinesAfter <= 0 {
		t.Errorf("goroutine counts not captured: %+v", d)
	}
}

// TestContentionBracket: the bracket restores the previous sampling rates
// and never reports negative growth.
func TestContentionBracket(t *testing.T) {
	clk := newFakeClock()
	l := NewLedger()
	l.SetClock(clk.now)
	l.Enqueue("measure", "Sys/prog")
	l.CaptureContention()
	l.Begin(1, 1)
	l.Claim(0, 0)
	l.Start(0)
	clk.advance(time.Millisecond)
	l.Finish(0, false)
	l.End()
	s := l.Stats()
	if s.Contention == nil {
		t.Fatal("contention bracket not recorded")
	}
	if s.Contention.MutexStacks < 0 || s.Contention.BlockStacks < 0 {
		t.Errorf("negative profile growth: %+v", s.Contention)
	}
	if s.Contention.MutexProfileFraction != contentionMutexFraction {
		t.Errorf("fraction = %d", s.Contention.MutexProfileFraction)
	}
}

// TestWriteReportShape: the text report carries the headline numbers and
// one row per worker.
func TestWriteReportShape(t *testing.T) {
	jobs := []JobRecord{
		{Index: 0, Kind: "measure", Program: "A/a", Worker: 0, StartUS: 0, FinishUS: 100_000, DurUS: 100_000, Outcome: OutcomeOK},
		{Index: 1, Kind: "measure", Program: "B/b", Worker: 1, StartUS: 0, FinishUS: 50_000, DurUS: 50_000, Outcome: OutcomeOK},
	}
	s := Compute(jobs, 4, 2, 0, 100_000)
	var sb strings.Builder
	if err := s.WriteReport(&sb, "table1"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"table1", "2 workers (requested 4)", "serial fraction", "imbalance", "jobs: 2 enqueued"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	lines := strings.Count(out, "\n")
	if lines < 7 {
		t.Errorf("report too short (%d lines):\n%s", lines, out)
	}
}

// TestBrief: the one-line headline used by server logs and /statusz text
// names the batch's jobs, workers, and speedup, and a nil receiver is a
// safe placeholder line.
func TestBrief(t *testing.T) {
	jobs := []JobRecord{
		{Index: 0, Kind: "measure", Program: "A/a", Worker: 0, StartUS: 0, FinishUS: 100_000, DurUS: 100_000, Outcome: OutcomeOK},
		{Index: 1, Kind: "measure", Program: "B/b", Worker: 1, StartUS: 0, FinishUS: 50_000, DurUS: 50_000, Outcome: OutcomeOK},
	}
	s := Compute(jobs, 4, 2, 0, 100_000)
	line := s.Brief()
	if strings.Contains(line, "\n") {
		t.Errorf("Brief is not one line: %q", line)
	}
	for _, want := range []string{"2 jobs", "2 workers", "speedup", "imbalance"} {
		if !strings.Contains(line, want) {
			t.Errorf("Brief missing %q: %q", want, line)
		}
	}
	var nilStats *SchedStats
	if got := nilStats.Brief(); got != "no scheduler ledger recorded" {
		t.Errorf("nil Brief = %q", got)
	}
}
