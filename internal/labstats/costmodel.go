package labstats

import (
	"fmt"
	"sort"
	"sync"
)

// kindWeight is the static relative cost of a job kind, used before any
// history exists for a job shape.  The absolute numbers don't matter —
// only the ordering they induce — but they track reality at the default
// scale: a pipeline run simulates caches and a TLB on top of the
// interpreter, a monolithic sweep runs 12 cache geometries in one pass,
// a per-point sweep job runs one geometry (slightly more than a bare
// measure because the event stream still replays in full), and setup /
// render are bookkeeping around the measurements.
func kindWeight(kind string) float64 {
	switch kind {
	case "pipeline":
		return 3
	case "sweep":
		return 12
	case "sweep-point":
		return 1.2
	case "setup", "render":
		return 0.05
	}
	return 1 // "measure" and anything unknown
}

// CostModel estimates job durations from observed history.  Estimates are
// keyed by the job's ledger identity — kind, program, scale — and refined
// with an exponentially weighted moving average as batches drain, so the
// second run of an experiment orders its claims by what the first run
// actually measured.  The zero value is unusable; use NewCostModel.  All
// methods are safe for concurrent use.
type CostModel struct {
	mu sync.Mutex
	// ewma maps "kind|program|scale" to the smoothed observed duration.
	ewma map[string]float64
	// meanUS is the smoothed duration across all observations, used to
	// give static estimates a realistic absolute magnitude.
	meanUS float64
	n      int
}

// costModelMaxEntries bounds the per-process model; at the default lab
// shapes (~10 kinds × ~20 programs × a few scales) it never fills, and a
// pathological caller churning scales can't grow it without bound.
const costModelMaxEntries = 4096

// ewmaAlpha weights new observations.  High enough that a warmed cache
// (durations dropping 100x) re-converges in a few batches, low enough
// that one noisy run doesn't invert the claim order.
const ewmaAlpha = 0.4

// NewCostModel returns an empty model.
func NewCostModel() *CostModel {
	return &CostModel{ewma: make(map[string]float64)}
}

// globalCostModel is the process-wide model shared by every batch, so
// later batches in one process (bench arms, server batches) claim in an
// order informed by earlier ones.
var globalCostModel = NewCostModel()

// GlobalCostModel returns the process-wide shared model.
func GlobalCostModel() *CostModel { return globalCostModel }

func costKey(kind, program string, scale float64) string {
	return fmt.Sprintf("%s|%s|%g", kind, program, scale)
}

// Observe feeds one finished job's measured duration back into the model.
func (m *CostModel) Observe(kind, program string, scale, durUS float64) {
	if m == nil || durUS <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	key := costKey(kind, program, scale)
	if prev, ok := m.ewma[key]; ok {
		m.ewma[key] = prev + ewmaAlpha*(durUS-prev)
	} else if len(m.ewma) < costModelMaxEntries {
		m.ewma[key] = durUS
	}
	// Normalize the global mean to weight-1 units so it scales static
	// estimates for kinds we haven't seen.
	unit := durUS / kindWeight(kind)
	if m.n == 0 {
		m.meanUS = unit
	} else {
		m.meanUS += ewmaAlpha * (unit - m.meanUS)
	}
	m.n++
}

// Estimate returns the model's cost estimate for a job and the estimate's
// provenance: EstPrior when history for this exact (kind, program, scale)
// exists, EstStatic otherwise.  Static estimates are the kind weight
// scaled by the scale factor and the observed global mean (or 1µs-units
// when the model is empty) — crude, but they order a cold batch sensibly:
// sweeps before pipelines before measures before bookkeeping.
func (m *CostModel) Estimate(kind, program string, scale float64) (us float64, source string) {
	w := kindWeight(kind)
	if scale > 0 {
		w *= scale
	}
	if m == nil {
		return w, EstStatic
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if est, ok := m.ewma[costKey(kind, program, scale)]; ok {
		return est, EstPrior
	}
	if m.n > 0 {
		return w * m.meanUS, EstStatic
	}
	return w, EstStatic
}

// LJFOrder returns the longest-job-first claim permutation for the given
// estimates: indices sorted by descending cost, ties broken by submission
// order (stable).  With equal estimates throughout, the permutation is
// the identity — FIFO — which keeps stop-at-first-error prefix semantics
// intact for uniform batches.
func LJFOrder(ests []float64) []int {
	order := make([]int, len(ests))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return ests[order[a]] > ests[order[b]]
	})
	return order
}
