package labstats

import (
	"fmt"
	"io"
)

// fmtUS renders a microsecond quantity at human scale.
func fmtUS(us float64) string {
	switch {
	case us >= 1e6:
		return fmt.Sprintf("%.2fs", us/1e6)
	case us >= 1e3:
		return fmt.Sprintf("%.1fms", us/1e3)
	default:
		return fmt.Sprintf("%.0fus", us)
	}
}

// Brief renders the ledger's headline as a single line — for server logs
// and the /statusz text view, where one batch gets one line and WriteReport
// has the full story.
func (s *SchedStats) Brief() string {
	if s == nil {
		return "no scheduler ledger recorded"
	}
	line := fmt.Sprintf("%d jobs on %d workers, wall %s, speedup %.2fx measured / %.2fx predicted, imbalance %.1f%%",
		s.Jobs.Enqueued, s.WorkersEffective, fmtUS(s.WallUS),
		s.MeasuredSpeedupX, s.PredictedSpeedupX, s.ImbalancePct)
	if s.ClaimPolicy != "" {
		line += ", " + s.ClaimPolicy + " claims"
	}
	return line
}

// WriteReport renders one batch's speedup ledger as text: the headline
// speedup decomposition, the per-worker utilization table, the runtime's
// GC/allocation account, and the job balance.
func (s *SchedStats) WriteReport(w io.Writer, id string) error {
	if s == nil {
		_, err := fmt.Fprintf(w, "%s: no scheduler ledger recorded\n", id)
		return err
	}
	if _, err := fmt.Fprintf(w, "%s: %d jobs on %d workers (requested %d), wall %s\n",
		id, s.Jobs.Enqueued, s.WorkersEffective, s.WorkersRequested, fmtUS(s.WallUS)); err != nil {
		return err
	}
	fmt.Fprintf(w, "  speedup %.2fx measured vs %.2fx predicted (Amdahl at %d workers)\n",
		s.MeasuredSpeedupX, s.PredictedSpeedupX, s.WorkersEffective)
	fmt.Fprintf(w, "  serial fraction %.3f measured, %.3f implied by speedup; serial wall %s of %s\n",
		s.SerialFraction, s.ImpliedSerialFraction, fmtUS(s.SerialUS), fmtUS(s.WallUS))
	fmt.Fprintf(w, "  work %s, critical path %s, imbalance %.1f%%, mutex wait %s\n",
		fmtUS(s.TotalBusyUS), fmtUS(s.CriticalPathUS), s.ImbalancePct, fmtUS(s.ContentionWaitUS))
	if s.ClaimPolicy != "" {
		fmt.Fprintf(w, "  claims %s over %d cpus (gomaxprocs %d)", s.ClaimPolicy, s.CPUs, s.GOMAXPROCS)
		if s.DilationX > 0 {
			fmt.Fprintf(w, ", dilation %.2fx vs prior estimates", s.DilationX)
		}
		fmt.Fprintln(w)
	}
	for _, ph := range s.Phases {
		fmt.Fprintf(w, "  phase %-8s %4d jobs, wall %s, busy %s\n",
			ph.Phase, ph.Jobs, fmtUS(ph.WallUS), fmtUS(ph.BusyUS))
	}
	if r := s.Runtime; r != nil {
		fmt.Fprintf(w, "  runtime: %s alloc (%s/job), %d mallocs, %d gc cycles (%s pause), goroutines %d -> %d\n",
			fmtBytes(r.AllocBytes), fmtBytes(uint64(r.AllocBytesPerJob)), r.Mallocs,
			r.GCCycles, fmtUS(float64(r.GCPauseNS)/1e3), r.GoroutinesBefore, r.GoroutinesAfter)
	}
	if c := s.Contention; c != nil {
		fmt.Fprintf(w, "  contention bracket: %d mutex stacks, %d block stacks (fraction %d, block rate %dns)\n",
			c.MutexStacks, c.BlockStacks, c.MutexProfileFraction, c.BlockProfileRateNS)
	}
	fmt.Fprintf(w, "  %-8s %6s %12s %12s %6s\n", "worker", "jobs", "busy", "idle", "util")
	for _, ws := range s.Workers {
		fmt.Fprintf(w, "  %-8d %6d %12s %12s %5.0f%%\n",
			ws.Worker, ws.Jobs, fmtUS(ws.BusyUS), fmtUS(ws.IdleUS), 100*ws.Utilization)
	}
	_, err := fmt.Fprintf(w, "  jobs: %d enqueued, %d claimed, %d finished, %d errors, %d abandoned, %d unclaimed\n",
		s.Jobs.Enqueued, s.Jobs.Claimed, s.Jobs.Finished, s.Jobs.Errors, s.Jobs.Abandoned, s.Jobs.Unclaimed)
	return err
}

// fmtBytes renders a byte quantity at human scale.
func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
