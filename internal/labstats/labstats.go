// Package labstats turns the lab's own scheduler and runtime into a
// measured subject.  The paper's method is attributing interpreter cost to
// its structural sources; this package applies the same treatment to the
// measurement harness: a per-batch job ledger (who ran what, when, on
// which worker) plus bracketing runtime snapshots (GC, allocation, mutex
// wait), folded into a speedup ledger that decomposes where parallel wall
// time went — serial fraction, per-worker utilization, imbalance, critical
// path, contention — and compares an Amdahl-style predicted speedup
// against the measured one.
//
// The ledger is pure bookkeeping over timestamps from an injectable clock;
// every derived number in SchedStats is computed by Compute, a pure
// function of the job records, so the arithmetic is testable with
// synthetic timelines and no wall-clock dependence.
package labstats

import (
	"runtime"
	"sort"
	"time"
)

// Job outcomes, in ledger-balance terms: every enqueued job is either
// claimed or unclaimed, and every claimed job is either finished (ok or
// error) or abandoned (claimed after a failure stopped the batch, never
// executed).
const (
	OutcomeUnclaimed = "unclaimed" // enqueued, never taken by a worker
	OutcomeClaimed   = "claimed"   // taken by a worker, still in flight
	OutcomeOK        = "ok"        // executed successfully
	OutcomeError     = "error"     // executed, returned an error
	OutcomeAbandoned = "abandoned" // claimed after a failure; never executed
)

// Cost-estimate provenance: a static estimate comes from the per-kind
// weight table (no history for this job shape yet); a prior estimate comes
// from observed durations of earlier jobs with the same (kind, program,
// scale) ledger identity.
const (
	EstStatic = "static"
	EstPrior  = "prior"
)

// Claim policies: FIFO is the original atomic-cursor order (submission
// order); LJF is longest-job-first, claiming in descending cost-estimate
// order so critical-path jobs start early and the tail stays short.
const (
	PolicyFIFO = "fifo"
	PolicyLJF  = "ljf"
)

// JobRecord is one job's line in the ledger.  Timestamps are microseconds
// from the ledger's epoch (batch creation); DurUS is Finish minus Start.
type JobRecord struct {
	Index   int    `json:"index"`
	Kind    string `json:"kind"`
	Program string `json:"program"`
	// Worker is the claiming worker's id (0-based; the serial path is
	// worker 0); -1 until the job is claimed.
	Worker    int     `json:"worker"`
	EnqueueUS float64 `json:"enqueue_us"`
	ClaimUS   float64 `json:"claim_us"`
	StartUS   float64 `json:"start_us"`
	FinishUS  float64 `json:"finish_us"`
	DurUS     float64 `json:"dur_us"`
	Outcome   string  `json:"outcome"`
	// EstUS is the scheduler's pre-run cost estimate for the job — the
	// number longest-job-first claiming ordered it by — and EstSource says
	// where it came from (EstStatic or EstPrior).  Zero/empty when the
	// scheduler ran without estimates (FIFO claiming).
	EstUS     float64 `json:"est_us,omitempty"`
	EstSource string  `json:"est_source,omitempty"`
}

// executed reports whether the job actually ran (to success or error).
func (j JobRecord) executed() bool {
	return j.Outcome == OutcomeOK || j.Outcome == OutcomeError
}

// Ledger records one batch's scheduling history.  Usage contract: Enqueue
// every job (single goroutine), then Begin, then concurrent
// Claim/Start/Finish/Abandon on distinct job indices from the workers,
// then End and Stats.  A nil Ledger is the disabled state: every method
// no-ops and Stats returns nil.
type Ledger struct {
	now   func() time.Time
	epoch time.Time

	jobs []JobRecord

	workersRequested int
	workersEffective int
	beginUS, endUS   float64
	ended            bool
	claimPolicy      string

	captureContention bool
	contention        *ContentionStats
	snapBegin         RuntimeSnapshot
	snapValid         bool
}

// NewLedger starts an empty ledger whose epoch is now.
func NewLedger() *Ledger {
	l := &Ledger{now: time.Now}
	l.epoch = l.now()
	return l
}

// SetClock replaces the ledger's clock (test seam) and resets the epoch to
// the new clock's current time.  Call before any Enqueue.
func (l *Ledger) SetClock(now func() time.Time) {
	if l == nil {
		return
	}
	l.now = now
	l.epoch = now()
}

// CaptureContention arms the optional mutex-/block-profile bracket: Begin
// will raise the runtime's contention profiling rates and End will restore
// them, recording how many contended stacks appeared in between.  Call
// before Begin.
func (l *Ledger) CaptureContention() {
	if l == nil {
		return
	}
	l.captureContention = true
}

// stamp returns microseconds since the epoch.
func (l *Ledger) stamp() float64 {
	return float64(l.now().Sub(l.epoch)) / float64(time.Microsecond)
}

// Enqueue registers one job and returns its ledger index.
func (l *Ledger) Enqueue(kind, program string) int {
	if l == nil {
		return -1
	}
	i := len(l.jobs)
	l.jobs = append(l.jobs, JobRecord{
		Index:     i,
		Kind:      kind,
		Program:   program,
		Worker:    -1,
		EnqueueUS: l.stamp(),
		Outcome:   OutcomeUnclaimed,
	})
	return i
}

// SetEstimate records the scheduler's pre-run cost estimate for job i and
// its provenance (EstStatic or EstPrior).  Call between Enqueue and the
// job's Claim.
func (l *Ledger) SetEstimate(i int, estUS float64, source string) {
	if l == nil || i < 0 || i >= len(l.jobs) {
		return
	}
	l.jobs[i].EstUS = estUS
	l.jobs[i].EstSource = source
}

// SetPolicy records the claim policy the batch ran under (e.g. PolicyFIFO,
// PolicyLJF); Stats copies it into the speedup ledger.
func (l *Ledger) SetPolicy(policy string) {
	if l == nil {
		return
	}
	l.claimPolicy = policy
}

// Begin marks the start of scheduling: the requested worker count, the
// effective one (after capping at the job count), the wall-clock origin
// utilization is measured against, and the opening runtime snapshot.
func (l *Ledger) Begin(requested, effective int) {
	if l == nil {
		return
	}
	l.workersRequested = requested
	l.workersEffective = effective
	l.beginUS = l.stamp()
	l.snapBegin = ReadRuntimeSnapshot()
	l.snapBegin.AtUS = l.beginUS
	l.snapValid = true
	if l.captureContention {
		l.contention = beginContention()
	}
}

// SetEffective updates the effective worker count after Begin.  The
// staged scheduler finalizes it once planning has revealed the widest
// stage — plan callbacks can enqueue jobs after Begin has been called.
func (l *Ledger) SetEffective(n int) {
	if l == nil || n < 1 {
		return
	}
	l.workersEffective = n
}

// Claim records worker taking job i.
func (l *Ledger) Claim(i, worker int) {
	if l == nil || i < 0 || i >= len(l.jobs) {
		return
	}
	j := &l.jobs[i]
	j.Worker = worker
	j.ClaimUS = l.stamp()
	j.Outcome = OutcomeClaimed
}

// Start records job i beginning execution.
func (l *Ledger) Start(i int) {
	if l == nil || i < 0 || i >= len(l.jobs) {
		return
	}
	l.jobs[i].StartUS = l.stamp()
}

// Finish records job i completing, successfully or with an error.
func (l *Ledger) Finish(i int, failed bool) {
	if l == nil || i < 0 || i >= len(l.jobs) {
		return
	}
	j := &l.jobs[i]
	j.FinishUS = l.stamp()
	j.DurUS = j.FinishUS - j.StartUS
	if failed {
		j.Outcome = OutcomeError
	} else {
		j.Outcome = OutcomeOK
	}
}

// Abandon records worker claiming job i after a failure stopped the batch:
// the job is charged to the worker but never executed.
func (l *Ledger) Abandon(i, worker int) {
	if l == nil || i < 0 || i >= len(l.jobs) {
		return
	}
	j := &l.jobs[i]
	j.Worker = worker
	j.ClaimUS = l.stamp()
	j.Outcome = OutcomeAbandoned
}

// End marks the batch drained: wall time stops here, and the closing
// runtime snapshot (and contention bracket, if armed) is taken.
func (l *Ledger) End() {
	if l == nil {
		return
	}
	l.endUS = l.stamp()
	l.ended = true
	if l.contention != nil {
		endContention(l.contention)
	}
}

// Stats folds the ledger into the speedup ledger.  Returns nil for a nil
// ledger or one that never registered a job.
func (l *Ledger) Stats() *SchedStats {
	if l == nil || len(l.jobs) == 0 {
		return nil
	}
	end := l.endUS
	if !l.ended {
		end = l.stamp()
	}
	s := Compute(l.jobs, l.workersRequested, l.workersEffective, l.beginUS, end)
	s.ClaimPolicy = l.claimPolicy
	s.CPUs = runtime.NumCPU()
	s.GOMAXPROCS = runtime.GOMAXPROCS(0)
	if l.snapValid {
		after := ReadRuntimeSnapshot()
		after.AtUS = end
		d := l.snapBegin.DeltaTo(after)
		s.Runtime = &d
		if s.Jobs.Finished > 0 {
			s.Runtime.AllocBytesPerJob = float64(s.Runtime.AllocBytes) / float64(s.Jobs.Finished)
		}
		s.ContentionWaitUS = float64(d.MutexWaitNS) / float64(time.Microsecond/time.Nanosecond)
	}
	s.Contention = l.contention
	return s
}

// JobCounts is the ledger balance: Enqueued = Claimed + Unclaimed, and
// Claimed = Finished + Abandoned (claimed-but-in-flight jobs only appear
// while the batch is still running).  Errors counts the Finished jobs that
// returned one.
type JobCounts struct {
	Enqueued  int `json:"enqueued"`
	Claimed   int `json:"claimed"`
	Finished  int `json:"finished"`
	Errors    int `json:"errors,omitempty"`
	Abandoned int `json:"abandoned,omitempty"`
	Unclaimed int `json:"unclaimed,omitempty"`
}

// PhaseStats is one scheduling phase's line in the speedup ledger.  The
// batch runs in sequential stages — setup jobs, then measurement jobs,
// then render jobs — so each phase's wall is the claim-to-finish extent of
// its jobs, and the three extents tile the batch wall (minus the
// per-stage scheduling gaps between them).
type PhaseStats struct {
	Phase  string  `json:"phase"`
	Jobs   int     `json:"jobs"`
	WallUS float64 `json:"wall_us"`
	BusyUS float64 `json:"busy_us"`
}

// PhaseOf maps a ledger job kind to its scheduling phase: "setup" and
// "render" name their own stages; every measurement kind (measure,
// pipeline, sweep, sweep-point) is the "measure" stage between them.
func PhaseOf(kind string) string {
	switch kind {
	case "setup", "render":
		return kind
	}
	return "measure"
}

// WorkerStats is one worker's line in the speedup ledger.  BusyUS + IdleUS
// equals the batch wall time by construction.
type WorkerStats struct {
	Worker      int     `json:"worker"`
	Jobs        int     `json:"jobs"`
	BusyUS      float64 `json:"busy_us"`
	IdleUS      float64 `json:"idle_us"`
	Utilization float64 `json:"utilization"`
}

// SchedStats is the speedup ledger for one batch: where the parallel wall
// time went, and how the measured speedup compares to what the measured
// serial fraction predicts.
type SchedStats struct {
	// WorkersRequested is the parallelism the run asked for;
	// WorkersEffective is what the batch actually used after capping at
	// the job count (a report quoting Requested alone overstates small
	// batches).
	WorkersRequested int `json:"workers_requested"`
	WorkersEffective int `json:"workers_effective"`

	Jobs   JobCounts `json:"jobs"`
	WallUS float64   `json:"wall_us"`
	// TotalBusyUS is the summed execution time of every finished job —
	// the work the batch did, and the numerator of the measured speedup.
	TotalBusyUS float64 `json:"total_busy_us"`

	// SerialUS is wall time during which at most one job was in flight;
	// SerialFraction is the share of the *work* that ran without overlap
	// (Amdahl's f, measured structurally from the timeline).
	SerialUS       float64 `json:"serial_us"`
	SerialFraction float64 `json:"serial_fraction"`
	// ImpliedSerialFraction solves Amdahl's law backwards from the
	// measured speedup: the serial fraction that would fully explain it.
	// The gap between implied and measured serial fraction is the cost
	// Amdahl does not model — imbalance, contention, scheduling overhead.
	ImpliedSerialFraction float64 `json:"implied_serial_fraction"`

	// CriticalPathUS is the longest single job: no schedule of these
	// (independent) jobs can finish faster.
	CriticalPathUS float64 `json:"critical_path_us"`
	// ImbalancePct is (max - mean)/mean of per-worker busy time: how much
	// longer the most loaded worker ran than the average.
	ImbalancePct float64 `json:"imbalance_pct"`

	MeasuredSpeedupX  float64 `json:"measured_speedup_x"`
	PredictedSpeedupX float64 `json:"predicted_speedup_x"`

	// ClaimPolicy is how the workers ordered their claims (PolicyFIFO or
	// PolicyLJF); empty on ledgers recorded before policies existed.
	ClaimPolicy string `json:"claim_policy,omitempty"`
	// CPUs and GOMAXPROCS are the hardware and runtime parallelism the
	// batch actually had available.  MeasuredSpeedupX is busy/wall, which
	// on an oversubscribed machine (workers > CPUs) counts timesharing
	// dilation as speedup — compare against CPUs before celebrating.
	CPUs       int `json:"cpus,omitempty"`
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`
	// DilationX is measured-over-estimated duration (Σ dur / Σ est) across
	// finished jobs whose estimate came from priors.  ≈1 means jobs ran at
	// the speed history predicted; ≫1 means concurrent execution stretched
	// them (CPU oversubscription, contention).  Zero when no prior-based
	// estimates were recorded.
	DilationX float64 `json:"dilation_x,omitempty"`

	// Phases decomposes the batch by scheduling stage (setup, measure,
	// render) so a speedup regression localizes to the stage that slowed.
	Phases []PhaseStats `json:"phases,omitempty"`

	// ContentionWaitUS is the runtime's cumulative sync.Mutex wait time
	// across the batch (from runtime/metrics), an estimate of lock
	// contention inside the workers.
	ContentionWaitUS float64 `json:"contention_wait_us"`

	Workers    []WorkerStats    `json:"workers"`
	Runtime    *RuntimeDelta    `json:"runtime,omitempty"`
	Contention *ContentionStats `json:"contention,omitempty"`
	Ledger     []JobRecord      `json:"ledger,omitempty"`
}

// Compute folds job records into the speedup ledger.  It is a pure
// function of its arguments: timestamps come from the records, wall time
// is endUS - beginUS, and no clock is consulted — synthetic timelines
// produce exact numbers.
func Compute(jobs []JobRecord, requested, effective int, beginUS, endUS float64) *SchedStats {
	if effective < 1 {
		effective = 1
	}
	s := &SchedStats{
		WorkersRequested: requested,
		WorkersEffective: effective,
		WallUS:           endUS - beginUS,
		Ledger:           append([]JobRecord(nil), jobs...),
	}

	workers := make([]WorkerStats, effective)
	for w := range workers {
		workers[w].Worker = w
	}
	for _, j := range jobs {
		s.Jobs.Enqueued++
		switch j.Outcome {
		case OutcomeUnclaimed:
			s.Jobs.Unclaimed++
			continue
		case OutcomeAbandoned:
			s.Jobs.Claimed++
			s.Jobs.Abandoned++
			continue
		case OutcomeClaimed:
			s.Jobs.Claimed++
			continue
		}
		s.Jobs.Claimed++
		s.Jobs.Finished++
		if j.Outcome == OutcomeError {
			s.Jobs.Errors++
		}
		s.TotalBusyUS += j.DurUS
		if j.DurUS > s.CriticalPathUS {
			s.CriticalPathUS = j.DurUS
		}
		if j.Worker >= 0 && j.Worker < effective {
			workers[j.Worker].Jobs++
			workers[j.Worker].BusyUS += j.DurUS
		}
	}

	// Per-worker idle is defined against the batch wall, so busy + idle
	// sums to wall exactly and utilization is busy/wall.
	var maxBusy, sumBusy float64
	for w := range workers {
		workers[w].IdleUS = s.WallUS - workers[w].BusyUS
		if s.WallUS > 0 {
			workers[w].Utilization = workers[w].BusyUS / s.WallUS
		}
		sumBusy += workers[w].BusyUS
		if workers[w].BusyUS > maxBusy {
			maxBusy = workers[w].BusyUS
		}
	}
	s.Workers = workers
	if mean := sumBusy / float64(effective); mean > 0 {
		s.ImbalancePct = 100 * (maxBusy - mean) / mean
	}

	s.Phases = phaseProfile(jobs)
	var estPriorUS, durPriorUS float64
	for _, j := range jobs {
		if j.executed() && j.EstSource == EstPrior && j.EstUS > 0 {
			estPriorUS += j.EstUS
			durPriorUS += j.DurUS
		}
	}
	if estPriorUS > 0 {
		s.DilationX = durPriorUS / estPriorUS
	}

	serialWallUS, serialBusyUS := concurrencyProfile(jobs, beginUS, endUS)
	s.SerialUS = serialWallUS
	if s.TotalBusyUS > 0 {
		s.SerialFraction = serialBusyUS / s.TotalBusyUS
		// The two sides accumulate the same intervals in different orders,
		// so a fully serial timeline can land a few ulps off 1 in either
		// direction.  Any real overlap is at least a whole microsecond out
		// of the totals, orders of magnitude beyond this band.
		if s.SerialFraction > 1 || 1-s.SerialFraction < 1e-12 {
			s.SerialFraction = 1
		}
	}
	if s.WallUS > 0 {
		s.MeasuredSpeedupX = s.TotalBusyUS / s.WallUS
	}
	// Amdahl forward: what the measured serial fraction predicts at this
	// worker count...
	f, p := s.SerialFraction, float64(effective)
	if denom := f + (1-f)/p; denom > 0 {
		s.PredictedSpeedupX = 1 / denom
	}
	// ...and backwards: the serial fraction that would explain the
	// measured speedup (meaningful only with >1 worker).
	if effective > 1 && s.MeasuredSpeedupX > 0 {
		impl := (p/s.MeasuredSpeedupX - 1) / (p - 1)
		if impl < 0 {
			impl = 0
		}
		if impl > 1 {
			impl = 1
		}
		s.ImpliedSerialFraction = impl
	} else if effective == 1 {
		s.ImpliedSerialFraction = 1
	}
	return s
}

// phaseProfile folds executed jobs into per-phase lines, in fixed
// setup/measure/render order, omitting phases with no jobs.  Wall per
// phase is the claim-to-finish extent of its jobs — valid because the
// batch runs its stages sequentially, never interleaved.
func phaseProfile(jobs []JobRecord) []PhaseStats {
	order := []string{"setup", "measure", "render"}
	byPhase := make(map[string]*PhaseStats, len(order))
	ext := make(map[string][2]float64, len(order))
	for _, j := range jobs {
		if !j.executed() {
			continue
		}
		ph := PhaseOf(j.Kind)
		p := byPhase[ph]
		if p == nil {
			p = &PhaseStats{Phase: ph}
			byPhase[ph] = p
			ext[ph] = [2]float64{j.ClaimUS, j.FinishUS}
		}
		p.Jobs++
		p.BusyUS += j.DurUS
		e := ext[ph]
		if j.ClaimUS < e[0] {
			e[0] = j.ClaimUS
		}
		if j.FinishUS > e[1] {
			e[1] = j.FinishUS
		}
		ext[ph] = e
	}
	var out []PhaseStats
	for _, ph := range order {
		if p := byPhase[ph]; p != nil {
			p.WallUS = ext[ph][1] - ext[ph][0]
			out = append(out, *p)
		}
	}
	return out
}

// concurrencyProfile sweeps the executed jobs' start/finish timeline and
// returns the wall time with at most one job in flight (serialWallUS) and
// the work done while exactly one job was in flight (serialBusyUS) —
// respectively the wall-clock and work-basis views of the serial part of
// the batch.
func concurrencyProfile(jobs []JobRecord, beginUS, endUS float64) (serialWallUS, serialBusyUS float64) {
	type edge struct {
		at    float64
		delta int
	}
	var edges []edge
	for _, j := range jobs {
		if !j.executed() {
			continue
		}
		edges = append(edges, edge{j.StartUS, +1}, edge{j.FinishUS, -1})
	}
	if len(edges) == 0 {
		return endUS - beginUS, 0
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].at != edges[b].at {
			return edges[a].at < edges[b].at
		}
		// Finishes before starts at the same instant, so a back-to-back
		// handoff does not count as overlap.
		return edges[a].delta < edges[b].delta
	})
	prev, conc := beginUS, 0
	for _, e := range edges {
		if dt := e.at - prev; dt > 0 {
			if conc <= 1 {
				serialWallUS += dt
			}
			if conc == 1 {
				serialBusyUS += dt
			}
		}
		prev = e.at
		conc += e.delta
	}
	if dt := endUS - prev; dt > 0 && conc <= 1 {
		serialWallUS += dt
		if conc == 1 {
			serialBusyUS += dt
		}
	}
	return serialWallUS, serialBusyUS
}
