package trace

import (
	"testing"
	"testing/quick"
)

// mkEvents derives a deterministic pseudo-random event stream from a byte
// seed, covering every kind and flag combination the producers emit.
func mkEvents(seed []byte) []Event {
	evs := make([]Event, len(seed))
	for i, b := range seed {
		evs[i] = Event{
			PC:    uint32(b) * 4,
			Addr:  uint32(b) * 16,
			Kind:  Kind(int(b) % numKinds),
			Flags: Flags(b >> 5),
		}
	}
	return evs
}

func TestBlockAppendRoundTrip(t *testing.T) {
	var b Block
	evs := mkEvents([]byte{0, 1, 7, 42, 200, 255})
	for _, e := range evs {
		b.Append(e)
	}
	if b.N != len(evs) {
		t.Fatalf("N = %d, want %d", b.N, len(evs))
	}
	for i, e := range evs {
		if b.Event(i) != e {
			t.Errorf("event %d = %+v, want %+v", i, b.Event(i), e)
		}
	}
	if b.Full() {
		t.Error("block of 6 events must not be full")
	}
	b.Reset()
	if b.N != 0 {
		t.Errorf("Reset left N = %d", b.N)
	}
}

func TestBlockFullAtCap(t *testing.T) {
	var b Block
	for i := 0; i < BlockCap; i++ {
		b.Append(Event{PC: uint32(i)})
	}
	if !b.Full() {
		t.Fatalf("block with %d events must be full", BlockCap)
	}
}

// TestEmitBlockToUnrollsForPlainSinks pins the compatibility shim: a sink
// without an EmitBlock method receives every event of the block, in order,
// through Emit.
func TestEmitBlockToUnrollsForPlainSinks(t *testing.T) {
	var b Block
	evs := mkEvents([]byte{3, 14, 15, 92, 65})
	for _, e := range evs {
		b.Append(e)
	}
	var got []Event
	EmitBlockTo(SinkFunc(func(e Event) { got = append(got, e) }), &b)
	if len(got) != len(evs) {
		t.Fatalf("unrolled %d events, want %d", len(got), len(evs))
	}
	for i := range evs {
		if got[i] != evs[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], evs[i])
		}
	}
}

// TestBlockSinksMatchPerEvent is the block-path equivalence property: for
// any event sequence, delivering it as blocks leaves the Counter and
// Recorder in exactly the state per-event delivery would.
func TestBlockSinksMatchPerEvent(t *testing.T) {
	f := func(seed []byte) bool {
		evs := mkEvents(seed)
		var perEvent, blocked Counter
		var recPer, recBlk Recorder
		var b Block
		for _, e := range evs {
			perEvent.Emit(e)
			recPer.Emit(e)
			b.Append(e)
			if b.Full() {
				blocked.EmitBlock(&b)
				recBlk.EmitBlock(&b)
				b.Reset()
			}
		}
		if b.N > 0 {
			blocked.EmitBlock(&b)
			recBlk.EmitBlock(&b)
		}
		if perEvent != blocked {
			return false
		}
		if len(recPer.Events) != len(recBlk.Events) {
			return false
		}
		for i := range recPer.Events {
			if recPer.Events[i] != recBlk.Events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestMultiEmitBlockFansInOrder checks that a Multi hands the block to each
// member in fan order, using each member's native block path or the shim.
func TestMultiEmitBlockFansInOrder(t *testing.T) {
	var c Counter
	var order []string
	plain := SinkFunc(func(Event) { order = append(order, "plain") })
	m := Multi{&c, plain}
	var b Block
	b.Append(Event{Kind: Load})
	b.Append(Event{Kind: Store})
	m.EmitBlock(&b)
	if c.Total != 2 {
		t.Errorf("counter saw %d events, want 2", c.Total)
	}
	if len(order) != 2 {
		t.Errorf("plain sink saw %d events, want 2 (shim unroll)", len(order))
	}
}

func TestBatcherFlushReasons(t *testing.T) {
	var rec Recorder
	ba := NewBatcher(&rec)
	// Fill one block exactly, plus a partial tail.
	for i := 0; i < BlockCap+10; i++ {
		ba.Append(Event{PC: uint32(i)})
	}
	if !ba.Pending() {
		t.Error("10 buffered events must report as pending")
	}
	ba.Flush(FlushAttr)
	ba.Flush(FlushFinal) // empty: must not produce a block
	st := ba.Stats()
	want := BatchStats{Events: BlockCap + 10, Blocks: 2, FlushFill: 1, FlushAttr: 1}
	if st != want {
		t.Errorf("stats = %+v, want %+v", st, want)
	}
	if st.Flushes() != st.Blocks {
		t.Errorf("flushes %d != blocks %d", st.Flushes(), st.Blocks)
	}
	if len(rec.Events) != BlockCap+10 {
		t.Errorf("sink saw %d events, want %d", len(rec.Events), BlockCap+10)
	}
}

func TestBatcherNilSinkDiscards(t *testing.T) {
	ba := NewBatcher(nil)
	ba.Append(Event{})
	ba.Flush(FlushFinal) // must not panic
	if st := ba.Stats(); st.Events != 1 || st.Blocks != 1 {
		t.Errorf("stats = %+v, want 1 event in 1 block", st)
	}
}

func TestBatchStatsAccounting(t *testing.T) {
	var s BatchStats
	if s.EventsPerBlock() != 0 {
		t.Error("empty stats must report 0 events/block")
	}
	s.Add(BatchStats{Events: 100, Blocks: 4, FlushFill: 3, FlushFinal: 1})
	s.Add(BatchStats{Events: 20, Blocks: 1, FlushAttr: 1})
	if s.Events != 120 || s.Blocks != 5 || s.Flushes() != 5 {
		t.Errorf("merged stats wrong: %+v", s)
	}
	if got := s.EventsPerBlock(); got != 24 {
		t.Errorf("events/block = %g, want 24", got)
	}
}

func TestCombineCollapses(t *testing.T) {
	var c Counter
	var rec Recorder
	if got := Combine(); got != Discard {
		t.Errorf("Combine() = %T, want Discard", got)
	}
	if got := Combine(nil, Discard, nil); got != Discard {
		t.Errorf("Combine(nil, Discard) = %T, want Discard", got)
	}
	if got := Combine(nil, &c, Discard); got != &c {
		t.Errorf("Combine with one live sink must return it unwrapped, got %T", got)
	}
	m, ok := Combine(&c, &rec).(Multi)
	if !ok || len(m) != 2 {
		t.Fatalf("Combine with two sinks = %T, want Multi of 2", m)
	}
	if m[0] != Sink(&c) || m[1] != Sink(&rec) {
		t.Error("Combine must preserve fan order")
	}
}

// markRecorder captures each delivered block's marks (copied — blocks are
// reused) alongside its event count.
type markRecorder struct {
	ns    []int
	marks [][]SegMark
}

func (r *markRecorder) Emit(Event) { panic("block producer must not unroll") }

func (r *markRecorder) EmitBlock(b *Block) {
	r.ns = append(r.ns, b.N)
	r.marks = append(r.marks, append([]SegMark(nil), b.Marks...))
}

func TestBatcherMarksSegments(t *testing.T) {
	var rec markRecorder
	ba := NewBatcher(&rec)

	if ba.NeedMark() {
		t.Error("empty batcher must not need a mark")
	}
	ba.Mark("dropped") // no events buffered: must record nothing

	evs := mkEvents([]byte{1, 2, 3, 4, 5, 6, 7})
	for _, e := range evs[:3] {
		ba.Append(e)
	}
	if !ba.NeedMark() {
		t.Error("3 unmarked events buffered: NeedMark must be true")
	}
	ba.Mark("a")
	if ba.NeedMark() {
		t.Error("mark just recorded: NeedMark must be false")
	}
	ba.Mark("empty-segment") // same position: must be dropped
	for _, e := range evs[3:5] {
		ba.Append(e)
	}
	ba.Mark("b")
	for _, e := range evs[5:] {
		ba.Append(e)
	}
	ba.Flush(FlushFinal)

	if len(rec.marks) != 1 {
		t.Fatalf("blocks delivered = %d, want 1", len(rec.marks))
	}
	want := []SegMark{{End: 3, Tag: "a"}, {End: 5, Tag: "b"}}
	got := rec.marks[0]
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("marks = %+v, want %+v", got, want)
	}
	if rec.ns[0] != len(evs) {
		t.Errorf("block N = %d, want %d", rec.ns[0], len(evs))
	}

	// Ring reuse must not leak stale marks: push enough marked blocks to
	// cycle the ring back to the first slot, then check a mark-free block.
	for blk := 0; blk < batchRing; blk++ {
		for i := 0; i < 2; i++ {
			ba.Append(evs[i])
		}
		if blk < batchRing-1 {
			ba.Mark("stale")
		}
		ba.Flush(FlushFinal)
	}
	last := rec.marks[len(rec.marks)-1]
	if len(last) != 0 {
		t.Errorf("reused block carried stale marks: %+v", last)
	}
}
