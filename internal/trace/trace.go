// Package trace defines the native-instruction event model shared by the
// instrumentation layer (internal/atom) and the processor simulator
// (internal/alphasim).
//
// The reproduced paper measures interpreters by observing the stream of
// native (Alpha) instructions they execute, via ATOM binary rewriting.  Our
// equivalent is a stream of Event values: each Event is one native
// instruction with a program counter, a kind (integer op, load, store,
// branch, ...), and, where relevant, an effective address or branch target.
// Interpreters never construct Events directly; they drive an *atom.Probe*,
// which synthesizes the stream.
package trace

// Kind classifies a native instruction.  The categories mirror the stall
// sources of Table 3 in the paper: short integer ops (shift/byte) have a
// 2-cycle latency on the simulated 21064, multiplies are long-latency
// ("other"), loads incur load-use delay, and control transfers engage the
// branch prediction hardware.
type Kind uint8

const (
	// Int is a single-cycle integer ALU instruction.
	Int Kind = iota
	// ShortInt is a shift or byte-manipulation instruction (2-cycle
	// latency on the 21064; the paper's "short int" stall class).
	ShortInt
	// Mul is an integer multiply or divide (long latency; "other").
	Mul
	// Float is a floating-point instruction (long latency; "other").
	Float
	// Load is a memory read; Addr holds the effective address.
	Load
	// Store is a memory write; Addr holds the effective address.
	Store
	// Branch is a conditional branch; Addr holds the target and the
	// Taken flag records the outcome.
	Branch
	// Jump is an unconditional jump or call; Addr holds the target.
	Jump
	// Return is a subroutine return; Addr holds the return address.
	Return

	numKinds = int(Return) + 1
)

// NumKinds counts the instruction kinds; Kind values are 0..NumKinds-1.
// Sinks that tally per-kind use it to size arrays.
const NumKinds = numKinds

var kindNames = [numKinds]string{"int", "shortint", "mul", "float", "load", "store", "branch", "jump", "return"}

// String returns the lower-case mnemonic class name.
func (k Kind) String() string {
	if int(k) < numKinds {
		return kindNames[k]
	}
	return "invalid"
}

// IsMemory reports whether the kind accesses data memory.
func (k Kind) IsMemory() bool { return k == Load || k == Store }

// IsControl reports whether the kind transfers control.
func (k Kind) IsControl() bool { return k == Branch || k == Jump || k == Return }

// Flags carries per-event boolean attributes.
type Flags uint8

const (
	// FlagTaken marks a conditional branch whose condition held.
	FlagTaken Flags = 1 << iota
	// FlagDep marks an instruction that consumes the result of the
	// immediately preceding instruction.  The pipeline model uses it to
	// decide whether load-use and long-latency delays actually stall.
	FlagDep
	// FlagCall marks a Jump that is a subroutine call (pushes the return
	// stack in the branch predictor).
	FlagCall
)

// Event is one native instruction.  Addresses are 32-bit: the synthetic
// address space laid out by internal/atom fits comfortably, and the small
// struct keeps multi-million-instruction runs cheap.
type Event struct {
	PC    uint32
	Addr  uint32
	Kind  Kind
	Flags Flags
}

// Taken reports whether a Branch event was taken.
func (e Event) Taken() bool { return e.Flags&FlagTaken != 0 }

// Dep reports whether the event depends on the previous instruction.
func (e Event) Dep() bool { return e.Flags&FlagDep != 0 }

// Call reports whether a Jump event is a subroutine call.
func (e Event) Call() bool { return e.Flags&FlagCall != 0 }

// Sink consumes a native-instruction stream.  Implementations include the
// pipeline simulator, cache sweeps, and counting sinks.  Emit is called once
// per instruction, in program order.
type Sink interface {
	Emit(e Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(e Event)

// Emit calls f(e).
func (f SinkFunc) Emit(e Event) { f(e) }
