package trace

// This file is the batched event pipeline.  A full interp-lab run pushes
// on the order of 10^9 Events through trace.Sink.Emit; at one interface
// call per event the instrumentation dominates the lab's wall time (the
// BENCH_telemetry.json overhead arms).  Blocks amortize that cost: the
// probe accumulates events into a struct-of-arrays Block and hands whole
// blocks to sinks, so the per-event work collapses to array writes and the
// per-sink interface dispatch happens once per a few thousand events.
//
// The struct-of-arrays layout (parallel PC/Addr/Kind/Flags arrays rather
// than an []Event) keeps each consumer's inner loop touching only the
// columns it needs: a cache sweep streams the PC column, a counter the
// Kind column, without dragging the rest through the data cache.

// BlockCap is the event capacity of one Block.  4096 events keep a block
// around 40KB — comfortably inside L2 — while making the per-block
// dispatch overhead negligible.
const BlockCap = 4096

// FlushReason records why a block was handed to the sink; the telemetry
// layer surfaces the per-reason counts (trace.batch.* counters and the
// manifest batch field).
type FlushReason uint8

const (
	// FlushFill means the block reached BlockCap.
	FlushFill FlushReason = iota
	// FlushAttr means the producer's attribution state (phase, routine,
	// open command) was about to change and an attribution-sensitive sink
	// (profiling) requires blocks to be uniform under one state.
	FlushAttr
	// FlushFinal means the stream ended (end of run, or an explicit
	// flush before reading accumulated sink state).
	FlushFinal

	numFlushReasons = int(FlushFinal) + 1
)

var flushReasonNames = [numFlushReasons]string{"fill", "attr", "final"}

// String returns the reason label used in metrics and trace spans.
func (r FlushReason) String() string {
	if int(r) < numFlushReasons {
		return flushReasonNames[r]
	}
	return "invalid"
}

// SegMark ends an attribution segment inside a block: the events in
// [previous mark's End, End) were emitted under the attribution state Tag
// stands for.  Tags are opaque to the trace layer — the producer records
// whatever the attribution-sensitive consumer handed it (the profiling
// collector uses its resolved sample node), and consumers that don't
// understand a block's tags simply ignore Marks.  Events after the last
// mark belong to the state still current when the block is delivered.
type SegMark struct {
	End int
	Tag any
}

// Block is a struct-of-arrays batch of events: element i of each array is
// one event, N counts the valid prefix.  Blocks are reused — a sink must
// finish with the block before EmitBlock returns and must not retain it.
type Block struct {
	PC    [BlockCap]uint32
	Addr  [BlockCap]uint32
	Kind  [BlockCap]Kind
	Flags [BlockCap]Flags

	// N is the number of valid events.
	N int
	// Reason records why the producer flushed this block.
	Reason FlushReason
	// Marks lists attribution segment boundaries in ascending End order
	// (empty unless the producer runs in boundary-marking mode).
	Marks []SegMark

	// kindCnt caches KindCounts' tally; it is valid while kindN == N.
	kindCnt [numKinds]uint32
	kindN   int
}

// Append adds e; the caller must ensure the block is not full.
func (b *Block) Append(e Event) {
	b.PC[b.N] = e.PC
	b.Addr[b.N] = e.Addr
	b.Kind[b.N] = e.Kind
	b.Flags[b.N] = e.Flags
	b.N++
}

// Full reports whether the block is at capacity.
func (b *Block) Full() bool { return b.N == BlockCap }

// Reset empties the block for reuse.
func (b *Block) Reset() {
	b.N = 0
	b.Marks = b.Marks[:0]
	b.kindN = -1
}

// KindCounts returns the per-kind tally of the block's N events.  The
// first caller after the block is sealed pays one branch-free pass over
// the Kind column; every further consumer (the counter, the observer)
// reuses the cached table, so a fan of counting sinks scans the column
// once per block instead of once per sink.  The returned array is valid
// until the block is appended to or reset.
func (b *Block) KindCounts() *[numKinds]uint32 {
	if b.kindN != b.N {
		var cnt [numKinds]uint32
		for _, k := range b.Kind[:b.N] {
			cnt[k]++
		}
		b.kindCnt = cnt
		b.kindN = b.N
	}
	return &b.kindCnt
}

// Event reconstructs element i as an Event value.
func (b *Block) Event(i int) Event {
	return Event{PC: b.PC[i], Addr: b.Addr[i], Kind: b.Kind[i], Flags: b.Flags[i]}
}

// BlockSink consumes whole event batches.  Sinks that implement it receive
// blocks natively; the rest get the block unrolled event by event through
// the EmitBlockTo shim, so converting a sink is an optimization, never a
// requirement.  Events within a block are in program order, and blocks
// arrive in stream order.
type BlockSink interface {
	EmitBlock(b *Block)
}

// EmitBlockTo delivers b to s: natively when s implements BlockSink,
// otherwise unrolled into per-event Emit calls.  It is the compatibility
// shim between batching producers and unconverted sinks.
func EmitBlockTo(s Sink, b *Block) {
	if bs, ok := s.(BlockSink); ok {
		bs.EmitBlock(b)
		return
	}
	for i := 0; i < b.N; i++ {
		s.Emit(b.Event(i))
	}
}

// BatchStats accounts a producer's batching behavior: how many events
// traveled in how many blocks, and what triggered each flush.  The JSON
// tags are the manifest schema's "batch" object (docs/OBSERVABILITY.md).
type BatchStats struct {
	Events     uint64 `json:"events"`
	Blocks     uint64 `json:"blocks"`
	FlushFill  uint64 `json:"flush_fill,omitempty"`
	FlushAttr  uint64 `json:"flush_attr,omitempty"`
	FlushFinal uint64 `json:"flush_final,omitempty"`
}

// Flushes returns the total flush count (== Blocks for a well-formed
// producer; kept separate so the identity is checkable).
func (s BatchStats) Flushes() uint64 { return s.FlushFill + s.FlushAttr + s.FlushFinal }

// EventsPerBlock returns the mean batch size.
func (s BatchStats) EventsPerBlock() float64 {
	if s.Blocks == 0 {
		return 0
	}
	return float64(s.Events) / float64(s.Blocks)
}

// Add merges other into s.
func (s *BatchStats) Add(other BatchStats) {
	s.Events += other.Events
	s.Blocks += other.Blocks
	s.FlushFill += other.FlushFill
	s.FlushAttr += other.FlushAttr
	s.FlushFinal += other.FlushFinal
}

// count tallies one flushed block.
func (s *BatchStats) count(b *Block) {
	s.Events += uint64(b.N)
	s.Blocks++
	switch b.Reason {
	case FlushFill:
		s.FlushFill++
	case FlushAttr:
		s.FlushAttr++
	case FlushFinal:
		s.FlushFinal++
	}
}

// Combine builds the cheapest sink equivalent to fanning out over sinks in
// order: nil sinks and Discard drop out, zero remaining sinks collapse to
// Discard, one collapses to the sink itself (no per-event loop), and only
// a genuine fan-out pays for a Multi.
func Combine(sinks ...Sink) Sink {
	kept := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s == nil || s == Discard {
			continue
		}
		kept = append(kept, s)
	}
	switch len(kept) {
	case 0:
		return Discard
	case 1:
		return kept[0]
	}
	return Multi(kept)
}
