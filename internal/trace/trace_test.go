package trace

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Int: "int", ShortInt: "shortint", Mul: "mul", Float: "float",
		Load: "load", Store: "store", Branch: "branch", Jump: "jump", Return: "return",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(200).String(); got != "invalid" {
		t.Errorf("out-of-range kind = %q, want invalid", got)
	}
}

func TestKindPredicates(t *testing.T) {
	if !Load.IsMemory() || !Store.IsMemory() {
		t.Error("Load/Store must be memory kinds")
	}
	if Int.IsMemory() || Branch.IsMemory() {
		t.Error("Int/Branch must not be memory kinds")
	}
	for _, k := range []Kind{Branch, Jump, Return} {
		if !k.IsControl() {
			t.Errorf("%v must be a control kind", k)
		}
	}
	for _, k := range []Kind{Int, ShortInt, Mul, Float, Load, Store} {
		if k.IsControl() {
			t.Errorf("%v must not be a control kind", k)
		}
	}
}

func TestEventFlags(t *testing.T) {
	e := Event{Kind: Branch, Flags: FlagTaken | FlagDep}
	if !e.Taken() || !e.Dep() || e.Call() {
		t.Errorf("flag decoding wrong: taken=%v dep=%v call=%v", e.Taken(), e.Dep(), e.Call())
	}
	e = Event{Kind: Jump, Flags: FlagCall}
	if !e.Call() || e.Taken() {
		t.Errorf("call flag decoding wrong")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Emit(Event{Kind: Int})
	c.Emit(Event{Kind: Load, Addr: 4})
	c.Emit(Event{Kind: Load, Addr: 8})
	c.Emit(Event{Kind: Store, Addr: 4})
	c.Emit(Event{Kind: Branch, Flags: FlagTaken})
	c.Emit(Event{Kind: Branch})
	if c.Total != 6 {
		t.Errorf("Total = %d, want 6", c.Total)
	}
	if c.Loads() != 2 || c.Stores() != 1 || c.Branches() != 2 {
		t.Errorf("loads=%d stores=%d branches=%d", c.Loads(), c.Stores(), c.Branches())
	}
	if c.TakenBr != 1 {
		t.Errorf("TakenBr = %d, want 1", c.TakenBr)
	}
	if c.Kind(Int) != 1 {
		t.Errorf("Kind(Int) = %d, want 1", c.Kind(Int))
	}
}

func TestCounterTotalsByKindSum(t *testing.T) {
	// Property: Total always equals the sum over kinds.
	f := func(kinds []uint8) bool {
		var c Counter
		for _, kb := range kinds {
			c.Emit(Event{Kind: Kind(kb % uint8(numKinds))})
		}
		var sum uint64
		for _, n := range c.ByKind {
			sum += n
		}
		return sum == c.Total && c.Total == uint64(len(kinds))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMultiAndDiscard(t *testing.T) {
	var a, b Counter
	m := Multi{&a, &b, Discard}
	m.Emit(Event{Kind: Int})
	m.Emit(Event{Kind: Load})
	if a.Total != 2 || b.Total != 2 {
		t.Errorf("multi fan-out failed: a=%d b=%d", a.Total, b.Total)
	}
}

func TestRecorder(t *testing.T) {
	var r Recorder
	r.Emit(Event{PC: 4, Kind: Int})
	r.Emit(Event{PC: 8, Kind: Load, Addr: 100})
	if len(r.Events) != 2 || r.Events[1].Addr != 100 {
		t.Fatalf("recorder content wrong: %+v", r.Events)
	}
}

func TestSinkFunc(t *testing.T) {
	n := 0
	s := SinkFunc(func(Event) { n++ })
	s.Emit(Event{})
	s.Emit(Event{})
	if n != 2 {
		t.Errorf("SinkFunc called %d times, want 2", n)
	}
}
