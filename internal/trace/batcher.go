package trace

// batchRing is the number of blocks a Batcher rotates through.  Delivery
// is synchronous, so one block would suffice functionally; a small ring
// means a sink that inspects a just-delivered block (debugging, tests)
// still sees intact data while the producer fills the next one.
const batchRing = 4

// Batcher accumulates events into a reusable ring of Blocks and delivers
// full blocks to a sink via EmitBlockTo.  It is the shared engine behind
// the batching producers (atom.Probe, mipsi.Native).  Blocks are allocated
// lazily, so an idle producer pays nothing.
type Batcher struct {
	sink  Sink
	ring  [batchRing]*Block
	idx   int
	blk   *Block
	stats BatchStats
}

// NewBatcher returns a batcher delivering to sink (Discard when nil).
func NewBatcher(sink Sink) *Batcher {
	if sink == nil {
		sink = Discard
	}
	return &Batcher{sink: sink}
}

// Append buffers e, flushing with FlushFill when the block fills.
func (t *Batcher) Append(e Event) {
	b := t.blk
	if b == nil {
		b = t.next()
	}
	b.Append(e)
	if b.N == BlockCap {
		t.Flush(FlushFill)
	}
}

// Pending reports whether buffered events await a flush.
func (t *Batcher) Pending() bool { return t.blk != nil && t.blk.N > 0 }

// NeedMark reports whether buffered events sit after the last recorded
// segment boundary — i.e. whether Mark would record anything.  Producers
// check it before computing a tag, so back-to-back attribution changes
// with no events between them cost nothing.
func (t *Batcher) NeedMark() bool {
	b := t.blk
	if b == nil || b.N == 0 {
		return false
	}
	m := b.Marks
	return len(m) == 0 || m[len(m)-1].End != b.N
}

// Mark records an attribution segment boundary at the current buffer
// position: the events since the previous boundary (or block start) are
// tagged with tag.  Boundaries that would close an empty segment are
// dropped — the first tag already covers the events, and zero events need
// no account.
func (t *Batcher) Mark(tag any) {
	if !t.NeedMark() {
		return
	}
	b := t.blk
	b.Marks = append(b.Marks, SegMark{End: b.N, Tag: tag})
}

// Flush delivers the buffered events (if any) tagged with reason, then
// advances to the next ring slot.
func (t *Batcher) Flush(reason FlushReason) {
	b := t.blk
	if b == nil || b.N == 0 {
		return
	}
	b.Reason = reason
	t.stats.count(b)
	EmitBlockTo(t.sink, b)
	t.idx = (t.idx + 1) % batchRing
	t.blk = t.next()
}

// next returns the current ring slot, allocating and resetting it.
func (t *Batcher) next() *Block {
	b := t.ring[t.idx]
	if b == nil {
		b = &Block{}
		t.ring[t.idx] = b
	}
	b.Reset()
	t.blk = b
	return b
}

// Stats returns the accumulated batch accounting.
func (t *Batcher) Stats() BatchStats { return t.stats }
