package trace

// Counter tallies an event stream without simulating anything.  It is the
// cheapest sink and backs the pure-counting experiments (Tables 1 and 2).
type Counter struct {
	Total   uint64
	ByKind  [numKinds]uint64
	TakenBr uint64
}

// Emit records e.
func (c *Counter) Emit(e Event) {
	c.Total++
	c.ByKind[e.Kind]++
	if e.Kind == Branch && e.Taken() {
		c.TakenBr++
	}
}

// EmitBlock records a whole batch: the per-kind tally comes from the
// block's shared KindCounts table (nine adds), and only blocks that
// actually contain branches pay a Kind/Flags scan for the taken count.
func (c *Counter) EmitBlock(b *Block) {
	c.Total += uint64(b.N)
	cnt := b.KindCounts()
	for k, n := range cnt {
		c.ByKind[k] += uint64(n)
	}
	if cnt[Branch] == 0 {
		return
	}
	for i := 0; i < b.N; i++ {
		if b.Kind[i] == Branch && b.Flags[i]&FlagTaken != 0 {
			c.TakenBr++
		}
	}
}

// Loads returns the number of Load events seen.
func (c *Counter) Loads() uint64 { return c.ByKind[Load] }

// Stores returns the number of Store events seen.
func (c *Counter) Stores() uint64 { return c.ByKind[Store] }

// Branches returns the number of conditional branch events seen.
func (c *Counter) Branches() uint64 { return c.ByKind[Branch] }

// Kind returns the count for one instruction kind.
func (c *Counter) Kind(k Kind) uint64 { return c.ByKind[k] }

// Multi fans one stream out to several sinks in order.
type Multi []Sink

// Emit forwards e to every sink.
func (m Multi) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// EmitBlock forwards the batch to every sink, natively where the sink
// implements BlockSink and unrolled otherwise, so one unconverted sink in
// the fan never forces the others back onto the per-event path.
func (m Multi) EmitBlock(b *Block) {
	for _, s := range m {
		EmitBlockTo(s, b)
	}
}

// Discard drops every event.  A nil sink is not legal on a Probe; Discard is
// the explicit "count nothing, simulate nothing" choice.
var Discard Sink = discard{}

type discard struct{}

func (discard) Emit(Event) {}

func (discard) EmitBlock(*Block) {}

// Recorder appends every event to memory.  Only suitable for small runs
// (unit tests, debugging); macro workloads produce tens of millions of
// events.
type Recorder struct {
	Events []Event
}

// Emit appends e.
func (r *Recorder) Emit(e Event) { r.Events = append(r.Events, e) }

// EmitBlock appends every event of the batch.
func (r *Recorder) EmitBlock(b *Block) {
	for i := 0; i < b.N; i++ {
		r.Events = append(r.Events, b.Event(i))
	}
}
