package trace

import (
	"fmt"
	"testing"
)

// TestMultiFanOutOrdering pins Multi's contract: for each event, sinks are
// visited in slice order, and each sink sees the events in stream order.
func TestMultiFanOutOrdering(t *testing.T) {
	var log []string
	tap := func(name string) Sink {
		return SinkFunc(func(e Event) { log = append(log, fmt.Sprintf("%s:%d", name, e.PC)) })
	}
	m := Multi{tap("a"), tap("b"), tap("c")}
	m.Emit(Event{PC: 1})
	m.Emit(Event{PC: 2})
	want := []string{"a:1", "b:1", "c:1", "a:2", "b:2", "c:2"}
	if len(log) != len(want) {
		t.Fatalf("log = %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("fan-out order wrong at %d: log = %v, want %v", i, log, want)
		}
	}
}

// TestCounterNotTakenBranch pins that TakenBr counts only taken
// conditional branches: not-taken branches, and taken-looking flags on
// non-branch kinds, must not count.
func TestCounterNotTakenBranch(t *testing.T) {
	var c Counter
	c.Emit(Event{Kind: Branch})                   // not taken
	c.Emit(Event{Kind: Branch})                   // not taken
	c.Emit(Event{Kind: Branch, Flags: FlagTaken}) // taken
	c.Emit(Event{Kind: Jump, Flags: FlagTaken})   // not a conditional branch
	c.Emit(Event{Kind: Int, Flags: FlagTaken})    // flag noise on ALU op
	if c.Branches() != 3 {
		t.Errorf("Branches = %d, want 3", c.Branches())
	}
	if c.TakenBr != 1 {
		t.Errorf("TakenBr = %d, want 1 (not-taken must not count)", c.TakenBr)
	}
}

// TestMultiEmpty pins that an empty Multi is a valid no-op sink.
func TestMultiEmpty(t *testing.T) {
	var m Multi
	m.Emit(Event{Kind: Load}) // must not panic
}
