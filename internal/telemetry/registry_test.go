package telemetry

import (
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("runs")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("runs") != c {
		t.Error("same name must return the same counter")
	}
	g := r.Gauge("temp")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Errorf("gauge = %g, want 2.5", got)
	}
}

// TestGaugeAdd covers the level-tracking use (in-flight requests, queue
// depth): concurrent +1/-1 deltas must balance back to the starting level.
func TestGaugeAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("inflight")
	g.Add(2)
	g.Add(-0.5)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge after +2 -0.5 = %g, want 1.5", got)
	}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge after balanced concurrent deltas = %g, want 1.5", got)
	}

	var nilG *Gauge
	nilG.Add(3) // must not panic
}

// TestNilRegistryNoOps pins the disabled path: a nil registry hands out
// nil instruments whose every method is a safe no-op.
func TestNilRegistryNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(3)
	if c != nil || c.Value() != 0 {
		t.Error("nil registry must produce inert counters")
	}
	g := r.Gauge("y")
	g.Set(1)
	if g != nil || g.Value() != 0 {
		t.Error("nil registry must produce inert gauges")
	}
	h := r.Histogram("z")
	h.Observe(9)
	if h != nil || h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil registry must produce inert histograms")
	}
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot must be nil")
	}
}

func TestHistogramLogBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for _, v := range []uint64{0, 1, 2, 3, 1000, 1 << 20} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 0+1+2+3+1000+1<<20 {
		t.Errorf("sum = %d", h.Sum())
	}
	bks := h.Buckets()
	if len(bks) == 0 {
		t.Fatal("no buckets")
	}
	// 0 lands in the zero bucket; 2 and 3 share bucket le=3; 1000 in
	// le=1023; 1<<20 in le=2^21-1.
	want := map[uint64]uint64{0: 1, 1: 1, 3: 2, 1023: 1, 1<<21 - 1: 1}
	for _, b := range bks {
		if want[b.Le] != b.Count {
			t.Errorf("bucket le=%d count=%d, want %d", b.Le, b.Count, want[b.Le])
		}
		delete(want, b.Le)
	}
	if len(want) != 0 {
		t.Errorf("missing buckets: %v", want)
	}
	// Median of {0,1,2,3,1000,2^20} falls in the le=3 bucket.
	if q := h.Quantile(0.5); q != 3 {
		t.Errorf("p50 = %d, want 3", q)
	}
	if q := h.Quantile(1); q != 1<<21-1 {
		t.Errorf("p100 = %d, want %d", uint64(1<<21-1), q)
	}
}

func TestSnapshotSortedAndTyped(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Counter("a.count").Inc()
	r.Gauge("rate").Set(7)
	r.Histogram("sizes").Observe(16)
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot has %d metrics, want 4", len(snap))
	}
	// counters sort before gauges before histograms; names sort within.
	wantOrder := []string{"a.count", "b.count", "rate", "sizes"}
	for i, m := range snap {
		if m.Name != wantOrder[i] {
			t.Errorf("snapshot[%d] = %s, want %s", i, m.Name, wantOrder[i])
		}
	}
	if snap[0].Type != "counter" || snap[2].Type != "gauge" || snap[3].Type != "histogram" {
		t.Errorf("types wrong: %+v", snap)
	}
	if snap[3].Count != 1 || snap[3].Sum != 16 {
		t.Errorf("histogram export wrong: %+v", snap[3])
	}
}

// TestRegistryConcurrency exercises concurrent lookup+update under -race.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared").Inc()
				r.Histogram("h").Observe(uint64(j))
				r.Gauge("g").Set(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Errorf("shared counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}
