package telemetry

import (
	"time"

	"interplab/internal/trace"
)

// Observer is a sampling trace.Sink wrapper: it forwards every event to
// the wrapped sink unchanged (pass-through fidelity — the measured stream
// is not perturbed, reordered, or filtered), and every interval events it
// snapshots the cumulative instruction mix, the loads/stores ratio, and
// the observed event throughput into the registry and its sample log.
//
// Construct via Wrap, which collapses to the bare sink when telemetry is
// disabled so the hot emit path pays nothing.
type Observer struct {
	sink     trace.Sink
	reg      *Registry
	interval uint64
	now      func() time.Time // test seam

	total      uint64
	byKind     [trace.NumKinds]uint64
	start      time.Time
	lastSample time.Time
	lastTotal  uint64
	samples    []Sample
}

// Sample is one periodic snapshot of the observed stream.
type Sample struct {
	// Events is the cumulative event count at snapshot time.
	Events uint64 `json:"events"`
	// Mix is the cumulative share of each instruction kind, in trace.Kind
	// order, summing to ~1.
	Mix [trace.NumKinds]float64 `json:"mix"`
	// LoadsPerStore is the cumulative loads/stores ratio (0 when no
	// stores have been seen).
	LoadsPerStore float64 `json:"loads_per_store"`
	// EventsPerSec is the throughput over the window since the previous
	// snapshot.
	EventsPerSec float64 `json:"events_per_sec"`
}

// Wrap returns a sink that feeds sink and samples into reg every interval
// events.  When reg is nil (telemetry disabled) it returns sink unchanged,
// so the disabled path is exactly the baseline path.  An interval of 0
// defaults to 65536.
func Wrap(sink trace.Sink, reg *Registry, interval uint64) trace.Sink {
	if reg == nil {
		return sink
	}
	return NewObserver(sink, reg, interval)
}

// NewObserver builds the sampling wrapper unconditionally (reg may be nil,
// in which case snapshots only accumulate in the sample log).
func NewObserver(sink trace.Sink, reg *Registry, interval uint64) *Observer {
	if interval == 0 {
		interval = 65536
	}
	o := &Observer{sink: sink, reg: reg, interval: interval, now: time.Now}
	o.start = o.now()
	o.lastSample = o.start
	return o
}

// Emit forwards e and, on sampling boundaries, snapshots.
func (o *Observer) Emit(e trace.Event) {
	o.sink.Emit(e)
	o.total++
	o.byKind[e.Kind]++
	if o.total%o.interval == 0 {
		o.snapshot()
	}
}

// EmitBlock forwards a whole batch (natively when the wrapped sink
// understands blocks) and updates the observer's tallies once per flush
// instead of once per event.  Snapshots fire when the batch carries the
// stream across one or more sampling boundaries; the sample then lands on
// the block edge rather than the exact interval multiple, which only
// shifts where along the stream the cumulative mix is read.
func (o *Observer) EmitBlock(b *trace.Block) {
	trace.EmitBlockTo(o.sink, b)
	before := o.total
	o.total += uint64(b.N)
	// The wrapped fan's counter has usually populated the block's shared
	// kind table already, so this is nine adds, not an event loop.
	for k, n := range b.KindCounts() {
		o.byKind[k] += uint64(n)
	}
	if o.total/o.interval > before/o.interval {
		o.snapshot()
	}
}

func (o *Observer) snapshot() {
	now := o.now()
	s := Sample{Events: o.total}
	for k, n := range o.byKind {
		s.Mix[k] = float64(n) / float64(o.total)
	}
	if stores := o.byKind[trace.Store]; stores > 0 {
		s.LoadsPerStore = float64(o.byKind[trace.Load]) / float64(stores)
	}
	if dt := now.Sub(o.lastSample).Seconds(); dt > 0 {
		s.EventsPerSec = float64(o.total-o.lastTotal) / dt
	}
	o.lastSample = now
	o.lastTotal = o.total
	o.samples = append(o.samples, s)

	o.reg.Counter("observer.samples").Inc()
	o.reg.Gauge("observer.events").Set(float64(o.total))
	o.reg.Gauge("observer.loads_per_store").Set(s.LoadsPerStore)
	o.reg.Gauge("observer.events_per_sec").Set(s.EventsPerSec)
	for k := 0; k < trace.NumKinds; k++ {
		o.reg.Gauge("observer.mix." + trace.Kind(k).String()).Set(s.Mix[k])
	}
}

// Flush takes a final snapshot if events arrived since the last boundary,
// so short streams still produce at least one sample.
func (o *Observer) Flush() {
	if o.total > o.lastTotal || (o.total > 0 && len(o.samples) == 0) {
		o.snapshot()
	}
}

// Samples returns the snapshots taken so far.
func (o *Observer) Samples() []Sample { return o.samples }

// Total returns the number of events observed.
func (o *Observer) Total() uint64 { return o.total }
