package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"interplab/internal/alphasim"
	"interplab/internal/atom"
	"interplab/internal/labstats"
	"interplab/internal/trace"
)

// ManifestSchema identifies the manifest document type.
const ManifestSchema = "interp-lab/manifest"

// ManifestVersion is the current manifest schema version.  Readers accept
// any version up to this one.
const ManifestVersion = 1

// Manifest is the machine-readable record of one interp-lab run: the
// configuration, every experiment's rendered text and structured
// measurements, and the run's metric snapshot.  It is versioned so later
// tooling can read old records.
type Manifest struct {
	Schema    string      `json:"schema"`
	Version   int         `json:"version"`
	CreatedAt time.Time   `json:"created_at"`
	Config    RunConfig   `json:"config"`
	Runs      []*RunEntry `json:"experiments"`
	Metrics   []Metric    `json:"metrics,omitempty"`
}

// RunConfig records the knobs the run was launched with.
type RunConfig struct {
	Scale       float64  `json:"scale"`
	Experiments []string `json:"experiments"`
	// Parallelism is the measurement worker count the run was scheduled
	// with (schema v1 additive field; 0 in records that predate it).
	Parallelism int `json:"parallelism,omitempty"`
	// Cache describes the measurement cache the run consulted, when one was
	// attached (schema v1 additive field; nil in uncached runs).
	Cache *CacheInfo `json:"cache,omitempty"`
}

// CacheInfo records the measurement cache attached to a run and what it
// did: per-run hit/miss/store counts.  The hit and miss totals equal the
// per-measurement cache_hit flags summed over every experiment.
type CacheInfo struct {
	Dir         string `json:"dir"`
	ReadOnly    bool   `json:"readonly,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Puts        uint64 `json:"puts,omitempty"`
	Corrupt     uint64 `json:"corrupt,omitempty"`
}

// RunEntry is one experiment's record: the exact text a direct run would
// have printed, plus the structured per-program measurements behind it.
type RunEntry struct {
	ID   string `json:"id"`
	Text string `json:"text"`
	// Error holds the failure message when the experiment errored; Text
	// stays empty then, but DurationUS is still recorded so failed runs
	// are visible in the manifest (schema v1 additive field).
	Error        string            `json:"error,omitempty"`
	DurationUS   float64           `json:"duration_us,omitempty"`
	Measurements []Measurement     `json:"measurements,omitempty"`
	Profiles     []ProfileArtifact `json:"profiles,omitempty"`

	// Sched is the experiment's scheduler introspection: one speedup
	// ledger per measurement batch (schema v1 additive field; every
	// current experiment runs exactly one batch).  Unlike every other
	// entry field it legitimately differs between two runs of the same
	// experiment — it records timing, worker assignment, and runtime
	// behavior, not measured results — so determinism comparisons null it
	// the way they zero wall times.  `interp-lab sched-report` renders it.
	Sched []*labstats.SchedStats `json:"sched,omitempty"`
}

// AddSched appends one batch's speedup ledger to the entry.  A nil entry
// or nil stats no-op, mirroring Add.
func (r *RunEntry) AddSched(s *labstats.SchedStats) {
	if r == nil || s == nil {
		return
	}
	r.Sched = append(r.Sched, s)
}

// ProfileArtifact is one program's attribution profile as recorded in the
// manifest (schema v1 additive field): summary totals plus the full
// folded-stack text, so flamegraphs can be rebuilt from the manifest alone.
// The harness fills it from internal/profile; telemetry stays independent
// of that package.
type ProfileArtifact struct {
	Program      string           `json:"program"`
	SampleTypes  []string         `json:"sample_types"`
	Samples      int              `json:"samples"`
	Instructions int64            `json:"instructions"`
	PhaseTotals  map[string]int64 `json:"phase_totals,omitempty"` // by atom.Phase name
	Folded       string           `json:"folded,omitempty"`       // instruction-count folded stacks
}

// AddProfile appends one profile artifact to the entry.  A nil entry
// no-ops, mirroring Add.
func (r *RunEntry) AddProfile(pa ProfileArtifact) {
	if r == nil {
		return
	}
	r.Profiles = append(r.Profiles, pa)
}

// Measurement is the structured result of measuring one program: the
// probe's software metrics (atom.Stats) and, when the run was simulated,
// the processor results (alphasim.Stats).
type Measurement struct {
	Program string `json:"program"` // "system/name"
	System  string `json:"system"`
	Name    string `json:"name"`
	// Variant distinguishes measurements of the same program under
	// different configurations — optimization tiers, dispatch knobs
	// (schema v1 additive field; empty for the default configuration).
	Variant    string  `json:"variant,omitempty"`
	SizeBytes  int     `json:"size_bytes,omitempty"`
	Events     uint64  `json:"events"` // native-instruction stream length
	Kind       string  `json:"kind"`   // "measure", "pipeline", "sweep"
	DurationUS float64 `json:"duration_us,omitempty"`
	// CacheHit marks a measurement restored from the measurement cache
	// instead of executed (schema v1 additive field).  Aside from wall time
	// it is indistinguishable from a fresh measurement.
	CacheHit bool `json:"cache_hit,omitempty"`

	// Batch accounts the batched event pipeline for this measurement:
	// events and blocks delivered to the sinks, split by flush trigger
	// (schema v1 additive field; nil when the run emitted per-event).
	Batch *trace.BatchStats `json:"batch,omitempty"`

	Stats *atom.Stats           `json:"stats,omitempty"`
	Pipe  *alphasim.Stats       `json:"pipe,omitempty"`
	Sweep []alphasim.SweepPoint `json:"sweep,omitempty"`
}

// NewManifest starts a manifest for a run at the given scale.
func NewManifest(scale float64) *Manifest {
	return &Manifest{
		Schema:    ManifestSchema,
		Version:   ManifestVersion,
		CreatedAt: time.Now().UTC(),
		Config:    RunConfig{Scale: scale},
	}
}

// StartRun appends (or returns the existing) record for one experiment id
// and registers the id in the config.
func (m *Manifest) StartRun(id string) *RunEntry {
	for _, r := range m.Runs {
		if r.ID == id {
			return r
		}
	}
	r := &RunEntry{ID: id}
	m.Runs = append(m.Runs, r)
	m.Config.Experiments = append(m.Config.Experiments, id)
	return r
}

// Add appends one measurement to the entry.  A nil entry no-ops, so
// recording code need not branch on whether a manifest is being kept.
func (r *RunEntry) Add(mm Measurement) {
	if r == nil {
		return
	}
	r.Measurements = append(r.Measurements, mm)
}

// AttachMetrics snapshots reg into the manifest.
func (m *Manifest) AttachMetrics(reg *Registry) { m.Metrics = reg.Snapshot() }

// Write serializes the manifest as indented JSON.
func (m *Manifest) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// ReadManifest parses and validates a manifest document.
func ReadManifest(r io.Reader) (*Manifest, error) {
	var m Manifest
	dec := json.NewDecoder(r)
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("telemetry: parse manifest: %w", err)
	}
	if m.Schema != ManifestSchema {
		return nil, fmt.Errorf("telemetry: not a manifest (schema %q, want %q)", m.Schema, ManifestSchema)
	}
	if m.Version < 1 || m.Version > ManifestVersion {
		return nil, fmt.Errorf("telemetry: unsupported manifest version %d (reader supports <= %d)", m.Version, ManifestVersion)
	}
	return &m, nil
}

// RenderText re-renders the manifest to the text a direct run of the same
// experiments would have printed: each experiment's captured output, with
// a blank line between experiments (the interp-lab CLI's separator).
func (m *Manifest) RenderText(w io.Writer) error {
	for k, r := range m.Runs {
		if k > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, r.Text); err != nil {
			return err
		}
	}
	return nil
}
