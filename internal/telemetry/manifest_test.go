package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"interplab/internal/alphasim"
	"interplab/internal/atom"
)

func sampleManifest() *Manifest {
	m := NewManifest(0.5)
	r := m.StartRun("table1")
	r.Text = "Table 1: header\nrow1\n"
	r.Add(Measurement{
		Program: "Tcl/des", System: "Tcl", Name: "des", Events: 12345, Kind: "pipeline",
		Stats: &atom.Stats{Commands: 10, Instructions: 12345, FetchDecode: 9000, Execute: 3345},
		Pipe:  &alphasim.Stats{Instructions: 12345, Cycles: 20000},
	})
	r2 := m.StartRun("fig1")
	r2.Text = "Figure 1: header\nrowA\n"
	return m
}

func TestManifestRoundTrip(t *testing.T) {
	m := sampleManifest()
	reg := NewRegistry()
	reg.Counter("core.measures").Add(2)
	m.AttachMetrics(reg)

	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != ManifestSchema || got.Version != ManifestVersion {
		t.Errorf("schema/version = %q/%d", got.Schema, got.Version)
	}
	if got.Config.Scale != 0.5 || len(got.Config.Experiments) != 2 {
		t.Errorf("config wrong: %+v", got.Config)
	}
	if len(got.Runs) != 2 || got.Runs[0].ID != "table1" {
		t.Fatalf("runs wrong: %+v", got.Runs)
	}
	mm := got.Runs[0].Measurements[0]
	if mm.Program != "Tcl/des" || mm.Stats.FetchDecode != 9000 || mm.Pipe.Cycles != 20000 {
		t.Errorf("measurement did not survive: %+v", mm)
	}
	if len(got.Metrics) != 1 || got.Metrics[0].Name != "core.measures" || got.Metrics[0].Value != 2 {
		t.Errorf("metrics did not survive: %+v", got.Metrics)
	}
}

func TestManifestRenderText(t *testing.T) {
	m := sampleManifest()
	var buf bytes.Buffer
	if err := m.RenderText(&buf); err != nil {
		t.Fatal(err)
	}
	// Experiments render in order with a blank-line separator, exactly as
	// the CLI prints a direct multi-experiment run.
	want := "Table 1: header\nrow1\n\nFigure 1: header\nrowA\n"
	if buf.String() != want {
		t.Errorf("render = %q, want %q", buf.String(), want)
	}
}

func TestReadManifestRejectsForeignAndFutureDocs(t *testing.T) {
	if _, err := ReadManifest(strings.NewReader(`{"schema":"other","version":1}`)); err == nil {
		t.Error("foreign schema must be rejected")
	}
	if _, err := ReadManifest(strings.NewReader(`{"schema":"interp-lab/manifest","version":99}`)); err == nil {
		t.Error("future version must be rejected")
	}
	if _, err := ReadManifest(strings.NewReader(`not json`)); err == nil {
		t.Error("junk must be rejected")
	}
}

func TestStartRunIsIdempotent(t *testing.T) {
	m := NewManifest(1)
	a := m.StartRun("fig2")
	b := m.StartRun("fig2")
	if a != b {
		t.Error("StartRun must return the same entry for the same id")
	}
	if len(m.Runs) != 1 || len(m.Config.Experiments) != 1 {
		t.Errorf("duplicate entries created: %+v", m.Config)
	}
}

func TestRunEntryNilAdd(t *testing.T) {
	var r *RunEntry
	r.Add(Measurement{Program: "x"}) // must not panic
}
