package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// TraceEvent is one Chrome trace-event record.  The exported file follows
// the Trace Event Format's "JSON Object Format" ({"traceEvents": [...]}),
// which chrome://tracing and Perfetto both load.  Ts and Dur are in
// microseconds, per the format.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Tracer records spans of the experiment pipeline.  A nil *Tracer is the
// disabled state: Start returns a nil *Span and everything no-ops.  The
// tracer is safe for concurrent Start/End.  Spans started with Start land
// on lane (Chrome tid) 1 and render as one flame graph; the parallel
// measurement scheduler uses StartOn to give each worker its own lane, so
// concurrent measurements render side by side instead of overlapping.
type Tracer struct {
	mu     sync.Mutex
	events []TraceEvent
	epoch  time.Time
	now    func() time.Time // test seam
}

// NewTracer returns an enabled tracer whose timestamps are relative to now.
func NewTracer() *Tracer {
	t := &Tracer{now: time.Now}
	t.epoch = t.now()
	return t
}

// Span is one open interval.  End closes it; a nil Span no-ops.
type Span struct {
	tracer *Tracer
	name   string
	cat    string
	tid    int
	begin  time.Time
	args   map[string]any
}

// BatchLane is the Chrome-trace lane (tid) reserved for the batched event
// pipeline's per-measurement flush summaries.  It sits far above the
// parallel scheduler's worker lanes (2..workers+1), so batch spans render
// as their own track instead of interleaving with measurement spans.
const BatchLane = 99

// Start opens a span on lane 1, the main line.  Args are alternating key,
// value pairs attached to the trace event ("program", "Tcl/des").  Returns
// nil when t is nil.
func (t *Tracer) Start(name string, args ...any) *Span {
	return t.StartOn(1, name, args...)
}

// StartOn opens a span on the given lane (Chrome trace tid, >= 1).
// Concurrent workers pass distinct lanes so their spans render as parallel
// tracks in chrome://tracing / Perfetto.
func (t *Tracer) StartOn(lane int, name string, args ...any) *Span {
	if t == nil {
		return nil
	}
	if lane < 1 {
		lane = 1
	}
	s := &Span{tracer: t, name: name, tid: lane, begin: t.now()}
	if len(args) >= 2 {
		s.args = make(map[string]any, len(args)/2)
		for i := 0; i+1 < len(args); i += 2 {
			s.args[fmt.Sprint(args[i])] = args[i+1]
		}
	}
	return s
}

// SetArg attaches one key/value to the span's trace event.
func (s *Span) SetArg(key string, value any) {
	if s == nil {
		return
	}
	if s.args == nil {
		s.args = make(map[string]any)
	}
	s.args[key] = value
}

// End closes the span, emitting a complete ("X") trace event.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tracer
	end := t.now()
	t.mu.Lock()
	t.events = append(t.events, TraceEvent{
		Name: s.name,
		Cat:  s.cat,
		Ph:   "X",
		Ts:   float64(s.begin.Sub(t.epoch)) / float64(time.Microsecond),
		Dur:  float64(end.Sub(s.begin)) / float64(time.Microsecond),
		Pid:  1,
		Tid:  s.tid,
		Args: s.args,
	})
	t.mu.Unlock()
}

// Instant emits a zero-duration instant ("i") event on lane 1, useful for
// marking one-off occurrences inside a run.
func (t *Tracer) Instant(name string, args ...any) {
	t.InstantOn(1, name, args...)
}

// InstantOn emits an instant event on the given lane (Chrome trace tid,
// >= 1).  The parallel scheduler marks job claims and idle gaps on each
// worker's lane, so thread-scoped instants line up with that worker's
// measurement spans.
func (t *Tracer) InstantOn(lane int, name string, args ...any) {
	if t == nil {
		return
	}
	s := t.StartOn(lane, name, args...)
	t.mu.Lock()
	t.events = append(t.events, TraceEvent{
		Name: s.name,
		Ph:   "i",
		Ts:   float64(s.begin.Sub(t.epoch)) / float64(time.Microsecond),
		Pid:  1,
		Tid:  s.tid,
		Args: s.args,
	})
	t.mu.Unlock()
}

// Events returns a copy of the recorded events in completion order.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEvent, len(t.events))
	copy(out, t.events)
	return out
}

// traceFile is the JSON Object Format wrapper.
type traceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteJSON writes the recorded spans as a Chrome trace-event file that
// loads in chrome://tracing and Perfetto.  A nil tracer writes an empty
// (still valid) trace.
func (t *Tracer) WriteJSON(w io.Writer) error {
	f := traceFile{TraceEvents: t.Events(), DisplayTimeUnit: "ms"}
	if f.TraceEvents == nil {
		f.TraceEvents = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}
