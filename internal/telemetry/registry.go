// Package telemetry instruments the laboratory itself: structured metrics
// (counters, gauges, log-bucketed histograms), span-based tracing of the
// experiment pipeline exported as Chrome trace-event JSON, a sampling
// observer that watches a native-instruction stream without perturbing it,
// and versioned machine-readable run manifests.
//
// The paper is a measurement study; this package is the measurement of the
// measurers.  Everything is designed around a near-zero-cost disabled path:
// a nil *Registry hands out nil instruments whose methods no-op, and
// Wrap(sink, nil, n) returns the wrapped sink unchanged, so code can be
// instrumented unconditionally and pay nothing when telemetry is off.
package telemetry

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.  A nil Counter is
// valid and all its methods no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for a nil Counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value.  A nil Gauge is valid and all its
// methods no-op.  The value is stored as a float64 bit pattern.
type Gauge struct {
	bits atomic.Uint64
}

// Set records the current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta (negative deltas decrease it), atomically
// with respect to concurrent Add and Set calls.  Level-style gauges — a
// server's in-flight request count, an admission queue's depth — are
// incremented and decremented from many goroutines, which Set alone cannot
// express without a racy read-modify-write.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the last value set (0 for a nil Gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the number of log2 buckets: bucket i holds observations v
// with bits.Len64(v) == i, i.e. bucket 0 is v==0, bucket i covers
// [2^(i-1), 2^i).
const histBuckets = 65

// Histogram is a streaming histogram with logarithmic (power-of-two)
// buckets, suitable for long-tailed quantities such as instruction counts
// or span durations.  A nil Histogram is valid and all its methods no-op.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the average observed value.
func (h *Histogram) Mean() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(h.count.Load())
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1): the
// upper edge of the log bucket containing it.
func (h *Histogram) Quantile(q float64) uint64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= target {
			if i == 0 {
				return 0
			}
			return 1<<uint(i) - 1
		}
	}
	return 1<<63 - 1
}

// Buckets returns the non-empty buckets as (upper-bound, count) pairs in
// ascending order.
func (h *Histogram) Buckets() []BucketCount {
	if h == nil {
		return nil
	}
	var out []BucketCount
	for i := 0; i < histBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			hi := uint64(0)
			if i > 0 {
				hi = 1<<uint(i) - 1
			}
			out = append(out, BucketCount{Le: hi, Count: n})
		}
	}
	return out
}

// BucketCount is one histogram bucket: Count observations <= Le (and above
// the previous bucket's Le).
type BucketCount struct {
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// Registry names and owns instruments.  A nil *Registry is the disabled
// state: every lookup returns a nil instrument, whose methods no-op.
// Lookups are concurrency-safe; instrument updates are atomic.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.  Returns
// nil (a valid no-op counter) when r is nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.  Returns nil (a
// valid no-op gauge) when r is nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
// Returns nil (a valid no-op histogram) when r is nil.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Shard returns a fresh registry meant for one worker's private updates,
// to be folded back with Merge when the worker finishes.  Sharding keeps
// concurrent workers off the shared registry's mutex and counter cache
// lines entirely.  A nil registry shards to nil (the disabled path stays
// disabled).
func (r *Registry) Shard() *Registry {
	if r == nil {
		return nil
	}
	return NewRegistry()
}

// Merge folds a shard's instruments into r: counters add, histograms add
// bucket-wise, and gauges overwrite (callers merge shards in a fixed order
// so the surviving gauge value is deterministic).  Merging nil, or into
// nil, no-ops.
func (r *Registry) Merge(s *Registry) {
	if r == nil || s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, c := range s.counters {
		r.Counter(name).Add(c.Value())
	}
	for name, g := range s.gauges {
		r.Gauge(name).Set(g.Value())
	}
	for name, h := range s.hists {
		r.Histogram(name).merge(h)
	}
}

// merge adds another histogram's observations bucket-wise.
func (h *Histogram) merge(from *Histogram) {
	if h == nil || from == nil {
		return
	}
	h.count.Add(from.count.Load())
	h.sum.Add(from.sum.Load())
	for i := 0; i < histBuckets; i++ {
		if n := from.buckets[i].Load(); n > 0 {
			h.buckets[i].Add(n)
		}
	}
}

// Metric is one exported instrument value.  Exactly one of the value
// fields is meaningful, selected by Type.
type Metric struct {
	Name  string  `json:"name"`
	Type  string  `json:"type"` // "counter", "gauge", "histogram"
	Value float64 `json:"value,omitempty"`

	Count   uint64        `json:"count,omitempty"`
	Sum     uint64        `json:"sum,omitempty"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot exports every instrument, sorted by (type, name).  A nil
// registry snapshots to nil.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Metric
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Type: "counter", Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{Name: name, Type: "gauge", Value: g.Value()})
	}
	for name, h := range r.hists {
		out = append(out, Metric{Name: name, Type: "histogram", Count: h.Count(), Sum: h.Sum(), Buckets: h.Buckets()})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Type != out[j].Type {
			return out[i].Type < out[j].Type
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// String renders a metric as "name type value" for debugging.
func (m Metric) String() string {
	if m.Type == "histogram" {
		return fmt.Sprintf("%s histogram count=%d sum=%d", m.Name, m.Count, m.Sum)
	}
	return fmt.Sprintf("%s %s %g", m.Name, m.Type, m.Value)
}
