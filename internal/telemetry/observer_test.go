package telemetry

import (
	"testing"
	"time"

	"interplab/internal/trace"
)

// stream synthesizes a deterministic mixed-kind event stream.
func stream(n int) []trace.Event {
	evs := make([]trace.Event, n)
	for i := range evs {
		e := trace.Event{PC: uint32(4 * i)}
		switch i % 5 {
		case 0:
			e.Kind = trace.Int
		case 1:
			e.Kind = trace.Load
			e.Addr = uint32(i)
		case 2:
			e.Kind = trace.Load
			e.Addr = uint32(i * 2)
		case 3:
			e.Kind = trace.Store
			e.Addr = uint32(i)
		case 4:
			e.Kind = trace.Branch
			if i%10 == 4 {
				e.Flags = trace.FlagTaken
			}
		}
		evs[i] = e
	}
	return evs
}

// TestObserverPassThroughFidelity pins the tentpole contract: the wrapped
// sink sees the identical event stream — same events, same order, same
// count — whether or not the observer sits in front of it.
func TestObserverPassThroughFidelity(t *testing.T) {
	evs := stream(1000)
	var direct trace.Recorder
	for _, e := range evs {
		direct.Emit(e)
	}
	var observed trace.Recorder
	obs := NewObserver(&observed, NewRegistry(), 64)
	for _, e := range evs {
		obs.Emit(e)
	}
	if len(observed.Events) != len(direct.Events) {
		t.Fatalf("observed %d events, direct %d", len(observed.Events), len(direct.Events))
	}
	for i := range direct.Events {
		if observed.Events[i] != direct.Events[i] {
			t.Fatalf("event %d perturbed: %+v != %+v", i, observed.Events[i], direct.Events[i])
		}
	}
}

func TestObserverSampling(t *testing.T) {
	reg := NewRegistry()
	obs := NewObserver(trace.Discard, reg, 100)
	obs.now = fakeClock(time.Millisecond)
	obs.start = obs.now()
	obs.lastSample = obs.start
	for _, e := range stream(250) {
		obs.Emit(e)
	}
	if got := len(obs.Samples()); got != 2 {
		t.Fatalf("got %d samples, want 2 (every 100 of 250)", got)
	}
	obs.Flush()
	samples := obs.Samples()
	if got := len(samples); got != 3 {
		t.Fatalf("after flush got %d samples, want 3", got)
	}
	last := samples[2]
	if last.Events != 250 {
		t.Errorf("final sample events = %d, want 250", last.Events)
	}
	// The 5-way kind rotation gives 2/5 loads, 1/5 stores.
	if last.LoadsPerStore < 1.9 || last.LoadsPerStore > 2.1 {
		t.Errorf("loads/store = %g, want ~2", last.LoadsPerStore)
	}
	wantMix := map[trace.Kind]float64{trace.Int: 0.2, trace.Load: 0.4, trace.Store: 0.2, trace.Branch: 0.2}
	for k, want := range wantMix {
		got := last.Mix[k]
		if got < want-0.01 || got > want+0.01 {
			t.Errorf("mix[%v] = %g, want ~%g", k, got, want)
		}
	}
	if last.EventsPerSec <= 0 {
		t.Error("events/sec must be positive with an advancing clock")
	}
	// Registry gauges mirror the last snapshot.
	if got := reg.Gauge("observer.events").Value(); got != 250 {
		t.Errorf("observer.events gauge = %g, want 250", got)
	}
	if got := reg.Counter("observer.samples").Value(); got != 3 {
		t.Errorf("observer.samples counter = %d, want 3", got)
	}
}

// TestWrapDisabledIsIdentity pins the near-zero-cost disabled path: with a
// nil registry, Wrap returns the wrapped sink itself, so the event path is
// byte-for-byte the uninstrumented one.
func TestWrapDisabledIsIdentity(t *testing.T) {
	var c trace.Counter
	if got := Wrap(&c, nil, 0); got != trace.Sink(&c) {
		t.Fatalf("Wrap with nil registry must return the sink unchanged, got %T", got)
	}
	if got := Wrap(&c, NewRegistry(), 0); got == trace.Sink(&c) {
		t.Fatal("Wrap with a registry must interpose an observer")
	}
}

func TestObserverFlushIdempotentOnEmpty(t *testing.T) {
	obs := NewObserver(trace.Discard, NewRegistry(), 10)
	obs.Flush()
	if len(obs.Samples()) != 0 {
		t.Error("flush of an empty stream must not synthesize samples")
	}
}
