package telemetry

import "testing"

// TestShardMerge pins the worker-shard contract the parallel scheduler
// relies on: counters add, histograms add bucket-wise, gauges take the last
// merged shard's value, and pre-existing instruments in the target survive.
func TestShardMerge(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs").Add(5)
	r.Histogram("events").Observe(100)

	s1 := r.Shard()
	s2 := r.Shard()
	s1.Counter("jobs").Add(2)
	s1.Counter("only_s1").Inc()
	s1.Histogram("events").Observe(7)
	s1.Gauge("last").Set(1)
	s2.Counter("jobs").Add(3)
	s2.Histogram("events").Observe(9)
	s2.Gauge("last").Set(2)

	r.Merge(s1)
	r.Merge(s2)

	if got := r.Counter("jobs").Value(); got != 10 {
		t.Errorf("jobs = %d, want 10", got)
	}
	if got := r.Counter("only_s1").Value(); got != 1 {
		t.Errorf("only_s1 = %d, want 1", got)
	}
	h := r.Histogram("events")
	if h.Count() != 3 || h.Sum() != 116 {
		t.Errorf("events histogram count=%d sum=%d, want 3/116", h.Count(), h.Sum())
	}
	if got := r.Gauge("last").Value(); got != 2 {
		t.Errorf("gauge = %g, want the last-merged shard's value 2", got)
	}
}

// TestShardMergeNil keeps the disabled path disabled: a nil registry shards
// to nil, and merging nil in either direction no-ops.
func TestShardMergeNil(t *testing.T) {
	var disabled *Registry
	if s := disabled.Shard(); s != nil {
		t.Error("nil registry must shard to nil")
	}
	disabled.Merge(NewRegistry()) // must not panic
	r := NewRegistry()
	r.Counter("c").Inc()
	r.Merge(nil)
	if got := r.Counter("c").Value(); got != 1 {
		t.Errorf("merging nil changed a counter: %d", got)
	}
}
