package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// fakeClock advances a deterministic amount per reading.
func fakeClock(step time.Duration) func() time.Time {
	t0 := time.Unix(1000, 0)
	n := 0
	return func() time.Time {
		n++
		return t0.Add(time.Duration(n) * step)
	}
}

func newTestTracer(step time.Duration) *Tracer {
	tr := &Tracer{now: fakeClock(step)}
	tr.epoch = tr.now()
	return tr
}

func TestNilTracerNoOps(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x", "k", "v")
	if sp != nil {
		t.Fatal("nil tracer must return nil span")
	}
	sp.SetArg("a", 1) // must not panic
	sp.End()          // must not panic
	tr.Instant("mark")
	if tr.Events() != nil {
		t.Error("nil tracer has no events")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("nil tracer WriteJSON: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
	if _, ok := doc["traceEvents"].([]any); !ok {
		t.Error("empty trace must still carry a traceEvents array")
	}
}

func TestSpanNestingAndArgs(t *testing.T) {
	tr := newTestTracer(time.Millisecond)
	outer := tr.Start("experiment table1", "id", "table1")
	inner := tr.Start("measure Tcl/des", "program", "Tcl/des")
	inner.SetArg("events", 42)
	inner.End()
	outer.End()
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	// Completion order: inner closes first.
	if evs[0].Name != "measure Tcl/des" || evs[1].Name != "experiment table1" {
		t.Fatalf("order wrong: %v, %v", evs[0].Name, evs[1].Name)
	}
	if evs[0].Args["program"] != "Tcl/des" || evs[0].Args["events"] != 42 {
		t.Errorf("inner args wrong: %v", evs[0].Args)
	}
	// The outer span must strictly contain the inner one.
	in, out := evs[0], evs[1]
	if !(out.Ts <= in.Ts && out.Ts+out.Dur >= in.Ts+in.Dur) {
		t.Errorf("outer [%g,%g] does not contain inner [%g,%g]",
			out.Ts, out.Ts+out.Dur, in.Ts, in.Ts+in.Dur)
	}
	if in.Dur <= 0 || out.Dur <= 0 {
		t.Errorf("durations must be positive: inner %g, outer %g", in.Dur, out.Dur)
	}
}

// TestTraceEventSchema validates the exported file against the Chrome
// trace-event "JSON Object Format" that chrome://tracing and Perfetto
// load: a top-level traceEvents array whose entries carry name, ph, ts,
// pid and tid, with complete ("X") events also carrying dur >= 0.
func TestTraceEventSchema(t *testing.T) {
	tr := newTestTracer(time.Millisecond)
	sp := tr.Start("experiment fig1", "id", "fig1")
	tr.Instant("sample", "events", 1000)
	sp.End()

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		DisplayUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d trace events, want 2", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		name, ok := ev["name"].(string)
		if !ok || name == "" {
			t.Errorf("event missing name: %v", ev)
		}
		ph, ok := ev["ph"].(string)
		if !ok || (ph != "X" && ph != "i" && ph != "B" && ph != "E") {
			t.Errorf("event has invalid phase %v", ev["ph"])
		}
		if ts, ok := ev["ts"].(float64); !ok || ts < 0 {
			t.Errorf("event missing non-negative ts: %v", ev)
		}
		if _, ok := ev["pid"].(float64); !ok {
			t.Errorf("event missing pid: %v", ev)
		}
		if _, ok := ev["tid"].(float64); !ok {
			t.Errorf("event missing tid: %v", ev)
		}
		if ph == "X" {
			if dur, ok := ev["dur"].(float64); !ok || dur < 0 {
				t.Errorf("complete event missing non-negative dur: %v", ev)
			}
		}
	}
}
