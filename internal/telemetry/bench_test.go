package telemetry

import (
	"testing"

	"interplab/internal/trace"
)

// The disabled-telemetry contract is structural: Wrap(sink, nil, n)
// returns sink itself (TestWrapDisabledIsIdentity), so the disabled event
// path executes the same instructions as the no-telemetry baseline.  The
// benchmarks below demonstrate it empirically: BenchmarkTelemetryBaseline
// and BenchmarkTelemetryDisabled run identical code and must be within
// noise (<2%) of each other, while BenchmarkTelemetryEnabled prices the
// observer.

var benchEvents = stream(4096)

func emitAll(sink trace.Sink) {
	for _, e := range benchEvents {
		sink.Emit(e)
	}
}

// opaque launders a sink through a non-inlinable call so both benchmark
// arms dispatch through an interface the compiler cannot devirtualize —
// exactly how the probe holds its sink in a real run.  Without it the
// baseline arm inlines Counter.Emit and the comparison measures compiler
// heroics, not the telemetry layer.
//
//go:noinline
func opaque(s trace.Sink) trace.Sink { return s }

// BenchmarkTelemetryBaseline is the uninstrumented event path: events
// straight into the counting sink.
func BenchmarkTelemetryBaseline(b *testing.B) {
	var c trace.Counter
	sink := opaque(&c)
	b.SetBytes(int64(len(benchEvents)))
	for i := 0; i < b.N; i++ {
		emitAll(sink)
	}
}

// BenchmarkTelemetryDisabled is the same path reached through the
// telemetry layer with a nil registry: Wrap returns the sink itself, so
// this must be within noise (<2%) of BenchmarkTelemetryBaseline.
func BenchmarkTelemetryDisabled(b *testing.B) {
	var c trace.Counter
	sink := opaque(Wrap(&c, nil, 0))
	b.SetBytes(int64(len(benchEvents)))
	for i := 0; i < b.N; i++ {
		emitAll(sink)
	}
}

// BenchmarkTelemetryEnabled prices the sampling observer.
func BenchmarkTelemetryEnabled(b *testing.B) {
	var c trace.Counter
	sink := opaque(Wrap(&c, NewRegistry(), 65536))
	b.SetBytes(int64(len(benchEvents)))
	for i := 0; i < b.N; i++ {
		emitAll(sink)
	}
}

// BenchmarkTelemetryNilCounter prices a nil counter increment on a hot
// path (the disabled metrics idiom).
func BenchmarkTelemetryNilCounter(b *testing.B) {
	var r *Registry
	c := r.Counter("hot")
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkTelemetryCounter prices a live atomic counter increment.
func BenchmarkTelemetryCounter(b *testing.B) {
	c := NewRegistry().Counter("hot")
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkTelemetryHistogram prices a live histogram observation.
func BenchmarkTelemetryHistogram(b *testing.B) {
	h := NewRegistry().Histogram("hot")
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}
