// Package workloads defines every benchmark program of the study: the
// des reference point implemented in all four interpreted systems plus
// compiled C, the per-language macro suites of Table 2, and the
// microbenchmarks of Table 1.
//
// Programs are constructed at a size scale: scale 1 keeps each run in the
// millions-of-native-instructions range so the full suite finishes in
// seconds; the shapes the paper reports (per-command costs, distribution
// concentration, cache behavior) are size-stable well below the original
// inputs, which ran for billions of cycles on a 175-MHz Alpha.
package workloads

import (
	"fmt"

	"interplab/internal/atom"
	"interplab/internal/core"
	"interplab/internal/jvm"
	"interplab/internal/minicc"
	"interplab/internal/mipsi"
	"interplab/internal/perl"
	"interplab/internal/tcl"
	"interplab/internal/tk"
	"interplab/internal/trace"
)

// runMIPS compiles mini-C and interprets the binary under MIPSI.
func runMIPS(ctx *core.Ctx, name, src string) error {
	prog, err := minicc.CompileMIPS(name, src)
	if err != nil {
		return err
	}
	ctx.SetProgramSize(prog.SizeBytes())
	ip, err := mipsi.New(prog, ctx.OS, ctx.Image, ctx.Probe)
	if err != nil {
		return err
	}
	if err := ip.Run(0); err != nil {
		return err
	}
	if ip.M.ExitCode != 0 {
		return fmt.Errorf("guest exited with %d", ip.M.ExitCode)
	}
	return nil
}

// runNative compiles mini-C and executes it directly (the compiled-C mode).
func runNative(ctx *core.Ctx, name, src string) error {
	prog, err := minicc.CompileMIPS(name, src)
	if err != nil {
		return err
	}
	ctx.SetProgramSize(prog.SizeBytes())
	nat, err := mipsi.NewNative(prog, ctx.OS, ctx.Sink)
	if err != nil {
		return err
	}
	if ctx.PerEventEmission() {
		nat.SetBatching(false)
	}
	if err := nat.Run(0); err != nil {
		return err
	}
	ctx.RecordBatch(nat.BatchStats())
	if nat.M.ExitCode != 0 {
		return fmt.Errorf("program exited with %d", nat.M.ExitCode)
	}
	return nil
}

// runJava compiles mini-C for the JVM and interprets the bytecode, binding
// the OS natives plus any extra native library.
func runJava(ctx *core.Ctx, name, src string, extraNatives ...[]*jvm.NativeFn) error {
	mod, err := minicc.CompileJVM(name, src)
	if err != nil {
		return err
	}
	ctx.SetProgramSize(mod.CodeBytes())
	if err := mod.Bind(jvm.OSNatives(ctx.OS)); err != nil {
		return err
	}
	for _, nats := range extraNatives {
		if err := mod.Bind(nats); err != nil {
			return err
		}
	}
	if missing := mod.Unbound(); len(missing) > 0 {
		return fmt.Errorf("unbound natives: %v", missing)
	}
	vm, err := jvm.New(mod, ctx.Image, ctx.Probe)
	if err != nil {
		return err
	}
	ret, err := vm.Run("main", 0)
	if err != nil {
		return err
	}
	if ret != 0 {
		return fmt.Errorf("main returned %d", ret)
	}
	return nil
}

// runPerl interprets a script.
func runPerl(ctx *core.Ctx, src string) error {
	ctx.SetProgramSize(len(src))
	ip, err := perl.New(src, ctx.OS, ctx.Image, ctx.Probe)
	if err != nil {
		return err
	}
	if err := ip.Run(); err != nil {
		return err
	}
	if ip.ExitCode() != 0 {
		return fmt.Errorf("script exited with %d", ip.ExitCode())
	}
	return nil
}

// runTcl interprets a script; withTk attaches the widget toolkit.
func runTcl(ctx *core.Ctx, src string, withTk bool) error {
	ctx.SetProgramSize(len(src))
	i := tcl.New(ctx.OS, ctx.Image, ctx.Probe)
	if withTk {
		tk.Attach(i, ctx.Display(320, 240))
	}
	if _, err := i.Eval(src); err != nil {
		return err
	}
	if i.ExitCode() != 0 {
		return fmt.Errorf("script exited with %d", i.ExitCode())
	}
	return nil
}

// Suite returns the Table 2 macro programs for all systems at the given
// scale (1 = default sizes).
func Suite(scale float64) []core.Program {
	if scale <= 0 {
		scale = 1
	}
	n := func(base int) int {
		v := int(float64(base) * scale)
		if v < 1 {
			v = 1
		}
		return v
	}
	progs := []core.Program{
		DESNative(n(150)),
		DESMIPSI(n(150)),
		DESJava(n(260)),
		DESPerl(n(18)),
		DESTcl(n(6)),
	}
	progs = append(progs, MIPSISuite(scale)...)
	progs = append(progs, JavaSuite(scale)...)
	progs = append(progs, PerlSuite(scale)...)
	progs = append(progs, TclSuite(scale)...)
	return progs
}

// ByID finds a program in the default suite.
func ByID(id string) (core.Program, bool) {
	for _, p := range Suite(1) {
		if p.ID() == id {
			return p, true
		}
	}
	return core.Program{}, false
}

var _ = atom.CodeBase
var _ trace.Sink
