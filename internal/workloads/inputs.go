package workloads

import (
	"fmt"
	"strings"

	"interplab/internal/core"
)

// Deterministic input corpora for the file-processing workloads.  All text
// is generated from a fixed word list with a fixed recurrence, so every run
// (and every language) sees identical bytes.

var corpusWords = []string{
	"the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog",
	"interpreter", "virtual", "machine", "command", "cache", "memory",
	"performance", "alpha", "native", "instruction", "decode", "fetch",
	"benchmark", "system", "program", "library", "runtime", "structure",
}

// textCorpus builds n lines of deterministic prose.
func textCorpus(lines int) string {
	var sb strings.Builder
	seed := uint32(42)
	for l := 0; l < lines; l++ {
		words := 5 + int(seed%7)
		for w := 0; w < words; w++ {
			seed = seed*1664525 + 1013904223
			if w > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(corpusWords[seed%uint32(len(corpusWords))])
		}
		if l%7 == 3 {
			fmt.Fprintf(&sb, " %d", seed%10000)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// htmlCorpus builds a deterministic HTML-ish document with some deliberate
// lint defects (unclosed tags, bad attributes) for weblint.
func htmlCorpus(paras int) string {
	var sb strings.Builder
	sb.WriteString("<html>\n<head><title>Interpreter Study</title></head>\n<body>\n")
	seed := uint32(7)
	for p := 0; p < paras; p++ {
		seed = seed*1664525 + 1013904223
		switch seed % 5 {
		case 0:
			fmt.Fprintf(&sb, "<h2>Section %d</h2>\n", p)
		case 1:
			sb.WriteString("<p>")
			for w := 0; w < 8; w++ {
				seed = seed*1664525 + 1013904223
				sb.WriteString(corpusWords[seed%uint32(len(corpusWords))])
				sb.WriteByte(' ')
			}
			sb.WriteString("</p>\n")
		case 2:
			fmt.Fprintf(&sb, "<a href=\"doc%d.html\">link %d</a>\n", p, p)
		case 3:
			// Deliberate defect: unclosed bold.
			sb.WriteString("<p><b>important text</p>\n")
		case 4:
			fmt.Fprintf(&sb, "<img src=\"fig%d.gif\">\n", p)
		}
	}
	sb.WriteString("</body>\n</html>\n")
	return sb.String()
}

// sourceCorpus builds deterministic C-like source text for the tag and
// lexer tools.
func sourceCorpus(funcs int) string {
	var sb strings.Builder
	sb.WriteString("/* generated corpus */\n#include <stdio.h>\n\n")
	for f := 0; f < funcs; f++ {
		fmt.Fprintf(&sb, "int helper_%d(int a, int b) {\n", f)
		fmt.Fprintf(&sb, "    int result = a * %d + b;\n", f+1)
		sb.WriteString("    if (result > 100) { result = result - 100; }\n")
		fmt.Fprintf(&sb, "    return result; /* helper %d */\n}\n\n", f)
	}
	sb.WriteString("int main() { return helper_0(1, 2); }\n")
	return sb.String()
}

// requestLog builds HTTP request lines for the plexus server workload.
func requestLog(n int) string {
	var sb strings.Builder
	seed := uint32(99)
	paths := []string{"/", "/index.html", "/docs/paper.ps", "/cgi/search", "/img/logo.gif", "/missing"}
	for k := 0; k < n; k++ {
		seed = seed*1664525 + 1013904223
		method := "GET"
		if seed%11 == 0 {
			method = "POST"
		}
		fmt.Fprintf(&sb, "%s %s HTTP/1.0\n", method, paths[seed%uint32(len(paths))])
	}
	return sb.String()
}

// installInputs populates the run's filesystem with every corpus.
func installInputs(ctx *core.Ctx) {
	ctx.OS.AddFile("compress.in", []byte(textCorpus(40)))
	ctx.OS.AddFile("text.in", []byte(textCorpus(60)))
	ctx.OS.AddFile("doc.html", []byte(htmlCorpus(50)))
	ctx.OS.AddFile("prog.c", []byte(sourceCorpus(18)))
	ctx.OS.AddFile("requests.log", []byte(requestLog(40)))
	ctx.OS.AddFile("index.html", []byte(htmlCorpus(10)))
	ctx.OS.AddFile("readfile.bin", []byte(strings.Repeat("x", 4096)))
	ctx.OS.AddFile("calendar.dat", []byte(calendarData(30)))
	ctx.OS.AddFile("old.txt", []byte(textCorpus(25)))
	ctx.OS.AddFile("new.txt", []byte(diffedCorpus(25)))
}

// calendarData builds appointment lines for the ical workload.
func calendarData(n int) string {
	var sb strings.Builder
	seed := uint32(3)
	for k := 0; k < n; k++ {
		seed = seed*1664525 + 1013904223
		fmt.Fprintf(&sb, "%d %d meeting-%s\n", seed%12+1, seed%28+1,
			corpusWords[seed%uint32(len(corpusWords))])
	}
	return sb.String()
}

// diffedCorpus is textCorpus(25) with a few changed lines, for tkdiff.
func diffedCorpus(lines int) string {
	base := strings.Split(textCorpus(lines), "\n")
	for k := 3; k < len(base); k += 7 {
		base[k] = base[k] + " CHANGED"
	}
	return strings.Join(base, "\n")
}
