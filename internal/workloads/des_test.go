package workloads

import (
	"strconv"
	"strings"
	"testing"

	"interplab/internal/core"
)

// TestDESAgreesAcrossLanguages is the suite's anchor: the same cipher in
// all five systems must print the same checksum.
func TestDESAgreesAcrossLanguages(t *testing.T) {
	const blocks = 5
	want := strconv.Itoa(DESChecksum(blocks))
	progs := []core.Program{
		DESNative(blocks), DESMIPSI(blocks), DESJava(blocks),
		DESPerl(blocks), DESTcl(blocks),
	}
	for _, p := range progs {
		res, err := core.Measure(p)
		if err != nil {
			t.Fatalf("%s: %v", p.ID(), err)
		}
		out := strings.TrimSpace(res.Stdout)
		if out != want {
			t.Errorf("%s checksum = %q, want %q", p.ID(), out, want)
		}
	}
}
