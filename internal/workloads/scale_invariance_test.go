package workloads

import (
	"testing"

	"interplab/internal/core"
)

// TestEventRatiosScaleInvariant is a differential check on the four
// interpreters: the per-native-instruction event mix (loads, stores,
// conditional branches per emitted instruction) is a property of the
// interpreter's implementation, not of the workload size, so doubling the
// des workload must leave the ratios essentially unchanged.  A drift here
// means some fixed-cost path (startup, compilation) is leaking into the
// steady-state mix, or an interpreter's cost model has become
// size-dependent — either would silently skew every table in the study.
func TestEventRatiosScaleInvariant(t *testing.T) {
	interps := []struct {
		name string
		mk   func(blocks int) core.Program
	}{
		{"MIPSI", DESMIPSI},
		{"Java", DESJava},
		{"Perl", DESPerl},
		{"Tcl", DESTcl},
	}
	type mix struct{ loads, stores, branches float64 }
	ratios := func(t *testing.T, p core.Program) mix {
		t.Helper()
		res, err := core.Measure(p)
		if err != nil {
			t.Fatalf("%s: %v", p.ID(), err)
		}
		tot := float64(res.Counter.Total)
		if tot == 0 {
			t.Fatalf("%s: empty event stream", p.ID())
		}
		return mix{
			loads:    float64(res.Counter.Loads()) / tot,
			stores:   float64(res.Counter.Stores()) / tot,
			branches: float64(res.Counter.Branches()) / tot,
		}
	}
	// Startup work (binary load, bytecode compile, script parse) is a fixed
	// cost, so its share shrinks as the workload grows; 12% relative slack
	// absorbs that while still catching a genuinely size-dependent mix
	// (empirically the drift between these sizes stays under 8%).
	const tolerance = 0.12
	check := func(t *testing.T, what string, a, b float64) {
		t.Helper()
		if a <= 0 || b <= 0 {
			t.Fatalf("%s ratio not positive: %g vs %g", what, a, b)
		}
		hi := a
		if b > hi {
			hi = b
		}
		if diff := a - b; diff < -tolerance*hi || diff > tolerance*hi {
			t.Errorf("%s per instruction drifts with scale: %.5f vs %.5f", what, a, b)
		}
	}
	for _, in := range interps {
		in := in
		t.Run(in.name, func(t *testing.T) {
			t.Parallel()
			small := ratios(t, in.mk(4))
			large := ratios(t, in.mk(8))
			check(t, "loads", small.loads, large.loads)
			check(t, "stores", small.stores, large.stores)
			check(t, "branches", small.branches, large.branches)
		})
	}
}
