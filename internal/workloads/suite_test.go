package workloads

import (
	"testing"

	"interplab/internal/core"
)

// TestSuiteRunsClean executes every macro program at a small scale and
// requires success plus sane accounting.
func TestSuiteRunsClean(t *testing.T) {
	for _, p := range Suite(0.2) {
		p := p
		t.Run(p.ID(), func(t *testing.T) {
			res, err := core.Measure(p)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.Commands() == 0 {
				t.Error("no virtual commands recorded")
			}
			if res.NativeInstructions() == 0 {
				t.Error("no native instructions recorded")
			}
			if res.Stdout == "" {
				t.Error("workload produced no output")
			}
		})
	}
}

// TestNativeSuiteRunsClean executes the compiled baselines.
func TestNativeSuiteRunsClean(t *testing.T) {
	for _, p := range NativeSuite(0.2) {
		p := p
		t.Run(p.ID(), func(t *testing.T) {
			res, err := core.Measure(p)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.Counter.Total == 0 {
				t.Error("no instructions")
			}
		})
	}
}

// TestMicrosRunClean executes every microbenchmark in every system.
func TestMicrosRunClean(t *testing.T) {
	for _, m := range Micros(0.1) {
		for sys, p := range m.Progs {
			p := p
			t.Run(string(sys)+"/"+m.Name, func(t *testing.T) {
				if _, err := core.Measure(p); err != nil {
					t.Fatalf("run: %v", err)
				}
			})
		}
	}
}
