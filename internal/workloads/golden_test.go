package workloads

import (
	"regexp"
	"testing"

	"interplab/internal/core"
)

// TestInterpretedMatchesNativeOutputs runs every SPEC workalike both ways:
// the MIPSI-interpreted output must equal the directly executed output.
func TestInterpretedMatchesNativeOutputs(t *testing.T) {
	interp := MIPSISuite(0.2)
	native := NativeSuite(0.2)
	if len(interp) != len(native) {
		t.Fatal("suite size mismatch")
	}
	for k := range interp {
		ri, err := core.Measure(interp[k])
		if err != nil {
			t.Fatalf("%s: %v", interp[k].ID(), err)
		}
		rn, err := core.Measure(native[k])
		if err != nil {
			t.Fatalf("%s: %v", native[k].ID(), err)
		}
		if ri.Stdout != rn.Stdout {
			t.Errorf("%s: interpreted %q != native %q", interp[k].Name, ri.Stdout, rn.Stdout)
		}
		if ri.NativeInstructions() < 20*rn.NativeInstructions() {
			t.Errorf("%s: interpretation should cost >20x native (%d vs %d)",
				interp[k].Name, ri.NativeInstructions(), rn.NativeInstructions())
		}
	}
}

// Output shapes for each macro workload, pinned by pattern.
var outputShapes = map[string]*regexp.Regexp{
	"MIPSI/compress": regexp.MustCompile(`^\d+ \d+\n$`),
	"MIPSI/eqntott":  regexp.MustCompile(`^\d+\n$`),
	"MIPSI/espresso": regexp.MustCompile(`^\d+ \d+ \d+\n$`),
	"MIPSI/li":       regexp.MustCompile(`^\d+ 36 \n$`), // sum(1..8) = 36
	"Java/asteroids": regexp.MustCompile(`^\d+\n$`),
	"Java/hanoi":     regexp.MustCompile(`^31\n$`), // 2^5 - 1 moves
	"Java/javac":     regexp.MustCompile(`^\d+ \d+ \d+\n$`),
	"Java/mand":      regexp.MustCompile(`^\d+\n$`),
	"Perl/a2ps":      regexp.MustCompile(`^\d+ pages, \d+ lines\n$`),
	"Perl/plexus":    regexp.MustCompile(`(?s)^\d+ served, \d+ errors, \d+ bytes\n.*`),
	"Perl/txt2html":  regexp.MustCompile(`^\d+ paragraphs, \d+ links, \d+ numbered\n$`),
	"Perl/weblint":   regexp.MustCompile(`(?s)\d+ problems in \d+ lines\n`),
	"Tcl/tcllex":     regexp.MustCompile(`^\d+ idents, \d+ numbers, \d+ puncts, \d+ keywords\n$`),
	"Tcl/tcltags":    regexp.MustCompile(`^\d+ tags from \d+ lines\n$`),
	"Tcl/demos":      regexp.MustCompile(`^3 clicks, \d+ widgets\n$`),
	"Tcl/hanoi":      regexp.MustCompile(`^\d+\n$`),
	"Tcl/ical":       regexp.MustCompile(`^\d+ appointments, \d+ in june\n$`),
	"Tcl/tkdiff":     regexp.MustCompile(`^\d+ differing lines of \d+\n$`),
	"Tcl/xf":         regexp.MustCompile(`^10 widgets, \d+ generated lines\n$`),
}

func TestMacroOutputShapes(t *testing.T) {
	for _, p := range Suite(0.2) {
		re, ok := outputShapes[p.ID()]
		if !ok {
			continue
		}
		p := p
		t.Run(p.ID(), func(t *testing.T) {
			res, err := core.Measure(p)
			if err != nil {
				t.Fatal(err)
			}
			if !re.MatchString(res.Stdout) {
				t.Errorf("output %q does not match %v", res.Stdout, re)
			}
		})
	}
}

// TestWorkloadsAreDeterministic re-runs a sample and compares everything.
func TestWorkloadsAreDeterministic(t *testing.T) {
	for _, mk := range []func() core.Program{
		func() core.Program { return DESTcl(4) },
		func() core.Program { return DESPerl(6) },
		func() core.Program { return JavaSuite(0.15)[0] },
		func() core.Program { return TclSuite(0.15)[3] },
	} {
		a, err := core.Measure(mk())
		if err != nil {
			t.Fatal(err)
		}
		b, err := core.Measure(mk())
		if err != nil {
			t.Fatal(err)
		}
		if a.Stdout != b.Stdout {
			t.Errorf("%s: stdout differs between runs", a.Program.ID())
		}
		if a.NativeInstructions() != b.NativeInstructions() {
			t.Errorf("%s: instruction counts differ: %d vs %d",
				a.Program.ID(), a.NativeInstructions(), b.NativeInstructions())
		}
		if a.Counter.Total != b.Counter.Total {
			t.Errorf("%s: event counts differ", a.Program.ID())
		}
		if a.FrameChecksum != b.FrameChecksum {
			t.Errorf("%s: rendering differs", a.Program.ID())
		}
	}
}

// TestGraphicsWorkloadsDraw verifies the native-library story: the Tk and
// Java graphics workloads must spend a large share of execute instructions
// in the native region and must actually have drawn.
func TestGraphicsWorkloadsDraw(t *testing.T) {
	for _, p := range Suite(0.2) {
		switch p.ID() {
		case "Java/hanoi", "Java/asteroids", "Tcl/hanoi", "Tcl/demos", "Tcl/xf":
		default:
			continue
		}
		p := p
		t.Run(p.ID(), func(t *testing.T) {
			res, err := core.Measure(p)
			if err != nil {
				t.Fatal(err)
			}
			if res.FrameChecksum == 0 {
				t.Error("no frame rendered")
			}
			nat, ok := res.Stats.Region("native")
			if !ok || nat.Instructions == 0 {
				t.Fatal("no native-library time recorded")
			}
			share := float64(nat.Instructions) / float64(res.Stats.Execute)
			if share < 0.25 {
				t.Errorf("native share of execute = %.2f, want dominant-ish", share)
			}
		})
	}
}

// TestMicroIterationScaling checks that the per-iteration cost is stable:
// doubling iterations roughly doubles interpreted instructions.
func TestMicroIterationScaling(t *testing.T) {
	small := Micros(0.05)
	big := Micros(0.1)
	for k := range small {
		if small[k].Iters*2 != big[k].Iters {
			continue // clamped at the minimum
		}
		rs, err := core.Measure(small[k].Progs[core.SysMIPSI])
		if err != nil {
			t.Fatal(err)
		}
		rb, err := core.Measure(big[k].Progs[core.SysMIPSI])
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(rb.NativeInstructions()) / float64(rs.NativeInstructions())
		if ratio < 1.5 || ratio > 2.5 {
			t.Errorf("%s: 2x iterations gave %.2fx instructions", small[k].Name, ratio)
		}
	}
}
