package workloads

import (
	"testing"

	"interplab/internal/minicc"
	"interplab/internal/perl"
	"interplab/internal/tcl"
	"interplab/internal/vfs"
)

// xorshift for deterministic garbage.
func garbage(seed uint32, n int, alphabet string) string {
	out := make([]byte, n)
	for i := range out {
		seed ^= seed << 13
		seed ^= seed >> 17
		seed ^= seed << 5
		out[i] = alphabet[int(seed)%len(alphabet)]
	}
	return string(out)
}

const scriptAlphabet = "abcxyz $#{}[]()\"'\\;\n\t=+-*/<>&|!%123"

// TestParsersNeverPanic feeds deterministic garbage to every front end:
// errors are fine, panics are not.
func TestParsersNeverPanic(t *testing.T) {
	for seed := uint32(1); seed < 400; seed++ {
		src := garbage(seed, int(seed%197)+3, scriptAlphabet)

		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("perl parser panicked on %q: %v", src, r)
				}
			}()
			if ip, err := perl.New(src, vfs.New(), nil, nil); err == nil {
				// A parsed script may still fail at runtime; bound it.
				_ = ip
			}
		}()

		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("tcl parser panicked on %q: %v", src, r)
				}
			}()
			i := tcl.New(vfs.New(), nil, nil)
			_, _ = i.Eval(src)
		}()

		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("minicc panicked on %q: %v", src, r)
				}
			}()
			_, _ = minicc.CompileMIPS("fuzz", src)
			_, _ = minicc.CompileJVM("fuzz", src)
		}()
	}
}

// TestTclGarbageScriptsTerminate also executes short random scripts; they
// must finish (with or without error) rather than loop.
func TestTclGarbageScriptsTerminate(t *testing.T) {
	for seed := uint32(500); seed < 600; seed++ {
		src := garbage(seed, 40, "abc $[];{}")
		i := tcl.New(vfs.New(), nil, nil)
		_, _ = i.Eval(src)
	}
}
