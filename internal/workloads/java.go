package workloads

import (
	"fmt"

	"interplab/internal/core"
	"interplab/internal/jvm"
	"interplab/internal/minicc"
)

// The Java-analog macro suite.  The graphics programs (hanoi, asteroids,
// mand) call the native library through the JVM's native-method registry,
// reproducing the paper's split between interpreted bytecodes and
// precompiled runtime-library work.

const gfxDecls = `
native int gfx_clear(int c);
native int gfx_plot(int x, int y, int c);
native int gfx_fillrect(int x, int y, int w, int h, int c);
native int gfx_line(int x0, int y0, int x1, int y1, int c);
native int gfx_text(int x, int y, char *s, int c);
`

// hanoiJavaSrc solves the towers graphically: every move redraws the pegs
// through the native library, as in the paper's Tk/Java hanoi.
func hanoiJavaSrc(disks int) string {
	return gfxDecls + fmt.Sprintf(`
int pegs[3];
int heights[3];
int stacks[30];
int moves;

void drawpeg(int p) {
    int x = 20 + p * 100;
    gfx_fillrect(x, 20, 80, 160, 1);
    gfx_line(x + 40, 30, x + 40, 170, 7);
    int h = heights[p];
    int i;
    for (i = 0; i < h; i++) {
        int d = stacks[p * 10 + i];
        gfx_fillrect(x + 40 - d * 5, 160 - i * 12, d * 10, 10, 3);
    }
}

void moveDisk(int from, int to) {
    int d = stacks[from * 10 + heights[from] - 1];
    heights[from]--;
    stacks[to * 10 + heights[to]] = d;
    heights[to]++;
    moves++;
    drawpeg(from);
    drawpeg(to);
}

void hanoi(int n, int from, int to, int via) {
    if (n == 0) return;
    hanoi(n - 1, from, via, to);
    moveDisk(from, to);
    hanoi(n - 1, via, to, from);
}

int main() {
    int n = %d;
    int i;
    gfx_clear(0);
    for (i = 0; i < n; i++) stacks[i] = n - i;
    heights[0] = n;
    drawpeg(0); drawpeg(1); drawpeg(2);
    hanoi(n, 0, 2, 1);
    gfx_text(10, 190, "done", 15);
    putn(moves);
    putc('\n');
    if (moves != (1 << n) - 1) return 1;
    return 0;
}
`, disks)
}

// asteroidsSrc runs a game loop: physics in bytecode, drawing in the
// native library (the paper: st_load is 30%% of commands but native code
// gets 48%% of execute instructions).
func asteroidsSrc(frames int) string {
	return gfxDecls + fmt.Sprintf(`
int ax[12];
int ay[12];
int vx[12];
int vy[12];
int sz[12];
int alive[12];
int score;

int main() {
    int f;
    int i;
    int n = 12;
    int seed = 77;
    for (i = 0; i < n; i++) {
        seed = (seed * 1103515 + 12345) & 0x7fffffff;
        ax[i] = seed %% 320;
        ay[i] = (seed >> 8) %% 200;
        vx[i] = seed %% 7 - 3;
        vy[i] = (seed >> 4) %% 5 - 2;
        sz[i] = 4 + seed %% 9;
        alive[i] = 1;
    }
    for (f = 0; f < %d; f++) {
        gfx_clear(0);
        for (i = 0; i < n; i++) {
            if (!alive[i]) continue;
            ax[i] = ax[i] + vx[i];
            ay[i] = ay[i] + vy[i];
            if (ax[i] < 0) ax[i] = ax[i] + 320;
            if (ax[i] >= 320) ax[i] = ax[i] - 320;
            if (ay[i] < 0) ay[i] = ay[i] + 200;
            if (ay[i] >= 200) ay[i] = ay[i] - 200;
            gfx_fillrect(ax[i], ay[i], sz[i], sz[i], 2 + i %% 6);
        }
        /* ship fires along a diagonal; hit detection in bytecode */
        int bx = f * 3 %% 320;
        int by = f * 2 %% 200;
        gfx_line(bx, 0, bx, 199, 7);
        for (i = 0; i < n; i++) {
            if (!alive[i]) continue;
            if (bx >= ax[i] && bx < ax[i] + sz[i] && by >= ay[i] && by < ay[i] + sz[i]) {
                alive[i] = 0;
                score = score + sz[i];
                sz[i] = 0;
            }
        }
        gfx_text(2, 2, "score", 15);
    }
    putn(score);
    putc('\n');
    return 0;
}
`, frames)
}

// mandSrc is a fixed-point Mandelbrot explorer plotting through the native
// library — compute-heavy bytecode with modest native calls.
func mandSrc(size int) string {
	return gfxDecls + fmt.Sprintf(`
int main() {
    int w = %d;
    int h = %d;
    int px;
    int py;
    int total = 0;
    for (py = 0; py < h; py++) {
        for (px = 0; px < w; px++) {
            /* fixed point with 10 fractional bits */
            int cr = (px - w * 3 / 4) * 3072 / w;
            int ci = (py - h / 2) * 2048 / h;
            int zr = 0;
            int zi = 0;
            int it = 0;
            while (it < 32) {
                int zr2 = (zr * zr) >> 10;
                int zi2 = (zi * zi) >> 10;
                if (zr2 + zi2 > 4096) break;
                int t = zr2 - zi2 + cr;
                zi = ((zr * zi) >> 9) + ci;
                zr = t;
                it++;
            }
            total = total + it;
            gfx_plot(px, py, it %% 16);
        }
    }
    putn(total);
    putc('\n');
    return 0;
}
`, size, size*2/3)
}

// javacSrc is a compiler-like workload: a lexer and recursive-descent
// parser over generated source text, all in interpreted bytecode.
func javacSrc() string {
	return `
char src[4096];
int len;
int pos;
int toks;
int depth;
int maxdepth;

int peekc() {
    if (pos >= len) return -1;
    return src[pos] & 255;
}

int isid(int c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_';
}

void skipws() {
    while (1) {
        int c = peekc();
        if (c == ' ' || c == 10 || c == 9 || c == 13) { pos++; continue; }
        if (c == '/' && pos + 1 < len && src[pos+1] == '*') {
            pos = pos + 2;
            while (pos + 1 < len && !(src[pos] == '*' && src[pos+1] == '/')) pos++;
            pos = pos + 2;
            continue;
        }
        if (c == '#') {
            while (peekc() != 10 && peekc() >= 0) pos++;
            continue;
        }
        return;
    }
}

/* token kinds: 1 ident, 2 number, 3 punct, 0 eof */
int tkind;
int tstart;

void next() {
    skipws();
    int c = peekc();
    toks++;
    tstart = pos;
    if (c < 0) { tkind = 0; return; }
    if (isid(c) && !(c >= '0' && c <= '9')) {
        while (isid(peekc())) pos++;
        tkind = 1;
        return;
    }
    if (c >= '0' && c <= '9') {
        while (peekc() >= '0' && peekc() <= '9') pos++;
        tkind = 2;
        return;
    }
    pos++;
    tkind = 3;
}

int curIs(int ch) {
    return tkind == 3 && src[tstart] == ch;
}

void expr();

void primary() {
    depth++;
    if (depth > maxdepth) maxdepth = depth;
    if (curIs('(')) {
        next();
        expr();
        if (curIs(')')) next();
    } else if (tkind == 1) {
        next();
        if (curIs('(')) {
            next();
            while (!curIs(')') && tkind != 0) {
                expr();
                if (curIs(',')) next();
            }
            if (curIs(')')) next();
        }
    } else if (tkind == 2) {
        next();
    } else {
        next();
    }
    depth--;
}

void expr() {
    primary();
    while (tkind == 3 && (src[tstart] == '+' || src[tstart] == '-' ||
           src[tstart] == '*' || src[tstart] == '<' || src[tstart] == '>' ||
           src[tstart] == '=')) {
        next();
        primary();
    }
}

void stmt() {
    if (tkind == 1 && src[tstart] == 'i' && src[tstart+1] == 'f') {
        next();
        if (curIs('(')) { next(); expr(); if (curIs(')')) next(); }
        stmt();
        return;
    }
    if (curIs('{')) {
        next();
        while (!curIs('}') && tkind != 0) stmt();
        if (curIs('}')) next();
        return;
    }
    expr();
    if (curIs(';')) next();
}

int main() {
    int fd = _open("prog.c", 0);
    if (fd < 0) return 1;
    len = _read(fd, src, 4096);
    _close(fd);
    pos = 0;
    next();
    int units = 0;
    while (tkind != 0) {
        stmt();
        units++;
        if (units > 4000) break;
    }
    putn(toks); putc(' '); putn(units); putc(' '); putn(maxdepth); putc('\n');
    return 0;
}
`
}

func javaProg(name, desc, src string, needGfx bool) core.Program {
	return core.Program{
		System: core.SysJava, Name: name, Desc: desc,
		Run: func(ctx *core.Ctx) error {
			installInputs(ctx)
			var extra [][]*jvm.NativeFn
			if needGfx {
				extra = append(extra, jvm.GfxNatives(ctx.Display(320, 200)))
			}
			return runJava(ctx, name, minicc.WithStdlibJVM(src), extra...)
		},
	}
}

// JavaSuite returns the Table 2 Java programs.
func JavaSuite(scale float64) []core.Program {
	frames := int(40 * scale)
	if frames < 6 {
		frames = 6
	}
	size := int(60 * scale)
	if size < 24 {
		size = 24
	}
	disks := 5
	return []core.Program{
		javaProg("asteroids", "Asteroids game", asteroidsSrc(frames), true),
		javaProg("hanoi", "Towers of Hanoi (5 disks)", hanoiJavaSrc(disks), true),
		javaProg("javac", "Compiler front end over generated source", javacSrc(), false),
		javaProg("mand", "Interactive Mandelbrot explorer", mandSrc(size), true),
	}
}
