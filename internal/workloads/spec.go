package workloads

import (
	"fmt"

	"interplab/internal/core"
	"interplab/internal/minicc"
)

// The MIPSI macro suite: scaled-down workalikes of the paper's SPECint92
// programs, written in mini-C and compiled to MIPS binaries.  The same
// binaries run in Native mode as the compiled baselines of Figure 3.

// compressSrc is an LZW compressor over a file, like Unix compress.
func compressSrc() string {
	return `
char buf[8192];
int htab[65536];
int codes[65536];
int nextcode;

int hash(int key) { return ((key * 40503) >> 2) & 65535; }

int lookup(int key) {
    int h = hash(key);
    while (htab[h] != 0) {
        if (htab[h] == key) return codes[h];
        h = (h + 1) & 65535;
    }
    return -1;
}

void insert(int key, int code) {
    int h = hash(key);
    while (htab[h] != 0) h = (h + 1) & 65535;
    htab[h] = key;
    codes[h] = code;
}

int main() {
    int fd = _open("compress.in", 0);
    if (fd < 0) return 1;
    int n = _read(fd, buf, 8192);
    _close(fd);
    if (n < 2) return 2;

    nextcode = 256;
    int w = buf[0] & 255;
    int emitted = 0;
    int check = 0;
    int i;
    for (i = 1; i < n; i++) {
        int c = buf[i] & 255;
        int key = (w << 9) + c + 1;
        int code = lookup(key);
        if (code >= 0) {
            w = code;
        } else {
            emitted++;
            check = (check * 31 + w) & 0xffffff;
            if (nextcode < 4000) {
                insert(key, nextcode);
                nextcode++;
            }
            w = c;
        }
    }
    emitted++;
    check = (check * 31 + w) & 0xffffff;
    putn(emitted); putc(' '); putn(check); putc('\n');
    return 0;
}
`
}

// eqntottSrc converts a postfix boolean equation to a truth table: the
// variable count sets the 2^v assignment sweep.
func eqntottSrc(vars int) string {
	return fmt.Sprintf(`
char expr[] = "ab&cd|^ef&gh|^&ij&kl|^mn&!|^";
int stack[64];

int main() {
    int vars = %d;
    int ones = 0;
    int m;
    int limit = 1 << vars;
    for (m = 0; m < limit; m++) {
        int sp = 0;
        int i = 0;
        while (expr[i]) {
            int c = expr[i];
            if (c >= 'a' && c <= 'z') {
                int bit = (m >> ((c - 'a') %% vars)) & 1;
                stack[sp] = bit;
                sp++;
            } else {
                if (c == '!') {
                    stack[sp-1] = 1 - stack[sp-1];
                } else {
                    int b = stack[sp-1];
                    int a = stack[sp-2];
                    sp--;
                    if (c == '&') stack[sp-1] = a & b;
                    if (c == '|') stack[sp-1] = a | b;
                    if (c == '^') stack[sp-1] = a ^ b;
                }
            }
            i++;
        }
        ones += stack[0];
    }
    putn(ones); putc('\n');
    return 0;
}
`, vars)
}

// espressoSrc minimizes a boolean cover by pairwise term merging
// (Quine-McCluskey style), like espresso's core loop.
func espressoSrc(terms int) string {
	return fmt.Sprintf(`
int value[512];
int mask[512];
int live[512];
int n;

int main() {
    int seed = 12345;
    int i;
    int j;
    n = %d;
    for (i = 0; i < n; i++) {
        seed = (seed * 1103515 + 12345) & 0x7fffffff;
        value[i] = seed & 4095;
        mask[i] = 4095;
        live[i] = 1;
    }
    int merged = 1;
    int passes = 0;
    while (merged) {
        merged = 0;
        passes++;
        for (i = 0; i < n; i++) {
            if (!live[i]) continue;
            for (j = i + 1; j < n; j++) {
                if (!live[j]) continue;
                if (mask[i] != mask[j]) continue;
                int diff = (value[i] ^ value[j]) & mask[i];
                if (diff == 0) { live[j] = 0; merged = 1; continue; }
                int low = diff & (-diff);
                if (diff == low) {
                    mask[i] = mask[i] & ~low;
                    value[i] = value[i] & mask[i];
                    live[j] = 0;
                    merged = 1;
                }
            }
        }
    }
    int count = 0;
    int check = 0;
    for (i = 0; i < n; i++) {
        if (live[i]) {
            count++;
            check = (check * 13 + value[i] + mask[i]) & 0xffffff;
        }
    }
    putn(count); putc(' '); putn(check); putc(' '); putn(passes); putc('\n');
    return 0;
}
`, terms)
}

// liSrc is a small Lisp interpreter (cons cells, symbols, eval/apply,
// user-defined recursive functions) — a lisp interpreter being interpreted
// by an interpreter, as in the paper's li.
func liSrc(fibN int) string {
	return fmt.Sprintf(`
int car[60000];
int cdr[60000];
int tag[60000];      /* 1=number 2=symbol 3=cons */
int nval[60000];
int nextcell;

char names[512];
int nameoff[64];
int nsyms;

char src[] = "(defun fib (n) (if (lt n 2) n (add (fib (sub n 1)) (fib (sub n 2))))) (defun sum (l a) (if (null l) a (sum (cdr l) (add a (car l))))) (fib %d) (sum (quote (1 2 3 4 5 6 7 8)) 0)";
int pos;

int fnname[16];
int fnparams[16];
int fnbody[16];
int nfns;

int alloc(int t, int a, int d) {
    int c = nextcell;
    nextcell++;
    if (nextcell >= 60000) { puts("out of cells\n"); _exit(3); }
    tag[c] = t;
    car[c] = a;
    cdr[c] = d;
    return c;
}

int mknum(int v) {
    int c = alloc(1, 0, 0);
    nval[c] = v;
    return c;
}

int intern(char *s, int len) {
    int i;
    for (i = 0; i < nsyms; i++) {
        int off = nameoff[i];
        int k = 0;
        while (k < len && names[off + k] == s[k]) k++;
        if (k == len && names[off + k] == 0) return i;
    }
    int off = 0;
    if (nsyms > 0) {
        off = nameoff[nsyms - 1];
        while (names[off]) off++;
        off++;
    }
    nameoff[nsyms] = off;
    int k;
    for (k = 0; k < len; k++) names[off + k] = s[k];
    names[off + len] = 0;
    nsyms++;
    return nsyms - 1;
}

int issep(int c) { return c == ' ' || c == '(' || c == ')' || c == 0; }

int parse() {
    while (src[pos] == ' ') pos++;
    if (src[pos] == 0) return -1;
    if (src[pos] == '(') {
        pos++;
        int head = -1;
        int tail = -1;
        while (1) {
            while (src[pos] == ' ') pos++;
            if (src[pos] == ')') { pos++; break; }
            if (src[pos] == 0) { puts("eof in list\n"); _exit(4); }
            int e = parse();
            int cell = alloc(3, e, -1);
            if (head < 0) { head = cell; } else { cdr[tail] = cell; }
            tail = cell;
        }
        return head;
    }
    if (src[pos] >= '0' && src[pos] <= '9') {
        int v = 0;
        while (src[pos] >= '0' && src[pos] <= '9') {
            v = v * 10 + (src[pos] - '0');
            pos++;
        }
        return mknum(v);
    }
    int start = pos;
    while (!issep(src[pos])) pos++;
    int sym = alloc(2, 0, 0);
    nval[sym] = intern(&src[start], pos - start);
    return sym;
}

int lookupenv(int sym, int env) {
    while (env >= 0) {
        int pair = car[env];
        if (nval[car[pair]] == nval[sym]) return cdr[pair];
        env = cdr[env];
    }
    puts("unbound symbol\n");
    _exit(5);
    return -1;
}

int findfn(int symid) {
    int i;
    for (i = 0; i < nfns; i++) {
        if (fnname[i] == symid) return i;
    }
    return -1;
}

int eval(int e, int env);

int evalargs(int l, int env) {
    if (l < 0) return -1;
    int v = eval(car[l], env);
    return alloc(3, v, evalargs(cdr[l], env));
}

int symis(int e, char *s) {
    if (tag[e] != 2) return 0;
    int off = nameoff[nval[e]];
    int k = 0;
    while (s[k] && names[off + k] == s[k]) k++;
    return s[k] == 0 && names[off + k] == 0;
}

int eval(int e, int env) {
    if (tag[e] == 1) return e;
    if (tag[e] == 2) return lookupenv(e, env);
    int head = car[e];
    int args = cdr[e];
    if (symis(head, "quote")) return car[args];
    if (symis(head, "if")) {
        int c = eval(car[args], env);
        if (tag[c] == 1 && nval[c] != 0) return eval(car[cdr[args]], env);
        if (tag[c] == 3) return eval(car[cdr[args]], env);
        return eval(car[cdr[cdr[args]]], env);
    }
    if (symis(head, "defun")) {
        int f = nfns;
        nfns++;
        fnname[f] = nval[car[args]];
        fnparams[f] = car[cdr[args]];
        fnbody[f] = car[cdr[cdr[args]]];
        return mknum(0);
    }
    int vals = evalargs(args, env);
    if (symis(head, "add")) return mknum(nval[car[vals]] + nval[car[cdr[vals]]]);
    if (symis(head, "sub")) return mknum(nval[car[vals]] - nval[car[cdr[vals]]]);
    if (symis(head, "mul")) return mknum(nval[car[vals]] * nval[car[cdr[vals]]]);
    if (symis(head, "lt")) return mknum(nval[car[vals]] < nval[car[cdr[vals]]]);
    if (symis(head, "eq")) return mknum(nval[car[vals]] == nval[car[cdr[vals]]]);
    if (symis(head, "car")) return car[car[vals]];
    if (symis(head, "cdr")) {
        int d = cdr[car[vals]];
        if (d < 0) return mknum(0);
        return d;
    }
    if (symis(head, "cons")) return alloc(3, car[vals], car[cdr[vals]]);
    if (symis(head, "null")) {
        int v = car[vals];
        if (tag[v] == 1 && nval[v] == 0) return mknum(1);
        return mknum(0);
    }
    int f = findfn(nval[head]);
    if (f < 0) { puts("unknown function\n"); _exit(6); }
    int newenv = env;
    int p = fnparams[f];
    int a = vals;
    while (p >= 0) {
        int binding = alloc(3, car[p], car[a]);
        newenv = alloc(3, binding, newenv);
        p = cdr[p];
        a = cdr[a];
    }
    return eval(fnbody[f], newenv);
}

int main() {
    pos = 0;
    int last = 0;
    while (1) {
        int e = parse();
        if (e < 0) break;
        int v = eval(e, -1);
        if (tag[v] == 1) last = nval[v];
        if (tag[v] == 1 && nval[v] != 0) { putn(nval[v]); putc(' '); }
    }
    putc('\n');
    return 0;
}
`, fibN)
}

func mipsiProg(name, desc, src string) core.Program {
	return core.Program{
		System: core.SysMIPSI, Name: name, Desc: desc,
		Run: func(ctx *core.Ctx) error {
			installInputs(ctx)
			return runMIPS(ctx, name, minicc.WithStdlib(src))
		},
	}
}

func nativeProg(name, desc, src string) core.Program {
	return core.Program{
		System: core.SysC, Name: name, Desc: desc,
		Run: func(ctx *core.Ctx) error {
			installInputs(ctx)
			return runNative(ctx, name, minicc.WithStdlib(src))
		},
	}
}

func specSources(scale float64) map[string]string {
	vars := 6 + int(2*scale)
	if vars > 10 {
		vars = 10
	}
	terms := int(200 * scale)
	if terms < 24 {
		terms = 24
	}
	fib := 9 + int(scale)
	if fib > 12 {
		fib = 12
	}
	return map[string]string{
		"compress": compressSrc(),
		"eqntott":  eqntottSrc(vars),
		"espresso": espressoSrc(terms),
		"li":       liSrc(fib),
	}
}

var specDescs = map[string]string{
	"compress": "Unix compress utility (LZW)",
	"eqntott":  "Equation to truth table conversion",
	"espresso": "Boolean minimization",
	"li":       "Lisp interpreter",
}

// MIPSISuite returns the interpreted SPEC workalikes.
func MIPSISuite(scale float64) []core.Program {
	var out []core.Program
	srcs := specSources(scale)
	for _, name := range []string{"compress", "eqntott", "espresso", "li"} {
		out = append(out, mipsiProg(name, specDescs[name], srcs[name]))
	}
	return out
}

// NativeSuite returns the same programs compiled and run directly — the
// C-compress / C-li baselines of Figure 3.
func NativeSuite(scale float64) []core.Program {
	var out []core.Program
	srcs := specSources(scale)
	for _, name := range []string{"compress", "eqntott", "espresso", "li"} {
		out = append(out, nativeProg(name, specDescs[name], srcs[name]))
	}
	return out
}
