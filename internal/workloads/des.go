package workloads

import (
	"fmt"

	"interplab/internal/core"
	"interplab/internal/minicc"
)

// The des reference benchmark: a 16-round Feistel block cipher over 32-bit
// blocks (two 16-bit halves) with a 64-entry S-box and a derived key
// schedule — the same algorithm in every language, like the paper's des.
// Each implementation encrypts, checksums, decrypts and verifies `blocks`
// blocks, prints the checksum, and fails on any mismatch, so cross-language
// agreement is checkable.

// desMiniC is the shared mini-C source (pointer-free, so it compiles for
// both the MIPS and the JVM backends).
func desMiniC(blocks int) string {
	return fmt.Sprintf(`
int SBOX[64];
int KS[16];
int EL;
int ER;

int ffun(int r, int k) {
    int t = (r ^ k) & 0xffff;
    int f = SBOX[t & 63] ^ (SBOX[(t >> 6) & 63] << 4) ^ (SBOX[(t >> 10) & 63] << 8);
    f = f & 0xffff;
    return ((f << 3) | ((f >> 13) & 7)) & 0xffff;
}

void crypt(int l, int r, int dir) {
    int i;
    int t;
    int k;
    for (i = 0; i < 16; i++) {
        if (dir) { k = KS[i]; } else { k = KS[15 - i]; }
        t = r;
        r = (l ^ ffun(r, k)) & 0xffff;
        l = t;
    }
    EL = r;
    ER = l;
}

int main() {
    int i;
    int b;
    int sum = 0;
    int errs = 0;
    for (i = 0; i < 64; i++) SBOX[i] = ((i * 17 + 3) ^ (i / 4)) %% 256;
    KS[0] = 0x3a5a;
    for (i = 1; i < 16; i++) KS[i] = ((KS[i-1] * 5 + 7) ^ (i * 73)) & 0xffff;
    for (b = 0; b < %d; b++) {
        int l = (b * 7919 + 13) & 0xffff;
        int r = (b * 10473 + 17) & 0xffff;
        crypt(l, r, 1);
        int cl = EL;
        int cr = ER;
        sum = (sum + cl * 3 + cr) & 0xffff;
        crypt(cl, cr, 0);
        if (EL != l) errs++;
        if (ER != r) errs++;
    }
    putn(sum);
    putc('\n');
    return errs;
}
`, blocks)
}

func desPerlSrc(blocks int) string {
	return fmt.Sprintf(`
for ($i = 0; $i < 64; $i++) { $SBOX[$i] = (($i * 17 + 3) ^ int($i / 4)) %% 256; }
$KS[0] = 0x3a5a;
for ($i = 1; $i < 16; $i++) { $KS[$i] = (($KS[$i-1] * 5 + 7) ^ ($i * 73)) & 0xffff; }

sub ffun {
    local($r, $k) = @_;
    local($t) = ($r ^ $k) & 0xffff;
    local($f) = $SBOX[$t & 63] ^ ($SBOX[($t >> 6) & 63] << 4) ^ ($SBOX[($t >> 10) & 63] << 8);
    $f = $f & 0xffff;
    return (($f << 3) | (($f >> 13) & 7)) & 0xffff;
}

sub crypt2 {
    local($l, $r, $dir) = @_;
    local($i, $t, $k);
    for ($i = 0; $i < 16; $i++) {
        if ($dir) { $k = $KS[$i]; } else { $k = $KS[15 - $i]; }
        $t = $r;
        $r = ($l ^ &ffun($r, $k)) & 0xffff;
        $l = $t;
    }
    $EL = $r;
    $ER = $l;
    return 0;
}

$sum = 0;
$errs = 0;
for ($b = 0; $b < %d; $b++) {
    $l = ($b * 7919 + 13) & 0xffff;
    $r = ($b * 10473 + 17) & 0xffff;
    &crypt2($l, $r, 1);
    $cl = $EL;
    $cr = $ER;
    $sum = ($sum + $cl * 3 + $cr) & 0xffff;
    &crypt2($cl, $cr, 0);
    if ($EL != $l) { $errs++; }
    if ($ER != $r) { $errs++; }
}
print "$sum\n";
if ($errs > 0) { die "des verify failed: $errs"; }
`, blocks)
}

func desTclSrc(blocks int) string {
	return fmt.Sprintf(`
for {set i 0} {$i < 64} {incr i} { set SBOX($i) [expr (($i * 17 + 3) ^ ($i / 4)) %% 256] }
set KS(0) 0x3a5a
set KS(0) [expr $KS(0) + 0]
for {set i 1} {$i < 16} {incr i} { set KS($i) [expr (($KS([expr $i - 1]) * 5 + 7) ^ ($i * 73)) & 0xffff] }

proc ffun {r k} {
    global SBOX
    set t [expr ($r ^ $k) & 0xffff]
    set f [expr $SBOX([expr $t & 63]) ^ ($SBOX([expr ($t >> 6) & 63]) << 4) ^ ($SBOX([expr ($t >> 10) & 63]) << 8)]
    set f [expr $f & 0xffff]
    return [expr (($f << 3) | (($f >> 13) & 7)) & 0xffff]
}

proc crypt2 {l r dir} {
    global KS
    for {set i 0} {$i < 16} {incr i} {
        if {$dir} { set k $KS($i) } else { set k $KS([expr 15 - $i]) }
        set t $r
        set r [expr ($l ^ [ffun $r $k]) & 0xffff]
        set l $t
    }
    return [list $r $l]
}

set sum 0
set errs 0
for {set b 0} {$b < %d} {incr b} {
    set l [expr ($b * 7919 + 13) & 0xffff]
    set r [expr ($b * 10473 + 17) & 0xffff]
    set c [crypt2 $l $r 1]
    set cl [lindex $c 0]
    set cr [lindex $c 1]
    set sum [expr ($sum + $cl * 3 + $cr) & 0xffff]
    set d [crypt2 $cl $cr 0]
    if {[lindex $d 0] != $l || [lindex $d 1] != $r} { incr errs }
}
puts $sum
if {$errs > 0} { error "des verify failed: $errs" }
`, blocks)
}

// DESChecksum computes the expected checksum for a block count (reference
// implementation in Go, used by tests to validate every language).
func DESChecksum(blocks int) int {
	var sbox [64]int
	for i := 0; i < 64; i++ {
		sbox[i] = ((i*17 + 3) ^ (i / 4)) % 256
	}
	var ks [16]int
	ks[0] = 0x3a5a
	for i := 1; i < 16; i++ {
		ks[i] = ((ks[i-1]*5 + 7) ^ (i * 73)) & 0xffff
	}
	ffun := func(r, k int) int {
		t := (r ^ k) & 0xffff
		f := sbox[t&63] ^ (sbox[(t>>6)&63] << 4) ^ (sbox[(t>>10)&63] << 8)
		f &= 0xffff
		return ((f << 3) | ((f >> 13) & 7)) & 0xffff
	}
	crypt := func(l, r int, enc bool) (int, int) {
		for i := 0; i < 16; i++ {
			k := ks[i]
			if !enc {
				k = ks[15-i]
			}
			l, r = r, (l^ffun(r, k))&0xffff
		}
		return r, l
	}
	sum := 0
	for b := 0; b < blocks; b++ {
		l := (b*7919 + 13) & 0xffff
		r := (b*10473 + 17) & 0xffff
		cl, cr := crypt(l, r, true)
		sum = (sum + cl*3 + cr) & 0xffff
		dl, dr := crypt(cl, cr, false)
		if dl != l || dr != r {
			panic("reference des verify failed")
		}
	}
	return sum
}

// DESNative is the compiled-C des (Table 2's C row).
func DESNative(blocks int) core.Program {
	return core.Program{
		System: core.SysC, Name: "des",
		Desc: "DES encryption and decryption (compiled)",
		Run: func(ctx *core.Ctx) error {
			return runNative(ctx, "des", minicc.WithStdlib(desMiniC(blocks)))
		},
	}
}

// DESMIPSI is des interpreted by the binary emulator.
func DESMIPSI(blocks int) core.Program {
	return core.Program{
		System: core.SysMIPSI, Name: "des",
		Desc: "DES encryption and decryption",
		Run: func(ctx *core.Ctx) error {
			return runMIPS(ctx, "des", minicc.WithStdlib(desMiniC(blocks)))
		},
	}
}

// DESJava is des compiled to bytecode and interpreted by the JVM analog.
func DESJava(blocks int) core.Program {
	return core.Program{
		System: core.SysJava, Name: "des",
		Desc: "DES encryption and decryption",
		Run: func(ctx *core.Ctx) error {
			return runJava(ctx, "des", minicc.WithStdlibJVM(desMiniC(blocks)))
		},
	}
}

// DESPerl is the Perl des.
func DESPerl(blocks int) core.Program {
	return core.Program{
		System: core.SysPerl, Name: "des",
		Desc: "DES encryption and decryption",
		Run: func(ctx *core.Ctx) error {
			return runPerl(ctx, desPerlSrc(blocks))
		},
	}
}

// DESTcl is the Tcl des.
func DESTcl(blocks int) core.Program {
	return core.Program{
		System: core.SysTcl, Name: "des",
		Desc: "DES encryption and decryption",
		Run: func(ctx *core.Ctx) error {
			return runTcl(ctx, desTclSrc(blocks), false)
		},
	}
}

// DESMiniCSource exposes the shared mini-C des source for ablations.
func DESMiniCSource(blocks int) string { return desMiniC(blocks) }

// DESTclSource exposes the Tcl des script for ablations.
func DESTclSource(blocks int) string { return desTclSrc(blocks) }
