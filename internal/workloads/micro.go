package workloads

import (
	"fmt"

	"interplab/internal/core"
	"interplab/internal/minicc"
)

// Micro is one Table 1 microbenchmark: the same simple operation iterated
// the same number of times in every system, so slowdowns are ratios of the
// measured costs.
type Micro struct {
	Name  string
	Desc  string
	Iters int
	Progs map[core.System]core.Program
}

func microProg(sys core.System, name string, run func(ctx *core.Ctx) error) core.Program {
	return core.Program{System: sys, Name: "micro-" + name, Desc: "microbenchmark", Run: run}
}

// mkMicro assembles the per-system programs from source generators.
func mkMicro(name, desc string, iters int, cSrc string, perlSrc, tclSrc string) Micro {
	m := Micro{Name: name, Desc: desc, Iters: iters, Progs: map[core.System]core.Program{}}
	m.Progs[core.SysC] = microProg(core.SysC, name, func(ctx *core.Ctx) error {
		installInputs(ctx)
		return runNative(ctx, name, minicc.WithStdlib(cSrc))
	})
	m.Progs[core.SysMIPSI] = microProg(core.SysMIPSI, name, func(ctx *core.Ctx) error {
		installInputs(ctx)
		return runMIPS(ctx, name, minicc.WithStdlib(cSrc))
	})
	m.Progs[core.SysJava] = microProg(core.SysJava, name, func(ctx *core.Ctx) error {
		installInputs(ctx)
		return runJava(ctx, name, minicc.WithStdlibJVM(cSrc))
	})
	m.Progs[core.SysPerl] = microProg(core.SysPerl, name, func(ctx *core.Ctx) error {
		installInputs(ctx)
		return runPerl(ctx, perlSrc)
	})
	m.Progs[core.SysTcl] = microProg(core.SysTcl, name, func(ctx *core.Ctx) error {
		installInputs(ctx)
		return runTcl(ctx, tclSrc, false)
	})
	return m
}

// Micros returns the Table 1 suite at the given scale.
func Micros(scale float64) []Micro {
	n := func(base int) int {
		v := int(float64(base) * scale)
		if v < 4 {
			v = 4
		}
		return v
	}

	assignN := n(2000)
	assign := mkMicro("a=b+c", "assign the sum of two memory locations to a third", assignN,
		fmt.Sprintf(`
int a; int b; int c;
int main() {
    int i;
    b = 17; c = 25;
    for (i = 0; i < %d; i++) { a = b + c; }
    return a - 42;
}`, assignN),
		fmt.Sprintf(`
$b = 17; $c = 25;
for ($i = 0; $i < %d; $i++) { $a = $b + $c; }
exit($a - 42);
`, assignN),
		fmt.Sprintf(`
set b 17
set c 25
for {set i 0} {$i < %d} {incr i} { set a [expr $b + $c] }
exit [expr $a - 42]
`, assignN))

	ifN := n(2000)
	ifm := mkMicro("if", "conditional assignment", ifN,
		fmt.Sprintf(`
int a; int b; int c;
int main() {
    int i;
    b = 3; c = 9;
    for (i = 0; i < %d; i++) { if (b < c) { a = b; } else { a = c; } }
    return a - 3;
}`, ifN),
		fmt.Sprintf(`
$b = 3; $c = 9;
for ($i = 0; $i < %d; $i++) { if ($b < $c) { $a = $b; } else { $a = $c; } }
exit($a - 3);
`, ifN),
		fmt.Sprintf(`
set b 3
set c 9
for {set i 0} {$i < %d} {incr i} { if {$b < $c} { set a $b } else { set a $c } }
exit [expr $a - 3]
`, ifN))

	procN := n(1200)
	proc := mkMicro("null-proc", "null procedure call", procN,
		fmt.Sprintf(`
int nullp() { return 0; }
int main() {
    int i;
    for (i = 0; i < %d; i++) { nullp(); }
    return 0;
}`, procN),
		fmt.Sprintf(`
sub nullp { return 0; }
for ($i = 0; $i < %d; $i++) { &nullp(); }
`, procN),
		fmt.Sprintf(`
proc nullp {} { return }
for {set i 0} {$i < %d} {incr i} { nullp }
`, procN))

	catN := n(400)
	concat := mkMicro("string-concat", "concatenate two strings", catN,
		fmt.Sprintf(`
char buf[64];
char *x = "interpreted languages";
char *y = " are everywhere now";
int main() {
    int i;
    for (i = 0; i < %d; i++) {
        buf[0] = 0;
        strcat(buf, x);
        strcat(buf, y);
    }
    return strlen(buf) - 40;
}`, catN),
		fmt.Sprintf(`
$x = "interpreted languages";
$y = " are everywhere now";
for ($i = 0; $i < %d; $i++) { $s = $x . $y; }
exit(length($s) - 40);
`, catN),
		fmt.Sprintf(`
set x "interpreted languages"
set y " are everywhere now"
for {set i 0} {$i < %d} {incr i} { set s "$x$y" }
exit [expr [string length $s] - 40]
`, catN))

	splN := n(300)
	split := mkMicro("string-split", "split a string into four component strings", splN,
		fmt.Sprintf(`
char *line = "alpha beta gamma delta";
char p0[16]; char p1[16]; char p2[16]; char p3[16];
int splitter() {
    int i = 0;
    int f = 0;
    int k = 0;
    while (line[i]) {
        int c = line[i];
        if (c == ' ') {
            if (f == 0) p0[k] = 0;
            if (f == 1) p1[k] = 0;
            if (f == 2) p2[k] = 0;
            f++; k = 0;
        } else {
            if (f == 0) p0[k] = c;
            if (f == 1) p1[k] = c;
            if (f == 2) p2[k] = c;
            if (f == 3) p3[k] = c;
            k++;
        }
        i++;
    }
    p3[k] = 0;
    return f + 1;
}
int main() {
    int i;
    int nf = 0;
    for (i = 0; i < %d; i++) { nf = splitter(); }
    return nf - 4;
}`, splN),
		fmt.Sprintf(`
$line = "alpha beta gamma delta";
for ($i = 0; $i < %d; $i++) { @parts = split(/ /, $line); }
exit(scalar(@parts) - 4);
`, splN),
		fmt.Sprintf(`
set line "alpha beta gamma delta"
for {set i 0} {$i < %d} {incr i} { set parts [split $line " "] }
exit [expr [llength $parts] - 4]
`, splN))

	readN := n(60)
	read := mkMicro("read", "read a 4K file from a warm buffer cache", readN,
		fmt.Sprintf(`
char buf[4096];
int main() {
    int i;
    int n = 0;
    for (i = 0; i < %d; i++) {
        int fd = _open("readfile.bin", 0);
        n = _read(fd, buf, 4096);
        _close(fd);
    }
    return n - 4096;
}`, readN),
		fmt.Sprintf(`
for ($i = 0; $i < %d; $i++) {
    open(F, "readfile.bin");
    $data = <F>;
    close(F);
}
exit(length($data) - 4096);
`, readN),
		fmt.Sprintf(`
for {set i 0} {$i < %d} {incr i} {
    set f [open readfile.bin]
    set data [read $f 4096]
    close $f
}
exit [expr [string length $data] - 4096]
`, readN))

	return []Micro{assign, ifm, proc, concat, split, read}
}
