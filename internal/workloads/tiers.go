package workloads

import (
	"fmt"

	"interplab/internal/core"
	"interplab/internal/jvm"
	"interplab/internal/minicc"
	"interplab/internal/mipsi"
	"interplab/internal/perl"
	"interplab/internal/tcl"
)

// Tier is one optimization-tier combination of the §5 software ladder:
// quickening (operand specialization at first execution) and
// superinstructions (fused hot opcode pairs).  The zero Tier is the
// baseline 1996-level interpreter.
type Tier struct {
	Key            string
	Quicken, Super bool
}

// The tier combinations the opt-matrix experiment measures.
var (
	TierBaseline = Tier{Key: "baseline"}
	TierQuicken  = Tier{Key: "quicken", Quicken: true}
	TierSuper    = Tier{Key: "super", Super: true}
	TierBoth     = Tier{Key: "quicken+super", Quicken: true, Super: true}
)

// Variant returns the Program.Variant key for a tier cell.  Baseline
// cells are also keyed ("tier-baseline") so matrix measurements never
// collide with the plain Table 2 runs in the measurement cache.
func (t Tier) Variant() string { return "tier-" + t.Key }

// Tiers returns the combinations applicable to a system: MIPSI fuses but
// cannot quicken (an emulator has no operands to pre-resolve — guest
// instructions are already register-encoded), the JVM does both, and the
// two op-tree/string interpreters quicken but have no adjacent-opcode
// stream to fuse.
func Tiers(sys core.System) []Tier {
	switch sys {
	case core.SysMIPSI:
		return []Tier{TierBaseline, TierSuper}
	case core.SysJava:
		return []Tier{TierBaseline, TierQuicken, TierSuper, TierBoth}
	case core.SysPerl, core.SysTcl:
		return []Tier{TierBaseline, TierQuicken}
	}
	return []Tier{TierBaseline}
}

// tierBlocks returns the des problem size for a system at a scale,
// matching Suite's sizing.
func tierBlocks(sys core.System, scale float64) int {
	if scale <= 0 {
		scale = 1
	}
	base := 150
	switch sys {
	case core.SysJava:
		base = 260
	case core.SysPerl:
		base = 18
	case core.SysTcl:
		base = 6
	}
	n := int(float64(base) * scale)
	if n < 1 {
		n = 1
	}
	return n
}

// DESTiered returns the des workload for sys with the tier's knobs set.
// Guest-visible behavior is identical across tiers (the interpreters'
// differential tests pin this); only the cost signature moves.
func DESTiered(sys core.System, scale float64, t Tier) core.Program {
	blocks := tierBlocks(sys, scale)
	p := core.Program{
		System:  sys,
		Name:    "des",
		Desc:    "DES encryption and decryption",
		Variant: t.Variant(),
	}
	switch sys {
	case core.SysMIPSI:
		p.Run = func(ctx *core.Ctx) error {
			prog, err := minicc.CompileMIPS("des", minicc.WithStdlib(desMiniC(blocks)))
			if err != nil {
				return err
			}
			ctx.SetProgramSize(prog.SizeBytes())
			ip, err := mipsi.New(prog, ctx.OS, ctx.Image, ctx.Probe)
			if err != nil {
				return err
			}
			ip.Superinstructions = t.Super
			if err := ip.Run(0); err != nil {
				return err
			}
			if ip.M.ExitCode != 0 {
				return fmt.Errorf("guest exited with %d", ip.M.ExitCode)
			}
			return nil
		}
	case core.SysJava:
		p.Run = func(ctx *core.Ctx) error {
			mod, err := minicc.CompileJVM("des", minicc.WithStdlibJVM(desMiniC(blocks)))
			if err != nil {
				return err
			}
			ctx.SetProgramSize(mod.CodeBytes())
			if err := mod.Bind(jvm.OSNatives(ctx.OS)); err != nil {
				return err
			}
			vm, err := jvm.New(mod, ctx.Image, ctx.Probe)
			if err != nil {
				return err
			}
			vm.Quicken = t.Quicken
			vm.Superinstructions = t.Super
			ret, err := vm.Run("main", 0)
			if err != nil {
				return err
			}
			if ret != 0 {
				return fmt.Errorf("main returned %d", ret)
			}
			return nil
		}
	case core.SysPerl:
		p.Run = func(ctx *core.Ctx) error {
			src := desPerlSrc(blocks)
			ctx.SetProgramSize(len(src))
			ip, err := perl.New(src, ctx.OS, ctx.Image, ctx.Probe)
			if err != nil {
				return err
			}
			ip.Quicken = t.Quicken
			if err := ip.Run(); err != nil {
				return err
			}
			if ip.ExitCode() != 0 {
				return fmt.Errorf("script exited with %d", ip.ExitCode())
			}
			return nil
		}
	case core.SysTcl:
		p.Run = func(ctx *core.Ctx) error {
			src := desTclSrc(blocks)
			ctx.SetProgramSize(len(src))
			i := tcl.New(ctx.OS, ctx.Image, ctx.Probe)
			i.Quicken = t.Quicken
			if _, err := i.Eval(src); err != nil {
				return err
			}
			if i.ExitCode() != 0 {
				return fmt.Errorf("script exited with %d", i.ExitCode())
			}
			return nil
		}
	default:
		p.Run = func(*core.Ctx) error {
			return fmt.Errorf("workloads: no tiered des for system %s", sys)
		}
	}
	return p
}

// DESHotPairs returns the baseline des for sys with consecutive-dispatch
// pair counting enabled — the profiling run whose pair table justifies
// the superinstruction selections.  The distinct variant keeps its stats
// (which carry the pair table) out of the plain runs' cache entries.
func DESHotPairs(sys core.System, scale float64) core.Program {
	p := DESTiered(sys, scale, TierBaseline)
	inner := p.Run
	p.Variant = "hot-pairs"
	p.Run = func(ctx *core.Ctx) error {
		ctx.Probe.CountPairs(true)
		return inner(ctx)
	}
	return p
}
