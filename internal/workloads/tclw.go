package workloads

import "interplab/internal/core"

// The Tcl-analog macro suite: two text tools and five Tk programs, like
// the paper's tcllex/tcltags/demos/hanoi/ical/tkdiff/xf.

// tcllexTcl tokenizes C-ish source by scanning character classes.
func tcllexTcl() string {
	return `
set f [open prog.c]
set src [read $f]
close $f
set i 0
set n [string length $src]
set idents 0
set numbers 0
set puncts 0
set keywords 0
while {$i < $n} {
    set c [string index $src $i]
    if {[regexp {[ \t\n\r]} $c]} { incr i; continue }
    if {[regexp {[a-zA-Z_]} $c]} {
        set start $i
        while {$i < $n && [regexp {[a-zA-Z0-9_]} [string index $src $i]]} { incr i }
        set word [string range $src $start [expr $i - 1]]
        if {$word == "int" || $word == "if" || $word == "return" || $word == "include"} {
            incr keywords
        } else {
            incr idents
        }
        continue
    }
    if {[regexp {[0-9]} $c]} {
        while {$i < $n && [regexp {[0-9]} [string index $src $i]]} { incr i }
        incr numbers
        continue
    }
    incr puncts
    incr i
}
puts "$idents idents, $numbers numbers, $puncts puncts, $keywords keywords"
`
}

// tcltagsTcl generates an emacs-style tags list from function definitions.
func tcltagsTcl() string {
	return `
set f [open prog.c]
set lineno 0
set tags {}
while {[gets $f line] >= 0} {
    incr lineno
    if {[regexp {^int (\w+)\(} $line all name]} {
        lappend tags "$name:$lineno"
    }
    if {[regexp {^(\w+)\(\)} $line all name]} {
        lappend tags "$name:$lineno"
    }
}
close $f
set out [open tags w]
foreach t [lsort $tags] {
    puts $out $t
}
close $out
puts "[llength $tags] tags from $lineno lines"
`
}

// hanoiTkTcl is the Tk towers of hanoi: interpreted recursion, native
// redraws of the pegs on every move.
func hanoiTkTcl(disks int) string {
	return `
canvas .c -width 320 -height 200
pack .c
set moves 0
for {set p 0} {$p < 3} {incr p} { set height($p) 0 }
set n ` + itoa(disks) + `
for {set i 0} {$i < $n} {incr i} {
    set stack(0,$i) [expr $n - $i]
}
set height(0) $n

proc drawpeg {p} {
    global height stack n
    set x [expr 20 + $p * 100]
    .c create rectangle $x 20 [expr $x + 80] 180 -fill 1
    for {set i 0} {$i < $height($p)} {incr i} {
        set d $stack($p,$i)
        .c create rectangle [expr $x + 40 - $d * 5] [expr 160 - $i * 12] [expr $x + 40 + $d * 5] [expr 170 - $i * 12] -fill 3
    }
}

proc redraw {} {
    .c delete all
    drawpeg 0; drawpeg 1; drawpeg 2
    update
}

proc movedisk {from to} {
    global height stack moves
    set d $stack($from,[expr $height($from) - 1])
    incr height($from) -1
    set stack($to,$height($to)) $d
    incr height($to)
    incr moves
    redraw
}

proc hanoi {n from to via} {
    if {$n == 0} { return }
    hanoi [expr $n - 1] $from $via $to
    movedisk $from $to
    hanoi [expr $n - 1] $via $to $from
}

redraw
hanoi $n 0 2 1
puts $moves
if {$moves != [expr (1 << $n) - 1]} { error "wrong move count" }
`
}

// demosTkTcl builds a widget tour and interacts with it.
func demosTkTcl() string {
	return `
wm title . "Widget demo"
frame .menu -height 24
label .menu.title -text "Tk widget demonstration"
pack .menu
pack .menu.title
set clicked 0
frame .body -height 150
pack .body
foreach name {alpha beta gamma delta} {
    button .body.$name -text $name -command "incr clicked"
    pack .body.$name -side left
}
canvas .body.view -width 120 -height 100
pack .body.view -side left
for {set i 0} {$i < 12} {incr i} {
    .body.view create line 0 [expr $i * 8] 119 [expr 99 - $i * 8]
}
.body.view create text 10 50 -text "canvas"
update
.body.alpha invoke
.body.beta invoke
.body.gamma invoke
update
label .status -text "clicked $clicked"
pack .status
update
puts "$clicked clicks, [llength [winfo children .body]] widgets"
`
}

// icalTkTcl renders a month of appointments from a data file.
func icalTkTcl() string {
	return `
canvas .cal -width 320 -height 220
pack .cal
set f [open calendar.dat]
set count 0
while {[gets $f line] >= 0} {
    set parts [split $line " "]
    set m [lindex $parts 0]
    set d [lindex $parts 1]
    set what [lindex $parts 2]
    set appt($m,$d) $what
    incr count
}
close $f
# Draw a 7x5 grid with appointment marks for month 6.
for {set row 0} {$row < 5} {incr row} {
    for {set col 0} {$col < 7} {incr col} {
        set day [expr $row * 7 + $col + 1]
        set x [expr $col * 44 + 4]
        set y [expr $row * 40 + 4]
        .cal create rectangle $x $y [expr $x + 40] [expr $y + 36]
        .cal create text [expr $x + 2] [expr $y + 2] -text $day
        if {[info exists appt(6,$day)]} {
            .cal create rectangle [expr $x + 4] [expr $y + 20] [expr $x + 36] [expr $y + 32] -fill 4
        }
    }
}
update
set marked 0
foreach k [array names appt] {
    if {[regexp {^6,} $k]} { incr marked }
}
puts "$count appointments, $marked in june"
`
}

// tkdiffTcl compares two files and displays the differences.
func tkdiffTcl() string {
	return `
proc readlines {path} {
    set f [open $path]
    set ls {}
    while {[gets $f line] >= 0} { lappend ls $line }
    close $f
    return $ls
}
set a [readlines old.txt]
set b [readlines new.txt]
canvas .view -width 320 -height 200
pack .view
set na [llength $a]
set nb [llength $b]
set max $na
if {$nb > $max} { set max $nb }
set diffs 0
for {set i 0} {$i < $max} {incr i} {
    set la [lindex $a $i]
    set lb [lindex $b $i]
    set y [expr ($i % 24) * 8]
    if {[string compare $la $lb] != 0} {
        incr diffs
        .view create rectangle 0 $y 320 [expr $y + 7] -fill 5
        .view create text 2 $y -text [string range $lb 0 30]
    } else {
        .view create text 2 $y -text [string range $la 0 30]
    }
}
update
puts "$diffs differing lines of $max"
`
}

// xfTkTcl is an interface-builder workalike: it constructs a widget tree
// from a textual specification, then generates code back out of the tree.
func xfTkTcl() string {
	return `
set spec {
    frame .top -
    label .top.head "Generated interface"
    button .top.ok "OK"
    button .top.cancel "Cancel"
    frame .mid -
    label .mid.name "Name:"
    label .mid.value "Value:"
    canvas .mid.preview -
    frame .bottom -
    button .bottom.apply "Apply"
}
set created 0
set nspec [llength $spec]
for {set i 0} {$i < $nspec} {incr i 3} {
    set kind [lindex $spec $i]
    set path [lindex $spec [expr $i + 1]]
    set title [lindex $spec [expr $i + 2]]
    if {[string compare $kind frame] == 0} {
        frame $path -height 60
    } elseif {[string compare $kind canvas] == 0} {
        canvas $path -width 100 -height 50
    } else {
        $kind $path -text $title
    }
    pack $path
    incr created
}
update
# Generate code from the live widget tree.
set code ""
set blanks "                "
proc emit {path depth} {
    global code blanks
    set pad [string range $blanks 0 $depth]
    append code "$pad widget $path\n"
    foreach c [winfo children $path] {
        emit $c [expr $depth + 2]
    }
}
emit . 0
update
set lines [llength [split $code "\n"]]
puts "$created widgets, $lines generated lines"
`
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	digits := ""
	for n > 0 {
		digits = string(rune('0'+n%10)) + digits
		n /= 10
	}
	return digits
}

func tclProg(name, desc, src string, withTk bool) core.Program {
	return core.Program{
		System: core.SysTcl, Name: name, Desc: desc,
		Run: func(ctx *core.Ctx) error {
			installInputs(ctx)
			return runTcl(ctx, src, withTk)
		},
	}
}

// TclSuite returns the Table 2 Tcl programs.
func TclSuite(scale float64) []core.Program {
	disks := 5
	if scale < 0.3 {
		disks = 4
	}
	return []core.Program{
		tclProg("tcllex", "Lexical analysis tool", tcllexTcl(), false),
		tclProg("tcltags", "Generate emacs tags file", tcltagsTcl(), false),
		tclProg("demos", "Tk widget demos", demosTkTcl(), true),
		tclProg("hanoi", "Tk towers of Hanoi (5 disks)", hanoiTkTcl(disks), true),
		tclProg("ical", "Tk interactive calendar program", icalTkTcl(), true),
		tclProg("tkdiff", "Tk interface to diff", tkdiffTcl(), true),
		tclProg("xf", "Tk interface builder", xfTkTcl(), true),
	}
}
