package workloads

import (
	"fmt"

	"interplab/internal/core"
)

// The Perl-analog macro suite: the same kinds of text/file/server programs
// the paper pulled from public archives.

// a2psPerl converts ASCII text to PostScript-ish page output.
func a2psPerl() string {
	return `
open(IN, "text.in") || die "cannot open text.in";
open(OUT, ">text.ps");
print OUT "%!PS-Adobe-1.0\n";
$page = 1;
$line = 0;
$y = 760;
print OUT "%%Page: 1\n";
while ($l = <IN>) {
    chomp($l);
    # Escape PostScript parens (the replacement backslash is literal in
    # this dialect, so a single escape suffices).
    $l =~ s/\(/\(/g;
    $l =~ s/\)/\)/g;
    # Expand tabs.
    while (($i = index($l, "\t")) >= 0) {
        $pad = 8 - ($i % 8);
        $spaces = " " x $pad;
        $l = substr($l, 0, $i) . $spaces . substr($l, $i + 1);
    }
    if (length($l) > 72) {
        $l = substr($l, 0, 72);
    }
    print OUT "36 $y moveto ($l) show\n";
    $y -= 12;
    $line++;
    if ($y < 40) {
        $page++;
        $y = 760;
        print OUT "showpage\n%%Page: $page\n";
    }
}
print OUT "showpage\n%%Trailer\n";
close(IN);
close(OUT);
print "$page pages, $line lines\n";
`
}

// plexusPerl is an HTTP server's request loop over the virtual filesystem.
func plexusPerl() string {
	return `
%types = ("html", "text/html", "gif", "image/gif", "ps", "application/postscript");
%hits = ();
$served = 0;
$errors = 0;
$bytes = 0;
open(LOG, "requests.log") || die "no request log";
open(OUT, ">responses.log");
while ($req = <LOG>) {
    chomp($req);
    if ($req =~ m/^(\w+) (\S+) HTTP/) {
        $method = $1;
        $path = $2;
        if ($method ne "GET") {
            print OUT "501 $path\n";
            $errors++;
            next;
        }
        if ($path eq "/") { $path = "/index.html"; }
        $file = substr($path, 1);
        $ext = "";
        if ($file =~ m/\.(\w+)$/) { $ext = $1; }
        $type = $types{$ext};
        if (!defined($type)) { $type = "text/plain"; }
        if (open(DOC, $file)) {
            $body = "";
            while ($chunk = <DOC>) { $body .= $chunk; }
            close(DOC);
            $n = length($body);
            $bytes += $n;
            $served++;
            $hits{$path}++;
            print OUT "200 $type $n\n";
        } else {
            $errors++;
            print OUT "404 $path\n";
        }
    } else {
        $errors++;
        print OUT "400\n";
    }
}
close(LOG);
close(OUT);
print "$served served, $errors errors, $bytes bytes\n";
foreach $p (sort(keys(%hits))) { print "$p $hits{$p}\n"; }
`
}

// txt2htmlPerl marks up plain text as HTML, dominated by the match
// operator as in the paper's Figure 2.
func txt2htmlPerl() string {
	return `
open(IN, "text.in") || die "cannot open";
open(OUT, ">text.html");
print OUT "<html><body>\n";
$para = 0;
$inpara = 0;
$links = 0;
$nums = 0;
while ($l = <IN>) {
    chomp($l);
    if ($l =~ m/^\s*$/) {
        if ($inpara) { print OUT "</p>\n"; $inpara = 0; }
        next;
    }
    if (!$inpara) { print OUT "<p>"; $inpara = 1; $para++; }
    $l =~ s/&/&amp;/g;
    $l =~ s/</&lt;/g;
    if ($l =~ m/(\w+)\.(html|gif|ps)/) { $links++; }
    if ($l =~ m/\d+/) { $nums++; }
    $l =~ s/(interpreter|machine|cache)/<b>$1<\/b>/g;
    print OUT "$l\n";
}
if ($inpara) { print OUT "</p>\n"; }
print OUT "</body></html>\n";
close(IN);
close(OUT);
print "$para paragraphs, $links links, $nums numbered\n";
`
}

// weblintPerl checks HTML for structural defects.
func weblintPerl() string {
	return `
open(IN, "doc.html") || die "cannot open";
$line = 0;
$errors = 0;
%seen = ();
@stack = ();
$depth = 0;
while ($l = <IN>) {
    $line++;
    $rest = $l;
    while ($rest =~ m/<(\/?)(\w+)([^>]*)>/) {
        $close = $1;
        $tag = lc($2);
        $attrs = $3;
        $seen{$tag}++;
        $pos = index($rest, ">");
        $rest = substr($rest, $pos + 1);
        if ($tag eq "img" && !($attrs =~ m/alt=/)) {
            print "line $line: img without alt\n";
            $errors++;
        }
        if ($tag eq "br" || $tag eq "img" || $tag eq "hr") { next; }
        if ($close eq "") {
            push(@stack, $tag);
            $depth++;
        } else {
            if ($depth == 0) {
                print "line $line: unexpected </$tag>\n";
                $errors++;
            } else {
                $top = pop(@stack);
                $depth--;
                if ($top ne $tag) {
                    print "line $line: <$top> closed by </$tag>\n";
                    $errors++;
                }
            }
        }
    }
}
while ($depth > 0) {
    $top = pop(@stack);
    $depth--;
    print "unclosed <$top>\n";
    $errors++;
}
close(IN);
print "$errors problems in $line lines\n";
foreach $t (sort(keys(%seen))) { print "$t=$seen{$t} "; }
print "\n";
`
}

func perlProg(name, desc, src string) core.Program {
	return core.Program{
		System: core.SysPerl, Name: name, Desc: desc,
		Run: func(ctx *core.Ctx) error {
			installInputs(ctx)
			return runPerl(ctx, src)
		},
	}
}

// PerlSuite returns the Table 2 Perl programs.
func PerlSuite(scale float64) []core.Program {
	_ = fmt.Sprintf
	return []core.Program{
		perlProg("a2ps", "Convert ASCII file to postscript", a2psPerl()),
		perlProg("plexus", "HTTP server", plexusPerl()),
		perlProg("txt2html", "Convert text to HTML", txt2htmlPerl()),
		perlProg("weblint", "HTML syntax checker", weblintPerl()),
	}
}
