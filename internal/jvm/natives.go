package jvm

import (
	"interplab/internal/gfx"
	"interplab/internal/vfs"
)

// OSNatives returns the native-method bindings for the OS intrinsics of the
// mini-C JVM backend (_exit, _read, _write, _open, _close).  Buffer
// arguments are byte-array references; the vfs layer charges its own
// precompiled-code costs.
func OSNatives(os *vfs.OS) []*NativeFn {
	return []*NativeFn{
		{Name: "_exit", Arity: 1, F: func(vm *VM, a []int32) int32 {
			vm.Exited = true
			vm.ExitCode = a[0]
			return 0
		}},
		{Name: "_read", Arity: 3, F: func(vm *VM, a []int32) int32 {
			o, err := vm.Obj(a[1])
			if err != nil || o.Bytes == nil {
				return -1
			}
			n := int(a[2])
			if n > len(o.Bytes) {
				n = len(o.Bytes)
			}
			b, err := os.Read(int(a[0]), n)
			if err != nil {
				return -1
			}
			copy(o.Bytes, b)
			return int32(len(b))
		}},
		{Name: "_write", Arity: 3, F: func(vm *VM, a []int32) int32 {
			o, err := vm.Obj(a[1])
			if err != nil || o.Bytes == nil {
				return -1
			}
			n := int(a[2])
			if n > len(o.Bytes) {
				n = len(o.Bytes)
			}
			w, err := os.Write(int(a[0]), o.Bytes[:n])
			if err != nil {
				return -1
			}
			return int32(w)
		}},
		{Name: "_open", Arity: 2, F: func(vm *VM, a []int32) int32 {
			o, err := vm.Obj(a[0])
			if err != nil || o.Bytes == nil {
				return -1
			}
			// Path is the NUL-terminated prefix of the byte array.
			path := o.Bytes
			for i, c := range path {
				if c == 0 {
					path = path[:i]
					break
				}
			}
			fd, err := os.Open(string(path), a[1] != 0)
			if err != nil {
				return -1
			}
			return int32(fd)
		}},
		{Name: "_close", Arity: 1, F: func(vm *VM, a []int32) int32 {
			if err := os.Close(int(a[0])); err != nil {
				return -1
			}
			return 0
		}},
	}
}

// GfxNatives returns native bindings to the graphics runtime library — the
// AWT analog the paper's graphics-heavy Java benchmarks lean on.
func GfxNatives(d *gfx.Display) []*NativeFn {
	return []*NativeFn{
		{Name: "gfx_clear", Arity: 1, F: func(vm *VM, a []int32) int32 {
			d.Clear(byte(a[0]))
			return 0
		}},
		{Name: "gfx_plot", Arity: 3, F: func(vm *VM, a []int32) int32 {
			d.Plot(int(a[0]), int(a[1]), byte(a[2]))
			return 0
		}},
		{Name: "gfx_fillrect", Arity: 5, F: func(vm *VM, a []int32) int32 {
			d.FillRect(int(a[0]), int(a[1]), int(a[2]), int(a[3]), byte(a[4]))
			return 0
		}},
		{Name: "gfx_line", Arity: 5, F: func(vm *VM, a []int32) int32 {
			d.Line(int(a[0]), int(a[1]), int(a[2]), int(a[3]), byte(a[4]))
			return 0
		}},
		{Name: "gfx_text", Arity: 4, F: func(vm *VM, a []int32) int32 {
			o, err := vm.Obj(a[2])
			if err != nil || o.Bytes == nil {
				return -1
			}
			s := o.Bytes
			for i, c := range s {
				if c == 0 {
					s = s[:i]
					break
				}
			}
			d.Text(int(a[0]), int(a[1]), string(s), byte(a[3]))
			return 0
		}},
	}
}
