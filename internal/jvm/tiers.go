package jvm

// Optimization tiers: quickening (in-place operand specialization at first
// execution, à la Brunthaler's speculative staging) and superinstructions
// (static fusion of hot opcode pairs).  Both are semantically transparent —
// guest-visible behavior is byte-identical to the baseline interpreter —
// and change only the dispatch and execution cost signature, which is
// exactly what the opt-matrix experiment measures.

// fusedPairs lists the statically fused opcode pairs.  Selection comes
// from the profile layer's hot-pair counts (atom.Probe.CountPairs over the
// des workload; the opt-matrix experiment's hot-pair report reproduces the
// table): iconst+iand, iload+iconst, istore+iload, getstatic+iload,
// iload+iload and iand+istore are the hottest pairs whose first half
// always falls through.  That constraint is load-bearing: the first opcode
// of a fused pair must be non-control (no branch, call, or return), so the
// second half is always reached and a pair is always one command.
var fusedPairs = []struct {
	a, b  Opcode
	fused Opcode
}{
	{OpIload, OpIconst, OpFusedIloadIconst},
	{OpIconst, OpIand, OpFusedIconstIand},
	{OpIand, OpIstore, OpFusedIandIstore},
	{OpIstore, OpIload, OpFusedIstoreIload},
	{OpGetStatic, OpIload, OpFusedGetstaticIload},
	{OpIload, OpIload, OpFusedIloadIload},
}

// fusedSpec maps a fused opcode to its two halves.
var fusedSpec = func() [NumOpcodes]struct{ a, b Opcode } {
	var t [NumOpcodes]struct{ a, b Opcode }
	for _, fp := range fusedPairs {
		t[fp.fused] = struct{ a, b Opcode }{fp.a, fp.b}
	}
	return t
}()

// fuseOf maps an adjacent opcode pair to its fused form.
var fuseOf = func() map[[2]Opcode]Opcode {
	m := make(map[[2]Opcode]Opcode, len(fusedPairs))
	for _, fp := range fusedPairs {
		m[[2]Opcode{fp.a, fp.b}] = fp.fused
	}
	return m
}()

// ensureTiers prepares the enabled optimization tiers before the first
// Step.  Handler routines and op names for the quick and fused forms join
// the instrumentation image here — in fixed opcode order, so the layout is
// deterministic per knob combination — and the superinstruction tier runs
// its static fusion pass.  With both tiers off this is a no-op and the
// baseline image is untouched.
func (vm *VM) ensureTiers() {
	if vm.tiersReady {
		return
	}
	vm.tiersReady = true
	if vm.p != nil && vm.img != nil {
		if vm.Quicken {
			vm.rQuicken = vm.img.Routine("jvm.quicken", 48)
			for op := int(OpIconstQ); op <= int(OpInvokeStaticQ); op++ {
				o := Opcode(op)
				// Specialized handlers are leaner than their generic
				// originals: resolution happened once, at rewrite time.
				size := 10
				if o == OpInvokeStaticQ {
					size = 30
				}
				vm.handlers[op] = vm.img.Routine("jvm.op."+o.String(), size)
				vm.opIDs[op] = vm.p.OpName(o.String())
			}
		}
		if vm.Superinstructions {
			vm.rFuse = vm.img.Routine("jvm.fuse", 64)
			for op := int(OpFusedIloadIconst); op < NumOpcodes; op++ {
				o := Opcode(op)
				spec := fusedSpec[op]
				// A fused handler's body is both halves' bodies plus
				// glue: superinstructions trade instruction-cache
				// footprint for dispatch — part of the signature the
				// opt-matrix sweeps measure.
				size := baseHandlerSize(spec.a) + baseHandlerSize(spec.b) + 6
				vm.handlers[op] = vm.img.Routine("jvm.op."+o.String(), size)
				vm.opIDs[op] = vm.p.OpName(o.String())
			}
		}
	}
	if vm.Superinstructions {
		vm.fuseAll()
	}
}

// baseHandlerSize mirrors the baseline handler footprints New registers.
func baseHandlerSize(o Opcode) int {
	switch o.Category() {
	case "call":
		return 40
	case "array", "field":
		return 28
	case "native":
		return 36
	}
	return 14
}

// fuseAll rewrites every function's code, replacing the first byte of each
// fusedPairs occurrence (greedy, left to right, never overlapping).  Only
// that one byte changes: operands and the second opcode stay in place, so
// a branch into either original position still executes correctly — the
// second half simply runs as a standalone command when entered directly.
// The pass is charged to the startup phase, like class loading.
func (vm *VM) fuseAll() {
	p := vm.p
	if p != nil {
		p.SetStartup(true)
		p.Call(vm.rFuse)
	}
	for fi, fn := range vm.Mod.Funcs {
		pos := 0
		for pos < len(fn.Code) {
			op := Opcode(fn.Code[pos])
			next := pos + 1 + op.OperandBytes()
			if p != nil {
				p.Exec(vm.rFuse, costFusePerSite)
			}
			if next < len(fn.Code) {
				pair := [2]Opcode{op, Opcode(fn.Code[next])}
				if fop, ok := fuseOf[pair]; ok {
					fn.Code[pos] = byte(fop)
					vm.FusedSites++
					if p != nil {
						p.Store(vm.codeReg.Addr(vm.codeOff[fi] + uint32(pos)))
					}
					// Skip the whole pair: fusions never overlap.
					next += 1 + pair[1].OperandBytes()
				}
			}
			pos = next
		}
	}
	if p != nil {
		p.Ret()
		p.SetStartup(false)
	}
}

// maybeQuicken rewrites the generic opcode at (fi, pc) to its quick form
// after its first execution.  Quick forms have no quick form and fused
// bytes are not in the quick table, so a site is rewritten at most once —
// re-executing a quickened site never rewrites again (the idempotence the
// tier tests pin).
func (vm *VM) maybeQuicken(fi int, fn *Function, pc int, op Opcode) {
	q, ok := op.Quick()
	if !ok {
		return
	}
	fn.Code[pc] = byte(q)
	vm.QuickenRewrites++
	if vm.p != nil {
		// The one-time specialization cost: re-resolve the operand and
		// store the rewritten opcode into the code region.
		vm.p.Exec(vm.rQuicken, costQuicken)
		vm.p.Store(vm.codeReg.Addr(vm.codeOff[fi] + uint32(pc)))
	}
}

// stepFused dispatches one fused superinstruction: one command and one
// trip through the dispatch loop, then both halves execute inside the
// fused handler's body.
func (vm *VM) stepFused(f *jframe, fn *Function, fop Opcode) error {
	spec := fusedSpec[fop]
	vm.Steps++
	p := vm.p
	if p != nil {
		p.BeginCommand(vm.opIDs[fop])
		dispatch := costDispatch
		if vm.Threaded {
			dispatch = 4
		}
		// One dispatch covers the pair; the first half's operand decode
		// happens here, the second half's inside the handler below.
		p.Exec(vm.rDispatch, dispatch+1+spec.a.OperandBytes())
		p.Load(vm.codeReg.Addr(vm.codeOff[f.fn] + uint32(f.pc)))
		p.BeginExecute()
		vm.fusedH = vm.handlers[fop]
	}
	err := vm.exec(f, fn, spec.a, fn.Code[f.pc+1:])
	if err == nil {
		// The first half is non-control, so it fell through and f.pc now
		// sits on the second half.  Re-read the byte rather than trusting
		// spec.b: a branch-targeted second half may have been quickened
		// under the quick+super combination.
		pos := f.pc
		op2 := Opcode(fn.Code[pos])
		if p != nil {
			p.Exec(vm.fusedH, op2.OperandBytes())
		}
		err = vm.exec(f, fn, op2, fn.Code[pos+1:])
	}
	vm.fusedH = nil
	if p != nil {
		p.EndCommand()
	}
	return err
}
