package jvm

import (
	"encoding/binary"
	"fmt"
)

// Function is one compiled bytecode method.
type Function struct {
	Name    string
	NArgs   int
	NLocals int // including args
	Code    []byte
}

// NativeFn is an entry in the native-method registry: precompiled code the
// interpreter calls out to (runtime library, graphics, OS).
type NativeFn struct {
	Name  string
	Arity int
	// F receives the VM (for heap access) and the argument values and
	// returns the result (ignored for void natives).
	F func(vm *VM, args []int32) int32
}

// Static is one static slot (a compiled global scalar, or a reference to a
// statically allocated array object).
type Static struct {
	Name string
	Init int32
	// Array describes a statically allocated array: ElemSize 0 means a
	// scalar slot.
	ElemSize int // 0, 1 (byte array) or 4 (int array)
	Len      int
	InitData []byte // initial bytes for byte arrays
	InitInts []int32
}

// Module is a compiled program: the analog of a set of class files.
type Module struct {
	Name    string
	Funcs   []*Function
	Natives []*NativeFn
	Statics []*Static
	Consts  [][]byte // constant pool: string/byte-array literals
}

// FuncIndex returns the index of a named function.
func (m *Module) FuncIndex(name string) (int, error) {
	for i, f := range m.Funcs {
		if f.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("jvm: no function %q", name)
}

// NativeIndex returns the index of a named native method.
func (m *Module) NativeIndex(name string) (int, error) {
	for i, n := range m.Natives {
		if n.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("jvm: no native %q", name)
}

// CodeBytes returns the total bytecode size — the module's Table 2 "Size".
func (m *Module) CodeBytes() int {
	n := 0
	for _, f := range m.Funcs {
		n += len(f.Code)
	}
	for _, c := range m.Consts {
		n += len(c)
	}
	return n
}

// Asm is a little bytecode assembler for building Functions, used by the
// compiler backend and by tests.
type Asm struct {
	code   []byte
	labels map[string]int
	refs   []asmRef
}

type asmRef struct {
	at    int // offset of the opcode byte
	opnd  int // offset of the operand
	label string
}

// NewAsm returns an empty assembler.
func NewAsm() *Asm { return &Asm{labels: make(map[string]int)} }

// Label binds name to the current position.
func (a *Asm) Label(name string) *Asm {
	a.labels[name] = len(a.code)
	return a
}

// Op emits a plain opcode.
func (a *Asm) Op(op Opcode) *Asm {
	a.code = append(a.code, byte(op))
	return a
}

// I32 emits an opcode with a 4-byte operand (iconst).
func (a *Asm) I32(op Opcode, v int32) *Asm {
	a.code = append(a.code, byte(op), 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(a.code[len(a.code)-4:], uint32(v))
	return a
}

// U8 emits an opcode with a 1-byte operand (iload/istore).
func (a *Asm) U8(op Opcode, v int) *Asm {
	a.code = append(a.code, byte(op), byte(v))
	return a
}

// Iinc emits iinc with slot and delta.
func (a *Asm) Iinc(slot int, delta int) *Asm {
	a.code = append(a.code, byte(OpIinc), byte(slot), byte(int8(delta)))
	return a
}

// U16 emits an opcode with a 2-byte operand (invoke/static/ldc).
func (a *Asm) U16(op Opcode, v int) *Asm {
	a.code = append(a.code, byte(op), byte(v), byte(v>>8))
	return a
}

// Br emits a branch to a label (resolved by Finish).
func (a *Asm) Br(op Opcode, label string) *Asm {
	a.refs = append(a.refs, asmRef{at: len(a.code), opnd: len(a.code) + 1, label: label})
	a.code = append(a.code, byte(op), 0, 0)
	return a
}

// Finish resolves labels and returns the bytecode.
func (a *Asm) Finish() ([]byte, error) {
	for _, r := range a.refs {
		target, ok := a.labels[r.label]
		if !ok {
			return nil, fmt.Errorf("jvm: undefined label %q", r.label)
		}
		off := target - r.at
		if off < -32768 || off > 32767 {
			return nil, fmt.Errorf("jvm: branch to %q out of range", r.label)
		}
		binary.LittleEndian.PutUint16(a.code[r.opnd:], uint16(int16(off)))
	}
	return a.code, nil
}

// Bind wires native-method implementations into the module by name.  The
// compiler emits natives with nil implementations; the runtime (OS,
// graphics, print helpers) provides the bodies before execution.  Natives
// with no matching implementation are left unbound (see Unbound); an arity
// mismatch is an error.
func (m *Module) Bind(impls []*NativeFn) error {
	byName := make(map[string]*NativeFn, len(impls))
	for _, im := range impls {
		byName[im.Name] = im
	}
	for _, n := range m.Natives {
		if n.F != nil {
			continue
		}
		im, ok := byName[n.Name]
		if !ok {
			continue
		}
		if im.Arity != n.Arity {
			return fmt.Errorf("jvm: native %q arity mismatch: declared %d, implemented %d", n.Name, n.Arity, im.Arity)
		}
		n.F = im.F
	}
	return nil
}

// Unbound lists natives still lacking an implementation.
func (m *Module) Unbound() []string {
	var out []string
	for _, n := range m.Natives {
		if n.F == nil {
			out = append(out, n.Name)
		}
	}
	return out
}
