package jvm

import (
	"strings"
	"testing"

	"interplab/internal/atom"
	"interplab/internal/trace"
	"interplab/internal/vfs"
)

// buildFn assembles one function.
func buildFn(t *testing.T, name string, nargs, nlocals int, build func(a *Asm)) *Function {
	t.Helper()
	a := NewAsm()
	build(a)
	code, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return &Function{Name: name, NArgs: nargs, NLocals: nlocals, Code: code}
}

func TestOpcodeMetadata(t *testing.T) {
	if OpIconst.OperandBytes() != 4 || OpIload.OperandBytes() != 1 ||
		OpGoto.OperandBytes() != 2 || OpIadd.OperandBytes() != 0 || OpIinc.OperandBytes() != 2 {
		t.Error("operand sizes wrong")
	}
	if !OpIfeq.IsBranch() || !OpIfIcmpge.IsBranch() || OpGoto.IsBranch() || OpIadd.IsBranch() {
		t.Error("IsBranch wrong")
	}
	if OpIload.Category() != "st_load" || OpInvokeNative.Category() != "native" ||
		OpGetStatic.Category() != "field" || OpIadd.Category() != "alu" {
		t.Error("categories wrong")
	}
	if OpIconst.String() != "iconst" || OpIfIcmplt.String() != "if_icmplt" {
		t.Error("names wrong")
	}
}

func TestArithmeticLoop(t *testing.T) {
	// sum = 0; for i = 10 downto 1: sum += i; return sum
	main := buildFn(t, "main", 0, 2, func(a *Asm) {
		a.I32(OpIconst, 0).U8(OpIstore, 0) // sum
		a.I32(OpIconst, 10).U8(OpIstore, 1)
		a.Label("loop")
		a.U8(OpIload, 0).U8(OpIload, 1).Op(OpIadd).U8(OpIstore, 0)
		a.Iinc(1, -1)
		a.U8(OpIload, 1).Br(OpIfgt, "loop")
		a.U8(OpIload, 0).Op(OpIreturn)
	})
	vm, err := New(&Module{Funcs: []*Function{main}}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ret, err := vm.Run("main", 0)
	if err != nil {
		t.Fatal(err)
	}
	if ret != 55 {
		t.Errorf("result = %d, want 55", ret)
	}
}

func TestAluOps(t *testing.T) {
	cases := []struct {
		op   Opcode
		a, b int32
		want int32
	}{
		{OpIadd, 7, 3, 10},
		{OpIsub, 7, 3, 4},
		{OpImul, 7, 3, 21},
		{OpIdiv, 7, 3, 2},
		{OpIdiv, -7, 3, -2},
		{OpIrem, 7, 3, 1},
		{OpIand, 6, 3, 2},
		{OpIor, 6, 3, 7},
		{OpIxor, 6, 3, 5},
		{OpIshl, 3, 2, 12},
		{OpIshr, -8, 1, -4},
		{OpIushr, -8, 1, 0x7ffffffc},
	}
	for _, c := range cases {
		main := buildFn(t, "main", 0, 0, func(a *Asm) {
			a.I32(OpIconst, c.a).I32(OpIconst, c.b).Op(c.op).Op(OpIreturn)
		})
		vm, _ := New(&Module{Funcs: []*Function{main}}, nil, nil)
		ret, err := vm.Run("main", 0)
		if err != nil {
			t.Fatalf("%v: %v", c.op, err)
		}
		if ret != c.want {
			t.Errorf("%v(%d,%d) = %d, want %d", c.op, c.a, c.b, ret, c.want)
		}
	}
}

func TestDivisionByZero(t *testing.T) {
	main := buildFn(t, "main", 0, 0, func(a *Asm) {
		a.I32(OpIconst, 1).I32(OpIconst, 0).Op(OpIdiv).Op(OpIreturn)
	})
	vm, _ := New(&Module{Funcs: []*Function{main}}, nil, nil)
	if _, err := vm.Run("main", 0); err == nil || !strings.Contains(err.Error(), "zero") {
		t.Errorf("expected division-by-zero error, got %v", err)
	}
}

func TestCallsAndRecursion(t *testing.T) {
	// fact(n): n < 2 ? 1 : n * fact(n-1)
	fact := buildFn(t, "fact", 1, 1, func(a *Asm) {
		a.U8(OpIload, 0).I32(OpIconst, 2).Br(OpIfIcmplt, "base")
		a.U8(OpIload, 0)
		a.U8(OpIload, 0).I32(OpIconst, 1).Op(OpIsub)
		a.U16(OpInvokeStatic, 1)
		a.Op(OpImul).Op(OpIreturn)
		a.Label("base")
		a.I32(OpIconst, 1).Op(OpIreturn)
	})
	main := buildFn(t, "main", 0, 0, func(a *Asm) {
		a.I32(OpIconst, 6).U16(OpInvokeStatic, 1).Op(OpIreturn)
	})
	vm, _ := New(&Module{Funcs: []*Function{main, fact}}, nil, nil)
	ret, err := vm.Run("main", 0)
	if err != nil {
		t.Fatal(err)
	}
	if ret != 720 {
		t.Errorf("fact(6) = %d, want 720", ret)
	}
}

func TestStaticsAndArrays(t *testing.T) {
	mod := &Module{
		Statics: []*Static{
			{Name: "counter", Init: 5},
			{Name: "table", ElemSize: 4, Len: 8, InitInts: []int32{1, 2, 3}},
			{Name: "text", ElemSize: 1, Len: 4, InitData: []byte("ab")},
		},
	}
	main := buildFn(t, "main", 0, 0, func(a *Asm) {
		// counter += table[2] + text[1]  ->  5 + 3 + 'b'
		a.U16(OpGetStatic, 0)
		a.U16(OpGetStatic, 1).I32(OpIconst, 2).Op(OpIaload)
		a.Op(OpIadd)
		a.U16(OpGetStatic, 2).I32(OpIconst, 1).Op(OpBaload)
		a.Op(OpIadd)
		a.U16(OpPutStatic, 0)
		a.U16(OpGetStatic, 0).Op(OpIreturn)
	})
	mod.Funcs = []*Function{main}
	vm, _ := New(mod, nil, nil)
	ret, err := vm.Run("main", 0)
	if err != nil {
		t.Fatal(err)
	}
	if ret != 5+3+'b' {
		t.Errorf("result = %d, want %d", ret, 5+3+'b')
	}
}

func TestDynamicArrays(t *testing.T) {
	main := buildFn(t, "main", 0, 1, func(a *Asm) {
		a.I32(OpIconst, 10).Op(OpNewArrayI).U8(OpIstore, 0)
		// a[3] = 99
		a.U8(OpIload, 0).I32(OpIconst, 3).I32(OpIconst, 99).Op(OpIastore)
		// return a[3] + arraylength(a)
		a.U8(OpIload, 0).I32(OpIconst, 3).Op(OpIaload)
		a.U8(OpIload, 0).Op(OpArrayLen)
		a.Op(OpIadd).Op(OpIreturn)
	})
	vm, _ := New(&Module{Funcs: []*Function{main}}, nil, nil)
	ret, err := vm.Run("main", 0)
	if err != nil {
		t.Fatal(err)
	}
	if ret != 109 {
		t.Errorf("result = %d, want 109", ret)
	}
}

func TestArrayBounds(t *testing.T) {
	main := buildFn(t, "main", 0, 1, func(a *Asm) {
		a.I32(OpIconst, 4).Op(OpNewArrayI).U8(OpIstore, 0)
		a.U8(OpIload, 0).I32(OpIconst, 4).Op(OpIaload).Op(OpIreturn)
	})
	vm, _ := New(&Module{Funcs: []*Function{main}}, nil, nil)
	if _, err := vm.Run("main", 0); err == nil || !strings.Contains(err.Error(), "bounds") {
		t.Errorf("expected bounds error, got %v", err)
	}
}

func TestObjectsFields(t *testing.T) {
	main := buildFn(t, "main", 0, 1, func(a *Asm) {
		a.U16(OpNew, 3).U8(OpIstore, 0)
		// o.f1 = 42
		a.U8(OpIload, 0).I32(OpIconst, 42).U16(OpPutField, 1)
		// return o.f1
		a.U8(OpIload, 0).U16(OpGetField, 1).Op(OpIreturn)
	})
	vm, _ := New(&Module{Funcs: []*Function{main}}, nil, nil)
	ret, err := vm.Run("main", 0)
	if err != nil {
		t.Fatal(err)
	}
	if ret != 42 {
		t.Errorf("field round trip = %d, want 42", ret)
	}
}

func TestNullReference(t *testing.T) {
	main := buildFn(t, "main", 0, 0, func(a *Asm) {
		a.I32(OpIconst, 0).U16(OpGetField, 0).Op(OpIreturn)
	})
	vm, _ := New(&Module{Funcs: []*Function{main}}, nil, nil)
	if _, err := vm.Run("main", 0); err == nil {
		t.Error("expected null-reference error")
	}
}

func TestNativesAndLdc(t *testing.T) {
	osys := vfs.New()
	mod := &Module{
		Consts:  [][]byte{[]byte("hi\n")},
		Natives: []*NativeFn{{Name: "_write", Arity: 3}},
	}
	main := buildFn(t, "main", 0, 0, func(a *Asm) {
		a.I32(OpIconst, 1).U16(OpLdc, 0).I32(OpIconst, 3).U16(OpInvokeNative, 0).Op(OpIreturn)
	})
	mod.Funcs = []*Function{main}
	if err := mod.Bind(OSNatives(osys)); err != nil {
		t.Fatal(err)
	}
	vm, _ := New(mod, nil, nil)
	ret, err := vm.Run("main", 0)
	if err != nil {
		t.Fatal(err)
	}
	if ret != 3 || osys.Stdout.String() != "hi\n" {
		t.Errorf("write = %d, stdout = %q", ret, osys.Stdout.String())
	}
}

func TestBindErrors(t *testing.T) {
	mod := &Module{Natives: []*NativeFn{{Name: "nosuch", Arity: 1}}}
	if err := mod.Bind(nil); err != nil {
		t.Errorf("partial binding is allowed: %v", err)
	}
	if u := mod.Unbound(); len(u) != 1 || u[0] != "nosuch" {
		t.Errorf("Unbound = %v, want [nosuch]", u)
	}
	mod = &Module{Natives: []*NativeFn{{Name: "_close", Arity: 3}}}
	if err := mod.Bind(OSNatives(vfs.New())); err == nil {
		t.Error("arity mismatch must fail")
	}
}

func TestStackUnderflow(t *testing.T) {
	main := buildFn(t, "main", 0, 0, func(a *Asm) {
		a.Op(OpIadd).Op(OpIreturn)
	})
	vm, _ := New(&Module{Funcs: []*Function{main}}, nil, nil)
	if _, err := vm.Run("main", 0); err == nil || !strings.Contains(err.Error(), "underflow") {
		t.Errorf("expected underflow, got %v", err)
	}
}

func TestStepBudget(t *testing.T) {
	main := buildFn(t, "main", 0, 0, func(a *Asm) {
		a.Label("x").Br(OpGoto, "x")
	})
	vm, _ := New(&Module{Funcs: []*Function{main}}, nil, nil)
	if _, err := vm.Run("main", 500); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Errorf("expected budget error, got %v", err)
	}
}

func TestInstrumentationBands(t *testing.T) {
	// Table 2: Java fetch/decode ≈ 16 instructions per bytecode, nearly
	// fixed; §3.3: each stack reference ~2 instructions.
	main := buildFn(t, "main", 0, 2, func(a *Asm) {
		a.I32(OpIconst, 0).U8(OpIstore, 0)
		a.I32(OpIconst, 2000).U8(OpIstore, 1)
		a.Label("loop")
		a.U8(OpIload, 0).U8(OpIload, 1).Op(OpIadd).U8(OpIstore, 0)
		a.Iinc(1, -1)
		a.U8(OpIload, 1).Br(OpIfgt, "loop")
		a.U8(OpIload, 0).Op(OpIreturn)
	})
	img := atom.NewImage()
	p := atom.NewProbe(img, trace.Discard)
	vm, err := New(&Module{Funcs: []*Function{main}}, img, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.Run("main", 0); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Commands != vm.Steps {
		t.Fatalf("commands %d != steps %d", st.Commands, vm.Steps)
	}
	fd, ex := st.InstructionsPerCommand()
	if fd < 12 || fd > 20 {
		t.Errorf("fetch/decode per bytecode = %.1f, want ~16", fd)
	}
	if ex < 2 || ex > 25 {
		t.Errorf("execute per bytecode = %.1f implausible", ex)
	}
	stk, ok := st.Region("java.stack")
	if !ok || stk.Accesses == 0 {
		t.Fatal("stack region must be tracked")
	}
	per := stk.PerAccess()
	if per < 1 || per > 4 {
		t.Errorf("per-stack-reference cost = %.2f, want ~2", per)
	}
}

func TestFieldAccessCost(t *testing.T) {
	// §3.3: each object field reference ~11 instructions.
	mod := &Module{Statics: []*Static{{Name: "x"}}}
	main := buildFn(t, "main", 0, 0, func(a *Asm) {
		a.I32(OpIconst, 1000).U8(OpIstore+0, 0) // istore needs a local... use statics loop instead
		a.Op(OpIreturn)
	})
	_ = main
	loop := buildFn(t, "main", 0, 1, func(a *Asm) {
		a.I32(OpIconst, 500).U8(OpIstore, 0)
		a.Label("l")
		a.U16(OpGetStatic, 0).I32(OpIconst, 1).Op(OpIadd).U16(OpPutStatic, 0)
		a.Iinc(0, -1)
		a.U8(OpIload, 0).Br(OpIfgt, "l")
		a.U16(OpGetStatic, 0).Op(OpIreturn)
	})
	mod.Funcs = []*Function{loop}
	img := atom.NewImage()
	p := atom.NewProbe(img, trace.Discard)
	vm, err := New(mod, img, p)
	if err != nil {
		t.Fatal(err)
	}
	ret, err := vm.Run("main", 0)
	if err != nil {
		t.Fatal(err)
	}
	if ret != 500 {
		t.Fatalf("result = %d, want 500", ret)
	}
	st := p.Stats()
	fld, ok := st.Region("java.field")
	if !ok || fld.Accesses < 1000 {
		t.Fatalf("field accesses = %+v, want >= 1000", fld)
	}
	per := fld.PerAccess()
	if per < 4 || per > 16 {
		t.Errorf("per-field-reference cost = %.2f, want ~11", per)
	}
}

func TestThreadedDispatch(t *testing.T) {
	mk := func(threaded bool) float64 {
		main := buildFn(t, "main", 0, 2, func(a *Asm) {
			a.I32(OpIconst, 0).U8(OpIstore, 0)
			a.I32(OpIconst, 500).U8(OpIstore, 1)
			a.Label("loop")
			a.U8(OpIload, 0).U8(OpIload, 1).Op(OpIadd).U8(OpIstore, 0)
			a.Iinc(1, -1)
			a.U8(OpIload, 1).Br(OpIfgt, "loop")
			a.U8(OpIload, 0).Op(OpIreturn)
		})
		img := atom.NewImage()
		p := atom.NewProbe(img, trace.Discard)
		vm, err := New(&Module{Funcs: []*Function{main}}, img, p)
		if err != nil {
			t.Fatal(err)
		}
		vm.Threaded = threaded
		if _, err := vm.Run("main", 0); err != nil {
			t.Fatal(err)
		}
		fd, _ := p.Stats().InstructionsPerCommand()
		return fd
	}
	if sw, thr := mk(false), mk(true); thr >= sw {
		t.Errorf("threaded fd/cmd (%.1f) must beat switch (%.1f)", thr, sw)
	}
}

func TestLdcInterning(t *testing.T) {
	mod := &Module{Consts: [][]byte{[]byte("abc")}}
	main := buildFn(t, "main", 0, 2, func(a *Asm) {
		a.U16(OpLdc, 0).U8(OpIstore, 0)
		a.U16(OpLdc, 0).U8(OpIstore, 1)
		// Equal references: ref1 - ref0 == 0.
		a.U8(OpIload, 1).U8(OpIload, 0).Op(OpIsub).Op(OpIreturn)
	})
	mod.Funcs = []*Function{main}
	vm, _ := New(mod, nil, nil)
	ret, err := vm.Run("main", 0)
	if err != nil {
		t.Fatal(err)
	}
	if ret != 0 {
		t.Errorf("ldc must intern: refs differ by %d", ret)
	}
}

func TestStackShuffles(t *testing.T) {
	main := buildFn(t, "main", 0, 0, func(a *Asm) {
		a.I32(OpIconst, 7).I32(OpIconst, 3)
		a.Op(OpSwap)                         // 3 7
		a.Op(OpIsub)                         // 3 - 7 = -4
		a.Op(OpDup).Op(OpIadd).Op(OpIreturn) // -8
	})
	vm, _ := New(&Module{Funcs: []*Function{main}}, nil, nil)
	ret, err := vm.Run("main", 0)
	if err != nil {
		t.Fatal(err)
	}
	if ret != -8 {
		t.Errorf("ret = %d, want -8", ret)
	}
}

func TestPopAndNop(t *testing.T) {
	main := buildFn(t, "main", 0, 0, func(a *Asm) {
		a.Op(OpNop)
		a.I32(OpIconst, 9).I32(OpIconst, 1).Op(OpPop).Op(OpIreturn)
	})
	vm, _ := New(&Module{Funcs: []*Function{main}}, nil, nil)
	ret, err := vm.Run("main", 0)
	if err != nil || ret != 9 {
		t.Errorf("ret = %d, %v", ret, err)
	}
}
