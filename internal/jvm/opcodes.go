// Package jvm is the laboratory's Java: a stack-based bytecode virtual
// machine in the style of the JVM 1.0 interpreter the paper measured.
//
// Programs are compiled offline (by internal/minicc's JVM backend) into
// bytecode functions over a constant pool, exactly as Java source was
// compiled to class files.  The interpreter executes one bytecode per trip
// through its dispatch loop with a small, nearly fixed fetch/decode cost
// (~16 native instructions in the paper's Table 2), stores temporaries on
// an operand stack (~2 instructions per stack reference, §3.3), accesses
// statics and object fields through constant-pool indices (~11
// instructions per field reference), and reaches precompiled code through
// a native-method registry — the paper's key Java characteristic.
package jvm

import "fmt"

// Opcode is a bytecode operation.
type Opcode uint8

// The bytecode set.  Operand encodings are noted per opcode; multi-byte
// operands are little-endian.
const (
	OpNop Opcode = iota

	// Constants.
	OpIconst // i32 operand: push constant
	OpLdc    // u16 operand: push reference to constant-pool byte array

	// Local variables (the "stack data" of §3.3).
	OpIload  // u8 operand: push local
	OpIstore // u8 operand: pop to local
	OpIinc   // u8 index, i8 delta

	// Operand-stack shuffling.
	OpDup
	OpPop
	OpSwap

	// Arithmetic.
	OpIadd
	OpIsub
	OpImul
	OpIdiv
	OpIrem
	OpIneg
	OpIand
	OpIor
	OpIxor
	OpIshl
	OpIshr
	OpIushr

	// Control transfer; i16 operand: branch offset relative to the
	// opcode's own address.
	OpGoto
	OpIfeq
	OpIfne
	OpIflt
	OpIfle
	OpIfgt
	OpIfge
	OpIfIcmpeq
	OpIfIcmpne
	OpIfIcmplt
	OpIfIcmple
	OpIfIcmpgt
	OpIfIcmpge

	// Calls.
	OpInvokeStatic // u16 function index
	OpInvokeNative // u16 native index
	OpReturn
	OpIreturn

	// Statics (the "object fields" of §3.3 for compiled mini-C globals).
	OpGetStatic // u16 static index
	OpPutStatic // u16 static index

	// Objects and fields.
	OpNew      // u16 field count: push new object ref
	OpGetField // u16 field index: pop ref, push field
	OpPutField // u16 field index: pop value, pop ref

	// Arrays.
	OpNewArrayI // pop length, push int-array ref
	OpNewArrayB // pop length, push byte-array ref
	OpIaload    // pop index, ref; push element
	OpIastore   // pop value, index, ref
	OpBaload
	OpBastore
	OpArrayLen

	// --- optimization-tier extension ---------------------------------
	//
	// Everything below models the interpreter after it climbs the §5
	// optimization tiers; none of it is dispatched (or registered with
	// the instrumentation image) unless VM.Quicken or
	// VM.Superinstructions is set, so the 1996-level baseline above is
	// untouched.

	// Quickened forms (Brunthaler-style operand specialization): the
	// generic opcode is rewritten in place at its first execution, its
	// operand pre-resolved, so later executions skip the generic decode
	// and resolution work.  Encodings are identical to the originals.
	OpIconstQ
	OpLdcQ
	OpGetStaticQ
	OpPutStaticQ
	OpGetFieldQ
	OpPutFieldQ
	OpInvokeStaticQ

	// Superinstructions: statically fused common opcode pairs, selected
	// from the profile layer's hot-pair counts (Probe.CountPairs on the
	// des workload; see fusedPairs in vm.go).  The fused byte replaces
	// only the first opcode of the pair — operands and the second opcode
	// stay in place, so branches into either original position remain
	// valid.
	OpFusedIloadIconst    // iload + iconst
	OpFusedIconstIand     // iconst + iand
	OpFusedIandIstore     // iand + istore
	OpFusedIstoreIload    // istore + iload
	OpFusedGetstaticIload // getstatic + iload
	OpFusedIloadIload     // iload + iload

	// NumBaseOpcodes bounds the baseline bytecode set; NumOpcodes also
	// spans the quick and fused extension.
	NumBaseOpcodes = int(OpArrayLen) + 1
	NumOpcodes     = int(OpFusedIloadIload) + 1
)

var opNames = [NumOpcodes]string{
	"nop", "iconst", "ldc", "iload", "istore", "iinc", "dup", "pop", "swap",
	"iadd", "isub", "imul", "idiv", "irem", "ineg", "iand", "ior", "ixor",
	"ishl", "ishr", "iushr",
	"goto", "ifeq", "ifne", "iflt", "ifle", "ifgt", "ifge",
	"if_icmpeq", "if_icmpne", "if_icmplt", "if_icmple", "if_icmpgt", "if_icmpge",
	"invokestatic", "invokenative", "return", "ireturn",
	"getstatic", "putstatic",
	"new", "getfield", "putfield",
	"newarray_i", "newarray_b", "iaload", "iastore", "baload", "bastore", "arraylength",
	"iconst_q", "ldc_q", "getstatic_q", "putstatic_q", "getfield_q", "putfield_q", "invokestatic_q",
	"iload+iconst", "iconst+iand", "iand+istore", "istore+iload", "getstatic+iload", "iload+iload",
}

// String returns the mnemonic.
func (o Opcode) String() string {
	if int(o) < NumOpcodes {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// OperandBytes returns the operand length that follows the opcode byte.
// Quick forms keep their generic encoding; a fused opcode reports the
// first half's operand length, so pc+1+OperandBytes() is the second
// half's position and linear code walks stay in step.
func (o Opcode) OperandBytes() int {
	switch o {
	case OpIconst, OpIconstQ:
		return 4
	case OpLdc, OpInvokeStatic, OpInvokeNative, OpGetStatic, OpPutStatic,
		OpNew, OpGetField, OpPutField,
		OpGoto, OpIfeq, OpIfne, OpIflt, OpIfle, OpIfgt, OpIfge,
		OpIfIcmpeq, OpIfIcmpne, OpIfIcmplt, OpIfIcmple, OpIfIcmpgt, OpIfIcmpge,
		OpLdcQ, OpGetStaticQ, OpPutStaticQ, OpGetFieldQ, OpPutFieldQ, OpInvokeStaticQ,
		OpFusedGetstaticIload:
		return 2
	case OpIload, OpIstore, OpFusedIloadIconst, OpFusedIloadIload, OpFusedIstoreIload:
		return 1
	case OpIinc:
		return 2
	case OpFusedIconstIand:
		return 4
	case OpFusedIandIstore:
		return 0
	}
	return 0
}

// quickForms maps each quickenable generic opcode to its specialized form.
var quickForms = map[Opcode]Opcode{
	OpIconst:       OpIconstQ,
	OpLdc:          OpLdcQ,
	OpGetStatic:    OpGetStaticQ,
	OpPutStatic:    OpPutStaticQ,
	OpGetField:     OpGetFieldQ,
	OpPutField:     OpPutFieldQ,
	OpInvokeStatic: OpInvokeStaticQ,
}

// Quick returns the quickened form of a generic opcode, if it has one.
func (o Opcode) Quick() (Opcode, bool) {
	q, ok := quickForms[o]
	return q, ok
}

// IsQuick reports whether the opcode is a quickened form.
func (o Opcode) IsQuick() bool { return o >= OpIconstQ && o <= OpInvokeStaticQ }

// IsFused reports whether the opcode is a fused superinstruction.
func (o Opcode) IsFused() bool { return o >= OpFusedIloadIconst && o <= OpFusedIloadIload }

// IsBranch reports whether the opcode is a conditional branch.
func (o Opcode) IsBranch() bool { return o >= OpIfeq && o <= OpIfIcmpge }

// Category groups opcodes the way Figure 2 groups Java commands.  Quick
// forms report their generic opcode's category; fused opcodes report the
// first half's.
func (o Opcode) Category() string {
	switch o {
	case OpIconstQ, OpLdcQ:
		return "st_load"
	case OpGetStaticQ, OpPutStaticQ, OpGetFieldQ, OpPutFieldQ:
		return "field"
	case OpInvokeStaticQ:
		return "call"
	case OpFusedIloadIconst, OpFusedIloadIload:
		return "st_load"
	case OpFusedIconstIand, OpFusedIandIstore:
		return "alu"
	case OpFusedIstoreIload:
		return "st_store"
	case OpFusedGetstaticIload:
		return "field"
	}
	switch {
	case o == OpIload || o == OpLdc || o == OpIconst:
		return "st_load"
	case o == OpIstore || o == OpIinc:
		return "st_store"
	case o >= OpIadd && o <= OpIushr:
		return "alu"
	case o == OpGoto || o.IsBranch():
		return "branch"
	case o == OpInvokeStatic || o == OpReturn || o == OpIreturn:
		return "call"
	case o == OpInvokeNative:
		return "native"
	case o == OpGetStatic || o == OpPutStatic || o == OpGetField || o == OpPutField:
		return "field"
	case o >= OpNewArrayI && o <= OpArrayLen || o == OpNew:
		return "array"
	}
	return "misc"
}
