package jvm

import (
	"testing"

	"interplab/internal/atom"
	"interplab/internal/trace"
	"interplab/internal/vfs"
)

// tierModule builds a module exercising every quickenable opcode and every
// fused pair: a loop over iload/iconst/iand/istore (the hot fused ops), a
// static accumulator, object fields, an ldc'd constant written to stdout,
// and a static call.
func tierModule(t *testing.T) (*Module, *vfs.OS) {
	t.Helper()
	osys := vfs.New()
	mod := &Module{
		Statics: []*Static{{Name: "acc", Init: 3}},
		Consts:  [][]byte{[]byte("ok\n")},
		Natives: []*NativeFn{{Name: "_write", Arity: 3}},
	}
	step := buildFn(t, "step", 1, 1, func(a *Asm) {
		// return (arg & 0x0f) + acc, acc += 1, via an object field bounce
		a.U16(OpNew, 2).U8(OpIstore, 0)
		a.U8(OpIload, 0).U8(OpIload, 0).U16(OpGetField, 0).U16(OpPutField, 1)
		a.U16(OpGetStatic, 0).I32(OpIconst, 1).Op(OpIadd).U16(OpPutStatic, 0)
		a.U8(OpIload, 0).I32(OpIconst, 0x0f).Op(OpIand).U16(OpGetStatic, 0).Op(OpIadd)
		a.Op(OpIreturn)
	})
	main := buildFn(t, "main", 0, 3, func(a *Asm) {
		a.I32(OpIconst, 0).U8(OpIstore, 0) // sum
		a.I32(OpIconst, 40).U8(OpIstore, 1)
		a.Label("loop")
		// iload+iload, iload+iconst, iconst+iand, iand+istore, istore+iload
		a.U8(OpIload, 0).U8(OpIload, 1)
		a.I32(OpIconst, 0xff).Op(OpIand)
		a.Op(OpIadd).U8(OpIstore, 0)
		a.U8(OpIload, 1).U16(OpInvokeStatic, 1).U8(OpIstore, 2)
		a.U8(OpIload, 0).U8(OpIload, 2).Op(OpIadd).U8(OpIstore, 0)
		a.Iinc(1, -1)
		a.U8(OpIload, 1).Br(OpIfgt, "loop")
		a.I32(OpIconst, 1).U16(OpLdc, 0).I32(OpIconst, 3).U16(OpInvokeNative, 0).Op(OpPop)
		a.U8(OpIload, 0).Op(OpIreturn)
	})
	mod.Funcs = []*Function{main, step}
	if err := mod.Bind(OSNatives(osys)); err != nil {
		t.Fatal(err)
	}
	return mod, osys
}

// runTier executes tierModule under one tier combination and returns the
// VM (for counters), the result, stdout, and the probe stats.
func runTier(t *testing.T, quicken, super bool) (*VM, int32, string, atom.Stats) {
	t.Helper()
	mod, osys := tierModule(t)
	img := atom.NewImage()
	p := atom.NewProbe(img, trace.Discard)
	vm, err := New(mod, img, p)
	if err != nil {
		t.Fatal(err)
	}
	vm.Quicken = quicken
	vm.Superinstructions = super
	ret, err := vm.Run("main", 0)
	if err != nil {
		t.Fatal(err)
	}
	return vm, ret, osys.Stdout.String(), p.Stats()
}

// TestTierEquivalence: every tier combination must be semantically
// transparent — same return value and same guest-visible output as the
// baseline interpreter.
func TestTierEquivalence(t *testing.T) {
	_, baseRet, baseOut, baseStats := runTier(t, false, false)
	for _, tc := range []struct {
		name           string
		quicken, super bool
	}{
		{"quicken", true, false},
		{"super", false, true},
		{"quicken+super", true, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, ret, out, st := runTier(t, tc.quicken, tc.super)
			if ret != baseRet {
				t.Errorf("return = %d, baseline %d", ret, baseRet)
			}
			if out != baseOut {
				t.Errorf("stdout = %q, baseline %q", out, baseOut)
			}
			if st.FetchDecode >= baseStats.FetchDecode {
				t.Errorf("fetch_decode = %d, must beat baseline %d",
					st.FetchDecode, baseStats.FetchDecode)
			}
		})
	}
}

// TestQuickeningRewritesOnceAndCounts: a quickened site must never be
// rewritten twice — re-running the same code leaves QuickenRewrites (and
// the code bytes) untouched.
func TestQuickeningRewritesOnce(t *testing.T) {
	mod, _ := tierModule(t)
	img := atom.NewImage()
	p := atom.NewProbe(img, trace.Discard)
	vm, err := New(mod, img, p)
	if err != nil {
		t.Fatal(err)
	}
	vm.Quicken = true
	if _, err := vm.Run("main", 0); err != nil {
		t.Fatal(err)
	}
	first := vm.QuickenRewrites
	if first == 0 {
		t.Fatal("quickening made no rewrites")
	}
	snap := make([][]byte, len(mod.Funcs))
	for i, fn := range mod.Funcs {
		snap[i] = append([]byte(nil), fn.Code...)
	}
	if _, err := vm.Run("main", 0); err != nil {
		t.Fatal(err)
	}
	if vm.QuickenRewrites != first {
		t.Errorf("re-execution rewrote again: %d -> %d", first, vm.QuickenRewrites)
	}
	for i, fn := range mod.Funcs {
		if string(fn.Code) != string(snap[i]) {
			t.Errorf("func %d code changed on re-execution", i)
		}
	}
}

// TestSuperinstructionsFuseAndReduceDispatch: fusion must find sites and
// each fused execution must save one dispatch (commands strictly drop).
func TestSuperinstructionsReduceCommands(t *testing.T) {
	_, _, _, base := runTier(t, false, false)
	vm, _, _, st := runTier(t, false, true)
	if vm.FusedSites == 0 {
		t.Fatal("fusion pass found no sites")
	}
	if st.Commands >= base.Commands {
		t.Errorf("commands = %d, must beat baseline %d", st.Commands, base.Commands)
	}
	if st.FetchDecode >= base.FetchDecode {
		t.Errorf("fetch_decode = %d, must beat baseline %d", st.FetchDecode, base.FetchDecode)
	}
}

// TestTiersWithoutProbe: the tiers must work uninstrumented too.
func TestTiersWithoutProbe(t *testing.T) {
	mod, osys := tierModule(t)
	vm, err := New(mod, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	vm.Quicken = true
	vm.Superinstructions = true
	ret, err := vm.Run("main", 0)
	if err != nil {
		t.Fatal(err)
	}
	_, wantRet, wantOut, _ := runTier(t, false, false)
	if ret != wantRet || osys.Stdout.String() != wantOut {
		t.Errorf("uninstrumented tiers: ret %d out %q, want %d %q",
			ret, osys.Stdout.String(), wantRet, wantOut)
	}
}

// TestQuickOpcodeMetadata pins the tier extension's opcode table.
func TestQuickOpcodeMetadata(t *testing.T) {
	for g, q := range quickForms {
		if q.OperandBytes() != g.OperandBytes() {
			t.Errorf("%v quick form %v changes encoding", g, q)
		}
		if !q.IsQuick() || g.IsQuick() {
			t.Errorf("IsQuick wrong for %v/%v", g, q)
		}
		if _, again := q.Quick(); again {
			t.Errorf("quick form %v has a quick form", q)
		}
	}
	for _, fp := range fusedPairs {
		if !fp.fused.IsFused() {
			t.Errorf("%v not fused", fp.fused)
		}
		if fp.fused.OperandBytes() != fp.a.OperandBytes() {
			t.Errorf("%v operand bytes %d != first half %v's %d",
				fp.fused, fp.fused.OperandBytes(), fp.a, fp.a.OperandBytes())
		}
		if fp.a.Category() == "branch" || fp.a.Category() == "call" || fp.a.Category() == "native" {
			t.Errorf("fused first half %v is control flow", fp.a)
		}
	}
}
