package jvm

import (
	"encoding/binary"
	"fmt"

	"interplab/internal/atom"
)

// Cost model of the bytecode interpreter, in native instructions.  The
// dispatch loop is small and uniform (Table 2 reports ~16 fetch/decode
// instructions per bytecode); handler costs are small constants plus the
// real stack/heap traffic they generate.
const (
	costDispatch = 12
	costALU      = 3
	costStack    = 1
	costBranch   = 4
	costArray    = 6
	costField    = 7
	costInvoke   = 28
	costRet      = 14
	costNative   = 12
	costNew      = 20

	// Optimization-tier costs.  A quickened opcode has its operand
	// pre-resolved into an inline cache slot, so decode collapses to one
	// fetch and the handler skips the generic resolution work; the
	// one-time in-place rewrite at first execution costs costQuicken
	// (re-resolution plus the code store).
	costQuicken     = 10
	costLdcQ        = 3  // generic: costField
	costStaticQ     = 4  // generic: costField+3
	costFieldQ      = 5  // generic: costField+4
	costInvokeQ     = 20 // generic: costInvoke
	costFusePerSite = 2  // startup fusion scan, per instruction visited
)

// Object is a heap entity: an array or a field object.
type Object struct {
	Ints   []int32
	Bytes  []byte
	Fields []int32
	off    uint32 // base offset in the heap data region
}

type jframe struct {
	fn         int
	pc         int
	localsBase int
	stackBase  int
}

// VM interprets a Module.
type VM struct {
	Mod *Module

	// Threaded models threaded interpretation (§5): dispatch becomes an
	// indirect jump through a handler table instead of a switch.
	Threaded bool

	// Quicken enables operand-specialized opcode rewriting à la
	// Brunthaler: the first execution of a quickenable opcode (constant
	// loads, static/field access, invokestatic) rewrites it in place to
	// its _q form, which decodes and executes with the resolution work
	// pre-done.  Guest-visible behavior is identical; only the cost
	// signature changes.
	Quicken bool
	// QuickenRewrites counts in-place opcode rewrites performed; a site
	// rewrites at most once (the quick form has no quick form).
	QuickenRewrites uint64

	// Superinstructions statically fuses the hot opcode pairs of
	// fusedPairs before execution: one dispatch then executes both
	// halves.  Only the first opcode byte of a pair is replaced, so
	// branches into either original position stay valid.
	Superinstructions bool
	// FusedSites counts code positions rewritten to fused opcodes.
	FusedSites uint64

	p         *atom.Probe
	img       *atom.Image
	rDispatch *atom.Routine
	rFrame    *atom.Routine
	rQuicken  *atom.Routine
	rFuse     *atom.Routine
	handlers  [NumOpcodes]*atom.Routine
	opIDs     [NumOpcodes]atom.OpID

	// fusedH, while non-nil, redirects exec-cost attribution to the
	// fused superinstruction's own handler routine (both halves of a
	// fused pair execute inside one handler body).
	fusedH     *atom.Routine
	tiersReady bool

	codeReg   *atom.DataRegion
	stackReg  *atom.DataRegion
	staticReg *atom.DataRegion
	heapReg   *atom.DataRegion
	poolReg   *atom.DataRegion

	stackRegion atom.RegionID
	fieldRegion atom.RegionID

	codeOff map[int]uint32 // function index -> code offset in codeReg

	stack     []int32
	frames    []jframe
	statics   []int32
	heap      []*Object
	heapTop   uint32
	constRefs map[int]int32

	// Steps counts executed bytecodes (virtual commands).
	Steps uint64
	// Exited is set when the program leaves main or calls an exit native.
	Exited   bool
	ExitCode int32
}

// New prepares a VM for mod.  img/p may be nil for uninstrumented tests.
func New(mod *Module, img *atom.Image, p *atom.Probe) (*VM, error) {
	vm := &VM{Mod: mod, p: p, img: img, codeOff: make(map[int]uint32)}
	if p != nil && img != nil {
		vm.rDispatch = img.Routine("jvm.dispatch", 110)
		vm.rFrame = img.Routine("jvm.frame", 160)
		// Only the baseline set is registered here: quick and fused
		// handlers join the image lazily (ensureTiers) when a tier is
		// switched on, so the baseline interpreter's code layout — and
		// its cache signature — is byte-identical with the tiers off.
		for op := 0; op < NumBaseOpcodes; op++ {
			o := Opcode(op)
			size := 14
			switch o.Category() {
			case "call":
				size = 40
			case "array", "field":
				size = 28
			case "native":
				size = 36
			}
			vm.handlers[op] = img.Routine("jvm.op."+o.String(), size)
			vm.opIDs[op] = p.OpName(o.String())
		}
		total := uint32(0)
		for _, f := range mod.Funcs {
			total += uint32(len(f.Code))
		}
		vm.codeReg = img.Data("jvm.code", total+64)
		vm.stackReg = img.Data("jvm.stack", 64<<10)
		vm.staticReg = img.Data("jvm.statics", uint32(len(mod.Statics)+1)*4)
		vm.heapReg = img.Data("jvm.heap", 1<<20)
		poolSize := uint32(0)
		for _, c := range mod.Consts {
			poolSize += uint32(len(c)) + 8
		}
		vm.poolReg = img.Data("jvm.pool", poolSize+64)
		vm.stackRegion = p.RegionName("java.stack")
		vm.fieldRegion = p.RegionName("java.field")

		off := uint32(0)
		for i, f := range mod.Funcs {
			vm.codeOff[i] = off
			off += uint32(len(f.Code))
		}
	}

	// Startup: install statics (the class-loading analog).
	if p != nil {
		p.SetStartup(true)
	}
	vm.statics = make([]int32, len(mod.Statics))
	for i, s := range mod.Statics {
		switch {
		case s.ElemSize == 0:
			vm.statics[i] = s.Init
		case s.ElemSize == 1:
			b := make([]byte, s.Len)
			copy(b, s.InitData)
			vm.statics[i] = vm.allocObj(&Object{Bytes: b}, s.Len)
		default:
			ints := make([]int32, s.Len)
			copy(ints, s.InitInts)
			vm.statics[i] = vm.allocObj(&Object{Ints: ints}, s.Len*4)
		}
	}
	if p != nil {
		p.SetStartup(false)
	}
	return vm, nil
}

// allocObj places an object in the heap and returns its reference value.
func (vm *VM) allocObj(o *Object, size int) int32 {
	o.off = vm.heapTop
	vm.heapTop += uint32(size+63) &^ 63
	vm.heap = append(vm.heap, o)
	return int32(len(vm.heap)) // refs are index+1; 0 is null
}

// Obj resolves a reference.
func (vm *VM) Obj(ref int32) (*Object, error) {
	if ref <= 0 || int(ref) > len(vm.heap) {
		return nil, fmt.Errorf("jvm: null or bad reference %d", ref)
	}
	return vm.heap[ref-1], nil
}

// AllocBytes allocates a byte array (used by natives).
func (vm *VM) AllocBytes(b []byte) int32 {
	return vm.allocObj(&Object{Bytes: b}, len(b))
}

// --- instrumented stack operations ------------------------------------------

func (vm *VM) push(v int32) {
	if vm.p != nil {
		vm.p.Enter(vm.stackRegion)
		vm.p.CountAccess(vm.stackRegion)
		vm.p.Exec(vm.handlers[OpDup], costStack)
		vm.p.Store(vm.stackReg.Addr(uint32(len(vm.stack)) * 4))
		vm.p.Leave()
	}
	vm.stack = append(vm.stack, v)
}

func (vm *VM) pop() (int32, error) {
	if len(vm.frames) > 0 && len(vm.stack) <= vm.frames[len(vm.frames)-1].stackBase {
		return 0, fmt.Errorf("jvm: operand stack underflow")
	}
	if len(vm.stack) == 0 {
		return 0, fmt.Errorf("jvm: operand stack underflow")
	}
	v := vm.stack[len(vm.stack)-1]
	vm.stack = vm.stack[:len(vm.stack)-1]
	if vm.p != nil {
		vm.p.Enter(vm.stackRegion)
		vm.p.CountAccess(vm.stackRegion)
		vm.p.Exec(vm.handlers[OpPop], costStack)
		vm.p.Load(vm.stackReg.Addr(uint32(len(vm.stack)) * 4))
		vm.p.Leave()
	}
	return v, nil
}

func (vm *VM) local(slot int) uint32 {
	f := &vm.frames[len(vm.frames)-1]
	return uint32(f.localsBase+slot) * 4
}

// --- execution ---------------------------------------------------------------

// Call pushes a frame for function fi with the given arguments.
func (vm *VM) Call(fi int, args []int32) error {
	if fi < 0 || fi >= len(vm.Mod.Funcs) {
		return fmt.Errorf("jvm: bad function index %d", fi)
	}
	fn := vm.Mod.Funcs[fi]
	if len(args) != fn.NArgs {
		return fmt.Errorf("jvm: %s expects %d args, got %d", fn.Name, fn.NArgs, len(args))
	}
	localsBase := len(vm.stack)
	vm.stack = append(vm.stack, args...)
	for i := fn.NArgs; i < fn.NLocals; i++ {
		vm.stack = append(vm.stack, 0)
	}
	vm.frames = append(vm.frames, jframe{fn: fi, pc: 0, localsBase: localsBase, stackBase: len(vm.stack)})
	return nil
}

// Run executes function name until completion or maxSteps bytecodes.
func (vm *VM) Run(name string, maxSteps uint64) (int32, error) {
	vm.ensureTiers()
	fi, err := vm.Mod.FuncIndex(name)
	if err != nil {
		return 0, err
	}
	if err := vm.Call(fi, nil); err != nil {
		return 0, err
	}
	for len(vm.frames) > 0 && !vm.Exited {
		if maxSteps > 0 && vm.Steps >= maxSteps {
			return 0, fmt.Errorf("jvm: step budget exhausted (%d)", maxSteps)
		}
		if err := vm.Step(); err != nil {
			return 0, err
		}
	}
	return vm.ExitCode, nil
}

// Step executes one bytecode.
func (vm *VM) Step() error {
	f := &vm.frames[len(vm.frames)-1]
	fn := vm.Mod.Funcs[f.fn]
	if f.pc >= len(fn.Code) {
		return fmt.Errorf("jvm: pc past end of %s", fn.Name)
	}
	op := Opcode(fn.Code[f.pc])
	if op.IsFused() {
		return vm.stepFused(f, fn, op)
	}
	opnd := fn.Code[f.pc+1:]
	vm.Steps++

	p := vm.p
	if p != nil {
		p.BeginCommand(vm.opIDs[op])
		dispatch := costDispatch
		if vm.Threaded {
			dispatch = 4 // fetch, index, indirect jump
		}
		decode := op.OperandBytes()
		if op.IsQuick() {
			decode = 1 // operand pre-resolved by the quickening rewrite
		}
		p.Exec(vm.rDispatch, dispatch+decode)
		p.Load(vm.codeReg.Addr(vm.codeOff[f.fn] + uint32(f.pc)))
		p.BeginExecute()
	}
	fi, pc0 := f.fn, f.pc
	err := vm.exec(f, fn, op, opnd)
	if err == nil && vm.Quicken {
		vm.maybeQuicken(fi, fn, pc0, op)
	}
	if p != nil {
		p.EndCommand()
	}
	return err
}

func (vm *VM) u16(opnd []byte) int { return int(binary.LittleEndian.Uint16(opnd)) }

func (vm *VM) branch16(f *jframe, opnd []byte) {
	f.pc += int(int16(binary.LittleEndian.Uint16(opnd)))
}

func (vm *VM) exec(f *jframe, fn *Function, op Opcode, opnd []byte) error {
	p := vm.p
	h := vm.handlers[op]
	if vm.fusedH != nil {
		h = vm.fusedH // both halves of a fused pair run in its handler
	}
	next := f.pc + 1 + op.OperandBytes()
	exec := func(n int) {
		if p != nil {
			p.Exec(h, n)
		}
	}

	switch op {
	case OpNop:
		exec(1)

	case OpIconst, OpIconstQ:
		exec(costALU)
		vm.push(int32(binary.LittleEndian.Uint32(opnd)))

	case OpLdc, OpLdcQ:
		if op == OpLdcQ {
			exec(costLdcQ) // the rewrite interned the constant already
		} else {
			exec(costField)
		}
		idx := vm.u16(opnd)
		if idx >= len(vm.Mod.Consts) {
			return fmt.Errorf("jvm: bad constant index %d", idx)
		}
		// Constant references are interned: allocate once per const.
		if p != nil {
			p.Load(vm.poolReg.Addr(uint32(idx) * 8))
		}
		vm.push(vm.internConst(idx))

	case OpIload:
		exec(costALU)
		if p != nil {
			p.Enter(vm.stackRegion)
			p.CountAccess(vm.stackRegion)
			p.Load(vm.stackReg.Addr(vm.local(int(opnd[0]))))
			p.Leave()
		}
		vm.push(vm.stack[f.localsBase+int(opnd[0])])

	case OpIstore:
		exec(costALU)
		v, err := vm.pop()
		if err != nil {
			return err
		}
		if p != nil {
			p.Enter(vm.stackRegion)
			p.CountAccess(vm.stackRegion)
			p.Store(vm.stackReg.Addr(vm.local(int(opnd[0]))))
			p.Leave()
		}
		vm.stack[f.localsBase+int(opnd[0])] = v

	case OpIinc:
		exec(costALU + 1)
		slot := int(opnd[0])
		if p != nil {
			p.Enter(vm.stackRegion)
			p.CountAccess(vm.stackRegion)
			p.Load(vm.stackReg.Addr(vm.local(slot)))
			p.Store(vm.stackReg.Addr(vm.local(slot)))
			p.Leave()
		}
		vm.stack[f.localsBase+slot] += int32(int8(opnd[1]))

	case OpDup:
		exec(1)
		v, err := vm.pop()
		if err != nil {
			return err
		}
		vm.push(v)
		vm.push(v)

	case OpPop:
		exec(1)
		if _, err := vm.pop(); err != nil {
			return err
		}

	case OpSwap:
		exec(2)
		a, err := vm.pop()
		if err != nil {
			return err
		}
		b, err := vm.pop()
		if err != nil {
			return err
		}
		vm.push(a)
		vm.push(b)

	case OpIadd, OpIsub, OpImul, OpIdiv, OpIrem, OpIand, OpIor, OpIxor, OpIshl, OpIshr, OpIushr:
		exec(costALU)
		b, err := vm.pop()
		if err != nil {
			return err
		}
		a, err := vm.pop()
		if err != nil {
			return err
		}
		var r int32
		switch op {
		case OpIadd:
			r = a + b
		case OpIsub:
			r = a - b
		case OpImul:
			r = a * b
			if p != nil {
				p.ExecMul(h, 2)
			}
		case OpIdiv:
			if b == 0 {
				return fmt.Errorf("jvm: division by zero")
			}
			r = a / b
			if p != nil {
				p.ExecMul(h, 2)
			}
		case OpIrem:
			if b == 0 {
				return fmt.Errorf("jvm: division by zero")
			}
			r = a % b
			if p != nil {
				p.ExecMul(h, 2)
			}
		case OpIand:
			r = a & b
		case OpIor:
			r = a | b
		case OpIxor:
			r = a ^ b
		case OpIshl:
			r = a << (uint32(b) & 31)
		case OpIshr:
			r = a >> (uint32(b) & 31)
		case OpIushr:
			r = int32(uint32(a) >> (uint32(b) & 31))
		}
		vm.push(r)

	case OpIneg:
		exec(costALU)
		v, err := vm.pop()
		if err != nil {
			return err
		}
		vm.push(-v)

	case OpGoto:
		exec(costBranch)
		vm.branch16(f, opnd)
		return nil

	case OpIfeq, OpIfne, OpIflt, OpIfle, OpIfgt, OpIfge:
		exec(costBranch)
		v, err := vm.pop()
		if err != nil {
			return err
		}
		var taken bool
		switch op {
		case OpIfeq:
			taken = v == 0
		case OpIfne:
			taken = v != 0
		case OpIflt:
			taken = v < 0
		case OpIfle:
			taken = v <= 0
		case OpIfgt:
			taken = v > 0
		case OpIfge:
			taken = v >= 0
		}
		if taken {
			vm.branch16(f, opnd)
			return nil
		}

	case OpIfIcmpeq, OpIfIcmpne, OpIfIcmplt, OpIfIcmple, OpIfIcmpgt, OpIfIcmpge:
		exec(costBranch + 1)
		b, err := vm.pop()
		if err != nil {
			return err
		}
		a, err := vm.pop()
		if err != nil {
			return err
		}
		var taken bool
		switch op {
		case OpIfIcmpeq:
			taken = a == b
		case OpIfIcmpne:
			taken = a != b
		case OpIfIcmplt:
			taken = a < b
		case OpIfIcmple:
			taken = a <= b
		case OpIfIcmpgt:
			taken = a > b
		case OpIfIcmpge:
			taken = a >= b
		}
		if taken {
			vm.branch16(f, opnd)
			return nil
		}

	case OpInvokeStatic, OpInvokeStaticQ:
		fi := vm.u16(opnd)
		if fi >= len(vm.Mod.Funcs) {
			return fmt.Errorf("jvm: bad function index %d", fi)
		}
		callee := vm.Mod.Funcs[fi]
		if p != nil {
			cost := costInvoke
			if op == OpInvokeStaticQ {
				cost = costInvokeQ // callee resolved at rewrite time
			}
			p.Call(vm.rFrame)
			p.Exec(vm.rFrame, cost)
			// Frame setup writes the callee's local slots.
			for i := 0; i < callee.NLocals; i++ {
				p.Store(vm.stackReg.Addr(uint32(len(vm.stack)+i) * 4))
			}
		}
		args := make([]int32, callee.NArgs)
		for i := callee.NArgs - 1; i >= 0; i-- {
			v, err := vm.pop()
			if err != nil {
				return err
			}
			args[i] = v
		}
		f.pc = next
		return vm.Call(fi, args)

	case OpInvokeNative:
		ni := vm.u16(opnd)
		if ni >= len(vm.Mod.Natives) {
			return fmt.Errorf("jvm: bad native index %d", ni)
		}
		nat := vm.Mod.Natives[ni]
		exec(costNative)
		args := make([]int32, nat.Arity)
		for i := nat.Arity - 1; i >= 0; i-- {
			v, err := vm.pop()
			if err != nil {
				return err
			}
			args[i] = v
		}
		vm.push(nat.F(vm, args))

	case OpReturn, OpIreturn:
		if p != nil {
			p.Exec(vm.rFrame, costRet)
			p.Ret()
		}
		var ret int32
		if op == OpIreturn {
			v, err := vm.pop()
			if err != nil {
				return err
			}
			ret = v
		}
		vm.stack = vm.stack[:f.localsBase]
		vm.frames = vm.frames[:len(vm.frames)-1]
		if len(vm.frames) == 0 {
			vm.Exited = true
			vm.ExitCode = ret
			return nil
		}
		if op == OpIreturn {
			vm.push(ret)
		}
		return nil

	case OpGetStatic, OpPutStatic, OpGetStaticQ, OpPutStaticQ:
		idx := vm.u16(opnd)
		if idx >= len(vm.statics) {
			return fmt.Errorf("jvm: bad static index %d", idx)
		}
		isGet := op == OpGetStatic || op == OpGetStaticQ
		if p != nil {
			cost := costField + 3 // resolution plus the handler body
			if op.IsQuick() {
				cost = costStaticQ // slot index cached by the rewrite
			}
			p.Enter(vm.fieldRegion)
			p.CountAccess(vm.fieldRegion)
			p.Exec(h, cost)
			if isGet {
				p.Load(vm.staticReg.Addr(uint32(idx) * 4))
			} else {
				p.Store(vm.staticReg.Addr(uint32(idx) * 4))
			}
			p.Leave()
		}
		if isGet {
			vm.push(vm.statics[idx])
		} else {
			v, err := vm.pop()
			if err != nil {
				return err
			}
			vm.statics[idx] = v
		}

	case OpNew:
		exec(costNew)
		nfields := vm.u16(opnd)
		ref := vm.allocObj(&Object{Fields: make([]int32, nfields)}, nfields*4)
		if p != nil {
			for i := 0; i < nfields; i++ {
				p.Store(vm.heapReg.Addr(vm.heap[ref-1].off + uint32(i)*4))
			}
		}
		vm.push(ref)

	case OpGetField, OpPutField, OpGetFieldQ, OpPutFieldQ:
		idx := vm.u16(opnd)
		fieldCost := costField + 4
		if op.IsQuick() {
			fieldCost = costFieldQ // field offset cached by the rewrite
		}
		if op == OpGetField || op == OpGetFieldQ {
			ref, err := vm.pop()
			if err != nil {
				return err
			}
			o, err := vm.Obj(ref)
			if err != nil {
				return err
			}
			if idx >= len(o.Fields) {
				return fmt.Errorf("jvm: bad field index %d", idx)
			}
			if p != nil {
				p.Enter(vm.fieldRegion)
				p.CountAccess(vm.fieldRegion)
				p.Exec(h, fieldCost)
				p.Load(vm.heapReg.Addr(o.off + uint32(idx)*4))
				p.Leave()
			}
			vm.push(o.Fields[idx])
		} else {
			v, err := vm.pop()
			if err != nil {
				return err
			}
			ref, err := vm.pop()
			if err != nil {
				return err
			}
			o, err := vm.Obj(ref)
			if err != nil {
				return err
			}
			if idx >= len(o.Fields) {
				return fmt.Errorf("jvm: bad field index %d", idx)
			}
			if p != nil {
				p.Enter(vm.fieldRegion)
				p.CountAccess(vm.fieldRegion)
				p.Exec(h, fieldCost)
				p.Store(vm.heapReg.Addr(o.off + uint32(idx)*4))
				p.Leave()
			}
			o.Fields[idx] = v
		}

	case OpNewArrayI, OpNewArrayB:
		exec(costNew)
		n, err := vm.pop()
		if err != nil {
			return err
		}
		if n < 0 || n > 16<<20 {
			return fmt.Errorf("jvm: bad array length %d", n)
		}
		var ref int32
		if op == OpNewArrayI {
			ref = vm.allocObj(&Object{Ints: make([]int32, n)}, int(n)*4)
		} else {
			ref = vm.allocObj(&Object{Bytes: make([]byte, n)}, int(n))
		}
		vm.push(ref)

	case OpIaload, OpBaload:
		exec(costArray)
		idx, err := vm.pop()
		if err != nil {
			return err
		}
		ref, err := vm.pop()
		if err != nil {
			return err
		}
		o, err := vm.Obj(ref)
		if err != nil {
			return err
		}
		var v int32
		var at uint32
		if op == OpIaload {
			if idx < 0 || int(idx) >= len(o.Ints) {
				return fmt.Errorf("jvm: index %d out of bounds [0,%d)", idx, len(o.Ints))
			}
			v = o.Ints[idx]
			at = o.off + uint32(idx)*4
		} else {
			if idx < 0 || int(idx) >= len(o.Bytes) {
				return fmt.Errorf("jvm: index %d out of bounds [0,%d)", idx, len(o.Bytes))
			}
			v = int32(int8(o.Bytes[idx]))
			at = o.off + uint32(idx)
		}
		if p != nil {
			p.Load(vm.heapReg.Addr(at))
		}
		vm.push(v)

	case OpIastore, OpBastore:
		exec(costArray)
		v, err := vm.pop()
		if err != nil {
			return err
		}
		idx, err := vm.pop()
		if err != nil {
			return err
		}
		ref, err := vm.pop()
		if err != nil {
			return err
		}
		o, err := vm.Obj(ref)
		if err != nil {
			return err
		}
		var at uint32
		if op == OpIastore {
			if idx < 0 || int(idx) >= len(o.Ints) {
				return fmt.Errorf("jvm: index %d out of bounds [0,%d)", idx, len(o.Ints))
			}
			o.Ints[idx] = v
			at = o.off + uint32(idx)*4
		} else {
			if idx < 0 || int(idx) >= len(o.Bytes) {
				return fmt.Errorf("jvm: index %d out of bounds [0,%d)", idx, len(o.Bytes))
			}
			o.Bytes[idx] = byte(v)
			at = o.off + uint32(idx)
		}
		if p != nil {
			p.Store(vm.heapReg.Addr(at))
		}

	case OpArrayLen:
		exec(costArray)
		ref, err := vm.pop()
		if err != nil {
			return err
		}
		o, err := vm.Obj(ref)
		if err != nil {
			return err
		}
		n := len(o.Ints)
		if o.Bytes != nil {
			n = len(o.Bytes)
		}
		if p != nil {
			p.Load(vm.heapReg.Addr(o.off))
		}
		vm.push(int32(n))

	default:
		return fmt.Errorf("jvm: unknown opcode %d at %s+%d", op, fn.Name, f.pc)
	}
	f.pc = next
	return nil
}

// internConst returns the (lazily allocated) reference for a pool constant.
func (vm *VM) internConst(idx int) int32 {
	if vm.constRefs == nil {
		vm.constRefs = make(map[int]int32)
	}
	if r, ok := vm.constRefs[idx]; ok {
		return r
	}
	b := append([]byte(nil), vm.Mod.Consts[idx]...)
	r := vm.AllocBytes(b)
	vm.constRefs[idx] = r
	return r
}
