package gfx

import (
	"testing"

	"interplab/internal/atom"
	"interplab/internal/trace"
)

func TestClearAndPlot(t *testing.T) {
	d := New(nil, nil, 16, 8)
	d.Clear(3)
	for _, p := range d.Pix {
		if p != 3 {
			t.Fatal("clear failed")
		}
	}
	d.Plot(2, 1, 9)
	if d.Pix[1*16+2] != 9 {
		t.Error("plot failed")
	}
	d.Plot(-1, 0, 9) // clipped, must not panic
	d.Plot(100, 100, 9)
}

func TestFillRectClipped(t *testing.T) {
	d := New(nil, nil, 10, 10)
	d.FillRect(-5, -5, 8, 8, 7)
	if d.Pix[0] != 7 || d.Pix[2*10+2] != 7 {
		t.Error("clipped fill missing pixels")
	}
	if d.Pix[3*10+3] != 0 {
		t.Error("fill overran")
	}
	d.FillRect(8, 8, 100, 100, 1)
	if d.Pix[9*10+9] != 1 {
		t.Error("corner fill failed")
	}
}

func TestLineEndpoints(t *testing.T) {
	d := New(nil, nil, 20, 20)
	d.Line(1, 1, 10, 7, 5)
	if d.Pix[1*20+1] != 5 || d.Pix[7*20+10] != 5 {
		t.Error("line endpoints not drawn")
	}
	// Steep and reversed lines.
	d.Line(15, 18, 15, 2, 6)
	if d.Pix[2*20+15] != 6 || d.Pix[18*20+15] != 6 {
		t.Error("vertical line failed")
	}
	// A line leaving the screen must clip, not panic.
	d.Line(-10, -10, 30, 30, 2)
}

func TestTextAndBlit(t *testing.T) {
	d := New(nil, nil, 64, 16)
	d.Text(1, 1, "ok", 4)
	found := false
	for _, p := range d.Pix {
		if p == 4 {
			found = true
			break
		}
	}
	if !found {
		t.Error("text drew nothing")
	}
	sprite := []byte{0, 1, 1, 0}
	d.Blit(5, 5, 2, 2, sprite)
	if d.Pix[5*64+6] != 1 || d.Pix[6*64+5] != 1 {
		t.Error("blit failed")
	}
	if d.Pix[5*64+5] == 1 {
		t.Error("transparent pixel drawn")
	}
}

func TestChecksumDeterministic(t *testing.T) {
	draw := func() uint32 {
		d := New(nil, nil, 32, 32)
		d.Clear(1)
		d.Line(0, 0, 31, 31, 2)
		d.FillRect(4, 4, 8, 8, 3)
		d.Text(2, 20, "x", 4)
		return d.Checksum()
	}
	if draw() != draw() {
		t.Error("checksum must be deterministic")
	}
	d := New(nil, nil, 32, 32)
	if d.Checksum() == func() uint32 { e := New(nil, nil, 32, 32); e.Clear(9); return e.Checksum() }() {
		t.Error("different pictures must differ")
	}
}

func TestInstrumentedDrawingChargesNativeRegion(t *testing.T) {
	img := atom.NewImage()
	var c trace.Counter
	p := atom.NewProbe(img, &c)
	d := New(img, p, 64, 64)
	before := p.Total()
	d.FillRect(0, 0, 64, 64, 2)
	p.FlushEvents()
	cost := p.Total() - before
	// 4096 pixels at ~3/4 instruction per pixel plus overhead.
	if cost < 2000 || cost > 10000 {
		t.Errorf("fill cost = %d native instructions, implausible", cost)
	}
	st := p.Stats()
	nat, ok := st.Region("native")
	if !ok || nat.Instructions == 0 {
		t.Fatal("native region must be charged")
	}
	if c.Stores() == 0 {
		t.Error("framebuffer stores must be emitted")
	}
	// Instrumented and uninstrumented displays draw the same picture.
	e := New(nil, nil, 64, 64)
	e.FillRect(0, 0, 64, 64, 2)
	if d.Checksum() != e.Checksum() {
		t.Error("instrumentation must not change rendering")
	}
}

func TestInstrumentedAllPrimitives(t *testing.T) {
	img := atom.NewImage()
	p := atom.NewProbe(img, trace.Discard)
	d := New(img, p, 32, 32)
	d.Clear(1)
	d.Plot(1, 1, 2)
	d.Line(0, 0, 31, 10, 3)
	d.Text(0, 16, "ab", 4)
	d.Blit(10, 10, 2, 2, []byte{1, 0, 0, 1})
	if d.Ops != 6 {
		t.Errorf("ops = %d, want 6", d.Ops)
	}
	if p.Total() == 0 {
		t.Error("instrumented primitives must emit instructions")
	}
}
