// Package gfx is the laboratory's native graphics runtime library — the
// analog of the precompiled windowing/AWT code that the paper's Java
// benchmarks (hanoi, asteroids, mand) and Tcl/Tk programs spend much of
// their time in.
//
// It is a real software rasterizer over an indexed-color framebuffer: when
// a workload draws, actual pixels change, and the instrumentation cost is
// the pixel work performed.  Calls arrive through the JVM's native-method
// registry or the Tk widget layer; the instructions they execute are
// precompiled-library instructions ("native" in Figure 2), not interpreted
// ones — which is exactly the effect the paper measures.
package gfx

import (
	"interplab/internal/atom"
)

// Display is a framebuffer with instrumented drawing primitives.
type Display struct {
	W, H int
	Pix  []byte // indexed color, row-major

	probe *atom.Probe
	fb    *atom.DataRegion
	font  *atom.DataRegion

	rClear *atom.Routine
	rFill  *atom.Routine
	rLine  *atom.Routine
	rText  *atom.Routine
	rBlit  *atom.Routine

	region atom.RegionID

	// Ops counts drawing calls, for tests and reports.
	Ops uint64
}

// New creates a w×h display.  img/p may be nil for uninstrumented use.
func New(img *atom.Image, p *atom.Probe, w, h int) *Display {
	d := &Display{W: w, H: h, Pix: make([]byte, w*h), probe: p}
	if img != nil && p != nil {
		// Static footprints of the rasterizer: these routines are what
		// makes native-heavy workloads behave like big compiled programs
		// in the instruction cache.
		d.rClear = img.Routine("gfx.clear", 220)
		d.rFill = img.Routine("gfx.fillrect", 760, atom.WithShortEvery(6))
		d.rLine = img.Routine("gfx.line", 1080, atom.WithShortEvery(8))
		d.rText = img.Routine("gfx.text", 1700, atom.WithShortEvery(5))
		d.rBlit = img.Routine("gfx.blit", 940, atom.WithShortEvery(6))
		d.fb = img.Data("gfx.framebuffer", uint32(w*h))
		d.font = img.Data("gfx.font", 96*8)
		d.region = p.RegionName("native")
	}
	d.Ops++ // allocation counts as setup work
	return d
}

func (d *Display) enter(r *atom.Routine, setup int) bool {
	if d.probe == nil {
		return false
	}
	d.probe.Enter(d.region)
	d.probe.Call(r)
	d.probe.Exec(r, setup)
	return true
}

func (d *Display) leave() {
	d.probe.Ret()
	d.probe.Leave()
}

// pixels charges the per-pixel cost of writing n consecutive framebuffer
// bytes starting at off: one word store per 4 pixels plus loop arithmetic.
func (d *Display) pixels(r *atom.Routine, off, n int) {
	words := (n + 3) / 4
	for w := 0; w < words; w++ {
		d.probe.Exec(r, 2)
		d.probe.Store(d.fb.Addr(uint32(off + w*4)))
	}
}

// Clear fills the whole framebuffer with color c.
func (d *Display) Clear(c byte) {
	d.Ops++
	for i := range d.Pix {
		d.Pix[i] = c
	}
	if d.enter(d.rClear, 20) {
		d.pixels(d.rClear, 0, len(d.Pix))
		d.leave()
	}
}

// Plot sets one pixel (clipped).
func (d *Display) Plot(x, y int, c byte) {
	d.Ops++
	if d.probe != nil {
		d.probe.Enter(d.region)
		d.probe.Call(d.rLine)
		d.probe.Exec(d.rLine, 6)
		if x >= 0 && x < d.W && y >= 0 && y < d.H {
			d.probe.Store(d.fb.Addr(uint32(y*d.W + x)))
		}
		d.probe.Ret()
		d.probe.Leave()
	}
	if x >= 0 && x < d.W && y >= 0 && y < d.H {
		d.Pix[y*d.W+x] = c
	}
}

// FillRect fills a rectangle (clipped).
func (d *Display) FillRect(x, y, w, h int, c byte) {
	d.Ops++
	x0, y0, x1, y1 := clip(x, y, w, h, d.W, d.H)
	ins := d.enter(d.rFill, 30)
	for yy := y0; yy < y1; yy++ {
		row := yy*d.W + x0
		for xx := x0; xx < x1; xx++ {
			d.Pix[yy*d.W+xx] = c
		}
		if ins {
			d.probe.Exec(d.rFill, 4) // row setup
			d.pixels(d.rFill, row, x1-x0)
		}
	}
	if ins {
		d.leave()
	}
}

// Line draws with Bresenham's algorithm (clipped per pixel).
func (d *Display) Line(x0, y0, x1, y1 int, c byte) {
	d.Ops++
	ins := d.enter(d.rLine, 24)
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	x, y := x0, y0
	for {
		if x >= 0 && x < d.W && y >= 0 && y < d.H {
			d.Pix[y*d.W+x] = c
			if ins {
				d.probe.Exec(d.rLine, 5)
				d.probe.Store(d.fb.Addr(uint32(y*d.W + x)))
			}
		} else if ins {
			d.probe.Exec(d.rLine, 3)
		}
		if x == x1 && y == y1 {
			break
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x += sx
		}
		if e2 <= dx {
			err += dx
			y += sy
		}
	}
	if ins {
		d.leave()
	}
}

// Text draws a string with a synthetic 6×8 glyph set derived from the
// character codes; each glyph reads the font table and writes its pixels.
func (d *Display) Text(x, y int, s string, c byte) {
	d.Ops++
	ins := d.enter(d.rText, 20)
	for i := 0; i < len(s); i++ {
		ch := s[i]
		if ins {
			d.probe.Exec(d.rText, 8)
			d.probe.Load(d.font.Addr(uint32(ch%96) * 8))
		}
		glyph := glyphBits(ch)
		for ry := 0; ry < 8; ry++ {
			bits := glyph[ry]
			for rx := 0; rx < 6; rx++ {
				if bits&(1<<rx) != 0 {
					px, py := x+i*6+rx, y+ry
					if px >= 0 && px < d.W && py >= 0 && py < d.H {
						d.Pix[py*d.W+px] = c
						if ins {
							d.probe.Exec(d.rText, 2)
							d.probe.Store(d.fb.Addr(uint32(py*d.W + px)))
						}
					}
				}
			}
		}
	}
	if ins {
		d.leave()
	}
}

// Blit copies a w×h sprite (row-major bytes; 0 is transparent).
func (d *Display) Blit(x, y, w, h int, sprite []byte) {
	d.Ops++
	ins := d.enter(d.rBlit, 24)
	for ry := 0; ry < h; ry++ {
		if ins {
			d.probe.Exec(d.rBlit, 4)
		}
		for rx := 0; rx < w; rx++ {
			c := sprite[ry*w+rx]
			if c == 0 {
				continue
			}
			px, py := x+rx, y+ry
			if px >= 0 && px < d.W && py >= 0 && py < d.H {
				d.Pix[py*d.W+px] = c
				if ins {
					d.probe.Exec(d.rBlit, 2)
					d.probe.Store(d.fb.Addr(uint32(py*d.W + px)))
				}
			}
		}
	}
	if ins {
		d.leave()
	}
}

// Checksum returns a deterministic digest of the framebuffer, so tests can
// assert that two runs drew the same picture.
func (d *Display) Checksum() uint32 {
	var h uint32 = 2166136261
	for _, b := range d.Pix {
		h = (h ^ uint32(b)) * 16777619
	}
	return h
}

// glyphBits derives a deterministic 6×8 pattern for a character.
func glyphBits(ch byte) [8]byte {
	var g [8]byte
	seed := uint32(ch)*2654435761 + 12345
	for i := range g {
		seed ^= seed << 13
		seed ^= seed >> 17
		seed ^= seed << 5
		g[i] = byte(seed) & 0x3f
	}
	return g
}

func clip(x, y, w, h, maxW, maxH int) (x0, y0, x1, y1 int) {
	x0, y0, x1, y1 = x, y, x+w, y+h
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > maxW {
		x1 = maxW
	}
	if y1 > maxH {
		y1 = maxH
	}
	if x1 < x0 {
		x1 = x0
	}
	if y1 < y0 {
		y1 = y0
	}
	return
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
