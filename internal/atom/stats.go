package atom

import "sort"

// OpStats reports the accounting for one virtual command.
type OpStats struct {
	Name        string
	Count       uint64
	FetchDecode uint64 // native instructions spent fetching/decoding
	Execute     uint64 // native instructions spent executing
}

// Total returns the command's combined instruction count.
func (o OpStats) Total() uint64 { return o.FetchDecode + o.Execute }

// RegionStats reports the accounting for one attribution region.
type RegionStats struct {
	Name         string
	Instructions uint64
	Accesses     uint64
}

// PerAccess returns the average instructions per recorded access, the §3.3
// metric ("each variable reference costs N native instructions").
func (r RegionStats) PerAccess() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Accesses)
}

// Stats is the complete account of one measured run.
type Stats struct {
	Commands     uint64
	Instructions uint64 // everything, including startup
	Startup      uint64
	FetchDecode  uint64
	Execute      uint64
	Loads        uint64
	Stores       uint64
	Ops          []OpStats     // sorted by descending total instructions
	Regions      []RegionStats // in registration order
}

// InstructionsPerCommand returns the average native instructions per virtual
// command, split as in Table 2.  Startup (precompilation) instructions are
// excluded, as the paper excludes them.
func (s Stats) InstructionsPerCommand() (fetchDecode, execute float64) {
	if s.Commands == 0 {
		return 0, 0
	}
	return float64(s.FetchDecode) / float64(s.Commands), float64(s.Execute) / float64(s.Commands)
}

// Stats snapshots the probe's accounts.
func (p *Probe) Stats() Stats {
	s := Stats{
		Commands:     p.commands,
		Instructions: p.total,
		Startup:      p.byPhase[PhaseStartup],
		FetchDecode:  p.byPhase[PhaseFetchDecode],
		Execute:      p.byPhase[PhaseExecute],
		Loads:        p.loads,
		Stores:       p.stores,
	}
	for _, o := range p.ops {
		if o.count == 0 && o.fd == 0 && o.ex == 0 {
			continue
		}
		s.Ops = append(s.Ops, OpStats{Name: o.name, Count: o.count, FetchDecode: o.fd, Execute: o.ex})
	}
	sort.Slice(s.Ops, func(i, j int) bool {
		ti, tj := s.Ops[i].Total(), s.Ops[j].Total()
		if ti != tj {
			return ti > tj
		}
		return s.Ops[i].Name < s.Ops[j].Name
	})
	for _, r := range p.regions {
		s.Regions = append(s.Regions, RegionStats{Name: r.name, Instructions: r.instr, Accesses: r.accesses})
	}
	return s
}

// Region returns the stats for a named region and whether it exists.
func (s Stats) Region(name string) (RegionStats, bool) {
	for _, r := range s.Regions {
		if r.Name == name {
			return r, true
		}
	}
	return RegionStats{}, false
}

// Op returns the stats for a named virtual command and whether it exists.
func (s Stats) Op(name string) (OpStats, bool) {
	for _, o := range s.Ops {
		if o.Name == name {
			return o, true
		}
	}
	return OpStats{}, false
}
