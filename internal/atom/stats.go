package atom

import "sort"

// OpStats reports the accounting for one virtual command.  The JSON tags
// are the manifest schema (docs/OBSERVABILITY.md); keep them stable.
type OpStats struct {
	Name        string `json:"name"`
	Count       uint64 `json:"count"`
	FetchDecode uint64 `json:"fetch_decode"` // native instructions spent fetching/decoding
	Execute     uint64 `json:"execute"`      // native instructions spent executing
}

// Total returns the command's combined instruction count.
func (o OpStats) Total() uint64 { return o.FetchDecode + o.Execute }

// PairStats counts one ordered pair of consecutively dispatched virtual
// commands: Second was dispatched immediately after First.  Pair counts
// drive superinstruction selection (the fused-pair tables in internal/jvm
// and internal/mipsi) and are collected only when Probe.CountPairs is on.
type PairStats struct {
	First  string `json:"first"`
	Second string `json:"second"`
	Count  uint64 `json:"count"`
}

// RegionStats reports the accounting for one attribution region.
type RegionStats struct {
	Name         string `json:"name"`
	Instructions uint64 `json:"instructions"`
	Accesses     uint64 `json:"accesses"`
}

// PerAccess returns the average instructions per recorded access, the §3.3
// metric ("each variable reference costs N native instructions").
func (r RegionStats) PerAccess() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Accesses)
}

// Stats is the complete account of one measured run.
type Stats struct {
	Commands     uint64        `json:"commands"`
	Instructions uint64        `json:"instructions"` // everything, including startup
	Startup      uint64        `json:"startup"`
	FetchDecode  uint64        `json:"fetch_decode"`
	Execute      uint64        `json:"execute"`
	Loads        uint64        `json:"loads"`
	Stores       uint64        `json:"stores"`
	Ops          []OpStats     `json:"ops,omitempty"`     // sorted by descending total instructions
	Regions      []RegionStats `json:"regions,omitempty"` // in registration order
	// Pairs holds the hottest consecutively-dispatched command pairs,
	// sorted by descending count (schema v1 additive field; present only
	// when the run counted pairs, capped at maxPairStats entries).
	Pairs []PairStats `json:"pairs,omitempty"`
}

// maxPairStats bounds the pair table a Stats snapshot carries: hot-pair
// reports read the top of the distribution, and an uncapped table would
// bloat manifests quadratically in the opcode count.
const maxPairStats = 64

// InstructionsPerCommand returns the average native instructions per virtual
// command, split as in Table 2.  Startup (precompilation) instructions are
// excluded, as the paper excludes them.
func (s Stats) InstructionsPerCommand() (fetchDecode, execute float64) {
	if s.Commands == 0 {
		return 0, 0
	}
	return float64(s.FetchDecode) / float64(s.Commands), float64(s.Execute) / float64(s.Commands)
}

// Stats snapshots the probe's accounts.
func (p *Probe) Stats() Stats {
	s := Stats{
		Commands:     p.commands,
		Instructions: p.total,
		Startup:      p.byPhase[PhaseStartup],
		FetchDecode:  p.byPhase[PhaseFetchDecode],
		Execute:      p.byPhase[PhaseExecute],
		Loads:        p.loads,
		Stores:       p.stores,
	}
	for _, o := range p.ops {
		if o.count == 0 && o.fd == 0 && o.ex == 0 {
			continue
		}
		s.Ops = append(s.Ops, OpStats{Name: o.name, Count: o.count, FetchDecode: o.fd, Execute: o.ex})
	}
	sort.Slice(s.Ops, func(i, j int) bool {
		ti, tj := s.Ops[i].Total(), s.Ops[j].Total()
		if ti != tj {
			return ti > tj
		}
		return s.Ops[i].Name < s.Ops[j].Name
	})
	for _, r := range p.regions {
		s.Regions = append(s.Regions, RegionStats{Name: r.name, Instructions: r.instr, Accesses: r.accesses})
	}
	for key, count := range p.pairs {
		s.Pairs = append(s.Pairs, PairStats{
			First:  p.ops[key>>32].name,
			Second: p.ops[uint32(key)].name,
			Count:  count,
		})
	}
	sort.Slice(s.Pairs, func(i, j int) bool {
		if s.Pairs[i].Count != s.Pairs[j].Count {
			return s.Pairs[i].Count > s.Pairs[j].Count
		}
		if s.Pairs[i].First != s.Pairs[j].First {
			return s.Pairs[i].First < s.Pairs[j].First
		}
		return s.Pairs[i].Second < s.Pairs[j].Second
	})
	if len(s.Pairs) > maxPairStats {
		s.Pairs = s.Pairs[:maxPairStats]
	}
	return s
}

// Region returns the stats for a named region and whether it exists.
func (s Stats) Region(name string) (RegionStats, bool) {
	for _, r := range s.Regions {
		if r.Name == name {
			return r, true
		}
	}
	return RegionStats{}, false
}

// Op returns the stats for a named virtual command and whether it exists.
func (s Stats) Op(name string) (OpStats, bool) {
	for _, o := range s.Ops {
		if o.Name == name {
			return o, true
		}
	}
	return OpStats{}, false
}
