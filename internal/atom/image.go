// Package atom is the instrumentation layer of the laboratory — the analog
// of the ATOM binary-rewriting tool the paper used on Digital Unix.
//
// The paper observes interpreters at the granularity of native Alpha
// instructions: how many execute per virtual command, which phase
// (fetch/decode vs. execute) they belong to, and which instruction and data
// addresses they touch.  We cannot rewrite the Go binary that hosts our
// interpreters, so instead every interpreter routine registers a synthetic
// *code region* with an Image, and the interpreter reports its work to a
// Probe ("execute n instructions of the symbol-table lookup routine", "load
// the word at this bucket address").  The Probe synthesizes the
// corresponding native-instruction events and keeps the paper's books:
// virtual command counts, per-command fetch/decode and execute instruction
// counts, per-region attribution (for the §3.3 memory-model numbers), and
// the event stream consumed by the processor simulator.
//
// Costs are not invented per benchmark: each routine's instruction counts
// are a small calibrated constant (documented where the routine is
// registered) multiplied by the real work performed — characters parsed,
// hash probes made, bytes copied, pixels drawn.
package atom

import (
	"fmt"

	"interplab/internal/trace"
)

// Address-space layout of the synthetic native machine.  The choice mimics a
// conventional Unix process image: code low, static data in the middle,
// stack at the top.  All that matters to the simulator is that distinct
// structures get distinct, stable pages.
const (
	// CodeBase is the first instruction address handed to routines.
	CodeBase uint32 = 0x0040_0000
	// DataBase is the first byte handed to data regions.
	DataBase uint32 = 0x1000_0000
	// StackTop is the initial native stack pointer (the stack grows down).
	StackTop uint32 = 0x7fff_f000
)

// Image is the synthetic program image: a packed layout of code routines and
// data regions.  Build one Image per measured run, register the
// interpreter's routines and data structures against it, then create a Probe
// to execute against a trace sink.
type Image struct {
	nextCode uint32
	nextData uint32
	routines []*Routine
	regions  []*DataRegion
}

// NewImage returns an empty image.
func NewImage() *Image {
	return &Image{nextCode: CodeBase, nextData: DataBase}
}

// Routine registers a code routine of size instructions and returns it.
// Routines are packed in registration order, 32-byte (cache-line) aligned,
// just as a linker would lay out a binary's text segment.  The size should
// reflect the static code footprint of the corresponding interpreter
// routine: it bounds the instruction addresses Exec walks, and therefore
// determines how much instruction-cache space the routine occupies.
func (im *Image) Routine(name string, size int, opts ...RoutineOpt) *Routine {
	if size < 1 {
		size = 1
	}
	r := &Routine{
		Name:        name,
		Base:        im.nextCode,
		Size:        size,
		branchEvery: 8,
		shortEvery:  16,
		rng:         im.nextCode*2654435761 + 1,
	}
	for _, o := range opts {
		o(r)
	}
	im.nextCode += uint32(size) * 4
	// Align the next routine to a cache line.
	im.nextCode = (im.nextCode + 31) &^ 31
	im.routines = append(im.routines, r)
	return r
}

// Data registers a data region of the given byte size and returns it.
// Regions are packed with 64-byte alignment.
func (im *Image) Data(name string, size uint32) *DataRegion {
	if size == 0 {
		size = 1
	}
	d := &DataRegion{Name: name, Base: im.nextData, Size: size}
	im.nextData += size
	im.nextData = (im.nextData + 63) &^ 63
	im.regions = append(im.regions, d)
	return d
}

// CodeBytes returns the total text-segment footprint in bytes.
func (im *Image) CodeBytes() uint32 { return im.nextCode - CodeBase }

// DataBytes returns the total static-data footprint in bytes.
func (im *Image) DataBytes() uint32 { return im.nextData - DataBase }

// Routines returns the registered routines in layout order.
func (im *Image) Routines() []*Routine { return im.routines }

// RoutineOpt configures a routine at registration time.
type RoutineOpt func(*Routine)

// WithBranchEvery sets how many instructions separate conditional branches
// inside the routine (default 8, a typical compiled-C basic-block length).
func WithBranchEvery(n int) RoutineOpt {
	return func(r *Routine) {
		if n > 0 {
			r.branchEvery = n
		}
	}
}

// WithShortEvery sets how many instructions separate short-integer
// (shift/byte) instructions (default 16).  String and byte-bashing routines
// should set this low: on the simulated 21064, as on the real one, byte
// operations are a stall source of their own.
func WithShortEvery(n int) RoutineOpt {
	return func(r *Routine) {
		if n > 0 {
			r.shortEvery = n
		}
	}
}

// Routine is a registered code routine.  A Probe walks its address range as
// the interpreter reports executed instructions.
type Routine struct {
	Name string
	Base uint32
	Size int // in instructions (4 bytes each)

	branchEvery int
	shortEvery  int

	// Walk state (owned by the probe executing against the image).
	cursor  int
	sinceBr int
	sinceSh int
	rng     uint32
}

// End returns the first address past the routine.
func (r *Routine) End() uint32 { return r.Base + uint32(r.Size)*4 }

// pc returns the current instruction address.
func (r *Routine) pc() uint32 { return r.Base + uint32(r.cursor)*4 }

func (r *Routine) String() string {
	return fmt.Sprintf("%s@%#x[%d]", r.Name, r.Base, r.Size)
}

// next32 advances the routine's deterministic branch-direction generator.
func (r *Routine) next32() uint32 {
	x := r.rng
	x ^= x << 13
	x ^= x >> 17
	x ^= x << 5
	r.rng = x
	return x
}

// DataRegion is a registered data structure in the synthetic address space.
type DataRegion struct {
	Name string
	Base uint32
	Size uint32
}

// Addr returns the address of byte off within the region.  Offsets beyond
// the declared size wrap, so fixed-size regions can stand in for structures
// that grow: the working set stays bounded the way the declared size says.
func (d *DataRegion) Addr(off uint32) uint32 {
	if d.Size == 0 {
		return d.Base
	}
	return d.Base + off%d.Size
}

func (d *DataRegion) String() string {
	return fmt.Sprintf("%s@%#x[%d]", d.Name, d.Base, d.Size)
}

var _ trace.Sink = (*trace.Counter)(nil)
