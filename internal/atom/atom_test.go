package atom

import (
	"testing"
	"testing/quick"

	"interplab/internal/trace"
)

func TestImageLayout(t *testing.T) {
	im := NewImage()
	r1 := im.Routine("dispatch", 40)
	r2 := im.Routine("handler", 100)
	if r1.Base != CodeBase {
		t.Errorf("first routine base = %#x, want %#x", r1.Base, CodeBase)
	}
	if r2.Base < r1.End() {
		t.Errorf("routines overlap: r1 ends %#x, r2 starts %#x", r1.End(), r2.Base)
	}
	if r2.Base%32 != 0 {
		t.Errorf("routine base %#x not cache-line aligned", r2.Base)
	}
	d1 := im.Data("heap", 4096)
	d2 := im.Data("symtab", 1024)
	if d1.Base != DataBase {
		t.Errorf("first data base = %#x, want %#x", d1.Base, DataBase)
	}
	if d2.Base < d1.Base+d1.Size {
		t.Errorf("data regions overlap")
	}
	if im.CodeBytes() == 0 || im.DataBytes() == 0 {
		t.Error("footprints must be nonzero")
	}
	if len(im.Routines()) != 2 {
		t.Errorf("Routines() = %d entries, want 2", len(im.Routines()))
	}
}

func TestImageLayoutProperty(t *testing.T) {
	// Property: routines never overlap and are registered in ascending order.
	f := func(sizes []uint16) bool {
		im := NewImage()
		var prevEnd uint32
		for i, s := range sizes {
			r := im.Routine("r", int(s%2000)+1)
			if i > 0 && r.Base < prevEnd {
				return false
			}
			prevEnd = r.End()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDataRegionAddrWraps(t *testing.T) {
	im := NewImage()
	d := im.Data("buf", 100)
	if d.Addr(0) != d.Base {
		t.Errorf("Addr(0) = %#x, want base %#x", d.Addr(0), d.Base)
	}
	if d.Addr(100) != d.Base {
		t.Errorf("Addr(size) must wrap to base")
	}
	if a := d.Addr(250); a < d.Base || a >= d.Base+d.Size {
		t.Errorf("wrapped address %#x escapes region [%#x,%#x)", a, d.Base, d.Base+d.Size)
	}
}

func TestExecStaysInRoutine(t *testing.T) {
	im := NewImage()
	r := im.Routine("loop", 64)
	var rec trace.Recorder
	p := NewProbe(im, &rec)
	p.Exec(r, 1000)
	p.FlushEvents()
	if len(rec.Events) != 1000 {
		t.Fatalf("emitted %d events, want 1000", len(rec.Events))
	}
	for i, e := range rec.Events {
		if e.PC < r.Base || e.PC >= r.End() {
			t.Fatalf("event %d PC %#x outside routine [%#x,%#x)", i, e.PC, r.Base, r.End())
		}
	}
}

func TestExecEmitsMix(t *testing.T) {
	im := NewImage()
	r := im.Routine("strops", 128, WithShortEvery(4), WithBranchEvery(6))
	var c trace.Counter
	p := NewProbe(im, &c)
	p.Exec(r, 10000)
	p.FlushEvents()
	if c.Total != 10000 {
		t.Fatalf("total = %d, want 10000", c.Total)
	}
	if c.Kind(trace.ShortInt) == 0 {
		t.Error("expected short-int instructions in the mix")
	}
	if c.Branches() == 0 {
		t.Error("expected conditional branches in the mix")
	}
	// A branch roughly every 6 instructions: between 1/12 and 1/3 of stream.
	frac := float64(c.Branches()) / float64(c.Total)
	if frac < 1.0/12 || frac > 1.0/3 {
		t.Errorf("branch fraction %.3f implausible for branchEvery=6", frac)
	}
}

func TestLoadStoreAccounting(t *testing.T) {
	im := NewImage()
	r := im.Routine("r", 32)
	d := im.Data("d", 256)
	var c trace.Counter
	p := NewProbe(im, &c)
	p.Exec(r, 10)
	p.Load(d.Addr(0))
	p.Store(d.Addr(4))
	p.LoadRange(d.Addr(0), 5)
	p.StoreRange(d.Addr(0), 3)
	p.FlushEvents()
	st := p.Stats()
	if st.Loads != 6 || st.Stores != 4 {
		t.Errorf("loads=%d stores=%d, want 6/4", st.Loads, st.Stores)
	}
	if c.Loads() != 6 || c.Stores() != 4 {
		t.Errorf("sink loads=%d stores=%d, want 6/4", c.Loads(), c.Stores())
	}
	if st.Instructions != 10+6+4 {
		t.Errorf("instructions = %d, want 20", st.Instructions)
	}
}

func TestCommandAccounting(t *testing.T) {
	im := NewImage()
	disp := im.Routine("dispatch", 24)
	add := im.Routine("op-add", 16)
	p := NewProbe(im, trace.Discard)
	opAdd := p.OpName("add")
	opSub := p.OpName("sub")

	for i := 0; i < 10; i++ {
		p.BeginCommand(opAdd)
		p.Exec(disp, 5) // fetch/decode
		p.BeginExecute()
		p.Exec(add, 7)
		p.EndCommand()
	}
	p.BeginCommand(opSub)
	p.Exec(disp, 5)
	p.BeginExecute()
	p.Exec(add, 3)
	p.EndCommand()

	st := p.Stats()
	if st.Commands != 11 {
		t.Fatalf("commands = %d, want 11", st.Commands)
	}
	a, ok := st.Op("add")
	if !ok || a.Count != 10 || a.FetchDecode != 50 || a.Execute != 70 {
		t.Fatalf("add stats wrong: %+v", a)
	}
	s, ok := st.Op("sub")
	if !ok || s.Count != 1 || s.FetchDecode != 5 || s.Execute != 3 {
		t.Fatalf("sub stats wrong: %+v", s)
	}
	fd, ex := st.InstructionsPerCommand()
	if fd != 5 || ex != (70.0+3)/11 {
		t.Errorf("per-command fd=%.2f ex=%.2f", fd, ex)
	}
	// Ops sorted by descending total.
	if st.Ops[0].Name != "add" {
		t.Errorf("expected add first, got %s", st.Ops[0].Name)
	}
}

func TestStartupPhase(t *testing.T) {
	im := NewImage()
	parse := im.Routine("parse", 200)
	run := im.Routine("run", 50)
	p := NewProbe(im, trace.Discard)
	p.SetStartup(true)
	p.Exec(parse, 123)
	p.SetStartup(false)
	op := p.OpName("cmd")
	p.BeginCommand(op)
	p.BeginExecute()
	p.Exec(run, 10)
	p.EndCommand()
	st := p.Stats()
	if st.Startup != 123 {
		t.Errorf("startup = %d, want 123", st.Startup)
	}
	if st.Execute != 10 {
		t.Errorf("execute = %d, want 10", st.Execute)
	}
}

func TestRegionAccounting(t *testing.T) {
	im := NewImage()
	r := im.Routine("lookup", 80)
	p := NewProbe(im, trace.Discard)
	mem := p.RegionName("memmodel")
	inner := p.RegionName("hash")

	p.Enter(mem)
	p.Exec(r, 10)
	p.Enter(inner)
	p.Exec(r, 5)
	p.Leave()
	p.Exec(r, 2)
	p.CountAccess(mem)
	p.Leave()
	p.Exec(r, 100) // outside any region

	st := p.Stats()
	m, _ := st.Region("memmodel")
	if m.Instructions != 17 {
		t.Errorf("memmodel instr = %d, want 17 (inclusive)", m.Instructions)
	}
	if m.Accesses != 1 {
		t.Errorf("memmodel accesses = %d, want 1", m.Accesses)
	}
	if m.PerAccess() != 17 {
		t.Errorf("per-access = %.1f, want 17", m.PerAccess())
	}
	h, _ := st.Region("hash")
	if h.Instructions != 5 {
		t.Errorf("hash instr = %d, want 5", h.Instructions)
	}
}

func TestCallRet(t *testing.T) {
	im := NewImage()
	caller := im.Routine("caller", 40)
	callee := im.Routine("callee", 30)
	var rec trace.Recorder
	p := NewProbe(im, &rec)
	p.Exec(caller, 3)
	p.Call(callee)
	p.Exec(callee, 5)
	p.Ret()
	p.Exec(caller, 2)
	p.FlushEvents()

	var jumps, rets int
	for _, e := range rec.Events {
		switch e.Kind {
		case trace.Jump:
			jumps++
			if !e.Call() {
				t.Error("jump should carry call flag")
			}
			if e.Addr != callee.Base {
				t.Errorf("call target %#x, want %#x", e.Addr, callee.Base)
			}
		case trace.Return:
			rets++
		}
	}
	if jumps != 1 || rets != 1 {
		t.Fatalf("jumps=%d rets=%d, want 1/1", jumps, rets)
	}
	// Call/Ret also generate register save/restore traffic.
	st := p.Stats()
	if st.Loads != 2 || st.Stores != 2 {
		t.Errorf("frame traffic loads=%d stores=%d, want 2/2", st.Loads, st.Stores)
	}
	// After return, execution resumes in the caller's range.
	last := rec.Events[len(rec.Events)-1]
	if last.PC < caller.Base || last.PC >= caller.End() {
		t.Errorf("after ret, PC %#x outside caller", last.PC)
	}
}

func TestRetWithoutCallIsNoop(t *testing.T) {
	im := NewImage()
	p := NewProbe(im, trace.Discard)
	p.Ret() // must not panic
	if p.Total() != 0 {
		t.Errorf("unbalanced ret emitted %d instructions", p.Total())
	}
}

func TestNestedCalls(t *testing.T) {
	im := NewImage()
	a := im.Routine("a", 20)
	b := im.Routine("b", 20)
	c := im.Routine("c", 20)
	p := NewProbe(im, trace.Discard)
	p.Exec(a, 2)
	p.Call(b)
	p.Exec(b, 2)
	p.Call(c)
	p.Exec(c, 2)
	p.Ret()
	p.Exec(b, 1)
	p.Ret()
	p.Exec(a, 1)
	// Balanced stack: sp restored.
	if p.sp != StackTop {
		t.Errorf("sp = %#x, want %#x after balanced calls", p.sp, StackTop)
	}
}

func TestOpNameInterning(t *testing.T) {
	p := NewProbe(NewImage(), trace.Discard)
	a := p.OpName("x")
	b := p.OpName("x")
	c := p.OpName("y")
	if a != b {
		t.Error("same name must intern to same id")
	}
	if a == c {
		t.Error("different names must get different ids")
	}
}

func TestExecTotalMatchesSink(t *testing.T) {
	// Property: for any sequence of exec/load/store amounts, the probe's
	// instruction total equals the sink's event total.
	f := func(ops []uint8) bool {
		im := NewImage()
		r := im.Routine("r", 77)
		d := im.Data("d", 1024)
		var c trace.Counter
		p := NewProbe(im, &c)
		for _, o := range ops {
			switch o % 3 {
			case 0:
				p.Exec(r, int(o%50)+1)
			case 1:
				p.Load(d.Addr(uint32(o)))
			case 2:
				p.Store(d.Addr(uint32(o)))
			}
		}
		p.FlushEvents()
		return p.Total() == c.Total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStatsPhaseConservation(t *testing.T) {
	// Property: startup + fetchdecode + execute == total instructions.
	f := func(ops []uint8) bool {
		im := NewImage()
		r := im.Routine("r", 33)
		p := NewProbe(im, trace.Discard)
		op := p.OpName("o")
		for _, o := range ops {
			switch o % 4 {
			case 0:
				p.SetStartup(true)
				p.Exec(r, int(o%7)+1)
				p.SetStartup(false)
			case 1:
				p.BeginCommand(op)
				p.Exec(r, 2)
				p.BeginExecute()
				p.Exec(r, 3)
				p.EndCommand()
			case 2:
				p.Exec(r, 1)
			case 3:
				p.Load(DataBase)
			}
		}
		st := p.Stats()
		return st.Startup+st.FetchDecode+st.Execute == st.Instructions
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
