package atom

import (
	"interplab/internal/trace"
)

// Phase classifies where in the interpretation cycle an instruction belongs.
// The split mirrors Table 2 of the paper: instructions spent fetching and
// decoding a virtual command versus instructions spent executing it, with
// Perl's one-time program precompilation reported separately.
type Phase uint8

const (
	// PhaseFetchDecode covers the dispatch loop and command decoding.
	PhaseFetchDecode Phase = iota
	// PhaseExecute covers the work the virtual command specifies.
	PhaseExecute
	// PhaseStartup covers one-time program precompilation (Perl's parse,
	// MIPSI's binary load, ...).
	PhaseStartup

	numPhases = int(PhaseStartup) + 1
)

// NumPhases counts the phases; Phase values are 0..NumPhases-1.
const NumPhases = numPhases

// phaseNames match the atom.Stats JSON tags (fetch_decode, execute,
// startup) so profile, manifest, and text output share one vocabulary.
var phaseNames = [numPhases]string{"fetch_decode", "execute", "startup"}

// String returns the phase name used by the manifest schema and the
// profiling layer.
func (ph Phase) String() string {
	if int(ph) < numPhases {
		return phaseNames[ph]
	}
	return "invalid"
}

// OpID names a virtual command, interned on a Probe.
type OpID int

// RegionID names an attribution region (e.g. the memory-model machinery),
// interned on a Probe.
type RegionID int

// Probe is the measurement context for one run: interpreters report work to
// it, and it emits the native-instruction stream while keeping per-command
// and per-region accounts.
type Probe struct {
	img  *Image
	sink trace.Sink

	// batch buffers emitted events into struct-of-arrays blocks and hands
	// whole blocks to sink; batching turns the per-event path back on
	// (SetBatching), attrSync forces a flush before every attribution
	// change so blocks are attribution-uniform for miss-joining sinks
	// (RequireAttrSync), and attrTag — the lighter alternative — records a
	// tagged segment boundary in the buffered block instead
	// (MarkAttrBoundaries).
	batch    *trace.Batcher
	batching bool
	attrSync bool
	attrTag  func() any

	cur      *Routine
	frames   []frame
	sp       uint32
	stackReg *DataRegion

	// frameTop tracks the identity of the pushed-frame list in a trie
	// (FramesID); frameN hands out trie-node ids.
	frameTop *frameNode
	frameN   uint64

	lastDep bool
	depRng  uint32

	phase    Phase
	curOp    OpID
	ops      []opStat
	opNames  map[string]OpID
	commands uint64

	// countPairs switches on dynamic opcode-pair profiling: BeginCommand
	// counts every (previous, current) command pair in pairs, keyed
	// prev<<32|cur.  Off by default — the map update costs a few ns per
	// command, so only hot-pair measurements pay it.
	countPairs bool
	lastOp     OpID
	pairs      map[uint64]uint64

	// attrVersion increments whenever the attribution state a sink could
	// observe (frame stack, current routine, open command, phase) changes.
	// Profiling sinks use it to re-resolve their sample stack only on
	// transitions instead of on every event.
	attrVersion uint64

	regions     []regionStat
	regionNames map[string]RegionID
	regionStack []RegionID

	total   uint64
	byPhase [numPhases]uint64
	loads   uint64
	stores  uint64
	// opTotals accumulate only while a command is open.
	unattributed uint64
}

type frame struct {
	r      *Routine
	cursor int
}

// frameNode is one vertex of the probe's call-stack identity trie: the
// path of pushed routines from the root names one frames list, and id is
// its dense identifier (the empty list is 0).  Two moments with equal
// FramesID have byte-identical pushed frames, which lets attribution
// consumers use the id as a cache-key component instead of re-walking the
// stack.
type frameNode struct {
	id   uint64
	par  *frameNode
	kids map[*Routine]*frameNode
}

type opStat struct {
	name  string
	count uint64
	fd    uint64
	ex    uint64
}

type regionStat struct {
	name     string
	instr    uint64
	accesses uint64
}

// NewProbe returns a probe over img writing events to sink.  Use
// trace.Discard to count without simulating.
func NewProbe(img *Image, sink trace.Sink) *Probe {
	if sink == nil {
		sink = trace.Discard
	}
	p := &Probe{
		img:         img,
		sink:        sink,
		batch:       trace.NewBatcher(sink),
		batching:    true,
		curOp:       -1,
		lastOp:      -1,
		opNames:     make(map[string]OpID),
		regionNames: make(map[string]RegionID),
		depRng:      0x9e3779b9,
		sp:          StackTop,
	}
	p.stackReg = &DataRegion{Name: "native-stack", Base: StackTop - 1<<20, Size: 1 << 20}
	return p
}

// Image returns the image the probe executes against.
func (p *Probe) Image() *Image { return p.img }

// --- batched emission --------------------------------------------------------

// RequireAttrSync makes the probe flush its event buffer before every
// attribution change (command begin/end, phase switch, call/return, routine
// switch), so each delivered block is uniform under one attribution state.
// Only consumers that join out-of-band per-event callbacks to the stream
// need it — the pipeline's cache-miss observer attributes a miss to the
// profiling collector's current node, which is coherent only when the
// whole in-flight block shares one state.  Plain attribution consumers use
// MarkAttrBoundaries instead and keep full blocks.  It takes precedence
// over a registered boundary callback.
func (p *Probe) RequireAttrSync() { p.attrSync = true }

// MarkAttrBoundaries registers a callback invoked at every attribution
// change while the outgoing state — the one every buffered event was
// emitted under — is still live; its return value is recorded as a tagged
// segment boundary (trace.SegMark) in the buffered block.  A profiling
// sink resolves each segment of a full block from its tag, which keeps
// blocks at capacity instead of flushing a few-event block per virtual
// command the way RequireAttrSync does.  Boundaries with no events since
// the previous one are skipped without calling tag.
func (p *Probe) MarkAttrBoundaries(tag func() any) { p.attrTag = tag }

// SetBatching switches between batched block delivery (the default) and the
// per-event path that calls sink.Emit once per instruction.  Turning
// batching off flushes anything buffered first, so no events are lost or
// reordered across the switch.  The two modes produce identical sink
// state; per-event exists as the differential-testing and overhead-bench
// baseline.
func (p *Probe) SetBatching(on bool) {
	if !on {
		p.batch.Flush(trace.FlushFinal)
	}
	p.batching = on
}

// FlushEvents delivers any buffered events to the sink.  Call it before
// reading sink-side state (counters, recorders, simulators, profiles);
// measurements do this once at collect time.
func (p *Probe) FlushEvents() { p.batch.Flush(trace.FlushFinal) }

// BatchStats returns the probe's batching account: events and blocks
// delivered, split by flush trigger.  All zero when batching is off.
func (p *Probe) BatchStats() trace.BatchStats { return p.batch.Stats() }

// bumpAttr records an attribution change: while the outgoing state, under
// which every buffered event was emitted, is still live, the buffer is
// either flushed (attr-sync consumers) or segment-marked (boundary-marking
// consumers); then the version moves.  Callers must invoke it BEFORE
// mutating attribution state.
func (p *Probe) bumpAttr() {
	if p.attrSync {
		p.batch.Flush(trace.FlushAttr)
	} else if p.attrTag != nil && p.batch.NeedMark() {
		p.batch.Mark(p.attrTag())
	}
	p.attrVersion++
}

// --- virtual command accounting -------------------------------------------

// OpName interns a virtual-command name.  Interpreters should intern once,
// at setup, and use the returned id on the hot path.
func (p *Probe) OpName(name string) OpID {
	if id, ok := p.opNames[name]; ok {
		return id
	}
	id := OpID(len(p.ops))
	p.ops = append(p.ops, opStat{name: name})
	p.opNames[name] = id
	return id
}

// BeginCommand opens a virtual command: the command count increments and
// subsequent instructions are attributed to the command's fetch/decode
// phase until BeginExecute.
func (p *Probe) BeginCommand(op OpID) {
	p.bumpAttr()
	p.curOp = op
	p.ops[op].count++
	p.commands++
	p.phase = PhaseFetchDecode
	if p.countPairs {
		if p.lastOp >= 0 {
			p.pairs[uint64(p.lastOp)<<32|uint64(uint32(op))]++
		}
		p.lastOp = op
	}
}

// CountPairs switches dynamic opcode-pair counting on or off: while on,
// every BeginCommand records the (previous, current) command pair, and
// Stats reports the hottest pairs (Stats.Pairs).  The counts are the
// profile layer's superinstruction-selection input (the fused-pair tables
// in internal/jvm and internal/mipsi cite them); they are off by default
// so ordinary measurements don't pay for the map update.
func (p *Probe) CountPairs(on bool) {
	p.countPairs = on
	if on && p.pairs == nil {
		p.pairs = make(map[uint64]uint64)
	}
}

// BeginExecute switches attribution of the open command to its execute
// phase.
func (p *Probe) BeginExecute() {
	p.bumpAttr()
	p.phase = PhaseExecute
}

// EndCommand closes the open command; instructions between commands belong
// to fetch/decode (the dispatch loop).
func (p *Probe) EndCommand() {
	p.bumpAttr()
	p.curOp = -1
	p.phase = PhaseFetchDecode
}

// SetStartup switches the probe in or out of the startup (precompilation)
// phase.
func (p *Probe) SetStartup(on bool) {
	p.bumpAttr()
	if on {
		p.phase = PhaseStartup
	} else {
		p.phase = PhaseFetchDecode
	}
}

// Commands returns the number of virtual commands begun so far.
func (p *Probe) Commands() uint64 { return p.commands }

// Total returns the number of native instructions emitted so far.
func (p *Probe) Total() uint64 { return p.total }

// --- attribution state (for profiling sinks) --------------------------------

// AttrVersion returns a counter that increments whenever the probe's
// attribution state (call stack, current routine, open command, phase)
// changes.  A sink observing the event stream may cache the resolved stack
// and re-resolve only when the version moves.
func (p *Probe) AttrVersion() uint64 { return p.attrVersion }

// CallStack appends the probe's current native call stack to buf —
// outermost caller first, ending at the routine currently executing — and
// returns the extended slice.  Routines entered via Exec without a Call
// appear as the leaf.
func (p *Probe) CallStack(buf []*Routine) []*Routine {
	for _, f := range p.frames {
		if f.r != nil {
			buf = append(buf, f.r)
		}
	}
	if p.cur != nil {
		buf = append(buf, p.cur)
	}
	return buf
}

// CurrentPhase returns the phase instructions are being attributed to.
func (p *Probe) CurrentPhase() Phase { return p.phase }

// CurrentOp returns the name of the open virtual command, or "" and false
// between commands (the dispatch loop and startup).
func (p *Probe) CurrentOp() (string, bool) {
	if p.curOp < 0 {
		return "", false
	}
	return p.ops[p.curOp].name, true
}

// CurrentOpID returns the open virtual command's interned id, or -1
// between commands.  Ids are stable for the probe's lifetime, so together
// with FramesID, CurrentRoutine, and CurrentPhase they form a complete,
// cheaply comparable key for the probe's attribution state.
func (p *Probe) CurrentOpID() OpID { return p.curOp }

// CurrentRoutine returns the routine currently executing — the call-stack
// leaf — or nil before any Exec.
func (p *Probe) CurrentRoutine() *Routine { return p.cur }

// FramesID identifies the current pushed-frame list (the call stack
// excluding the executing leaf): equal ids mean identical frames.  The id
// is maintained incrementally on Call/Ret, so reading it is one load.
func (p *Probe) FramesID() uint64 {
	if p.frameTop == nil {
		return 0
	}
	return p.frameTop.id
}

// pushFrameID descends the identity trie for a frame push of r.
func (p *Probe) pushFrameID(r *Routine) {
	t := p.frameTop
	if t == nil {
		t = &frameNode{}
		p.frameTop = t
	}
	c, ok := t.kids[r]
	if !ok {
		p.frameN++
		c = &frameNode{id: p.frameN, par: t}
		if t.kids == nil {
			t.kids = make(map[*Routine]*frameNode, 4)
		}
		t.kids[r] = c
	}
	p.frameTop = c
}

// popFrameID ascends the identity trie for a frame pop.
func (p *Probe) popFrameID() {
	if p.frameTop != nil && p.frameTop.par != nil {
		p.frameTop = p.frameTop.par
	}
}

// --- region accounting ------------------------------------------------------

// RegionName interns an attribution region name.
func (p *Probe) RegionName(name string) RegionID {
	if id, ok := p.regionNames[name]; ok {
		return id
	}
	id := RegionID(len(p.regions))
	p.regions = append(p.regions, regionStat{name: name})
	p.regionNames[name] = id
	return id
}

// Enter pushes an attribution region; instructions emitted until the
// matching Leave are credited to it (inclusively, through nesting).
func (p *Probe) Enter(id RegionID) { p.regionStack = append(p.regionStack, id) }

// Leave pops the innermost attribution region.
func (p *Probe) Leave() { p.regionStack = p.regionStack[:len(p.regionStack)-1] }

// CountAccess records one memory-model access against a region, for the
// §3.3 per-access averages.
func (p *Probe) CountAccess(id RegionID) { p.regions[id].accesses++ }

// --- instruction emission ---------------------------------------------------

func (p *Probe) account(n uint64) {
	p.total += n
	p.byPhase[p.phase] += n
	if p.curOp >= 0 {
		switch p.phase {
		case PhaseFetchDecode:
			p.ops[p.curOp].fd += n
		case PhaseExecute:
			p.ops[p.curOp].ex += n
		}
	} else if p.phase == PhaseFetchDecode {
		p.unattributed += n
	}
	for _, id := range p.regionStack {
		p.regions[id].instr += n
	}
}

// emit sends one event, handling dependence flags.
func (p *Probe) emit(e trace.Event) {
	if p.lastDep {
		// Roughly half of the instructions that follow a load or a
		// long-latency op consume its result; the deterministic
		// generator keeps runs repeatable.
		x := p.depRng
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		p.depRng = x
		if x&1 == 0 {
			e.Flags |= trace.FlagDep
		}
	}
	p.lastDep = e.Kind == trace.Load || e.Kind == trace.ShortInt || e.Kind == trace.Mul
	if p.batching {
		p.batch.Append(e)
		return
	}
	p.sink.Emit(e)
}

// Exec reports n executed instructions inside routine r.  The probe walks
// r's address range from its current cursor, emitting integer instructions
// seasoned with the routine's short-integer and conditional-branch mix, and
// loops back to the top when it falls off the end — modelling the inner
// loops that make a routine's dynamic instruction count exceed its static
// size.
func (p *Probe) Exec(r *Routine, n int) {
	if n <= 0 {
		return
	}
	p.setCur(r)
	p.account(uint64(n))
	for i := 0; i < n; i++ {
		pc := r.pc()
		r.cursor++
		r.sinceBr++
		r.sinceSh++
		if r.cursor >= r.Size {
			// Loop back to the routine top: a taken backward branch.
			r.cursor = 0
			r.sinceBr = 0
			p.emit(trace.Event{PC: pc, Addr: r.Base, Kind: trace.Branch, Flags: trace.FlagTaken})
			continue
		}
		if r.sinceBr >= r.branchEvery {
			r.sinceBr = 0
			// Branch direction: most sites are strongly biased (loops and
			// error checks repeat their direction, which a 1-bit predictor
			// learns); a minority of data-dependent sites flip randomly.
			site := (pc>>2)*2654435761 ^ pc>>13
			var taken bool
			if site%8 == 0 {
				taken = r.next32()&1 != 0 // data-dependent site
			} else {
				taken = site&8 != 0 // stable per-site direction
			}
			fl := trace.Flags(0)
			var target uint32
			if taken {
				fl = trace.FlagTaken
				// Short backward branch: stay inside the routine.
				back := (site/16)%uint32(r.branchEvery) + 1
				if int(back) > r.cursor {
					back = uint32(r.cursor)
				}
				r.cursor -= int(back)
				target = r.Base + uint32(r.cursor)*4
			} else {
				target = pc + 16
			}
			p.emit(trace.Event{PC: pc, Addr: target, Kind: trace.Branch, Flags: fl})
			continue
		}
		if r.sinceSh >= r.shortEvery {
			r.sinceSh = 0
			p.emit(trace.Event{PC: pc, Kind: trace.ShortInt})
			continue
		}
		p.emit(trace.Event{PC: pc, Kind: trace.Int})
	}
}

// setCur switches the executing routine, bumping the attribution version
// when it actually changes.
func (p *Probe) setCur(r *Routine) {
	if p.cur != r {
		p.bumpAttr()
		p.cur = r
	}
}

// ExecMul reports n long-latency (multiply/divide) instructions in r.
func (p *Probe) ExecMul(r *Routine, n int) {
	p.setCur(r)
	p.account(uint64(n))
	for i := 0; i < n; i++ {
		pc := r.pc()
		r.cursor = (r.cursor + 1) % r.Size
		p.emit(trace.Event{PC: pc, Kind: trace.Mul})
	}
}

// step advances the current routine's cursor and returns the instruction
// address for a memory or control event.
func (p *Probe) step() uint32 {
	r := p.cur
	if r == nil {
		return CodeBase
	}
	pc := r.pc()
	r.cursor = (r.cursor + 1) % r.Size
	return pc
}

// Load reports one load at addr issued from the current routine.
func (p *Probe) Load(addr uint32) {
	p.account(1)
	p.loads++
	p.emit(trace.Event{PC: p.step(), Addr: addr, Kind: trace.Load})
}

// Store reports one store at addr issued from the current routine.
func (p *Probe) Store(addr uint32) {
	p.account(1)
	p.stores++
	p.emit(trace.Event{PC: p.step(), Addr: addr, Kind: trace.Store})
}

// LoadRange reports n word loads walking forward from addr — an array or
// string traversal.
func (p *Probe) LoadRange(addr uint32, n int) {
	for i := 0; i < n; i++ {
		p.Load(addr + uint32(i)*4)
	}
}

// StoreRange reports n word stores walking forward from addr.
func (p *Probe) StoreRange(addr uint32, n int) {
	for i := 0; i < n; i++ {
		p.Store(addr + uint32(i)*4)
	}
}

// Call reports a subroutine call into r: a jump event, callee-save stores on
// the native stack, and the callee starts executing at its top.
func (p *Probe) Call(r *Routine) {
	var retpc uint32 = CodeBase
	if p.cur != nil {
		retpc = p.cur.pc()
	}
	p.account(1)
	// The jump belongs to the caller: it is emitted — and, under attr-sync
	// batching, flushed — before the frame push changes the call stack.
	p.emit(trace.Event{PC: retpc, Addr: r.Base, Kind: trace.Jump, Flags: trace.FlagCall})
	p.bumpAttr()
	p.frames = append(p.frames, frame{r: p.cur, cursor: cursorOf(p.cur)})
	p.pushFrameID(p.cur)
	p.cur = r
	r.cursor = 0
	// Frame setup: push return address and a saved register.
	p.sp -= 16
	p.Store(p.sp)
	p.Store(p.sp + 8)
}

// Ret reports a subroutine return to the calling routine.
func (p *Probe) Ret() {
	if len(p.frames) == 0 {
		return
	}
	// Frame teardown: restore saved registers.
	p.Load(p.sp)
	p.Load(p.sp + 8)
	p.sp += 16
	f := p.frames[len(p.frames)-1]
	pc := p.step()
	var ret uint32 = CodeBase
	if f.r != nil {
		f.r.cursor = f.cursor
		ret = f.r.pc()
	}
	p.account(1)
	// The return belongs to the callee: it is emitted — and, under
	// attr-sync batching, flushed — before the frame pop changes the call
	// stack.
	p.emit(trace.Event{PC: pc, Addr: ret, Kind: trace.Return})
	p.bumpAttr()
	p.frames = p.frames[:len(p.frames)-1]
	p.popFrameID()
	p.cur = f.r
}

func cursorOf(r *Routine) int {
	if r == nil {
		return 0
	}
	return r.cursor
}
