package labserver

import (
	"fmt"
	"net/http"
	"time"

	"interplab/internal/labstats"
	"interplab/internal/telemetry"
)

// Health is the /healthz body.  Clients pin Fingerprint across requests:
// a change means the server was rebuilt and every cached measurement it
// serves comes from a different lab build (the cache invalidates itself
// the same way).
type Health struct {
	OK       bool      `json:"ok"`
	Build    BuildInfo `json:"build"`
	UptimeS  float64   `json:"uptime_s"`
	Draining bool      `json:"draining"`
}

// handleHealthz answers liveness probes; a draining server reports 503 so
// load balancers stop routing to it while in-flight work finishes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := Health{
		OK:       true,
		Build:    Info(),
		UptimeS:  time.Since(s.start).Seconds(),
		Draining: s.Draining(),
	}
	status := http.StatusOK
	if h.Draining {
		h.OK = false
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

// CacheStatus summarizes the shared measurement cache for /statusz.
type CacheStatus struct {
	Dir      string `json:"dir"`
	ReadOnly bool   `json:"readonly,omitempty"`
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Puts     uint64 `json:"puts"`
	Corrupt  uint64 `json:"corrupt,omitempty"`
}

// Status is the /statusz body: admission state, the server.* (and
// harness/core) metric snapshot, the shared cache's counters, and the
// most recent measurement batches' speedup ledgers.
type Status struct {
	Build      BuildInfo `json:"build"`
	UptimeS    float64   `json:"uptime_s"`
	Draining   bool      `json:"draining"`
	QueueDepth int       `json:"queue_depth"`
	Goroutines int       `json:"goroutines"`

	// CacheHitRatio is hits/(hits+misses) over served measurements (0
	// when nothing has been served yet).
	CacheHitRatio float64      `json:"cache_hit_ratio"`
	Cache         *CacheStatus `json:"cache,omitempty"`

	// Batches holds the most recent measurement batches' speedup ledgers
	// (oldest first) — the same sched blocks a CLI -json run records per
	// experiment, here one per coalesced request batch.
	Batches []*labstats.SchedStats `json:"batches,omitempty"`

	Metrics []telemetry.Metric `json:"metrics,omitempty"`
}

// handleStatusz renders the server's introspection page as JSON, or as
// text with ?format=text.
func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	st := s.status()
	if r.URL.Query().Get("format") == "text" {
		s.writeStatusText(w, st)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// status assembles the /statusz snapshot.
func (s *Server) status() Status {
	st := Status{
		Build:      Info(),
		UptimeS:    time.Since(s.start).Seconds(),
		Draining:   s.Draining(),
		QueueDepth: s.queueLen(),
		Goroutines: goroutines(),
		Batches:    s.recentSched(),
		Metrics:    s.reg.Snapshot(),
	}
	hits := float64(s.reg.Counter("server.cache_hits").Value())
	misses := float64(s.reg.Counter("server.cache_misses").Value())
	if hits+misses > 0 {
		st.CacheHitRatio = hits / (hits + misses)
	}
	if c := s.cfg.Cache; c != nil {
		ch, cm, cp, cc := c.Counts()
		st.Cache = &CacheStatus{
			Dir:      c.Dir(),
			ReadOnly: c.ReadOnly(),
			Hits:     ch,
			Misses:   cm,
			Puts:     cp,
			Corrupt:  cc,
		}
	}
	return st
}

// writeStatusText renders the human view: a header, one Brief line plus
// the full speedup ledger per retained batch, and the metric snapshot.
func (s *Server) writeStatusText(w http.ResponseWriter, st Status) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "interp-lab serve — %s (cache schema %d, %s)\n",
		st.Build.Fingerprint, st.Build.CacheSchema, st.Build.GoVersion)
	fmt.Fprintf(w, "uptime %.1fs, queue depth %d, goroutines %d, draining %v\n",
		st.UptimeS, st.QueueDepth, st.Goroutines, st.Draining)
	fmt.Fprintf(w, "cache hit ratio %.3f over served measurements\n", st.CacheHitRatio)
	if c := st.Cache; c != nil {
		fmt.Fprintf(w, "cache %s: %d hits, %d misses, %d puts, %d corrupt\n",
			c.Dir, c.Hits, c.Misses, c.Puts, c.Corrupt)
	}
	fmt.Fprintf(w, "\nrecent batches (%d retained):\n", len(st.Batches))
	for i, b := range st.Batches {
		fmt.Fprintf(w, "\nbatch %d: %s\n", i, b.Brief())
		b.WriteReport(w, fmt.Sprintf("batch %d", i))
	}
	fmt.Fprintf(w, "\nmetrics:\n")
	for _, m := range st.Metrics {
		fmt.Fprintf(w, "  %s\n", m.String())
	}
}
