package labserver

import (
	"fmt"
	"math"
	"net/http"
	"runtime"
	"time"

	"interplab/internal/alphasim"
	"interplab/internal/core"
	"interplab/internal/rescache"
	"interplab/internal/telemetry"
	"interplab/internal/workloads"
)

// Request is the JSON body of POST /measure: one measurement, identified
// by the same fields the measurement cache keys on (experiment scope,
// kind, program, variant, processor config, scale, profiling).  A request
// whose fields match a measurement a CLI run already cached is served from
// that entry; see docs/SERVING.md.
type Request struct {
	// Experiment scopes the cache key ("" means the server's own "serve"
	// scope).  Naming a real experiment id lets the request share cache
	// entries with CLI runs of that experiment at the same scale.
	Experiment string `json:"experiment,omitempty"`
	// Kind is "measure", "pipeline", or "sweep".
	Kind string `json:"kind"`
	// Program is the workload id, "System/name" (e.g. "Perl/des"); see
	// the suites in internal/workloads.
	Program string `json:"program"`
	// Variant must be empty: variant programs are experiment-internal
	// (ablation arms construct them with private interpreter knobs), so
	// they cannot be resolved by name.  The field exists so a future
	// variant registry slots into the same key.
	Variant string `json:"variant,omitempty"`
	// Config is the simulated-processor configuration for pipeline
	// requests; nil means alphasim.DefaultConfig().
	Config *alphasim.Config `json:"config,omitempty"`
	// Scale is the workload size multiplier (0 means 1).
	Scale float64 `json:"scale,omitempty"`
	// Profiling attaches the attribution profiler; the response then
	// carries the profile artifact, folded stacks, and pprof bytes.
	Profiling bool `json:"profiling,omitempty"`
	// TimeoutMS caps how long this request waits for its result; the
	// server's request timeout still applies.  On expiry the waiter gets
	// 504 but the measurement completes server-side and populates the
	// cache.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// Response is the JSON body of a successful POST /measure.
type Response struct {
	// Key is the measurement's content address — the same rescache key
	// hash a CLI run with -cache would store this measurement under.
	Key string `json:"key"`
	// Measurement is the manifest-identical record of the result: the
	// bytes match the corresponding measurements[] entry of a CLI
	// `-json` manifest, apart from wall time (duration_us) and cache
	// provenance (cache_hit).
	Measurement telemetry.Measurement `json:"measurement"`
	// Profile, Folded and Pprof are present on profiling requests: the
	// manifest profile artifact, the merged folded stacks (flamegraph
	// input), and the gzip'd pprof protobuf (base64 in JSON, as Go
	// encodes []byte).
	Profile *telemetry.ProfileArtifact `json:"profile,omitempty"`
	Folded  string                     `json:"folded,omitempty"`
	Pprof   []byte                     `json:"pprof,omitempty"`
}

// errorBody is the JSON body of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
	Key   string `json:"key,omitempty"`
}

// maxScale bounds request scale: a stray large value would tie a worker up
// for hours on one request.
const maxScale = 16

// resolved is a validated, program-bound request ready to schedule.
type resolved struct {
	req   Request
	prog  core.Program
	cfg   alphasim.Config       // pipeline
	sweep *alphasim.ICacheSweep // sweep (private to the one job)
	scope rescache.Scope
	key   rescache.Key
}

// httpError is a resolution failure with its HTTP status.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func errBadRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// resolve validates req and binds it to a workload program, building the
// cache key its result is (or already was) stored under.
func resolve(req Request) (*resolved, *httpError) {
	if req.Program == "" {
		return nil, errBadRequest("missing program (want \"System/name\", e.g. \"Perl/des\")")
	}
	if req.Variant != "" {
		return nil, errBadRequest("variant programs are experiment-internal and not servable (got variant %q)", req.Variant)
	}
	scale := req.Scale
	if scale == 0 {
		scale = 1
	}
	if scale < 0 || scale > maxScale || math.IsNaN(scale) || math.IsInf(scale, 0) {
		return nil, errBadRequest("scale must be in (0, %d] (got %g)", maxScale, req.Scale)
	}
	rr := &resolved{req: req}
	rr.req.Scale = scale
	switch req.Kind {
	case "measure":
		if req.Config != nil {
			return nil, errBadRequest("config only applies to pipeline requests (kind %q)", req.Kind)
		}
	case "pipeline":
		rr.cfg = alphasim.DefaultConfig()
		if req.Config != nil {
			rr.cfg = *req.Config
		}
	case "sweep":
		if req.Config != nil {
			return nil, errBadRequest("config only applies to pipeline requests (kind %q)", req.Kind)
		}
		rr.sweep = alphasim.DefaultICacheSweep()
	default:
		return nil, errBadRequest("unknown kind %q (measure, pipeline, sweep)", req.Kind)
	}
	prog, ok := findProgram(req.Program, scale)
	if !ok {
		return nil, &httpError{status: http.StatusNotFound, msg: fmt.Sprintf("unknown program %q (ids come from the workload suites; try \"Perl/des\")", req.Program)}
	}
	rr.prog = prog
	experiment := req.Experiment
	if experiment == "" {
		experiment = "serve"
	}
	rr.scope = rescache.Scope{Experiment: experiment, Scale: scale}
	rr.key = rescache.Key{
		Schema:      rescache.SchemaVersion,
		Fingerprint: rescache.Fingerprint(),
		Experiment:  experiment,
		Scale:       scale,
		Kind:        req.Kind,
		Program:     prog.ID(),
		Variant:     prog.Variant,
		Profiling:   req.Profiling,
	}
	switch req.Kind {
	case "pipeline":
		rr.key.Config = rescache.ConfigKey(rr.cfg)
	case "sweep":
		rr.key.Sweep = rr.sweep.Geometry()
	}
	return rr, nil
}

// findProgram looks a workload up by id across every suite at the given
// scale: the Table 2 macro suite, the compiled-C native baselines, and the
// Table 1 microbenchmarks.
func findProgram(id string, scale float64) (core.Program, bool) {
	for _, p := range workloads.Suite(scale) {
		if p.ID() == id {
			return p, true
		}
	}
	for _, p := range workloads.NativeSuite(scale) {
		if p.ID() == id {
			return p, true
		}
	}
	for _, m := range workloads.Micros(scale) {
		for _, p := range m.Progs {
			if p.ID() == id {
				return p, true
			}
		}
	}
	return core.Program{}, false
}

// BuildInfo identifies the running lab build: the same binary fingerprint
// the measurement cache keys on, so a client comparing fingerprints across
// requests can detect a server upgrade that orphaned its cached results.
type BuildInfo struct {
	Fingerprint string `json:"fingerprint"`
	CacheSchema int    `json:"cache_schema"`
	GoVersion   string `json:"go_version"`
}

// Info returns the running build's identity.
func Info() BuildInfo {
	return BuildInfo{
		Fingerprint: rescache.Fingerprint(),
		CacheSchema: rescache.SchemaVersion,
		GoVersion:   runtime.Version(),
	}
}

// timeout resolves the effective wait deadline for a request under the
// server-side cap.
func (r Request) timeout(cap time.Duration) time.Duration {
	d := cap
	if r.TimeoutMS > 0 {
		if t := time.Duration(r.TimeoutMS) * time.Millisecond; t < d {
			d = t
		}
	}
	return d
}
