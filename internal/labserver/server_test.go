package labserver

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"interplab/internal/harness"
	"interplab/internal/rescache"
	"interplab/internal/telemetry"
)

// testProgram is a fast microbenchmark; every e2e test measures it so the
// suite stays quick.
const testProgram = "Perl/micro-if"

// newTestServer builds a Server plus its httptest front end.  The caller
// owns shutdown (typically `defer drainNow(t, srv)`).
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.NewRegistry()
	}
	if cfg.Parallelism == 0 {
		cfg.Parallelism = 2
	}
	srv := New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

// postMeasure sends one measurement request and returns the raw response.
func postMeasure(t *testing.T, url string, req Request) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/measure", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func decodeResponse(t *testing.T, b []byte) Response {
	t.Helper()
	var r Response
	if err := json.Unmarshal(b, &r); err != nil {
		t.Fatalf("response did not decode: %v\n%s", err, b)
	}
	return r
}

func TestHappyPathMeasure(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	defer drainNow(t, srv)

	resp, body := postMeasure(t, ts.URL, Request{Kind: "measure", Program: testProgram})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Interp-Lab-Key") == "" {
		t.Error("missing X-Interp-Lab-Key header")
	}
	r := decodeResponse(t, body)
	m := r.Measurement
	if m.Program != testProgram || m.Kind != "measure" {
		t.Errorf("measurement names %q kind %q, want %q measure", m.Program, m.Kind, testProgram)
	}
	if m.Events == 0 {
		t.Error("measurement recorded zero events")
	}
	if m.Stats == nil {
		t.Error("measurement carries no software stats")
	}
	if r.Key == "" || r.Key != resp.Header.Get("X-Interp-Lab-Key") {
		t.Errorf("body key %q does not match header %q", r.Key, resp.Header.Get("X-Interp-Lab-Key"))
	}
}

// TestServedBytesMatchHarness pins the serving contract to the CLI path:
// the served measurement must be byte-identical (modulo wall time and
// cache provenance, which legitimately differ run to run) to the record
// the harness itself builds for the same request, and the two must share
// cache entries — a measurement the server performed is a cache hit for a
// CLI run with the same key, with identical measured bytes.
func TestServedBytesMatchHarness(t *testing.T) {
	cache, err := rescache.Open(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, Config{Cache: cache})
	defer drainNow(t, srv)

	resp, body := postMeasure(t, ts.URL, Request{Kind: "pipeline", Program: testProgram})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	served := decodeResponse(t, body).Measurement

	// Re-run the identical request through the harness batch API with the
	// same shared cache, as a CLI run would: it must hit the entry the
	// server stored.
	b := harness.NewBatch(harness.Options{Out: io.Discard, Cache: cache})
	j, err := b.Submit(harness.BatchJob{
		Kind:    "pipeline",
		Program: mustResolve(t, Request{Kind: "pipeline", Program: testProgram}).prog,
		Config:  mustResolve(t, Request{Kind: "pipeline", Program: testProgram}).cfg,
		Scope:   &rescache.Scope{Experiment: "serve", Scale: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Run(); err != nil {
		t.Fatal(err)
	}
	if !j.Result().FromCache {
		t.Fatal("harness re-run missed the cache: server and CLI do not share entries")
	}
	direct := harness.NewMeasurement("pipeline", j.Result(), j.Duration(), nil)

	// Normalize the two legitimately-variable fields, then demand byte
	// identity of the records.
	served.DurationUS, direct.DurationUS = 0, 0
	served.CacheHit, direct.CacheHit = false, false
	sb, _ := json.Marshal(served)
	db, _ := json.Marshal(direct)
	if !bytes.Equal(sb, db) {
		t.Errorf("served measurement differs from the harness record:\nserved: %s\ndirect: %s", sb, db)
	}
}

func mustResolve(t *testing.T, req Request) *resolved {
	t.Helper()
	rr, herr := resolve(req)
	if herr != nil {
		t.Fatalf("resolve: %v", herr)
	}
	return rr
}

// TestSingleflightDedup sends a burst of identical concurrent requests
// and requires exactly one measurement: every other waiter joins the
// in-flight call, marked by the dedup header, and all responses are
// byte-identical.
func TestSingleflightDedup(t *testing.T) {
	const burst = 8
	gate := make(chan struct{})
	reg := telemetry.NewRegistry()
	srv, ts := newTestServer(t, Config{Telemetry: reg, MaxBatch: 1, batchGate: gate})
	defer drainNow(t, srv)

	var wg sync.WaitGroup
	type result struct {
		status  int
		deduped bool
		body    []byte
	}
	results := make([]result, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postMeasure(t, ts.URL, Request{Kind: "measure", Program: testProgram})
			results[i] = result{resp.StatusCode, resp.Header.Get("X-Interp-Lab-Deduped") == "1", body}
		}(i)
	}

	// Hold the batch until every joiner is registered, so the test pins
	// "N concurrent identical requests, one measurement" rather than
	// racing the batch to completion.
	waitFor(t, "all joiners deduped", func() bool {
		return reg.Counter("server.dedup_hits").Value() == burst-1
	})
	close(gate)
	wg.Wait()

	deduped := 0
	for i, r := range results {
		if r.status != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, r.status, r.body)
		}
		if r.deduped {
			deduped++
		}
		if !bytes.Equal(r.body, results[0].body) {
			t.Errorf("request %d body differs from request 0:\n%s\n%s", i, r.body, results[0].body)
		}
	}
	if deduped != burst-1 {
		t.Errorf("%d of %d responses marked deduped, want %d", deduped, burst, burst-1)
	}
	if got := reg.Counter("core.measures").Value(); got != 1 {
		t.Errorf("burst of %d identical requests performed %d measurements, want exactly 1", burst, got)
	}
}

// TestDeadlineExceeded verifies the 504 path: a waiter with a tiny
// timeout gets cut loose while the measurement completes server-side and
// populates the shared cache for the retry.
func TestDeadlineExceeded(t *testing.T) {
	cache, err := rescache.Open(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	reg := telemetry.NewRegistry()
	srv, ts := newTestServer(t, Config{Telemetry: reg, Cache: cache, MaxBatch: 1, batchGate: gate})
	defer drainNow(t, srv)

	resp, body := postMeasure(t, ts.URL, Request{Kind: "measure", Program: testProgram, TimeoutMS: 1})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, body)
	}
	if got := reg.Counter("server.timeouts").Value(); got != 1 {
		t.Errorf("server.timeouts = %d, want 1", got)
	}
	close(gate)

	// The abandoned measurement still runs; once it lands, a retry is a
	// cache hit.
	waitFor(t, "abandoned measurement populated the cache", func() bool {
		resp, body := postMeasure(t, ts.URL, Request{Kind: "measure", Program: testProgram})
		return resp.StatusCode == http.StatusOK && decodeResponse(t, body).Measurement.CacheHit
	})
}

// TestQueueFullRejects fills the bounded admission queue and requires the
// overflow request to get 429 with a Retry-After hint, while everything
// admitted before it still completes.
func TestQueueFullRejects(t *testing.T) {
	gate := make(chan struct{})
	reg := telemetry.NewRegistry()
	srv, ts := newTestServer(t, Config{Telemetry: reg, QueueDepth: 1, MaxBatch: 1, batchGate: gate})
	defer drainNow(t, srv)

	// First request: admitted, handed to the batcher, blocked at the gate.
	done1 := make(chan int, 1)
	go func() {
		resp, _ := postMeasure(t, ts.URL, Request{Kind: "measure", Program: testProgram})
		done1 <- resp.StatusCode
	}()
	waitFor(t, "batcher picked up the first request", func() bool { return srv.queueLen() == 0 })

	// Second request (distinct key): admitted, fills the depth-1 queue.
	done2 := make(chan int, 1)
	go func() {
		resp, _ := postMeasure(t, ts.URL, Request{Kind: "measure", Program: "Tcl/micro-if"})
		done2 <- resp.StatusCode
	}()
	waitFor(t, "second request queued", func() bool { return srv.queueLen() == 1 })

	// Third request (another distinct key): the queue is full — 429.
	body, _ := json.Marshal(Request{Kind: "measure", Program: "C/micro-if"})
	resp, err := http.Post(ts.URL+"/measure", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request: status %d, want 429", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want an integer >= 1", resp.Header.Get("Retry-After"))
	}
	if got := reg.Counter("server.queue_rejects").Value(); got != 1 {
		t.Errorf("server.queue_rejects = %d, want 1", got)
	}

	close(gate)
	if got := <-done1; got != http.StatusOK {
		t.Errorf("first request finished %d, want 200", got)
	}
	if got := <-done2; got != http.StatusOK {
		t.Errorf("queued request finished %d, want 200", got)
	}
}

// TestGracefulDrain starts a drain with one request in flight: new
// admissions get 503, the health check flips unhealthy, and the in-flight
// request still completes before Drain returns.
func TestGracefulDrain(t *testing.T) {
	gate := make(chan struct{})
	srv, ts := newTestServer(t, Config{MaxBatch: 1, batchGate: gate})

	inflight := make(chan int, 1)
	go func() {
		resp, _ := postMeasure(t, ts.URL, Request{Kind: "measure", Program: testProgram})
		inflight <- resp.StatusCode
	}()
	waitFor(t, "request in flight", func() bool { return srv.queueLen() == 0 && srv.reg.Gauge("server.inflight").Value() > 0 })

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- srv.Drain(ctx)
	}()
	waitFor(t, "drain began", srv.Draining)

	resp, body := postMeasure(t, ts.URL, Request{Kind: "measure", Program: "Tcl/micro-if"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("admission while draining: status %d, want 503: %s", resp.StatusCode, body)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: status %d, want 503", hresp.StatusCode)
	}
	var h Health
	if err := json.Unmarshal(hbody, &h); err != nil || h.OK || !h.Draining {
		t.Errorf("healthz while draining: %s", hbody)
	}

	close(gate)
	if got := <-inflight; got != http.StatusOK {
		t.Errorf("in-flight request finished %d during drain, want 200", got)
	}
	if err := <-drained; err != nil {
		t.Errorf("drain: %v", err)
	}
}

func TestBadRequests(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	defer drainNow(t, srv)

	cfgJSON := json.RawMessage(`{"kind":"measure","program":"Perl/micro-if","config":{}}`)
	cases := []struct {
		name   string
		method string
		body   string
		status int
	}{
		{"get", http.MethodGet, "", http.StatusMethodNotAllowed},
		{"garbage body", http.MethodPost, "{not json", http.StatusBadRequest},
		{"missing program", http.MethodPost, `{"kind":"measure"}`, http.StatusBadRequest},
		{"unknown program", http.MethodPost, `{"kind":"measure","program":"Perl/nonesuch"}`, http.StatusNotFound},
		{"unknown kind", http.MethodPost, `{"kind":"frobnicate","program":"Perl/micro-if"}`, http.StatusBadRequest},
		{"variant", http.MethodPost, `{"kind":"measure","program":"Perl/micro-if","variant":"x"}`, http.StatusBadRequest},
		{"config on measure", http.MethodPost, string(cfgJSON), http.StatusBadRequest},
		{"scale too large", http.MethodPost, `{"kind":"measure","program":"Perl/micro-if","scale":100}`, http.StatusBadRequest},
		{"negative scale", http.MethodPost, `{"kind":"measure","program":"Perl/micro-if","scale":-1}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+"/measure", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, body)
			}
			var eb errorBody
			if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
				t.Errorf("error body did not decode: %s", body)
			}
			if tc.method == http.MethodGet && resp.Header.Get("Allow") != http.MethodPost {
				t.Errorf("405 without Allow: POST header")
			}
		})
	}
}

func TestProfilingRequest(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	defer drainNow(t, srv)

	resp, body := postMeasure(t, ts.URL, Request{Kind: "measure", Program: testProgram, Profiling: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	r := decodeResponse(t, body)
	if r.Profile == nil {
		t.Fatal("profiling request returned no profile artifact")
	}
	if r.Profile.Samples == 0 || r.Profile.Instructions == 0 {
		t.Errorf("empty profile artifact: %+v", r.Profile)
	}
	if r.Folded == "" {
		t.Error("profiling request returned no folded stacks")
	}
	if len(r.Pprof) == 0 {
		t.Error("profiling request returned no pprof bytes")
	}

	// Profiling is part of the content address: the plain measurement must
	// not alias the profiled one.
	plain, _ := postMeasure(t, ts.URL, Request{Kind: "measure", Program: testProgram})
	if plain.Header.Get("X-Interp-Lab-Key") == resp.Header.Get("X-Interp-Lab-Key") {
		t.Error("profiled and unprofiled requests share a cache key")
	}
}

func TestStatusz(t *testing.T) {
	cache, err := rescache.Open(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, Config{Cache: cache})
	defer drainNow(t, srv)

	// One miss, one hit: the ratio must land at 1/2.
	for i := 0; i < 2; i++ {
		if resp, body := postMeasure(t, ts.URL, Request{Kind: "measure", Program: testProgram}); resp.StatusCode != http.StatusOK {
			t.Fatalf("measure %d: status %d: %s", i, resp.StatusCode, body)
		}
	}

	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("statusz did not decode: %v\n%s", err, body)
	}
	if st.Build.Fingerprint != Info().Fingerprint {
		t.Errorf("statusz fingerprint %q, want %q", st.Build.Fingerprint, Info().Fingerprint)
	}
	if len(st.Batches) == 0 {
		t.Error("statusz retained no batch ledgers")
	}
	for _, b := range st.Batches {
		if b.Jobs.Finished == 0 {
			t.Errorf("batch ledger finished no jobs: %+v", b.Jobs)
		}
	}
	if st.CacheHitRatio != 0.5 {
		t.Errorf("cache hit ratio %g after one miss + one hit, want 0.5", st.CacheHitRatio)
	}
	if st.Cache == nil || st.Cache.Puts == 0 {
		t.Errorf("statusz cache block missing or empty: %+v", st.Cache)
	}
	if len(st.Metrics) == 0 {
		t.Error("statusz carries no metric snapshot")
	}

	tresp, err := http.Get(ts.URL + "/statusz?format=text")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	for _, want := range []string{"interp-lab serve", "cache hit ratio", "recent batches", "server.requests"} {
		if !strings.Contains(string(text), want) {
			t.Errorf("text statusz missing %q:\n%s", want, text)
		}
	}
}

func TestHealthz(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	defer drainNow(t, srv)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d: %s", resp.StatusCode, body)
	}
	var h Health
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Draining {
		t.Errorf("healthz: %+v", h)
	}
	if h.Build.Fingerprint != rescache.Fingerprint() {
		t.Errorf("healthz fingerprint %q, want the lab binary fingerprint %q", h.Build.Fingerprint, rescache.Fingerprint())
	}
	if h.Build.CacheSchema != rescache.SchemaVersion {
		t.Errorf("healthz cache schema %d, want %d", h.Build.CacheSchema, rescache.SchemaVersion)
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		window time.Duration
		want   int
	}{
		{2 * time.Millisecond, 1},
		{time.Second, 1},
		{1500 * time.Millisecond, 2},
		{0, 1},
	}
	for _, tc := range cases {
		if got := retryAfterSeconds(tc.window); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", tc.window, got, tc.want)
		}
	}
}

func TestRequestTimeout(t *testing.T) {
	cap := 2 * time.Minute
	if got := (Request{}).timeout(cap); got != cap {
		t.Errorf("no timeout_ms: %v, want the server cap %v", got, cap)
	}
	if got := (Request{TimeoutMS: 50}).timeout(cap); got != 50*time.Millisecond {
		t.Errorf("timeout_ms 50: %v, want 50ms", got)
	}
	if got := (Request{TimeoutMS: int(cap/time.Millisecond) * 2}).timeout(cap); got != cap {
		t.Errorf("timeout_ms above the cap: %v, want the cap %v", got, cap)
	}
}

// drainNow shuts a test server down, failing the test if in-flight work
// does not finish promptly.
func drainNow(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Errorf("drain: %v", err)
	}
}

// waitFor polls cond until it holds, failing the test after a generous
// deadline.  Tests use it in place of sleeps so they are fast when the
// condition is already true and loud when it never becomes true.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
