// Package labserver is the lab-as-a-service layer: a long-running HTTP
// daemon (`interp-lab serve`) that accepts measurement and profile
// requests, deduplicates identical in-flight requests with
// singleflight-style admission, coalesces distinct requests into batches
// run through the harness's parallel scheduler, shares one
// content-addressed measurement cache across every session, and streams
// manifest-identical results (plus folded stacks and pprof bytes for
// profile requests) back to each waiter.
//
// The admission path is where the paper's one-shot CLI becomes a system
// that can serve sustained traffic:
//
//   - Singleflight: concurrent requests with the same content address
//     (the rescache key) share one measurement — a stampede of N identical
//     requests costs one execution, and every waiter gets byte-identical
//     response bytes.
//   - Batching: distinct requests admitted within a short window are
//     coalesced into one scheduler batch, so the worker pool sees batches
//     the way the experiments' own runs do, with the same speedup ledger.
//   - Backpressure: the admission queue is bounded; when it is full the
//     server answers 429 with Retry-After instead of queueing unboundedly.
//   - Deadlines: each request waits at most min(its timeout_ms, the
//     server's request timeout); on expiry the waiter gets 504 while the
//     measurement completes server-side and populates the shared cache.
//   - Graceful drain: shutdown stops admission (503), then drains queued
//     and in-flight batches before the process exits.
//   - Panic isolation: a panicking measurement fails its own request with
//     500; a panicking handler is caught at the top of the mux.
//
// Everything is observable: server.* metrics (in-flight, dedup hits,
// queue depth, batch sizes, cache hits, latency), request spans in the
// run tracer, and a /statusz endpoint carrying the last batches' speedup
// ledgers.  See docs/SERVING.md.
package labserver

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"interplab/internal/harness"
	"interplab/internal/labstats"
	"interplab/internal/profile"
	"interplab/internal/rescache"
	"interplab/internal/telemetry"
)

// Config configures a Server.  The zero value serves with defaults and no
// cache.
type Config struct {
	// Cache is the shared measurement cache; nil serves uncached (every
	// non-deduplicated request measures).
	Cache *rescache.Cache
	// Parallelism is the scheduler worker count per batch (0 =
	// GOMAXPROCS).
	Parallelism int
	// QueueDepth bounds the admission queue; a request arriving with the
	// queue full is rejected with 429 (default 64).
	QueueDepth int
	// MaxBatch caps how many admitted requests one scheduler batch
	// carries (default 16).
	MaxBatch int
	// BatchWindow is how long the batcher lingers after the first admitted
	// request to coalesce more before submitting (default 2ms).
	BatchWindow time.Duration
	// RequestTimeout caps every request's wait, regardless of its own
	// timeout_ms (default 2m).
	RequestTimeout time.Duration
	// StatusBatches is how many recent batch ledgers /statusz retains
	// (default 8).
	StatusBatches int

	// Telemetry receives the server.* instruments plus everything the
	// harness and core record; nil disables metrics (statusz then carries
	// no snapshot).
	Telemetry *telemetry.Registry
	// Tracer, when non-nil, records request admission spans alongside the
	// scheduler's worker lanes.
	Tracer *telemetry.Tracer

	// batchGate, when non-nil, makes runBatch wait for a receive before
	// executing (test seam for backpressure and drain tests).
	batchGate chan struct{}
}

func (c Config) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 64
}

func (c Config) maxBatch() int {
	if c.MaxBatch > 0 {
		return c.MaxBatch
	}
	return 16
}

func (c Config) batchWindow() time.Duration {
	if c.BatchWindow > 0 {
		return c.BatchWindow
	}
	return 2 * time.Millisecond
}

func (c Config) requestTimeout() time.Duration {
	if c.RequestTimeout > 0 {
		return c.RequestTimeout
	}
	return 2 * time.Minute
}

func (c Config) statusBatches() int {
	if c.StatusBatches > 0 {
		return c.StatusBatches
	}
	return 8
}

// call is one admitted measurement and everybody waiting on it: the
// creator plus every deduplicated joiner.  done is closed once status and
// body are final; body bytes are rendered exactly once, so all waiters
// answer byte-identically.
type call struct {
	key  string
	rr   *resolved
	done chan struct{}

	status int
	body   []byte
}

// Server is the measurement server.  It implements http.Handler; create
// with New, shut down with Drain.
type Server struct {
	cfg   Config
	reg   *telemetry.Registry
	mux   *http.ServeMux
	start time.Time

	mu       sync.Mutex
	inflight map[string]*call
	draining bool
	queue    chan *call

	pending     sync.WaitGroup // admitted calls not yet answered
	batcherDone chan struct{}

	schedMu sync.Mutex
	sched   []*labstats.SchedStats // most recent batch ledgers, oldest first
}

// New starts a server (its batcher goroutine runs until Drain).
func New(cfg Config) *Server {
	s := &Server{
		cfg:         cfg,
		reg:         cfg.Telemetry,
		start:       time.Now(),
		inflight:    make(map[string]*call),
		queue:       make(chan *call, cfg.queueDepth()),
		batcherDone: make(chan struct{}),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/measure", s.handleMeasure)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/statusz", s.handleStatusz)
	go s.batcher()
	return s
}

// ServeHTTP dispatches to the server's endpoints, isolating handler
// panics to a 500 on the one request.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			s.reg.Counter("server.panics").Inc()
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: fmt.Sprintf("internal panic: %v", rec)})
		}
	}()
	s.mux.ServeHTTP(w, r)
}

// writeJSON writes one JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		// Every body type here is a plain struct; Marshal cannot fail.
		status, b = http.StatusInternalServerError, []byte(`{"error":"encode response"}`)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(b, '\n'))
}

// handleMeasure admits one measurement request and waits for its result.
func (s *Server) handleMeasure(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST a measurement request (see docs/SERVING.md)"})
		return
	}
	started := time.Now()
	s.reg.Counter("server.requests").Inc()
	var req Request
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		s.reg.Counter("server.bad_requests").Inc()
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	rr, herr := resolve(req)
	if herr != nil {
		s.reg.Counter("server.bad_requests").Inc()
		writeJSON(w, herr.status, errorBody{Error: herr.msg})
		return
	}
	key := rr.key.Hash()
	span := s.cfg.Tracer.Start("serve "+rr.prog.ID(), "kind", rr.req.Kind, "key", key[:12])
	defer span.End()

	c, deduped, herr := s.admit(key, rr)
	if herr != nil {
		if herr.status == http.StatusTooManyRequests {
			// The queue drains one batch per window, so "one window from
			// now" is the honest earliest retry.
			w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfterSeconds(s.cfg.batchWindow())))
		}
		writeJSON(w, herr.status, errorBody{Error: herr.msg, Key: key})
		return
	}
	if deduped {
		s.reg.Counter("server.dedup_hits").Inc()
		w.Header().Set("X-Interp-Lab-Deduped", "1")
	}
	w.Header().Set("X-Interp-Lab-Key", key)

	s.reg.Gauge("server.inflight").Add(1)
	defer s.reg.Gauge("server.inflight").Add(-1)

	ctx, cancel := context.WithTimeout(r.Context(), req.timeout(s.cfg.requestTimeout()))
	defer cancel()
	select {
	case <-c.done:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(c.status)
		w.Write(c.body)
		s.reg.Histogram("server.request_us").Observe(uint64(time.Since(started) / time.Microsecond))
	case <-ctx.Done():
		// The waiter leaves; the measurement continues server-side and
		// populates the shared cache, so a retry is nearly free.
		s.reg.Counter("server.timeouts").Inc()
		writeJSON(w, http.StatusGatewayTimeout, errorBody{
			Error: "deadline exceeded waiting for the measurement (it continues server-side and will populate the cache)",
			Key:   key,
		})
	}
}

// retryAfterSeconds rounds a batch window up to whole seconds for the
// Retry-After header (minimum 1).
func retryAfterSeconds(window time.Duration) int {
	secs := int((window + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// admit registers the request under singleflight admission: an identical
// in-flight call is joined, otherwise a new call is enqueued.  Rejections:
// 503 while draining, 429 when the bounded queue is full.
func (s *Server) admit(key string, rr *resolved) (c *call, deduped bool, herr *httpError) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, false, &httpError{status: http.StatusServiceUnavailable, msg: "server is draining"}
	}
	if c := s.inflight[key]; c != nil {
		return c, true, nil
	}
	c = &call{key: key, rr: rr, done: make(chan struct{})}
	select {
	case s.queue <- c:
	default:
		s.reg.Counter("server.queue_rejects").Inc()
		return nil, false, &httpError{status: http.StatusTooManyRequests, msg: "admission queue is full; retry shortly"}
	}
	s.inflight[key] = c
	s.pending.Add(1)
	s.reg.Gauge("server.queue_depth").Add(1)
	return c, false, nil
}

// batcher drains the admission queue: it takes the first waiting call,
// lingers up to BatchWindow to coalesce more (up to MaxBatch), and runs
// the batch through the scheduler.  It exits when the queue is closed
// (Drain) and fully drained.
func (s *Server) batcher() {
	defer close(s.batcherDone)
	for {
		c, ok := <-s.queue
		if !ok {
			return
		}
		calls := []*call{c}
		timer := time.NewTimer(s.cfg.batchWindow())
	fill:
		for len(calls) < s.cfg.maxBatch() {
			select {
			case c2, ok := <-s.queue:
				if !ok {
					break fill
				}
				calls = append(calls, c2)
			case <-timer.C:
				break fill
			}
		}
		timer.Stop()
		s.runBatch(calls)
	}
}

// runBatch executes one coalesced batch through the harness scheduler and
// answers every call.  A panic outside the per-job isolation (batch setup,
// response rendering) fails the batch's unanswered calls instead of
// killing the batcher.
func (s *Server) runBatch(calls []*call) {
	s.reg.Gauge("server.queue_depth").Add(-float64(len(calls)))
	if s.cfg.batchGate != nil {
		<-s.cfg.batchGate
	}
	answered := make([]bool, len(calls))
	defer func() {
		if rec := recover(); rec != nil {
			s.reg.Counter("server.panics").Inc()
			for i, c := range calls {
				if !answered[i] {
					s.finishError(c, fmt.Errorf("batch panicked: %v", rec))
					answered[i] = true
				}
			}
		}
	}()

	opt := harness.Options{
		Out:         io.Discard,
		Parallelism: s.cfg.Parallelism,
		Telemetry:   s.reg,
		Tracer:      s.cfg.Tracer,
		Cache:       s.cfg.Cache,
	}
	b := harness.NewBatch(opt)
	jobs := make([]*harness.Job, len(calls))
	for i, c := range calls {
		scope := c.rr.scope
		j, err := b.Submit(harness.BatchJob{
			Kind:      c.rr.req.Kind,
			Program:   c.rr.prog,
			Config:    c.rr.cfg,
			Sweep:     c.rr.sweep,
			Scope:     &scope,
			Profiling: c.rr.req.Profiling,
		})
		if err != nil {
			// resolve() already vetted the kind, so this is unreachable;
			// answer the call rather than wedge its waiters.
			s.finishError(c, err)
			answered[i] = true
			continue
		}
		jobs[i] = j
	}
	start := time.Now()
	err := b.Run()
	s.reg.Counter("server.batches").Inc()
	s.reg.Histogram("server.batch_jobs").Observe(uint64(len(calls)))
	s.reg.Histogram("server.batch_us").Observe(uint64(time.Since(start) / time.Microsecond))
	if st := b.Sched(); st != nil {
		s.pushSched(st)
	}
	for i, c := range calls {
		if answered[i] {
			continue
		}
		switch {
		case err != nil:
			s.finishError(c, err)
		case jobs[i].Err() != nil:
			s.finishError(c, jobs[i].Err())
		case !jobs[i].Ran():
			s.finishError(c, fmt.Errorf("measurement was never executed"))
		default:
			s.finishOK(c, jobs[i])
		}
		answered[i] = true
	}
}

// pushSched retains one batch's speedup ledger for /statusz, dropping the
// oldest beyond the retention limit.
func (s *Server) pushSched(st *labstats.SchedStats) {
	s.schedMu.Lock()
	defer s.schedMu.Unlock()
	s.sched = append(s.sched, st)
	if over := len(s.sched) - s.cfg.statusBatches(); over > 0 {
		s.sched = append(s.sched[:0], s.sched[over:]...)
	}
}

// recentSched snapshots the retained batch ledgers, oldest first.
func (s *Server) recentSched() []*labstats.SchedStats {
	s.schedMu.Lock()
	defer s.schedMu.Unlock()
	out := make([]*labstats.SchedStats, len(s.sched))
	copy(out, s.sched)
	return out
}

// finishError answers a failed call with 500.
func (s *Server) finishError(c *call, err error) {
	s.reg.Counter("server.errors").Inc()
	body, _ := json.Marshal(errorBody{Error: err.Error(), Key: c.key})
	c.status = http.StatusInternalServerError
	c.body = append(body, '\n')
	s.complete(c)
}

// finishOK renders a successful measurement into the call's response
// bytes: the manifest-identical measurement record, plus profile
// artifacts on profiling requests.
func (s *Server) finishOK(c *call, j *harness.Job) {
	res := j.Result()
	if res.FromCache {
		s.reg.Counter("server.cache_hits").Inc()
	} else {
		s.reg.Counter("server.cache_misses").Inc()
	}
	resp := Response{
		Key:         c.key,
		Measurement: harness.NewMeasurement(c.rr.req.Kind, res, j.Duration(), j.Sweep()),
	}
	if res.Profile != nil {
		pa := harness.ProfileRecord(res.Profile)
		resp.Profile = &pa
		var folded strings.Builder
		if err := res.Profile.WriteFolded(&folded, profile.SampleInstructions); err == nil {
			resp.Folded = folded.String()
		}
		var pprofBuf bytes.Buffer
		if err := res.Profile.WritePprof(&pprofBuf); err == nil {
			resp.Pprof = pprofBuf.Bytes()
		}
	}
	body, err := json.Marshal(resp)
	if err != nil {
		s.finishError(c, fmt.Errorf("encode response: %v", err))
		return
	}
	c.status = http.StatusOK
	c.body = append(body, '\n')
	s.complete(c)
}

// complete publishes the call's final status/body and releases its
// waiters and singleflight slot.
func (s *Server) complete(c *call) {
	s.mu.Lock()
	delete(s.inflight, c.key)
	s.mu.Unlock()
	close(c.done)
	s.pending.Done()
}

// Drain gracefully shuts the server down: new requests are rejected with
// 503, then the admission queue and every in-flight batch drain.  It
// returns ctx's error if the drain does not finish in time (queued work
// keeps draining in the background regardless).
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.pending.Wait()
		<-s.batcherDone
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("labserver: drain: %w", ctx.Err())
	}
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// queueLen returns the current admission-queue depth.
func (s *Server) queueLen() int { return len(s.queue) }

// goroutines reports the process goroutine count for /statusz.
func goroutines() int { return runtime.NumGoroutine() }
