package vfs

import (
	"bytes"
	"testing"

	"interplab/internal/atom"
	"interplab/internal/trace"
)

func TestOpenReadClose(t *testing.T) {
	o := New()
	o.AddFile("a.txt", []byte("one\ntwo\n"))
	fd, err := o.Open("a.txt", false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := o.Read(fd, 3)
	if err != nil || string(b) != "one" {
		t.Fatalf("read = %q, %v", b, err)
	}
	rest, err := o.ReadAll(fd)
	if err != nil || string(rest) != "\ntwo\n" {
		t.Fatalf("readall = %q, %v", rest, err)
	}
	if b, _ := o.Read(fd, 10); len(b) != 0 {
		t.Error("read at EOF must be empty")
	}
	if err := o.Close(fd); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Read(fd, 1); err == nil {
		t.Error("read after close must fail")
	}
}

func TestOpenMissing(t *testing.T) {
	o := New()
	if _, err := o.Open("nope", false); err == nil {
		t.Error("opening a missing file for read must fail")
	}
}

func TestReadLine(t *testing.T) {
	o := New()
	o.AddFile("f", []byte("alpha\nbeta\ngamma"))
	fd, _ := o.Open("f", false)
	lines := []string{}
	for {
		l, err := o.ReadLine(fd)
		if err != nil {
			t.Fatal(err)
		}
		if len(l) == 0 {
			break
		}
		lines = append(lines, string(l))
	}
	want := []string{"alpha\n", "beta\n", "gamma"}
	if len(lines) != 3 || lines[0] != want[0] || lines[1] != want[1] || lines[2] != want[2] {
		t.Errorf("lines = %q", lines)
	}
}

func TestWriteFileAndStdout(t *testing.T) {
	o := New()
	if _, err := o.Write(Stdout, []byte("hi ")); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Write(Stderr, []byte("err")); err != nil {
		t.Fatal(err)
	}
	fd, err := o.Open("out.txt", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Write(fd, []byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := o.Close(fd); err != nil {
		t.Fatal(err)
	}
	if o.Stdout.String() != "hi " || o.Stderr.String() != "err" {
		t.Errorf("streams = %q / %q", o.Stdout.String(), o.Stderr.String())
	}
	d, ok := o.FileData("out.txt")
	if !ok || !bytes.Equal(d, []byte("data")) {
		t.Errorf("file content = %q", d)
	}
}

func TestWriteToReadOnlyFails(t *testing.T) {
	o := New()
	o.AddFile("r", []byte("x"))
	fd, _ := o.Open("r", false)
	if _, err := o.Write(fd, []byte("y")); err == nil {
		t.Error("write to read-only descriptor must fail")
	}
	wfd, _ := o.Open("w", true)
	if _, err := o.Read(wfd, 1); err == nil {
		t.Error("read from write-only descriptor must fail")
	}
}

func TestFileNames(t *testing.T) {
	o := New()
	o.AddFile("b", nil)
	o.AddFile("a", nil)
	names := o.FileNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("names = %v", names)
	}
}

func TestInstrumentedReadChargesPrecompiledCode(t *testing.T) {
	img := atom.NewImage()
	var c trace.Counter
	p := atom.NewProbe(img, &c)
	o := New()
	o.Instrument(img, p)
	o.AddFile("f", bytes.Repeat([]byte("x"), 4096))
	fd, err := o.Open("f", false)
	if err != nil {
		t.Fatal(err)
	}
	before := p.Total()
	if _, err := o.Read(fd, 4096); err != nil {
		t.Fatal(err)
	}
	cost := p.Total() - before
	// 4 KB read: trap overhead plus ~1 load + 1 alu per word.
	if cost < 2000 || cost > 4000 {
		t.Errorf("4KB read cost = %d native instructions, want ~2-3k", cost)
	}
	st := p.Stats()
	osr, ok := st.Region("os")
	if !ok || osr.Instructions == 0 {
		t.Error("os region must be charged")
	}
}

func TestBadDescriptors(t *testing.T) {
	o := New()
	if _, err := o.Read(99, 1); err == nil {
		t.Error("bad fd read must fail")
	}
	if _, err := o.Write(-1, nil); err == nil {
		t.Error("bad fd write must fail")
	}
	if err := o.Close(42); err == nil {
		t.Error("bad fd close must fail")
	}
	if _, err := o.ReadLine(17); err == nil {
		t.Error("bad fd readline must fail")
	}
}

func TestStdinIsEmpty(t *testing.T) {
	o := New()
	b, err := o.Read(Stdin, 10)
	if err != nil || len(b) != 0 {
		t.Errorf("stdin read = %q, %v", b, err)
	}
	if !o.AtEOF(Stdin) {
		t.Error("stdin must be at EOF")
	}
}

func TestAtEOFStates(t *testing.T) {
	o := New()
	o.AddFile("f", []byte("ab"))
	fd, _ := o.Open("f", false)
	if o.AtEOF(fd) {
		t.Error("fresh descriptor not at EOF")
	}
	o.Read(fd, 2)
	if !o.AtEOF(fd) {
		t.Error("drained descriptor must be at EOF")
	}
	if !o.AtEOF(999) {
		t.Error("bad descriptor folds to EOF")
	}
	wfd, _ := o.Open("w", true)
	if !o.AtEOF(wfd) {
		t.Error("write-only descriptor folds to EOF")
	}
}

func TestOverwriteFile(t *testing.T) {
	o := New()
	o.AddFile("f", []byte("old"))
	fd, _ := o.Open("f", true) // truncate
	o.Write(fd, []byte("new content"))
	o.Close(fd)
	d, _ := o.FileData("f")
	if string(d) != "new content" {
		t.Errorf("file = %q", d)
	}
	// A reader opened before the rewrite sees its own snapshot.
	o.AddFile("g", []byte("snapshot"))
	rd, _ := o.Open("g", false)
	o.AddFile("g", []byte("changed"))
	b, _ := o.ReadAll(rd)
	if string(b) != "snapshot" {
		t.Errorf("snapshot semantics broken: %q", b)
	}
}
