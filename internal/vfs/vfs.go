// Package vfs is the laboratory's in-memory filesystem — the "warm buffer
// cache" of the paper's read microbenchmark, and the file substrate for the
// text-processing workloads.
//
// All four interpreters and the mini-C syscall layer share one OS instance
// per measured run.  Its routines are registered as native code with the
// instrumentation image: time spent inside them is precompiled-library time,
// which is exactly the effect the paper highlights ("operations that access
// operating system service routines are slowed less than the other
// operations, because most of the computation is done in precompiled
// code").
package vfs

import (
	"bytes"
	"fmt"
	"sort"

	"interplab/internal/atom"
)

// Well-known descriptors.
const (
	Stdin  = 0
	Stdout = 1
	Stderr = 2
)

type openFile struct {
	name   string
	data   []byte
	off    int
	write  bool
	closed bool
}

// OS is an in-memory operating system interface: a file store plus
// per-process descriptor table and standard streams.
type OS struct {
	files map[string][]byte
	fds   []*openFile

	// Stdout and Stderr capture the run's console output.
	Stdout bytes.Buffer
	Stderr bytes.Buffer

	probe    *atom.Probe
	rOpen    *atom.Routine
	rRead    *atom.Routine
	rWrite   *atom.Routine
	bufCache *atom.DataRegion
	region   atom.RegionID
}

// New returns an empty OS with the standard streams open.
func New() *OS {
	o := &OS{files: make(map[string][]byte)}
	o.fds = []*openFile{
		{name: "<stdin>"},
		{name: "<stdout>", write: true},
		{name: "<stderr>", write: true},
	}
	return o
}

// Instrument registers the OS's native service routines with img and
// directs accounting to p.  Without instrumentation the OS still works; it
// just costs nothing (useful in unit tests).
func (o *OS) Instrument(img *atom.Image, p *atom.Probe) {
	o.probe = p
	// Sizes approximate a kernel's syscall paths: entry/validation plus
	// the filesystem fast path.
	o.rOpen = img.Routine("sys_open", 400)
	o.rRead = img.Routine("sys_read", 300, atom.WithShortEvery(6))
	o.rWrite = img.Routine("sys_write", 300, atom.WithShortEvery(6))
	o.bufCache = img.Data("buffer-cache", 256<<10)
	o.region = p.RegionName("os")
}

// AddFile installs (or replaces) a file.
func (o *OS) AddFile(name string, data []byte) { o.files[name] = append([]byte(nil), data...) }

// FileNames returns the installed file names, sorted.
func (o *OS) FileNames() []string {
	names := make([]string, 0, len(o.files))
	for n := range o.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// FileData returns a file's current contents.
func (o *OS) FileData(name string) ([]byte, bool) {
	d, ok := o.files[name]
	return d, ok
}

// Open opens a file for reading, or creates/truncates it for writing, and
// returns a descriptor.
func (o *OS) Open(path string, write bool) (int, error) {
	if o.probe != nil {
		o.probe.Enter(o.region)
		o.probe.Call(o.rOpen)
		// Path lookup: hash the name and probe the name cache.
		o.probe.Exec(o.rOpen, 40+4*len(path))
		o.probe.Load(o.bufCache.Addr(hashString(path) % o.bufCache.Size))
		o.probe.Ret()
		o.probe.Leave()
	}
	var data []byte
	if write {
		o.files[path] = nil
	} else {
		var ok bool
		data, ok = o.files[path]
		if !ok {
			return -1, fmt.Errorf("vfs: open %s: no such file", path)
		}
	}
	f := &openFile{name: path, data: append([]byte(nil), data...), write: write}
	o.fds = append(o.fds, f)
	return len(o.fds) - 1, nil
}

func (o *OS) file(fd int) (*openFile, error) {
	if fd < 0 || fd >= len(o.fds) || o.fds[fd].closed {
		return nil, fmt.Errorf("vfs: bad descriptor %d", fd)
	}
	return o.fds[fd], nil
}

// Read reads up to n bytes from fd.  It returns an empty slice at EOF.
func (o *OS) Read(fd, n int) ([]byte, error) {
	f, err := o.file(fd)
	if err != nil {
		return nil, err
	}
	if f.write {
		return nil, fmt.Errorf("vfs: %s not open for reading", f.name)
	}
	if n > len(f.data)-f.off {
		n = len(f.data) - f.off
	}
	if n < 0 {
		n = 0
	}
	out := f.data[f.off : f.off+n]
	o.accountCopy(o.rRead, uint32(f.off), n)
	f.off += n
	return out, nil
}

// ReadAll reads the remainder of fd.
func (o *OS) ReadAll(fd int) ([]byte, error) {
	f, err := o.file(fd)
	if err != nil {
		return nil, err
	}
	return o.Read(fd, len(f.data)-f.off)
}

// ReadLine reads through the next newline (inclusive); empty at EOF.
func (o *OS) ReadLine(fd int) ([]byte, error) {
	f, err := o.file(fd)
	if err != nil {
		return nil, err
	}
	if f.write {
		return nil, fmt.Errorf("vfs: %s not open for reading", f.name)
	}
	i := bytes.IndexByte(f.data[f.off:], '\n')
	n := len(f.data) - f.off
	if i >= 0 {
		n = i + 1
	}
	out := f.data[f.off : f.off+n]
	o.accountCopy(o.rRead, uint32(f.off), n)
	f.off += n
	return out, nil
}

// Write appends b to fd.  Writes to Stdout/Stderr go to the captured
// streams; writes to files update the file store on Close.
func (o *OS) Write(fd int, b []byte) (int, error) {
	f, err := o.file(fd)
	if err != nil {
		return 0, err
	}
	o.accountCopy(o.rWrite, uint32(len(f.data)), len(b))
	switch fd {
	case Stdout:
		o.Stdout.Write(b)
	case Stderr:
		o.Stderr.Write(b)
	default:
		if !f.write {
			return 0, fmt.Errorf("vfs: %s not open for writing", f.name)
		}
		f.data = append(f.data, b...)
	}
	return len(b), nil
}

// Close closes fd, flushing written data to the file store.
func (o *OS) Close(fd int) error {
	f, err := o.file(fd)
	if err != nil {
		return err
	}
	if f.write && fd > Stderr {
		o.files[f.name] = f.data
	}
	f.closed = true
	return nil
}

// accountCopy charges the precompiled kernel copy path: a fixed trap
// overhead plus one load (from the buffer cache) and a word's worth of copy
// arithmetic per 4 bytes.
func (o *OS) accountCopy(r *atom.Routine, off uint32, n int) {
	if o.probe == nil {
		return
	}
	o.probe.Enter(o.region)
	o.probe.Call(r)
	o.probe.Exec(r, 90)
	words := (n + 3) / 4
	for w := 0; w < words; w++ {
		o.probe.Load(o.bufCache.Addr(off + uint32(w)*4))
		o.probe.Exec(r, 1)
	}
	o.probe.Ret()
	o.probe.Leave()
}

func hashString(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// AtEOF reports whether fd has no more data to read (false for bad or
// write-only descriptors' errors are folded into true).
func (o *OS) AtEOF(fd int) bool {
	f, err := o.file(fd)
	if err != nil || f.write {
		return true
	}
	return f.off >= len(f.data)
}
