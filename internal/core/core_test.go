package core

import (
	"reflect"
	"strings"
	"testing"

	"interplab/internal/alphasim"
	"interplab/internal/atom"
	"interplab/internal/profile"
	"interplab/internal/rescache"
	"interplab/internal/telemetry"
)

// toyProgram emits a deterministic instruction stream through the probe.
func toyProgram(sys System) Program {
	return Program{
		System: sys, Name: "toy", Desc: "toy workload",
		Run: func(ctx *Ctx) error {
			r := ctx.Image.Routine("toy.loop", 64)
			op := ctx.Probe.OpName("work")
			for i := 0; i < 100; i++ {
				ctx.Probe.BeginCommand(op)
				ctx.Probe.Exec(r, 10)
				ctx.Probe.BeginExecute()
				ctx.Probe.Exec(r, 20)
				ctx.Probe.EndCommand()
			}
			ctx.SetProgramSize(123)
			if _, err := ctx.OS.Write(1, []byte("toy done\n")); err != nil {
				return err
			}
			return nil
		},
	}
}

func TestMeasureCollectsEverything(t *testing.T) {
	res, err := Measure(toyProgram(SysPerl))
	if err != nil {
		t.Fatal(err)
	}
	if res.Commands() != 100 {
		t.Errorf("commands = %d", res.Commands())
	}
	if res.NativeInstructions() < 3000 || res.NativeInstructions() > 3300 {
		t.Errorf("instructions = %d, want 3000 + a small stdout-write charge", res.NativeInstructions())
	}
	// The dispatch-phase average also absorbs the stdout write (charged
	// between commands), so check the per-op account exactly and the
	// phase average loosely.
	work, ok := res.Stats.Op("work")
	if !ok || work.FetchDecode != 1000 || work.Execute != 2000 {
		t.Errorf("work op stats = %+v", work)
	}
	fd, ex := res.PerCommand()
	if fd < 10 || fd > 13 || ex != 20 {
		t.Errorf("fd=%v ex=%v", fd, ex)
	}
	if res.SizeBytes != 123 {
		t.Errorf("size = %d", res.SizeBytes)
	}
	if !strings.Contains(res.Stdout, "toy done") {
		t.Errorf("stdout = %q", res.Stdout)
	}
	if res.Program.ID() != "Perl/toy" {
		t.Errorf("id = %q", res.Program.ID())
	}
}

func TestMeasureCSemantics(t *testing.T) {
	// For compiled C, commands equal native instructions and per-command
	// execute is 1.0 (Table 2's C row convention).
	p := Program{
		System: SysC, Name: "toy",
		Run: func(ctx *Ctx) error {
			r := ctx.Image.Routine("main", 32)
			ctx.Probe.Exec(r, 500)
			return nil
		},
	}
	res, err := Measure(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Commands() != res.Counter.Total || res.Commands() == 0 {
		t.Errorf("C commands = %d, counter = %d", res.Commands(), res.Counter.Total)
	}
	fd, ex := res.PerCommand()
	if fd != 0 || ex != 1 {
		t.Errorf("C per-command = %v/%v", fd, ex)
	}
}

func TestMeasureWithPipeline(t *testing.T) {
	res, err := MeasureWithPipeline(toyProgram(SysTcl), alphasim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Pipe == nil {
		t.Fatal("pipe stats missing")
	}
	if res.Pipe.Instructions != res.Counter.Total {
		t.Errorf("pipeline saw %d events, counter %d", res.Pipe.Instructions, res.Counter.Total)
	}
	if res.Pipe.Cycles == 0 || res.Pipe.CPI() <= 0 {
		t.Error("no cycles simulated")
	}
}

func TestMeasureWithSweep(t *testing.T) {
	sweep := alphasim.DefaultICacheSweep()
	res, err := MeasureWithSweep(toyProgram(SysJava), sweep)
	if err != nil {
		t.Fatal(err)
	}
	pts := sweep.Points()
	if len(pts) != 12 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, pt := range pts {
		if pt.Instructions != res.Counter.Total {
			t.Errorf("%s saw %d events, want %d", pt.Label(), pt.Instructions, res.Counter.Total)
		}
	}
}

func TestMeasureErrorPropagates(t *testing.T) {
	p := Program{
		System: SysPerl, Name: "boom",
		Run: func(ctx *Ctx) error { return errBoom },
	}
	if _, err := Measure(p); err == nil || !strings.Contains(err.Error(), "Perl/boom") {
		t.Errorf("err = %v", err)
	}
}

var errBoom = &atomErr{}

type atomErr struct{}

func (*atomErr) Error() string { return "boom" }

func TestDisplayChecksumCaptured(t *testing.T) {
	p := Program{
		System: SysJava, Name: "draw",
		Run: func(ctx *Ctx) error {
			d := ctx.Display(32, 32)
			d.FillRect(0, 0, 16, 16, 5)
			return nil
		},
	}
	res, err := Measure(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.FrameChecksum == 0 {
		t.Error("frame checksum missing")
	}
}

var _ = atom.CodeBase

// openTestCache returns a writable cache in a per-test temp dir.
func openTestCache(t *testing.T) (*rescache.Cache, rescache.Scope) {
	t.Helper()
	c, err := rescache.Open(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	return c, rescache.Scope{Experiment: "core-test", Scale: 1}
}

// requireCacheFidelity compares a restored result against the fresh one it
// was cached from: everything a renderer reads must survive the round trip.
func requireCacheFidelity(t *testing.T, fresh, warm Result) {
	t.Helper()
	if fresh.FromCache {
		t.Error("first measurement claims FromCache")
	}
	if !warm.FromCache {
		t.Fatal("second measurement did not hit the cache")
	}
	if !reflect.DeepEqual(warm.Stats, fresh.Stats) {
		t.Errorf("stats differ: %+v != %+v", warm.Stats, fresh.Stats)
	}
	if warm.Counter != fresh.Counter {
		t.Errorf("counter differs: %+v != %+v", warm.Counter, fresh.Counter)
	}
	if warm.SizeBytes != fresh.SizeBytes || warm.FrameChecksum != fresh.FrameChecksum || warm.Stdout != fresh.Stdout {
		t.Errorf("size/checksum/stdout differ: %d/%d/%q != %d/%d/%q",
			warm.SizeBytes, warm.FrameChecksum, warm.Stdout,
			fresh.SizeBytes, fresh.FrameChecksum, fresh.Stdout)
	}
}

// TestMeasureCacheRoundTrip pins that a plain measurement restored from
// the cache is indistinguishable from the fresh run that populated it.
func TestMeasureCacheRoundTrip(t *testing.T) {
	cache, scope := openTestCache(t)
	p := toyProgram(SysPerl)
	fresh, err := Measure(p, WithCache(cache, scope))
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Measure(p, WithCache(cache, scope))
	if err != nil {
		t.Fatal(err)
	}
	requireCacheFidelity(t, fresh, warm)
	hits, misses, puts, _ := cache.Counts()
	if hits != 1 || misses != 1 || puts != 1 {
		t.Errorf("counts = %d hits, %d misses, %d puts; want 1/1/1", hits, misses, puts)
	}
}

// TestMeasureCachePipelineAndSweep pins fidelity for the two richer
// measurement kinds: pipeline stats and sweep points must be restored, and
// a pipeline entry must not satisfy a plain-measure or sweep lookup.
func TestMeasureCachePipelineAndSweep(t *testing.T) {
	cache, scope := openTestCache(t)
	p := toyProgram(SysTcl)
	cfg := alphasim.DefaultConfig()
	fresh, err := MeasureWithPipeline(p, cfg, WithCache(cache, scope))
	if err != nil {
		t.Fatal(err)
	}
	warm, err := MeasureWithPipeline(p, cfg, WithCache(cache, scope))
	if err != nil {
		t.Fatal(err)
	}
	requireCacheFidelity(t, fresh, warm)
	if warm.Pipe == nil || *warm.Pipe != *fresh.Pipe {
		t.Errorf("pipeline stats not restored: %+v != %+v", warm.Pipe, fresh.Pipe)
	}

	// A different kind of the same program must miss, not reuse the entry.
	plain, err := Measure(p, WithCache(cache, scope))
	if err != nil {
		t.Fatal(err)
	}
	if plain.FromCache {
		t.Error("plain measure hit a pipeline entry")
	}

	coldSweep := alphasim.DefaultICacheSweep()
	if _, err := MeasureWithSweep(p, coldSweep, WithCache(cache, scope)); err != nil {
		t.Fatal(err)
	}
	warmSweep := alphasim.DefaultICacheSweep()
	res, err := MeasureWithSweep(p, warmSweep, WithCache(cache, scope))
	if err != nil {
		t.Fatal(err)
	}
	if !res.FromCache {
		t.Fatal("sweep re-measurement did not hit the cache")
	}
	if !reflect.DeepEqual(warmSweep.Points(), coldSweep.Points()) {
		t.Errorf("sweep points not restored:\n%+v\nvs\n%+v", warmSweep.Points(), coldSweep.Points())
	}
}

// TestMeasureCacheProfileRestored pins that a profiled measurement's
// attribution profile survives the cache round trip (the folded output is
// what the determinism golden test compares byte-for-byte).
func TestMeasureCacheProfileRestored(t *testing.T) {
	cache, scope := openTestCache(t)
	p := toyProgram(SysJava)
	fresh, err := Measure(p, WithCache(cache, scope), WithProfiling())
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Measure(p, WithCache(cache, scope), WithProfiling())
	if err != nil {
		t.Fatal(err)
	}
	requireCacheFidelity(t, fresh, warm)
	if warm.Profile == nil {
		t.Fatal("profile not restored")
	}
	if !reflect.DeepEqual(warm.Profile.Samples, fresh.Profile.Samples) {
		t.Errorf("profile samples differ after restore")
	}

	// An unprofiled lookup of the same program must not see the profiled
	// entry (and vice versa): Profiling is part of the key.
	plain, err := Measure(p, WithCache(cache, scope))
	if err != nil {
		t.Fatal(err)
	}
	if plain.FromCache {
		t.Error("unprofiled measure hit a profiled entry")
	}
}

// TestMeasureTelemetryFidelity pins that instrumenting a run with
// telemetry does not perturb the measurement: stats, counters and pipeline
// results are identical with and without the observer, and the observed
// run additionally yields samples.
func TestMeasureTelemetryFidelity(t *testing.T) {
	p := toyProgram(SysPerl)
	plain, err := MeasureWithPipeline(p, alphasim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer()
	observed, err := MeasureWithPipeline(p, alphasim.DefaultConfig(),
		WithTelemetry(reg), WithTracer(tr), WithSampleInterval(512))
	if err != nil {
		t.Fatal(err)
	}
	if observed.Counter != plain.Counter {
		t.Errorf("counter perturbed: %+v != %+v", observed.Counter, plain.Counter)
	}
	if observed.Stats.Instructions != plain.Stats.Instructions ||
		observed.Stats.Commands != plain.Stats.Commands {
		t.Errorf("stats perturbed: %+v != %+v", observed.Stats, plain.Stats)
	}
	if *observed.Pipe != *plain.Pipe {
		t.Errorf("pipeline perturbed: %+v != %+v", observed.Pipe, plain.Pipe)
	}
	if len(observed.Samples) == 0 {
		t.Error("observed run must yield telemetry samples")
	}
	if plain.Samples != nil {
		t.Error("plain run must not yield samples")
	}
	if reg.Counter("core.measures").Value() != 1 {
		t.Errorf("core.measures = %d, want 1", reg.Counter("core.measures").Value())
	}
	if len(tr.Events()) == 0 {
		t.Error("tracer recorded no spans")
	}
}

// TestProfilingBatchModeSelection pins how run() picks the profiling
// batching mode: plain profiled measurements keep full, segment-marked
// blocks (no attribution flushes), while pipeline runs — whose cache-miss
// callbacks join on the collector's cached node — force a flush per
// attribution transition.
func TestProfilingBatchModeSelection(t *testing.T) {
	plain, err := Measure(toyProgram(SysPerl), WithProfiling())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Profile == nil {
		t.Fatal("profile missing")
	}
	if plain.Batch.FlushAttr != 0 {
		t.Errorf("plain profiled run flushed on attribution %d times, want 0 (segment marks)", plain.Batch.FlushAttr)
	}
	piped, err := MeasureWithPipeline(toyProgram(SysPerl), alphasim.DefaultConfig(), WithProfiling())
	if err != nil {
		t.Fatal(err)
	}
	if piped.Batch.FlushAttr == 0 {
		t.Error("miss-joining pipeline run must flush per attribution transition")
	}
	// Mode must not change the numbers: both runs fold the same stream.
	if got, want := plain.Profile.Total(profile.SampleInstructions), int64(plain.Stats.Instructions); got != want {
		t.Errorf("plain profile total = %d, want %d", got, want)
	}
	if got, want := piped.Profile.Total(profile.SampleInstructions), int64(piped.Stats.Instructions); got != want {
		t.Errorf("piped profile total = %d, want %d", got, want)
	}
}
