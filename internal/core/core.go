// Package core is the laboratory's public face: it ties workload programs,
// the instrumentation layer (internal/atom), and the processor simulator
// (internal/alphasim) into the measurement pipeline the paper's numbers
// come from.
//
// A Program knows how to run some benchmark under one of the five systems
// (compiled C, MIPSI, Java, Perl, Tcl).  Measure runs it against a fresh
// image/probe/OS and returns a Result holding the paper's software metrics
// (virtual commands, native instructions, fetch/decode vs. execute,
// per-command and per-region accounts).  MeasureWithPipeline additionally
// streams the native-instruction trace through the simulated 2-issue
// processor and reports cycles and stall breakdowns (Figure 3), and
// MeasureWithSweep drives the Figure 4 instruction-cache sweeps.
package core

import (
	"fmt"

	"interplab/internal/alphasim"
	"interplab/internal/atom"
	"interplab/internal/gfx"
	"interplab/internal/profile"
	"interplab/internal/rescache"
	"interplab/internal/telemetry"
	"interplab/internal/trace"
	"interplab/internal/vfs"
)

// System identifies one of the measured execution systems.
type System string

// The five systems of the paper.
const (
	SysC     System = "C"
	SysMIPSI System = "MIPSI"
	SysJava  System = "Java"
	SysPerl  System = "Perl"
	SysTcl   System = "Tcl"
)

// Ctx is the per-run environment handed to a program.
type Ctx struct {
	Image *atom.Image
	Probe *atom.Probe
	Sink  trace.Sink
	OS    *vfs.OS

	display  *gfx.Display
	size     int
	batch    trace.BatchStats
	perEvent bool
}

// Display lazily creates the run's framebuffer (native graphics library).
func (c *Ctx) Display(w, h int) *gfx.Display {
	if c.display == nil {
		c.display = gfx.New(c.Image, c.Probe, w, h)
	}
	return c.display
}

// SetProgramSize records the interpreted program's input size in bytes —
// Table 2's "Size" column.
func (c *Ctx) SetProgramSize(n int) { c.size = n }

// RecordBatch merges a workload-side producer's batch accounting into the
// run's totals — the compiled-C path (mipsi.Native) batches internally,
// bypassing the probe, and reports here so Result.Batch covers the whole
// stream.
func (c *Ctx) RecordBatch(bs trace.BatchStats) { c.batch.Add(bs) }

// PerEventEmission reports whether the run was requested with batching
// disabled (WithPerEventEmission); workload-side producers with their own
// batching honor it.
func (c *Ctx) PerEventEmission() bool { return c.perEvent }

// Program is one benchmark under one system.
type Program struct {
	System System
	Name   string
	Desc   string
	Run    func(ctx *Ctx) error

	// Variant distinguishes programs that share an ID but run the
	// interpreter with different knobs (the ablation's flat-memory,
	// threaded-dispatch, and cached-parse arms all measure "MIPSI/des"-
	// style identities).  It does not appear in rendered output, but it is
	// part of the measurement-cache key: two same-ID programs whose
	// behavior differs MUST carry different variants, or the cache would
	// hand one the other's result.
	Variant string
}

// ID returns "system/name".
func (p Program) ID() string { return fmt.Sprintf("%s/%s", p.System, p.Name) }

// Result is the outcome of a measured run.
type Result struct {
	Program Program

	// Stats holds the probe's books: commands, instruction phases,
	// per-op and per-region accounts.  For SysC runs the probe is unused
	// and Stats is zero except where noted.
	Stats atom.Stats

	// Counter tallies the emitted native-instruction stream.
	Counter trace.Counter

	// SizeBytes is the interpreted program's input size.
	SizeBytes int

	// Pipe holds processor-simulation results when requested.
	Pipe *alphasim.Stats

	// Display output digest, when the workload drew.
	FrameChecksum uint32

	// Stdout is the run's captured console output.
	Stdout string

	// Samples holds the telemetry observer's periodic snapshots when the
	// run was measured with WithTelemetry; nil otherwise.
	Samples []telemetry.Sample

	// Profile holds the attribution profile when the run was measured with
	// WithProfiling; nil otherwise.  For pipeline runs it includes
	// cache-miss attribution.
	Profile *profile.Profile

	// FromCache reports that the result was restored from the measurement
	// cache (WithCache) instead of executing the workload.  Restored
	// results are byte-for-byte interchangeable with fresh ones except for
	// Samples, which only a live stream produces.
	FromCache bool

	// Batch accounts the batched event pipeline: events and blocks
	// delivered to the sinks, split by flush trigger, summed over every
	// producer in the run (the probe, plus the compiled-C path's internal
	// batcher).  All zero under WithPerEventEmission.
	Batch trace.BatchStats
}

// Commands returns the virtual-command count.  For compiled C the paper
// equates commands with native instructions (Table 2's C row).
func (r Result) Commands() uint64 {
	if r.Program.System == SysC {
		return r.Counter.Total
	}
	return r.Stats.Commands
}

// NativeInstructions returns the total native instructions executed,
// excluding startup (precompilation), matching Table 2's accounting.
func (r Result) NativeInstructions() uint64 {
	if r.Program.System == SysC {
		return r.Counter.Total
	}
	return r.Stats.Instructions - r.Stats.Startup
}

// StartupInstructions returns the precompilation charge (Perl's
// parenthesized column in Table 2).
func (r Result) StartupInstructions() uint64 { return r.Stats.Startup }

// PerCommand returns the fetch/decode and execute averages of Table 2.
func (r Result) PerCommand() (fd, ex float64) {
	if r.Program.System == SysC {
		return 0, 1
	}
	return r.Stats.InstructionsPerCommand()
}

// measureConfig carries the optional instrumentation of a measured run.
type measureConfig struct {
	tracer      *telemetry.Tracer
	reg         *telemetry.Registry
	sampleEvery uint64
	profiling   bool
	perEvent    bool
	lane        int

	cache      *rescache.Cache
	cacheScope rescache.Scope
}

// newMeasureConfig applies the options.
func newMeasureConfig(opts []MeasureOption) measureConfig {
	var mc measureConfig
	for _, o := range opts {
		o(&mc)
	}
	return mc
}

// MeasureOption configures optional telemetry on Measure* calls.
type MeasureOption func(*measureConfig)

// WithTracer records spans for the run (workload execution, stats
// collection) into tr.  A nil tracer is allowed and disables tracing.
func WithTracer(tr *telemetry.Tracer) MeasureOption {
	return func(c *measureConfig) { c.tracer = tr }
}

// WithTelemetry wires the run's native-instruction stream through a
// sampling observer feeding reg, and counts runs/events there.  A nil
// registry is allowed and disables metrics (the event path is then
// byte-for-byte the uninstrumented one).
func WithTelemetry(reg *telemetry.Registry) MeasureOption {
	return func(c *measureConfig) { c.reg = reg }
}

// WithSampleInterval sets the observer's sampling period in events
// (default 65536).  Only meaningful together with WithTelemetry.
func WithSampleInterval(n uint64) MeasureOption {
	return func(c *measureConfig) { c.sampleEvery = n }
}

// WithTraceLane attributes the run's spans to the given trace lane
// (Chrome trace tid).  The harness's parallel scheduler gives each worker
// its own lane so concurrent runs render side by side; 0 (the default)
// means the main lane.
func WithTraceLane(lane int) MeasureOption {
	return func(c *measureConfig) { c.lane = lane }
}

// WithCache consults (and fills) the measurement cache c before executing:
// when an entry exists for the exact measurement — same lab build, same
// scope (experiment, scale), same program, kind, processor configuration,
// sweep geometry, and profiling mode — the Result is restored from disk
// without running the workload, and Result.FromCache is set.  On a miss the
// measurement runs normally and its result is stored (unless the cache is
// readonly).  A nil cache is allowed and disables caching.
func WithCache(c *rescache.Cache, scope rescache.Scope) MeasureOption {
	return func(mc *measureConfig) { mc.cache = c; mc.cacheScope = scope }
}

// WithProfiling attaches an attribution-profile collector to the run: the
// native-instruction stream is folded into call-stack samples keyed by
// interpreter routine, virtual opcode, and phase, returned as
// Result.Profile.  On pipeline runs the collector also receives cache-miss
// notifications, so misses are attributed to the routine/opcode that
// issued them.
func WithProfiling() MeasureOption {
	return func(c *measureConfig) { c.profiling = true }
}

// WithPerEventEmission disables the batched event pipeline for the run:
// every producer emits events to the sinks one at a time, the way the lab
// worked before batching.  The measured numbers are byte-identical either
// way (the differential tests pin this); this switch exists to measure the
// batching win itself and to bisect any suspected batching discrepancy.
func WithPerEventEmission() MeasureOption {
	return func(c *measureConfig) { c.perEvent = true }
}

// cacheKey builds the content address for one measurement of p under the
// current cache scope.
func (mc *measureConfig) cacheKey(p Program, kind, config, sweep string) rescache.Key {
	return rescache.Key{
		Schema:      rescache.SchemaVersion,
		Fingerprint: rescache.Fingerprint(),
		Experiment:  mc.cacheScope.Experiment,
		Scale:       mc.cacheScope.Scale,
		Kind:        kind,
		Program:     p.ID(),
		Variant:     p.Variant,
		Config:      config,
		Sweep:       sweep,
		Profiling:   mc.profiling,
		PerEvent:    mc.perEvent,
	}
}

// lookup consults the cache for key and, on a hit that valid accepts,
// restores the Result.  Hits and misses are counted in the run's telemetry
// registry so manifests expose the cache's effectiveness.
func (mc *measureConfig) lookup(p Program, key rescache.Key, valid func(*rescache.Entry) bool) (Result, bool) {
	if mc.cache == nil {
		return Result{}, false
	}
	e, ok := mc.cache.Get(key)
	if ok && valid != nil && !valid(e) {
		ok = false
	}
	if !ok {
		mc.reg.Counter("core.cache_misses").Inc()
		return Result{}, false
	}
	mc.reg.Counter("core.cache_hits").Inc()
	span := mc.tracer.StartOn(mc.lane, "cached "+p.ID(), "program", p.ID())
	span.End()
	res := Result{
		Program:       p,
		Stats:         e.Stats,
		Counter:       e.Counter,
		SizeBytes:     e.SizeBytes,
		Pipe:          e.Pipe,
		FrameChecksum: e.FrameChecksum,
		Stdout:        e.Stdout,
		Profile:       e.Profile,
		FromCache:     true,
	}
	if e.Batch != nil {
		res.Batch = *e.Batch
	}
	return res, true
}

// store writes a fresh measurement into the cache.  A failed write is
// counted but never fails the measurement: the result in hand is good, the
// cache just stays cold for this key.
func (mc *measureConfig) store(key rescache.Key, res Result, sweepPts []alphasim.SweepPoint) {
	if mc.cache == nil {
		return
	}
	e := &rescache.Entry{
		SizeBytes:     res.SizeBytes,
		Stdout:        res.Stdout,
		FrameChecksum: res.FrameChecksum,
		Counter:       res.Counter,
		Stats:         res.Stats,
		Pipe:          res.Pipe,
		Sweep:         sweepPts,
		Profile:       res.Profile,
	}
	if res.Batch != (trace.BatchStats{}) {
		b := res.Batch
		e.Batch = &b
	}
	if err := mc.cache.Put(key, e); err != nil {
		mc.reg.Counter("core.cache_put_errors").Inc()
	}
}

// run executes p against a fresh environment with the given sink.
func run(p Program, sink trace.Sink, mc measureConfig) (Result, error) {
	res := Result{Program: p}
	var counter trace.Counter
	var col *profile.Collector
	missJoin := false
	if mc.profiling {
		col = profile.NewCollector()
		// The collector must see each event before any simulating sink so
		// its cached attribution node is current when the pipeline reports
		// that event's cache misses back to it.
		if mo, ok := sink.(interface {
			SetMissObserver(alphasim.MissObserver)
		}); ok {
			mo.SetMissObserver(col)
			missJoin = true
		}
	}
	// The collector must precede the simulating sink in the fan so its
	// cached attribution node is current when the pipeline reports an
	// event's cache misses back to it; Combine preserves argument order.
	var fanned trace.Sink
	if col != nil {
		fanned = trace.Combine(&counter, col, sink)
	} else {
		fanned = trace.Combine(&counter, sink)
	}
	// With telemetry enabled the stream is observed on its way to the
	// counting/simulation sinks; disabled, Wrap returns the fan unchanged.
	observed := telemetry.Wrap(fanned, mc.reg, mc.sampleEvery)
	img := atom.NewImage()
	probe := atom.NewProbe(img, observed)
	if mc.perEvent {
		probe.SetBatching(false)
	}
	if col != nil {
		col.Bind(probe)
		if missJoin {
			// Miss attribution rides the pipeline's synchronous callbacks,
			// which land on the collector's cached node — coherent only when
			// every delivered block is uniform under one attribution state.
			// Plain profiling runs skip this and keep full, segment-marked
			// blocks instead.
			probe.RequireAttrSync()
		}
	}
	osys := vfs.New()
	// Compiled-C runs emit their own synthetic kernel path (mipsi.Native);
	// instrumenting the vfs as well would double-charge system time.
	if p.System != SysC {
		osys.Instrument(img, probe)
	}
	ctx := &Ctx{Image: img, Probe: probe, Sink: observed, OS: osys, perEvent: mc.perEvent}
	span := mc.tracer.StartOn(mc.lane, "workload "+p.ID(), "program", p.ID())
	err := p.Run(ctx)
	span.End()
	if err != nil {
		mc.reg.Counter("core.errors").Inc()
		return res, fmt.Errorf("%s: %w", p.ID(), err)
	}
	collect := mc.tracer.StartOn(mc.lane, "collect "+p.ID())
	// Drain the probe's buffered tail before reading any sink-side state:
	// the counter, observer, and profile totals are complete only after the
	// final flush.
	probe.FlushEvents()
	res.Batch = probe.BatchStats()
	res.Batch.Add(ctx.batch)
	res.Stats = probe.Stats()
	res.Counter = counter
	res.SizeBytes = ctx.size
	res.Stdout = osys.Stdout.String()
	if ctx.display != nil {
		res.FrameChecksum = ctx.display.Checksum()
	}
	if obs, ok := observed.(*telemetry.Observer); ok {
		obs.Flush()
		res.Samples = obs.Samples()
	}
	if col != nil {
		res.Profile = col.Profile(p.ID())
	}
	collect.End()
	mc.reg.Counter("core.measures").Inc()
	mc.reg.Counter("core.events").Add(counter.Total)
	mc.reg.Histogram("core.events_per_run").Observe(counter.Total)
	mc.reg.Histogram("core.commands_per_run").Observe(res.Commands())
	if b := res.Batch; b.Blocks > 0 {
		mc.reg.Counter("trace.batch.events").Add(b.Events)
		mc.reg.Counter("trace.batch.blocks").Add(b.Blocks)
		mc.reg.Counter("trace.batch.flush_fill").Add(b.FlushFill)
		mc.reg.Counter("trace.batch.flush_attr").Add(b.FlushAttr)
		mc.reg.Counter("trace.batch.flush_final").Add(b.FlushFinal)
		bs := mc.tracer.StartOn(telemetry.BatchLane, "batch "+p.ID(),
			"events", b.Events, "blocks", b.Blocks,
			"flush_fill", b.FlushFill, "flush_attr", b.FlushAttr, "flush_final", b.FlushFinal)
		bs.End()
	}
	return res, err
}

// Measure runs p and collects the software metrics only.
func Measure(p Program, opts ...MeasureOption) (Result, error) {
	mc := newMeasureConfig(opts)
	key := mc.cacheKey(p, "measure", "", "")
	if res, ok := mc.lookup(p, key, nil); ok {
		return res, nil
	}
	res, err := run(p, nil, mc)
	if err == nil {
		mc.store(key, res, nil)
	}
	return res, err
}

// MeasureWithPipeline runs p with the trace streaming through a simulated
// processor.
func MeasureWithPipeline(p Program, cfg alphasim.Config, opts ...MeasureOption) (Result, error) {
	mc := newMeasureConfig(opts)
	key := mc.cacheKey(p, "pipeline", rescache.ConfigKey(cfg), "")
	if res, ok := mc.lookup(p, key, func(e *rescache.Entry) bool { return e.Pipe != nil }); ok {
		return res, nil
	}
	pipe := alphasim.New(cfg)
	res, err := run(p, pipe, mc)
	if err != nil {
		return res, err
	}
	st := pipe.Stats()
	res.Pipe = &st
	mc.store(key, res, nil)
	return res, nil
}

// MeasureWithSweep runs p once while probing every geometry of the
// instruction-cache sweep (Figure 4).  On a cache hit the sweep's points
// are restored from the entry, so callers reading sweep.Points() see the
// same counts a live run would have accumulated.
func MeasureWithSweep(p Program, sweep *alphasim.ICacheSweep, opts ...MeasureOption) (Result, error) {
	mc := newMeasureConfig(opts)
	key := mc.cacheKey(p, "sweep", "", sweep.Geometry())
	restore := func(e *rescache.Entry) bool { return sweep.RestorePoints(e.Sweep) }
	if res, ok := mc.lookup(p, key, restore); ok {
		return res, nil
	}
	res, err := run(p, sweep, mc)
	if err == nil {
		mc.store(key, res, sweep.Points())
	}
	return res, err
}
