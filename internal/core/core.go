// Package core is the laboratory's public face: it ties workload programs,
// the instrumentation layer (internal/atom), and the processor simulator
// (internal/alphasim) into the measurement pipeline the paper's numbers
// come from.
//
// A Program knows how to run some benchmark under one of the five systems
// (compiled C, MIPSI, Java, Perl, Tcl).  Measure runs it against a fresh
// image/probe/OS and returns a Result holding the paper's software metrics
// (virtual commands, native instructions, fetch/decode vs. execute,
// per-command and per-region accounts).  MeasureWithPipeline additionally
// streams the native-instruction trace through the simulated 2-issue
// processor and reports cycles and stall breakdowns (Figure 3), and
// MeasureWithSweep drives the Figure 4 instruction-cache sweeps.
package core

import (
	"fmt"

	"interplab/internal/alphasim"
	"interplab/internal/atom"
	"interplab/internal/gfx"
	"interplab/internal/profile"
	"interplab/internal/telemetry"
	"interplab/internal/trace"
	"interplab/internal/vfs"
)

// System identifies one of the measured execution systems.
type System string

// The five systems of the paper.
const (
	SysC     System = "C"
	SysMIPSI System = "MIPSI"
	SysJava  System = "Java"
	SysPerl  System = "Perl"
	SysTcl   System = "Tcl"
)

// Ctx is the per-run environment handed to a program.
type Ctx struct {
	Image *atom.Image
	Probe *atom.Probe
	Sink  trace.Sink
	OS    *vfs.OS

	display *gfx.Display
	size    int
}

// Display lazily creates the run's framebuffer (native graphics library).
func (c *Ctx) Display(w, h int) *gfx.Display {
	if c.display == nil {
		c.display = gfx.New(c.Image, c.Probe, w, h)
	}
	return c.display
}

// SetProgramSize records the interpreted program's input size in bytes —
// Table 2's "Size" column.
func (c *Ctx) SetProgramSize(n int) { c.size = n }

// Program is one benchmark under one system.
type Program struct {
	System System
	Name   string
	Desc   string
	Run    func(ctx *Ctx) error
}

// ID returns "system/name".
func (p Program) ID() string { return fmt.Sprintf("%s/%s", p.System, p.Name) }

// Result is the outcome of a measured run.
type Result struct {
	Program Program

	// Stats holds the probe's books: commands, instruction phases,
	// per-op and per-region accounts.  For SysC runs the probe is unused
	// and Stats is zero except where noted.
	Stats atom.Stats

	// Counter tallies the emitted native-instruction stream.
	Counter trace.Counter

	// SizeBytes is the interpreted program's input size.
	SizeBytes int

	// Pipe holds processor-simulation results when requested.
	Pipe *alphasim.Stats

	// Display output digest, when the workload drew.
	FrameChecksum uint32

	// Stdout is the run's captured console output.
	Stdout string

	// Samples holds the telemetry observer's periodic snapshots when the
	// run was measured with WithTelemetry; nil otherwise.
	Samples []telemetry.Sample

	// Profile holds the attribution profile when the run was measured with
	// WithProfiling; nil otherwise.  For pipeline runs it includes
	// cache-miss attribution.
	Profile *profile.Profile
}

// Commands returns the virtual-command count.  For compiled C the paper
// equates commands with native instructions (Table 2's C row).
func (r Result) Commands() uint64 {
	if r.Program.System == SysC {
		return r.Counter.Total
	}
	return r.Stats.Commands
}

// NativeInstructions returns the total native instructions executed,
// excluding startup (precompilation), matching Table 2's accounting.
func (r Result) NativeInstructions() uint64 {
	if r.Program.System == SysC {
		return r.Counter.Total
	}
	return r.Stats.Instructions - r.Stats.Startup
}

// StartupInstructions returns the precompilation charge (Perl's
// parenthesized column in Table 2).
func (r Result) StartupInstructions() uint64 { return r.Stats.Startup }

// PerCommand returns the fetch/decode and execute averages of Table 2.
func (r Result) PerCommand() (fd, ex float64) {
	if r.Program.System == SysC {
		return 0, 1
	}
	return r.Stats.InstructionsPerCommand()
}

// measureConfig carries the optional instrumentation of a measured run.
type measureConfig struct {
	tracer      *telemetry.Tracer
	reg         *telemetry.Registry
	sampleEvery uint64
	profiling   bool
	lane        int
}

// MeasureOption configures optional telemetry on Measure* calls.
type MeasureOption func(*measureConfig)

// WithTracer records spans for the run (workload execution, stats
// collection) into tr.  A nil tracer is allowed and disables tracing.
func WithTracer(tr *telemetry.Tracer) MeasureOption {
	return func(c *measureConfig) { c.tracer = tr }
}

// WithTelemetry wires the run's native-instruction stream through a
// sampling observer feeding reg, and counts runs/events there.  A nil
// registry is allowed and disables metrics (the event path is then
// byte-for-byte the uninstrumented one).
func WithTelemetry(reg *telemetry.Registry) MeasureOption {
	return func(c *measureConfig) { c.reg = reg }
}

// WithSampleInterval sets the observer's sampling period in events
// (default 65536).  Only meaningful together with WithTelemetry.
func WithSampleInterval(n uint64) MeasureOption {
	return func(c *measureConfig) { c.sampleEvery = n }
}

// WithTraceLane attributes the run's spans to the given trace lane
// (Chrome trace tid).  The harness's parallel scheduler gives each worker
// its own lane so concurrent runs render side by side; 0 (the default)
// means the main lane.
func WithTraceLane(lane int) MeasureOption {
	return func(c *measureConfig) { c.lane = lane }
}

// WithProfiling attaches an attribution-profile collector to the run: the
// native-instruction stream is folded into call-stack samples keyed by
// interpreter routine, virtual opcode, and phase, returned as
// Result.Profile.  On pipeline runs the collector also receives cache-miss
// notifications, so misses are attributed to the routine/opcode that
// issued them.
func WithProfiling() MeasureOption {
	return func(c *measureConfig) { c.profiling = true }
}

// run executes p against a fresh environment with the given sink.
func run(p Program, sink trace.Sink, opts ...MeasureOption) (Result, error) {
	var mc measureConfig
	for _, o := range opts {
		o(&mc)
	}
	res := Result{Program: p}
	var counter trace.Counter
	var col *profile.Collector
	if mc.profiling {
		col = profile.NewCollector()
		// The collector must see each event before any simulating sink so
		// its cached attribution node is current when the pipeline reports
		// that event's cache misses back to it.
		if mo, ok := sink.(interface {
			SetMissObserver(alphasim.MissObserver)
		}); ok {
			mo.SetMissObserver(col)
		}
	}
	fan := make(trace.Multi, 0, 3)
	fan = append(fan, &counter)
	if col != nil {
		fan = append(fan, col)
	}
	if sink != nil {
		fan = append(fan, sink)
	}
	// With telemetry enabled the stream is observed on its way to the
	// counting/simulation sinks; disabled, Wrap returns the fan unchanged.
	var observed trace.Sink
	if len(fan) == 1 {
		observed = telemetry.Wrap(&counter, mc.reg, mc.sampleEvery)
	} else {
		observed = telemetry.Wrap(fan, mc.reg, mc.sampleEvery)
	}
	img := atom.NewImage()
	probe := atom.NewProbe(img, observed)
	if col != nil {
		col.Bind(probe)
	}
	osys := vfs.New()
	// Compiled-C runs emit their own synthetic kernel path (mipsi.Native);
	// instrumenting the vfs as well would double-charge system time.
	if p.System != SysC {
		osys.Instrument(img, probe)
	}
	ctx := &Ctx{Image: img, Probe: probe, Sink: observed, OS: osys}
	span := mc.tracer.StartOn(mc.lane, "workload "+p.ID(), "program", p.ID())
	err := p.Run(ctx)
	span.End()
	if err != nil {
		mc.reg.Counter("core.errors").Inc()
		return res, fmt.Errorf("%s: %w", p.ID(), err)
	}
	collect := mc.tracer.StartOn(mc.lane, "collect "+p.ID())
	res.Stats = probe.Stats()
	res.Counter = counter
	res.SizeBytes = ctx.size
	res.Stdout = osys.Stdout.String()
	if ctx.display != nil {
		res.FrameChecksum = ctx.display.Checksum()
	}
	if obs, ok := observed.(*telemetry.Observer); ok {
		obs.Flush()
		res.Samples = obs.Samples()
	}
	if col != nil {
		res.Profile = col.Profile(p.ID())
	}
	collect.End()
	mc.reg.Counter("core.measures").Inc()
	mc.reg.Counter("core.events").Add(counter.Total)
	mc.reg.Histogram("core.events_per_run").Observe(counter.Total)
	mc.reg.Histogram("core.commands_per_run").Observe(res.Commands())
	return res, err
}

// Measure runs p and collects the software metrics only.
func Measure(p Program, opts ...MeasureOption) (Result, error) { return run(p, nil, opts...) }

// MeasureWithPipeline runs p with the trace streaming through a simulated
// processor.
func MeasureWithPipeline(p Program, cfg alphasim.Config, opts ...MeasureOption) (Result, error) {
	pipe := alphasim.New(cfg)
	res, err := run(p, pipe, opts...)
	if err != nil {
		return res, err
	}
	st := pipe.Stats()
	res.Pipe = &st
	return res, nil
}

// MeasureWithSweep runs p once while probing every geometry of the
// instruction-cache sweep (Figure 4).
func MeasureWithSweep(p Program, sweep *alphasim.ICacheSweep, opts ...MeasureOption) (Result, error) {
	return run(p, sweep, opts...)
}
