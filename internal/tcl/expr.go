package tcl

import (
	"fmt"
	"strconv"
	"strings"
)

// exprValue is a Tcl expression operand: numeric when possible, string
// otherwise.
type exprValue struct {
	f     float64
	isNum bool
	s     string
}

func numValue(f float64) exprValue { return exprValue{f: f, isNum: true} }

func parseOperandValue(s string) exprValue {
	t := strings.TrimSpace(s)
	if t == "" {
		return exprValue{s: s}
	}
	if v, err := strconv.ParseInt(t, 0, 64); err == nil {
		return numValue(float64(v))
	}
	if v, err := strconv.ParseFloat(t, 64); err == nil {
		return numValue(v)
	}
	return exprValue{s: s}
}

func (v exprValue) bool() bool {
	if v.isNum {
		return v.f != 0
	}
	return v.s != "" && v.s != "0"
}

func (v exprValue) str() string {
	if v.isNum {
		return formatExprNum(v.f)
	}
	return v.s
}

func formatExprNum(f float64) string {
	if f == float64(int64(f)) {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', 12, 64)
}

// EvalExpr substitutes and evaluates a Tcl expression string.
func (i *Interp) EvalExpr(raw string) (exprValue, error) {
	sub, err := i.SubstituteString(raw)
	if err != nil {
		return exprValue{}, err
	}
	if i.p != nil {
		i.p.Exec(i.rExpr, 30+6*len(sub))
	}
	ep := &exprParser{i: i, s: sub}
	v, err := ep.ternary()
	if err != nil {
		return exprValue{}, err
	}
	ep.skip()
	if ep.pos < len(ep.s) {
		return exprValue{}, fmt.Errorf("syntax error in expression %q", raw)
	}
	return v, nil
}

// ExprBool evaluates a condition string.
func (i *Interp) ExprBool(raw string) (bool, error) {
	v, err := i.EvalExpr(raw)
	return v.bool(), err
}

// ExprString evaluates an expression to its string result.
func (i *Interp) ExprString(raw string) (string, error) {
	v, err := i.EvalExpr(raw)
	return v.str(), err
}

type exprParser struct {
	i   *Interp
	s   string
	pos int
}

func (e *exprParser) skip() {
	for e.pos < len(e.s) && (e.s[e.pos] == ' ' || e.s[e.pos] == '\t' || e.s[e.pos] == '\n') {
		e.pos++
	}
}

func (e *exprParser) peekOp(ops ...string) string {
	e.skip()
	for _, op := range ops {
		if strings.HasPrefix(e.s[e.pos:], op) {
			return op
		}
	}
	return ""
}

func (e *exprParser) charge(n int) {
	if e.i.p != nil {
		e.i.p.Exec(e.i.rExpr, n)
	}
}

func (e *exprParser) ternary() (exprValue, error) {
	c, err := e.orExpr()
	if err != nil {
		return c, err
	}
	if e.peekOp("?") != "" {
		e.pos++
		e.charge(8)
		t, err := e.ternary()
		if err != nil {
			return t, err
		}
		if e.peekOp(":") == "" {
			return t, fmt.Errorf("missing : in ?:")
		}
		e.pos++
		f, err := e.ternary()
		if err != nil {
			return f, err
		}
		if c.bool() {
			return t, nil
		}
		return f, nil
	}
	return c, nil
}

func (e *exprParser) orExpr() (exprValue, error) {
	lhs, err := e.andExpr()
	if err != nil {
		return lhs, err
	}
	for e.peekOp("||") != "" {
		e.pos += 2
		e.charge(10)
		rhs, err := e.andExpr()
		if err != nil {
			return rhs, err
		}
		lhs = numValue(boolToF(lhs.bool() || rhs.bool()))
	}
	return lhs, nil
}

func (e *exprParser) andExpr() (exprValue, error) {
	lhs, err := e.bitExpr()
	if err != nil {
		return lhs, err
	}
	for e.peekOp("&&") != "" {
		e.pos += 2
		e.charge(10)
		rhs, err := e.bitExpr()
		if err != nil {
			return rhs, err
		}
		lhs = numValue(boolToF(lhs.bool() && rhs.bool()))
	}
	return lhs, nil
}

func (e *exprParser) bitExpr() (exprValue, error) {
	lhs, err := e.cmpExpr()
	if err != nil {
		return lhs, err
	}
	for {
		op := e.peekOp("&", "|", "^")
		// Avoid eating && and ||.
		if op == "" || strings.HasPrefix(e.s[e.pos:], "&&") || strings.HasPrefix(e.s[e.pos:], "||") {
			return lhs, nil
		}
		e.pos++
		e.charge(10)
		rhs, err := e.cmpExpr()
		if err != nil {
			return rhs, err
		}
		a, b := int64(lhs.f), int64(rhs.f)
		switch op {
		case "&":
			lhs = numValue(float64(a & b))
		case "|":
			lhs = numValue(float64(a | b))
		case "^":
			lhs = numValue(float64(a ^ b))
		}
	}
}

func boolToF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func (e *exprParser) cmpExpr() (exprValue, error) {
	lhs, err := e.shiftExpr()
	if err != nil {
		return lhs, err
	}
	for {
		op := e.peekOp("==", "!=", "<=", ">=", "<", ">")
		if op == "" || strings.HasPrefix(e.s[e.pos:], "<<") || strings.HasPrefix(e.s[e.pos:], ">>") {
			return lhs, nil
		}
		e.pos += len(op)
		e.charge(12)
		rhs, err := e.shiftExpr()
		if err != nil {
			return rhs, err
		}
		var res bool
		if lhs.isNum && rhs.isNum {
			switch op {
			case "==":
				res = lhs.f == rhs.f
			case "!=":
				res = lhs.f != rhs.f
			case "<":
				res = lhs.f < rhs.f
			case "<=":
				res = lhs.f <= rhs.f
			case ">":
				res = lhs.f > rhs.f
			case ">=":
				res = lhs.f >= rhs.f
			}
		} else {
			a, b := lhs.str(), rhs.str()
			switch op {
			case "==":
				res = a == b
			case "!=":
				res = a != b
			case "<":
				res = a < b
			case "<=":
				res = a <= b
			case ">":
				res = a > b
			case ">=":
				res = a >= b
			}
		}
		lhs = numValue(boolToF(res))
	}
}

func (e *exprParser) shiftExpr() (exprValue, error) {
	lhs, err := e.addExpr()
	if err != nil {
		return lhs, err
	}
	for {
		op := e.peekOp("<<", ">>")
		if op == "" {
			return lhs, nil
		}
		e.pos += 2
		e.charge(10)
		rhs, err := e.addExpr()
		if err != nil {
			return rhs, err
		}
		a, b := int64(lhs.f), uint(int64(rhs.f))&63
		if op == "<<" {
			lhs = numValue(float64(a << b))
		} else {
			lhs = numValue(float64(a >> b))
		}
	}
}

func (e *exprParser) addExpr() (exprValue, error) {
	lhs, err := e.mulExpr()
	if err != nil {
		return lhs, err
	}
	for {
		op := e.peekOp("+", "-")
		if op == "" {
			return lhs, nil
		}
		e.pos++
		e.charge(10)
		rhs, err := e.mulExpr()
		if err != nil {
			return rhs, err
		}
		if op == "+" {
			lhs = numValue(lhs.f + rhs.f)
		} else {
			lhs = numValue(lhs.f - rhs.f)
		}
	}
}

func (e *exprParser) mulExpr() (exprValue, error) {
	lhs, err := e.unary()
	if err != nil {
		return lhs, err
	}
	for {
		op := e.peekOp("*", "/", "%")
		if op == "" {
			return lhs, nil
		}
		e.pos++
		e.charge(12)
		rhs, err := e.unary()
		if err != nil {
			return rhs, err
		}
		switch op {
		case "*":
			lhs = numValue(lhs.f * rhs.f)
		case "/":
			if rhs.f == 0 {
				return lhs, fmt.Errorf("divide by zero")
			}
			if lhs.f == float64(int64(lhs.f)) && rhs.f == float64(int64(rhs.f)) {
				// Integer division truncates toward negative infinity.
				a, b := int64(lhs.f), int64(rhs.f)
				q := a / b
				if (a%b != 0) && ((a < 0) != (b < 0)) {
					q--
				}
				lhs = numValue(float64(q))
			} else {
				lhs = numValue(lhs.f / rhs.f)
			}
		case "%":
			if int64(rhs.f) == 0 {
				return lhs, fmt.Errorf("divide by zero")
			}
			a, b := int64(lhs.f), int64(rhs.f)
			r := a % b
			if r != 0 && (r < 0) != (b < 0) {
				r += b
			}
			lhs = numValue(float64(r))
		}
	}
}

func (e *exprParser) unary() (exprValue, error) {
	e.skip()
	if e.pos < len(e.s) {
		switch e.s[e.pos] {
		case '-':
			e.pos++
			v, err := e.unary()
			if err != nil {
				return v, err
			}
			return numValue(-v.f), nil
		case '!':
			e.pos++
			v, err := e.unary()
			if err != nil {
				return v, err
			}
			return numValue(boolToF(!v.bool())), nil
		case '~':
			e.pos++
			v, err := e.unary()
			if err != nil {
				return v, err
			}
			return numValue(float64(^int64(v.f))), nil
		case '(':
			e.pos++
			v, err := e.ternary()
			if err != nil {
				return v, err
			}
			if e.peekOp(")") == "" {
				return v, fmt.Errorf("missing )")
			}
			e.pos++
			return v, nil
		}
	}
	return e.operand()
}

func (e *exprParser) operand() (exprValue, error) {
	e.skip()
	if e.pos >= len(e.s) {
		return exprValue{}, fmt.Errorf("empty expression")
	}
	start := e.pos
	c := e.s[e.pos]
	// Quoted string operand.
	if c == '"' {
		e.pos++
		for e.pos < len(e.s) && e.s[e.pos] != '"' {
			e.pos++
		}
		if e.pos >= len(e.s) {
			return exprValue{}, fmt.Errorf("missing close-quote in expression")
		}
		e.pos++
		return exprValue{s: e.s[start+1 : e.pos-1]}, nil
	}
	if c == '{' {
		depth := 0
		for ; e.pos < len(e.s); e.pos++ {
			if e.s[e.pos] == '{' {
				depth++
			} else if e.s[e.pos] == '}' {
				depth--
				if depth == 0 {
					e.pos++
					return exprValue{s: e.s[start+1 : e.pos-1]}, nil
				}
			}
		}
		return exprValue{}, fmt.Errorf("missing close-brace in expression")
	}
	// Number or bare token.
	for e.pos < len(e.s) {
		ch := e.s[e.pos]
		if ch == ' ' || ch == '\t' || ch == '\n' || strings.ContainsRune("+-*/%()<>=!&|^?:~", rune(ch)) {
			// Allow leading sign, exponent signs, and hex digits inside.
			if (ch == '+' || ch == '-') && e.pos > start && (e.s[e.pos-1] == 'e' || e.s[e.pos-1] == 'E') {
				e.pos++
				continue
			}
			break
		}
		e.pos++
	}
	if e.pos == start {
		return exprValue{}, fmt.Errorf("syntax error in expression at %q", e.s[start:])
	}
	return parseOperandValue(e.s[start:e.pos]), nil
}
