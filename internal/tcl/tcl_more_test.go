package tcl

import (
	"testing"
	"testing/quick"

	"interplab/internal/vfs"
)

func TestListRoundTripProperty(t *testing.T) {
	// Property: JoinList then SplitList recovers the elements, for
	// elements without braces or backslashes.
	sanitize := func(in []string) []string {
		out := make([]string, 0, len(in))
		for _, s := range in {
			clean := make([]byte, 0, len(s))
			for i := 0; i < len(s); i++ {
				c := s[i]
				if c == '{' || c == '}' || c == '\\' || c == '"' || c < 32 || c > 126 {
					c = '_'
				}
				clean = append(clean, c)
			}
			out = append(out, string(clean))
		}
		return out
	}
	f := func(raw []string) bool {
		items := sanitize(raw)
		got, err := SplitList(JoinList(items))
		if err != nil {
			return false
		}
		if len(got) != len(items) {
			return false
		}
		for i := range got {
			if got[i] != items[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitListForms(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"a b c", []string{"a", "b", "c"}},
		{"  a   b  ", []string{"a", "b"}},
		{"{a b} c", []string{"a b", "c"}},
		{`"a b" c`, []string{"a b", "c"}},
		{"{nested {braces here}} x", []string{"nested {braces here}", "x"}},
		{"", nil},
	}
	for _, c := range cases {
		got, err := SplitList(c.in)
		if err != nil {
			t.Errorf("SplitList(%q): %v", c.in, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("SplitList(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("SplitList(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
	if _, err := SplitList("{unclosed"); err == nil {
		t.Error("unbalanced list must fail")
	}
}

func TestGlobMatch(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"*", "", true},
		{"*", "anything", true},
		{"a*b", "ab", true},
		{"a*b", "axxxb", true},
		{"a*b", "axxx", false},
		{"?x", "ax", true},
		{"?x", "x", false},
		{"[a-c]z", "bz", true},
		{"[a-c]z", "dz", false},
		{"*.tcl", "prog.tcl", true},
		{"*.tcl", "prog.c", false},
		{"a*c*e", "abcde", true},
	}
	for _, c := range cases {
		if got := globMatch(c.pat, c.s); got != c.want {
			t.Errorf("globMatch(%q, %q) = %v, want %v", c.pat, c.s, got, c.want)
		}
	}
}

func TestExprPrecedenceAndFloats(t *testing.T) {
	cases := map[string]string{
		`expr 1 + 2 << 3`:        "24", // (1+2)<<3, C precedence
		`expr 10 - 2 - 3`:        "5",
		`expr 2 + 3 == 5`:        "1",
		`expr 1 ? 2 ? 3 : 4 : 5`: "3",
		`expr -3 % 5`:            "2", // Tcl: sign follows divisor
		`expr 7 & 3 | 8`:         "11",
		`expr 1.5 * 4`:           "6",
		`expr (1 > 0) + (2 > 1)`: "2",
	}
	for script, want := range cases {
		i := New(vfs.New(), nil, nil)
		got, err := i.Eval(script)
		if err != nil {
			t.Errorf("%s: %v", script, err)
			continue
		}
		if got != want {
			t.Errorf("%s = %q, want %q", script, got, want)
		}
	}
}

func TestForeachBreakContinue(t *testing.T) {
	out := runTcl(t, `
set acc {}
foreach x {1 2 3 4 5} {
    if {$x == 2} continue
    if {$x == 5} break
    lappend acc $x
}
puts $acc
`)
	if out != "1 3 4\n" {
		t.Errorf("out = %q", out)
	}
}

func TestProcArgsVariadic(t *testing.T) {
	out := runTcl(t, `
proc tally {first args} {
    return "$first/[llength $args]"
}
puts [tally a]
puts [tally a b c d]
`)
	if out != "a/0\na/3\n" {
		t.Errorf("out = %q", out)
	}
}

func TestIncrNegativeAndUnset(t *testing.T) {
	out := runTcl(t, `
set n 10
incr n -3
puts $n
unset n
puts [info exists n]
`)
	if out != "7\n0\n" {
		t.Errorf("out = %q", out)
	}
}

func TestCatchBreakReturnsError(t *testing.T) {
	out := runTcl(t, `
proc f {} {
    set rc [catch {error deep} msg]
    return "$rc:$msg"
}
puts [f]
`)
	if out != "1:error: deep\n" {
		t.Errorf("out = %q", out)
	}
}

func TestNestedArrayKeys(t *testing.T) {
	out := runTcl(t, `
set i 3
set grid(1,$i) x
set grid(2,[expr $i + 1]) y
puts "$grid(1,3) $grid(2,4) [array size grid]"
`)
	if out != "x y 2\n" {
		t.Errorf("out = %q", out)
	}
}

func TestLineContinuationAndComments(t *testing.T) {
	out := runTcl(t, "# leading comment\nset x \\\n42\nputs $x ;# trailing command\n")
	if out != "42\n" {
		t.Errorf("out = %q", out)
	}
}

func TestConcatAndEvalList(t *testing.T) {
	out := runTcl(t, `
puts [concat {a b} {} {c}]
puts [eval concat {1 2} {3}]
`)
	if out != "a b c\n1 2 3\n" {
		t.Errorf("out = %q", out)
	}
}
