package tcl

import (
	"strings"
	"testing"

	"interplab/internal/atom"
	"interplab/internal/trace"
	"interplab/internal/vfs"
)

func runTcl(t *testing.T, script string) string {
	t.Helper()
	return runTclFS(t, script, vfs.New())
}

func runTclFS(t *testing.T, script string, osys *vfs.OS) string {
	t.Helper()
	i := New(osys, nil, nil)
	if _, err := i.Eval(script); err != nil {
		t.Fatalf("eval: %v", err)
	}
	return osys.Stdout.String()
}

func TestSetAndSubstitution(t *testing.T) {
	out := runTcl(t, `
set x 42
set y $x
puts "x=$x y=$y"
set name x
puts "indirect=[set $name]"
puts {braced $x not substituted}
`)
	want := "x=42 y=42\nindirect=42\nbraced $x not substituted\n"
	if out != want {
		t.Errorf("out = %q, want %q", out, want)
	}
}

func TestExprCommand(t *testing.T) {
	cases := map[string]string{
		`expr 2 + 3 * 4`:        "14",
		`expr (2 + 3) * 4`:      "20",
		`expr 7 / 2`:            "3",
		`expr -7 / 2`:           "-4", // Tcl truncates toward -inf
		`expr 7 % 3`:            "1",
		`expr 7.5 + 0.25`:       "7.75",
		`expr 1 << 5`:           "32",
		`expr 5 > 3 && 2 < 1`:   "0",
		`expr 5 > 3 || 2 < 1`:   "1",
		`expr !0`:               "1",
		`expr 3 == 3 ? 10 : 20`: "10",
		`expr "abc" == "abc"`:   "1",
		`expr "abc" < "abd"`:    "1",
		`expr 0xff & 0x0f`:      "15",
		`expr ~0 & 0xff`:        "255",
	}
	for script, want := range cases {
		i := New(vfs.New(), nil, nil)
		got, err := i.Eval(script)
		if err != nil {
			t.Errorf("%s: %v", script, err)
			continue
		}
		if got != want {
			t.Errorf("%s = %q, want %q", script, got, want)
		}
	}
}

func TestControlFlow(t *testing.T) {
	out := runTcl(t, `
set sum 0
for {set i 1} {$i <= 10} {incr i} {
    if {$i == 5} continue
    if {$i == 9} break
    set sum [expr $sum + $i]
}
while {$sum > 31} { incr sum -1 }
puts $sum
foreach w {a b c} { puts "w=$w" }
`)
	if out != "31\nw=a\nw=b\nw=c\n" {
		t.Errorf("out = %q", out)
	}
}

func TestProcs(t *testing.T) {
	out := runTcl(t, `
proc fact {n} {
    if {$n < 2} { return 1 }
    return [expr $n * [fact [expr $n - 1]]]
}
proc greet {name {greeting hello}} {
    return "$greeting, $name"
}
puts [fact 6]
puts [greet world]
puts [greet tcl hi]
`)
	if out != "720\nhello, world\nhi, tcl\n" {
		t.Errorf("out = %q", out)
	}
}

func TestGlobalScoping(t *testing.T) {
	out := runTcl(t, `
set counter 10
proc bump {} {
    global counter
    incr counter
}
bump
bump
puts $counter
proc shadow {} {
    set counter 99
    return $counter
}
puts [shadow]
puts $counter
`)
	if out != "12\n99\n12\n" {
		t.Errorf("out = %q", out)
	}
}

func TestStringCommands(t *testing.T) {
	out := runTcl(t, `
puts [string length "hello"]
puts [string index "hello" 1]
puts [string range "hello world" 6 end]
puts [string toupper "mixed"]
puts [string compare abc abd]
puts [string first lo "hello"]
puts [string match "a*c" "abc"]
puts [string match "a?c" "axc"]
puts [string trim "  pad  "]
`)
	want := "5\ne\nworld\nMIXED\n-1\n3\n1\n1\npad\n"
	if out != want {
		t.Errorf("out = %q, want %q", out, want)
	}
}

func TestListCommands(t *testing.T) {
	out := runTcl(t, `
set l [list a b "c d"]
puts [llength $l]
puts [lindex $l 2]
puts [lindex $l end]
lappend l e
puts [llength $l]
puts [lrange {1 2 3 4 5} 1 3]
puts [lsearch {alpha beta gamma} b*]
puts [lsort {pear apple fig}]
puts [join {a b c} -]
puts [split "a,b,,c" ,]
`)
	want := "3\nc d\nc d\n4\n2 3 4\n1\napple fig pear\na-b-c\na b {} c\n"
	if out != want {
		t.Errorf("out = %q, want %q", out, want)
	}
}

func TestArrays(t *testing.T) {
	out := runTcl(t, `
set a(one) 1
set a(two) 2
set k two
puts $a($k)
puts [array size a]
puts [array names a]
array set b {x 10 y 20}
puts [expr $b(x) + $b(y)]
puts [array exists a][array exists nope]
`)
	if out != "2\n2\none two\n30\n10\n" {
		t.Errorf("out = %q", out)
	}
}

func TestFormatAndAppend(t *testing.T) {
	out := runTcl(t, `
puts [format "%05d|%-4s|%x" 42 ab 255]
set s abc
append s def ghi
puts $s
`)
	if out != "00042|ab  |ff\nabcdefghi\n" {
		t.Errorf("out = %q", out)
	}
}

func TestRegexpCommands(t *testing.T) {
	out := runTcl(t, `
puts [regexp {([a-z]+)@([a-z]+)} "mail bob@example org" all user host]
puts "$all $user $host"
regsub -all {o} "foo boo" "0" result
puts $result
puts [regexp {xyz} "abc"]
`)
	if out != "1\nbob@example bob example\nf00 b00\n0\n" {
		t.Errorf("out = %q", out)
	}
}

func TestFileIO(t *testing.T) {
	osys := vfs.New()
	osys.AddFile("in.txt", []byte("line one\nline two\n"))
	out := runTclFS(t, `
set f [open in.txt]
set n 0
while {[gets $f line] >= 0} {
    incr n
    puts "$n: $line"
}
close $f
set g [open out.txt w]
puts $g "saved"
close $g
`, osys)
	if out != "1: line one\n2: line two\n" {
		t.Errorf("out = %q", out)
	}
	d, ok := osys.FileData("out.txt")
	if !ok || string(d) != "saved\n" {
		t.Errorf("out.txt = %q", d)
	}
}

func TestReadAndEOF(t *testing.T) {
	osys := vfs.New()
	osys.AddFile("data", []byte("abcdef"))
	out := runTclFS(t, `
set f [open data]
puts [eof $f]
puts [read $f 3]
puts [read $f]
puts [eof $f]
close $f
`, osys)
	if out != "0\nabc\ndef\n1\n" {
		t.Errorf("out = %q", out)
	}
}

func TestCatchAndError(t *testing.T) {
	out := runTcl(t, `
set rc [catch {error "boom"} msg]
puts "$rc $msg"
set rc [catch {expr 1 + 1} val]
puts "$rc $val"
`)
	if out != "1 error: boom\n0 2\n" {
		t.Errorf("out = %q", out)
	}
}

func TestCommandSubstitutionNesting(t *testing.T) {
	out := runTcl(t, `
proc double {x} { return [expr $x * 2] }
puts [double [double [double 3]]]
`)
	if out != "24\n" {
		t.Errorf("out = %q", out)
	}
}

func TestEvalAndExit(t *testing.T) {
	osys := vfs.New()
	i := New(osys, nil, nil)
	if _, err := i.Eval(`eval {puts hi}; exit 4; puts unreachable`); err != nil {
		t.Fatal(err)
	}
	if osys.Stdout.String() != "hi\n" {
		t.Errorf("out = %q", osys.Stdout.String())
	}
	if i.ExitCode() != 4 {
		t.Errorf("exit = %d", i.ExitCode())
	}
}

func TestErrors(t *testing.T) {
	for _, script := range []string{
		`nosuchcommand`,
		`puts $undefined`,
		`set`,
		`expr 1 +`,
		`incr notanum`,
		"set x {unclosed",
		`expr 1/0`,
		`proc p {a} {}; p`,
	} {
		i := New(vfs.New(), nil, nil)
		if _, err := i.Eval(script); err == nil {
			t.Errorf("script %q should fail", script)
		}
	}
}

func TestInfoCommands(t *testing.T) {
	out := runTcl(t, `
set x 1
puts [info exists x][info exists y]
proc p {} {}
puts [lsearch [info procs] p]
`)
	if out != "10\n0\n" {
		t.Errorf("out = %q", out)
	}
}

// --- instrumentation bands ----------------------------------------------------

func instrumentedTcl(t *testing.T, script string, osys *vfs.OS) (*Interp, atom.Stats) {
	t.Helper()
	img := atom.NewImage()
	p := atom.NewProbe(img, trace.Discard)
	osys.Instrument(img, p)
	i := New(osys, img, p)
	if _, err := i.Eval(script); err != nil {
		t.Fatal(err)
	}
	return i, p.Stats()
}

func TestInstrumentationBands(t *testing.T) {
	// Table 2: Tcl fetch/decode is thousands of instructions per command
	// because the source is re-parsed on every execution.
	_, st := instrumentedTcl(t, `
set total 0
for {set i 0} {$i < 100} {incr i} {
    set total [expr $total + $i * 2]
}
puts $total
`, vfs.New())
	fd, ex := st.InstructionsPerCommand()
	if fd < 800 || fd > 8000 {
		t.Errorf("fetch/decode per command = %.0f, want thousands", fd)
	}
	if ex <= 0 {
		t.Errorf("execute per command = %.0f", ex)
	}
	if st.Commands < 300 {
		t.Errorf("commands = %d, too few", st.Commands)
	}
}

func TestLoopBodyReParsedEachIteration(t *testing.T) {
	// The defining Tcl property: running the same loop twice as long
	// roughly doubles fetch/decode work — the body is re-parsed per
	// iteration, not compiled once.
	measure := func(n string) uint64 {
		img := atom.NewImage()
		p := atom.NewProbe(img, trace.Discard)
		i := New(vfs.New(), img, p)
		if _, err := i.Eval(`for {set i 0} {$i < ` + n + `} {incr i} { set x "val$i" }`); err != nil {
			t.Fatal(err)
		}
		return p.Stats().FetchDecode
	}
	fd1 := measure("50")
	fd2 := measure("100")
	ratio := float64(fd2) / float64(fd1)
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("fetch/decode ratio for 2x iterations = %.2f, want ~2", ratio)
	}
}

func TestSymbolTableMemoryModel(t *testing.T) {
	// §3.3: every variable access costs hundreds of instructions, and
	// the cost grows with the symbol table.
	_, stSmall := instrumentedTcl(t, `
set v 0
for {set i 0} {$i < 50} {incr i} { set v [expr $v + 1] }
`, vfs.New())
	mm, ok := stSmall.Region("memmodel")
	if !ok || mm.Accesses == 0 {
		t.Fatal("memmodel region missing")
	}
	per := mm.PerAccess()
	if per < 150 || per > 600 {
		t.Errorf("per-access = %.0f, want ~206-514", per)
	}

	// A program with many globals pays more per access.
	var sb strings.Builder
	for j := 0; j < 400; j++ {
		sb.WriteString("set filler")
		sb.WriteString(string(rune('a' + j%26)))
		sb.WriteString(strings.Repeat("x", j%7))
		sb.WriteString(" 1\n")
	}
	sb.WriteString("set v 0\nfor {set i 0} {$i < 50} {incr i} { set v [expr $v + 1] }\n")
	_, stBig := instrumentedTcl(t, sb.String(), vfs.New())
	mmBig, _ := stBig.Region("memmodel")
	if mmBig.PerAccess() <= per {
		t.Errorf("per-access with big symbol table (%.0f) should exceed small (%.0f)",
			mmBig.PerAccess(), per)
	}
}

func TestCachedParseReducesFetchDecode(t *testing.T) {
	// The Tcl 8 ablation: re-executed bodies cost less to dispatch once
	// parse results are cached, and behavior is unchanged.
	script := `
set s 0
for {set i 0} {$i < 60} {incr i} { set s [expr $s + $i * 3] }
puts $s
`
	run := func(cached bool) (uint64, string) {
		img := atom.NewImage()
		p := atom.NewProbe(img, trace.Discard)
		osys := vfs.New()
		i := New(osys, img, p)
		i.CachedParse = cached
		if _, err := i.Eval(script); err != nil {
			t.Fatal(err)
		}
		return p.Stats().FetchDecode, osys.Stdout.String()
	}
	fdBase, outBase := run(false)
	fdCached, outCached := run(true)
	if outBase != outCached {
		t.Fatalf("caching changed behavior: %q vs %q", outBase, outCached)
	}
	if float64(fdCached) > 0.8*float64(fdBase) {
		t.Errorf("cached parse fd = %d, want well below %d", fdCached, fdBase)
	}
}
