package tcl

// Quickening tier: Brunthaler-style operand quickening translated to a
// string interpreter.  A bytecode VM rewrites an opcode in place after
// resolving its operand once; Tcl 7 has no bytecode to rewrite, so the
// equivalent specialization is a name-keyed inline cache — the first
// lookup of a variable or command pays the full hash-and-chain-walk cost
// and installs a cache entry, and every later use revalidates the cached
// pointer instead of re-resolving the name.  Values still flow through
// the ordinary symbol table, so guest-visible behavior is untouched; only
// the translation cost (the §3.3 overhead the paper measures at 206–514
// native instructions per variable reference) changes.

// fillQuickCache installs name into one of the quickening caches and
// charges the one-time fill (the quickening "rewrite": resolving the name
// generically just happened, the entry pointer is stored for reuse).
func (i *Interp) fillQuickCache(cache *map[string]bool, name string, h uint32) {
	if *cache == nil {
		*cache = make(map[string]bool)
	}
	(*cache)[name] = true
	i.QuickenRewrites++
	if i.rQuick == nil {
		// Lazy: the quickening machinery joins the instrumentation image
		// only when the tier actually runs, so the baseline image layout
		// is byte-identical with the tier off.
		i.rQuick = i.img.Routine("tcl.quicken", 120)
	}
	i.p.Exec(i.rQuick, costQuickenFill)
	i.p.Store(i.symReg.Addr(h % i.symReg.Size))
}
