package tcl

import (
	"fmt"
	"strconv"
	"strings"

	"interplab/internal/rx"
)

// registerStringList installs the string, list, format and regexp commands
// — the native runtime library that makes Tcl's string microbenchmarks far
// cheaper (relative to C) than its scalar arithmetic (Table 1).
func registerStringList(i *Interp) {
	i.Register("string", func(i *Interp, args []string) (string, error) {
		if len(args) < 2 {
			return "", wrongArgs("string option arg ?arg?")
		}
		op, s := args[0], args[1]
		i.chargeString(len(s))
		switch op {
		case "length":
			return strconv.Itoa(len(s)), nil
		case "index":
			if len(args) != 3 {
				return "", wrongArgs("string index string charIndex")
			}
			n, err := strconv.Atoi(args[2])
			if err != nil || n < 0 || n >= len(s) {
				return "", nil
			}
			return s[n : n+1], nil
		case "range":
			if len(args) != 4 {
				return "", wrongArgs("string range string first last")
			}
			first, err := strconv.Atoi(args[2])
			if err != nil {
				return "", err
			}
			last := len(s) - 1
			if args[3] != "end" {
				last, err = strconv.Atoi(args[3])
				if err != nil {
					return "", err
				}
			}
			if first < 0 {
				first = 0
			}
			if last >= len(s) {
				last = len(s) - 1
			}
			if first > last {
				return "", nil
			}
			return s[first : last+1], nil
		case "compare":
			if len(args) != 3 {
				return "", wrongArgs("string compare string1 string2")
			}
			return strconv.Itoa(strings.Compare(s, args[2])), nil
		case "first":
			if len(args) != 3 {
				return "", wrongArgs("string first needle haystack")
			}
			return strconv.Itoa(strings.Index(args[2], s)), nil
		case "last":
			if len(args) != 3 {
				return "", wrongArgs("string last needle haystack")
			}
			return strconv.Itoa(strings.LastIndex(args[2], s)), nil
		case "tolower":
			return strings.ToLower(s), nil
		case "toupper":
			return strings.ToUpper(s), nil
		case "trim":
			return strings.TrimSpace(s), nil
		case "trimleft":
			return strings.TrimLeft(s, " \t\n"), nil
		case "trimright":
			return strings.TrimRight(s, " \t\n"), nil
		case "match":
			if len(args) != 3 {
				return "", wrongArgs("string match pattern string")
			}
			if globMatch(s, args[2]) {
				return "1", nil
			}
			return "0", nil
		}
		return "", fmt.Errorf(`bad option "%s"`, op)
	})

	i.Register("append", func(i *Interp, args []string) (string, error) {
		if len(args) < 1 {
			return "", wrongArgs("append varName ?value ...?")
		}
		cur := ""
		if i.VarExists(args[0]) {
			v, err := i.GetVar(args[0])
			if err != nil {
				return "", err
			}
			cur = v
		}
		for _, a := range args[1:] {
			cur += a
		}
		i.chargeString(len(cur))
		return cur, i.SetVar(args[0], cur)
	})

	i.Register("format", func(i *Interp, args []string) (string, error) {
		if len(args) < 1 {
			return "", wrongArgs("format formatString ?arg ...?")
		}
		out, err := tclFormat(args[0], args[1:])
		if err != nil {
			return "", err
		}
		i.chargeString(len(out))
		return out, nil
	})

	i.Register("split", func(i *Interp, args []string) (string, error) {
		if len(args) < 1 || len(args) > 2 {
			return "", wrongArgs("split string ?splitChars?")
		}
		s := args[0]
		chars := " \t\n"
		if len(args) == 2 {
			chars = args[1]
		}
		i.chargeString(len(s))
		var parts []string
		if chars == "" {
			for k := 0; k < len(s); k++ {
				parts = append(parts, s[k:k+1])
			}
		} else {
			parts = strings.FieldsFunc(s, func(r rune) bool {
				return strings.ContainsRune(chars, r)
			})
			// Tcl keeps empty fields; FieldsFunc drops them.  Redo
			// faithfully.
			parts = parts[:0]
			cur := strings.Builder{}
			for k := 0; k < len(s); k++ {
				if strings.IndexByte(chars, s[k]) >= 0 {
					parts = append(parts, cur.String())
					cur.Reset()
				} else {
					cur.WriteByte(s[k])
				}
			}
			parts = append(parts, cur.String())
		}
		return JoinList(parts), nil
	})

	i.Register("join", func(i *Interp, args []string) (string, error) {
		if len(args) < 1 || len(args) > 2 {
			return "", wrongArgs("join list ?joinString?")
		}
		sep := " "
		if len(args) == 2 {
			sep = args[1]
		}
		items, err := SplitList(args[0])
		if err != nil {
			return "", err
		}
		out := strings.Join(items, sep)
		i.chargeString(len(out))
		return out, nil
	})

	i.Register("list", func(i *Interp, args []string) (string, error) {
		i.chargeList(len(args))
		return JoinList(args), nil
	})

	i.Register("lindex", func(i *Interp, args []string) (string, error) {
		if len(args) != 2 {
			return "", wrongArgs("lindex list index")
		}
		items, err := SplitList(args[0])
		if err != nil {
			return "", err
		}
		i.chargeList(len(items))
		if args[1] == "end" {
			if len(items) == 0 {
				return "", nil
			}
			return items[len(items)-1], nil
		}
		n, err := strconv.Atoi(args[1])
		if err != nil || n < 0 || n >= len(items) {
			return "", nil
		}
		return items[n], nil
	})

	i.Register("llength", func(i *Interp, args []string) (string, error) {
		if len(args) != 1 {
			return "", wrongArgs("llength list")
		}
		items, err := SplitList(args[0])
		if err != nil {
			return "", err
		}
		i.chargeList(len(items))
		return strconv.Itoa(len(items)), nil
	})

	i.Register("lappend", func(i *Interp, args []string) (string, error) {
		if len(args) < 1 {
			return "", wrongArgs("lappend varName ?value ...?")
		}
		cur := ""
		if i.VarExists(args[0]) {
			v, err := i.GetVar(args[0])
			if err != nil {
				return "", err
			}
			cur = v
		}
		items, err := SplitList(cur)
		if err != nil {
			return "", err
		}
		items = append(items, args[1:]...)
		i.chargeList(len(items))
		out := JoinList(items)
		return out, i.SetVar(args[0], out)
	})

	i.Register("lrange", func(i *Interp, args []string) (string, error) {
		if len(args) != 3 {
			return "", wrongArgs("lrange list first last")
		}
		items, err := SplitList(args[0])
		if err != nil {
			return "", err
		}
		i.chargeList(len(items))
		first, err := strconv.Atoi(args[1])
		if err != nil {
			return "", err
		}
		last := len(items) - 1
		if args[2] != "end" {
			last, err = strconv.Atoi(args[2])
			if err != nil {
				return "", err
			}
		}
		if first < 0 {
			first = 0
		}
		if last >= len(items) {
			last = len(items) - 1
		}
		if first > last {
			return "", nil
		}
		return JoinList(items[first : last+1]), nil
	})

	i.Register("lsearch", func(i *Interp, args []string) (string, error) {
		if len(args) != 2 {
			return "", wrongArgs("lsearch list pattern")
		}
		items, err := SplitList(args[0])
		if err != nil {
			return "", err
		}
		i.chargeList(len(items))
		for k, it := range items {
			if globMatch(args[1], it) {
				return strconv.Itoa(k), nil
			}
		}
		return "-1", nil
	})

	i.Register("lsort", func(i *Interp, args []string) (string, error) {
		if len(args) != 1 {
			return "", wrongArgs("lsort list")
		}
		items, err := SplitList(args[0])
		if err != nil {
			return "", err
		}
		i.chargeList(len(items) * 4)
		return JoinList(sortedStrings(items)), nil
	})

	i.Register("concat", func(i *Interp, args []string) (string, error) {
		var parts []string
		for _, a := range args {
			t := strings.TrimSpace(a)
			if t != "" {
				parts = append(parts, t)
			}
		}
		out := strings.Join(parts, " ")
		i.chargeString(len(out))
		return out, nil
	})

	i.Register("regexp", func(i *Interp, args []string) (string, error) {
		// regexp ?-nocase? exp string ?matchVar? ?subVar ...?
		nocase := false
		if len(args) > 0 && args[0] == "-nocase" {
			nocase = true
			args = args[1:]
		}
		if len(args) < 2 {
			return "", wrongArgs("regexp ?-nocase? exp string ?matchVar? ?subVar ...?")
		}
		pat := args[0]
		if nocase {
			pat = strings.ToLower(pat)
		}
		re, err := rx.Compile(pat)
		if err != nil {
			return "", fmt.Errorf("couldn't compile regular expression: %v", err)
		}
		subject := args[1]
		if nocase {
			subject = strings.ToLower(subject)
		}
		m := re.Search([]byte(subject), 0)
		i.chargeRegex(m.Steps)
		if !m.Ok {
			return "0", nil
		}
		for k, varName := range args[2:] {
			g := m.Group([]byte(args[1]), k)
			if err := i.SetVar(varName, string(g)); err != nil {
				return "", err
			}
		}
		return "1", nil
	})

	i.Register("regsub", func(i *Interp, args []string) (string, error) {
		// regsub ?-all? exp string subSpec varName
		all := false
		if len(args) > 0 && args[0] == "-all" {
			all = true
			args = args[1:]
		}
		if len(args) != 4 {
			return "", wrongArgs("regsub ?-all? exp string subSpec varName")
		}
		re, err := rx.Compile(args[0])
		if err != nil {
			return "", fmt.Errorf("couldn't compile regular expression: %v", err)
		}
		// Tcl uses & and \1; translate to the engine's $ syntax.
		spec := strings.ReplaceAll(args[2], "&", "$0")
		for d := '1'; d <= '9'; d++ {
			spec = strings.ReplaceAll(spec, `\`+string(d), "$"+string(d))
		}
		out, n, steps := re.ReplaceAll([]byte(args[1]), []byte(spec), all)
		i.chargeRegex(steps)
		i.chargeString(len(out))
		if err := i.SetVar(args[3], string(out)); err != nil {
			return "", err
		}
		return strconv.Itoa(n), nil
	})
}

// chargeList models native list-library work over n elements.
func (i *Interp) chargeList(n int) {
	if i.p == nil {
		return
	}
	i.p.Exec(i.rList, 16+6*n)
}

// chargeRegex models the compiled regexp package's work.
func (i *Interp) chargeRegex(steps int) {
	if i.p == nil {
		return
	}
	i.p.Call(i.rExpr)
	i.p.Exec(i.rExpr, 20+3*steps)
	i.p.Ret()
}

// globMatch implements Tcl's string match: * ? [chars].
func globMatch(pattern, s string) bool {
	p, n := 0, 0
	starP, starN := -1, 0
	for n < len(s) {
		if p < len(pattern) {
			switch pattern[p] {
			case '*':
				starP, starN = p, n
				p++
				continue
			case '?':
				p++
				n++
				continue
			case '[':
				end := strings.IndexByte(pattern[p:], ']')
				if end > 0 && matchClass(pattern[p+1:p+end], s[n]) {
					p += end + 1
					n++
					continue
				}
			default:
				if pattern[p] == '\\' && p+1 < len(pattern) {
					p++
				}
				if pattern[p] == s[n] {
					p++
					n++
					continue
				}
			}
		}
		if starP >= 0 {
			starN++
			p, n = starP+1, starN
			continue
		}
		return false
	}
	for p < len(pattern) && pattern[p] == '*' {
		p++
	}
	return p == len(pattern)
}

func matchClass(class string, c byte) bool {
	for k := 0; k < len(class); k++ {
		if k+2 < len(class) && class[k+1] == '-' {
			if c >= class[k] && c <= class[k+2] {
				return true
			}
			k += 2
			continue
		}
		if class[k] == c {
			return true
		}
	}
	return false
}

// tclFormat implements the format command (%d %s %x %o %c %f with flags).
func tclFormat(format string, args []string) (string, error) {
	var sb strings.Builder
	ai := 0
	next := func() string {
		if ai < len(args) {
			v := args[ai]
			ai++
			return v
		}
		return ""
	}
	for j := 0; j < len(format); j++ {
		c := format[j]
		if c != '%' {
			sb.WriteByte(c)
			continue
		}
		j++
		if j >= len(format) {
			break
		}
		spec := "%"
		for j < len(format) && strings.IndexByte("-+ 0123456789.", format[j]) >= 0 {
			spec += string(format[j])
			j++
		}
		if j >= len(format) {
			break
		}
		switch format[j] {
		case '%':
			sb.WriteByte('%')
		case 'd':
			v, _ := strconv.ParseInt(strings.TrimSpace(next()), 0, 64)
			fmt.Fprintf(&sb, spec+"d", v)
		case 'x', 'X', 'o':
			v, _ := strconv.ParseInt(strings.TrimSpace(next()), 0, 64)
			fmt.Fprintf(&sb, spec+string(format[j]), v)
		case 's':
			fmt.Fprintf(&sb, spec+"s", next())
		case 'c':
			v, _ := strconv.ParseInt(strings.TrimSpace(next()), 0, 64)
			sb.WriteByte(byte(v))
		case 'f', 'g', 'e':
			v, _ := strconv.ParseFloat(strings.TrimSpace(next()), 64)
			fmt.Fprintf(&sb, spec+string(format[j]), v)
		default:
			return "", fmt.Errorf(`bad field specifier "%c"`, format[j])
		}
	}
	return sb.String(), nil
}
