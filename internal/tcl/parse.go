package tcl

import (
	"fmt"
	"strings"
)

const maxEvalDepth = 500

// pending buffers parse-time instrumentation so it can be attributed to the
// command's fetch/decode phase once the command name is known.
type pending struct {
	charges []func()
}

// charge routes instrumentation either to the parse buffer (while a command
// is being assembled) or straight to the probe.
func (i *Interp) bufParse(off, n int) {
	if i.pend != nil {
		p := i.pend
		p.charges = append(p.charges, func() { i.chargeParse(off, n) })
		return
	}
	i.chargeParse(off, n)
}

func (i *Interp) bufWord(n int) {
	if i.pend != nil {
		p := i.pend
		p.charges = append(p.charges, func() { i.chargeWord(n) })
		return
	}
	i.chargeWord(n)
}

func (i *Interp) bufLookup(name string) {
	if i.pend != nil {
		p := i.pend
		p.charges = append(p.charges, func() { i.chargeLookup(name) })
		return
	}
	i.chargeLookup(name)
}

// Eval interprets a script: the main loop of the direct string interpreter.
// Every call re-parses the text from scratch (unless CachedParse models a
// compiling implementation).
func (i *Interp) Eval(script string) (string, error) {
	if i.depth++; i.depth > maxEvalDepth {
		i.depth--
		return "", fmt.Errorf("too many nested evaluations")
	}
	defer func() { i.depth-- }()

	if i.CachedParse {
		if i.seenBodies == nil {
			i.seenBodies = make(map[string]bool)
		}
		wasHot := i.cacheHot
		i.cacheHot = i.seenBodies[script]
		i.seenBodies[script] = true
		defer func() { i.cacheHot = wasHot }()
	}

	result := ""
	pos := 0
	for pos < len(script) {
		// Skip leading separators.
		for pos < len(script) {
			c := script[pos]
			if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ';' {
				pos++
				continue
			}
			break
		}
		if pos >= len(script) {
			break
		}
		if script[pos] == '#' {
			for pos < len(script) && script[pos] != '\n' {
				pos++
			}
			continue
		}

		words, next, err := i.parseCommand(script, pos)
		if err != nil {
			return "", err
		}
		pos = next
		if len(words) == 0 {
			continue
		}
		r, err := i.runCommand(words)
		if err != nil {
			return "", err
		}
		result = r
		if i.signal != SigOK {
			break
		}
	}
	return result, nil
}

// parseCommand assembles one command's words, performing $-, \- and
// [...]-substitution, and buffering the parse costs.
func (i *Interp) parseCommand(s string, pos int) ([]string, int, error) {
	outer := i.pend
	i.pend = &pending{}
	defer func() { i.pend = outer }()

	start := pos
	var words []string
	for pos < len(s) {
		// Skip intra-command whitespace; a backslash-newline continues
		// the command on the next line and separates words.
		for pos < len(s) {
			if s[pos] == ' ' || s[pos] == '\t' {
				pos++
				continue
			}
			if s[pos] == '\\' && pos+1 < len(s) && s[pos+1] == '\n' {
				pos += 2
				continue
			}
			break
		}
		if pos >= len(s) || s[pos] == '\n' || s[pos] == ';' {
			if pos < len(s) {
				pos++
			}
			break
		}
		w, next, err := i.parseWord(s, pos)
		if err != nil {
			return nil, pos, err
		}
		i.bufParse(pos, next-pos)
		i.bufWord(len(w))
		words = append(words, w)
		pos = next
	}
	i.bufParse(start, 2) // command terminator handling
	// Transfer the buffered charges to the command executor.
	i.parseCost = i.pend.charges
	return words, pos, nil
}

// parseWord parses one word starting at pos.
func (i *Interp) parseWord(s string, pos int) (string, int, error) {
	switch s[pos] {
	case '{':
		depth := 0
		j := pos
		for ; j < len(s); j++ {
			switch s[j] {
			case '{':
				depth++
			case '}':
				depth--
				if depth == 0 {
					return s[pos+1 : j], j + 1, nil
				}
			case '\\':
				j++
			}
		}
		return "", pos, fmt.Errorf("missing close-brace")
	case '"':
		var sb strings.Builder
		j := pos + 1
		for j < len(s) {
			c := s[j]
			switch c {
			case '"':
				return sb.String(), j + 1, nil
			case '$':
				val, next, err := i.substVar(s, j)
				if err != nil {
					return "", pos, err
				}
				sb.WriteString(val)
				j = next
			case '[':
				val, next, err := i.substCommand(s, j)
				if err != nil {
					return "", pos, err
				}
				sb.WriteString(val)
				j = next
			case '\\':
				ch, next := substBackslash(s, j)
				sb.WriteString(ch)
				j = next
			default:
				sb.WriteByte(c)
				j++
			}
		}
		return "", pos, fmt.Errorf("missing close-quote")
	}
	// Bare word with substitution.
	var sb strings.Builder
	j := pos
	for j < len(s) {
		c := s[j]
		if c == ' ' || c == '\t' || c == '\n' || c == ';' {
			break
		}
		if c == '\\' && j+1 < len(s) && s[j+1] == '\n' {
			break // line continuation terminates the word
		}
		switch c {
		case '$':
			val, next, err := i.substVar(s, j)
			if err != nil {
				return "", pos, err
			}
			sb.WriteString(val)
			j = next
		case '[':
			val, next, err := i.substCommand(s, j)
			if err != nil {
				return "", pos, err
			}
			sb.WriteString(val)
			j = next
		case '\\':
			ch, next := substBackslash(s, j)
			sb.WriteString(ch)
			j = next
		default:
			sb.WriteByte(c)
			j++
		}
	}
	return sb.String(), j, nil
}

// substVar expands a $name, $name(index) or ${name} reference at pos.
func (i *Interp) substVar(s string, pos int) (string, int, error) {
	j := pos + 1
	if j >= len(s) {
		return "$", j, nil
	}
	if s[j] == '{' {
		end := strings.IndexByte(s[j:], '}')
		if end < 0 {
			return "", pos, fmt.Errorf("missing close-brace for variable name")
		}
		name := s[j+1 : j+end]
		i.bufLookup(name)
		v, err := i.GetVar(name)
		return v, j + end + 1, err
	}
	k := j
	for k < len(s) && (isNameChar(s[k])) {
		k++
	}
	if k == j {
		return "$", j, nil
	}
	name := s[j:k]
	// Array element: $name(index) with substitution inside the index.
	if k < len(s) && s[k] == '(' {
		depth := 0
		m := k
		for ; m < len(s); m++ {
			if s[m] == '(' {
				depth++
			} else if s[m] == ')' {
				depth--
				if depth == 0 {
					break
				}
			}
		}
		if m >= len(s) {
			return "", pos, fmt.Errorf("missing )")
		}
		idx, err := i.SubstituteString(s[k+1 : m])
		if err != nil {
			return "", pos, err
		}
		name = name + "(" + idx + ")"
		k = m + 1
	}
	i.bufLookup(name)
	v, err := i.GetVar(name)
	return v, k, err
}

func isNameChar(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// substCommand evaluates a [command] substitution at pos.
func (i *Interp) substCommand(s string, pos int) (string, int, error) {
	depth := 0
	j := pos
	for ; j < len(s); j++ {
		switch s[j] {
		case '[':
			depth++
		case ']':
			depth--
			if depth == 0 {
				inner := s[pos+1 : j]
				// The nested script runs its own commands; suspend the
				// outer parse buffer so attribution stays with them.
				save := i.pend
				i.pend = nil
				val, err := i.Eval(inner)
				i.pend = save
				return val, j + 1, err
			}
		case '\\':
			j++
		}
	}
	return "", pos, fmt.Errorf("missing close-bracket")
}

// substBackslash expands one backslash escape.
func substBackslash(s string, pos int) (string, int) {
	if pos+1 >= len(s) {
		return "\\", pos + 1
	}
	c := s[pos+1]
	switch c {
	case 'n':
		return "\n", pos + 2
	case 't':
		return "\t", pos + 2
	case 'r':
		return "\r", pos + 2
	case '\n':
		return " ", pos + 2 // line continuation
	default:
		return string(c), pos + 2
	}
}

// SubstituteString performs $-, \- and [...]-substitution over a whole
// string (used by expr and the index of array references).
func (i *Interp) SubstituteString(s string) (string, error) {
	if i.p != nil {
		// The substitution pass re-scans the text (rSubst is Tcl's
		// Tcl_ParseVar/DoSubst machinery).
		i.p.Exec(i.rSubst, 6+3*len(s))
	}
	var sb strings.Builder
	j := 0
	for j < len(s) {
		switch s[j] {
		case '$':
			val, next, err := i.substVar(s, j)
			if err != nil {
				return "", err
			}
			sb.WriteString(val)
			j = next
		case '[':
			val, next, err := i.substCommand(s, j)
			if err != nil {
				return "", err
			}
			sb.WriteString(val)
			j = next
		case '\\':
			ch, next := substBackslash(s, j)
			sb.WriteString(ch)
			j = next
		default:
			sb.WriteByte(s[j])
			j++
		}
	}
	return sb.String(), nil
}

// runCommand dispatches one parsed command.
func (i *Interp) runCommand(words []string) (string, error) {
	name := words[0]
	i.Commands++

	instrumented := i.p != nil
	if instrumented {
		i.p.BeginCommand(i.opID(name))
		// Fetch/decode: the buffered parse work plus registry dispatch.
		for _, ch := range i.parseCost {
			ch()
		}
		i.parseCost = nil
		if i.Quicken && i.quickCmds[name] {
			// Inline-cache hit: the registry hash is skipped — the
			// cached command pointer is revalidated and invoked.
			i.p.Exec(i.rParse, costCmdQuick)
		} else {
			i.p.Exec(i.rParse, costCmdBase)
			if i.Quicken {
				i.fillQuickCache(&i.quickCmds, name, hashName(name))
			}
		}
		i.p.BeginExecute()
	}

	var out string
	var err error
	switch {
	case i.cmds[name] != nil:
		if instrumented {
			i.p.Call(i.cmdRoutine(name))
			i.p.Exec(i.cmdRoutine(name), 30)
		}
		out, err = i.cmds[name](i, words[1:])
		if instrumented {
			i.p.Ret()
		}
	case i.procs[name] != nil:
		out, err = i.callProc(i.procs[name], words[1:])
	default:
		err = fmt.Errorf(`invalid command name "%s"`, name)
	}
	if instrumented {
		i.p.EndCommand()
	}
	if err != nil {
		return "", fmt.Errorf("%s: %w", name, err)
	}
	return out, nil
}

// callProc invokes a script-defined procedure: new frame, bind formals,
// re-interpret the body string.
func (i *Interp) callProc(pr *Proc, args []string) (string, error) {
	if i.p != nil {
		i.p.Call(i.rProc)
		i.p.Exec(i.rProc, costProcCall+20*len(args))
	}
	frame := make(map[string]*Var, len(pr.Params)+2)
	i.frames = append(i.frames, frame)
	var err error
	for idx, param := range pr.Params {
		name, def, hasDef := strings.Cut(param, " ")
		val := def
		if idx < len(args) {
			val = args[idx]
		} else if !hasDef && name != "args" {
			err = fmt.Errorf(`no value given for parameter "%s" to "%s"`, name, pr.Name)
			break
		}
		if name == "args" {
			val = strings.Join(args[idx:], " ")
		}
		frame[name] = &Var{val: val}
	}
	var out string
	if err == nil {
		out, err = i.Eval(pr.Body)
	}
	i.frames = i.frames[:len(i.frames)-1]
	if i.p != nil {
		i.p.Ret()
	}
	if i.signal == SigReturn {
		i.signal = SigOK
		out = i.retVal
	}
	return out, err
}
