package tcl

import (
	"testing"

	"interplab/internal/atom"
	"interplab/internal/trace"
	"interplab/internal/vfs"
)

const tierScript = `
set s 0
for {set i 0} {$i < 40} {incr i} { set s [expr $s + $i * 3] }
puts $s
`

// runQuick evaluates tierScript with the given knobs and returns the
// interpreter, its stats, and stdout.
func runQuick(t *testing.T, quicken bool) (*Interp, atom.Stats, string) {
	t.Helper()
	img := atom.NewImage()
	p := atom.NewProbe(img, trace.Discard)
	osys := vfs.New()
	i := New(osys, img, p)
	i.Quicken = quicken
	if _, err := i.Eval(tierScript); err != nil {
		t.Fatal(err)
	}
	return i, p.Stats(), osys.Stdout.String()
}

// TestQuickeningReducesFetchDecode: the inline caches must cut the
// dispatch cost without changing guest-visible behavior.
func TestQuickeningReducesFetchDecode(t *testing.T) {
	_, base, outBase := runQuick(t, false)
	i, quick, outQuick := runQuick(t, true)
	if outBase != outQuick {
		t.Fatalf("quickening changed behavior: %q vs %q", outBase, outQuick)
	}
	if base.Commands != quick.Commands {
		t.Errorf("command counts differ: %d vs %d", base.Commands, quick.Commands)
	}
	if quick.FetchDecode >= base.FetchDecode {
		t.Errorf("quickened fetch_decode = %d, must beat baseline %d",
			quick.FetchDecode, base.FetchDecode)
	}
	if i.QuickenRewrites == 0 {
		t.Error("quickening filled no cache entries")
	}
}

// TestQuickeningIdempotent: re-evaluating the same script resolves only
// already-cached names, so no further rewrites happen.
func TestQuickeningIdempotent(t *testing.T) {
	i, _, _ := runQuick(t, true)
	first := i.QuickenRewrites
	if _, err := i.Eval(tierScript); err != nil {
		t.Fatal(err)
	}
	if i.QuickenRewrites != first {
		t.Errorf("re-evaluation rewrote again: %d -> %d", first, i.QuickenRewrites)
	}
}

// TestQuickeningComposesWithCachedParse: both Tcl knobs on together must
// still be transparent and strictly cheaper than either alone.
func TestQuickeningComposesWithCachedParse(t *testing.T) {
	run := func(quicken, cached bool) (uint64, string) {
		img := atom.NewImage()
		p := atom.NewProbe(img, trace.Discard)
		osys := vfs.New()
		i := New(osys, img, p)
		i.Quicken = quicken
		i.CachedParse = cached
		if _, err := i.Eval(tierScript); err != nil {
			t.Fatal(err)
		}
		return p.Stats().FetchDecode, osys.Stdout.String()
	}
	fdBase, outBase := run(false, false)
	fdBoth, outBoth := run(true, true)
	if outBase != outBoth {
		t.Fatalf("combined tiers changed behavior: %q vs %q", outBase, outBoth)
	}
	fdQuick, _ := run(true, false)
	fdCached, _ := run(false, true)
	if fdBoth >= fdQuick || fdBoth >= fdCached || fdQuick >= fdBase {
		t.Errorf("fd ordering wrong: base %d, quick %d, cached %d, both %d",
			fdBase, fdQuick, fdCached, fdBoth)
	}
}
