package tcl

import (
	"strconv"
	"strings"

	"interplab/internal/vfs"
)

// registerIO installs the file commands over the shared in-memory OS.
func registerIO(i *Interp) {
	i.Register("puts", func(i *Interp, args []string) (string, error) {
		// puts ?-nonewline? ?channel? string
		newline := true
		if len(args) > 0 && args[0] == "-nonewline" {
			newline = false
			args = args[1:]
		}
		fd := vfs.Stdout
		if len(args) == 2 {
			ch, ok := i.files[args[0]]
			if !ok && args[0] != "stdout" {
				return "", wrongArgs("puts ?-nonewline? ?channelId? string")
			}
			if ok {
				fd = ch
			}
			args = args[1:]
		}
		if len(args) != 1 {
			return "", wrongArgs("puts ?-nonewline? ?channelId? string")
		}
		out := args[0]
		if newline {
			out += "\n"
		}
		i.chargeString(len(out))
		if _, err := i.OS.Write(fd, []byte(out)); err != nil {
			return "", err
		}
		return "", nil
	})

	i.Register("open", func(i *Interp, args []string) (string, error) {
		if len(args) < 1 || len(args) > 2 {
			return "", wrongArgs("open fileName ?access?")
		}
		write := len(args) == 2 && strings.HasPrefix(args[1], "w")
		fd, err := i.OS.Open(args[0], write)
		if err != nil {
			return "", err
		}
		name := "file" + strconv.Itoa(fd)
		i.files[name] = fd
		return name, nil
	})

	i.Register("close", func(i *Interp, args []string) (string, error) {
		if len(args) != 1 {
			return "", wrongArgs("close channelId")
		}
		fd, ok := i.files[args[0]]
		if !ok {
			return "", wrongArgs("close channelId")
		}
		delete(i.files, args[0])
		return "", i.OS.Close(fd)
	})

	i.Register("gets", func(i *Interp, args []string) (string, error) {
		// gets channelId ?varName?
		if len(args) < 1 || len(args) > 2 {
			return "", wrongArgs("gets channelId ?varName?")
		}
		fd, ok := i.files[args[0]]
		if !ok {
			return "", wrongArgs("gets channelId")
		}
		line, err := i.OS.ReadLine(fd)
		if err != nil {
			return "", err
		}
		atEOF := len(line) == 0
		s := strings.TrimSuffix(string(line), "\n")
		i.chargeString(len(s))
		if len(args) == 2 {
			if err := i.SetVar(args[1], s); err != nil {
				return "", err
			}
			if atEOF {
				return "-1", nil
			}
			return strconv.Itoa(len(s)), nil
		}
		return s, nil
	})

	i.Register("read", func(i *Interp, args []string) (string, error) {
		// read channelId ?numBytes?
		if len(args) < 1 || len(args) > 2 {
			return "", wrongArgs("read channelId ?numBytes?")
		}
		fd, ok := i.files[args[0]]
		if !ok {
			return "", wrongArgs("read channelId")
		}
		var out []byte
		var err error
		if len(args) == 2 {
			n, aerr := strconv.Atoi(args[1])
			if aerr != nil {
				return "", aerr
			}
			out, err = i.OS.Read(fd, n)
		} else {
			out, err = i.OS.ReadAll(fd)
		}
		if err != nil {
			return "", err
		}
		i.chargeString(len(out))
		return string(out), nil
	})

	i.Register("eof", func(i *Interp, args []string) (string, error) {
		if len(args) != 1 {
			return "", wrongArgs("eof channelId")
		}
		fd, ok := i.files[args[0]]
		if !ok || i.OS.AtEOF(fd) {
			return "1", nil
		}
		return "0", nil
	})
}
