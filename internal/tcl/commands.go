package tcl

import (
	"fmt"
	"strconv"
	"strings"
)

// SplitList parses a Tcl list into its elements.
func SplitList(s string) ([]string, error) {
	var out []string
	pos := 0
	for pos < len(s) {
		for pos < len(s) && (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n') {
			pos++
		}
		if pos >= len(s) {
			break
		}
		switch s[pos] {
		case '{':
			depth := 0
			j := pos
			for ; j < len(s); j++ {
				if s[j] == '{' {
					depth++
				} else if s[j] == '}' {
					depth--
					if depth == 0 {
						break
					}
				}
			}
			if j >= len(s) {
				return nil, fmt.Errorf("unmatched open brace in list")
			}
			out = append(out, s[pos+1:j])
			pos = j + 1
		case '"':
			j := pos + 1
			for j < len(s) && s[j] != '"' {
				j++
			}
			if j >= len(s) {
				return nil, fmt.Errorf("unmatched quote in list")
			}
			out = append(out, s[pos+1:j])
			pos = j + 1
		default:
			j := pos
			for j < len(s) && s[j] != ' ' && s[j] != '\t' && s[j] != '\n' {
				j++
			}
			out = append(out, s[pos:j])
			pos = j
		}
	}
	return out, nil
}

// JoinList formats elements as a Tcl list, brace-quoting where needed.
func JoinList(items []string) string {
	var sb strings.Builder
	for k, it := range items {
		if k > 0 {
			sb.WriteByte(' ')
		}
		if it == "" || strings.ContainsAny(it, " \t\n{}\"") {
			sb.WriteByte('{')
			sb.WriteString(it)
			sb.WriteByte('}')
		} else {
			sb.WriteString(it)
		}
	}
	return sb.String()
}

func wrongArgs(usage string) error { return fmt.Errorf(`wrong # args: should be "%s"`, usage) }

func registerCore(i *Interp) {
	i.Register("set", func(i *Interp, args []string) (string, error) {
		switch len(args) {
		case 1:
			return i.GetVar(args[0])
		case 2:
			if err := i.SetVar(args[0], args[1]); err != nil {
				return "", err
			}
			return args[1], nil
		}
		return "", wrongArgs("set varName ?newValue?")
	})

	i.Register("unset", func(i *Interp, args []string) (string, error) {
		for _, a := range args {
			if err := i.UnsetVar(a); err != nil {
				return "", err
			}
		}
		return "", nil
	})

	i.Register("incr", func(i *Interp, args []string) (string, error) {
		if len(args) < 1 || len(args) > 2 {
			return "", wrongArgs("incr varName ?increment?")
		}
		cur, err := i.GetVar(args[0])
		if err != nil {
			return "", err
		}
		v, err := strconv.Atoi(strings.TrimSpace(cur))
		if err != nil {
			return "", fmt.Errorf(`expected integer but got "%s"`, cur)
		}
		delta := 1
		if len(args) == 2 {
			delta, err = strconv.Atoi(args[1])
			if err != nil {
				return "", fmt.Errorf(`expected integer but got "%s"`, args[1])
			}
		}
		out := strconv.Itoa(v + delta)
		return out, i.SetVar(args[0], out)
	})

	i.Register("expr", func(i *Interp, args []string) (string, error) {
		return i.ExprString(strings.Join(args, " "))
	})

	i.Register("if", func(i *Interp, args []string) (string, error) {
		pos := 0
		for {
			if pos >= len(args) {
				return "", wrongArgs("if cond ?then? body ?elseif cond body? ?else body?")
			}
			cond, err := i.ExprBool(args[pos])
			if err != nil {
				return "", err
			}
			pos++
			if pos < len(args) && args[pos] == "then" {
				pos++
			}
			if pos >= len(args) {
				return "", wrongArgs("if cond body")
			}
			if cond {
				return i.Eval(args[pos])
			}
			pos++
			if pos >= len(args) {
				return "", nil
			}
			switch args[pos] {
			case "elseif":
				pos++
				continue
			case "else":
				pos++
				if pos >= len(args) {
					return "", wrongArgs("if ... else body")
				}
				return i.Eval(args[pos])
			default:
				// Implicit else body.
				return i.Eval(args[pos])
			}
		}
	})

	i.Register("while", func(i *Interp, args []string) (string, error) {
		if len(args) != 2 {
			return "", wrongArgs("while test command")
		}
		for {
			// The condition and body are re-parsed every iteration —
			// direct string interpretation.
			ok, err := i.ExprBool(args[0])
			if err != nil {
				return "", err
			}
			if !ok {
				return "", nil
			}
			if _, err := i.Eval(args[1]); err != nil {
				return "", err
			}
			switch i.signal {
			case SigBreak:
				i.signal = SigOK
				return "", nil
			case SigContinue:
				i.signal = SigOK
			case SigReturn, SigExit:
				return "", nil
			}
		}
	})

	i.Register("for", func(i *Interp, args []string) (string, error) {
		if len(args) != 4 {
			return "", wrongArgs("for start test next command")
		}
		if _, err := i.Eval(args[0]); err != nil {
			return "", err
		}
		for {
			ok, err := i.ExprBool(args[1])
			if err != nil {
				return "", err
			}
			if !ok {
				return "", nil
			}
			if _, err := i.Eval(args[3]); err != nil {
				return "", err
			}
			switch i.signal {
			case SigBreak:
				i.signal = SigOK
				return "", nil
			case SigContinue:
				i.signal = SigOK
			case SigReturn, SigExit:
				return "", nil
			}
			if _, err := i.Eval(args[2]); err != nil {
				return "", err
			}
		}
	})

	i.Register("foreach", func(i *Interp, args []string) (string, error) {
		if len(args) != 3 {
			return "", wrongArgs("foreach varName list command")
		}
		items, err := SplitList(args[1])
		if err != nil {
			return "", err
		}
		for _, it := range items {
			if err := i.SetVar(args[0], it); err != nil {
				return "", err
			}
			if _, err := i.Eval(args[2]); err != nil {
				return "", err
			}
			brk := false
			switch i.signal {
			case SigBreak:
				i.signal = SigOK
				brk = true
			case SigContinue:
				i.signal = SigOK
			case SigReturn, SigExit:
				return "", nil
			}
			if brk {
				break
			}
		}
		return "", nil
	})

	i.Register("proc", func(i *Interp, args []string) (string, error) {
		if len(args) != 3 {
			return "", wrongArgs("proc name args body")
		}
		params, err := SplitList(args[1])
		if err != nil {
			return "", err
		}
		i.procs[args[0]] = &Proc{Name: args[0], Params: params, Body: args[2]}
		return "", nil
	})

	i.Register("return", func(i *Interp, args []string) (string, error) {
		i.retVal = ""
		if len(args) > 0 {
			i.retVal = args[0]
		}
		i.signal = SigReturn
		return i.retVal, nil
	})

	i.Register("break", func(i *Interp, args []string) (string, error) {
		i.signal = SigBreak
		return "", nil
	})

	i.Register("continue", func(i *Interp, args []string) (string, error) {
		i.signal = SigContinue
		return "", nil
	})

	i.Register("global", func(i *Interp, args []string) (string, error) {
		if len(i.frames) == 0 {
			return "", nil
		}
		f := i.frames[len(i.frames)-1]
		for _, name := range args {
			i.chargeLookup(name)
			g, ok := i.globals[name]
			if !ok {
				g = &Var{}
				i.globals[name] = g
			}
			f[name] = g
		}
		return "", nil
	})

	i.Register("catch", func(i *Interp, args []string) (string, error) {
		if len(args) < 1 || len(args) > 2 {
			return "", wrongArgs("catch command ?varName?")
		}
		out, err := i.Eval(args[0])
		code := "0"
		if err != nil {
			code = "1"
			out = err.Error()
			if i.signal == SigReturn || i.signal == SigBreak || i.signal == SigContinue {
				i.signal = SigOK
			}
		}
		if len(args) == 2 {
			if err := i.SetVar(args[1], out); err != nil {
				return "", err
			}
		}
		return code, nil
	})

	i.Register("error", func(i *Interp, args []string) (string, error) {
		if len(args) < 1 {
			return "", wrongArgs("error message")
		}
		return "", fmt.Errorf("%s", args[0])
	})

	i.Register("eval", func(i *Interp, args []string) (string, error) {
		return i.Eval(strings.Join(args, " "))
	})

	i.Register("exit", func(i *Interp, args []string) (string, error) {
		code := 0
		if len(args) > 0 {
			code, _ = strconv.Atoi(args[0])
		}
		i.exitCode = code
		i.signal = SigExit
		return "", nil
	})

	i.Register("info", func(i *Interp, args []string) (string, error) {
		if len(args) < 1 {
			return "", wrongArgs("info option ?arg?")
		}
		switch args[0] {
		case "exists":
			if len(args) != 2 {
				return "", wrongArgs("info exists varName")
			}
			if i.VarExists(args[1]) {
				return "1", nil
			}
			return "0", nil
		case "procs":
			var names []string
			for n := range i.procs {
				names = append(names, n)
			}
			return JoinList(sortedStrings(names)), nil
		case "commands":
			var names []string
			for n := range i.cmds {
				names = append(names, n)
			}
			return JoinList(sortedStrings(names)), nil
		}
		return "", fmt.Errorf(`bad option "%s"`, args[0])
	})

	i.Register("array", func(i *Interp, args []string) (string, error) {
		if len(args) < 2 {
			return "", wrongArgs("array option arrayName ?arg?")
		}
		name := args[1]
		i.chargeLookup(name)
		v := i.frame()[name]
		switch args[0] {
		case "exists":
			if v != nil && v.arr != nil {
				return "1", nil
			}
			return "0", nil
		case "size":
			if v == nil || v.arr == nil {
				return "0", nil
			}
			return strconv.Itoa(len(v.arr)), nil
		case "names":
			if v == nil || v.arr == nil {
				return "", nil
			}
			var names []string
			for k := range v.arr {
				names = append(names, k)
			}
			return JoinList(sortedStrings(names)), nil
		case "get":
			if v == nil || v.arr == nil {
				return "", nil
			}
			var out []string
			for _, k := range sortedStrings(keysOf(v.arr)) {
				out = append(out, k, v.arr[k])
			}
			return JoinList(out), nil
		case "set":
			if len(args) != 3 {
				return "", wrongArgs("array set arrayName list")
			}
			items, err := SplitList(args[2])
			if err != nil {
				return "", err
			}
			for k := 0; k+1 < len(items); k += 2 {
				if err := i.SetVar(name+"("+items[k]+")", items[k+1]); err != nil {
					return "", err
				}
			}
			return "", nil
		}
		return "", fmt.Errorf(`bad option "%s"`, args[0])
	})
}

func sortedStrings(in []string) []string {
	out := append([]string(nil), in...)
	for a := 1; a < len(out); a++ {
		for b := a; b > 0 && out[b] < out[b-1]; b-- {
			out[b], out[b-1] = out[b-1], out[b]
		}
	}
	return out
}

func keysOf(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
