// Package tcl is the laboratory's Tcl: an embeddable command language
// interpreter with the structure the paper attributes to Tcl 7.4.
//
// Tcl defines the highest-level virtual machine of the four interpreters,
// and pays for it in a characteristic way that this implementation
// reproduces mechanically rather than by constants alone:
//
//   - The interpreter executes the ASCII source directly.  Every command
//     is re-parsed from its string every time it runs — a loop body is
//     just a string, re-scanned on every iteration.  That is why Table 2
//     reports fetch/decode costs of 2,100–5,200 native instructions per
//     command, three orders of magnitude above MIPSI's.
//
//   - Every variable reference goes through a name-keyed symbol-table
//     lookup (§3.3: 206–514 native instructions per access, growing with
//     the table).
//
//   - The command registry is string-keyed and extensible: the Tk widget
//     toolkit (internal/tk) registers its compiled commands exactly the
//     way applications extended the real interpreter.
package tcl

import (
	"fmt"
	"strings"

	"interplab/internal/atom"
	"interplab/internal/vfs"
)

// Cost model of the Tcl 7 implementation, in native instructions.
const (
	costParseChar  = 14  // per source character scanned during parsing
	costParseWord  = 170 // per word: setup, malloc, copy
	costLookupBase = 150 // symbol-table lookup: hash, chain walk, validate
	costLookupChar = 7   // per character of the variable name
	costCmdBase    = 130 // command dispatch: registry hash + argv setup
	costProcCall   = 260 // frame push, arg binding

	// Quickening-tier costs (see tiers.go): the inline-cache fast paths
	// and the one-time cache fill.
	costLookupQuick = 28 // cached entry pointer: revalidate and dereference
	costCmdQuick    = 36 // cached CmdFunc pointer: revalidate and call
	costQuickenFill = 40 // first execution: install the cache entry
)

// Signal is the Tcl result code (TCL_OK, TCL_BREAK, ...).
type Signal uint8

const (
	SigOK Signal = iota
	SigReturn
	SigBreak
	SigContinue
	SigExit
)

// CmdFunc is a compiled command implementation.
type CmdFunc func(i *Interp, args []string) (string, error)

// Var is a symbol-table entry: a scalar value or an associative array.
type Var struct {
	val string
	arr map[string]string
}

// Proc is a script-defined procedure.
type Proc struct {
	Name   string
	Params []string
	Body   string
}

// Interp is one Tcl interpreter.
type Interp struct {
	OS *vfs.OS

	p   *atom.Probe
	img *atom.Image

	rParse  *atom.Routine
	rSubst  *atom.Routine
	rLookup *atom.Routine
	rExpr   *atom.Routine
	rProc   *atom.Routine
	rString *atom.Routine
	rList   *atom.Routine
	cmdRtns map[string]*atom.Routine
	opIDs   map[string]atom.OpID

	srcReg *atom.DataRegion
	symReg *atom.DataRegion
	strReg *atom.DataRegion
	memRgn atom.RegionID
	strCur uint32

	globals map[string]*Var
	frames  []map[string]*Var
	procs   map[string]*Proc
	cmds    map[string]CmdFunc
	files   map[string]int

	signal   Signal
	retVal   string
	exitCode int
	depth    int

	// CachedParse models a bytecode-compiling Tcl (the Tcl 8 direction
	// the paper's §5 cites): after a body has been scanned once, later
	// re-executions pay a reduced per-character cost, as if dispatching
	// precompiled words instead of re-parsing text.
	CachedParse bool
	seenBodies  map[string]bool
	cacheHot    bool

	// Quicken models Brunthaler-style operand quickening for a string
	// interpreter: name-keyed inline caches for variable lookups and
	// command dispatch (see tiers.go).  QuickenRewrites counts cache
	// fills; a filled entry is never filled again.
	Quicken         bool
	QuickenRewrites uint64
	quickVars       map[string]bool
	quickCmds       map[string]bool
	rQuick          *atom.Routine

	// Parse-time instrumentation buffering (see parse.go).
	pend      *pending
	parseCost []func()

	// Commands counts executed commands (for tests; the probe keeps the
	// authoritative count).
	Commands uint64
}

// New creates an interpreter with the core command set registered.
// img/probe may be nil for uninstrumented runs.
func New(os *vfs.OS, img *atom.Image, probe *atom.Probe) *Interp {
	i := &Interp{
		OS:      os,
		p:       probe,
		img:     img,
		globals: make(map[string]*Var),
		procs:   make(map[string]*Proc),
		cmds:    make(map[string]CmdFunc),
		files:   make(map[string]int),
	}
	if probe != nil && img != nil {
		// Static code footprint: the Tcl 7 interpreter's working set is
		// 16–32 KB (Figure 4); the parser, substitution engine, string
		// and list libraries, expression evaluator and hash table
		// dominate it.
		i.rParse = img.Routine("tcl.parse", 2600, atom.WithShortEvery(5))
		i.rSubst = img.Routine("tcl.subst", 1400, atom.WithShortEvery(6))
		i.rLookup = img.Routine("tcl.lookupvar", 900, atom.WithShortEvery(7))
		i.rExpr = img.Routine("tcl.expr", 1800)
		i.rProc = img.Routine("tcl.proc", 700)
		i.rString = img.Routine("tcl.string", 1300, atom.WithShortEvery(4))
		i.rList = img.Routine("tcl.list", 1100, atom.WithShortEvery(6))
		i.cmdRtns = make(map[string]*atom.Routine)
		i.opIDs = make(map[string]atom.OpID)
		i.srcReg = img.Data("tcl.source", 256<<10)
		i.symReg = img.Data("tcl.symtab", 128<<10)
		i.strReg = img.Data("tcl.strings", 512<<10)
		i.memRgn = probe.RegionName("memmodel")
	}
	registerCore(i)
	registerStringList(i)
	registerIO(i)
	return i
}

// Register installs (or replaces) a compiled command — the extension
// mechanism Tk uses.
func (i *Interp) Register(name string, fn CmdFunc) { i.cmds[name] = fn }

// ExitCode returns the argument of exit, if called.
func (i *Interp) ExitCode() int { return i.exitCode }

// Probe exposes the instrumentation context to extensions (Tk).
func (i *Interp) Probe() *atom.Probe { return i.p }

// Image exposes the instrumentation image to extensions.
func (i *Interp) Image() *atom.Image { return i.img }

// --- instrumentation helpers -------------------------------------------------

func (i *Interp) cmdRoutine(name string) *atom.Routine {
	if r, ok := i.cmdRtns[name]; ok {
		return r
	}
	size := 240
	switch name {
	case "expr", "regexp", "regsub", "format":
		size = 600
	case "if", "while", "for", "foreach", "set", "incr":
		size = 180
	}
	r := i.img.Routine("tcl.cmd."+name, size)
	i.cmdRtns[name] = r
	return r
}

func (i *Interp) opID(name string) atom.OpID {
	if id, ok := i.opIDs[name]; ok {
		return id
	}
	id := i.p.OpName(name)
	i.opIDs[name] = id
	return id
}

// chargeParse models scanning n source characters at offset off.
func (i *Interp) chargeParse(off, n int) {
	if i.p == nil || n <= 0 {
		return
	}
	per := costParseChar
	if i.cacheHot {
		per = 2 // walk precompiled words instead of raw text
	}
	i.p.Exec(i.rParse, per*n)
	// The scanner touches the source text as data, ~word-at-a-time.
	for b := 0; b < n; b += 16 {
		i.p.Load(i.srcReg.Addr(uint32(off + b)))
	}
}

// chargeWord models assembling one parsed word of the given length
// (allocation plus copy into a fresh buffer — Tcl 7's malloc churn).  A
// compiling implementation (CachedParse) reuses the precompiled word
// objects instead.
func (i *Interp) chargeWord(n int) {
	if i.p == nil {
		return
	}
	if i.cacheHot {
		i.p.Exec(i.rParse, 18)
		i.p.Load(i.strReg.Addr(i.strCur))
		return
	}
	i.p.Exec(i.rParse, costParseWord)
	for b := 0; b < n; b += 8 {
		i.p.Store(i.strReg.Addr(i.strCur))
		i.strCur = (i.strCur + 8) % i.strReg.Size
	}
}

// chargeString models native string-library work over n bytes.
func (i *Interp) chargeString(n int) {
	if i.p == nil {
		return
	}
	i.p.Exec(i.rString, 18)
	for b := 0; b < n; b += 8 {
		i.p.Exec(i.rString, 2)
		i.p.Store(i.strReg.Addr(i.strCur))
		i.strCur = (i.strCur + 8) % i.strReg.Size
	}
}

// chargeLookup models one symbol-table translation for name (§3.3).
func (i *Interp) chargeLookup(name string) {
	if i.p == nil {
		return
	}
	i.p.Enter(i.memRgn)
	i.p.CountAccess(i.memRgn)
	i.p.Call(i.rLookup)
	h := hashName(name)
	if i.Quicken && i.quickVars[name] {
		// Inline-cache hit: the hash and chain walk are skipped — the
		// cached entry pointer is revalidated and dereferenced.
		i.p.Exec(i.rLookup, costLookupQuick)
		i.p.Load(i.symReg.Addr(h % i.symReg.Size))
		i.p.Ret()
		i.p.Leave()
		return
	}
	// The cost grows with the table: longer chains in a fixed-bucket
	// hash, as the paper observed on xf (206 for des → 514 for xf).
	chain := len(i.globals)/24 + 1
	if chain > 12 {
		chain = 12
	}
	i.p.Exec(i.rLookup, costLookupBase+costLookupChar*len(name)+22*chain)
	i.p.Load(i.symReg.Addr(h % i.symReg.Size))
	for c := 0; c < chain; c++ {
		i.p.Load(i.symReg.Addr((h + uint32(c)*56) % i.symReg.Size))
	}
	if i.Quicken {
		i.fillQuickCache(&i.quickVars, name, h)
	}
	i.p.Ret()
	i.p.Leave()
}

func hashName(s string) uint32 {
	var h uint32
	for j := 0; j < len(s); j++ {
		h = h*9 + uint32(s[j])
	}
	return h * 64
}

// --- variables ----------------------------------------------------------------

// frame returns the current variable frame.
func (i *Interp) frame() map[string]*Var {
	if len(i.frames) > 0 {
		return i.frames[len(i.frames)-1]
	}
	return i.globals
}

// splitArrayRef splits "name(key)" into its parts.
func splitArrayRef(name string) (string, string, bool) {
	open := strings.IndexByte(name, '(')
	if open > 0 && strings.HasSuffix(name, ")") {
		return name[:open], name[open+1 : len(name)-1], true
	}
	return name, "", false
}

// GetVar reads a variable (every access pays the symbol-table toll).
func (i *Interp) GetVar(name string) (string, error) {
	i.chargeLookup(name)
	base, key, isArr := splitArrayRef(name)
	v, ok := i.frame()[base]
	if !ok {
		return "", fmt.Errorf(`can't read "%s": no such variable`, name)
	}
	if isArr {
		if v.arr == nil {
			return "", fmt.Errorf(`can't read "%s": variable isn't array`, name)
		}
		val, ok := v.arr[key]
		if !ok {
			return "", fmt.Errorf(`can't read "%s": no such element in array`, name)
		}
		return val, nil
	}
	if v.arr != nil {
		return "", fmt.Errorf(`can't read "%s": variable is array`, name)
	}
	return v.val, nil
}

// SetVar writes a variable.
func (i *Interp) SetVar(name, val string) error {
	i.chargeLookup(name)
	base, key, isArr := splitArrayRef(name)
	f := i.frame()
	v, ok := f[base]
	if !ok {
		v = &Var{}
		f[base] = v
	}
	if isArr {
		if v.arr == nil {
			if v.val != "" {
				return fmt.Errorf(`can't set "%s": variable isn't array`, name)
			}
			v.arr = make(map[string]string)
		}
		v.arr[key] = val
		return nil
	}
	if v.arr != nil {
		return fmt.Errorf(`can't set "%s": variable is array`, name)
	}
	v.val = val
	return nil
}

// UnsetVar removes a variable.
func (i *Interp) UnsetVar(name string) error {
	i.chargeLookup(name)
	base, key, isArr := splitArrayRef(name)
	f := i.frame()
	v, ok := f[base]
	if !ok {
		return fmt.Errorf(`can't unset "%s": no such variable`, name)
	}
	if isArr {
		if v.arr == nil {
			return fmt.Errorf(`can't unset "%s": variable isn't array`, name)
		}
		delete(v.arr, key)
		return nil
	}
	delete(f, base)
	return nil
}

// VarExists reports whether a variable is readable.
func (i *Interp) VarExists(name string) bool {
	i.chargeLookup(name)
	base, key, isArr := splitArrayRef(name)
	v, ok := i.frame()[base]
	if !ok {
		return false
	}
	if isArr {
		if v.arr == nil {
			return false
		}
		_, ok := v.arr[key]
		return ok
	}
	return v.arr == nil
}
