package minicc

import (
	"fmt"
	"math/rand"
	"testing"

	"interplab/internal/jvm"
	"interplab/internal/mipsi"
	"interplab/internal/trace"
	"interplab/internal/vfs"
)

// exprGen builds random integer expressions alongside a Go evaluator, so
// compiled code can be checked against ground truth on both backends.
type exprGen struct {
	rng  *rand.Rand
	vars map[string]int32
}

// gen returns (source, value) for a random expression of bounded depth.
// Division and shifts are constrained to defined behavior.
func (g *exprGen) gen(depth int) (string, int32) {
	if depth <= 0 || g.rng.Intn(4) == 0 {
		switch g.rng.Intn(3) {
		case 0:
			v := int32(g.rng.Intn(2001) - 1000)
			return fmt.Sprintf("(%d)", v), v
		default:
			names := []string{"va", "vb", "vc", "vd"}
			n := names[g.rng.Intn(len(names))]
			return n, g.vars[n]
		}
	}
	a, av := g.gen(depth - 1)
	b, bv := g.gen(depth - 1)
	switch g.rng.Intn(9) {
	case 0:
		return fmt.Sprintf("(%s + %s)", a, b), av + bv
	case 1:
		return fmt.Sprintf("(%s - %s)", a, b), av - bv
	case 2:
		return fmt.Sprintf("(%s * %s)", a, b), av * bv
	case 3:
		if bv == 0 {
			return fmt.Sprintf("(%s + %s)", a, b), av + bv
		}
		return fmt.Sprintf("(%s / %s)", a, b), av / bv
	case 4:
		return fmt.Sprintf("(%s & %s)", a, b), av & bv
	case 5:
		return fmt.Sprintf("(%s | %s)", a, b), av | bv
	case 6:
		return fmt.Sprintf("(%s ^ %s)", a, b), av ^ bv
	case 7:
		lt := int32(0)
		if av < bv {
			lt = 1
		}
		return fmt.Sprintf("(%s < %s)", a, b), lt
	default:
		sh := uint32(g.rng.Intn(5))
		return fmt.Sprintf("(%s << %d)", a, sh), av << sh
	}
}

// TestExpressionsDifferential compiles random expressions for both backends
// and checks each against the Go evaluation.
func TestExpressionsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(1996))
	for trial := 0; trial < 60; trial++ {
		g := &exprGen{rng: rng, vars: map[string]int32{
			"va": int32(rng.Intn(200) - 100),
			"vb": int32(rng.Intn(200) - 100),
			"vc": int32(rng.Intn(2000) - 1000),
			"vd": int32(rng.Intn(20)),
		}}
		expr, want := g.gen(4)
		src := fmt.Sprintf(`
int va = %d; int vb = %d; int vc = %d; int vd = %d;
int result;
int main() {
    result = %s;
    putn(result);
    return 0;
}`, g.vars["va"], g.vars["vb"], g.vars["vc"], g.vars["vd"], expr)

		// MIPS backend, direct execution.
		prog, err := CompileMIPS("diff", WithStdlib(src))
		if err != nil {
			t.Fatalf("trial %d: compile mips: %v\n%s", trial, err, src)
		}
		os1 := vfs.New()
		nat, err := mipsi.NewNative(prog, os1, trace.Discard)
		if err != nil {
			t.Fatal(err)
		}
		if err := nat.Run(50_000_000); err != nil {
			t.Fatalf("trial %d: run mips: %v\n%s", trial, err, src)
		}
		if got := os1.Stdout.String(); got != fmt.Sprint(want) {
			t.Fatalf("trial %d: mips = %s, want %d\nexpr: %s", trial, got, want, expr)
		}

		// JVM backend.
		mod, err := CompileJVM("diff", WithStdlibJVM(src))
		if err != nil {
			t.Fatalf("trial %d: compile jvm: %v\n%s", trial, err, src)
		}
		os2 := vfs.New()
		if err := mod.Bind(jvm.OSNatives(os2)); err != nil {
			t.Fatal(err)
		}
		vm, err := jvm.New(mod, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := vm.Run("main", 10_000_000); err != nil {
			t.Fatalf("trial %d: run jvm: %v\n%s", trial, err, src)
		}
		if got := os2.Stdout.String(); got != fmt.Sprint(want) {
			t.Fatalf("trial %d: jvm = %s, want %d\nexpr: %s", trial, got, want, expr)
		}
	}
}

// TestControlFlowDifferential runs randomized loop/branch programs through
// both backends and compares the outputs to each other.
func TestControlFlowDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		m1 := rng.Intn(9) + 2
		m2 := rng.Intn(7) + 1
		lim := rng.Intn(40) + 10
		src := fmt.Sprintf(`
int main() {
    int s = 0;
    int i;
    for (i = 0; i < %d; i++) {
        if (i %% %d == 0) continue;
        if (s > 1000) break;
        s += i * %d;
        while (s %% 2 == 0 && s > 0) s /= 2;
    }
    putn(s);
    return 0;
}`, lim, m1, m2)
		prog, err := CompileMIPS("cf", WithStdlib(src))
		if err != nil {
			t.Fatal(err)
		}
		os1 := vfs.New()
		nat, _ := mipsi.NewNative(prog, os1, trace.Discard)
		if err := nat.Run(50_000_000); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		mod, err := CompileJVM("cf", WithStdlibJVM(src))
		if err != nil {
			t.Fatal(err)
		}
		os2 := vfs.New()
		if err := mod.Bind(jvm.OSNatives(os2)); err != nil {
			t.Fatal(err)
		}
		vm, _ := jvm.New(mod, nil, nil)
		if _, err := vm.Run("main", 10_000_000); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if os1.Stdout.String() != os2.Stdout.String() {
			t.Fatalf("trial %d: backends disagree: mips=%q jvm=%q\n%s",
				trial, os1.Stdout.String(), os2.Stdout.String(), src)
		}
	}
}
