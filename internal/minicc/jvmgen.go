package minicc

import (
	"fmt"

	"interplab/internal/jvm"
)

// CompileJVM compiles source to a bytecode module for the Java-analog VM.
//
// The JVM backend accepts the pointer-free subset of mini-C (plus array
// references): arrays index through JVM array objects, globals become
// statics, string literals become constant-pool entries, and `native`
// declarations become native-method invocations.  The address-of operator,
// pointer arithmetic and _sbrk are MIPS-only and are rejected here — the
// same discipline a Java port of a C benchmark would impose.
func CompileJVM(name, src string) (*jvm.Module, error) {
	u, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if err := Check(u); err != nil {
		return nil, err
	}
	return GenJVM(name, u)
}

// GenJVM lowers a checked unit to a bytecode module.
func GenJVM(name string, u *Unit) (*jvm.Module, error) {
	g := &jvmGen{
		unit:    u,
		mod:     &jvm.Module{Name: name},
		statics: make(map[*GlobalVar]int),
		funcs:   make(map[*FuncDecl]int),
		natives: make(map[string]int),
		consts:  make(map[string]int),
	}
	return g.run()
}

type jvmGen struct {
	unit    *Unit
	mod     *jvm.Module
	statics map[*GlobalVar]int
	funcs   map[*FuncDecl]int
	natives map[string]int
	consts  map[string]int

	fn     *FuncDecl
	slots  map[*LocalVar]int
	asm    *jvm.Asm
	nlabel int
	// scratch slot pool for element-store sequences; slots nest with
	// expression depth so inner expressions cannot clobber outer stashes.
	scratchBase  int
	scratchDepth int
	maxScratch   int
	brks         []string
	conts        []string
}

func (g *jvmGen) newLabel(hint string) string {
	g.nlabel++
	return fmt.Sprintf("%s%d", hint, g.nlabel)
}

func (g *jvmGen) constIndex(b []byte) int {
	key := string(b)
	if i, ok := g.consts[key]; ok {
		return i
	}
	i := len(g.mod.Consts)
	// Strings carry their NUL so natives can find the end.
	g.mod.Consts = append(g.mod.Consts, append(append([]byte(nil), b...), 0))
	g.consts[key] = i
	return i
}

func (g *jvmGen) nativeIndex(name string, arity int) int {
	if i, ok := g.natives[name]; ok {
		return i
	}
	i := len(g.mod.Natives)
	g.mod.Natives = append(g.mod.Natives, &jvm.NativeFn{Name: name, Arity: arity})
	g.natives[name] = i
	return i
}

func (g *jvmGen) run() (*jvm.Module, error) {
	// Statics.
	for _, gv := range g.unit.Globals {
		st := &jvm.Static{Name: gv.Name}
		t := gv.Type
		switch {
		case t.Kind == TypeArray:
			st.ElemSize = t.Elem.Size()
			st.Len = t.N
			if gv.InitStr != nil {
				st.InitData = append(append([]byte(nil), gv.InitStr...), 0)
			}
			for _, e := range gv.Init {
				if e.Kind == ExprStr {
					return nil, errAt(e.Tok, "string elements in global arrays are not available on the JVM target")
				}
				if st.ElemSize == 1 {
					st.InitData = append(st.InitData, byte(e.Num))
				} else {
					st.InitInts = append(st.InitInts, e.Num)
				}
			}
		case t.Kind == TypePointer && gv.HasInit && gv.Init[0].Kind == ExprStr:
			// char *s = "lit": a byte-array static.
			st.ElemSize = 1
			st.InitData = append(append([]byte(nil), gv.Init[0].Str...), 0)
			st.Len = len(st.InitData)
		case gv.HasInit:
			st.Init = gv.Init[0].Num
		}
		g.statics[gv] = len(g.mod.Statics)
		g.mod.Statics = append(g.mod.Statics, st)
	}

	// Function indices first, so calls can be emitted in one pass.
	for _, f := range g.unit.Funcs {
		if f.Proto {
			continue
		}
		if f.Native {
			g.nativeIndex(f.Name, len(f.Params))
			continue
		}
		g.funcs[f] = len(g.mod.Funcs)
		g.mod.Funcs = append(g.mod.Funcs, &jvm.Function{Name: f.Name, NArgs: len(f.Params)})
	}
	for _, f := range g.unit.Funcs {
		if f.Native || f.Proto {
			continue
		}
		if err := g.genFunc(f); err != nil {
			return nil, err
		}
	}
	return g.mod, nil
}

func (g *jvmGen) genFunc(f *FuncDecl) error {
	g.fn = f
	g.asm = jvm.NewAsm()
	g.slots = make(map[*LocalVar]int)
	for i, v := range f.Locals {
		g.slots[v] = i
	}
	g.scratchBase = len(f.Locals)
	g.scratchDepth = 0
	g.maxScratch = 0
	out := g.mod.Funcs[g.funcs[f]]

	// Prologue: allocate local arrays.
	for _, v := range f.Locals {
		if v.Type.Kind == TypeArray {
			g.asm.I32(jvm.OpIconst, int32(v.Type.N))
			if v.Type.Elem.Size() == 1 {
				g.asm.Op(jvm.OpNewArrayB)
			} else {
				g.asm.Op(jvm.OpNewArrayI)
			}
			g.asm.U8(jvm.OpIstore, g.slots[v])
		}
	}
	if err := g.genStmts(f.Body); err != nil {
		return err
	}
	// Fall off the end.
	if f.Ret.Kind == TypeVoid {
		g.asm.Op(jvm.OpReturn)
	} else {
		g.asm.I32(jvm.OpIconst, 0)
		g.asm.Op(jvm.OpIreturn)
	}
	code, err := g.asm.Finish()
	if err != nil {
		return err
	}
	out.Code = code
	out.NLocals = g.scratchBase + g.maxScratch
	return nil
}

func (g *jvmGen) genStmts(stmts []*Stmt) error {
	for _, s := range stmts {
		if err := g.genStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *jvmGen) genStmt(s *Stmt) error {
	switch s.Kind {
	case StmtExpr:
		return g.genExpr(s.Expr, false)

	case StmtDecl:
		if s.Decl.Init != nil {
			if err := g.genExpr(s.Decl.Init, true); err != nil {
				return err
			}
			g.asm.U8(jvm.OpIstore, g.slots[s.Decl])
		}
		return nil

	case StmtIf:
		elseL, endL := g.newLabel("else"), g.newLabel("fi")
		if err := g.genExpr(s.Expr, true); err != nil {
			return err
		}
		g.asm.Br(jvm.OpIfeq, elseL)
		if err := g.genStmts(s.Body); err != nil {
			return err
		}
		if s.Else != nil {
			g.asm.Br(jvm.OpGoto, endL)
		}
		g.asm.Label(elseL)
		if s.Else != nil {
			if err := g.genStmts(s.Else); err != nil {
				return err
			}
			g.asm.Label(endL)
		}
		return nil

	case StmtWhile:
		top, end := g.newLabel("wtop"), g.newLabel("wend")
		g.brks = append(g.brks, end)
		g.conts = append(g.conts, top)
		g.asm.Label(top)
		if err := g.genExpr(s.Expr, true); err != nil {
			return err
		}
		g.asm.Br(jvm.OpIfeq, end)
		if err := g.genStmts(s.Body); err != nil {
			return err
		}
		g.asm.Br(jvm.OpGoto, top)
		g.asm.Label(end)
		g.brks = g.brks[:len(g.brks)-1]
		g.conts = g.conts[:len(g.conts)-1]
		return nil

	case StmtFor:
		top, post, end := g.newLabel("ftop"), g.newLabel("fpost"), g.newLabel("fend")
		if s.Init != nil {
			if err := g.genStmt(s.Init); err != nil {
				return err
			}
		}
		g.brks = append(g.brks, end)
		g.conts = append(g.conts, post)
		g.asm.Label(top)
		if s.Expr != nil {
			if err := g.genExpr(s.Expr, true); err != nil {
				return err
			}
			g.asm.Br(jvm.OpIfeq, end)
		}
		if err := g.genStmts(s.Body); err != nil {
			return err
		}
		g.asm.Label(post)
		if s.Post != nil {
			if err := g.genExpr(s.Post, false); err != nil {
				return err
			}
		}
		g.asm.Br(jvm.OpGoto, top)
		g.asm.Label(end)
		g.brks = g.brks[:len(g.brks)-1]
		g.conts = g.conts[:len(g.conts)-1]
		return nil

	case StmtReturn:
		if s.Expr != nil {
			if err := g.genExpr(s.Expr, true); err != nil {
				return err
			}
			g.asm.Op(jvm.OpIreturn)
		} else {
			g.asm.Op(jvm.OpReturn)
		}
		return nil

	case StmtBreak:
		g.asm.Br(jvm.OpGoto, g.brks[len(g.brks)-1])
		return nil

	case StmtContinue:
		g.asm.Br(jvm.OpGoto, g.conts[len(g.conts)-1])
		return nil

	case StmtBlock:
		return g.genStmts(s.Body)
	}
	return fmt.Errorf("minicc: internal: unknown statement kind %d", s.Kind)
}
