package minicc

// Stdlib is the mini-C runtime library, written in mini-C and compiled
// together with each program — the analog of the tiny libc a C benchmark
// would link against.  Everything here is ordinary guest code: when MIPSI
// interprets a workload, it interprets the library too, exactly as the
// paper's MIPSI interpreted libc.
const Stdlib = `
int strlen(char *s) {
    int n = 0;
    while (s[n]) n++;
    return n;
}

char *strcpy(char *dst, char *src) {
    int i = 0;
    while ((dst[i] = src[i]) != 0) i++;
    return dst;
}

int strcmp(char *a, char *b) {
    int i = 0;
    while (a[i] && a[i] == b[i]) i++;
    return a[i] - b[i];
}

int strncmp(char *a, char *b, int n) {
    int i = 0;
    while (i < n && a[i] && a[i] == b[i]) i++;
    if (i == n) return 0;
    return a[i] - b[i];
}

char *strcat(char *dst, char *src) {
    strcpy(dst + strlen(dst), src);
    return dst;
}

char *memcpy(char *dst, char *src, int n) {
    int i;
    for (i = 0; i < n; i++) dst[i] = src[i];
    return dst;
}

char *memset(char *dst, int c, int n) {
    int i;
    for (i = 0; i < n; i++) dst[i] = c;
    return dst;
}

int atoi(char *s) {
    int v = 0;
    int neg = 0;
    int i = 0;
    if (s[0] == '-') { neg = 1; i = 1; }
    while (s[i] >= '0' && s[i] <= '9') {
        v = v * 10 + (s[i] - '0');
        i++;
    }
    if (neg) return -v;
    return v;
}

int putc(int c) {
    char b[4];
    b[0] = c;
    return _write(1, b, 1);
}

int puts(char *s) {
    return _write(1, s, strlen(s));
}

int putn(int n) {
    char buf[16];
    int i = 15;
    int neg = 0;
    if (n == 0) return putc('0');
    if (n < 0) { neg = 1; n = -n; }
    while (n > 0) {
        i--;
        buf[i] = '0' + n % 10;
        n = n / 10;
    }
    if (neg) { i--; buf[i] = '-'; }
    return _write(1, &buf[i], 15 - i);
}
`

// WithStdlib appends the runtime library to a program source.
func WithStdlib(src string) string { return src + "\n" + Stdlib }

// StdlibJVM is the runtime library variant for the JVM backend: the same
// routines, written without address-of or pointer arithmetic — the shape a
// Java port of the C library takes.  When Java programs run these routines
// they are *interpreted*, which is why (as in the paper's Table 1) the
// Java string microbenchmarks are far slower than Perl's and Tcl's
// native-library string operations.
const StdlibJVM = `
int strlen(char *s) {
    int n = 0;
    while (s[n]) n++;
    return n;
}

char *strcpy(char *dst, char *src) {
    int i = 0;
    while ((dst[i] = src[i]) != 0) i++;
    return dst;
}

int strcmp(char *a, char *b) {
    int i = 0;
    while (a[i] && a[i] == b[i]) i++;
    return a[i] - b[i];
}

int strncmp(char *a, char *b, int n) {
    int i = 0;
    while (i < n && a[i] && a[i] == b[i]) i++;
    if (i == n) return 0;
    return a[i] - b[i];
}

char *strcat(char *dst, char *src) {
    int d = strlen(dst);
    int i = 0;
    while ((dst[d + i] = src[i]) != 0) i++;
    return dst;
}

char *memcpy(char *dst, char *src, int n) {
    int i;
    for (i = 0; i < n; i++) dst[i] = src[i];
    return dst;
}

char *memset(char *dst, int c, int n) {
    int i;
    for (i = 0; i < n; i++) dst[i] = c;
    return dst;
}

int atoi(char *s) {
    int v = 0;
    int neg = 0;
    int i = 0;
    if (s[0] == '-') { neg = 1; i = 1; }
    while (s[i] >= '0' && s[i] <= '9') {
        v = v * 10 + (s[i] - '0');
        i++;
    }
    if (neg) return -v;
    return v;
}

int putc(int c) {
    char b[4];
    b[0] = c;
    return _write(1, b, 1);
}

int puts(char *s) {
    return _write(1, s, strlen(s));
}

int putn(int n) {
    char buf[16];
    int i = 15;
    int neg = 0;
    if (n == 0) return putc('0');
    if (n < 0) { neg = 1; n = -n; }
    while (n > 0) {
        i--;
        buf[i] = '0' + n % 10;
        n = n / 10;
    }
    if (neg) { i--; buf[i] = '-'; }
    int j = 0;
    while (i + j < 15) {
        buf[j] = buf[i + j];
        j++;
    }
    return _write(1, buf, j);
}
`

// WithStdlibJVM appends the JVM-compatible runtime library.
func WithStdlibJVM(src string) string { return src + "\n" + StdlibJVM }
