package minicc

import (
	"fmt"

	"interplab/internal/jvm"
)

// isByteElem reports whether t is a char-element access.
func isByteElem(t *Type) bool { return t.Size() == 1 }

// tmp allocates a scratch local slot; release returns slots to the pool.
// Slots nest with expression depth, so inner expressions never clobber an
// outer expression's stashed values.
func (g *jvmGen) tmp() int {
	g.scratchDepth++
	if g.scratchDepth > g.maxScratch {
		g.maxScratch = g.scratchDepth
	}
	return g.scratchBase + g.scratchDepth - 1
}

func (g *jvmGen) release(n int) { g.scratchDepth -= n }

// elemRef is an element lvalue whose array ref and index are stashed in
// scratch slots.
type elemRef struct {
	r, i   int
	isByte bool
}

// evalElem evaluates an element lvalue's ref and index into fresh scratch
// slots (2 allocations; caller releases).
func (g *jvmGen) evalElem(lv *Expr) (elemRef, error) {
	var base, idx *Expr
	switch lv.Kind {
	case ExprIndex:
		base, idx = lv.X, lv.Y
	case ExprUnary: // *p
		base = lv.X
	default:
		return elemRef{}, errAt(lv.Tok, "internal: not an element lvalue")
	}
	er := elemRef{isByte: isByteElem(lv.Type)}
	if err := g.genExpr(base, true); err != nil {
		return er, err
	}
	er.r = g.tmp()
	g.asm.U8(jvm.OpIstore, er.r)
	if idx != nil {
		if err := g.genExpr(idx, true); err != nil {
			return er, err
		}
	} else {
		g.asm.I32(jvm.OpIconst, 0)
	}
	er.i = g.tmp()
	g.asm.U8(jvm.OpIstore, er.i)
	return er, nil
}

// loadElem pushes the element's value.
func (g *jvmGen) loadElem(er elemRef) {
	g.asm.U8(jvm.OpIload, er.r)
	g.asm.U8(jvm.OpIload, er.i)
	if er.isByte {
		g.asm.Op(jvm.OpBaload)
	} else {
		g.asm.Op(jvm.OpIaload)
	}
}

// storeElem pops the value on the stack into the element; when keep is set
// the value is left on the stack afterwards.
func (g *jvmGen) storeElem(er elemRef, keep bool) {
	v := g.tmp()
	g.asm.U8(jvm.OpIstore, v)
	g.asm.U8(jvm.OpIload, er.r)
	g.asm.U8(jvm.OpIload, er.i)
	g.asm.U8(jvm.OpIload, v)
	if er.isByte {
		g.asm.Op(jvm.OpBastore)
	} else {
		g.asm.Op(jvm.OpIastore)
	}
	if keep {
		g.asm.U8(jvm.OpIload, v)
	}
	g.release(1)
}

// storeScalar pops into a scalar local/global; when keep is set the value
// stays on the stack.
func (g *jvmGen) storeScalar(lv *Expr, keep bool) {
	if keep {
		g.asm.Op(jvm.OpDup)
	}
	if lv.Local != nil {
		g.asm.U8(jvm.OpIstore, g.slots[lv.Local])
	} else {
		g.asm.U16(jvm.OpPutStatic, g.statics[lv.Global])
	}
}

func isScalarIdent(e *Expr) bool { return e.Kind == ExprIdent }

// genExpr emits code for e.  When needValue is false the expression is in
// statement position and must leave the stack unchanged.
func (g *jvmGen) genExpr(e *Expr, needValue bool) error {
	switch e.Kind {
	case ExprNum:
		if needValue {
			g.asm.I32(jvm.OpIconst, e.Num)
		}
		return nil

	case ExprStr:
		if needValue {
			g.asm.U16(jvm.OpLdc, g.constIndex(e.Str))
		}
		return nil

	case ExprIdent:
		if !needValue {
			return nil
		}
		return g.loadIdent(e)

	case ExprUnary:
		return g.genUnary(e, needValue)

	case ExprPostfix:
		return g.genIncDec(e.X, e.Op, needValue, true)

	case ExprBinary:
		return g.genBinary(e, needValue)

	case ExprAssign:
		return g.genAssign(e, needValue)

	case ExprCond:
		elseL, endL := g.newLabel("celse"), g.newLabel("cend")
		if err := g.genExpr(e.X, true); err != nil {
			return err
		}
		g.asm.Br(jvm.OpIfeq, elseL)
		if err := g.genExpr(e.Y, needValue); err != nil {
			return err
		}
		g.asm.Br(jvm.OpGoto, endL)
		g.asm.Label(elseL)
		if err := g.genExpr(e.Z, needValue); err != nil {
			return err
		}
		g.asm.Label(endL)
		return nil

	case ExprIndex:
		if err := g.genExpr(e.X, true); err != nil { // array ref
			return err
		}
		if err := g.genExpr(e.Y, true); err != nil { // index
			return err
		}
		if isByteElem(e.Type) {
			g.asm.Op(jvm.OpBaload)
		} else {
			g.asm.Op(jvm.OpIaload)
		}
		if !needValue {
			g.asm.Op(jvm.OpPop)
		}
		return nil

	case ExprCall:
		return g.genCall(e, needValue)
	}
	return errAt(e.Tok, "internal: unknown expression kind %d", e.Kind)
}

func (g *jvmGen) loadIdent(e *Expr) error {
	switch {
	case e.Local != nil:
		g.asm.U8(jvm.OpIload, g.slots[e.Local])
	case e.Global != nil:
		g.asm.U16(jvm.OpGetStatic, g.statics[e.Global])
	default:
		return errAt(e.Tok, "internal: unresolved identifier")
	}
	return nil
}

func (g *jvmGen) genUnary(e *Expr, needValue bool) error {
	switch e.Op {
	case "-":
		if err := g.genExpr(e.X, needValue); err != nil {
			return err
		}
		if needValue {
			g.asm.Op(jvm.OpIneg)
		}
		return nil
	case "~":
		if err := g.genExpr(e.X, needValue); err != nil {
			return err
		}
		if needValue {
			g.asm.I32(jvm.OpIconst, -1)
			g.asm.Op(jvm.OpIxor)
		}
		return nil
	case "!":
		if err := g.genExpr(e.X, true); err != nil {
			return err
		}
		tl, end := g.newLabel("nt"), g.newLabel("ne")
		g.asm.Br(jvm.OpIfeq, tl)
		g.asm.I32(jvm.OpIconst, 0)
		g.asm.Br(jvm.OpGoto, end)
		g.asm.Label(tl)
		g.asm.I32(jvm.OpIconst, 1)
		g.asm.Label(end)
		if !needValue {
			g.asm.Op(jvm.OpPop)
		}
		return nil
	case "*":
		// *p is p[0] on an array reference.
		if err := g.genExpr(e.X, true); err != nil {
			return err
		}
		g.asm.I32(jvm.OpIconst, 0)
		if isByteElem(e.Type) {
			g.asm.Op(jvm.OpBaload)
		} else {
			g.asm.Op(jvm.OpIaload)
		}
		if !needValue {
			g.asm.Op(jvm.OpPop)
		}
		return nil
	case "&":
		return errAt(e.Tok, "the address-of operator is not available on the JVM target")
	case "++", "--":
		return g.genIncDec(e.X, e.Op, needValue, false)
	}
	return errAt(e.Tok, "internal: unary %s", e.Op)
}

// genIncDec handles ++x/--x/x++/x-- on locals, globals and elements.
func (g *jvmGen) genIncDec(lv *Expr, op string, needValue, post bool) error {
	delta := int32(1)
	if op == "--" {
		delta = -1
	}
	if lv.Type.Decay().Kind == TypePointer {
		return errAt(lv.Tok, "pointer arithmetic is not available on the JVM target")
	}

	if isScalarIdent(lv) {
		if !needValue && lv.Local != nil {
			g.asm.Iinc(g.slots[lv.Local], int(delta))
			return nil
		}
		if err := g.loadIdent(lv); err != nil {
			return err
		}
		if needValue && post {
			g.asm.Op(jvm.OpDup)
		}
		g.asm.I32(jvm.OpIconst, delta)
		g.asm.Op(jvm.OpIadd)
		g.storeScalar(lv, needValue && !post)
		return nil
	}

	er, err := g.evalElem(lv)
	if err != nil {
		return err
	}
	g.loadElem(er)
	if needValue && post {
		v := g.tmp()
		g.asm.Op(jvm.OpDup)
		g.asm.U8(jvm.OpIstore, v)
		g.asm.I32(jvm.OpIconst, delta)
		g.asm.Op(jvm.OpIadd)
		g.storeElem(er, false)
		g.asm.U8(jvm.OpIload, v)
		g.release(1)
	} else {
		g.asm.I32(jvm.OpIconst, delta)
		g.asm.Op(jvm.OpIadd)
		g.storeElem(er, needValue)
	}
	g.release(2)
	return nil
}

var jvmBinOp = map[string]jvm.Opcode{
	"+": jvm.OpIadd, "-": jvm.OpIsub, "*": jvm.OpImul, "/": jvm.OpIdiv, "%": jvm.OpIrem,
	"&": jvm.OpIand, "|": jvm.OpIor, "^": jvm.OpIxor,
	"<<": jvm.OpIshl, ">>": jvm.OpIshr,
}

var jvmCmpOp = map[string]jvm.Opcode{
	"==": jvm.OpIfIcmpeq, "!=": jvm.OpIfIcmpne,
	"<": jvm.OpIfIcmplt, "<=": jvm.OpIfIcmple,
	">": jvm.OpIfIcmpgt, ">=": jvm.OpIfIcmpge,
}

func (g *jvmGen) genBinary(e *Expr, needValue bool) error {
	if (e.X.Type.Decay().Kind == TypePointer || e.Y.Type.Decay().Kind == TypePointer) &&
		(e.Op == "+" || e.Op == "-") {
		return errAt(e.Tok, "pointer arithmetic is not available on the JVM target")
	}
	switch e.Op {
	case "&&", "||":
		fl, end := g.newLabel("sc"), g.newLabel("se")
		if err := g.genExpr(e.X, true); err != nil {
			return err
		}
		if e.Op == "&&" {
			g.asm.Br(jvm.OpIfeq, fl)
		} else {
			g.asm.Br(jvm.OpIfne, fl)
		}
		if err := g.genExpr(e.Y, true); err != nil {
			return err
		}
		tl := g.newLabel("st")
		g.asm.Br(jvm.OpIfne, tl)
		g.asm.I32(jvm.OpIconst, 0)
		g.asm.Br(jvm.OpGoto, end)
		g.asm.Label(tl)
		g.asm.I32(jvm.OpIconst, 1)
		g.asm.Br(jvm.OpGoto, end)
		g.asm.Label(fl)
		if e.Op == "&&" {
			g.asm.I32(jvm.OpIconst, 0)
		} else {
			g.asm.I32(jvm.OpIconst, 1)
		}
		g.asm.Label(end)
		if !needValue {
			g.asm.Op(jvm.OpPop)
		}
		return nil
	}

	if err := g.genExpr(e.X, true); err != nil {
		return err
	}
	if err := g.genExpr(e.Y, true); err != nil {
		return err
	}
	if op, ok := jvmBinOp[e.Op]; ok {
		g.asm.Op(op)
		if !needValue {
			g.asm.Op(jvm.OpPop)
		}
		return nil
	}
	if br, ok := jvmCmpOp[e.Op]; ok {
		tl, end := g.newLabel("ct"), g.newLabel("ce")
		g.asm.Br(br, tl)
		g.asm.I32(jvm.OpIconst, 0)
		g.asm.Br(jvm.OpGoto, end)
		g.asm.Label(tl)
		g.asm.I32(jvm.OpIconst, 1)
		g.asm.Label(end)
		if !needValue {
			g.asm.Op(jvm.OpPop)
		}
		return nil
	}
	return errAt(e.Tok, "internal: binary %s", e.Op)
}

func (g *jvmGen) genAssign(e *Expr, needValue bool) error {
	compound := e.Op != "="
	if compound && e.X.Type.Decay().Kind == TypePointer {
		return errAt(e.Tok, "pointer arithmetic is not available on the JVM target")
	}

	if isScalarIdent(e.X) {
		if compound {
			if err := g.loadIdent(e.X); err != nil {
				return err
			}
		}
		if err := g.genExpr(e.Y, true); err != nil {
			return err
		}
		if compound {
			g.asm.Op(jvmBinOp[e.Op[:len(e.Op)-1]])
		}
		g.storeScalar(e.X, needValue)
		return nil
	}

	// Element target.
	er, err := g.evalElem(e.X)
	if err != nil {
		return err
	}
	if compound {
		g.loadElem(er)
	}
	if err := g.genExpr(e.Y, true); err != nil {
		return err
	}
	if compound {
		g.asm.Op(jvmBinOp[e.Op[:len(e.Op)-1]])
	}
	g.storeElem(er, needValue)
	g.release(2)
	return nil
}

func (g *jvmGen) genCall(e *Expr, needValue bool) error {
	fn := e.Func
	if fn.Name == "_sbrk" {
		return errAt(e.Tok, "_sbrk is not available on the JVM target")
	}
	for _, a := range e.Args {
		if err := g.genExpr(a, true); err != nil {
			return err
		}
	}
	if fn.Native || IsIntrinsic(fn) {
		g.asm.U16(jvm.OpInvokeNative, g.nativeIndex(fn.Name, len(fn.Params)))
		// Natives always push a result; drop it in statement position.
		if !needValue {
			g.asm.Op(jvm.OpPop)
		}
		return nil
	}
	g.asm.U16(jvm.OpInvokeStatic, g.funcs[fn])
	if fn.Ret.Kind == TypeVoid {
		if needValue {
			g.asm.I32(jvm.OpIconst, 0)
		}
	} else if !needValue {
		g.asm.Op(jvm.OpPop)
	}
	return nil
}

var _ = fmt.Sprintf
