package minicc

// Type describes a mini-C type.
type Type struct {
	Kind TypeKind
	Elem *Type // pointee / element type
	N    int   // array length
}

// TypeKind enumerates the type constructors.
type TypeKind uint8

const (
	TypeVoid TypeKind = iota
	TypeInt
	TypeChar
	TypePointer
	TypeArray
)

var (
	// IntType and friends are the shared primitive type values.
	IntType  = &Type{Kind: TypeInt}
	CharType = &Type{Kind: TypeChar}
	VoidType = &Type{Kind: TypeVoid}
)

// PointerTo returns the pointer type to t.
func PointerTo(t *Type) *Type { return &Type{Kind: TypePointer, Elem: t} }

// ArrayOf returns the array type of n elements of t.
func ArrayOf(t *Type, n int) *Type { return &Type{Kind: TypeArray, Elem: t, N: n} }

// Size returns the storage size in bytes.
func (t *Type) Size() int {
	switch t.Kind {
	case TypeChar:
		return 1
	case TypeInt, TypePointer:
		return 4
	case TypeArray:
		return t.N * t.Elem.Size()
	}
	return 0
}

// IsScalar reports whether the type fits a register.
func (t *Type) IsScalar() bool {
	return t.Kind == TypeInt || t.Kind == TypeChar || t.Kind == TypePointer
}

// Decay returns the expression type after array-to-pointer decay.
func (t *Type) Decay() *Type {
	if t.Kind == TypeArray {
		return PointerTo(t.Elem)
	}
	return t
}

// Equal reports structural type equality.
func (t *Type) Equal(u *Type) bool {
	if t.Kind != u.Kind {
		return false
	}
	switch t.Kind {
	case TypePointer:
		return t.Elem.Equal(u.Elem)
	case TypeArray:
		return t.N == u.N && t.Elem.Equal(u.Elem)
	}
	return true
}

func (t *Type) String() string {
	switch t.Kind {
	case TypeVoid:
		return "void"
	case TypeInt:
		return "int"
	case TypeChar:
		return "char"
	case TypePointer:
		return t.Elem.String() + "*"
	case TypeArray:
		return t.Elem.String() + "[]"
	}
	return "?"
}

// --- expressions ------------------------------------------------------------

// Expr is an expression node.  After sema, Type is set on every node.
type Expr struct {
	Kind ExprKind
	Tok  Token
	Type *Type

	// Operands, by kind:
	X, Y, Z *Expr   // unary/binary/ternary operands
	Args    []*Expr // call arguments

	Op   string // operator text for unary/binary/assign
	Name string // identifier / callee
	Num  int32  // literal value
	Str  []byte // string literal bytes (NUL added by backend)

	// Sema results.
	Local  *LocalVar  // resolved local, if any
	Global *GlobalVar // resolved global, if any
	Func   *FuncDecl  // resolved callee
}

// ExprKind enumerates expression forms.
type ExprKind uint8

const (
	ExprNum ExprKind = iota
	ExprStr
	ExprIdent
	ExprUnary   // Op X  (!, ~, -, *, &, ++x, --x)
	ExprPostfix // X Op  (x++, x--)
	ExprBinary  // X Op Y
	ExprAssign  // X Op Y where Op is =, +=, ...
	ExprCond    // X ? Y : Z
	ExprIndex   // X[Y]
	ExprCall    // Name(Args)
)

// --- statements -------------------------------------------------------------

// Stmt is a statement node.
type Stmt struct {
	Kind StmtKind
	Tok  Token

	Expr *Expr   // expression / condition / return value
	Init *Stmt   // for-init
	Post *Expr   // for-post
	Body []*Stmt // block body / loop body
	Else []*Stmt // else branch

	Decl *LocalVar // for StmtDecl
}

// StmtKind enumerates statement forms.
type StmtKind uint8

const (
	StmtExpr StmtKind = iota
	StmtDecl
	StmtIf
	StmtWhile
	StmtFor
	StmtReturn
	StmtBreak
	StmtContinue
	StmtBlock
)

// --- declarations -----------------------------------------------------------

// LocalVar is a function-local variable or parameter.
type LocalVar struct {
	Name    string
	Type    *Type
	Offset  int // frame offset, assigned by sema
	Init    *Expr
	IsParam bool
}

// GlobalVar is a file-scope variable.
type GlobalVar struct {
	Name    string
	Type    *Type
	Init    []*Expr // scalar: one element; array: element list
	InitStr []byte  // char array initialized from a string literal
	HasInit bool
}

// FuncDecl is a function definition or native declaration.
type FuncDecl struct {
	Name   string
	Ret    *Type
	Params []*LocalVar
	Body   []*Stmt
	Native bool
	// Proto marks a forward declaration (body provided elsewhere).
	Proto     bool
	Locals    []*LocalVar // all locals incl. params, after sema
	FrameSize int         // bytes, after sema
}

// Unit is a parsed translation unit.
type Unit struct {
	Globals []*GlobalVar
	Funcs   []*FuncDecl
}

// Func returns a function by name.
func (u *Unit) Func(name string) *FuncDecl {
	for _, f := range u.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}
