package minicc

import (
	"strings"
	"testing"

	"interplab/internal/jvm"
	"interplab/internal/mipsi"
	"interplab/internal/trace"
	"interplab/internal/vfs"
)

// runJVM compiles src with the JVM stdlib and executes it.
func runJVM(t *testing.T, src string) (int32, string) {
	t.Helper()
	mod, err := CompileJVM("test", WithStdlibJVM(src))
	if err != nil {
		t.Fatalf("compile jvm: %v", err)
	}
	osys := vfs.New()
	if err := mod.Bind(jvm.OSNatives(osys)); err != nil {
		t.Fatal(err)
	}
	vm, err := jvm.New(mod, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ret, err := vm.Run("main", 100_000_000)
	if err != nil {
		t.Fatalf("run jvm: %v", err)
	}
	return ret, osys.Stdout.String()
}

func TestJVMReturn(t *testing.T) {
	ret, _ := runJVM(t, "int main() { return 41 + 1; }")
	if ret != 42 {
		t.Errorf("ret = %d", ret)
	}
}

func TestJVMControlAndCalls(t *testing.T) {
	ret, _ := runJVM(t, `
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() {
    int s = 0;
    int i;
    for (i = 0; i < 10; i++) {
        if (i % 2 == 0) continue;
        s += fib(i);
    }
    return s;
}`)
	// fib(1)+fib(3)+fib(5)+fib(7)+fib(9) = 1+2+5+13+34 = 55
	if ret != 55 {
		t.Errorf("ret = %d, want 55", ret)
	}
}

func TestJVMArraysAndStrings(t *testing.T) {
	ret, out := runJVM(t, `
int tab[] = {3, 1, 4, 1, 5};
char msg[16] = "jvm";
int main() {
    int s = 0;
    int i;
    for (i = 0; i < 5; i++) s += tab[i];
    strcat(msg, "-ok");
    puts(msg);
    return s + strlen(msg);
}`)
	if ret != 14+6 {
		t.Errorf("ret = %d, want 20", ret)
	}
	if out != "jvm-ok" {
		t.Errorf("stdout = %q", out)
	}
}

func TestJVMLocalArraysAndIncDec(t *testing.T) {
	ret, _ := runJVM(t, `
int main() {
    int a[8];
    int i = 0;
    int j;
    for (j = 0; j < 8; j++) a[j] = j;
    a[2]++;
    ++a[3];
    a[4] += 10;
    int x = a[i++];   // x = a[0] = 0, i = 1
    int y = a[i];     // y = a[1] = 1
    return a[2] + a[3] + a[4] + x + y + i; // 3 + 4 + 14 + 0 + 1 + 1
}`)
	if ret != 23 {
		t.Errorf("ret = %d, want 23", ret)
	}
}

func TestJVMNestedElementAssignments(t *testing.T) {
	// Nested element stores must not clobber each other's scratch state.
	ret, _ := runJVM(t, `
int a[4];
int b[4];
int main() {
    int i = 1;
    b[2] = 7;
    a[i] = b[i + 1]++;   // a[1] = 7, b[2] = 8
    a[b[i+1] - 8] = a[i] + 1;  // a[0] = 8
    return a[0] * 100 + a[1] * 10 + b[2]; // 878
}`)
	if ret != 878 {
		t.Errorf("ret = %d, want 878", ret)
	}
}

func TestJVMPutn(t *testing.T) {
	_, out := runJVM(t, `int main() { putn(-1234); putc(' '); putn(0); putn(987); return 0; }`)
	if out != "-1234 0987" {
		t.Errorf("stdout = %q", out)
	}
}

func TestJVMRejectsPointerOps(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{"int g; int main() { int *p = &g; return 0; }", "address-of"},
		{"int a[4]; int main() { int *p = a; p = p + 1; return 0; }", "pointer arithmetic"},
		{"int a[4]; int main() { int *p = a; p++; return 0; }", "pointer arithmetic"},
		{"int main() { char *p = _sbrk(4); return 0; }", "_sbrk"},
	}
	for _, c := range cases {
		_, err := CompileJVM("t", c.src)
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("src %q: err = %v, want %q", c.src, err, c.frag)
		}
	}
}

func TestJVMNativeDeclarations(t *testing.T) {
	mod, err := CompileJVM("t", `
native int twice(int x);
int main() { return twice(21); }`)
	if err != nil {
		t.Fatal(err)
	}
	if err := mod.Bind([]*jvm.NativeFn{{Name: "twice", Arity: 1, F: func(vm *jvm.VM, a []int32) int32 { return a[0] * 2 }}}); err != nil {
		t.Fatal(err)
	}
	vm, _ := jvm.New(mod, nil, nil)
	ret, err := vm.Run("main", 0)
	if err != nil {
		t.Fatal(err)
	}
	if ret != 42 {
		t.Errorf("ret = %d, want 42", ret)
	}
}

// TestBackendsAgree runs the same source through the MIPS native machine
// and the JVM and requires identical results — the des-in-every-language
// property the workload suite depends on.
func TestBackendsAgree(t *testing.T) {
	src := `
int acc[16];
int mix(int a, int b) { return (a * 31 + b) % 1000; }
int main() {
    int i;
    int h = 7;
    for (i = 0; i < 200; i++) {
        h = mix(h, i);
        acc[i % 16] += h;
        if (acc[i % 16] > 5000) acc[i % 16] -= 4096;
    }
    int s = 0;
    for (i = 0; i < 16; i++) s ^= acc[i];
    putn(s);
    return s % 251;
}`
	// MIPS native.
	prog, err := CompileMIPS("t", WithStdlib(src))
	if err != nil {
		t.Fatal(err)
	}
	os1 := vfs.New()
	nat, err := mipsi.NewNative(prog, os1, trace.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := nat.Run(0); err != nil {
		t.Fatal(err)
	}
	// JVM.
	ret, out := runJVM(t, src)
	if int32(nat.M.ExitCode) != ret {
		t.Errorf("exit codes differ: mips=%d jvm=%d", nat.M.ExitCode, ret)
	}
	if os1.Stdout.String() != out {
		t.Errorf("stdout differs: mips=%q jvm=%q", os1.Stdout.String(), out)
	}
}
