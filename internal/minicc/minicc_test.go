package minicc

import (
	"strings"
	"testing"

	"interplab/internal/mipsi"
	"interplab/internal/trace"
	"interplab/internal/vfs"
)

// runMC compiles src (with stdlib) and executes it natively, returning the
// exit code and stdout.
func runMC(t *testing.T, src string) (uint32, string) {
	t.Helper()
	return runMCFS(t, src, vfs.New())
}

func runMCFS(t *testing.T, src string, osys *vfs.OS) (uint32, string) {
	t.Helper()
	prog, err := CompileMIPS("test", WithStdlib(src))
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	nat, err := mipsi.NewNative(prog, osys, trace.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := nat.Run(200_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	return nat.M.ExitCode, osys.Stdout.String()
}

func TestReturnValue(t *testing.T) {
	code, _ := runMC(t, `int main() { return 42; }`)
	if code != 42 {
		t.Errorf("exit = %d, want 42", code)
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		expr string
		want uint32
	}{
		{"2 + 3 * 4", 14},
		{"(2 + 3) * 4", 20},
		{"100 / 7", 14},
		{"100 % 7", 2},
		{"1 << 5", 32},
		{"-64 >> 3", uint32(0xfffffff8)}, // arithmetic shift
		{"6 & 3", 2},
		{"6 | 3", 7},
		{"6 ^ 3", 5},
		{"~0 & 0xff", 255},
		{"5 < 6", 1},
		{"6 <= 6", 1},
		{"7 > 7", 0},
		{"7 >= 7", 1},
		{"3 == 3", 1},
		{"3 != 3", 0},
		{"!5", 0},
		{"!0", 1},
		{"1 && 2", 1},
		{"1 && 0", 0},
		{"0 || 3", 1},
		{"0 || 0", 0},
		{"1 ? 10 : 20", 10},
		{"0 ? 10 : 20", 20},
		{"-(-5)", 5},
	}
	for _, c := range cases {
		code, _ := runMC(t, "int main() { return "+c.expr+"; }")
		if code != c.want {
			t.Errorf("%s = %d, want %d", c.expr, code, c.want)
		}
	}
}

func TestControlFlow(t *testing.T) {
	code, _ := runMC(t, `
int main() {
    int sum = 0;
    int i;
    for (i = 1; i <= 10; i++) {
        if (i == 5) continue;
        if (i == 9) break;
        sum += i;
    }
    while (sum > 30) sum -= 2;
    return sum;
}`)
	// 1+2+3+4+6+7+8 = 31; then 31-2=29.
	if code != 29 {
		t.Errorf("exit = %d, want 29", code)
	}
}

func TestRecursionFib(t *testing.T) {
	code, _ := runMC(t, `
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int main() { return fib(12); }`)
	if code != 144 {
		t.Errorf("fib(12) = %d, want 144", code)
	}
}

func TestPointersAndArrays(t *testing.T) {
	code, _ := runMC(t, `
int a[5];
int main() {
    int i;
    int *p = a;
    for (i = 0; i < 5; i++) a[i] = i * i;
    p += 2;
    return *p + a[4] + p[1];  // 4 + 16 + 9
}`)
	if code != 29 {
		t.Errorf("exit = %d, want 29", code)
	}
}

func TestPointerDifference(t *testing.T) {
	code, _ := runMC(t, `
int a[10];
int main() {
    int *p = &a[7];
    int *q = &a[2];
    return p - q;
}`)
	if code != 5 {
		t.Errorf("pointer difference = %d, want 5", code)
	}
}

func TestCharAndStrings(t *testing.T) {
	code, out := runMC(t, `
char msg[32] = "hello";
int main() {
    strcat(msg, ", world");
    puts(msg);
    putc('\n');
    return strlen(msg);
}`)
	if code != 12 {
		t.Errorf("strlen = %d, want 12", code)
	}
	if out != "hello, world\n" {
		t.Errorf("stdout = %q", out)
	}
}

func TestGlobalInitializers(t *testing.T) {
	code, _ := runMC(t, `
int table[] = {10, 20, 30, 40};
int scalar = 7;
char letter = 'x';
int main() { return table[2] + scalar + (letter == 'x'); }`)
	if code != 38 {
		t.Errorf("exit = %d, want 38", code)
	}
}

func TestStringViaPointerGlobal(t *testing.T) {
	_, out := runMC(t, `
char *greeting = "hi there";
int main() { puts(greeting); return 0; }`)
	if out != "hi there" {
		t.Errorf("stdout = %q", out)
	}
}

func TestIncDec(t *testing.T) {
	code, _ := runMC(t, `
int main() {
    int x = 5;
    int a = x++;   // a=5 x=6
    int b = ++x;   // b=7 x=7
    int c = x--;   // c=7 x=6
    int d = --x;   // d=5 x=5
    return a + b + c + d + x; // 5+7+7+5+5
}`)
	if code != 29 {
		t.Errorf("exit = %d, want 29", code)
	}
}

func TestCompoundAssignment(t *testing.T) {
	code, _ := runMC(t, `
int main() {
    int x = 10;
    x += 5; x -= 3; x *= 4; x /= 6; x %= 5; // 12*4=48/6=8%5=3
    x <<= 4; x >>= 2; x |= 1; x ^= 2; x &= 0xf; // 3<<4=48>>2=12|1=13^2=15&15=15
    return x;
}`)
	if code != 15 {
		t.Errorf("exit = %d, want 15", code)
	}
}

func TestPutn(t *testing.T) {
	_, out := runMC(t, `
int main() {
    putn(0); putc(' ');
    putn(12345); putc(' ');
    putn(-678);
    return 0;
}`)
	if out != "0 12345 -678" {
		t.Errorf("stdout = %q", out)
	}
}

func TestAtoi(t *testing.T) {
	code, _ := runMC(t, `int main() { return atoi("123") + atoi("-23"); }`)
	if code != 100 {
		t.Errorf("exit = %d, want 100", code)
	}
}

func TestFileIO(t *testing.T) {
	osys := vfs.New()
	osys.AddFile("input", []byte("abcde"))
	code, out := runMCFS(t, `
char buf[64];
int main() {
    int fd = _open("input", 0);
    if (fd < 0) return 1;
    int n = _read(fd, buf, 64);
    _close(fd);
    _write(1, buf, n);
    return n;
}`, osys)
	if code != 5 || out != "abcde" {
		t.Errorf("exit = %d out = %q", code, out)
	}
}

func TestHeapAllocation(t *testing.T) {
	code, _ := runMC(t, `
int main() {
    char *p = _sbrk(64);
    int *q = _sbrk(0);
    p[0] = 42;
    p[63] = 1;
    return p[0] + p[63];
}`)
	if code != 43 {
		t.Errorf("exit = %d, want 43", code)
	}
}

func TestNestedCallsSpill(t *testing.T) {
	code, _ := runMC(t, `
int add(int a, int b) { return a + b; }
int main() {
    return add(add(1, 2), add(add(3, 4), 5)) + add(6, 7); // 15 + 13
}`)
	if code != 28 {
		t.Errorf("exit = %d, want 28", code)
	}
}

func TestLocalArrays(t *testing.T) {
	code, _ := runMC(t, `
int sum(int *v, int n) {
    int s = 0;
    int i;
    for (i = 0; i < n; i++) s += v[i];
    return s;
}
int main() {
    int xs[8];
    int i;
    for (i = 0; i < 8; i++) xs[i] = i;
    return sum(xs, 8);
}`)
	if code != 28 {
		t.Errorf("exit = %d, want 28", code)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{"int main() { return x; }", "undefined variable"},
		{"int main() { f(); }", "undefined function"},
		{"int f(int a) { return a; } int main() { return f(); }", "expects 1 arguments"},
		{"int main() { 1 = 2; }", "not assignable"},
		{"int main() { int x; int x; }", "duplicate"},
		{"int f() { return 1; } int f() { return 2; } int main(){return 0;}", "duplicate function"},
		{"int g() { return 1; }", "no main"},
		{"int main() { break; }", "outside a loop"},
		{"void v() {} int main() { return v() + 1; }", ""},
		{"int main() { return *3; }", "dereference"},
		{"int main() { return 1 +; }", "unexpected"},
		{"int main() { char *p; p = p + p; }", "cannot add two pointers"},
	}
	for _, c := range cases {
		_, err := CompileMIPS("t", c.src)
		if c.frag == "" {
			continue // just must not panic; result unspecified
		}
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("src %q: error = %v, want containing %q", c.src, err, c.frag)
		}
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{
		"int main() { return '\\q'; }",
		"int main() { return \"unterminated; }",
		"int main() { /* unterminated",
		"int main() { return `; }",
	} {
		if _, err := CompileMIPS("t", src); err == nil {
			t.Errorf("src %q should fail to lex", src)
		}
	}
}

func TestDelaySlotNops(t *testing.T) {
	// The compiled output must contain nop-filled delay slots (encoded as
	// sll, the paper's footnote about inflated sll counts).
	prog, err := CompileMIPS("t", "int main() { int i; int s = 0; for (i=0;i<3;i++) s+=i; return s; }")
	if err != nil {
		t.Fatal(err)
	}
	nops := 0
	for _, w := range prog.Text {
		if w == 0 {
			nops++
		}
	}
	if nops < 3 {
		t.Errorf("expected nop-filled delay slots, found %d", nops)
	}
}

func TestInterpretedMatchesNative(t *testing.T) {
	// Architectural equivalence between the two execution modes for a
	// program with arithmetic, memory, calls and I/O.
	src := WithStdlib(`
int fact(int n) { if (n < 2) return 1; return n * fact(n - 1); }
int main() {
    putn(fact(6));
    return fact(5) % 100;
}`)
	prog, err := CompileMIPS("t", src)
	if err != nil {
		t.Fatal(err)
	}
	os1 := vfs.New()
	nat, err := mipsi.NewNative(prog, os1, trace.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := nat.Run(0); err != nil {
		t.Fatal(err)
	}

	prog2, _ := CompileMIPS("t", src)
	os2 := vfs.New()
	img, p := newTestProbe()
	os2.Instrument(img, p)
	ip, err := mipsi.New(prog2, os2, img, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := ip.Run(0); err != nil {
		t.Fatal(err)
	}

	if nat.M.ExitCode != ip.M.ExitCode || nat.M.ExitCode != 20 {
		t.Errorf("exit codes: native=%d interp=%d, want 20", nat.M.ExitCode, ip.M.ExitCode)
	}
	if os1.Stdout.String() != "720" || os2.Stdout.String() != "720" {
		t.Errorf("stdout: native=%q interp=%q", os1.Stdout.String(), os2.Stdout.String())
	}
	if nat.M.Steps != ip.M.Steps {
		t.Errorf("instruction counts differ: %d vs %d", nat.M.Steps, ip.M.Steps)
	}
}

func TestCharSignednessAndPointers(t *testing.T) {
	code, _ := runMC(t, `
char buf[4];
int main() {
    buf[0] = 200;          // stored as byte
    int v = buf[0];        // lb sign-extends: -56
    char *p = buf;
    *p = 'A';
    int w = *p;
    return (v == -56) + (w == 65);
}`)
	if code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
}

func TestTernaryAndLogicalValues(t *testing.T) {
	code, _ := runMC(t, `
int main() {
    int a = 5;
    int b = (a > 3) ? (a < 10 ? 1 : 2) : 3;
    int c = (a && 0) + (0 || a) + !a + !!a;
    return b * 10 + c;  // 1*10 + (0+1+0+1)
}`)
	if code != 12 {
		t.Errorf("exit = %d, want 12", code)
	}
}

func TestShortCircuitSideEffects(t *testing.T) {
	code, _ := runMC(t, `
int calls;
int bump() { calls++; return 1; }
int main() {
    int x = 0 && bump();   // bump not called
    int y = 1 || bump();   // bump not called
    int z = 1 && bump();   // bump called once
    return calls * 100 + x + y + z;  // 100 + 0 + 1 + 1
}`)
	if code != 102 {
		t.Errorf("exit = %d, want 102", code)
	}
}

func TestGlobalPointerTables(t *testing.T) {
	_, out := runMC(t, `
char *words[] = {"alpha", "beta", "gamma"};
int main() {
    int i;
    for (i = 0; i < 3; i++) { puts(words[i]); putc(' '); }
    return 0;
}`)
	if out != "alpha beta gamma " {
		t.Errorf("out = %q", out)
	}
}

func TestPrototypeMutualRecursion(t *testing.T) {
	code, _ := runMC(t, `
int odd(int n);
int even(int n) { if (n == 0) return 1; return odd(n - 1); }
int odd(int n) { if (n == 0) return 0; return even(n - 1); }
int main() { return even(10) * 10 + odd(7); }`)
	if code != 11 {
		t.Errorf("exit = %d, want 11", code)
	}
}

func TestPrototypeErrors(t *testing.T) {
	if _, err := CompileMIPS("t", "int f(int a); int main() { return f(1); }"); err == nil {
		t.Error("undefined prototype must fail")
	}
	if _, err := CompileMIPS("t", "int f(int a, int b); int f(int a) { return a; } int main() { return f(1); }"); err == nil {
		t.Error("prototype/definition mismatch must fail")
	}
}
