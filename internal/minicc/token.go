// Package minicc is a small C compiler — the toolchain substrate of the
// laboratory.  The paper's MIPSI workloads are C programs compiled for
// Ultrix; ours are written in mini-C and compiled by this package to the
// MIPS R3000 subset (via internal/mips/asm) or to the Java-analog bytecode
// of internal/jvm, so the same source can serve as a MIPSI guest binary, a
// native baseline, and a JVM-interpreted class.
//
// The language is a C subset: int/char/void, pointers and one-dimensional
// arrays, globals with initializers, functions (up to four arguments, in
// registers), the full C statement repertoire (if/else, while, for, break,
// continue, return) and expression operators, string and character
// literals, and `native` declarations that bind a function to the host's
// native-library registry (JVM backend only; the MIPS backend exposes the
// OS through the __syscall-style intrinsics _exit, _read, _write, _open,
// _close and _sbrk, which both backends accept).
package minicc

import "fmt"

// TokKind classifies tokens.
type TokKind uint8

const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokString
	TokChar
	TokPunct   // operators and delimiters
	TokKeyword // language keywords
)

// Token is one lexeme with its source position.
type Token struct {
	Kind TokKind
	Text string
	Num  int32 // value for TokNumber and TokChar
	Str  []byte
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of file"
	case TokNumber:
		return fmt.Sprintf("number %d", t.Num)
	case TokString:
		return fmt.Sprintf("string %q", t.Str)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

var keywords = map[string]bool{
	"int": true, "char": true, "void": true,
	"if": true, "else": true, "while": true, "for": true,
	"return": true, "break": true, "continue": true,
	"native": true,
}

// punctuators, longest first so the lexer can use greedy matching.
var punctuators = []string{
	"<<=", ">>=",
	"==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
	"+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
	"(", ")", "{", "}", "[", "]", ";", ",", "?", ":",
}

// Error is a compilation failure with position.
type Error struct {
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("minicc: %d:%d: %s", e.Line, e.Col, e.Msg) }

func errAt(t Token, format string, args ...any) error {
	return &Error{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}
