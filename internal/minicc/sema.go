package minicc

import "fmt"

// Intrinsic OS interface, available in both backends: the MIPS backend
// lowers these to syscalls, the JVM backend to native methods.
var Intrinsics = []*FuncDecl{
	{Name: "_exit", Ret: VoidType, Native: true, Params: []*LocalVar{{Name: "code", Type: IntType}}},
	{Name: "_read", Ret: IntType, Native: true, Params: []*LocalVar{{Name: "fd", Type: IntType}, {Name: "buf", Type: PointerTo(CharType)}, {Name: "n", Type: IntType}}},
	{Name: "_write", Ret: IntType, Native: true, Params: []*LocalVar{{Name: "fd", Type: IntType}, {Name: "buf", Type: PointerTo(CharType)}, {Name: "n", Type: IntType}}},
	{Name: "_open", Ret: IntType, Native: true, Params: []*LocalVar{{Name: "path", Type: PointerTo(CharType)}, {Name: "flags", Type: IntType}}},
	{Name: "_close", Ret: IntType, Native: true, Params: []*LocalVar{{Name: "fd", Type: IntType}}},
	{Name: "_sbrk", Ret: PointerTo(CharType), Native: true, Params: []*LocalVar{{Name: "n", Type: IntType}}},
}

// IsIntrinsic reports whether fn is one of the predeclared OS intrinsics.
func IsIntrinsic(fn *FuncDecl) bool {
	for _, in := range Intrinsics {
		if in == fn {
			return true
		}
	}
	return false
}

// Frame layout constants (offsets from $sp in the MIPS backend; slot
// numbering in the JVM backend reuses Offset/4).
const (
	// SpillBase..SpillBase+31: expression temporaries saved across calls.
	SpillBase = 0
	// RAOffset holds the saved return address.
	RAOffset = 32
	// VarBase is where named locals start.
	VarBase = 36
	// MaxArgs is the number of register-passed arguments supported.
	MaxArgs = 4
)

type checker struct {
	unit    *Unit
	funcs   map[string]*FuncDecl
	globals map[string]*GlobalVar
	scopes  []map[string]*LocalVar
	fn      *FuncDecl
	loop    int
}

// Check resolves names, types every expression, and lays out frames.
func Check(u *Unit) error {
	c := &checker{
		unit:    u,
		funcs:   make(map[string]*FuncDecl),
		globals: make(map[string]*GlobalVar),
	}
	for _, in := range Intrinsics {
		c.funcs[in.Name] = in
	}
	// Definitions first, so calls through a forward declaration resolve
	// to the body; prototypes fill gaps (and are an error if never
	// defined but called).
	for _, f := range u.Funcs {
		if f.Proto {
			continue
		}
		if _, dup := c.funcs[f.Name]; dup {
			return fmt.Errorf("minicc: duplicate function %s", f.Name)
		}
		// The register-argument limit binds compiled functions only;
		// natives receive their arguments through the VM.
		if !f.Native && len(f.Params) > MaxArgs {
			return fmt.Errorf("minicc: %s: more than %d parameters", f.Name, MaxArgs)
		}
		c.funcs[f.Name] = f
	}
	for _, f := range u.Funcs {
		if !f.Proto {
			continue
		}
		if def, ok := c.funcs[f.Name]; ok {
			if len(def.Params) != len(f.Params) {
				return fmt.Errorf("minicc: %s: prototype disagrees with definition", f.Name)
			}
			continue
		}
		return fmt.Errorf("minicc: %s: declared but never defined", f.Name)
	}
	for _, g := range u.Globals {
		if _, dup := c.globals[g.Name]; dup {
			return fmt.Errorf("minicc: duplicate global %s", g.Name)
		}
		if g.Type.Size() <= 0 {
			return fmt.Errorf("minicc: global %s has empty type", g.Name)
		}
		c.globals[g.Name] = g
		for _, e := range g.Init {
			if err := c.constInit(e); err != nil {
				return err
			}
		}
	}
	for _, f := range u.Funcs {
		if f.Native || f.Proto {
			continue
		}
		if err := c.checkFunc(f); err != nil {
			return err
		}
	}
	if main := u.Func("main"); main == nil {
		return fmt.Errorf("minicc: no main function")
	}
	return nil
}

// constInit checks a global initializer: literals and negated literals only.
func (c *checker) constInit(e *Expr) error {
	switch e.Kind {
	case ExprNum:
		e.Type = IntType
		return nil
	case ExprStr:
		e.Type = PointerTo(CharType)
		return nil
	case ExprUnary:
		if e.Op == "-" && e.X.Kind == ExprNum {
			e.Kind = ExprNum
			e.Num = -e.X.Num
			e.Type = IntType
			return nil
		}
	}
	return errAt(e.Tok, "global initializers must be constants")
}

func (c *checker) checkFunc(f *FuncDecl) error {
	c.fn = f
	c.scopes = []map[string]*LocalVar{{}}
	offset := VarBase
	addVar := func(v *LocalVar) error {
		top := c.scopes[len(c.scopes)-1]
		if _, dup := top[v.Name]; dup {
			return fmt.Errorf("minicc: %s: duplicate variable %s", f.Name, v.Name)
		}
		size := (v.Type.Size() + 3) &^ 3
		v.Offset = offset
		offset += size
		top[v.Name] = v
		f.Locals = append(f.Locals, v)
		return nil
	}
	for _, pv := range f.Params {
		if err := addVar(pv); err != nil {
			return err
		}
	}
	var walk func(stmts []*Stmt) error
	walk = func(stmts []*Stmt) error {
		c.scopes = append(c.scopes, map[string]*LocalVar{})
		defer func() { c.scopes = c.scopes[:len(c.scopes)-1] }()
		for _, s := range stmts {
			switch s.Kind {
			case StmtDecl:
				if s.Decl.Init != nil {
					if err := c.checkExpr(s.Decl.Init); err != nil {
						return err
					}
					if !s.Decl.Type.IsScalar() {
						return errAt(s.Tok, "cannot initialize array %s with an expression", s.Decl.Name)
					}
				}
				if err := addVar(s.Decl); err != nil {
					return err
				}
			case StmtExpr:
				if err := c.checkExpr(s.Expr); err != nil {
					return err
				}
			case StmtIf:
				if err := c.checkExpr(s.Expr); err != nil {
					return err
				}
				if err := walk(s.Body); err != nil {
					return err
				}
				if s.Else != nil {
					if err := walk(s.Else); err != nil {
						return err
					}
				}
			case StmtWhile:
				if err := c.checkExpr(s.Expr); err != nil {
					return err
				}
				c.loop++
				if err := walk(s.Body); err != nil {
					return err
				}
				c.loop--
			case StmtFor:
				c.scopes = append(c.scopes, map[string]*LocalVar{})
				if s.Init != nil {
					if err := walk([]*Stmt{s.Init}); err != nil {
						return err
					}
					// walk pushed/popped its own scope; re-add the decl
					// to the for scope so cond/post/body can see it.
					if s.Init.Kind == StmtDecl {
						c.scopes[len(c.scopes)-1][s.Init.Decl.Name] = s.Init.Decl
					}
				}
				if s.Expr != nil {
					if err := c.checkExpr(s.Expr); err != nil {
						return err
					}
				}
				if s.Post != nil {
					if err := c.checkExpr(s.Post); err != nil {
						return err
					}
				}
				c.loop++
				err := walk(s.Body)
				c.loop--
				c.scopes = c.scopes[:len(c.scopes)-1]
				if err != nil {
					return err
				}
			case StmtReturn:
				if s.Expr != nil {
					if err := c.checkExpr(s.Expr); err != nil {
						return err
					}
					if f.Ret.Kind == TypeVoid {
						return errAt(s.Tok, "%s: returning a value from a void function", f.Name)
					}
				} else if f.Ret.Kind != TypeVoid {
					return errAt(s.Tok, "%s: missing return value", f.Name)
				}
			case StmtBreak, StmtContinue:
				if c.loop == 0 {
					return errAt(s.Tok, "break/continue outside a loop")
				}
			case StmtBlock:
				if err := walk(s.Body); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(f.Body); err != nil {
		return err
	}
	// Walk assigned offsets lazily via addVar in declaration order, so the
	// final offset is the frame requirement.
	f.FrameSize = (offset + 7) &^ 7
	return nil
}

func (c *checker) lookup(name string) *LocalVar {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if v, ok := c.scopes[i][name]; ok {
			return v
		}
	}
	return nil
}

// isLvalue reports whether e designates storage.
func isLvalue(e *Expr) bool {
	switch e.Kind {
	case ExprIdent:
		return e.Type.Kind != TypeArray // arrays are not assignable
	case ExprIndex:
		return true
	case ExprUnary:
		return e.Op == "*"
	}
	return false
}

func (c *checker) checkExpr(e *Expr) error {
	switch e.Kind {
	case ExprNum:
		e.Type = IntType

	case ExprStr:
		e.Type = PointerTo(CharType)

	case ExprIdent:
		if v := c.lookup(e.Name); v != nil {
			e.Local = v
			e.Type = v.Type
		} else if g, ok := c.globals[e.Name]; ok {
			e.Global = g
			e.Type = g.Type
		} else {
			return errAt(e.Tok, "undefined variable %s", e.Name)
		}

	case ExprUnary:
		if err := c.checkExpr(e.X); err != nil {
			return err
		}
		switch e.Op {
		case "!", "~", "-":
			if !e.X.Type.Decay().IsScalar() {
				return errAt(e.Tok, "operand of %s must be scalar", e.Op)
			}
			e.Type = IntType
		case "*":
			t := e.X.Type.Decay()
			if t.Kind != TypePointer {
				return errAt(e.Tok, "cannot dereference %s", e.X.Type)
			}
			e.Type = t.Elem
		case "&":
			if !isLvalue(e.X) && e.X.Type.Kind != TypeArray {
				return errAt(e.Tok, "cannot take the address of this expression")
			}
			if e.X.Type.Kind == TypeArray {
				e.Type = PointerTo(e.X.Type.Elem)
			} else {
				e.Type = PointerTo(e.X.Type)
			}
		case "++", "--":
			if !isLvalue(e.X) {
				return errAt(e.Tok, "%s needs an lvalue", e.Op)
			}
			e.Type = e.X.Type
		}

	case ExprPostfix:
		if err := c.checkExpr(e.X); err != nil {
			return err
		}
		if !isLvalue(e.X) {
			return errAt(e.Tok, "%s needs an lvalue", e.Op)
		}
		e.Type = e.X.Type

	case ExprBinary:
		if err := c.checkExpr(e.X); err != nil {
			return err
		}
		if err := c.checkExpr(e.Y); err != nil {
			return err
		}
		xt, yt := e.X.Type.Decay(), e.Y.Type.Decay()
		if !xt.IsScalar() || !yt.IsScalar() {
			return errAt(e.Tok, "operands of %s must be scalar", e.Op)
		}
		switch e.Op {
		case "+":
			switch {
			case xt.Kind == TypePointer && yt.Kind != TypePointer:
				e.Type = xt
			case yt.Kind == TypePointer && xt.Kind != TypePointer:
				e.Type = yt
			case xt.Kind == TypePointer && yt.Kind == TypePointer:
				return errAt(e.Tok, "cannot add two pointers")
			default:
				e.Type = IntType
			}
		case "-":
			switch {
			case xt.Kind == TypePointer && yt.Kind == TypePointer:
				e.Type = IntType
			case xt.Kind == TypePointer:
				e.Type = xt
			case yt.Kind == TypePointer:
				return errAt(e.Tok, "cannot subtract a pointer from an integer")
			default:
				e.Type = IntType
			}
		default:
			e.Type = IntType
		}

	case ExprAssign:
		if err := c.checkExpr(e.X); err != nil {
			return err
		}
		if err := c.checkExpr(e.Y); err != nil {
			return err
		}
		if !isLvalue(e.X) {
			return errAt(e.Tok, "left side of %s is not assignable", e.Op)
		}
		if !e.Y.Type.Decay().IsScalar() {
			return errAt(e.Tok, "right side of %s must be scalar", e.Op)
		}
		e.Type = e.X.Type

	case ExprCond:
		for _, sub := range []*Expr{e.X, e.Y, e.Z} {
			if err := c.checkExpr(sub); err != nil {
				return err
			}
		}
		e.Type = e.Y.Type.Decay()

	case ExprIndex:
		if err := c.checkExpr(e.X); err != nil {
			return err
		}
		if err := c.checkExpr(e.Y); err != nil {
			return err
		}
		t := e.X.Type.Decay()
		if t.Kind != TypePointer {
			return errAt(e.Tok, "cannot index %s", e.X.Type)
		}
		if !e.Y.Type.Decay().IsScalar() {
			return errAt(e.Tok, "index must be scalar")
		}
		e.Type = t.Elem

	case ExprCall:
		fn, ok := c.funcs[e.Name]
		if !ok {
			return errAt(e.Tok, "undefined function %s", e.Name)
		}
		if len(e.Args) != len(fn.Params) {
			return errAt(e.Tok, "%s expects %d arguments, got %d", e.Name, len(fn.Params), len(e.Args))
		}
		for _, a := range e.Args {
			if err := c.checkExpr(a); err != nil {
				return err
			}
			if !a.Type.Decay().IsScalar() {
				return errAt(a.Tok, "argument to %s must be scalar", e.Name)
			}
		}
		e.Func = fn
		e.Type = fn.Ret

	default:
		return errAt(e.Tok, "internal: unknown expression kind %d", e.Kind)
	}
	return nil
}

// ElemStride returns the pointer-arithmetic scale for a decayed type.
func ElemStride(t *Type) int {
	d := t.Decay()
	if d.Kind == TypePointer {
		return d.Elem.Size()
	}
	return 1
}
