package minicc

import (
	"strings"
)

type lexer struct {
	src  string
	pos  int
	line int
	col  int
	toks []Token
}

// lex tokenizes src.
func lex(src string) ([]Token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, tok)
		if tok.Kind == TokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) at(i int) byte {
	if l.pos+i >= len(l.src) {
		return 0
	}
	return l.src[l.pos+i]
}

func (l *lexer) advance(n int) {
	for i := 0; i < n && l.pos < len(l.src); i++ {
		if l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *lexer) errf(format string, args ...any) error {
	return errAt(Token{Line: l.line, Col: l.col}, format, args...)
}

func isAlpha(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}
func isDigit(c byte) bool    { return c >= '0' && c <= '9' }
func isAlnum(c byte) bool    { return isAlpha(c) || isDigit(c) }
func isHexDigit(c byte) bool { return isDigit(c) || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F' }

func (l *lexer) skipSpaceAndComments() error {
	for {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance(1)
		case c == '/' && l.at(1) == '/':
			for l.peekByte() != 0 && l.peekByte() != '\n' {
				l.advance(1)
			}
		case c == '/' && l.at(1) == '*':
			l.advance(2)
			for {
				if l.peekByte() == 0 {
					return l.errf("unterminated comment")
				}
				if l.peekByte() == '*' && l.at(1) == '/' {
					l.advance(2)
					break
				}
				l.advance(1)
			}
		default:
			return nil
		}
	}
}

func (l *lexer) next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	tok := Token{Line: l.line, Col: l.col}
	c := l.peekByte()
	switch {
	case c == 0:
		tok.Kind = TokEOF
		return tok, nil

	case isAlpha(c):
		start := l.pos
		for isAlnum(l.peekByte()) {
			l.advance(1)
		}
		tok.Text = l.src[start:l.pos]
		if keywords[tok.Text] {
			tok.Kind = TokKeyword
		} else {
			tok.Kind = TokIdent
		}
		return tok, nil

	case isDigit(c):
		tok.Kind = TokNumber
		var v int64
		if c == '0' && (l.at(1) == 'x' || l.at(1) == 'X') {
			l.advance(2)
			if !isHexDigit(l.peekByte()) {
				return tok, l.errf("malformed hex literal")
			}
			for isHexDigit(l.peekByte()) {
				d := l.peekByte()
				switch {
				case isDigit(d):
					v = v*16 + int64(d-'0')
				case d >= 'a':
					v = v*16 + int64(d-'a'+10)
				default:
					v = v*16 + int64(d-'A'+10)
				}
				l.advance(1)
			}
		} else {
			for isDigit(l.peekByte()) {
				v = v*10 + int64(l.peekByte()-'0')
				l.advance(1)
			}
		}
		tok.Num = int32(v)
		return tok, nil

	case c == '\'':
		l.advance(1)
		v, err := l.escapedChar('\'')
		if err != nil {
			return tok, err
		}
		if l.peekByte() != '\'' {
			return tok, l.errf("unterminated character literal")
		}
		l.advance(1)
		tok.Kind = TokChar
		tok.Num = int32(v)
		return tok, nil

	case c == '"':
		l.advance(1)
		var out []byte
		for {
			if l.peekByte() == 0 || l.peekByte() == '\n' {
				return tok, l.errf("unterminated string literal")
			}
			if l.peekByte() == '"' {
				l.advance(1)
				break
			}
			v, err := l.escapedChar('"')
			if err != nil {
				return tok, err
			}
			out = append(out, v)
		}
		tok.Kind = TokString
		tok.Str = out
		return tok, nil
	}

	for _, p := range punctuators {
		if strings.HasPrefix(l.src[l.pos:], p) {
			l.advance(len(p))
			tok.Kind = TokPunct
			tok.Text = p
			return tok, nil
		}
	}
	return tok, l.errf("unexpected character %q", c)
}

// escapedChar consumes one possibly-escaped character inside a literal.
func (l *lexer) escapedChar(quote byte) (byte, error) {
	c := l.peekByte()
	if c != '\\' {
		l.advance(1)
		return c, nil
	}
	l.advance(1)
	e := l.peekByte()
	l.advance(1)
	switch e {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\':
		return '\\', nil
	case '\'':
		return '\'', nil
	case '"':
		return '"', nil
	}
	return 0, l.errf("unknown escape \\%c", e)
}
