package minicc

import "fmt"

// genExpr leaves the value of e in reg(d).
func (g *mipsGen) genExpr(e *Expr, d int) error {
	if d >= maxDepth {
		return errAt(e.Tok, "expression too complex")
	}
	switch e.Kind {
	case ExprNum:
		g.emit("li %s, %d", reg(d), e.Num)
		return nil

	case ExprStr:
		g.emit("la %s, %s", reg(d), g.strLabel(e.Str))
		return nil

	case ExprIdent:
		if e.Type.Kind == TypeArray {
			return g.genAddr(e, d) // decay to base address
		}
		switch {
		case e.Local != nil:
			g.loadFrom(e.Type, fmt.Sprintf("%d($sp)", e.Local.Offset), reg(d))
		case e.Global != nil:
			g.emit("la %s, %s", reg(d), e.Global.Name)
			g.loadFrom(e.Type, fmt.Sprintf("0(%s)", reg(d)), reg(d))
		}
		return nil

	case ExprUnary:
		return g.genUnary(e, d)

	case ExprPostfix:
		// Old value is the result; the slot is then bumped.
		if err := g.genAddr(e.X, d+1); err != nil {
			return err
		}
		g.loadFrom(e.X.Type, fmt.Sprintf("0(%s)", reg(d+1)), reg(d))
		delta := 1
		if e.X.Type.Decay().Kind == TypePointer {
			delta = ElemStride(e.X.Type)
		}
		if e.Op == "--" {
			delta = -delta
		}
		g.emit("addiu $t8, %s, %d", reg(d), delta)
		g.storeTo(e.X.Type, fmt.Sprintf("0(%s)", reg(d+1)), "$t8")
		return nil

	case ExprBinary:
		return g.genBinary(e, d)

	case ExprAssign:
		return g.genAssign(e, d)

	case ExprCond:
		elseL, endL := g.newLabel("celse"), g.newLabel("cend")
		if err := g.genExpr(e.X, d); err != nil {
			return err
		}
		g.emit("beqz %s, %s", reg(d), elseL)
		g.emit("nop")
		if err := g.genExpr(e.Y, d); err != nil {
			return err
		}
		g.emit("b %s", endL)
		g.emit("nop")
		g.label(elseL)
		if err := g.genExpr(e.Z, d); err != nil {
			return err
		}
		g.label(endL)
		return nil

	case ExprIndex:
		if err := g.genAddr(e, d); err != nil {
			return err
		}
		if e.Type.Kind == TypeArray {
			return nil // nested array decays to the element address
		}
		g.loadFrom(e.Type, fmt.Sprintf("0(%s)", reg(d)), reg(d))
		return nil

	case ExprCall:
		return g.genCall(e, d)
	}
	return errAt(e.Tok, "internal: unknown expression kind %d", e.Kind)
}

func (g *mipsGen) genUnary(e *Expr, d int) error {
	switch e.Op {
	case "-":
		if err := g.genExpr(e.X, d); err != nil {
			return err
		}
		g.emit("subu %s, $zero, %s", reg(d), reg(d))
	case "~":
		if err := g.genExpr(e.X, d); err != nil {
			return err
		}
		g.emit("nor %s, %s, $zero", reg(d), reg(d))
	case "!":
		if err := g.genExpr(e.X, d); err != nil {
			return err
		}
		g.emit("sltiu %s, %s, 1", reg(d), reg(d))
	case "*":
		if err := g.genExpr(e.X, d); err != nil {
			return err
		}
		if e.Type.Kind == TypeArray {
			return nil
		}
		g.loadFrom(e.Type, fmt.Sprintf("0(%s)", reg(d)), reg(d))
	case "&":
		return g.genAddr(e.X, d)
	case "++", "--":
		if err := g.genAddr(e.X, d+1); err != nil {
			return err
		}
		g.loadFrom(e.X.Type, fmt.Sprintf("0(%s)", reg(d+1)), reg(d))
		delta := 1
		if e.X.Type.Decay().Kind == TypePointer {
			delta = ElemStride(e.X.Type)
		}
		if e.Op == "--" {
			delta = -delta
		}
		g.emit("addiu %s, %s, %d", reg(d), reg(d), delta)
		g.storeTo(e.X.Type, fmt.Sprintf("0(%s)", reg(d+1)), reg(d))
	default:
		return errAt(e.Tok, "internal: unary %s", e.Op)
	}
	return nil
}

func (g *mipsGen) genBinary(e *Expr, d int) error {
	// Short-circuit forms first.
	if e.Op == "&&" || e.Op == "||" {
		end := g.newLabel("sc")
		if err := g.genExpr(e.X, d); err != nil {
			return err
		}
		g.emit("sltu %s, $zero, %s", reg(d), reg(d)) // normalize to 0/1
		if e.Op == "&&" {
			g.emit("beqz %s, %s", reg(d), end)
		} else {
			g.emit("bnez %s, %s", reg(d), end)
		}
		g.emit("nop")
		if err := g.genExpr(e.Y, d); err != nil {
			return err
		}
		g.emit("sltu %s, $zero, %s", reg(d), reg(d))
		g.label(end)
		return nil
	}

	if err := g.genExpr(e.X, d); err != nil {
		return err
	}
	if err := g.genExpr(e.Y, d+1); err != nil {
		return err
	}
	a, b := reg(d), reg(d+1)

	// Pointer arithmetic scaling.
	xt, yt := e.X.Type.Decay(), e.Y.Type.Decay()
	if e.Op == "+" || e.Op == "-" {
		switch {
		case xt.Kind == TypePointer && yt.Kind != TypePointer:
			g.scale(d+1, xt.Elem.Size())
		case yt.Kind == TypePointer && xt.Kind != TypePointer:
			g.scale(d, yt.Elem.Size())
		}
	}

	g.binOp(e.Op, a, b, d, e)
	if e.Op == "-" && xt.Kind == TypePointer && yt.Kind == TypePointer {
		// Pointer difference: scale back down to elements.
		sz := xt.Elem.Size()
		if sz > 1 {
			g.emit("li $t8, %d", sz)
			g.emit("div %s, $t8", a)
			g.emit("mflo %s", a)
		}
	}
	return nil
}

// binOp emits the instruction(s) for op with operands a, b into a.
func (g *mipsGen) binOp(op, a, b string, d int, e *Expr) {
	switch op {
	case "+":
		g.emit("addu %s, %s, %s", a, a, b)
	case "-":
		g.emit("subu %s, %s, %s", a, a, b)
	case "*":
		g.emit("mult %s, %s", a, b)
		g.emit("mflo %s", a)
	case "/":
		g.emit("div %s, %s", a, b)
		g.emit("mflo %s", a)
	case "%":
		g.emit("div %s, %s", a, b)
		g.emit("mfhi %s", a)
	case "<<":
		g.emit("sllv %s, %s, %s", a, a, b)
	case ">>":
		g.emit("srav %s, %s, %s", a, a, b)
	case "&":
		g.emit("and %s, %s, %s", a, a, b)
	case "|":
		g.emit("or %s, %s, %s", a, a, b)
	case "^":
		g.emit("xor %s, %s, %s", a, a, b)
	case "<":
		g.emit("slt %s, %s, %s", a, a, b)
	case ">":
		g.emit("slt %s, %s, %s", a, b, a)
	case "<=":
		g.emit("slt %s, %s, %s", a, b, a)
		g.emit("xori %s, %s, 1", a, a)
	case ">=":
		g.emit("slt %s, %s, %s", a, a, b)
		g.emit("xori %s, %s, 1", a, a)
	case "==":
		g.emit("xor %s, %s, %s", a, a, b)
		g.emit("sltiu %s, %s, 1", a, a)
	case "!=":
		g.emit("xor %s, %s, %s", a, a, b)
		g.emit("sltu %s, $zero, %s", a, a)
	}
}

func (g *mipsGen) genAssign(e *Expr, d int) error {
	if err := g.genAddr(e.X, d+1); err != nil {
		return err
	}
	if err := g.genExpr(e.Y, d+2); err != nil {
		return err
	}
	if e.Op == "=" {
		g.storeTo(e.X.Type, fmt.Sprintf("0(%s)", reg(d+1)), reg(d+2))
		g.emit("move %s, %s", reg(d), reg(d+2))
		return nil
	}
	// Compound: load old, apply, store.
	g.loadFrom(e.X.Type, fmt.Sprintf("0(%s)", reg(d+1)), reg(d))
	op := e.Op[:len(e.Op)-1]
	if (op == "+" || op == "-") && e.X.Type.Decay().Kind == TypePointer {
		g.scale(d+2, ElemStride(e.X.Type))
	}
	g.binOp(op, reg(d), reg(d+2), d, e)
	g.storeTo(e.X.Type, fmt.Sprintf("0(%s)", reg(d+1)), reg(d))
	return nil
}

func (g *mipsGen) genCall(e *Expr, d int) error {
	fn := e.Func
	// Evaluate arguments into consecutive slots above d.
	for i, a := range e.Args {
		if err := g.genExpr(a, d+i); err != nil {
			return err
		}
	}
	// Save live temps (slots 0..d+nargs-1) across the call.
	live := d + len(e.Args)
	if live > maxDepth {
		return errAt(e.Tok, "expression too complex")
	}
	for i := 0; i < live; i++ {
		g.emit("sw %s, %d($sp)", reg(i), SpillBase+i*4)
	}
	for i := range e.Args {
		g.emit("lw $a%d, %d($sp)", i, SpillBase+(d+i)*4)
	}
	if fn.Native {
		num := intrinsicSyscall[fn.Name]
		g.emit("li $v0, %d", num)
		g.emit("syscall")
		g.emit("nop")
	} else {
		g.emit("jal %s", fn.Name)
		g.emit("nop")
	}
	for i := 0; i < d; i++ {
		g.emit("lw %s, %d($sp)", reg(i), SpillBase+i*4)
	}
	g.emit("move %s, $v0", reg(d))
	return nil
}
