package minicc

import (
	"fmt"
	"strings"

	"interplab/internal/mips"
	"interplab/internal/mips/asm"
)

// CompileMIPS compiles source to a loaded MIPS program image.
func CompileMIPS(name, src string) (*mips.Program, error) {
	u, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if err := Check(u); err != nil {
		return nil, err
	}
	text, err := GenMIPS(u)
	if err != nil {
		return nil, err
	}
	return asm.Assemble(name, text)
}

// GenMIPS lowers a checked unit to assembly text.
func GenMIPS(u *Unit) (string, error) {
	g := &mipsGen{unit: u, strings: make(map[string]string)}
	if err := g.run(); err != nil {
		return "", err
	}
	return g.buf.String(), nil
}

// syscall numbers for the intrinsics (see internal/mipsi).
var intrinsicSyscall = map[string]int{
	"_exit": 1, "_read": 3, "_write": 4, "_open": 5, "_close": 6, "_sbrk": 9,
}

type mipsGen struct {
	unit    *Unit
	buf     strings.Builder
	strings map[string]string // literal -> label
	// strOrder keeps literals in first-use order: the string pool must lay
	// out identically on every compile or guest data addresses (and with
	// them the emitted event stream) would vary run to run.
	strOrder []string
	nlabel   int
	fn       *FuncDecl
	epi      string
	brks     []string
	conts    []string
}

func (g *mipsGen) emit(format string, args ...any) {
	fmt.Fprintf(&g.buf, "\t"+format+"\n", args...)
}

func (g *mipsGen) label(l string) { fmt.Fprintf(&g.buf, "%s:\n", l) }

func (g *mipsGen) newLabel(hint string) string {
	g.nlabel++
	return fmt.Sprintf("L%s%d", hint, g.nlabel)
}

func (g *mipsGen) strLabel(s []byte) string {
	key := string(s)
	if l, ok := g.strings[key]; ok {
		return l
	}
	l := g.newLabel("str")
	g.strings[key] = l
	g.strOrder = append(g.strOrder, key)
	return l
}

// reg returns the temp register holding expression-stack slot d.
func reg(d int) string { return fmt.Sprintf("$t%d", d) }

const maxDepth = 8

func (g *mipsGen) run() error {
	g.buf.WriteString("\t.text\n")
	// Runtime startup: call main, pass its result to exit.
	g.label("_start")
	g.emit("jal main")
	g.emit("nop")
	g.emit("move $a0, $v0")
	g.emit("li $v0, 1")
	g.emit("syscall")
	g.emit("nop")

	for _, f := range g.unit.Funcs {
		if f.Proto {
			continue
		}
		if f.Native {
			if _, ok := intrinsicSyscall[f.Name]; !ok {
				return fmt.Errorf("minicc: %s: native functions are not available on the MIPS target", f.Name)
			}
			continue
		}
		if err := g.genFunc(f); err != nil {
			return err
		}
	}

	g.buf.WriteString("\t.data\n")
	for _, gv := range g.unit.Globals {
		g.label(gv.Name)
		switch {
		case gv.InitStr != nil:
			fmt.Fprintf(&g.buf, "\t.asciiz %s\n", quoteAsm(gv.InitStr))
			pad := gv.Type.Size() - len(gv.InitStr) - 1
			if pad > 0 {
				g.emit(".space %d", pad)
			}
		case gv.HasInit && gv.Type.Kind == TypeArray:
			elem := gv.Type.Elem
			for _, e := range gv.Init {
				switch {
				case e.Kind == ExprStr:
					g.emit(".word %s", g.strLabel(e.Str))
				case elem.Size() == 1:
					g.emit(".byte %d", e.Num)
				default:
					g.emit(".word %d", e.Num)
				}
			}
			pad := gv.Type.Size() - len(gv.Init)*elem.Size()
			if pad > 0 {
				g.emit(".space %d", pad)
			}
		case gv.HasInit:
			if gv.Init[0].Kind == ExprStr {
				g.emit(".word %s", g.strLabel(gv.Init[0].Str))
			} else {
				g.emit(".word %d", gv.Init[0].Num)
			}
		default:
			g.emit(".space %d", gv.Type.Size())
		}
		g.emit(".align 2")
	}
	// String pool, in first-use order.
	for _, key := range g.strOrder {
		g.label(g.strings[key])
		fmt.Fprintf(&g.buf, "\t.asciiz %s\n", quoteAsm([]byte(key)))
	}
	return nil
}

func quoteAsm(b []byte) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for _, c := range b {
		switch c {
		case '\n':
			sb.WriteString("\\n")
		case '\t':
			sb.WriteString("\\t")
		case '\r':
			sb.WriteString("\\r")
		case 0:
			sb.WriteString("\\0")
		case '"':
			sb.WriteString("\\\"")
		case '\\':
			sb.WriteString("\\\\")
		default:
			sb.WriteByte(c)
		}
	}
	sb.WriteByte('"')
	return sb.String()
}

func (g *mipsGen) genFunc(f *FuncDecl) error {
	g.fn = f
	g.epi = g.newLabel("epi")
	g.label(f.Name)
	g.emit("addiu $sp, $sp, -%d", f.FrameSize)
	g.emit("sw $ra, %d($sp)", RAOffset)
	args := []string{"$a0", "$a1", "$a2", "$a3"}
	for i, pv := range f.Params {
		g.emit("sw %s, %d($sp)", args[i], pv.Offset)
	}
	if err := g.genStmts(f.Body); err != nil {
		return err
	}
	// Fall off the end: return 0.
	g.emit("move $v0, $zero")
	g.label(g.epi)
	g.emit("lw $ra, %d($sp)", RAOffset)
	g.emit("addiu $sp, $sp, %d", f.FrameSize)
	g.emit("jr $ra")
	g.emit("nop")
	return nil
}

func (g *mipsGen) genStmts(stmts []*Stmt) error {
	for _, s := range stmts {
		if err := g.genStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *mipsGen) genStmt(s *Stmt) error {
	switch s.Kind {
	case StmtExpr:
		return g.genExpr(s.Expr, 0)

	case StmtDecl:
		if s.Decl.Init != nil {
			if err := g.genExpr(s.Decl.Init, 0); err != nil {
				return err
			}
			g.storeTo(s.Decl.Type, fmt.Sprintf("%d($sp)", s.Decl.Offset), reg(0))
		}
		return nil

	case StmtIf:
		elseL, endL := g.newLabel("else"), g.newLabel("endif")
		if err := g.genExpr(s.Expr, 0); err != nil {
			return err
		}
		g.emit("beqz %s, %s", reg(0), elseL)
		g.emit("nop")
		if err := g.genStmts(s.Body); err != nil {
			return err
		}
		if s.Else != nil {
			g.emit("b %s", endL)
			g.emit("nop")
		}
		g.label(elseL)
		if s.Else != nil {
			if err := g.genStmts(s.Else); err != nil {
				return err
			}
			g.label(endL)
		}
		return nil

	case StmtWhile:
		top, end := g.newLabel("while"), g.newLabel("wend")
		g.brks = append(g.brks, end)
		g.conts = append(g.conts, top)
		g.label(top)
		if err := g.genExpr(s.Expr, 0); err != nil {
			return err
		}
		g.emit("beqz %s, %s", reg(0), end)
		g.emit("nop")
		if err := g.genStmts(s.Body); err != nil {
			return err
		}
		g.emit("b %s", top)
		g.emit("nop")
		g.label(end)
		g.brks = g.brks[:len(g.brks)-1]
		g.conts = g.conts[:len(g.conts)-1]
		return nil

	case StmtFor:
		top, post, end := g.newLabel("for"), g.newLabel("fpost"), g.newLabel("fend")
		if s.Init != nil {
			if err := g.genStmt(s.Init); err != nil {
				return err
			}
		}
		g.brks = append(g.brks, end)
		g.conts = append(g.conts, post)
		g.label(top)
		if s.Expr != nil {
			if err := g.genExpr(s.Expr, 0); err != nil {
				return err
			}
			g.emit("beqz %s, %s", reg(0), end)
			g.emit("nop")
		}
		if err := g.genStmts(s.Body); err != nil {
			return err
		}
		g.label(post)
		if s.Post != nil {
			if err := g.genExpr(s.Post, 0); err != nil {
				return err
			}
		}
		g.emit("b %s", top)
		g.emit("nop")
		g.label(end)
		g.brks = g.brks[:len(g.brks)-1]
		g.conts = g.conts[:len(g.conts)-1]
		return nil

	case StmtReturn:
		if s.Expr != nil {
			if err := g.genExpr(s.Expr, 0); err != nil {
				return err
			}
			g.emit("move $v0, %s", reg(0))
		}
		g.emit("b %s", g.epi)
		g.emit("nop")
		return nil

	case StmtBreak:
		g.emit("b %s", g.brks[len(g.brks)-1])
		g.emit("nop")
		return nil

	case StmtContinue:
		g.emit("b %s", g.conts[len(g.conts)-1])
		g.emit("nop")
		return nil

	case StmtBlock:
		return g.genStmts(s.Body)
	}
	return fmt.Errorf("minicc: internal: unknown statement kind %d", s.Kind)
}

// loadFrom emits the correctly sized load for t from a memory operand.
func (g *mipsGen) loadFrom(t *Type, mem, dst string) {
	if t.Size() == 1 {
		g.emit("lb %s, %s", dst, mem)
	} else {
		g.emit("lw %s, %s", dst, mem)
	}
}

// storeTo emits the correctly sized store.
func (g *mipsGen) storeTo(t *Type, mem, src string) {
	if t.Size() == 1 {
		g.emit("sb %s, %s", src, mem)
	} else {
		g.emit("sw %s, %s", src, mem)
	}
}

// genAddr leaves the address of lvalue e in reg(d).
func (g *mipsGen) genAddr(e *Expr, d int) error {
	if d >= maxDepth {
		return errAt(e.Tok, "expression too complex")
	}
	switch e.Kind {
	case ExprIdent:
		switch {
		case e.Local != nil:
			g.emit("addiu %s, $sp, %d", reg(d), e.Local.Offset)
		case e.Global != nil:
			g.emit("la %s, %s", reg(d), e.Global.Name)
		}
		return nil
	case ExprIndex:
		if err := g.genExpr(e.X, d); err != nil { // decayed base pointer
			return err
		}
		if err := g.genExpr(e.Y, d+1); err != nil {
			return err
		}
		g.scale(d+1, e.Type.Size())
		g.emit("addu %s, %s, %s", reg(d), reg(d), reg(d+1))
		return nil
	case ExprUnary:
		if e.Op == "*" {
			return g.genExpr(e.X, d)
		}
	}
	return errAt(e.Tok, "internal: not an lvalue")
}

// scale multiplies reg(d) by a constant element size.
func (g *mipsGen) scale(d, size int) {
	switch size {
	case 1:
	case 2:
		g.emit("sll %s, %s, 1", reg(d), reg(d))
	case 4:
		g.emit("sll %s, %s, 2", reg(d), reg(d))
	default:
		g.emit("li $t8, %d", size)
		g.emit("mult %s, $t8", reg(d))
		g.emit("mflo %s", reg(d))
	}
}
