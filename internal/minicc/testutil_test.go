package minicc

import (
	"interplab/internal/atom"
	"interplab/internal/trace"
)

func newTestProbe() (*atom.Image, *atom.Probe) {
	img := atom.NewImage()
	return img, atom.NewProbe(img, trace.Discard)
}
