package minicc

type parser struct {
	toks []Token
	pos  int
}

// Parse lexes and parses a translation unit (no semantic checks yet).
func Parse(src string) (*Unit, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	u := &Unit{}
	for !p.at(TokEOF, "") {
		if err := p.topLevel(u); err != nil {
			return nil, err
		}
	}
	return u, nil
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind TokKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *parser) accept(kind TokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind TokKind, text string) (Token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = "identifier"
	}
	return p.cur(), errAt(p.cur(), "expected %q, found %s", want, p.cur())
}

// baseType parses int/char/void plus pointer stars.
func (p *parser) baseType() (*Type, error) {
	t := p.cur()
	var ty *Type
	switch {
	case p.accept(TokKeyword, "int"):
		ty = IntType
	case p.accept(TokKeyword, "char"):
		ty = CharType
	case p.accept(TokKeyword, "void"):
		ty = VoidType
	default:
		return nil, errAt(t, "expected type, found %s", t)
	}
	for p.accept(TokPunct, "*") {
		ty = PointerTo(ty)
	}
	return ty, nil
}

func (p *parser) atType() bool {
	return p.at(TokKeyword, "int") || p.at(TokKeyword, "char") || p.at(TokKeyword, "void")
}

func (p *parser) topLevel(u *Unit) error {
	native := p.accept(TokKeyword, "native")
	ty, err := p.baseType()
	if err != nil {
		return err
	}
	nameTok, err := p.expect(TokIdent, "")
	if err != nil {
		return err
	}

	if p.at(TokPunct, "(") {
		fn := &FuncDecl{Name: nameTok.Text, Ret: ty, Native: native}
		if err := p.funcRest(fn); err != nil {
			return err
		}
		u.Funcs = append(u.Funcs, fn)
		return nil
	}
	if native {
		return errAt(nameTok, "native requires a function declaration")
	}
	return p.globalRest(u, ty, nameTok)
}

func (p *parser) funcRest(fn *FuncDecl) error {
	if _, err := p.expect(TokPunct, "("); err != nil {
		return err
	}
	if !p.accept(TokPunct, ")") {
		if p.at(TokKeyword, "void") && p.toks[p.pos+1].Text == ")" {
			p.pos++ // f(void)
		} else {
			for {
				ty, err := p.baseType()
				if err != nil {
					return err
				}
				nt, err := p.expect(TokIdent, "")
				if err != nil {
					return err
				}
				if p.accept(TokPunct, "[") {
					if _, err := p.expect(TokPunct, "]"); err != nil {
						return err
					}
					ty = PointerTo(ty) // parameter arrays decay
				}
				fn.Params = append(fn.Params, &LocalVar{Name: nt.Text, Type: ty, IsParam: true})
				if !p.accept(TokPunct, ",") {
					break
				}
			}
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return err
		}
	}
	if p.accept(TokPunct, ";") {
		if !fn.Native {
			fn.Proto = true
		}
		return nil
	}
	if fn.Native {
		return errAt(p.cur(), "%s: native functions cannot have a body", fn.Name)
	}
	body, err := p.block()
	if err != nil {
		return err
	}
	fn.Body = body
	return nil
}

func (p *parser) globalRest(u *Unit, ty *Type, nameTok Token) error {
	for {
		g := &GlobalVar{Name: nameTok.Text, Type: ty}
		if p.accept(TokPunct, "[") {
			n := -1
			if p.cur().Kind == TokNumber {
				n = int(p.next().Num)
			}
			if _, err := p.expect(TokPunct, "]"); err != nil {
				return err
			}
			g.Type = ArrayOf(ty, n) // n == -1: size from initializer
		}
		if p.accept(TokPunct, "=") {
			g.HasInit = true
			switch {
			case p.cur().Kind == TokString && g.Type.Kind == TypeArray:
				g.InitStr = p.next().Str
			case p.accept(TokPunct, "{"):
				for !p.accept(TokPunct, "}") {
					e, err := p.assignExpr()
					if err != nil {
						return err
					}
					g.Init = append(g.Init, e)
					if !p.accept(TokPunct, ",") && !p.at(TokPunct, "}") {
						return errAt(p.cur(), "expected , or } in initializer")
					}
				}
			default:
				e, err := p.assignExpr()
				if err != nil {
					return err
				}
				g.Init = append(g.Init, e)
			}
		}
		if g.Type.Kind == TypeArray && g.Type.N == -1 {
			switch {
			case g.InitStr != nil:
				g.Type = ArrayOf(g.Type.Elem, len(g.InitStr)+1)
			case len(g.Init) > 0:
				g.Type = ArrayOf(g.Type.Elem, len(g.Init))
			default:
				return errAt(nameTok, "array %s needs a size or initializer", g.Name)
			}
		}
		u.Globals = append(u.Globals, g)
		if p.accept(TokPunct, ",") {
			var err error
			nameTok, err = p.expect(TokIdent, "")
			if err != nil {
				return err
			}
			continue
		}
		_, err := p.expect(TokPunct, ";")
		return err
	}
}

// --- statements -------------------------------------------------------------

func (p *parser) block() ([]*Stmt, error) {
	if _, err := p.expect(TokPunct, "{"); err != nil {
		return nil, err
	}
	var out []*Stmt
	for !p.accept(TokPunct, "}") {
		if p.at(TokEOF, "") {
			return nil, errAt(p.cur(), "unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (p *parser) stmt() (*Stmt, error) {
	tok := p.cur()
	switch {
	case p.atType():
		return p.declStmt()

	case p.accept(TokKeyword, "if"):
		s := &Stmt{Kind: StmtIf, Tok: tok}
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Expr = e
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.stmtOrBlock()
		if err != nil {
			return nil, err
		}
		s.Body = body
		if p.accept(TokKeyword, "else") {
			els, err := p.stmtOrBlock()
			if err != nil {
				return nil, err
			}
			s.Else = els
		}
		return s, nil

	case p.accept(TokKeyword, "while"):
		s := &Stmt{Kind: StmtWhile, Tok: tok}
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Expr = e
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.stmtOrBlock()
		if err != nil {
			return nil, err
		}
		s.Body = body
		return s, nil

	case p.accept(TokKeyword, "for"):
		s := &Stmt{Kind: StmtFor, Tok: tok}
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		if !p.accept(TokPunct, ";") {
			if p.atType() {
				init, err := p.declStmt()
				if err != nil {
					return nil, err
				}
				s.Init = init
			} else {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				s.Init = &Stmt{Kind: StmtExpr, Tok: tok, Expr: e}
				if _, err := p.expect(TokPunct, ";"); err != nil {
					return nil, err
				}
			}
		}
		if !p.at(TokPunct, ";") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.Expr = e
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		if !p.at(TokPunct, ")") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.Post = e
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.stmtOrBlock()
		if err != nil {
			return nil, err
		}
		s.Body = body
		return s, nil

	case p.accept(TokKeyword, "return"):
		s := &Stmt{Kind: StmtReturn, Tok: tok}
		if !p.at(TokPunct, ";") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.Expr = e
		}
		_, err := p.expect(TokPunct, ";")
		return s, err

	case p.accept(TokKeyword, "break"):
		_, err := p.expect(TokPunct, ";")
		return &Stmt{Kind: StmtBreak, Tok: tok}, err

	case p.accept(TokKeyword, "continue"):
		_, err := p.expect(TokPunct, ";")
		return &Stmt{Kind: StmtContinue, Tok: tok}, err

	case p.at(TokPunct, "{"):
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &Stmt{Kind: StmtBlock, Tok: tok, Body: body}, nil

	case p.accept(TokPunct, ";"):
		return &Stmt{Kind: StmtBlock, Tok: tok}, nil
	}

	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}
	return &Stmt{Kind: StmtExpr, Tok: tok, Expr: e}, nil
}

func (p *parser) stmtOrBlock() ([]*Stmt, error) {
	if p.at(TokPunct, "{") {
		return p.block()
	}
	s, err := p.stmt()
	if err != nil {
		return nil, err
	}
	return []*Stmt{s}, nil
}

// declStmt parses `type name ([N])? (= expr)? ;` (one declarator).
func (p *parser) declStmt() (*Stmt, error) {
	tok := p.cur()
	ty, err := p.baseType()
	if err != nil {
		return nil, err
	}
	nt, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	if p.accept(TokPunct, "[") {
		num, err := p.expect(TokNumber, "")
		if err != nil {
			return nil, errAt(nt, "local array %s needs a constant size", nt.Text)
		}
		if _, err := p.expect(TokPunct, "]"); err != nil {
			return nil, err
		}
		ty = ArrayOf(ty, int(num.Num))
	}
	v := &LocalVar{Name: nt.Text, Type: ty}
	if p.accept(TokPunct, "=") {
		e, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		v.Init = e
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}
	return &Stmt{Kind: StmtDecl, Tok: tok, Decl: v}, nil
}

// --- expressions (precedence climbing) ---------------------------------------

func (p *parser) expr() (*Expr, error) { return p.assignExpr() }

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"<<=": true, ">>=": true, "&=": true, "|=": true, "^=": true,
}

func (p *parser) assignExpr() (*Expr, error) {
	lhs, err := p.condExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind == TokPunct && assignOps[p.cur().Text] {
		op := p.next()
		rhs, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: ExprAssign, Tok: op, Op: op.Text, X: lhs, Y: rhs}, nil
	}
	return lhs, nil
}

func (p *parser) condExpr() (*Expr, error) {
	c, err := p.binExpr(0)
	if err != nil {
		return nil, err
	}
	if p.at(TokPunct, "?") {
		tok := p.next()
		t, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ":"); err != nil {
			return nil, err
		}
		f, err := p.condExpr()
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: ExprCond, Tok: tok, X: c, Y: t, Z: f}, nil
	}
	return c, nil
}

// binary operator precedence levels, loosest first.
var binLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", ">", "<=", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) binExpr(level int) (*Expr, error) {
	if level >= len(binLevels) {
		return p.unaryExpr()
	}
	lhs, err := p.binExpr(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range binLevels[level] {
			if p.at(TokPunct, op) {
				tok := p.next()
				rhs, err := p.binExpr(level + 1)
				if err != nil {
					return nil, err
				}
				lhs = &Expr{Kind: ExprBinary, Tok: tok, Op: op, X: lhs, Y: rhs}
				matched = true
				break
			}
		}
		if !matched {
			return lhs, nil
		}
	}
}

func (p *parser) unaryExpr() (*Expr, error) {
	tok := p.cur()
	for _, op := range []string{"!", "~", "-", "*", "&", "++", "--"} {
		if p.at(TokPunct, op) {
			p.next()
			x, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			return &Expr{Kind: ExprUnary, Tok: tok, Op: op, X: x}, nil
		}
	}
	return p.postfixExpr()
}

func (p *parser) postfixExpr() (*Expr, error) {
	e, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		tok := p.cur()
		switch {
		case p.accept(TokPunct, "["):
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, "]"); err != nil {
				return nil, err
			}
			e = &Expr{Kind: ExprIndex, Tok: tok, X: e, Y: idx}
		case p.at(TokPunct, "++") || p.at(TokPunct, "--"):
			p.next()
			e = &Expr{Kind: ExprPostfix, Tok: tok, Op: tok.Text, X: e}
		default:
			return e, nil
		}
	}
}

func (p *parser) primaryExpr() (*Expr, error) {
	tok := p.cur()
	switch tok.Kind {
	case TokNumber, TokChar:
		p.next()
		return &Expr{Kind: ExprNum, Tok: tok, Num: tok.Num}, nil
	case TokString:
		p.next()
		return &Expr{Kind: ExprStr, Tok: tok, Str: tok.Str}, nil
	case TokIdent:
		p.next()
		if p.accept(TokPunct, "(") {
			call := &Expr{Kind: ExprCall, Tok: tok, Name: tok.Text}
			for !p.accept(TokPunct, ")") {
				a, err := p.assignExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if !p.accept(TokPunct, ",") && !p.at(TokPunct, ")") {
					return nil, errAt(p.cur(), "expected , or ) in call")
				}
			}
			return call, nil
		}
		return &Expr{Kind: ExprIdent, Tok: tok, Name: tok.Text}, nil
	case TokPunct:
		if p.accept(TokPunct, "(") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, errAt(tok, "unexpected %s in expression", tok)
}
