package rescache

import (
	"interplab/internal/alphasim"
	"interplab/internal/atom"
	"interplab/internal/profile"
	"interplab/internal/trace"
)

// Entry is the cached value of one measurement: every Result field that is
// a pure function of the measurement inputs.  (Telemetry observer samples
// are deliberately absent — they describe the run that happened, not the
// measurement, and are not part of any rendered output or manifest.)
// internal/core converts between Entry and core.Result; keeping the
// conversion there keeps this package free of a core dependency in both
// directions.
type Entry struct {
	Key Key `json:"key"`

	SizeBytes     int                   `json:"size_bytes,omitempty"`
	Stdout        string                `json:"stdout,omitempty"`
	FrameChecksum uint32                `json:"frame_checksum,omitempty"`
	Counter       trace.Counter         `json:"counter"`
	Stats         atom.Stats            `json:"stats"`
	Pipe          *alphasim.Stats       `json:"pipe,omitempty"`
	Sweep         []alphasim.SweepPoint `json:"sweep,omitempty"`
	Profile       *profile.Profile      `json:"profile,omitempty"`
	Batch         *trace.BatchStats     `json:"batch,omitempty"`
}
