// Package rescache is the lab's content-addressed measurement cache.
//
// Every measurement the harness schedules is deterministic: the same
// program, at the same scale, through the same simulated machine, produces
// byte-identical results (the parallel-determinism golden test pins this).
// That makes memoization sound — a measurement is a pure function of its
// inputs — so rescache stores each core.Result-shaped value on disk under a
// key that hashes everything the measurement depends on:
//
//   - the lab version fingerprint (a hash of the running binary, so any
//     rebuild invalidates every entry it wrote — see Fingerprint);
//   - the experiment id and workload scale (the harness scope);
//   - the job parameters: measurement kind, program identity
//     ("system/name") plus its variant tag (for same-ID programs that
//     differ by an interpreter knob, e.g. the ablation's threaded-dispatch
//     arm), the simulated-processor configuration, the instruction-cache
//     sweep geometry, and whether profiling was attached.
//
// Values are gzip-compressed JSON documents carrying the key they were
// stored under; a Get whose decoded key does not match, or whose file is
// corrupt or truncated, is a miss, never an error — the measurement simply
// re-runs and overwrites the entry.
package rescache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// SchemaVersion is the entry-format version; it participates in every key,
// so a format change orphans old entries instead of misreading them.
// v2: entries carry batch-pipeline stats and keys distinguish per-event
// emission from batched emission.
const SchemaVersion = 2

// Scope is the harness-level part of a cache key: which experiment is
// measuring, at what workload scale.  The measurement-level fields are
// filled in by internal/core, which knows the actual job parameters.
type Scope struct {
	Experiment string
	Scale      float64
}

// Key identifies one measurement.  Two measurements with equal keys are
// interchangeable; any field difference must change the hash.
type Key struct {
	Schema      int     `json:"schema"`
	Fingerprint string  `json:"fingerprint"`
	Experiment  string  `json:"experiment"`
	Scale       float64 `json:"scale"`
	Kind        string  `json:"kind"`    // "measure", "pipeline", "sweep"
	Program     string  `json:"program"` // "system/name"
	Variant     string  `json:"variant,omitempty"`
	Config      string  `json:"config,omitempty"`
	Sweep       string  `json:"sweep,omitempty"`
	Profiling   bool    `json:"profiling,omitempty"`
	// PerEvent marks a measurement taken with batching disabled
	// (core.WithPerEventEmission).  The measured numbers are identical, but
	// the entry's Batch stats differ (absent vs. populated), so the two
	// modes must not share entries.
	PerEvent bool `json:"per_event,omitempty"`
}

// Hash returns the key's content address: the hex sha256 of its canonical
// JSON encoding.  Field order is fixed by the struct, so the encoding — and
// the hash — is stable across runs and builds.
func (k Key) Hash() string {
	b, err := json.Marshal(k)
	if err != nil {
		// Key is a struct of plain scalars; Marshal cannot fail.
		panic(fmt.Sprintf("rescache: marshal key: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// ConfigKey canonicalizes a processor (or any other) configuration struct
// for the Key.Config field: its JSON encoding, which is deterministic for
// plain structs.
func ConfigKey(cfg any) string {
	b, err := json.Marshal(cfg)
	if err != nil {
		return fmt.Sprintf("unencodable:%v", err)
	}
	return string(b)
}

var (
	fingerprintOnce sync.Once
	fingerprintVal  string
)

// Fingerprint returns the lab version fingerprint: "lab-" plus the leading
// 16 hex digits of the sha256 of the running executable.  Any rebuild —
// toolchain bump, source edit, build-flag change — yields a different
// binary and therefore a different fingerprint, so cached results can never
// survive a change to the code that produced them.  When the executable
// cannot be read (an exotic platform), a schema-only fingerprint is
// returned; entries then invalidate on schema bumps alone.
func Fingerprint() string {
	fingerprintOnce.Do(func() {
		fingerprintVal = fmt.Sprintf("lab-unhashed-v%d", SchemaVersion)
		exe, err := os.Executable()
		if err != nil {
			return
		}
		f, err := os.Open(exe)
		if err != nil {
			return
		}
		defer f.Close()
		h := sha256.New()
		if _, err := io.Copy(h, f); err != nil {
			return
		}
		fingerprintVal = "lab-" + hex.EncodeToString(h.Sum(nil))[:16]
	})
	return fingerprintVal
}
