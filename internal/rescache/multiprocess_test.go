package rescache

import (
	"fmt"
	"os"
	"os/exec"
	"strings"
	"sync"
	"testing"
)

// This file pins the cache's multi-process contract: several OS processes
// (the serving daemon, CLI runs, CI jobs) may share one cache directory,
// write the same key concurrently, and garbage-collect while others write,
// without a reader ever seeing a torn entry or a GC erroring on files that
// move under it.

// helperEnv are the knobs the re-exec'd writer helper reads.
const (
	helperFlag   = "RESCACHE_WRITER_HELPER"
	helperDirEnv = "RESCACHE_WRITER_DIR"
	helperIDEnv  = "RESCACHE_WRITER_ID"
)

// TestWriterHelperProcess is not a test: it is the body of the re-exec'd
// writer in TestCrossProcessSameKeyCollision.  Each helper process writes
// the same key many times from its own Cache handle.
func TestWriterHelperProcess(t *testing.T) {
	if os.Getenv(helperFlag) != "1" {
		t.Skip("helper process body; driven by TestCrossProcessSameKeyCollision")
	}
	c, err := Open(os.Getenv(helperDirEnv), false)
	if err != nil {
		fmt.Fprintf(os.Stderr, "open: %v\n", err)
		os.Exit(1)
	}
	id := os.Getenv(helperIDEnv)
	for i := 0; i < 50; i++ {
		e := testEntry()
		e.Stdout = "writer-" + id
		if err := c.Put(testKey(), e); err != nil {
			fmt.Fprintf(os.Stderr, "put: %v\n", err)
			os.Exit(1)
		}
	}
	os.Exit(0)
}

// TestCrossProcessSameKeyCollision re-execs the test binary as several
// independent processes that all hammer the same key in one shared
// directory while this process reads it.  Every concurrent Get must be a
// complete entry from one of the writers or a clean miss — never an error,
// never a torn read — and the final state must be a hit.
func TestCrossProcessSameKeyCollision(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Skipf("cannot re-exec test binary: %v", err)
	}
	dir := t.TempDir()
	const writers = 4

	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cmd := exec.Command(exe, "-test.run", "TestWriterHelperProcess")
			cmd.Env = append(os.Environ(),
				helperFlag+"=1",
				helperDirEnv+"="+dir,
				fmt.Sprintf("%s=%d", helperIDEnv, w))
			if out, err := cmd.CombinedOutput(); err != nil {
				errs[w] = fmt.Errorf("writer %d: %v\n%s", w, err, out)
			}
		}(w)
	}

	// Read concurrently with the writer processes; every observation must
	// be coherent.
	reader, err := Open(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	sawHit := false
	for i := 0; i < 200; i++ {
		if e, ok := reader.Get(testKey()); ok {
			sawHit = true
			if !strings.HasPrefix(e.Stdout, "writer-") {
				t.Fatalf("torn or foreign entry: stdout %q", e.Stdout)
			}
			if e.Key != testKey() {
				t.Fatalf("entry under wrong key: %+v", e.Key)
			}
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	e, ok := reader.Get(testKey())
	if !ok {
		t.Fatal("no entry after all writer processes finished")
	}
	if !strings.HasPrefix(e.Stdout, "writer-") {
		t.Fatalf("final entry is not one writer's complete value: %q", e.Stdout)
	}
	if !sawHit {
		t.Log("reader never raced a visible entry (slow filesystem?); final state verified")
	}
	_, _, _, corrupt := reader.Counts()
	if corrupt != 0 {
		t.Fatalf("reader counted %d corrupt files during concurrent writes", corrupt)
	}
}

// TestGCConcurrentWithWritersAndGC runs two GCs from separate handles (as
// two processes sharing the directory would) while a writer keeps adding
// fresh-fingerprint entries.  Neither GC may error when the other removes
// a file first, stale entries must all be gone, and fresh entries written
// mid-scan must survive.
func TestGCConcurrentWithWritersAndGC(t *testing.T) {
	dir := t.TempDir()
	seed, err := Open(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	const stale = 120
	for i := 0; i < stale; i++ {
		k := testKey()
		k.Fingerprint = "lab-stale"
		k.Program = fmt.Sprintf("MIPSI/old-%d", i)
		if err := seed.Put(k, testEntry()); err != nil {
			t.Fatal(err)
		}
	}

	gc1, err := Open(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	gc2, err := Open(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	writer, err := Open(dir, false)
	if err != nil {
		t.Fatal(err)
	}

	const keep = "lab-fresh"
	var wg sync.WaitGroup
	var err1, err2 error
	wg.Add(3)
	go func() { defer wg.Done(); _, _, err1 = gc1.GC(keep, 0) }()
	go func() { defer wg.Done(); _, _, err2 = gc2.GC(keep, 0) }()
	freshKeys := make([]Key, 0, 40)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			k := testKey()
			k.Fingerprint = keep
			k.Program = fmt.Sprintf("MIPSI/new-%d", i)
			if err := writer.Put(k, testEntry()); err != nil {
				t.Errorf("mid-scan put: %v", err)
				return
			}
			freshKeys = append(freshKeys, k)
		}
	}()
	wg.Wait()
	if err1 != nil {
		t.Fatalf("first GC errored under concurrency: %v", err1)
	}
	if err2 != nil {
		t.Fatalf("second GC errored under concurrency: %v", err2)
	}

	st, err := seed.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if st.ByFingerprint["lab-stale"] != 0 {
		t.Fatalf("stale entries survived concurrent GC: %d", st.ByFingerprint["lab-stale"])
	}
	// Entries written after a GC passed their directory can be swept only
	// by a later GC; none may be half-removed or unreadable.
	if st.Corrupt != 0 {
		t.Fatalf("scan found %d corrupt entries after concurrent GC + writes", st.Corrupt)
	}
	for _, k := range freshKeys {
		if _, ok := seed.Get(k); !ok {
			// A fresh entry must be either fully present or (if a racing
			// GC legally judged a mid-rename state) absent — but with the
			// keep fingerprint GC never removes it once visible.
			t.Fatalf("fresh entry %s vanished", k.Program)
		}
	}
}
