package rescache

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"interplab/internal/alphasim"
	"interplab/internal/atom"
	"interplab/internal/trace"
)

func testKey() Key {
	return Key{
		Schema:      SchemaVersion,
		Fingerprint: "lab-0123456789abcdef",
		Experiment:  "table1",
		Scale:       1,
		Kind:        "pipeline",
		Program:     "MIPSI/des",
		Config:      ConfigKey(alphasim.DefaultConfig()),
		Sweep:       "",
		Profiling:   false,
	}
}

func testEntry() *Entry {
	return &Entry{
		SizeBytes:     1234,
		Stdout:        "hello\n",
		FrameChecksum: 0xdeadbeef,
		Counter:       trace.Counter{Total: 42, TakenBr: 7},
		Stats: atom.Stats{
			Commands: 10, Instructions: 42, FetchDecode: 20, Execute: 22,
			Ops:     []atom.OpStats{{Name: "add", Count: 5, FetchDecode: 10, Execute: 11}},
			Regions: []atom.RegionStats{{Name: "memmodel", Instructions: 8, Accesses: 2}},
		},
		Pipe:  &alphasim.Stats{Instructions: 42, Cycles: 64},
		Sweep: []alphasim.SweepPoint{{SizeKB: 8, Assoc: 1, Instructions: 42, Misses: 3}},
	}
}

// TestKeyHashStable pins the property the whole cache rests on: equal keys
// hash equally, and any single-field change produces a different hash.
func TestKeyHashStable(t *testing.T) {
	base := testKey()
	if base.Hash() != testKey().Hash() {
		t.Fatal("identical keys produced different hashes")
	}
	mutations := map[string]func(*Key){
		"Schema":      func(k *Key) { k.Schema++ },
		"Fingerprint": func(k *Key) { k.Fingerprint = "lab-ffffffffffffffff" },
		"Experiment":  func(k *Key) { k.Experiment = "fig4" },
		"Scale":       func(k *Key) { k.Scale = 0.5 },
		"Kind":        func(k *Key) { k.Kind = "sweep" },
		"Program":     func(k *Key) { k.Program = "Tcl/des" },
		"Variant":     func(k *Key) { k.Variant = "threaded-dispatch" },
		"Config":      func(k *Key) { k.Config = "{}" },
		"Sweep":       func(k *Key) { k.Sweep = "i8k1w/32" },
		"Profiling":   func(k *Key) { k.Profiling = true },
	}
	seen := map[string]string{base.Hash(): "base"}
	for field, mutate := range mutations {
		k := testKey()
		mutate(&k)
		h := k.Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("changing %s collided with %s (hash %s)", field, prev, h)
		}
		seen[h] = field
	}
}

func TestRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey()
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on an empty cache")
	}
	if err := c.Put(k, testEntry()); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(k)
	if !ok {
		t.Fatal("miss immediately after Put")
	}
	want := testEntry()
	if got.SizeBytes != want.SizeBytes || got.Stdout != want.Stdout ||
		got.FrameChecksum != want.FrameChecksum || got.Counter != want.Counter {
		t.Errorf("scalar fields did not round-trip: got %+v", got)
	}
	if got.Stats.Commands != want.Stats.Commands || len(got.Stats.Ops) != 1 ||
		got.Stats.Ops[0] != want.Stats.Ops[0] || got.Stats.Regions[0] != want.Stats.Regions[0] {
		t.Errorf("stats did not round-trip: got %+v", got.Stats)
	}
	if got.Pipe == nil || *got.Pipe != *want.Pipe {
		t.Errorf("pipe stats did not round-trip: got %+v", got.Pipe)
	}
	if len(got.Sweep) != 1 || got.Sweep[0] != want.Sweep[0] {
		t.Errorf("sweep points did not round-trip: got %+v", got.Sweep)
	}
	hits, misses, puts, corrupt := c.Counts()
	if hits != 1 || misses != 1 || puts != 1 || corrupt != 0 {
		t.Errorf("counts = %d hits, %d misses, %d puts, %d corrupt; want 1,1,1,0",
			hits, misses, puts, corrupt)
	}
	// A different key must miss even with an entry on disk.
	other := k
	other.Scale = 2
	if _, ok := c.Get(other); ok {
		t.Error("hit for a key that was never stored")
	}
}

// TestCorruptEntriesAreMisses pins the recovery contract: truncated or
// garbage entry files read as misses (and re-Put repairs them), never as
// errors.
func TestCorruptEntriesAreMisses(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey()
	if err := c.Put(k, testEntry()); err != nil {
		t.Fatal(err)
	}
	path := c.path(k.Hash())
	for name, corrupt := range map[string]func() error{
		"truncated": func() error { return os.Truncate(path, 10) },
		"garbage":   func() error { return os.WriteFile(path, []byte("not gzip at all"), 0o644) },
		"empty":     func() error { return os.Truncate(path, 0) },
	} {
		if err := c.Put(k, testEntry()); err != nil {
			t.Fatalf("%s: re-put: %v", name, err)
		}
		if err := corrupt(); err != nil {
			t.Fatalf("%s: corrupting: %v", name, err)
		}
		if _, ok := c.Get(k); ok {
			t.Errorf("%s entry produced a hit", name)
		}
		// The cache must heal: a fresh Put then hits again.
		if err := c.Put(k, testEntry()); err != nil {
			t.Fatalf("%s: healing put: %v", name, err)
		}
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s: miss after healing put", name)
		}
	}
	if _, _, _, corrupt := c.Counts(); corrupt == 0 {
		t.Error("corrupt files were not counted")
	}
}

func TestReadonly(t *testing.T) {
	dir := t.TempDir()
	rw, err := Open(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey()
	if err := rw.Put(k, testEntry()); err != nil {
		t.Fatal(err)
	}
	ro, err := Open(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ro.Get(k); !ok {
		t.Fatal("readonly cache missed an existing entry")
	}
	other := testKey()
	other.Experiment = "fig1"
	if err := ro.Put(other, testEntry()); err != nil {
		t.Fatalf("readonly Put should no-op, got %v", err)
	}
	if _, ok := rw.Get(other); ok {
		t.Error("readonly Put wrote an entry")
	}
	if removed, _, err := ro.GC(Fingerprint(), 0); err != nil || removed != 0 {
		t.Errorf("readonly GC removed %d entries (err %v); want 0, nil", removed, err)
	}
	if err := ro.Clear(); err == nil {
		t.Error("readonly Clear should refuse")
	}
}

func TestGCAndClear(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	cur := testKey() // "current build" entry
	old := testKey()
	old.Fingerprint = "lab-aaaaaaaaaaaaaaaa"
	if err := c.Put(cur, testEntry()); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(old, testEntry()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ab"), []byte("stray non-entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := c.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 2 || st.ByFingerprint[cur.Fingerprint] != 1 || st.ByFingerprint[old.Fingerprint] != 1 {
		t.Fatalf("scan = %+v; want 2 entries across 2 fingerprints", st)
	}
	removed, freed, err := c.GC(cur.Fingerprint, 0)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 || freed <= 0 {
		t.Errorf("GC removed %d entries, freed %d bytes; want 1 entry", removed, freed)
	}
	if _, ok := c.Get(cur); !ok {
		t.Error("GC removed the current-fingerprint entry")
	}
	if _, ok := c.Get(old); ok {
		t.Error("GC kept a stale-fingerprint entry")
	}
	// Age-based GC with a tiny maxAge removes even current entries.
	time.Sleep(10 * time.Millisecond)
	if removed, _, err = c.GC(cur.Fingerprint, time.Nanosecond); err != nil || removed != 1 {
		t.Errorf("age GC removed %d (err %v); want 1", removed, err)
	}
	if err := c.Put(cur, testEntry()); err != nil {
		t.Fatal(err)
	}
	if err := c.Clear(); err != nil {
		t.Fatal(err)
	}
	if st, err := c.Scan(); err != nil || st.Entries != 0 {
		t.Errorf("after Clear: %+v (err %v); want 0 entries", st, err)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Errorf("Clear removed the cache root: %v", err)
	}
}

func TestFingerprintStable(t *testing.T) {
	a, b := Fingerprint(), Fingerprint()
	if a != b || a == "" {
		t.Fatalf("fingerprint unstable: %q vs %q", a, b)
	}
	if len(a) < 8 {
		t.Fatalf("implausibly short fingerprint %q", a)
	}
}
