package rescache

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"
)

// Cache is an on-disk measurement cache.  Entries live under
// dir/<hh>/<hash>.json.gz, where hash is the key's content address and hh
// its leading byte, keeping directories small.  All methods are safe for
// concurrent use: writes go through a temp file plus atomic rename, and a
// reader that races a writer sees either the old complete entry or the new
// one, never a torn file (a torn or foreign file reads as a miss).
//
// The same guarantees hold ACROSS PROCESSES sharing one directory — the
// serving daemon, concurrent CLI runs, and CI jobs may all point at the
// same cache.  Concurrent writers of the same key each rename a complete
// temp file over the final path, so the survivor is one writer's complete
// entry (keys are content addresses, so all writers carry interchangeable
// values); readers racing either writer see a complete entry or a miss.
// Scan and GC tolerate entries appearing, being rewritten, or vanishing
// mid-walk: a file another process already removed is skipped, never an
// error.
//
// A nil *Cache is a valid no-op receiver — Get always misses, Put does
// nothing — so call sites need not branch on whether caching is enabled.
type Cache struct {
	dir      string
	readonly bool

	hits    atomic.Uint64
	misses  atomic.Uint64
	puts    atomic.Uint64
	corrupt atomic.Uint64
}

// Open creates (if needed) and returns the cache rooted at dir.  With
// readonly set, Put and GC become no-ops: CI jobs can share a cache
// directory without extending it.
func Open(dir string, readonly bool) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("rescache: empty cache directory")
	}
	if !readonly {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("rescache: %w", err)
		}
	}
	return &Cache{dir: dir, readonly: readonly}, nil
}

// Dir returns the cache's root directory ("" for a nil cache).
func (c *Cache) Dir() string {
	if c == nil {
		return ""
	}
	return c.dir
}

// ReadOnly reports whether the cache rejects writes.
func (c *Cache) ReadOnly() bool { return c != nil && c.readonly }

// path returns the entry file for a key hash.
func (c *Cache) path(hash string) string {
	return filepath.Join(c.dir, hash[:2], hash+".json.gz")
}

// Get returns the entry stored under k, or (nil, false) on a miss.  Any
// unreadable, truncated, corrupt, or key-mismatched file is a miss: the
// caller re-measures, and a following Put repairs the entry.
func (c *Cache) Get(k Key) (*Entry, bool) {
	if c == nil {
		return nil, false
	}
	e, ok := c.read(c.path(k.Hash()))
	if !ok || e.Key != k {
		if ok {
			// A decodable entry under this hash with a different key is a
			// hash collision or a tampered file; treat as corrupt.
			c.corrupt.Add(1)
		}
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return e, true
}

// read decodes one entry file; any failure reads as (nil, false).
func (c *Cache) read(path string) (*Entry, bool) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		c.corrupt.Add(1)
		return nil, false
	}
	defer zr.Close()
	var e Entry
	if err := json.NewDecoder(zr).Decode(&e); err != nil {
		c.corrupt.Add(1)
		return nil, false
	}
	return &e, true
}

// Put stores e under k.  On a readonly (or nil) cache it is a no-op.  The
// write is atomic: a temp file in the entry's directory renamed over the
// final path, so concurrent readers and crashed writers never expose a
// partial entry.
func (c *Cache) Put(k Key, e *Entry) error {
	if c == nil || c.readonly {
		return nil
	}
	e.Key = k
	hash := k.Hash()
	final := c.path(hash)
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		return fmt.Errorf("rescache: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(final), hash+".tmp-*")
	if err != nil {
		return fmt.Errorf("rescache: %w", err)
	}
	zw := gzip.NewWriter(tmp)
	enc := json.NewEncoder(zw)
	if err := enc.Encode(e); err == nil {
		err = zw.Close()
		if cerr := tmp.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			err = os.Rename(tmp.Name(), final)
		}
	} else {
		tmp.Close()
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("rescache: write entry: %w", err)
	}
	c.puts.Add(1)
	return nil
}

// Counts reports the cache's session counters: hits and misses observed by
// Get, entries written by Put, and files that failed to decode.
func (c *Cache) Counts() (hits, misses, puts, corrupt uint64) {
	if c == nil {
		return 0, 0, 0, 0
	}
	return c.hits.Load(), c.misses.Load(), c.puts.Load(), c.corrupt.Load()
}

// EntryInfo describes one on-disk entry for Stats.
type EntryInfo struct {
	Key     Key
	Bytes   int64
	ModTime time.Time
	Corrupt bool
	Path    string
}

// Stats is a scan of the cache directory.
type Stats struct {
	Dir           string
	Entries       int
	Bytes         int64
	Corrupt       int
	ByFingerprint map[string]int
	ByExperiment  map[string]int
}

// Scan walks the cache directory and summarizes its contents.  Corrupt
// files are counted but otherwise ignored, matching Get's behavior.
func (c *Cache) Scan() (Stats, error) {
	st := Stats{Dir: c.Dir(), ByFingerprint: map[string]int{}, ByExperiment: map[string]int{}}
	if c == nil {
		return st, nil
	}
	err := c.walk(func(info EntryInfo) error {
		if info.Corrupt {
			st.Corrupt++
			return nil
		}
		st.Entries++
		st.Bytes += info.Bytes
		st.ByFingerprint[info.Key.Fingerprint]++
		st.ByExperiment[info.Key.Experiment]++
		return nil
	})
	return st, err
}

// walk visits every entry file under the cache root.
func (c *Cache) walk(visit func(EntryInfo) error) error {
	return filepath.WalkDir(c.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if os.IsNotExist(err) {
				return nil // empty/unborn cache
			}
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".json.gz") {
			return nil
		}
		fi, err := d.Info()
		if err != nil {
			return nil
		}
		info := EntryInfo{Bytes: fi.Size(), ModTime: fi.ModTime(), Path: path}
		if e, ok := c.read(path); ok {
			info.Key = e.Key
		} else {
			info.Corrupt = true
		}
		return visit(info)
	})
}

// GC removes entries that can never hit again: any entry whose fingerprint
// differs from keep (pass Fingerprint() for the running build), any entry
// older than maxAge (0 disables the age check), and every corrupt file.
// It returns the number of files removed and the bytes freed.
//
// GC is safe to run while other processes use the directory: an entry
// another process removed (or rewrote) between the scan and the removal is
// skipped rather than erroring, and entries written mid-scan are simply
// judged by what the walk sees — a fresh-fingerprint write survives, the
// next GC catches anything the walk missed.
func (c *Cache) GC(keep string, maxAge time.Duration) (removed int, freed int64, err error) {
	if c == nil || c.readonly {
		return 0, 0, nil
	}
	now := time.Now()
	err = c.walk(func(info EntryInfo) error {
		stale := info.Corrupt || info.Key.Fingerprint != keep
		if maxAge > 0 && now.Sub(info.ModTime) > maxAge {
			stale = true
		}
		if !stale {
			return nil
		}
		if rmErr := os.Remove(info.Path); rmErr != nil {
			if os.IsNotExist(rmErr) {
				// A concurrent GC (another process sharing the cache)
				// removed it first; the entry is gone either way.
				return nil
			}
			return rmErr
		}
		removed++
		freed += info.Bytes
		return nil
	})
	return removed, freed, err
}

// Clear removes every entry, leaving an empty cache directory.
func (c *Cache) Clear() error {
	if c == nil {
		return nil
	}
	if c.readonly {
		return fmt.Errorf("rescache: clear on a readonly cache")
	}
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	for _, d := range entries {
		if err := os.RemoveAll(filepath.Join(c.dir, d.Name())); err != nil {
			return err
		}
	}
	return nil
}
