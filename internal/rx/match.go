package rx

// DefaultStepLimit bounds backtracking work per match attempt; pathological
// patterns fail the match (Ok=false) rather than hanging the lab.
const DefaultStepLimit = 10_000_000

type matcher struct {
	prog  []inst
	s     []byte
	caps  []int
	steps int
	limit int
	depth int
}

// maxDepth bounds backtracking recursion so pathological patterns fail the
// match instead of exhausting the goroutine stack.
const maxDepth = 100_000

// run executes the backtracking VM from pc at subject position sp.
func (m *matcher) run(pc, sp int) bool {
	m.depth++
	defer func() { m.depth-- }()
	if m.depth > maxDepth {
		m.steps = m.limit + 1
		return false
	}
	for {
		m.steps++
		if m.steps > m.limit {
			return false
		}
		in := &m.prog[pc]
		switch in.op {
		case opChar:
			if sp >= len(m.s) || m.s[sp] != in.c {
				return false
			}
			sp++
			pc++
		case opAny:
			if sp >= len(m.s) || m.s[sp] == '\n' {
				return false
			}
			sp++
			pc++
		case opClass:
			if sp >= len(m.s) || !in.set.has(m.s[sp]) {
				return false
			}
			sp++
			pc++
		case opBOL:
			if sp != 0 {
				return false
			}
			pc++
		case opEOL:
			if sp != len(m.s) {
				return false
			}
			pc++
		case opJmp:
			pc = in.x
		case opSplit:
			if m.run(in.x, sp) {
				return true
			}
			pc = in.y
		case opSave:
			old := m.caps[in.x]
			m.caps[in.x] = sp
			if m.run(pc+1, sp) {
				return true
			}
			m.caps[in.x] = old
			return false
		case opMatch:
			return true
		default:
			return false
		}
	}
}

// MatchAt attempts an anchored match starting exactly at position from.
func (re *Regexp) MatchAt(s []byte, from int) Match {
	return re.matchAt(s, from, DefaultStepLimit)
}

func (re *Regexp) matchAt(s []byte, from, limit int) Match {
	m := &matcher{prog: re.prog, s: s, limit: limit}
	m.caps = make([]int, 2*(re.ncap+1))
	for i := range m.caps {
		m.caps[i] = -1
	}
	ok := m.run(0, from)
	res := Match{Ok: ok, Steps: m.steps}
	if ok {
		res.Caps = m.caps
	}
	return res
}

// Search finds the leftmost match at or after from.  The step budget is
// shared across all start positions, so pathological patterns cost at most
// DefaultStepLimit steps per search, not per position.
func (re *Regexp) Search(s []byte, from int) Match {
	total := 0
	for at := from; at <= len(s); at++ {
		m := re.matchAt(s, at, DefaultStepLimit-total)
		total += m.Steps
		if m.Ok {
			m.Steps = total
			return m
		}
		if total >= DefaultStepLimit {
			break
		}
		// A pattern anchored at ^ can only match at position 0.
		if len(re.prog) > 1 && re.prog[1].op == opBOL {
			break
		}
	}
	return Match{Steps: total}
}

// MatchString reports whether the pattern matches anywhere in s.
func (re *Regexp) MatchString(s string) Match {
	return re.Search([]byte(s), 0)
}

// ReplaceAll substitutes every match in s with the expansion of repl, where
// $0..$9 (and $& for the whole match) refer to capture groups.  It returns
// the new text, the number of substitutions, and the total engine steps.
func (re *Regexp) ReplaceAll(s []byte, repl []byte, global bool) (out []byte, n, steps int) {
	pos := 0
	for pos <= len(s) {
		m := re.Search(s, pos)
		steps += m.Steps
		if !m.Ok {
			break
		}
		start, end := m.Caps[0], m.Caps[1]
		out = append(out, s[pos:start]...)
		out = append(out, expand(repl, s, m)...)
		n++
		if end == start {
			// Empty match: avoid an infinite loop.
			if start < len(s) {
				out = append(out, s[start])
			}
			pos = end + 1
		} else {
			pos = end
		}
		if !global {
			break
		}
	}
	if pos < len(s) {
		out = append(out, s[pos:]...)
	}
	return out, n, steps
}

// expand materializes a replacement template against a match.
func expand(repl, s []byte, m Match) []byte {
	var out []byte
	for i := 0; i < len(repl); i++ {
		c := repl[i]
		if c != '$' || i+1 >= len(repl) {
			out = append(out, c)
			continue
		}
		i++
		d := repl[i]
		switch {
		case d == '&':
			out = append(out, m.Group(s, 0)...)
		case d >= '0' && d <= '9':
			out = append(out, m.Group(s, int(d-'0'))...)
		default:
			out = append(out, '$', d)
		}
	}
	return out
}
