package rx

import (
	"regexp"
	"strings"
	"testing"
	"testing/quick"
)

func TestBasicMatching(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"abc", "abc", true},
		{"abc", "xabcy", true},
		{"abc", "ab", false},
		{"a.c", "axc", true},
		{"a.c", "a\nc", false},
		{"^abc$", "abc", true},
		{"^abc$", "xabc", false},
		{"^abc$", "abcx", false},
		{"a*", "", true},
		{"a+", "", false},
		{"a+", "aaa", true},
		{"ab?c", "ac", true},
		{"ab?c", "abc", true},
		{"ab?c", "abbc", false},
		{"a|b", "b", true},
		{"cat|dog", "hotdog", true},
		{"cat|dog", "bird", false},
		{"[abc]+", "cab", true},
		{"[^abc]", "d", true},
		{"[^abc]", "a", false},
		{"[a-z0-9]+", "ab12", true},
		{"[a-z]+$", "abc123", false},
		{`\d+`, "x42y", true},
		{`\d+`, "xy", false},
		{`\w+`, "hi_there", true},
		{`\s`, "a b", true},
		{`\S+`, "  x  ", true},
		{`\D`, "5a", true},
		{`a\.b`, "a.b", true},
		{`a\.b`, "axb", false},
		{"(ab)+c", "ababc", true},
		{"(a|b)*c", "abbac", true},
		{"x(y(z))", "xyz", true},
	}
	for _, c := range cases {
		re, err := Compile(c.pat)
		if err != nil {
			t.Fatalf("compile %q: %v", c.pat, err)
		}
		if got := re.MatchString(c.s).Ok; got != c.want {
			t.Errorf("match(%q, %q) = %v, want %v", c.pat, c.s, got, c.want)
		}
	}
}

func TestCaptures(t *testing.T) {
	re := MustCompile(`(\w+)@(\w+)\.com`)
	s := []byte("mail bob@example.com now")
	m := re.Search(s, 0)
	if !m.Ok {
		t.Fatal("no match")
	}
	if string(m.Group(s, 0)) != "bob@example.com" {
		t.Errorf("group 0 = %q", m.Group(s, 0))
	}
	if string(m.Group(s, 1)) != "bob" || string(m.Group(s, 2)) != "example" {
		t.Errorf("groups = %q %q", m.Group(s, 1), m.Group(s, 2))
	}
	if re.Groups() != 2 {
		t.Errorf("ncap = %d", re.Groups())
	}
}

func TestLeftmostMatch(t *testing.T) {
	re := MustCompile(`a+`)
	s := []byte("xxaayaaa")
	m := re.Search(s, 0)
	if !m.Ok || m.Caps[0] != 2 || m.Caps[1] != 4 {
		t.Errorf("leftmost greedy: caps = %v", m.Caps)
	}
	m = re.Search(s, 4)
	if !m.Ok || m.Caps[0] != 5 {
		t.Errorf("search from 4: caps = %v", m.Caps)
	}
}

func TestGreedy(t *testing.T) {
	re := MustCompile(`<.*>`)
	s := []byte("<a><b>")
	m := re.Search(s, 0)
	if !m.Ok || m.Caps[1] != 6 {
		t.Errorf("greedy star should span both tags: %v", m.Caps)
	}
}

func TestReplaceAll(t *testing.T) {
	re := MustCompile(`(\w+)=(\d+)`)
	out, n, _ := re.ReplaceAll([]byte("a=1, b=22"), []byte("$2:$1"), true)
	if string(out) != "1:a, 22:b" || n != 2 {
		t.Errorf("replace = %q, n = %d", out, n)
	}
	out, n, _ = re.ReplaceAll([]byte("a=1, b=22"), []byte("X"), false)
	if string(out) != "X, b=22" || n != 1 {
		t.Errorf("non-global replace = %q, n = %d", out, n)
	}
	// $& and literal $ handling.
	re2 := MustCompile(`b+`)
	out, _, _ = re2.ReplaceAll([]byte("abbbc"), []byte("[$&]$x"), true)
	if string(out) != "a[bbb]$xc" {
		t.Errorf("replace with $& = %q", out)
	}
}

func TestReplaceEmptyMatch(t *testing.T) {
	re := MustCompile(`x*`)
	out, _, _ := re.ReplaceAll([]byte("ab"), []byte("-"), true)
	// Must terminate and keep all input characters.
	if !strings.Contains(string(out), "a") || !strings.Contains(string(out), "b") {
		t.Errorf("empty-match replace lost text: %q", out)
	}
}

func TestStepsCounted(t *testing.T) {
	re := MustCompile(`(a+)+$`)
	s := []byte(strings.Repeat("a", 18) + "b")
	m := re.Search(s, 0)
	if m.Ok {
		t.Fatal("should not match")
	}
	if m.Steps < 1000 {
		t.Errorf("catastrophic backtracking should cost many steps, got %d", m.Steps)
	}
	simple := MustCompile(`abc`).MatchString("abc")
	if simple.Steps <= 0 || simple.Steps > 50 {
		t.Errorf("simple match steps = %d", simple.Steps)
	}
}

func TestStepLimitTerminates(t *testing.T) {
	re := MustCompile(`(a*)*(a*)*(a*)*$`)
	s := []byte(strings.Repeat("a", 64) + "b")
	m := re.Search(s, 0)
	if m.Ok {
		t.Error("must not match")
	}
}

func TestCompileErrors(t *testing.T) {
	for _, pat := range []string{"(", "(a", "a)", "[abc", "*a", "+", "?", "a|*", "[z-a]"} {
		if _, err := Compile(pat); err == nil {
			t.Errorf("pattern %q should fail to compile", pat)
		}
	}
}

func TestAnchorFastPath(t *testing.T) {
	re := MustCompile(`^x`)
	m := re.Search([]byte(strings.Repeat("y", 1000)), 0)
	if m.Ok {
		t.Fatal("must not match")
	}
	if m.Steps > 100 {
		t.Errorf("anchored search should bail out early, steps = %d", m.Steps)
	}
}

// TestAgainstStdlib cross-checks the engine against Go's regexp on a
// corpus of patterns and subjects (property-based differential test).
func TestAgainstStdlib(t *testing.T) {
	pats := []string{
		`a`, `ab`, `a+b`, `a*b`, `ab?c`, `a|bc`, `(ab|cd)+`, `[a-c]+`,
		`[^a-c]+`, `^ab`, `ab$`, `a.b`, `(a)(b)(c)`, `(a+)(b+)`, `x(yz|w)*`,
	}
	subjects := []string{
		"", "a", "b", "ab", "abc", "abcabc", "xyzw", "aabbcc", "cdcdab",
		"xwyz", "aaab", "bca", "ab\nab", "ccba",
	}
	for _, p := range pats {
		mine := MustCompile(p)
		std := regexp.MustCompile(p)
		for _, s := range subjects {
			got := mine.MatchString(s).Ok
			want := std.MatchString(s)
			if got != want {
				t.Errorf("pattern %q subject %q: mine=%v stdlib=%v", p, s, got, want)
			}
			if got {
				m := mine.Search([]byte(s), 0)
				loc := std.FindStringIndex(s)
				if m.Caps[0] != loc[0] {
					t.Errorf("pattern %q subject %q: start mine=%d stdlib=%d", p, s, m.Caps[0], loc[0])
				}
			}
		}
	}
}

func TestMatchStartProperty(t *testing.T) {
	// Property: for literal patterns the match offset equals
	// strings.Index.
	f := func(hay []byte, needle0 byte) bool {
		needle := []byte{needle0%26 + 'a'}
		re, err := Compile(string(needle))
		if err != nil {
			return false
		}
		m := re.Search(hay, 0)
		idx := strings.Index(string(hay), string(needle))
		if idx < 0 {
			return !m.Ok
		}
		return m.Ok && m.Caps[0] == idx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
