// Package rx is a from-scratch backtracking regular-expression engine — the
// substrate behind the Perl-analog's m// and s/// operators, and Tcl's
// regexp command.  Perl 4's match operator is the dominant virtual command
// in several of the paper's benchmarks (txt2html spends 84% of its execute
// instructions in match); making the engine real means those numbers come
// from actual matching work, not a guess.
//
// Supported syntax: literals, '.', character classes [a-z0-9] (with ^
// negation), escapes (\d \w \s \D \W \S and C escapes), anchors ^ $,
// grouping ( ) with capture, alternation |, and the quantifiers * + ?
// (greedy) applied to the preceding atom.
package rx

import (
	"fmt"
)

type opKind uint8

const (
	opChar  opKind = iota // match one literal byte
	opAny                 // match any byte except newline
	opClass               // match a byte against a class bitmap
	opSplit               // try X then Y (backtrack point)
	opJmp
	opSave // record position in capture slot
	opBOL
	opEOL
	opMatch
)

type inst struct {
	op   opKind
	c    byte
	x, y int
	set  *classSet
}

type classSet struct {
	bits   [32]byte
	negate bool
}

func (cs *classSet) add(c byte) { cs.bits[c>>3] |= 1 << (c & 7) }
func (cs *classSet) addRange(a, b byte) {
	for c := int(a); c <= int(b); c++ {
		cs.add(byte(c))
	}
}
func (cs *classSet) has(c byte) bool {
	in := cs.bits[c>>3]&(1<<(c&7)) != 0
	return in != cs.negate
}

// Regexp is a compiled pattern.
type Regexp struct {
	prog   []inst
	ncap   int
	source string
}

// Source returns the original pattern.
func (re *Regexp) Source() string { return re.source }

// Groups returns the number of capturing groups.
func (re *Regexp) Groups() int { return re.ncap }

// ProgLen returns the compiled program length (an instrumentation hook:
// compile cost is proportional to it).
func (re *Regexp) ProgLen() int { return len(re.prog) }

// Match is the result of a match attempt.
type Match struct {
	Ok bool
	// Caps holds 2*(groups+1) offsets: Caps[0]:Caps[1] is the whole
	// match, Caps[2k]:Caps[2k+1] is group k.  Unmatched groups are -1.
	Caps []int
	// Steps counts backtracking-engine steps — the real work performed,
	// which the interpreters charge as native instructions.
	Steps int
}

// Group returns the text of capture group k ("" when unmatched).
func (m Match) Group(s []byte, k int) []byte {
	if !m.Ok || 2*k+1 >= len(m.Caps) || m.Caps[2*k] < 0 {
		return nil
	}
	return s[m.Caps[2*k]:m.Caps[2*k+1]]
}

// --- compiler ----------------------------------------------------------------

type compiler struct {
	pat  string
	pos  int
	prog []inst
	ncap int
}

// Compile parses and compiles a pattern.
func Compile(pattern string) (*Regexp, error) {
	c := &compiler{pat: pattern}
	c.emit(inst{op: opSave, x: 0})
	if err := c.alternation(); err != nil {
		return nil, err
	}
	if c.pos < len(c.pat) {
		return nil, fmt.Errorf("rx: unexpected %q at %d", c.pat[c.pos], c.pos)
	}
	c.emit(inst{op: opSave, x: 1})
	c.emit(inst{op: opMatch})
	return &Regexp{prog: c.prog, ncap: c.ncap, source: pattern}, nil
}

// MustCompile panics on error; for statically known patterns.
func MustCompile(pattern string) *Regexp {
	re, err := Compile(pattern)
	if err != nil {
		panic(err)
	}
	return re
}

func (c *compiler) emit(in inst) int {
	c.prog = append(c.prog, in)
	return len(c.prog) - 1
}

func (c *compiler) peek() byte {
	if c.pos >= len(c.pat) {
		return 0
	}
	return c.pat[c.pos]
}

// alternation := concat ('|' concat)*
func (c *compiler) alternation() error {
	start := len(c.prog)
	if err := c.concat(); err != nil {
		return err
	}
	for c.peek() == '|' {
		c.pos++
		// Wrap what we have: split(start, alt2); body; jmp end.
		body := append([]inst(nil), c.prog[start:]...)
		c.prog = c.prog[:start]
		sp := c.emit(inst{op: opSplit})
		c.prog = append(c.prog, body...)
		shift(c.prog[sp+1:], 1)
		jp := c.emit(inst{op: opJmp})
		c.prog[sp].x = sp + 1
		c.prog[sp].y = len(c.prog)
		if err := c.concat(); err != nil {
			return err
		}
		c.prog[jp].x = len(c.prog)
	}
	return nil
}

// concat := quantified*
func (c *compiler) concat() error {
	for {
		ch := c.peek()
		if ch == 0 || ch == '|' || ch == ')' {
			return nil
		}
		if err := c.quantified(); err != nil {
			return err
		}
	}
}

// quantified := atom ('*' | '+' | '?')?
func (c *compiler) quantified() error {
	start := len(c.prog)
	if err := c.atom(); err != nil {
		return err
	}
	switch c.peek() {
	case '*':
		c.pos++
		body := append([]inst(nil), c.prog[start:]...)
		c.prog = c.prog[:start]
		sp := c.emit(inst{op: opSplit})
		c.prog = append(c.prog, body...)
		shift(c.prog[sp+1:], 1)
		jp := c.emit(inst{op: opJmp, x: sp})
		_ = jp
		c.prog[sp].x = sp + 1
		c.prog[sp].y = len(c.prog)
	case '+':
		c.pos++
		sp := c.emit(inst{op: opSplit})
		c.prog[sp].x = start
		c.prog[sp].y = len(c.prog)
	case '?':
		c.pos++
		body := append([]inst(nil), c.prog[start:]...)
		c.prog = c.prog[:start]
		sp := c.emit(inst{op: opSplit})
		c.prog = append(c.prog, body...)
		shift(c.prog[sp+1:], 1)
		c.prog[sp].x = sp + 1
		c.prog[sp].y = len(c.prog)
	}
	return nil
}

// shift relocates absolute targets in a copied body by delta.
func shift(body []inst, delta int) {
	for i := range body {
		switch body[i].op {
		case opSplit:
			body[i].x += delta
			body[i].y += delta
		case opJmp:
			body[i].x += delta
		}
	}
}

func (c *compiler) atom() error {
	ch := c.peek()
	switch ch {
	case '(':
		c.pos++
		c.ncap++
		n := c.ncap
		c.emit(inst{op: opSave, x: 2 * n})
		if err := c.alternation(); err != nil {
			return err
		}
		if c.peek() != ')' {
			return fmt.Errorf("rx: missing ) in %q", c.pat)
		}
		c.pos++
		c.emit(inst{op: opSave, x: 2*n + 1})
	case '.':
		c.pos++
		c.emit(inst{op: opAny})
	case '^':
		c.pos++
		c.emit(inst{op: opBOL})
	case '$':
		c.pos++
		c.emit(inst{op: opEOL})
	case '[':
		c.pos++
		set, err := c.class()
		if err != nil {
			return err
		}
		c.emit(inst{op: opClass, set: set})
	case '\\':
		c.pos++
		e := c.peek()
		c.pos++
		if set := escapeClass(e); set != nil {
			c.emit(inst{op: opClass, set: set})
			return nil
		}
		c.emit(inst{op: opChar, c: escapeChar(e)})
	case '*', '+', '?':
		return fmt.Errorf("rx: quantifier %q with nothing to repeat", ch)
	case 0:
		return fmt.Errorf("rx: unexpected end of pattern")
	default:
		c.pos++
		c.emit(inst{op: opChar, c: ch})
	}
	return nil
}

func (c *compiler) class() (*classSet, error) {
	set := &classSet{}
	if c.peek() == '^' {
		set.negate = true
		c.pos++
	}
	first := true
	for {
		ch := c.peek()
		if ch == 0 {
			return nil, fmt.Errorf("rx: missing ] in %q", c.pat)
		}
		if ch == ']' && !first {
			c.pos++
			return set, nil
		}
		first = false
		if ch == '\\' {
			c.pos++
			e := c.peek()
			c.pos++
			if sub := escapeClass(e); sub != nil {
				for b := 0; b < 256; b++ {
					if sub.has(byte(b)) {
						set.add(byte(b))
					}
				}
				continue
			}
			ch = escapeChar(e)
		} else {
			c.pos++
		}
		if c.peek() == '-' && c.pos+1 < len(c.pat) && c.pat[c.pos+1] != ']' {
			c.pos++
			hi := c.peek()
			c.pos++
			if hi == '\\' {
				hi = escapeChar(c.peek())
				c.pos++
			}
			if hi < ch {
				return nil, fmt.Errorf("rx: invalid range %c-%c", ch, hi)
			}
			set.addRange(ch, hi)
		} else {
			set.add(ch)
		}
	}
}

func escapeChar(e byte) byte {
	switch e {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0':
		return 0
	}
	return e
}

func escapeClass(e byte) *classSet {
	mk := func(fill func(*classSet), neg bool) *classSet {
		s := &classSet{negate: neg}
		fill(s)
		return s
	}
	digits := func(s *classSet) { s.addRange('0', '9') }
	words := func(s *classSet) {
		s.addRange('a', 'z')
		s.addRange('A', 'Z')
		s.addRange('0', '9')
		s.add('_')
	}
	space := func(s *classSet) {
		for _, c := range []byte{' ', '\t', '\n', '\r', '\f', 0x0b} {
			s.add(c)
		}
	}
	switch e {
	case 'd':
		return mk(digits, false)
	case 'D':
		return mk(digits, true)
	case 'w':
		return mk(words, false)
	case 'W':
		return mk(words, true)
	case 's':
		return mk(space, false)
	case 'S':
		return mk(space, true)
	}
	return nil
}
