package mipsi

// Superinstruction tier: an emulator cannot rewrite guest text (the guest
// may read or checksum its own code), so MIPSI fuses the way real
// emulators do — a predecode pass over the text segment finds hot adjacent
// pairs and records them in a dispatch-side table; the fetch loop then
// dispatches a recorded pair as one fused virtual command through a
// combined handler.  Guest-architectural state moves exactly as before:
// both instructions execute unchanged, so the tier is semantically
// transparent and only the dispatch accounting changes.

import "interplab/internal/mips"

// Predecode/fused-dispatch costs, in native instructions.
const (
	costFusePredecode = 3 // per text word: decode, classify, table store
	costFusedDispatch = 8 // predecode-table load, pair check, indirect jump
)

// mipsiFusedPairs lists the fused pairs, hottest first, as measured by the
// profile layer's pair counts on the des workload (the opt-matrix
// experiment's hot-pair report reproduces the table).  Every half is
// straight-line (ALU, shift, load, store, or lui-class immediate): no
// branches, jumps, or syscalls, so the second half always executes
// immediately after the first.
var mipsiFusedPairs = [][2]mips.Op{
	{mips.LW, mips.ADDIU},
	{mips.SW, mips.SW},
	{mips.LW, mips.LW},
	{mips.ADDIU, mips.LW},
	{mips.ADDU, mips.LW},
	{mips.SW, mips.ADDU},
	{mips.LUI, mips.ORI},
	{mips.SLL, mips.ADDU},
}

// mipsiFuseIndex maps an opcode pair to its mipsiFusedPairs index.
var mipsiFuseIndex = func() map[[2]mips.Op]int {
	m := make(map[[2]mips.Op]int, len(mipsiFusedPairs))
	for i, pair := range mipsiFusedPairs {
		m[pair] = i
	}
	return m
}()

// handlerSize mirrors the baseline handler footprints New registers.
func handlerSize(o mips.Op) int {
	switch o.Class() {
	case mips.ClassLoad, mips.ClassStore:
		return 40
	case mips.ClassBranch:
		return 20
	case mips.ClassJump:
		return 16
	case mips.ClassMulDiv:
		return 24
	case mips.ClassSyscall:
		return 200
	}
	return 12
}

// ensureTiers runs the predecode pass before the first Step when the
// superinstruction tier is on.  Fused handler routines and op names join
// the instrumentation image here, in fixed table order, so the baseline
// image layout is untouched with the tier off.
func (ip *Interp) ensureTiers() {
	if ip.tiersReady {
		return
	}
	ip.tiersReady = true
	if !ip.Superinstructions {
		return
	}
	ip.rFuse = ip.img.Routine("mipsi.fuse", 72)
	for _, pair := range mipsiFusedPairs {
		name := pair[0].String() + "+" + pair[1].String()
		// A fused handler's body is both halves' bodies plus glue: the
		// superinstruction trade of instruction-cache footprint for
		// dispatch, which the opt-matrix icache sweeps measure.
		size := handlerSize(pair[0]) + handlerSize(pair[1]) + 6
		ip.fusedH = append(ip.fusedH, ip.img.Routine("mipsi.op."+name, size))
		ip.fusedIDs = append(ip.fusedIDs, ip.p.OpName(name))
	}
	ip.fuseText()
}

// fuseText predecodes the guest text and records every non-overlapping
// occurrence of a fused pair (greedy, left to right).  Pairs split across
// a page boundary are skipped: the fetch fast path caches one translated
// page, and a fused fetch must stay within it.  The pass is charged to
// the startup phase, like the binary load.
func (ip *Interp) fuseText() {
	p := ip.p
	p.SetStartup(true)
	p.Call(ip.rFuse)
	prog := ip.M.Prog
	ip.fusedAt = make(map[uint32]int)
	for i := 0; i < len(prog.Text); i++ {
		pc := prog.TextBase + uint32(i)*4
		p.Exec(ip.rFuse, costFusePredecode)
		if i+1 >= len(prog.Text) || pc>>12 != (pc+4)>>12 {
			continue
		}
		a := mips.Decode(prog.Text[i], pc)
		b := mips.Decode(prog.Text[i+1], pc+4)
		if idx, ok := mipsiFuseIndex[[2]mips.Op{a.Op, b.Op}]; ok {
			ip.fusedAt[pc] = idx
			ip.FusedSites++
			i++ // greedy: a fused second half never starts another pair
		}
	}
	p.Ret()
	p.SetStartup(false)
}

// stepFused interprets one fused pair as a single virtual command: one
// trip through the fetch loop and the predecode table, then both halves
// execute inside the fused handler.
func (ip *Interp) stepFused(pc uint32, in mips.Inst, idx int) error {
	m, p := ip.M, ip.p
	p.BeginCommand(ip.fusedIDs[idx])

	// One fetch covers the pair: the site is same-page by construction,
	// so the second word rides the first's translation.
	p.Exec(ip.rFetch, costFetchLoop)
	if page := pc >> 12; page == ip.lastFetchPage {
		p.Exec(ip.rFetch, costFetchFast)
	} else {
		ip.translate(pc)
		ip.lastFetchPage = page
	}
	p.Load(guestBias | pc)
	p.Load(guestBias | (pc + 4))
	// Predecoded dispatch replaces the decode switch entirely.
	p.Exec(ip.rDecode, costFusedDispatch)
	p.Load(ip.regs.Addr(uint32(in.Rs) * 4))
	p.Load(ip.regs.Addr(uint32(in.Rt) * 4))

	p.BeginExecute()
	h := ip.fusedH[idx]
	info, err := m.Exec(pc, in)
	if err != nil {
		if err == ErrExited {
			p.EndCommand()
		}
		return err
	}
	ip.chargeExec(h, in, info)

	// The first half is straight-line, so the machine now sits on the
	// second: re-fetch architecturally (free — the word was predecoded)
	// and execute it under the same command.
	pc2, in2, err := m.Fetch()
	if err != nil {
		return err
	}
	p.Load(ip.regs.Addr(uint32(in2.Rs) * 4))
	p.Load(ip.regs.Addr(uint32(in2.Rt) * 4))
	info2, err := m.Exec(pc2, in2)
	if err != nil {
		if err == ErrExited {
			p.EndCommand()
		}
		return err
	}
	ip.chargeExec(h, in2, info2)
	p.EndCommand()
	return nil
}
