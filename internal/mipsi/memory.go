// Package mipsi is the laboratory's MIPSI: an instruction-level emulator
// for the MIPS R3000 subset of internal/mips, structured — like the
// original — as the initial stages of a CPU pipeline performed explicitly
// in software: fetch, decode, execute, with every guest memory access
// translated through in-core simulated page tables.
//
// The package provides two execution modes over the same Machine:
//
//   - Interp is MIPSI proper: each guest instruction is one virtual
//     command; fetch/decode and execute costs are accounted through an
//     atom.Probe, and guest memory translations are charged to the
//     "memmodel" region (§3.3 of the paper).
//
//   - Native executes the binary directly: each guest instruction is
//     exactly one native instruction event.  This is how the compiled-C
//     baselines of Table 1, the C des row of Table 2, and the native SPEC
//     runs of Figure 3 are produced.
package mipsi

import "fmt"

// Page geometry of the simulated page tables (two-level, 4 KB pages —
// the R3000's natural size).
const (
	pageBits   = 12
	pageSize   = 1 << pageBits
	level1Bits = 10
	level2Bits = 32 - pageBits - level1Bits
)

type page [pageSize]byte

// Memory is the guest address space: a two-level page table over 4 KB
// pages, allocated on demand.
type Memory struct {
	root [1 << level1Bits]*[1 << level2Bits]*page

	// Translations counts page-table walks, for instrumentation.
	Translations uint64
}

// NewMemory returns an empty address space.
func NewMemory() *Memory { return &Memory{} }

// translate walks the page tables and returns the page for vaddr,
// allocating if alloc is set.
func (m *Memory) translate(vaddr uint32, alloc bool) (*page, error) {
	m.Translations++
	i1 := vaddr >> (32 - level1Bits)
	i2 := vaddr >> pageBits & (1<<level2Bits - 1)
	l2 := m.root[i1]
	if l2 == nil {
		if !alloc {
			return nil, fmt.Errorf("mipsi: unmapped address %#x", vaddr)
		}
		l2 = new([1 << level2Bits]*page)
		m.root[i1] = l2
	}
	pg := l2[i2]
	if pg == nil {
		if !alloc {
			return nil, fmt.Errorf("mipsi: unmapped address %#x", vaddr)
		}
		pg = new(page)
		l2[i2] = pg
	}
	return pg, nil
}

// LoadByte reads one byte.
func (m *Memory) LoadByte(vaddr uint32) (byte, error) {
	pg, err := m.translate(vaddr, false)
	if err != nil {
		return 0, err
	}
	return pg[vaddr&(pageSize-1)], nil
}

// LoadHalf reads a little-endian halfword.
func (m *Memory) LoadHalf(vaddr uint32) (uint16, error) {
	b0, err := m.LoadByte(vaddr)
	if err != nil {
		return 0, err
	}
	b1, err := m.LoadByte(vaddr + 1)
	if err != nil {
		return 0, err
	}
	return uint16(b0) | uint16(b1)<<8, nil
}

// LoadWord reads a little-endian word.
func (m *Memory) LoadWord(vaddr uint32) (uint32, error) {
	pg, err := m.translate(vaddr, false)
	if err != nil {
		return 0, err
	}
	off := vaddr & (pageSize - 1)
	if off+4 <= pageSize {
		return uint32(pg[off]) | uint32(pg[off+1])<<8 | uint32(pg[off+2])<<16 | uint32(pg[off+3])<<24, nil
	}
	// Straddles a page.
	var v uint32
	for i := uint32(0); i < 4; i++ {
		b, err := m.LoadByte(vaddr + i)
		if err != nil {
			return 0, err
		}
		v |= uint32(b) << (8 * i)
	}
	return v, nil
}

// StoreByte writes one byte, allocating the page if needed.
func (m *Memory) StoreByte(vaddr uint32, v byte) error {
	pg, err := m.translate(vaddr, true)
	if err != nil {
		return err
	}
	pg[vaddr&(pageSize-1)] = v
	return nil
}

// StoreHalf writes a little-endian halfword.
func (m *Memory) StoreHalf(vaddr uint32, v uint16) error {
	if err := m.StoreByte(vaddr, byte(v)); err != nil {
		return err
	}
	return m.StoreByte(vaddr+1, byte(v>>8))
}

// StoreWord writes a little-endian word.
func (m *Memory) StoreWord(vaddr uint32, v uint32) error {
	pg, err := m.translate(vaddr, true)
	if err != nil {
		return err
	}
	off := vaddr & (pageSize - 1)
	if off+4 <= pageSize {
		pg[off] = byte(v)
		pg[off+1] = byte(v >> 8)
		pg[off+2] = byte(v >> 16)
		pg[off+3] = byte(v >> 24)
		return nil
	}
	for i := uint32(0); i < 4; i++ {
		if err := m.StoreByte(vaddr+i, byte(v>>(8*i))); err != nil {
			return err
		}
	}
	return nil
}

// WriteBytes copies b into guest memory at vaddr.
func (m *Memory) WriteBytes(vaddr uint32, b []byte) error {
	for i, c := range b {
		if err := m.StoreByte(vaddr+uint32(i), c); err != nil {
			return err
		}
	}
	return nil
}

// ReadBytes copies n bytes out of guest memory.
func (m *Memory) ReadBytes(vaddr uint32, n int) ([]byte, error) {
	out := make([]byte, n)
	for i := range out {
		b, err := m.LoadByte(vaddr + uint32(i))
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}

// ReadCString reads a NUL-terminated string (bounded at 4096 bytes).
func (m *Memory) ReadCString(vaddr uint32) (string, error) {
	var out []byte
	for i := 0; i < 4096; i++ {
		b, err := m.LoadByte(vaddr + uint32(i))
		if err != nil {
			return "", err
		}
		if b == 0 {
			return string(out), nil
		}
		out = append(out, b)
	}
	return "", fmt.Errorf("mipsi: unterminated string at %#x", vaddr)
}
