package mipsi

import (
	"fmt"

	"interplab/internal/mips"
	"interplab/internal/vfs"
)

// Syscall numbers of the laboratory's guest ABI ($v0 selects, $a0..$a2 are
// arguments, $v0 returns).
const (
	SysExit  = 1
	SysRead  = 3
	SysWrite = 4
	SysOpen  = 5
	SysClose = 6
	SysSbrk  = 9
)

// ErrExited is reported by Step once the guest has called exit.
var ErrExited = fmt.Errorf("mipsi: program exited")

// StepInfo describes one architecturally executed instruction, with
// everything the instrumentation wrappers need to account it.
type StepInfo struct {
	PC   uint32
	Inst mips.Inst
	// MemAddr is the effective address for loads/stores.
	MemAddr uint32
	// Taken reports a conditional branch's outcome.
	Taken bool
	// Target is the control-transfer destination, when taken.
	Target uint32
	// InDelaySlot reports the instruction executed in a branch delay slot.
	InDelaySlot bool
	// SyscallNum is the service number when Inst is a syscall.
	SyscallNum uint32
	// SyscallBytes is the payload size a read/write syscall moved.
	SyscallBytes int
}

// Machine is the architectural state of one guest: registers, hi/lo, pc,
// guest memory, and the descriptor table of the hosting OS.
type Machine struct {
	Regs [32]uint32
	Hi   uint32
	Lo   uint32
	PC   uint32

	Mem  *Memory
	Prog *mips.Program
	OS   *vfs.OS

	brk      uint32
	exited   bool
	ExitCode uint32

	// Steps counts architecturally executed instructions.
	Steps uint64

	// branch delay: when a branch at PC resolves, the instruction at
	// PC+4 still executes before control transfers.
	delayActive bool
	delayTarget uint32
}

// NewMachine loads prog into a fresh address space.
func NewMachine(prog *mips.Program, os *vfs.OS) (*Machine, error) {
	m := &Machine{Mem: NewMemory(), Prog: prog, OS: os, PC: prog.Entry}
	for i, w := range prog.Text {
		if err := m.Mem.StoreWord(prog.TextBase+uint32(i)*4, w); err != nil {
			return nil, err
		}
	}
	if err := m.Mem.WriteBytes(prog.DataBase, prog.Data); err != nil {
		return nil, err
	}
	m.brk = (prog.DataEnd() + mips.HeapAlign - 1) &^ (mips.HeapAlign - 1)
	if m.brk < prog.DataBase {
		m.brk = prog.DataBase
	}
	m.Regs[mips.RegSP] = mips.StackTop
	// Touch the stack page so deep-recursion stores are cheap.
	if err := m.Mem.StoreWord(mips.StackTop-4, 0); err != nil {
		return nil, err
	}
	return m, nil
}

// Exited reports whether the guest has called exit.
func (m *Machine) Exited() bool { return m.exited }

// Brk returns the current heap break.
func (m *Machine) Brk() uint32 { return m.brk }

func signed(v uint32) int32 { return int32(v) }

// Step fetches and executes one instruction.
func (m *Machine) Step() (StepInfo, error) {
	pc, in, err := m.Fetch()
	if err != nil {
		return StepInfo{}, err
	}
	return m.Exec(pc, in)
}

// Fetch reads and decodes the next instruction without changing state, so
// instrumentation can open the virtual command before execution.
func (m *Machine) Fetch() (uint32, mips.Inst, error) {
	if m.exited {
		return 0, mips.Inst{}, ErrExited
	}
	word, err := m.Mem.LoadWord(m.PC)
	if err != nil {
		return 0, mips.Inst{}, fmt.Errorf("mipsi: fetch at %#x: %w", m.PC, err)
	}
	return m.PC, mips.Decode(word, m.PC), nil
}

// Exec executes the instruction fetched at pc and returns what happened.
func (m *Machine) Exec(pc uint32, in mips.Inst) (StepInfo, error) {
	info := StepInfo{PC: pc, Inst: in, InDelaySlot: m.delayActive}

	// Default successor; a pending delayed branch overrides it after this
	// instruction completes.
	next := pc + 4
	if m.delayActive {
		next = m.delayTarget
		m.delayActive = false
	}

	r := &m.Regs
	rs, rt := r[in.Rs], r[in.Rt]

	setReg := func(n int, v uint32) {
		if n != 0 {
			r[n] = v
		}
	}
	branch := func(taken bool) {
		info.Taken = taken
		if taken {
			info.Target = in.BranchTarget(pc)
			m.delayActive = true
			m.delayTarget = info.Target
		}
	}

	switch in.Op {
	case mips.SLL:
		setReg(in.Rd, rt<<uint(in.Shamt))
	case mips.SRL:
		setReg(in.Rd, rt>>uint(in.Shamt))
	case mips.SRA:
		setReg(in.Rd, uint32(signed(rt)>>uint(in.Shamt)))
	case mips.SLLV:
		setReg(in.Rd, rt<<(rs&31))
	case mips.SRLV:
		setReg(in.Rd, rt>>(rs&31))
	case mips.SRAV:
		setReg(in.Rd, uint32(signed(rt)>>(rs&31)))
	case mips.JR:
		info.Taken, info.Target = true, rs
		m.delayActive, m.delayTarget = true, rs
	case mips.JALR:
		setReg(in.Rd, pc+8)
		info.Taken, info.Target = true, rs
		m.delayActive, m.delayTarget = true, rs
	case mips.SYSCALL:
		if err := m.syscall(&info); err != nil {
			return info, err
		}
	case mips.BREAK:
		return info, fmt.Errorf("mipsi: break at %#x", pc)
	case mips.MFHI:
		setReg(in.Rd, m.Hi)
	case mips.MTHI:
		m.Hi = rs
	case mips.MFLO:
		setReg(in.Rd, m.Lo)
	case mips.MTLO:
		m.Lo = rs
	case mips.MULT:
		prod := int64(signed(rs)) * int64(signed(rt))
		m.Lo, m.Hi = uint32(prod), uint32(prod>>32)
	case mips.MULTU:
		prod := uint64(rs) * uint64(rt)
		m.Lo, m.Hi = uint32(prod), uint32(prod>>32)
	case mips.DIV:
		if rt != 0 {
			m.Lo = uint32(signed(rs) / signed(rt))
			m.Hi = uint32(signed(rs) % signed(rt))
		}
	case mips.DIVU:
		if rt != 0 {
			m.Lo = rs / rt
			m.Hi = rs % rt
		}
	case mips.ADD, mips.ADDU:
		setReg(in.Rd, rs+rt)
	case mips.SUB, mips.SUBU:
		setReg(in.Rd, rs-rt)
	case mips.AND:
		setReg(in.Rd, rs&rt)
	case mips.OR:
		setReg(in.Rd, rs|rt)
	case mips.XOR:
		setReg(in.Rd, rs^rt)
	case mips.NOR:
		setReg(in.Rd, ^(rs | rt))
	case mips.SLT:
		if signed(rs) < signed(rt) {
			setReg(in.Rd, 1)
		} else {
			setReg(in.Rd, 0)
		}
	case mips.SLTU:
		if rs < rt {
			setReg(in.Rd, 1)
		} else {
			setReg(in.Rd, 0)
		}
	case mips.BLTZ:
		branch(signed(rs) < 0)
	case mips.BGEZ:
		branch(signed(rs) >= 0)
	case mips.J:
		info.Taken, info.Target = true, in.Target
		m.delayActive, m.delayTarget = true, in.Target
	case mips.JAL:
		r[mips.RegRA] = pc + 8
		info.Taken, info.Target = true, in.Target
		m.delayActive, m.delayTarget = true, in.Target
	case mips.BEQ:
		branch(rs == rt)
	case mips.BNE:
		branch(rs != rt)
	case mips.BLEZ:
		branch(signed(rs) <= 0)
	case mips.BGTZ:
		branch(signed(rs) > 0)
	case mips.ADDI, mips.ADDIU:
		setReg(in.Rt, rs+uint32(in.Imm))
	case mips.SLTI:
		if signed(rs) < in.Imm {
			setReg(in.Rt, 1)
		} else {
			setReg(in.Rt, 0)
		}
	case mips.SLTIU:
		if rs < uint32(in.Imm) {
			setReg(in.Rt, 1)
		} else {
			setReg(in.Rt, 0)
		}
	case mips.ANDI:
		setReg(in.Rt, rs&uint32(in.Imm))
	case mips.ORI:
		setReg(in.Rt, rs|uint32(in.Imm))
	case mips.XORI:
		setReg(in.Rt, rs^uint32(in.Imm))
	case mips.LUI:
		setReg(in.Rt, uint32(in.Imm)<<16)
	case mips.LB:
		info.MemAddr = rs + uint32(in.Imm)
		b, err := m.Mem.LoadByte(info.MemAddr)
		if err != nil {
			return info, err
		}
		setReg(in.Rt, uint32(int32(int8(b))))
	case mips.LBU:
		info.MemAddr = rs + uint32(in.Imm)
		b, err := m.Mem.LoadByte(info.MemAddr)
		if err != nil {
			return info, err
		}
		setReg(in.Rt, uint32(b))
	case mips.LH:
		info.MemAddr = rs + uint32(in.Imm)
		h, err := m.Mem.LoadHalf(info.MemAddr)
		if err != nil {
			return info, err
		}
		setReg(in.Rt, uint32(int32(int16(h))))
	case mips.LHU:
		info.MemAddr = rs + uint32(in.Imm)
		h, err := m.Mem.LoadHalf(info.MemAddr)
		if err != nil {
			return info, err
		}
		setReg(in.Rt, uint32(h))
	case mips.LW:
		info.MemAddr = rs + uint32(in.Imm)
		w, err := m.Mem.LoadWord(info.MemAddr)
		if err != nil {
			return info, err
		}
		setReg(in.Rt, w)
	case mips.SB:
		info.MemAddr = rs + uint32(in.Imm)
		if err := m.Mem.StoreByte(info.MemAddr, byte(rt)); err != nil {
			return info, err
		}
	case mips.SH:
		info.MemAddr = rs + uint32(in.Imm)
		if err := m.Mem.StoreHalf(info.MemAddr, uint16(rt)); err != nil {
			return info, err
		}
	case mips.SW:
		info.MemAddr = rs + uint32(in.Imm)
		if err := m.Mem.StoreWord(info.MemAddr, rt); err != nil {
			return info, err
		}
	default:
		return info, fmt.Errorf("mipsi: invalid instruction %#x at %#x", in.Raw, pc)
	}

	m.PC = next
	m.Steps++
	return info, nil
}

// syscall services a trap.  Payload sizes are reported in info for
// instrumentation.
func (m *Machine) syscall(info *StepInfo) error {
	num := m.Regs[mips.RegV0]
	a0, a1, a2 := m.Regs[mips.RegA0], m.Regs[mips.RegA1], m.Regs[mips.RegA2]
	info.SyscallNum = num
	switch num {
	case SysExit:
		m.exited = true
		m.ExitCode = a0
	case SysRead:
		b, err := m.OS.Read(int(a0), int(a2))
		if err != nil {
			m.Regs[mips.RegV0] = ^uint32(0)
			return nil
		}
		if err := m.Mem.WriteBytes(a1, b); err != nil {
			return err
		}
		m.Regs[mips.RegV0] = uint32(len(b))
		info.SyscallBytes = len(b)
	case SysWrite:
		b, err := m.Mem.ReadBytes(a1, int(a2))
		if err != nil {
			return err
		}
		n, err := m.OS.Write(int(a0), b)
		if err != nil {
			m.Regs[mips.RegV0] = ^uint32(0)
			return nil
		}
		m.Regs[mips.RegV0] = uint32(n)
		info.SyscallBytes = n
	case SysOpen:
		path, err := m.Mem.ReadCString(a0)
		if err != nil {
			return err
		}
		fd, err := m.OS.Open(path, a1 != 0)
		if err != nil {
			m.Regs[mips.RegV0] = ^uint32(0)
			return nil
		}
		m.Regs[mips.RegV0] = uint32(fd)
	case SysClose:
		if err := m.OS.Close(int(a0)); err != nil {
			m.Regs[mips.RegV0] = ^uint32(0)
			return nil
		}
		m.Regs[mips.RegV0] = 0
	case SysSbrk:
		old := m.brk
		m.brk += a0
		m.Regs[mips.RegV0] = old
	default:
		return fmt.Errorf("mipsi: unknown syscall %d at %#x", num, info.PC)
	}
	return nil
}
