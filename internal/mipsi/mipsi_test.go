package mipsi

import (
	"strings"
	"testing"

	"interplab/internal/atom"
	"interplab/internal/mips"
	"interplab/internal/mips/asm"
	"interplab/internal/trace"
	"interplab/internal/vfs"
)

func assemble(t *testing.T, src string) *mips.Program {
	t.Helper()
	p, err := asm.Assemble("test", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

// sumProgram computes 1+2+...+10 into $s0 and exits with that status.
const sumProgram = `
	.text
main:
	li $s0, 0
	li $t0, 10
loop:
	addu $s0, $s0, $t0
	addiu $t0, $t0, -1
	bgtz $t0, loop
	nop
	move $a0, $s0
	li $v0, 1
	syscall
	nop
`

func TestMachineArithmeticLoop(t *testing.T) {
	m, err := NewMachine(assemble(t, sumProgram), vfs.New())
	if err != nil {
		t.Fatal(err)
	}
	for !m.Exited() {
		if _, err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if m.ExitCode != 55 {
		t.Errorf("exit code = %d, want 55", m.ExitCode)
	}
	if m.Regs[mips.RegS0] != 55 {
		t.Errorf("$s0 = %d, want 55", m.Regs[mips.RegS0])
	}
}

func TestMachineDelaySlot(t *testing.T) {
	// The instruction in the branch delay slot executes even when the
	// branch is taken: $t1 must become 7.
	src := `
	.text
main:
	li $t1, 0
	b over
	li $t1, 7
	li $t1, 99
over:
	move $a0, $t1
	li $v0, 1
	syscall
	nop
`
	m, err := NewMachine(assemble(t, src), vfs.New())
	if err != nil {
		t.Fatal(err)
	}
	for !m.Exited() {
		if _, err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if m.ExitCode != 7 {
		t.Errorf("delay slot not executed: exit = %d, want 7", m.ExitCode)
	}
}

func TestMachineJalAndJr(t *testing.T) {
	src := `
	.text
main:
	jal double
	li $a0, 21
	li $v0, 1
	move $a0, $v1
	syscall
	nop
double:
	addu $v1, $a0, $a0
	jr $ra
	nop
`
	m, err := NewMachine(assemble(t, src), vfs.New())
	if err != nil {
		t.Fatal(err)
	}
	for !m.Exited() {
		if _, err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if m.ExitCode != 42 {
		t.Errorf("exit = %d, want 42", m.ExitCode)
	}
}

func TestMachineMemoryOps(t *testing.T) {
	src := `
	.data
val:	.word 100
bytes:	.byte 0xff, 1
	.text
main:
	la $t0, val
	lw $t1, 0($t0)
	addiu $t1, $t1, 1
	sw $t1, 0($t0)
	lw $a0, 0($t0)
	la $t2, bytes
	lb $t3, 0($t2)        # sign-extended: -1
	addu $a0, $a0, $t3
	lbu $t4, 0($t2)       # zero-extended: 255
	sltiu $t5, $t4, 256
	addu $a0, $a0, $t5    # 101 - 1 + 1 = 101
	li $v0, 1
	syscall
	nop
`
	m, err := NewMachine(assemble(t, src), vfs.New())
	if err != nil {
		t.Fatal(err)
	}
	for !m.Exited() {
		if _, err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if m.ExitCode != 101 {
		t.Errorf("exit = %d, want 101", m.ExitCode)
	}
}

func TestMachineMulDiv(t *testing.T) {
	src := `
	.text
main:
	li $t0, -6
	li $t1, 7
	mult $t0, $t1
	mflo $t2          # -42
	li $t3, 5
	div $t2, $t3
	mflo $t4          # -8 (trunc toward zero)
	mfhi $t5          # -2
	sub $a0, $t4, $t5 # -8 - -2 = -6
	neg $a0, $a0
	li $v0, 1
	syscall
	nop
`
	m, err := NewMachine(assemble(t, src), vfs.New())
	if err != nil {
		t.Fatal(err)
	}
	for !m.Exited() {
		if _, err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if m.ExitCode != 6 {
		t.Errorf("exit = %d, want 6", m.ExitCode)
	}
}

func TestMachineSyscallFileIO(t *testing.T) {
	src := `
	.data
path:	.asciiz "in.txt"
out:	.asciiz "out.txt"
buf:	.space 64
	.text
main:
	# fd = open("in.txt", 0)
	la $a0, path
	li $a1, 0
	li $v0, 5
	syscall
	nop
	move $s0, $v0
	# read(fd, buf, 64)
	move $a0, $s0
	la $a1, buf
	li $a2, 64
	li $v0, 3
	syscall
	nop
	move $s1, $v0        # bytes read
	# write(stdout, buf, n)
	li $a0, 1
	la $a1, buf
	move $a2, $s1
	li $v0, 4
	syscall
	nop
	move $a0, $s1
	li $v0, 1
	syscall
	nop
`
	osys := vfs.New()
	osys.AddFile("in.txt", []byte("hello"))
	m, err := NewMachine(assemble(t, src), osys)
	if err != nil {
		t.Fatal(err)
	}
	for !m.Exited() {
		if _, err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if m.ExitCode != 5 {
		t.Errorf("exit = %d, want 5 bytes read", m.ExitCode)
	}
	if got := osys.Stdout.String(); got != "hello" {
		t.Errorf("stdout = %q", got)
	}
}

func TestMachineSbrk(t *testing.T) {
	src := `
	.text
main:
	li $a0, 64
	li $v0, 9
	syscall
	nop
	move $s0, $v0     # old break
	sw $s0, 0($s0)    # heap is writable
	lw $a0, 0($s0)
	xor $a0, $a0, $s0 # 0 if round-trip worked
	li $v0, 1
	syscall
	nop
`
	m, err := NewMachine(assemble(t, sumProgram), vfs.New())
	if err != nil {
		t.Fatal(err)
	}
	_ = m
	m2, err := NewMachine(assemble(t, src), vfs.New())
	if err != nil {
		t.Fatal(err)
	}
	for !m2.Exited() {
		if _, err := m2.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if m2.ExitCode != 0 {
		t.Errorf("heap round-trip failed: exit = %d", m2.ExitCode)
	}
}

func TestMemoryUnmappedLoadFails(t *testing.T) {
	mem := NewMemory()
	if _, err := mem.LoadWord(0xdead_0000); err == nil {
		t.Error("unmapped load must fail")
	}
	if err := mem.StoreWord(0xdead_0000, 1); err != nil {
		t.Errorf("store should allocate: %v", err)
	}
	v, err := mem.LoadWord(0xdead_0000)
	if err != nil || v != 1 {
		t.Errorf("round trip = %d, %v", v, err)
	}
}

func TestMemoryPageStraddle(t *testing.T) {
	mem := NewMemory()
	addr := uint32(pageSize - 2)
	if err := mem.StoreWord(addr, 0xaabbccdd); err != nil {
		t.Fatal(err)
	}
	v, err := mem.LoadWord(addr)
	if err != nil || v != 0xaabbccdd {
		t.Errorf("straddling word = %#x, %v", v, err)
	}
	if err := mem.StoreHalf(addr, 0x1122); err != nil {
		t.Fatal(err)
	}
	h, err := mem.LoadHalf(addr)
	if err != nil || h != 0x1122 {
		t.Errorf("straddling half = %#x, %v", h, err)
	}
}

func TestMemoryCString(t *testing.T) {
	mem := NewMemory()
	if err := mem.WriteBytes(0x1000, []byte("abc\x00def")); err != nil {
		t.Fatal(err)
	}
	s, err := mem.ReadCString(0x1000)
	if err != nil || s != "abc" {
		t.Errorf("cstring = %q, %v", s, err)
	}
}

// runBoth executes a program in both modes and checks architectural
// equivalence.
func runBoth(t *testing.T, src string) (*Interp, *Native) {
	t.Helper()
	prog := assemble(t, src)

	img := atom.NewImage()
	p := atom.NewProbe(img, trace.Discard)
	osys := vfs.New()
	osys.Instrument(img, p)
	ip, err := New(prog, osys, img, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := ip.Run(10_000_000); err != nil {
		t.Fatalf("interp run: %v", err)
	}

	nat, err := NewNative(assemble(t, src), vfs.New(), trace.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := nat.Run(10_000_000); err != nil {
		t.Fatalf("native run: %v", err)
	}
	return ip, nat
}

func TestInterpAndNativeAgree(t *testing.T) {
	ip, nat := runBoth(t, sumProgram)
	if ip.M.ExitCode != 55 || nat.M.ExitCode != 55 {
		t.Errorf("exit codes: interp=%d native=%d, want 55", ip.M.ExitCode, nat.M.ExitCode)
	}
	if ip.M.Steps != nat.M.Steps {
		t.Errorf("step counts differ: %d vs %d", ip.M.Steps, nat.M.Steps)
	}
}

func TestInterpCostBands(t *testing.T) {
	// The calibration targets of Table 2: MIPSI fetch/decode ≈ 47–51
	// native instructions per command, execute ≈ 17–23.
	ip, _ := runBoth(t, sumProgram)
	st := ip.p.Stats()
	if st.Commands != ip.M.Steps {
		t.Fatalf("commands (%d) must equal guest instructions (%d)", st.Commands, ip.M.Steps)
	}
	fd, ex := st.InstructionsPerCommand()
	if fd < 40 || fd > 60 {
		t.Errorf("fetch/decode per command = %.1f, want ~47-51", fd)
	}
	if ex < 5 || ex > 30 {
		t.Errorf("execute per command = %.1f, want ~17-23", ex)
	}
	if st.Startup == 0 {
		t.Error("binary load must be charged to startup")
	}
}

func TestInterpMemoryModelRegion(t *testing.T) {
	src := `
	.data
arr:	.space 400
	.text
main:
	la $t0, arr
	li $t1, 100
loop:
	sw $t1, 0($t0)
	lw $t2, 0($t0)
	addiu $t0, $t0, 4
	addiu $t1, $t1, -1
	bgtz $t1, loop
	nop
	li $v0, 1
	move $a0, $zero
	syscall
	nop
`
	prog := assemble(t, src)
	img := atom.NewImage()
	p := atom.NewProbe(img, trace.Discard)
	osys := vfs.New()
	osys.Instrument(img, p)
	ip, err := New(prog, osys, img, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := ip.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	st := ip.p.Stats()
	mm, ok := st.Region("memmodel")
	if !ok || mm.Accesses != 200 {
		t.Fatalf("memmodel accesses = %+v, want 200", mm)
	}
	per := mm.PerAccess()
	if per < 30 || per > 70 {
		t.Errorf("per-access cost = %.1f, want tens of instructions", per)
	}
	// §3.3: memory model should be 13–18% of instructions for this
	// memory-heavy loop it will be higher; just require a sane share.
	share := float64(mm.Instructions) / float64(st.Instructions-st.Startup)
	if share <= 0.05 || share >= 0.6 {
		t.Errorf("memmodel share = %.2f implausible", share)
	}
}

func TestNativeEventStream(t *testing.T) {
	prog := assemble(t, sumProgram)
	var rec trace.Recorder
	nat, err := NewNative(prog, vfs.New(), &rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := nat.Run(0); err != nil {
		t.Fatal(err)
	}
	// One event per guest instruction plus the synthetic kernel.
	if uint64(len(rec.Events)) < nat.M.Steps {
		t.Fatalf("events %d < steps %d", len(rec.Events), nat.M.Steps)
	}
	// The loop branch (bgtz) must appear taken 9 times, not-taken once.
	var taken, ntaken int
	for _, e := range rec.Events {
		if e.Kind == trace.Branch {
			if e.Taken() {
				taken++
			} else {
				ntaken++
			}
		}
	}
	if taken != 9 || ntaken != 1 {
		t.Errorf("branch outcomes taken=%d ntaken=%d, want 9/1", taken, ntaken)
	}
	if nat.Counter.Total != uint64(len(rec.Events)) {
		t.Error("counter must mirror the sink")
	}
}

func TestNativeDependencyFlags(t *testing.T) {
	src := `
	.text
main:
	li $t0, 1
	addu $t1, $t0, $t0   # depends on previous
	li $v0, 1
	move $a0, $zero
	syscall
	nop
`
	prog := assemble(t, src)
	var rec trace.Recorder
	nat, err := NewNative(prog, vfs.New(), &rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := nat.Run(0); err != nil {
		t.Fatal(err)
	}
	if !rec.Events[1].Dep() {
		t.Error("addu after li $t0 must carry the dependence flag")
	}
	if rec.Events[2].Dep() {
		t.Error("li $v0 does not read $t1")
	}
}

func TestInterpInvalidInstruction(t *testing.T) {
	prog := &mips.Program{
		Name:     "bad",
		TextBase: mips.TextBase,
		Text:     []uint32{0xfc00_0000},
		DataBase: mips.DataBase,
		Entry:    mips.TextBase,
		Symbols:  map[string]uint32{},
	}
	img := atom.NewImage()
	p := atom.NewProbe(img, trace.Discard)
	ip, err := New(prog, vfs.New(), img, p)
	if err != nil {
		t.Fatal(err)
	}
	err = ip.Run(10)
	if err == nil || !strings.Contains(err.Error(), "invalid") {
		t.Errorf("expected invalid-instruction error, got %v", err)
	}
}

func TestRunStepBudget(t *testing.T) {
	// An infinite loop must hit the budget, not hang.
	src := ".text\nmain:\n\tb main\n\tnop\n"
	nat, err := NewNative(assemble(t, src), vfs.New(), trace.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := nat.Run(1000); err == nil {
		t.Error("expected budget-exhausted error")
	}
}
