package mipsi

import (
	"testing"

	"interplab/internal/atom"
	"interplab/internal/mips"
	"interplab/internal/trace"
	"interplab/internal/vfs"
)

// runSuper executes memProgram with the superinstruction tier and returns
// the interpreter (runInterpWith verifies the exit code).
func runSuper(t *testing.T) (*Interp, atom.Stats) {
	t.Helper()
	var ip *Interp
	st := runInterpWith(t, func(i *Interp) {
		i.Superinstructions = true
		ip = i
	})
	return ip, st
}

// TestSuperinstructionsReduceDispatch: the fused tier must find sites
// (memProgram's loop body contains lw+addiu, and la expands to lui+ori)
// and both the command count and the dispatch cost must strictly drop.
func TestSuperinstructionsReduceDispatch(t *testing.T) {
	base := runInterpWith(t, func(*Interp) {})
	ip, st := runSuper(t)
	if ip.FusedSites == 0 {
		t.Fatal("predecode found no fused sites")
	}
	if st.Commands >= base.Commands {
		t.Errorf("commands = %d, must beat baseline %d", st.Commands, base.Commands)
	}
	if st.FetchDecode >= base.FetchDecode {
		t.Errorf("fetch_decode = %d, must beat baseline %d", st.FetchDecode, base.FetchDecode)
	}
}

// TestSuperinstructionsEquivalent: guest-visible state must be identical —
// the tier only changes accounting, never architecture.
func TestSuperinstructionsEquivalent(t *testing.T) {
	var baseIP, superIP *Interp
	runInterpWith(t, func(i *Interp) { baseIP = i })
	runInterpWith(t, func(i *Interp) {
		i.Superinstructions = true
		superIP = i
	})
	if baseIP.M.Steps != superIP.M.Steps {
		t.Errorf("architectural steps differ: %d vs %d", baseIP.M.Steps, superIP.M.Steps)
	}
	if baseIP.M.Regs != superIP.M.Regs {
		t.Errorf("register files differ:\nbase  %v\nsuper %v", baseIP.M.Regs, superIP.M.Regs)
	}
	if baseIP.M.ExitCode != superIP.M.ExitCode {
		t.Errorf("exit codes differ: %d vs %d", baseIP.M.ExitCode, superIP.M.ExitCode)
	}
}

// TestFusionSkipsDelaySlot: a fused site whose first half executes in a
// branch delay slot must run as a lone instruction — its architectural
// successor is the branch target, not the adjacent word.
func TestFusionSkipsDelaySlot(t *testing.T) {
	// The delay slot of the taken branch holds lw, and the next word is
	// addiu $s1 — a fused pair in the text, but the addiu must NOT
	// execute on the branch's path.
	src := `
	.data
word:	.word 7
	.text
main:
	la $s0, word
	li $s1, 100
	beq $zero, $zero, out
	lw $s2, 0($s0)
	addiu $s1, $s1, 1
out:
	li $v0, 1
	move $a0, $s1
	syscall
	nop
`
	run := func(super bool) *Interp {
		prog := assemble(t, src)
		img := atom.NewImage()
		p := atom.NewProbe(img, trace.Discard)
		osys := vfs.New()
		osys.Instrument(img, p)
		ip, err := New(prog, osys, img, p)
		if err != nil {
			t.Fatal(err)
		}
		ip.Superinstructions = super
		if err := ip.Run(0); err != nil {
			t.Fatal(err)
		}
		return ip
	}
	base, super := run(false), run(true)
	if base.M.ExitCode != 100 {
		t.Fatalf("baseline exit = %d, want 100 (addiu must be skipped)", base.M.ExitCode)
	}
	if super.M.ExitCode != base.M.ExitCode {
		t.Errorf("super exit = %d, baseline %d: fused pair executed across a delay slot",
			super.M.ExitCode, base.M.ExitCode)
	}
	if super.M.Regs[18] != 7 { // $s2: the delay-slot lw must still happen
		t.Errorf("$s2 = %d, want 7", super.M.Regs[18])
	}
}

// TestFusedPairTableIsStraightLine pins the table invariant stepFused
// relies on: every half falls through.
func TestFusedPairTableIsStraightLine(t *testing.T) {
	for _, pair := range mipsiFusedPairs {
		for _, op := range pair {
			switch op.Class() {
			case mips.ClassBranch, mips.ClassJump, mips.ClassSyscall:
				t.Errorf("fused half %v is control flow or a syscall", op)
			}
		}
	}
}
