package mipsi

import (
	"fmt"

	"interplab/internal/atom"
	"interplab/internal/mips"
	"interplab/internal/vfs"
)

// guestBias relocates guest data addresses out of the instrumentation
// image's own data space: to the interpreter, the guest's memory is just
// one more data structure, but it must not alias the interpreter's tables.
const guestBias uint32 = 0x8000_0000

// Cost model of the MIPSI implementation, in native instructions.  The
// constants describe the C implementation the paper measured (a fetch
// loop, a big decode switch, a two-level page-table walk) and are
// calibrated so that the per-command averages land in the bands of
// Table 2: fetch/decode ≈ 47–51, execute ≈ 17–23, and the §3.3 memory
// model at 13–18% of all instructions.
const (
	costFetchLoop = 12 // loop overhead: pc update, counters, exit checks
	costFetchFast = 5  // same-page fetch fast path (translation cached)
	costDecode    = 25 // field extraction plus the dispatch switch
	costTranslate = 38 // two-level page-table walk with protection checks
	costALU       = 5
	costShift     = 5
	costMulDiv    = 5
	costBranch    = 8
	costJump      = 7
	costMemOp     = 9 // address formation, alignment check, sign extension
	costSyscall   = 40
)

// Interp is MIPSI proper: the instrumented instruction-level emulator.
// Each guest instruction is one virtual command named by its mnemonic.
type Interp struct {
	M *Machine
	p *atom.Probe

	// FlatMemory models a hypothetical MIPSI without simulated page
	// tables (a direct array memory): the §3.3 ablation.  Translation
	// work collapses to a bounds check.
	FlatMemory bool

	// Threaded models threaded interpretation (§5, [Bell 73]): the
	// decode switch is replaced by an indirect jump through a handler
	// table, shrinking the per-command dispatch cost.
	Threaded bool

	// Superinstructions models the §5 superoperator direction: the
	// guest text is predecoded at first Run and hot adjacent pairs
	// (mipsiFusedPairs, selected from profile-layer pair counts) are
	// dispatched as one fused virtual command through a combined
	// handler.  FusedSites counts the static pair sites found.
	Superinstructions bool
	FusedSites        uint64

	img        *atom.Image
	rLoader    *atom.Routine
	rFetch     *atom.Routine
	rTranslate *atom.Routine
	rDecode    *atom.Routine
	rFuse      *atom.Routine
	handlers   [mips.NumOps]*atom.Routine
	opIDs      [mips.NumOps]atom.OpID

	tiersReady bool
	fusedAt    map[uint32]int // pc of a fused pair's first half -> pair index
	fusedH     []*atom.Routine
	fusedIDs   []atom.OpID

	memRegion atom.RegionID

	regs *atom.DataRegion
	pt   *atom.DataRegion

	lastFetchPage uint32
}

// New loads prog into a machine and instruments the interpreter against
// img/p.  The binary load is charged to the startup phase.
func New(prog *mips.Program, os *vfs.OS, img *atom.Image, p *atom.Probe) (*Interp, error) {
	ip := &Interp{p: p, img: img}
	// The interpreter's code layout: fetch loop, page-table walker, the
	// decode switch, then one handler per mnemonic.  Sizes are static
	// code footprints; together they come to ~7 KB, which is why MIPSI's
	// loop largely fits in an 8 KB instruction cache (§4.1).
	ip.rLoader = img.Routine("mipsi.loader", 120)
	ip.rFetch = img.Routine("mipsi.fetch", 80)
	ip.rTranslate = img.Routine("mipsi.translate", 100)
	ip.rDecode = img.Routine("mipsi.decode", 256)
	for op := 1; op < mips.NumOps; op++ {
		o := mips.Op(op)
		size := 12
		switch o.Class() {
		case mips.ClassLoad, mips.ClassStore:
			size = 40
		case mips.ClassBranch:
			size = 20
		case mips.ClassJump:
			size = 16
		case mips.ClassMulDiv:
			size = 24
		case mips.ClassSyscall:
			size = 200
		}
		ip.handlers[op] = img.Routine("mipsi.op."+o.String(), size)
		ip.opIDs[op] = p.OpName(o.String())
	}
	ip.regs = img.Data("mipsi.regs", 35*4) // 32 GPRs + hi, lo, pc
	ip.pt = img.Data("mipsi.pagetable", 64<<10)
	ip.memRegion = p.RegionName("memmodel")

	m, err := NewMachine(prog, os)
	if err != nil {
		return nil, err
	}
	ip.M = m
	ip.lastFetchPage = ^uint32(0)

	// Startup: copy the binary into guest memory, one word at a time.
	p.SetStartup(true)
	p.Call(ip.rLoader)
	for i := range prog.Text {
		p.Exec(ip.rLoader, 2)
		p.Store(guestBias | (prog.TextBase + uint32(i)*4))
	}
	for i := 0; i+4 <= len(prog.Data); i += 4 {
		p.Exec(ip.rLoader, 2)
		p.Store(guestBias | (prog.DataBase + uint32(i)))
	}
	p.Ret()
	p.SetStartup(false)
	return ip, nil
}

// translate charges one page-table walk for guest address vaddr: the walk
// code plus loads of the root entry, the leaf entry, and the frame pointer.
func (ip *Interp) translate(vaddr uint32) {
	p := ip.p
	if ip.FlatMemory {
		p.Exec(ip.rTranslate, 3) // bounds check and base add only
		return
	}
	p.Exec(ip.rTranslate, costTranslate)
	p.Load(ip.pt.Addr((vaddr >> 22) * 4))
	p.Load(ip.pt.Addr(4096 + (vaddr>>12&0x3fff)*4))
	p.Load(ip.pt.Addr(8))
}

// Step interprets one guest instruction (or one fused pair, when the
// superinstruction tier predecoded one at this pc).
func (ip *Interp) Step() error {
	ip.ensureTiers()
	m := ip.M
	pc, in, err := m.Fetch()
	if err != nil {
		return err
	}
	p := ip.p
	op := in.Op
	if op == mips.INVALID {
		return fmt.Errorf("mipsi: invalid instruction at %#x", pc)
	}
	// A delay-slot instruction executes alone even at a fused site: its
	// successor is the branch target, not the adjacent word.
	if ip.fusedAt != nil && !m.delayActive {
		if idx, ok := ip.fusedAt[pc]; ok {
			return ip.stepFused(pc, in, idx)
		}
	}
	p.BeginCommand(ip.opIDs[op])

	// Fetch: translate the PC (fast path when the page is unchanged, as
	// MIPSI caches the last text frame), then load the instruction word
	// from guest text, then decode and read the operand registers.
	p.Exec(ip.rFetch, costFetchLoop)
	if page := pc >> 12; page == ip.lastFetchPage {
		p.Exec(ip.rFetch, costFetchFast)
	} else {
		ip.translate(pc)
		ip.lastFetchPage = page
	}
	p.Load(guestBias | pc)
	if ip.Threaded {
		// Table-indexed dispatch: mask, index, indirect jump.
		p.Exec(ip.rDecode, 6)
	} else {
		p.Exec(ip.rDecode, costDecode)
	}
	p.Load(ip.regs.Addr(uint32(in.Rs) * 4))
	p.Load(ip.regs.Addr(uint32(in.Rt) * 4))

	p.BeginExecute()
	info, err := m.Exec(pc, in)
	if err != nil {
		if err == ErrExited {
			p.EndCommand()
		}
		return err
	}

	ip.chargeExec(ip.handlers[op], in, info)
	p.EndCommand()
	return nil
}

// chargeExec accounts one architecturally executed instruction against
// handler routine h (its own handler normally, the fused handler when the
// instruction ran as half of a superinstruction).
func (ip *Interp) chargeExec(h *atom.Routine, in mips.Inst, info StepInfo) {
	p := ip.p
	switch in.Op.Class() {
	case mips.ClassALU:
		p.Exec(h, costALU)
		p.Store(ip.regs.Addr(uint32(in.Rd) * 4))
	case mips.ClassShift:
		p.Exec(h, costShift)
		p.Store(ip.regs.Addr(uint32(in.Rd) * 4))
	case mips.ClassMulDiv:
		p.Exec(h, costMulDiv)
		p.ExecMul(h, 2)
		p.Store(ip.regs.Addr(32 * 4)) // hi
		p.Store(ip.regs.Addr(33 * 4)) // lo
	case mips.ClassBranch:
		p.Exec(h, costBranch)
		p.Store(ip.regs.Addr(34 * 4)) // next-pc
	case mips.ClassJump:
		p.Exec(h, costJump)
		p.Store(ip.regs.Addr(34 * 4))
	case mips.ClassLoad:
		p.Exec(h, costMemOp)
		p.Enter(ip.memRegion)
		ip.translate(info.MemAddr)
		p.CountAccess(ip.memRegion)
		p.Leave()
		p.Load(guestBias | info.MemAddr)
		p.Store(ip.regs.Addr(uint32(in.Rt) * 4))
	case mips.ClassStore:
		p.Exec(h, costMemOp)
		p.Enter(ip.memRegion)
		ip.translate(info.MemAddr)
		p.CountAccess(ip.memRegion)
		p.Leave()
		p.Store(guestBias | info.MemAddr)
	case mips.ClassSyscall:
		// The vfs layer has already charged its own precompiled-code
		// costs during m.Exec; here we charge the trap path and the
		// copy into guest memory.
		p.Exec(h, costSyscall)
		if in.Op == mips.SYSCALL && info.SyscallNum == SysRead && info.SyscallBytes > 0 {
			buf := ip.M.Regs[mips.RegA1]
			for i := 0; i < info.SyscallBytes; i += 4 {
				p.Exec(h, 1)
				p.Store(guestBias | (buf + uint32(i)))
			}
		}
	}
}

// Run interprets until exit or maxSteps guest instructions (0 = no limit).
func (ip *Interp) Run(maxSteps uint64) error {
	for maxSteps == 0 || ip.M.Steps < maxSteps {
		if err := ip.Step(); err != nil {
			if err == ErrExited || ip.M.Exited() {
				return nil
			}
			return err
		}
		if ip.M.Exited() {
			return nil
		}
	}
	return fmt.Errorf("mipsi: step budget exhausted (%d)", maxSteps)
}
