package mipsi

import (
	"testing"

	"interplab/internal/atom"
	"interplab/internal/trace"
	"interplab/internal/vfs"
)

// memProgram exercises loads and stores so the memory model is visible.
const memProgram = `
	.data
arr:	.space 400
	.text
main:
	la $t0, arr
	li $t1, 100
loop:
	sw $t1, 0($t0)
	lw $t2, 0($t0)
	addiu $t0, $t0, 4
	addiu $t1, $t1, -1
	bgtz $t1, loop
	nop
	li $v0, 1
	li $a0, 55
	syscall
	nop
`

// runInterpWith executes memProgram with the given knobs and returns stats.
func runInterpWith(t *testing.T, configure func(*Interp)) atom.Stats {
	t.Helper()
	prog := assemble(t, memProgram)
	img := atom.NewImage()
	p := atom.NewProbe(img, trace.Discard)
	osys := vfs.New()
	osys.Instrument(img, p)
	ip, err := New(prog, osys, img, p)
	if err != nil {
		t.Fatal(err)
	}
	configure(ip)
	if err := ip.Run(0); err != nil {
		t.Fatal(err)
	}
	if ip.M.ExitCode != 55 {
		t.Fatalf("exit = %d", ip.M.ExitCode)
	}
	return ip.p.Stats()
}

func TestThreadedDispatchReducesFetchDecode(t *testing.T) {
	base := runInterpWith(t, func(*Interp) {})
	thr := runInterpWith(t, func(ip *Interp) { ip.Threaded = true })
	fdBase, _ := base.InstructionsPerCommand()
	fdThr, _ := thr.InstructionsPerCommand()
	if fdThr >= fdBase {
		t.Errorf("threaded fd/cmd (%.1f) must beat switch dispatch (%.1f)", fdThr, fdBase)
	}
	if fdBase-fdThr < 10 {
		t.Errorf("threaded dispatch should save ~%d instructions/cmd, saved %.1f",
			costDecode-6, fdBase-fdThr)
	}
	// Execute-phase cost must be untouched.
	_, exBase := base.InstructionsPerCommand()
	_, exThr := thr.InstructionsPerCommand()
	if exBase != exThr {
		t.Errorf("execute cost changed: %.2f vs %.2f", exBase, exThr)
	}
}

func TestFlatMemoryRemovesTranslations(t *testing.T) {
	base := runInterpWith(t, func(*Interp) {})
	flat := runInterpWith(t, func(ip *Interp) { ip.FlatMemory = true })
	mmBase, _ := base.Region("memmodel")
	mmFlat, _ := flat.Region("memmodel")
	if mmFlat.Instructions >= mmBase.Instructions {
		t.Errorf("flat memory must shrink the memory model: %d vs %d",
			mmFlat.Instructions, mmBase.Instructions)
	}
	if mmFlat.Accesses != mmBase.Accesses {
		t.Errorf("access counts must match: %d vs %d", mmFlat.Accesses, mmBase.Accesses)
	}
}
