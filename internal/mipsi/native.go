package mipsi

import (
	"fmt"

	"interplab/internal/mips"
	"interplab/internal/trace"
	"interplab/internal/vfs"
)

// Synthetic kernel layout for direct-mode syscalls: a real compiled program
// spends its system time in precompiled kernel code touching the buffer
// cache.
const (
	kernelBase  uint32 = 0x0030_0000
	kernelSize  uint32 = 4 << 10
	kernelCache uint32 = 0x0f00_0000
)

// Native executes a MIPS binary directly: every guest instruction becomes
// exactly one native instruction event, with its own PC and effective
// address.  This is the compiled-C execution mode — the baseline of
// Table 1, the C des row of Table 2, and the native SPEC runs of Figure 3.
type Native struct {
	M    *Machine
	sink trace.Sink

	// Counter tallies the emitted stream (Table 2's C row equates
	// virtual commands with native instructions).
	Counter trace.Counter

	// batch buffers the emitted stream into blocks delivered to both the
	// counter and the sink once per fill; the compiled-C path has no
	// attribution state, so blocks only flush on fill and at end of Run.
	batch    *trace.Batcher
	batching bool

	prevDest int // register written by the previous instruction (0 = none)
	kpc      uint32
}

// NewNative loads prog into a machine for direct execution.
func NewNative(prog *mips.Program, os *vfs.OS, sink trace.Sink) (*Native, error) {
	m, err := NewMachine(prog, os)
	if err != nil {
		return nil, err
	}
	if sink == nil {
		sink = trace.Discard
	}
	n := &Native{M: m, sink: sink, batching: true}
	n.batch = trace.NewBatcher(fanSink{n})
	return n, nil
}

// fanSink delivers flushed blocks to the Native's counter and sink in the
// per-event order (counter first).
type fanSink struct{ n *Native }

func (f fanSink) Emit(e trace.Event) {
	f.n.Counter.Emit(e)
	f.n.sink.Emit(e)
}

func (f fanSink) EmitBlock(b *trace.Block) {
	f.n.Counter.EmitBlock(b)
	trace.EmitBlockTo(f.n.sink, b)
}

func (n *Native) emit(e trace.Event) {
	if n.batching {
		n.batch.Append(e)
		return
	}
	n.Counter.Emit(e)
	n.sink.Emit(e)
}

// SetBatching switches between batched block delivery (the default) and
// the per-event path; turning batching off flushes buffered events first.
func (n *Native) SetBatching(on bool) {
	if !on {
		n.batch.Flush(trace.FlushFinal)
	}
	n.batching = on
}

// Flush delivers any buffered events.  Run flushes on every exit path;
// callers stepping the machine by hand flush before reading the Counter or
// sink state.
func (n *Native) Flush() { n.batch.Flush(trace.FlushFinal) }

// BatchStats returns the native path's batching account.
func (n *Native) BatchStats() trace.BatchStats { return n.batch.Stats() }

// destReg returns the register an instruction writes, or 0.
func destReg(in mips.Inst) int {
	switch in.Op.Class() {
	case mips.ClassALU, mips.ClassShift:
		switch in.Op {
		case mips.ADDI, mips.ADDIU, mips.SLTI, mips.SLTIU,
			mips.ANDI, mips.ORI, mips.XORI, mips.LUI:
			return in.Rt
		case mips.MFHI, mips.MFLO:
			return in.Rd
		}
		return in.Rd
	case mips.ClassLoad:
		return in.Rt
	case mips.ClassJump:
		if in.Op == mips.JAL {
			return mips.RegRA
		}
		if in.Op == mips.JALR {
			return in.Rd
		}
	}
	return 0
}

// Step executes one guest instruction and emits its event.
func (n *Native) Step() error {
	m := n.M
	pc, in, err := m.Fetch()
	if err != nil {
		return err
	}
	info, err := m.Exec(pc, in)
	if err != nil {
		return err
	}

	var fl trace.Flags
	if n.prevDest != 0 && (in.Rs == n.prevDest || in.Rt == n.prevDest) {
		fl |= trace.FlagDep
	}
	n.prevDest = destReg(in)

	e := trace.Event{PC: pc, Flags: fl}
	switch in.Op.Class() {
	case mips.ClassShift:
		e.Kind = trace.ShortInt
	case mips.ClassMulDiv:
		e.Kind = trace.Mul
	case mips.ClassLoad:
		e.Kind = trace.Load
		e.Addr = info.MemAddr
	case mips.ClassStore:
		e.Kind = trace.Store
		e.Addr = info.MemAddr
	case mips.ClassBranch:
		e.Kind = trace.Branch
		e.Addr = info.Target
		if info.Taken {
			e.Flags |= trace.FlagTaken
		}
	case mips.ClassJump:
		e.Addr = info.Target
		switch in.Op {
		case mips.JAL, mips.JALR:
			e.Kind = trace.Jump
			e.Flags |= trace.FlagCall
		case mips.JR:
			if in.Rs == mips.RegRA {
				e.Kind = trace.Return
			} else {
				e.Kind = trace.Jump
			}
		default:
			e.Kind = trace.Jump
		}
	case mips.ClassSyscall:
		e.Kind = trace.Jump
		e.Addr = kernelBase
		e.Flags |= trace.FlagCall
	default:
		if in.Op == mips.LBU || in.Op == mips.LB || in.Op == mips.SB {
			e.Kind = trace.ShortInt // byte ops are "short int" on the 21064
		} else {
			e.Kind = trace.Int
		}
	}
	n.emit(e)

	if in.Op.Class() == mips.ClassSyscall {
		n.kernel(info)
	}
	return nil
}

// kernel emits the precompiled kernel path for a trap: entry/validation
// code plus a word-copy loop over the buffer cache for read/write payloads.
func (n *Native) kernel(info StepInfo) {
	exec := func(cnt int) {
		for i := 0; i < cnt; i++ {
			n.emit(trace.Event{PC: kernelBase + n.kpc, Kind: trace.Int})
			n.kpc = (n.kpc + 4) % kernelSize
		}
	}
	exec(90)
	for b := 0; b < info.SyscallBytes; b += 4 {
		n.emit(trace.Event{PC: kernelBase + n.kpc, Kind: trace.Load, Addr: kernelCache + uint32(b)%(256<<10)})
		n.kpc = (n.kpc + 4) % kernelSize
		exec(1)
	}
	exec(30)
	n.emit(trace.Event{PC: kernelBase + n.kpc, Kind: trace.Return, Addr: info.PC + 4})
}

// Run executes until exit or maxSteps instructions (0 = no limit).
func (n *Native) Run(maxSteps uint64) error {
	defer n.Flush()
	for maxSteps == 0 || n.M.Steps < maxSteps {
		if err := n.Step(); err != nil {
			if err == ErrExited || n.M.Exited() {
				return nil
			}
			return err
		}
		if n.M.Exited() {
			return nil
		}
	}
	return fmt.Errorf("mipsi: native step budget exhausted (%d)", maxSteps)
}
