package perl

import (
	"fmt"
	"strings"

	"interplab/internal/atom"
	"interplab/internal/vfs"
)

// Cost model of the Perl 4 implementation, in native instructions.  The
// interpreter walks a heap-allocated op tree with per-op argument-stack
// bookkeeping, which is why Table 2 reports a fetch/decode cost of
// 130–200 instructions per virtual command — an order of magnitude above
// Java's — and a startup precompilation charge per program.
const (
	costRunops      = 118 // runops loop: next-op load, flags, SV bookkeeping
	costPerKid      = 24  // argument-stack handling per operand
	costPrecompByte = 110
	costPrecompNode = 90
	costHashBase    = 160 // hash-element translation (§3.3: ~210 per access)
	costHashPerChar = 9
	costRegexStep   = 3
	costSubSetup    = 55 // entersub: @_ setup, context push

	// Quickening-tier costs (see tiers.go): the specialized runops fast
	// path and the one-time node rewrite.
	costRunopsQ     = 42 // cached op pointer: load, call, minimal flags
	costPerKidQ     = 8  // argument layout cached with the node
	costQuickenFill = 40 // first execution: specialize the node in place
)

// control-flow signals.
type ctlSignal uint8

const (
	ctlNone ctlSignal = iota
	ctlLast
	ctlNext
	ctlReturn
	ctlExit
)

// Interp executes a compiled Program.
type Interp struct {
	Prog *Program
	OS   *vfs.OS

	p *atom.Probe

	// Quicken models Brunthaler-style operand quickening on the op tree:
	// each node is specialized in place at its first execution and later
	// visits take a reduced runops path (see tiers.go).  QuickenRewrites
	// counts specializations; a node is specialized at most once.
	Quicken         bool
	QuickenRewrites uint64
	rQuick          *atom.Routine

	rRunops  *atom.Routine
	rCompile *atom.Routine
	rHash    *atom.Routine
	rString  *atom.Routine
	rRegex   *atom.Routine
	rSub     *atom.Routine
	handlers map[string]*atom.Routine
	opIDs    map[string]atom.OpID
	img      *atom.Image

	optree *atom.DataRegion
	slots  *atom.DataRegion
	hashRg *atom.DataRegion
	strRg  *atom.DataRegion

	hashRegion atom.RegionID

	scalars []Scalar
	arrays  [][]Scalar
	hashes  []map[string]Scalar
	files   map[string]int

	capSlots [10]int // slots of $1..$9 (index 1..9), -1 if unused

	strRead  uint32
	strWrite uint32
	saved    []savedVal
	signal   ctlSignal
	retVal   []Scalar
	exitCode int

	// Depth guards runaway recursion in scripts.
	depth int
}

type savedVal struct {
	slot int
	val  Scalar
}

// New compiles src (charged to the startup phase) and prepares an
// interpreter.  img and probe may be nil for uninstrumented runs.
func New(src string, os *vfs.OS, img *atom.Image, probe *atom.Probe) (*Interp, error) {
	i := &Interp{OS: os, p: probe, img: img, files: make(map[string]int)}
	if probe != nil && img != nil {
		// Static code footprint: Perl 4's interpreter is a large program
		// (the paper's Figure 4 puts its i-cache working set at
		// 32–64 KB).  The big routines below model eval/runops, the
		// string library, the regex engine, hashing and the parser.
		i.rCompile = img.Routine("perl.yyparse", 4200)
		i.rRunops = img.Routine("perl.runops", 1400)
		i.rString = img.Routine("perl.str", 2200, atom.WithShortEvery(5))
		i.rRegex = img.Routine("perl.regexec", 2600, atom.WithShortEvery(6))
		i.rHash = img.Routine("perl.hfetch", 700, atom.WithShortEvery(7))
		i.rSub = img.Routine("perl.entersub", 900)
		i.handlers = make(map[string]*atom.Routine)
		i.opIDs = make(map[string]atom.OpID)
		probe.SetStartup(true)
		probe.Call(i.rCompile)
		probe.Exec(i.rCompile, costPrecompByte*len(src))
	}
	prog, err := ParseScript(src)
	if err != nil {
		return nil, err
	}
	i.Prog = prog
	if probe != nil {
		probe.Exec(i.rCompile, costPrecompNode*prog.Nodes)
		probe.Ret()
		probe.SetStartup(false)
		i.optree = img.Data("perl.optree", uint32(prog.Nodes*40+64))
		i.slots = img.Data("perl.slots", uint32(len(prog.ScalarNames)*24+len(prog.ArrayNames)*24+64))
		i.hashRg = img.Data("perl.hash", 256<<10)
		i.strRg = img.Data("perl.strings", 512<<10)
		i.hashRegion = probe.RegionName("memmodel")
	}
	i.scalars = make([]Scalar, len(prog.ScalarNames))
	i.arrays = make([][]Scalar, len(prog.ArrayNames))
	i.hashes = make([]map[string]Scalar, len(prog.HashNames))
	for k := range i.hashes {
		i.hashes[k] = make(map[string]Scalar)
	}
	for d := 1; d <= 9; d++ {
		i.capSlots[d] = -1
	}
	for idx, name := range prog.ScalarNames {
		if len(name) == 1 && name[0] >= '1' && name[0] <= '9' {
			i.capSlots[name[0]-'0'] = idx
		}
	}
	return i, nil
}

// Run executes the program.
func (i *Interp) Run() error {
	sig, err := i.execBlock(i.Prog.Stmts)
	if err != nil {
		return err
	}
	if sig == ctlExit {
		return nil
	}
	return nil
}

// ExitCode returns the argument of exit(), if called.
func (i *Interp) ExitCode() int { return i.exitCode }

// --- instrumentation helpers -------------------------------------------------

func (i *Interp) handler(name string) *atom.Routine {
	if r, ok := i.handlers[name]; ok {
		return r
	}
	size := 120
	switch name {
	case "match", "subst", "split":
		size = 400
	case "sprintf", "print", "join":
		size = 300
	}
	r := i.img.Routine("perl.pp_"+name, size)
	i.handlers[name] = r
	return r
}

func (i *Interp) opID(name string) atom.OpID {
	if id, ok := i.opIDs[name]; ok {
		return id
	}
	id := i.p.OpName(name)
	i.opIDs[name] = id
	return id
}

// beginOp opens the virtual command for node n and charges fetch/decode.
func (i *Interp) beginOp(n *Node) {
	if i.p == nil {
		return
	}
	name := n.opName()
	i.p.BeginCommand(i.opID(name))
	addr := i.optree.Addr(uint32(n.Slot*8) + uint32(n.Op)*40)
	if i.Quicken && n.quick {
		// Quickened node: the op pointer and argument layout were cached
		// at first execution, so runops loads one word and calls through.
		i.p.Exec(i.rRunops, costRunopsQ+costPerKidQ*len(n.Kids))
		i.p.Load(addr)
	} else {
		i.p.Exec(i.rRunops, costRunops+costPerKid*len(n.Kids))
		i.p.Load(addr)
		i.p.Load(addr + 8)
		i.p.Load(addr + 16)
		if i.Quicken {
			i.quickenNode(n, addr)
		}
	}
	i.p.BeginExecute()
	i.p.Exec(i.handler(name), 4)
}

func (i *Interp) endOp() {
	if i.p != nil {
		i.p.EndCommand()
	}
}

// exec charges n instructions in the current op's handler.
func (i *Interp) exec(r *atom.Routine, n int) {
	if i.p != nil {
		i.p.Exec(r, n)
	}
}

// chargeStrRead models the string library streaming n bytes in.
func (i *Interp) chargeStrRead(n int) {
	if i.p == nil || n <= 0 {
		return
	}
	words := n/8 + 1
	for w := 0; w < words; w++ {
		i.p.Exec(i.rString, 2)
		i.p.Load(i.strRg.Addr(i.strRead))
		i.strRead = (i.strRead + 8) % i.strRg.Size
	}
}

// chargeStrWrite models building an n-byte string value (new SV + copy).
func (i *Interp) chargeStrWrite(n int) {
	if i.p == nil {
		return
	}
	i.p.Exec(i.rString, 14) // SV allocation
	words := n/8 + 1
	for w := 0; w < words; w++ {
		i.p.Exec(i.rString, 2)
		i.p.Store(i.strRg.Addr(i.strWrite))
		i.strWrite = (i.strWrite + 8) % i.strRg.Size
	}
}

// chargeRegex models a regex-engine run of the given step count over a
// subject of the given length.
func (i *Interp) chargeRegex(steps, subjLen int) {
	if i.p == nil {
		return
	}
	if i.p != nil {
		i.p.Call(i.rRegex)
	}
	i.p.Exec(i.rRegex, 12)
	for s := 0; s < steps; s++ {
		i.p.Exec(i.rRegex, costRegexStep)
		if s%4 == 0 {
			i.p.Load(i.strRg.Addr(i.strRead))
			i.strRead = (i.strRead + 8) % i.strRg.Size
		}
	}
	i.p.Ret()
}

// chargeHash models one associative-array translation (§3.3).
func (i *Interp) chargeHash(slot int, key string) {
	if i.p == nil {
		return
	}
	i.p.Enter(i.hashRegion)
	i.p.CountAccess(i.hashRegion)
	i.p.Call(i.rHash)
	i.p.Exec(i.rHash, costHashBase+costHashPerChar*len(key))
	h := hashKey(key)
	base := uint32(slot) * 8192 % i.hashRg.Size
	i.p.Load(i.hashRg.Addr(base + h%8192))
	i.p.Load(i.hashRg.Addr(base + (h%8192+16)%8192))
	i.p.Load(i.hashRg.Addr(base + (h / 8192 % 8192)))
	i.p.Ret()
	i.p.Leave()
}

func hashKey(s string) uint32 {
	var h uint32 = 0
	for j := 0; j < len(s); j++ {
		h = h*33 + uint32(s[j])
	}
	return h
}

// slotAddr returns the synthetic address of a scalar slot.
func (i *Interp) slotAddr(slot int) uint32 {
	return i.slots.Addr(uint32(slot) * 24)
}

func (i *Interp) loadSlot(slot int) {
	if i.p != nil {
		i.p.Load(i.slotAddr(slot))
	}
}

func (i *Interp) storeSlot(slot int) {
	if i.p != nil {
		i.p.Store(i.slotAddr(slot))
	}
}

// runtimeErr builds a positioned runtime error.
func runtimeErr(n *Node, format string, args ...any) error {
	return errLine(n.Line, format, args...)
}

var _ = fmt.Sprintf
var _ = strings.Contains

// execName charges n instructions in the named op handler (no-op when
// uninstrumented).
func (i *Interp) execName(name string, n int) {
	if i.p == nil {
		return
	}
	i.p.Exec(i.handler(name), n)
}
