package perl

import "interplab/internal/rx"

// OpKind enumerates op-tree node types.  Each executed node is one virtual
// command; the names below are the labels that appear in the Figure 1/2
// distributions (they follow Perl 4's internal op names where reasonable).
type OpKind uint8

const (
	opConst OpKind = iota
	opScalarVar
	opElem     // $a[i]
	opHelem    // $h{k}
	opArrayAll // @a as a list
	opHashAll  // %h as a list (key, value, ...)
	opAssign
	opOpAssign // Str: "+", ".", ...
	opArith    // Str: + - * / %
	opConcat
	opRepeat // x
	opNumCmp // Str: == != < <= > >= <=>
	opStrCmp // Str: eq ne lt gt le ge
	opAnd
	opOr
	opNot
	opNeg
	opCond
	opPreInc
	opPreDec
	opPostInc
	opPostDec
	opMatch // Re; kid 0 = subject (nil means $_)
	opNotMatch
	opSubst // Re, Repl, Global; kid 0 = target lvalue
	opFunc  // builtin; Str = name; kids = args
	opCall  // user sub; Str = name
	opPrint // Str = filehandle ("" = STDOUT)
	opReadLine
	opList
	opIf
	opWhile // Num!=0 marks until
	opFor
	opForeach // Slot = loop scalar
	opBlock
	opReturn
	opLast
	opNext
	opLocal // kids: lvalues; aux kid via Kids2
	opSubDecl
)

var opKindNames = map[OpKind]string{
	opConst: "const", opScalarVar: "gvsv", opElem: "aelem", opHelem: "helem",
	opArrayAll: "av", opHashAll: "hv", opAssign: "sassign", opOpAssign: "opassign",
	opArith: "arith", opConcat: "concat", opRepeat: "repeat",
	opNumCmp: "ncmp", opStrCmp: "scmp", opAnd: "and", opOr: "or", opNot: "not",
	opNeg: "negate", opCond: "cond_expr",
	opPreInc: "preinc", opPreDec: "predec", opPostInc: "postinc", opPostDec: "postdec",
	opMatch: "match", opNotMatch: "match", opSubst: "subst",
	opFunc: "func", opCall: "entersub", opPrint: "print", opReadLine: "readline",
	opList: "list", opIf: "if", opWhile: "while", opFor: "for",
	opForeach: "foreach", opBlock: "block", opReturn: "return",
	opLast: "last", opNext: "next", opLocal: "local", opSubDecl: "subdecl",
}

// Node is one op-tree node.
type Node struct {
	Op   OpKind
	Line int
	Kids []*Node

	Str     string // operator text, builtin name, sub name, filehandle
	Num     float64
	Slot    int
	Re      *rx.Regexp
	Repl    string
	Global  bool
	IgnCase bool

	// quick marks a node the quickening tier has specialized: its op
	// function pointer and argument layout are cached in the node after
	// the first execution (see tiers.go).  Set at most once per node.
	quick bool
}

// opName returns the virtual-command label for distributions: builtins
// report their own names (split, length, substr, ...), arithmetic reports
// its operator class.
func (n *Node) opName() string {
	switch n.Op {
	case opFunc:
		return n.Str
	case opArith:
		switch n.Str {
		case "+":
			return "add"
		case "-":
			return "subtract"
		case "*":
			return "multiply"
		case "/":
			return "divide"
		case "%":
			return "modulo"
		}
	case opOpAssign:
		return "opassign"
	}
	if s, ok := opKindNames[n.Op]; ok {
		return s
	}
	return "unknown"
}

// Sub is a user-defined subroutine.
type Sub struct {
	Name string
	Body []*Node
}

// Program is a compiled script: the op tree plus the variable-slot layout
// discovered during precompilation.
type Program struct {
	Stmts []*Node
	Subs  map[string]*Sub

	ScalarNames []string
	ArrayNames  []string
	HashNames   []string

	// Nodes counts op-tree nodes, a precompilation cost driver.
	Nodes int
}
