package perl

import (
	"sort"

	"interplab/internal/rx"
	"interplab/internal/vfs"
)

const maxCallDepth = 2000

func (i *Interp) execBlock(stmts []*Node) (ctlSignal, error) {
	for _, s := range stmts {
		sig, err := i.execStmt(s)
		if err != nil || sig != ctlNone {
			return sig, err
		}
	}
	return ctlNone, nil
}

func (i *Interp) execStmt(n *Node) (ctlSignal, error) {
	switch n.Op {
	case opBlock:
		return i.execBlock(n.Kids)

	case opIf:
		c, err := i.evalS(n.Kids[0])
		if err != nil {
			return ctlNone, err
		}
		i.beginOp(n)
		i.endOp()
		if c.ToBool() {
			return i.execStmt(n.Kids[1])
		}
		if len(n.Kids) > 2 {
			return i.execStmt(n.Kids[2])
		}
		return ctlNone, nil

	case opWhile:
		for {
			c, err := i.evalS(n.Kids[0])
			if err != nil {
				return ctlNone, err
			}
			i.beginOp(n)
			i.endOp()
			if !c.ToBool() {
				return ctlNone, nil
			}
			sig, err := i.execStmt(n.Kids[1])
			if err != nil {
				return ctlNone, err
			}
			switch sig {
			case ctlLast:
				return ctlNone, nil
			case ctlReturn, ctlExit:
				return sig, nil
			}
		}

	case opFor:
		if _, err := i.evalS(n.Kids[0]); err != nil {
			return ctlNone, err
		}
		for {
			c, err := i.evalS(n.Kids[1])
			if err != nil {
				return ctlNone, err
			}
			i.beginOp(n)
			i.endOp()
			if !c.ToBool() {
				return ctlNone, nil
			}
			sig, err := i.execStmt(n.Kids[3])
			if err != nil {
				return ctlNone, err
			}
			if sig == ctlLast {
				return ctlNone, nil
			}
			if sig == ctlReturn || sig == ctlExit {
				return sig, nil
			}
			if _, err := i.evalS(n.Kids[2]); err != nil {
				return ctlNone, err
			}
		}

	case opForeach:
		list, err := i.evalL(n.Kids[0])
		if err != nil {
			return ctlNone, err
		}
		saved := i.scalars[n.Slot]
		defer func() { i.scalars[n.Slot] = saved }()
		for _, v := range list {
			i.beginOp(n)
			i.storeSlot(n.Slot)
			i.endOp()
			i.scalars[n.Slot] = v
			sig, err := i.execStmt(n.Kids[1])
			if err != nil {
				return ctlNone, err
			}
			if sig == ctlLast {
				return ctlNone, nil
			}
			if sig == ctlReturn || sig == ctlExit {
				return sig, nil
			}
		}
		return ctlNone, nil

	case opReturn:
		i.retVal = nil
		if len(n.Kids) > 0 {
			vs, err := i.evalL(n.Kids[0])
			if err != nil {
				return ctlNone, err
			}
			i.retVal = vs
		}
		i.beginOp(n)
		i.endOp()
		return ctlReturn, nil

	case opLast:
		i.beginOp(n)
		i.endOp()
		return ctlLast, nil

	case opNext:
		i.beginOp(n)
		i.endOp()
		return ctlNext, nil

	case opLocal:
		return ctlNone, i.execLocal(n)
	}

	// Expression statement.
	_, err := i.evalS(n)
	if err != nil {
		return ctlNone, err
	}
	if i.signal == ctlExit {
		return ctlExit, nil
	}
	return ctlNone, nil
}

// execLocal saves the named variables and optionally assigns from a list.
func (i *Interp) execLocal(n *Node) error {
	var lvals []*Node
	var rhs *Node
	for k, kid := range n.Kids {
		if kid == nil {
			rhs = n.Kids[k+1]
			break
		}
		lvals = append(lvals, kid)
	}
	i.beginOp(n)
	for _, lv := range lvals {
		if lv.Op == opScalarVar {
			i.saved = append(i.saved, savedVal{slot: lv.Slot, val: i.scalars[lv.Slot]})
			i.scalars[lv.Slot] = Undef
			i.storeSlot(lv.Slot)
			i.exec(i.rSub, 6)
		}
	}
	i.endOp()
	if rhs != nil {
		vals, err := i.evalL(rhs)
		if err != nil {
			return err
		}
		for k, lv := range lvals {
			var v Scalar
			if k < len(vals) {
				v = vals[k]
			}
			if err := i.assignTo(lv, v); err != nil {
				return err
			}
		}
	}
	return nil
}

// evalL evaluates in list context.
func (i *Interp) evalL(n *Node) ([]Scalar, error) {
	switch n.Op {
	case opList:
		var out []Scalar
		for _, k := range n.Kids {
			vs, err := i.evalL(k)
			if err != nil {
				return nil, err
			}
			out = append(out, vs...)
		}
		i.beginOp(n)
		i.endOp()
		return out, nil

	case opArrayAll:
		i.beginOp(n)
		i.loadSlot(n.Slot)
		i.endOp()
		return append([]Scalar(nil), i.arrays[n.Slot]...), nil

	case opHashAll:
		i.beginOp(n)
		i.endOp()
		h := i.hashes[n.Slot]
		keys := make([]string, 0, len(h))
		for k := range h {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var out []Scalar
		for _, k := range keys {
			out = append(out, Str(k), h[k])
		}
		return out, nil

	case opFunc:
		switch n.Str {
		case "split", "keys", "values", "reverse", "sort":
			return i.builtinList(n)
		}

	case opCall:
		return i.callSub(n)
	}
	v, err := i.evalS(n)
	if err != nil {
		return nil, err
	}
	return []Scalar{v}, nil
}

// evalS evaluates in scalar context.
func (i *Interp) evalS(n *Node) (Scalar, error) {
	switch n.Op {
	case opConst:
		i.beginOp(n)
		i.endOp()
		if n.Num != 0 || n.Str == "0" {
			return Num(n.Num), nil
		}
		return Str(n.Str), nil

	case opScalarVar:
		i.beginOp(n)
		i.loadSlot(n.Slot)
		i.endOp()
		return i.scalars[n.Slot], nil

	case opElem:
		idx, err := i.evalS(n.Kids[0])
		if err != nil {
			return Undef, err
		}
		i.beginOp(n)
		i.execName("aelem", 8)
		i.loadSlot(n.Slot)
		i.endOp()
		arr := i.arrays[n.Slot]
		j := int(idx.ToNum())
		if j < 0 {
			j += len(arr)
		}
		if j < 0 || j >= len(arr) {
			return Undef, nil
		}
		return arr[j], nil

	case opHelem:
		key, err := i.evalS(n.Kids[0])
		if err != nil {
			return Undef, err
		}
		ks := key.ToStr()
		i.beginOp(n)
		i.chargeHash(n.Slot, ks)
		i.endOp()
		return i.hashes[n.Slot][ks], nil

	case opArrayAll:
		// Scalar context: element count.
		i.beginOp(n)
		i.loadSlot(n.Slot)
		i.endOp()
		return Num(float64(len(i.arrays[n.Slot]))), nil

	case opHashAll:
		i.beginOp(n)
		i.endOp()
		return Num(float64(len(i.hashes[n.Slot]))), nil

	case opAssign:
		v, err := i.evalAssign(n)
		return v, err

	case opOpAssign:
		return i.evalOpAssign(n)

	case opArith:
		return i.evalArith(n)

	case opConcat:
		a, err := i.evalS(n.Kids[0])
		if err != nil {
			return Undef, err
		}
		b, err := i.evalS(n.Kids[1])
		if err != nil {
			return Undef, err
		}
		as, bs := a.ToStr(), b.ToStr()
		i.beginOp(n)
		i.chargeStrRead(len(as) + len(bs))
		i.chargeStrWrite(len(as) + len(bs))
		i.endOp()
		return Str(as + bs), nil

	case opRepeat:
		a, err := i.evalS(n.Kids[0])
		if err != nil {
			return Undef, err
		}
		cnt, err := i.evalS(n.Kids[1])
		if err != nil {
			return Undef, err
		}
		m := int(cnt.ToNum())
		if m < 0 {
			m = 0
		}
		if m*a.Len() > 1<<20 {
			return Undef, runtimeErr(n, "x repetition too large")
		}
		i.beginOp(n)
		i.chargeStrWrite(m * a.Len())
		i.endOp()
		out := ""
		for k := 0; k < m; k++ {
			out += a.ToStr()
		}
		return Str(out), nil

	case opNumCmp:
		a, err := i.evalS(n.Kids[0])
		if err != nil {
			return Undef, err
		}
		b, err := i.evalS(n.Kids[1])
		if err != nil {
			return Undef, err
		}
		i.beginOp(n)
		i.execName("ncmp", 6)
		i.endOp()
		x, y := a.ToNum(), b.ToNum()
		switch n.Str {
		case "==":
			return Bool(x == y), nil
		case "!=":
			return Bool(x != y), nil
		case "<":
			return Bool(x < y), nil
		case "<=":
			return Bool(x <= y), nil
		case ">":
			return Bool(x > y), nil
		case ">=":
			return Bool(x >= y), nil
		case "<=>":
			switch {
			case x < y:
				return Num(-1), nil
			case x > y:
				return Num(1), nil
			}
			return Num(0), nil
		}

	case opStrCmp:
		a, err := i.evalS(n.Kids[0])
		if err != nil {
			return Undef, err
		}
		b, err := i.evalS(n.Kids[1])
		if err != nil {
			return Undef, err
		}
		as, bs := a.ToStr(), b.ToStr()
		i.beginOp(n)
		i.execName("scmp", 8)
		shorter := len(as)
		if len(bs) < shorter {
			shorter = len(bs)
		}
		i.chargeStrRead(2 * shorter)
		i.endOp()
		switch n.Str {
		case "eq":
			return Bool(as == bs), nil
		case "ne":
			return Bool(as != bs), nil
		case "lt":
			return Bool(as < bs), nil
		case "gt":
			return Bool(as > bs), nil
		case "le":
			return Bool(as <= bs), nil
		case "ge":
			return Bool(as >= bs), nil
		}

	case opAnd:
		a, err := i.evalS(n.Kids[0])
		if err != nil {
			return Undef, err
		}
		i.beginOp(n)
		i.endOp()
		if !a.ToBool() {
			return a, nil
		}
		return i.evalS(n.Kids[1])

	case opOr:
		a, err := i.evalS(n.Kids[0])
		if err != nil {
			return Undef, err
		}
		i.beginOp(n)
		i.endOp()
		if a.ToBool() {
			return a, nil
		}
		return i.evalS(n.Kids[1])

	case opNot:
		a, err := i.evalS(n.Kids[0])
		if err != nil {
			return Undef, err
		}
		i.beginOp(n)
		i.endOp()
		return Bool(!a.ToBool()), nil

	case opNeg:
		a, err := i.evalS(n.Kids[0])
		if err != nil {
			return Undef, err
		}
		i.beginOp(n)
		i.endOp()
		return Num(-a.ToNum()), nil

	case opCond:
		c, err := i.evalS(n.Kids[0])
		if err != nil {
			return Undef, err
		}
		i.beginOp(n)
		i.endOp()
		if c.ToBool() {
			return i.evalS(n.Kids[1])
		}
		return i.evalS(n.Kids[2])

	case opPreInc, opPreDec, opPostInc, opPostDec:
		return i.evalIncDec(n)

	case opMatch, opNotMatch:
		return i.evalMatch(n)

	case opSubst:
		return i.evalSubst(n)

	case opFunc:
		return i.builtinScalar(n)

	case opCall:
		vs, err := i.callSub(n)
		if err != nil {
			return Undef, err
		}
		if len(vs) == 0 {
			return Undef, nil
		}
		return vs[len(vs)-1], nil

	case opPrint:
		return i.evalPrint(n)

	case opReadLine:
		return i.evalReadLine(n)

	case opList:
		// Scalar context: last element (Perl's comma operator).
		var last Scalar
		for _, k := range n.Kids {
			v, err := i.evalS(k)
			if err != nil {
				return Undef, err
			}
			last = v
		}
		return last, nil
	}
	return Undef, runtimeErr(n, "cannot evaluate %s here", n.opName())
}

func (i *Interp) evalArith(n *Node) (Scalar, error) {
	a, err := i.evalS(n.Kids[0])
	if err != nil {
		return Undef, err
	}
	b, err := i.evalS(n.Kids[1])
	if err != nil {
		return Undef, err
	}
	i.beginOp(n)
	i.execName(n.opName(), 8)
	i.endOp()
	return arith(n, a, b)
}

func arith(n *Node, a, b Scalar) (Scalar, error) {
	x, y := a.ToNum(), b.ToNum()
	switch n.Str {
	case "+":
		return Num(x + y), nil
	case "-":
		return Num(x - y), nil
	case "*":
		return Num(x * y), nil
	case "/":
		if y == 0 {
			return Undef, runtimeErr(n, "illegal division by zero")
		}
		return Num(x / y), nil
	case "%":
		yi := int64(y)
		if yi == 0 {
			return Undef, runtimeErr(n, "illegal modulus zero")
		}
		r := int64(x) % yi
		if r != 0 && (r < 0) != (yi < 0) {
			r += yi // Perl's modulus follows the right operand's sign
		}
		return Num(float64(r)), nil
	case "&":
		return Num(float64(int64(x) & int64(y))), nil
	case "|":
		return Num(float64(int64(x) | int64(y))), nil
	case "^":
		return Num(float64(int64(x) ^ int64(y))), nil
	case "<<":
		return Num(float64(int64(x) << (uint64(int64(y)) & 63))), nil
	case ">>":
		return Num(float64(int64(x) >> (uint64(int64(y)) & 63))), nil
	}
	return Undef, runtimeErr(n, "unknown operator %q", n.Str)
}

// assignTo stores v into the lvalue lv.
func (i *Interp) assignTo(lv *Node, v Scalar) error {
	switch lv.Op {
	case opScalarVar:
		i.scalars[lv.Slot] = v
		i.storeSlot(lv.Slot)
		return nil
	case opElem:
		idx, err := i.evalS(lv.Kids[0])
		if err != nil {
			return err
		}
		j := int(idx.ToNum())
		arr := i.arrays[lv.Slot]
		if j < 0 {
			j += len(arr)
		}
		if j < 0 {
			return runtimeErr(lv, "negative array index %d", j)
		}
		for len(arr) <= j {
			arr = append(arr, Undef)
		}
		arr[j] = v
		i.arrays[lv.Slot] = arr
		i.storeSlot(lv.Slot)
		return nil
	case opHelem:
		key, err := i.evalS(lv.Kids[0])
		if err != nil {
			return err
		}
		ks := key.ToStr()
		i.chargeHash(lv.Slot, ks)
		i.hashes[lv.Slot][ks] = v
		return nil
	case opArrayAll:
		return runtimeErr(lv, "internal: list assignment must use assignList")
	}
	return runtimeErr(lv, "cannot assign to %s", lv.opName())
}

func (i *Interp) evalAssign(n *Node) (Scalar, error) {
	lhs, rhs := n.Kids[0], n.Kids[1]
	// List assignment: @a = (...), or ($x, $y) = (...).
	if lhs.Op == opArrayAll {
		vals, err := i.evalL(rhs)
		if err != nil {
			return Undef, err
		}
		i.beginOp(n)
		i.execName("aassign", 10+4*len(vals))
		i.storeSlot(lhs.Slot)
		i.endOp()
		i.arrays[lhs.Slot] = vals
		return Num(float64(len(vals))), nil
	}
	if lhs.Op == opHashAll {
		vals, err := i.evalL(rhs)
		if err != nil {
			return Undef, err
		}
		i.beginOp(n)
		i.execName("aassign", 10+4*len(vals))
		i.endOp()
		h := make(map[string]Scalar, len(vals)/2)
		for k := 0; k+1 < len(vals); k += 2 {
			ks := vals[k].ToStr()
			i.chargeHash(lhs.Slot, ks)
			h[ks] = vals[k+1]
		}
		i.hashes[lhs.Slot] = h
		return Num(float64(len(vals))), nil
	}
	if lhs.Op == opList {
		vals, err := i.evalL(rhs)
		if err != nil {
			return Undef, err
		}
		i.beginOp(n)
		i.execName("aassign", 10+6*len(lhs.Kids))
		i.endOp()
		for k, lv := range lhs.Kids {
			var v Scalar
			if k < len(vals) {
				v = vals[k]
			}
			if err := i.assignTo(lv, v); err != nil {
				return Undef, err
			}
		}
		return Num(float64(len(vals))), nil
	}
	v, err := i.evalS(rhs)
	if err != nil {
		return Undef, err
	}
	i.beginOp(n)
	i.execName("sassign", 8)
	i.endOp()
	return v, i.assignTo(lhs, v)
}

func (i *Interp) evalOpAssign(n *Node) (Scalar, error) {
	lhs, rhs := n.Kids[0], n.Kids[1]
	old, err := i.evalS(lhs)
	if err != nil {
		return Undef, err
	}
	v, err := i.evalS(rhs)
	if err != nil {
		return Undef, err
	}
	var out Scalar
	switch n.Str {
	case ".":
		os, vs := old.ToStr(), v.ToStr()
		i.beginOp(n)
		i.chargeStrRead(len(os) + len(vs))
		i.chargeStrWrite(len(os) + len(vs))
		i.endOp()
		out = Str(os + vs)
	case "x":
		m := int(v.ToNum())
		s := ""
		for k := 0; k < m; k++ {
			s += old.ToStr()
		}
		i.beginOp(n)
		i.chargeStrWrite(len(s))
		i.endOp()
		out = Str(s)
	default:
		i.beginOp(n)
		i.execName("opassign", 10)
		i.endOp()
		tmp := &Node{Op: opArith, Str: n.Str, Line: n.Line}
		r, err := arith(tmp, old, v)
		if err != nil {
			return Undef, err
		}
		out = r
	}
	return out, i.assignTo(lhs, out)
}

func (i *Interp) evalIncDec(n *Node) (Scalar, error) {
	lv := n.Kids[0]
	old, err := i.evalS(lv)
	if err != nil {
		return Undef, err
	}
	i.beginOp(n)
	i.execName("inc", 6)
	i.endOp()
	delta := 1.0
	if n.Op == opPreDec || n.Op == opPostDec {
		delta = -1
	}
	nv := Num(old.ToNum() + delta)
	if err := i.assignTo(lv, nv); err != nil {
		return Undef, err
	}
	if n.Op == opPostInc || n.Op == opPostDec {
		return Num(old.ToNum()), nil
	}
	return nv, nil
}

// setCaps publishes $1..$9 after a successful match.
func (i *Interp) setCaps(subject []byte, m rx.Match) {
	for d := 1; d <= 9; d++ {
		slot := i.capSlots[d]
		if slot < 0 {
			continue
		}
		g := m.Group(subject, d)
		if g == nil {
			i.scalars[slot] = Undef
		} else {
			i.scalars[slot] = Str(string(g))
		}
		i.storeSlot(slot)
	}
}

func (i *Interp) matchSubject(n *Node) (Scalar, *Node, error) {
	if n.Kids[0] == nil {
		i.loadSlot(0)
		return i.scalars[0], nil, nil
	}
	v, err := i.evalS(n.Kids[0])
	return v, n.Kids[0], err
}

func (i *Interp) evalMatch(n *Node) (Scalar, error) {
	subj, _, err := i.matchSubject(n)
	if err != nil {
		return Undef, err
	}
	s := []byte(subj.ToStr())
	i.beginOp(n)
	m := n.Re.Search(s, 0)
	i.chargeRegex(m.Steps, len(s))
	i.endOp()
	if m.Ok {
		i.setCaps(s, m)
	}
	ok := m.Ok
	if n.Op == opNotMatch {
		ok = !ok
	}
	return Bool(ok), nil
}

func (i *Interp) evalSubst(n *Node) (Scalar, error) {
	lv := n.Kids[0]
	cur, err := i.evalS(lv)
	if err != nil {
		return Undef, err
	}
	s := []byte(cur.ToStr())
	i.beginOp(n)
	out, count, steps := n.Re.ReplaceAll(s, []byte(n.Repl), n.Global)
	i.chargeRegex(steps, len(s))
	if count > 0 {
		i.chargeStrWrite(len(out))
	}
	i.endOp()
	if count > 0 {
		if err := i.assignTo(lv, Str(string(out))); err != nil {
			return Undef, err
		}
	}
	return Num(float64(count)), nil
}

func (i *Interp) callSub(n *Node) ([]Scalar, error) {
	sub, ok := i.Prog.Subs[n.Str]
	if !ok {
		return nil, runtimeErr(n, "undefined subroutine &%s", n.Str)
	}
	var args []Scalar
	for _, k := range n.Kids {
		vs, err := i.evalL(k)
		if err != nil {
			return nil, err
		}
		args = append(args, vs...)
	}
	i.beginOp(n)
	if i.p != nil {
		i.p.Call(i.rSub)
		i.p.Exec(i.rSub, costSubSetup+6*len(args))
	}
	i.endOp()
	if i.depth++; i.depth > maxCallDepth {
		i.depth--
		return nil, runtimeErr(n, "deep recursion in &%s", n.Str)
	}
	savedArgs := i.arrays[0]
	savedDepth := len(i.saved)
	i.arrays[0] = args
	i.retVal = nil
	sig, err := i.execBlock(sub.Body)
	// Restore dynamically scoped locals.
	for len(i.saved) > savedDepth {
		sv := i.saved[len(i.saved)-1]
		i.saved = i.saved[:len(i.saved)-1]
		i.scalars[sv.slot] = sv.val
	}
	i.arrays[0] = savedArgs
	i.depth--
	if i.p != nil {
		i.p.Ret()
	}
	if err != nil {
		return nil, err
	}
	if sig == ctlExit {
		i.signal = ctlExit
	}
	ret := i.retVal
	i.retVal = nil
	return ret, nil
}

func (i *Interp) evalPrint(n *Node) (Scalar, error) {
	var parts []Scalar
	if len(n.Kids) > 0 {
		vs, err := i.evalL(n.Kids[0])
		if err != nil {
			return Undef, err
		}
		parts = vs
	}
	var sb []byte
	if n.Num == 1 && len(parts) > 0 {
		// printf: the first value is a format string.
		tmp := &Node{Op: opFunc, Str: "sprintf", Line: n.Line}
		out, err := formatSprintf(i, tmp, parts[0], parts[1:])
		if err != nil {
			return Undef, err
		}
		parts = []Scalar{out}
	}
	for _, v := range parts {
		sb = append(sb, v.ToStr()...)
	}
	i.beginOp(n)
	i.chargeStrRead(len(sb))
	fd := vfs.Stdout
	if n.Str != "" {
		f, ok := i.files[n.Str]
		if !ok {
			i.endOp()
			return Undef, runtimeErr(n, "print to unopened filehandle %s", n.Str)
		}
		fd = f
	}
	_, err := i.OS.Write(fd, sb)
	i.endOp()
	if err != nil {
		return Undef, runtimeErr(n, "print: %v", err)
	}
	return Num(1), nil
}

func (i *Interp) evalReadLine(n *Node) (Scalar, error) {
	fd, ok := i.files[n.Str]
	if !ok {
		return Undef, runtimeErr(n, "read from unopened filehandle %s", n.Str)
	}
	i.beginOp(n)
	line, err := i.OS.ReadLine(fd)
	i.chargeStrWrite(len(line))
	i.endOp()
	if err != nil {
		return Undef, runtimeErr(n, "readline: %v", err)
	}
	if len(line) == 0 {
		return Undef, nil
	}
	return Str(string(line)), nil
}
