package perl

// Quickening tier: Brunthaler-style operand quickening on the walked op
// tree.  A bytecode VM rewrites opcode bytes in place; Perl 4's runops
// loop dispatches heap-allocated tree nodes, so the equivalent
// specialization rewrites the node — the resolved op function pointer and
// the argument-stack layout are cached into it at first execution, and
// every later visit skips the generic flag decoding and per-kid
// bookkeeping.  The tree's guest-visible evaluation is untouched; only
// the runops fetch/decode cost changes, which is the Table 2 number the
// opt-matrix experiment tracks.

// quickenNode specializes node n in place after its first execution and
// charges the one-time rewrite (a store back into the op tree).
func (i *Interp) quickenNode(n *Node, addr uint32) {
	n.quick = true
	i.QuickenRewrites++
	if i.rQuick == nil {
		// Lazy: the quickening machinery joins the instrumentation image
		// only when the tier actually runs, so the baseline image layout
		// is byte-identical with the tier off.
		i.rQuick = i.img.Routine("perl.quicken", 120)
	}
	i.p.Exec(i.rQuick, costQuickenFill)
	i.p.Store(addr)
}
