package perl

import (
	"fmt"
	"strconv"
	"strings"
)

type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tScalarVar // $name
	tArrayVar  // @name
	tHashVar   // %name
	tNumber
	tString // with Interp parts resolved by the parser
	tRegex  // m/.../ or /.../ (Text=pattern, Aux=flags)
	tSubst  // s/pat/repl/flags (Text=pattern, Repl, Aux=flags)
	tPunct
)

type token struct {
	kind tokKind
	text string
	repl string
	aux  string
	num  float64
	line int
	// interp marks double-quoted strings (subject to interpolation).
	interp bool
}

func (t token) String() string {
	switch t.kind {
	case tEOF:
		return "end of script"
	case tNumber:
		return fmt.Sprintf("number %v", t.num)
	case tString:
		return fmt.Sprintf("string %q", t.text)
	}
	return fmt.Sprintf("%q", t.text)
}

var perlPuncts = []string{
	"<=>", "**=", "...",
	"=~", "!~", "==", "!=", "<=", ">=", "&&", "||", "++", "--",
	"+=", "-=", "*=", "/=", "%=", ".=", "x=", "**", "->", "=>", "..",
	"<<", ">>",
	"+", "-", "*", "/", "%", ".", "=", "<", ">", "!", "?", ":",
	"(", ")", "{", "}", "[", "]", ";", ",", "&", "|", "^", "~", "\\",
}

type plexer struct {
	src  string
	pos  int
	line int
	// prev guides the regex-vs-divide decision.
	prevKind tokKind
	prevText string
}

func lexPerl(src string) ([]token, error) {
	l := &plexer{src: src, line: 1}
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		l.prevKind, l.prevText = t.kind, t.text
		if t.kind == tEOF {
			return toks, nil
		}
	}
}

func (l *plexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *plexer) at(i int) byte {
	if l.pos+i >= len(l.src) {
		return 0
	}
	return l.src[l.pos+i]
}

func (l *plexer) adv() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
	}
	return c
}

func (l *plexer) errf(format string, args ...any) error {
	return errLine(l.line, format, args...)
}

func isWordStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}
func isWord(c byte) bool { return isWordStart(c) || c >= '0' && c <= '9' }
func isDig(c byte) bool  { return c >= '0' && c <= '9' }

// regexAllowed reports whether a '/' here begins a regex literal.
func (l *plexer) regexAllowed() bool {
	switch l.prevKind {
	case tIdent:
		// split /.../, grep-like contexts: after certain keywords a
		// regex is expected; after a plain identifier it is division.
		switch l.prevText {
		case "split", "if", "unless", "while", "until", "and", "or", "not", "return", "x":
			return true
		}
		return false
	case tNumber, tString, tScalarVar, tArrayVar, tRegex, tSubst:
		return false
	case tPunct:
		switch l.prevText {
		case ")", "]", "}":
			return false
		}
		return true
	}
	return true
}

func (l *plexer) next() (token, error) {
	// Skip whitespace and comments.
	for {
		c := l.peek()
		if c == '#' {
			for l.peek() != 0 && l.peek() != '\n' {
				l.adv()
			}
			continue
		}
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.adv()
			continue
		}
		break
	}
	tok := token{line: l.line}
	c := l.peek()
	switch {
	case c == 0:
		tok.kind = tEOF
		return tok, nil

	case c == '$' || c == '@' || c == '%':
		// %x is modulus unless followed by a word (hash variable); $1 and
		// friends are the match capture variables.
		if c == '%' && !isWordStart(l.at(1)) {
			break
		}
		if !isWord(l.at(1)) {
			return tok, l.errf("bare %q", c)
		}
		l.adv()
		start := l.pos
		for isWord(l.peek()) {
			l.adv()
		}
		if l.pos == start {
			return tok, l.errf("missing variable name after %q", c)
		}
		tok.text = l.src[start:l.pos]
		switch c {
		case '$':
			tok.kind = tScalarVar
		case '@':
			tok.kind = tArrayVar
		default:
			tok.kind = tHashVar
		}
		return tok, nil

	case isWordStart(c):
		start := l.pos
		for isWord(l.peek()) {
			l.adv()
		}
		word := l.src[start:l.pos]
		// m/.../ and s/.../.../ literal forms.
		if word == "m" && (l.peek() == '/' || l.peek() == '|') {
			delim := l.adv()
			pat, err := l.readUntil(delim)
			if err != nil {
				return tok, err
			}
			tok.kind = tRegex
			tok.text = pat
			tok.aux = l.readFlags()
			return tok, nil
		}
		if word == "s" && (l.peek() == '/' || l.peek() == '|') {
			delim := l.adv()
			pat, err := l.readUntil(delim)
			if err != nil {
				return tok, err
			}
			repl, err := l.readUntil(delim)
			if err != nil {
				return tok, err
			}
			tok.kind = tSubst
			tok.text = pat
			tok.repl = repl
			tok.aux = l.readFlags()
			return tok, nil
		}
		if word == "tr" && l.peek() == '/' {
			return tok, l.errf("tr/// is not supported")
		}
		tok.kind = tIdent
		tok.text = word
		return tok, nil

	case isDig(c) || c == '.' && isDig(l.at(1)):
		start := l.pos
		if c == '0' && (l.at(1) == 'x' || l.at(1) == 'X') {
			l.adv()
			l.adv()
			for isDig(l.peek()) || l.peek() >= 'a' && l.peek() <= 'f' || l.peek() >= 'A' && l.peek() <= 'F' {
				l.adv()
			}
			v, err := strconv.ParseInt(l.src[start+2:l.pos], 16, 64)
			if err != nil {
				return tok, l.errf("bad hex literal")
			}
			tok.kind = tNumber
			tok.num = float64(v)
			return tok, nil
		}
		for isDig(l.peek()) {
			l.adv()
		}
		if l.peek() == '.' && isDig(l.at(1)) {
			l.adv()
			for isDig(l.peek()) {
				l.adv()
			}
		}
		v, err := strconv.ParseFloat(l.src[start:l.pos], 64)
		if err != nil {
			return tok, l.errf("bad number %q", l.src[start:l.pos])
		}
		tok.kind = tNumber
		tok.num = v
		return tok, nil

	case c == '"' || c == '\'':
		l.adv()
		var sb strings.Builder
		for {
			if l.peek() == 0 {
				return tok, l.errf("unterminated string")
			}
			ch := l.adv()
			if ch == c {
				break
			}
			if ch == '\\' && c == '"' {
				if l.peek() == 0 {
					return tok, l.errf("unterminated string")
				}
				e := l.adv()
				switch e {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case 'r':
					sb.WriteByte('\r')
				case '0':
					sb.WriteByte(0)
				case '"', '\\', '$', '@':
					sb.WriteByte(e)
				default:
					sb.WriteByte('\\')
					sb.WriteByte(e)
				}
				continue
			}
			if ch == '\\' && c == '\'' && (l.peek() == '\'' || l.peek() == '\\') {
				sb.WriteByte(l.adv())
				continue
			}
			sb.WriteByte(ch)
		}
		tok.kind = tString
		tok.text = sb.String()
		tok.interp = c == '"'
		return tok, nil

	case c == '/' && l.regexAllowed():
		l.adv()
		pat, err := l.readUntil('/')
		if err != nil {
			return tok, err
		}
		tok.kind = tRegex
		tok.text = pat
		tok.aux = l.readFlags()
		return tok, nil

	case c == '<' && isWordStart(l.at(1)):
		// <FH> readline.
		j := l.pos + 1
		for j < len(l.src) && isWord(l.src[j]) {
			j++
		}
		if j < len(l.src) && l.src[j] == '>' {
			name := l.src[l.pos+1 : j]
			for l.pos <= j {
				l.adv()
			}
			tok.kind = tPunct
			tok.text = "<FH>"
			tok.aux = name
			return tok, nil
		}
	}

	for _, p := range perlPuncts {
		if strings.HasPrefix(l.src[l.pos:], p) {
			for range p {
				l.adv()
			}
			tok.kind = tPunct
			tok.text = p
			return tok, nil
		}
	}
	return tok, l.errf("unexpected character %q", c)
}

// readUntil consumes up to an unescaped delimiter; escapes of the delimiter
// are unescaped, all other escapes pass through for the regex engine.
func (l *plexer) readUntil(delim byte) (string, error) {
	var sb strings.Builder
	for {
		if l.peek() == 0 {
			return "", l.errf("unterminated %q-delimited literal", delim)
		}
		ch := l.adv()
		if ch == delim {
			return sb.String(), nil
		}
		if ch == '\\' && l.peek() == delim {
			sb.WriteByte(l.adv())
			continue
		}
		sb.WriteByte(ch)
	}
}

func (l *plexer) readFlags() string {
	start := l.pos
	for l.peek() == 'g' || l.peek() == 'i' {
		l.adv()
	}
	return l.src[start:l.pos]
}
