// Package perl is the laboratory's Perl: a scripting-language interpreter
// with the structure the paper attributes to Perl 4.036.
//
// A program is compiled *at startup* into an internal op tree — the paper
// reports these precompilation instructions separately in Table 2, and we
// do the same (atom.PhaseStartup).  Precompilation resolves scalar and
// array names to slots, so the §3.3 observation holds: scalar and array
// accesses cost almost nothing at runtime, while hash (associative array)
// elements always pay a hash-table translation of a couple hundred native
// instructions.  Execution walks the op tree; each op is one virtual
// command with a moderate fetch/decode cost and a potentially enormous
// execute cost (match, substitution, split run the real regex engine of
// internal/rx over real strings).
package perl

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Scalar is a Perl scalar: simultaneously a string and a number, converted
// lazily like Perl's SV.
type Scalar struct {
	s    string
	n    float64
	hasS bool
	hasN bool
}

// Undef is the undefined scalar.
var Undef = Scalar{}

// Str builds a string scalar.
func Str(s string) Scalar { return Scalar{s: s, hasS: true} }

// Num builds a numeric scalar.
func Num(n float64) Scalar { return Scalar{n: n, hasN: true} }

// Bool builds Perl's canonical truth values (1 and "").
func Bool(b bool) Scalar {
	if b {
		return Num(1)
	}
	return Str("")
}

// Defined reports whether the scalar is defined.
func (v Scalar) Defined() bool { return v.hasS || v.hasN }

// ToNum converts to a number, Perl-style: leading numeric prefix, else 0.
func (v Scalar) ToNum() float64 {
	if v.hasN {
		return v.n
	}
	if !v.hasS {
		return 0
	}
	s := strings.TrimLeft(v.s, " \t\n")
	end := 0
	seenDigit := false
	for end < len(s) {
		c := s[end]
		if c == '+' || c == '-' {
			if end != 0 {
				break
			}
		} else if c == '.' {
			if strings.ContainsRune(s[:end], '.') {
				break
			}
		} else if c >= '0' && c <= '9' {
			seenDigit = true
		} else {
			break
		}
		end++
	}
	if !seenDigit {
		return 0
	}
	n, err := strconv.ParseFloat(strings.TrimRight(s[:end], "."), 64)
	if err != nil {
		return 0
	}
	return n
}

// ToStr converts to a string, formatting integers without a decimal point.
func (v Scalar) ToStr() string {
	if v.hasS {
		return v.s
	}
	if !v.hasN {
		return ""
	}
	return formatNum(v.n)
}

func formatNum(n float64) string {
	if n == math.Trunc(n) && math.Abs(n) < 1e15 {
		return strconv.FormatInt(int64(n), 10)
	}
	return strconv.FormatFloat(n, 'g', 15, 64)
}

// ToBool applies Perl truth: "" and "0" and 0 and undef are false.
func (v Scalar) ToBool() bool {
	if v.hasN && !v.hasS {
		return v.n != 0
	}
	if !v.hasS {
		return false
	}
	return v.s != "" && v.s != "0"
}

// Len returns the string length (the cost driver for string ops).
func (v Scalar) Len() int { return len(v.ToStr()) }

func (v Scalar) String() string { return v.ToStr() }

// Error is a runtime or compile error with source position.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("perl: line %d: %s", e.Line, e.Msg) }

func errLine(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}
