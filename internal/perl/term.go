package perl

import "strings"

// builtinNames lists the functions implemented natively by the runtime —
// Perl's string and list machinery.  Per Table 1, it is exactly this
// native runtime library that makes Perl competitive (and often better
// than compiled C loops) on string workloads.
var builtinNames = map[string]bool{
	"length": true, "substr": true, "index": true, "rindex": true,
	"split": true, "join": true, "sprintf": true,
	"push": true, "pop": true, "shift": true, "unshift": true,
	"keys": true, "values": true, "delete": true, "exists": true,
	"defined": true, "chop": true, "chomp": true,
	"lc": true, "uc": true, "ord": true, "chr": true,
	"scalar": true, "reverse": true, "sort": true,
	"open": true, "close": true, "eof": true,
	"die": true, "exit": true, "hex": true, "int": true, "abs": true,
}

func (p *pparser) term() (*Node, error) {
	t := p.cur()
	switch t.kind {
	case tNumber:
		p.pos++
		n := p.node(opConst)
		n.Num = t.num
		n.Str = formatNum(t.num)
		return n, nil

	case tString:
		p.pos++
		if !t.interp || !strings.ContainsAny(t.text, "$") {
			n := p.node(opConst)
			n.Str = t.text
			return n, nil
		}
		return p.interpolate(t)

	case tScalarVar:
		p.pos++
		switch {
		case p.accept(tPunct, "["):
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tPunct, "]"); err != nil {
				return nil, err
			}
			n := p.node(opElem, idx)
			n.Slot = p.arraySlot(t.text)
			n.Str = t.text
			return n, nil
		case p.accept(tPunct, "{"):
			key, err := p.hashKey()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tPunct, "}"); err != nil {
				return nil, err
			}
			n := p.node(opHelem, key)
			n.Slot = p.hashSlot(t.text)
			n.Str = t.text
			return n, nil
		default:
			n := p.node(opScalarVar)
			n.Slot = p.scalarSlot(t.text)
			n.Str = t.text
			return n, nil
		}

	case tArrayVar:
		p.pos++
		n := p.node(opArrayAll)
		n.Slot = p.arraySlot(t.text)
		n.Str = t.text
		return n, nil

	case tHashVar:
		p.pos++
		n := p.node(opHashAll)
		n.Slot = p.hashSlot(t.text)
		n.Str = t.text
		return n, nil

	case tRegex:
		p.pos++
		re, err := compilePattern(t)
		if err != nil {
			return nil, err
		}
		n := p.node(opMatch, nil) // nil subject = $_
		n.Re = re
		return n, nil

	case tSubst:
		p.pos++
		re, err := compilePattern(t)
		if err != nil {
			return nil, err
		}
		underscore := p.node(opScalarVar)
		underscore.Slot = 0
		underscore.Str = "_"
		n := p.node(opSubst, underscore)
		n.Re = re
		n.Repl = t.repl
		n.Global = strings.Contains(t.aux, "g")
		return n, nil

	case tPunct:
		switch t.text {
		case "(":
			p.pos++
			if p.accept(tPunct, ")") {
				// Empty list: %h = (), @a = ().
				return p.node(opList), nil
			}
			e, err := p.exprList()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tPunct, ")"); err != nil {
				return nil, err
			}
			return e, nil
		case "<FH>":
			p.pos++
			n := p.node(opReadLine)
			n.Str = t.aux
			return n, nil
		case "&":
			p.pos++
			name, err := p.expect(tIdent, "")
			if err != nil {
				return nil, err
			}
			return p.callArgs(name.text)
		}

	case tIdent:
		if builtinNames[t.text] {
			p.pos++
			return p.builtinCall(t.text)
		}
		if !perlKeywords[t.text] {
			p.pos++
			if p.at(tPunct, "(") {
				return p.callArgs(t.text)
			}
			// Bareword: treated as a string constant (Perl 4 behavior).
			n := p.node(opConst)
			n.Str = t.text
			return n, nil
		}
	}
	return nil, errLine(t.line, "unexpected %s in expression", t)
}

// hashKey parses a hash subscript: a bareword or a full expression.
func (p *pparser) hashKey() (*Node, error) {
	if p.cur().kind == tIdent && p.toks[p.pos+1].kind == tPunct && p.toks[p.pos+1].text == "}" {
		t := p.next()
		n := p.node(opConst)
		n.Str = t.text
		return n, nil
	}
	return p.expr()
}

// callArgs parses `name(args)` into a user-sub call.
func (p *pparser) callArgs(name string) (*Node, error) {
	n := p.node(opCall)
	n.Str = name
	if p.accept(tPunct, "(") {
		if !p.at(tPunct, ")") {
			args, err := p.exprList()
			if err != nil {
				return nil, err
			}
			if args.Op == opList {
				n.Kids = args.Kids
			} else {
				n.Kids = []*Node{args}
			}
		}
		if _, err := p.expect(tPunct, ")"); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// builtinCall parses a builtin; parentheses required except for a few
// list-y ones that commonly appear bare.
func (p *pparser) builtinCall(name string) (*Node, error) {
	n := p.node(opFunc)
	n.Str = name
	if p.accept(tPunct, "(") {
		if !p.at(tPunct, ")") {
			// split's first argument may be a naked pattern.
			if name == "split" && p.cur().kind == tRegex {
				t := p.next()
				re, err := compilePattern(t)
				if err != nil {
					return nil, err
				}
				pat := p.node(opConst)
				pat.Re = re
				n.Kids = append(n.Kids, pat)
				if p.accept(tPunct, ",") {
					rest, err := p.exprList()
					if err != nil {
						return nil, err
					}
					if rest.Op == opList {
						n.Kids = append(n.Kids, rest.Kids...)
					} else {
						n.Kids = append(n.Kids, rest)
					}
				}
			} else {
				args, err := p.exprList()
				if err != nil {
					return nil, err
				}
				if args.Op == opList {
					n.Kids = args.Kids
				} else {
					n.Kids = []*Node{args}
				}
			}
		}
		if _, err := p.expect(tPunct, ")"); err != nil {
			return nil, err
		}
		return n, nil
	}
	// Bare forms: `shift`, `pop @a`, `length $x`, `die "msg"`, ...
	switch name {
	case "shift", "pop", "keys", "values", "scalar", "defined", "length",
		"chop", "chomp", "lc", "uc", "ord", "chr", "die", "exit", "int",
		"abs", "hex", "eof":
		if p.at(tPunct, ";") || p.at(tPunct, "}") || p.at(tPunct, ")") ||
			p.at(tPunct, ",") || p.at(tEOF, "") || p.at(tIdent, "if") ||
			p.at(tIdent, "unless") || p.at(tIdent, "while") {
			return n, nil
		}
		arg, err := p.unary()
		if err != nil {
			return nil, err
		}
		n.Kids = []*Node{arg}
		return n, nil
	}
	return nil, errLine(p.cur().line, "%s requires parentheses", name)
}

// interpolate compiles a double-quoted string with $var references into a
// concat chain — the way Perl's own parser lowers interpolation.
func (p *pparser) interpolate(t token) (*Node, error) {
	var parts []*Node
	lit := func(s string) {
		if s == "" {
			return
		}
		n := p.node(opConst)
		n.Str = s
		parts = append(parts, n)
	}
	s := t.text
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] != '$' || i+1 >= len(s) {
			continue
		}
		j := i + 1
		braced := false
		if s[j] == '{' {
			braced = true
			j++
		}
		k := j
		for k < len(s) && isWord(s[k]) {
			k++
		}
		if k == j {
			continue // bare $
		}
		name := s[j:k]
		if braced {
			if k >= len(s) || s[k] != '}' {
				continue
			}
			k++
		}
		var v *Node
		// Element interpolation: "$a[3]", "$a[-1]", "$a[$i]", "$h{key}",
		// "$h{$k}".
		if !braced && k < len(s) && (s[k] == '[' || s[k] == '{') {
			open := s[k]
			close := byte(']')
			if open == '{' {
				close = '}'
			}
			m := strings.IndexByte(s[k:], close)
			if m > 1 {
				sub := s[k+1 : k+m]
				idx := p.subscriptNode(sub, open == '{')
				if idx != nil {
					if open == '[' {
						v = p.node(opElem, idx)
						v.Slot = p.arraySlot(name)
					} else {
						v = p.node(opHelem, idx)
						v.Slot = p.hashSlot(name)
					}
					v.Str = name
					k += m + 1
				}
			}
		}
		if v == nil {
			v = p.node(opScalarVar)
			v.Slot = p.scalarSlot(name)
			v.Str = name
		}
		lit(s[start:i])
		parts = append(parts, v)
		start = k
		i = k - 1
	}
	lit(s[start:])
	if len(parts) == 0 {
		n := p.node(opConst)
		n.Str = s
		return n, nil
	}
	out := parts[0]
	for _, part := range parts[1:] {
		out = p.node(opConcat, out, part)
	}
	return out, nil
}

// subscriptNode builds the index node for an interpolated element: an
// integer, a $var, or (for hashes) a bareword key.  Returns nil when the
// subscript is not a supported simple form.
func (p *pparser) subscriptNode(sub string, hash bool) *Node {
	if len(sub) == 0 {
		return nil
	}
	if sub[0] == '$' && len(sub) > 1 {
		ok := true
		for j := 1; j < len(sub); j++ {
			if !isWord(sub[j]) {
				ok = false
				break
			}
		}
		if ok {
			n := p.node(opScalarVar)
			n.Slot = p.scalarSlot(sub[1:])
			n.Str = sub[1:]
			return n
		}
		return nil
	}
	numeric := true
	for j, ch := range []byte(sub) {
		if ch == '-' && j == 0 {
			continue
		}
		if ch < '0' || ch > '9' {
			numeric = false
			break
		}
	}
	if numeric {
		n := p.node(opConst)
		v := 0
		neg := sub[0] == '-'
		str := sub
		if neg {
			str = sub[1:]
		}
		for _, ch := range []byte(str) {
			v = v*10 + int(ch-'0')
		}
		if neg {
			v = -v
		}
		n.Num = float64(v)
		n.Str = sub
		return n
	}
	if hash {
		ok := true
		for _, ch := range []byte(sub) {
			if !isWord(ch) {
				ok = false
				break
			}
		}
		if ok {
			n := p.node(opConst)
			n.Str = sub
			return n
		}
	}
	return nil
}
