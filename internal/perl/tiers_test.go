package perl

import (
	"testing"

	"interplab/internal/atom"
	"interplab/internal/trace"
	"interplab/internal/vfs"
)

const tierScript = `
$s = 0;
for ($i = 0; $i < 50; $i++) {
    $s = $s + $i * 3;
}
print "$s\n";
`

// runQuick executes tierScript with or without quickening.
func runQuick(t *testing.T, quicken bool) (*Interp, atom.Stats, string) {
	t.Helper()
	img := atom.NewImage()
	p := atom.NewProbe(img, trace.Discard)
	osys := vfs.New()
	i, err := New(tierScript, osys, img, p)
	if err != nil {
		t.Fatal(err)
	}
	i.Quicken = quicken
	if err := i.Run(); err != nil {
		t.Fatal(err)
	}
	return i, p.Stats(), osys.Stdout.String()
}

// TestQuickeningReducesFetchDecode: node specialization must cut the
// runops dispatch cost without changing guest-visible behavior.
func TestQuickeningReducesFetchDecode(t *testing.T) {
	_, base, outBase := runQuick(t, false)
	i, quick, outQuick := runQuick(t, true)
	if outBase != outQuick {
		t.Fatalf("quickening changed behavior: %q vs %q", outBase, outQuick)
	}
	if base.Commands != quick.Commands {
		t.Errorf("command counts differ: %d vs %d", base.Commands, quick.Commands)
	}
	if quick.FetchDecode >= base.FetchDecode {
		t.Errorf("quickened fetch_decode = %d, must beat baseline %d",
			quick.FetchDecode, base.FetchDecode)
	}
	if i.QuickenRewrites == 0 {
		t.Error("quickening specialized no nodes")
	}
}

// TestQuickeningIdempotent: a node is specialized at most once — re-running
// the program makes no further rewrites.
func TestQuickeningIdempotent(t *testing.T) {
	i, _, _ := runQuick(t, true)
	first := i.QuickenRewrites
	if first == 0 {
		t.Fatal("no rewrites on first run")
	}
	if err := i.Run(); err != nil {
		t.Fatal(err)
	}
	if i.QuickenRewrites != first {
		t.Errorf("re-execution rewrote again: %d -> %d", first, i.QuickenRewrites)
	}
}

// TestQuickeningRewritesBounded: rewrites are per-node, so they can never
// exceed the compiled node count.
func TestQuickeningRewritesBounded(t *testing.T) {
	i, _, _ := runQuick(t, true)
	if i.QuickenRewrites > uint64(i.Prog.Nodes) {
		t.Errorf("rewrites %d exceed node count %d", i.QuickenRewrites, i.Prog.Nodes)
	}
}
